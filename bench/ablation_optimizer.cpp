// Ablation of the compiler's optimizations (§4), end to end through the
// real pipeline: HPF source -> compile (with switches) -> execute plan.
//
// Stages:
//   naive          straightforward extension of the in-core compiler
//                  (column slabs, column-major storage, equal memory split)
//   +access        cost-driven slab orientation (Figure 14) only
//   +storage       plus on-disk storage reorganization (contiguous slabs)
//   +memory        plus access-weighted memory allocation (§4.2.1)
//   +prefetch      plus double-buffered slab prefetch
//
// Expected shape: each stage is at least as fast as the previous; access +
// storage reorganization together give the paper's order-of-magnitude win.
#include "bench_common.hpp"

#include "oocc/compiler/lower.hpp"
#include "oocc/compiler/pretty.hpp"
#include "oocc/exec/interp.hpp"
#include "oocc/hpf/programs.hpp"

namespace {

struct Stage {
  const char* name;
  bool access;
  bool storage;
  oocc::compiler::MemoryStrategy memory;
  bool prefetch;
};

}  // namespace

int main() {
  using namespace oocc;
  using namespace oocc::bench;

  const std::int64_t n = bench_n(1024);
  const int p = static_cast<int>(env_int("OOCC_ABLATION_PROCS", 4));
  const std::int64_t local = n * ((n + p - 1) / p);
  const std::int64_t budget = local / 2 + 4 * n;  // genuinely out-of-core

  print_header("Ablation: compiler optimizations, one at a time");
  std::printf("N = %lld, P = %d, memory budget = %lld elements "
              "(~1/2 of the OCLA)\n\n",
              static_cast<long long>(n), p, static_cast<long long>(budget));

  const Stage stages[] = {
      {"naive", false, false, compiler::MemoryStrategy::kEqualSplit, false},
      {"+access", true, false, compiler::MemoryStrategy::kEqualSplit, false},
      {"+storage", true, true, compiler::MemoryStrategy::kEqualSplit, false},
      {"+memory", true, true, compiler::MemoryStrategy::kAccessWeighted,
       false},
      {"+prefetch", true, true, compiler::MemoryStrategy::kAccessWeighted,
       true},
  };

  TextTable table({"stage", "orientation", "time (s)", "vs naive",
                   "IO requests", "IO MB", "messages"});
  double naive_time = 0.0;
  std::vector<double> times;
  for (const Stage& stage : stages) {
    compiler::CompileOptions options;
    options.memory_budget_elements = budget;
    options.enable_access_reorganization = stage.access;
    options.enable_storage_reorganization = stage.storage;
    options.memory_strategy = stage.memory;
    options.prefetch = stage.prefetch ? compiler::PrefetchMode::kOn
                                      : compiler::PrefetchMode::kOff;
    options.disk = io::DiskModel::touchstone_delta_cfs();
    const compiler::NodeProgram plan =
        compiler::compile_source(hpf::gaxpy_source(n, p), options);

    io::TempDir dir("oocc-ablation");
    sim::Machine machine(p, sim::MachineCostModel::touchstone_delta());
    sim::RunReport report = machine.run([&](sim::SpmdContext& ctx) {
      auto arrays = exec::create_plan_arrays(
          ctx, plan, dir.path(), io::DiskModel::touchstone_delta_cfs());
      arrays.at(plan.a)->initialize(
          ctx,
          [](std::int64_t r, std::int64_t c) {
            return 0.25 + 1e-3 * static_cast<double>((r + 3 * c) % 101);
          },
          local);
      arrays.at(plan.b)->initialize(
          ctx,
          [](std::int64_t r, std::int64_t c) {
            return -0.5 + 1e-3 * static_cast<double>((5 * r + c) % 103);
          },
          local);
      sim::barrier(ctx);
      ctx.reset_accounting();
      exec::ArrayBindings bindings;
      for (auto& [name, arr] : arrays) {
        bindings[name] = arr.get();
      }
      // The ablation isolates the *compiler* optimizations on the paper's
      // machine semantics; the runtime slab cache is measured separately
      // (bench/cache_reuse).
      exec::ExecOptions exec_options;
      exec_options.use_cache = false;
      exec::execute(ctx, plan, bindings, exec_options);
    });

    const double t = report.max_sim_time_s();
    times.push_back(t);
    if (naive_time == 0.0) {
      naive_time = t;
    }
    table.add_row(
        {stage.name,
         std::string(runtime::slab_orientation_name(plan.a_orientation)),
         format_fixed(t, 2), format_fixed(naive_time / t, 1) + "x",
         std::to_string(report.total_io_requests()),
         format_fixed(static_cast<double>(report.total_io_bytes()) / 1e6, 1),
         std::to_string(report.total_messages())});
  }
  std::printf("%s\n", table.to_string().c_str());

  // Prefetch is a tradeoff, not a strict win: halving A's slab to fit the
  // second buffer multiplies B's re-reads, so it only pays when compute
  // overlaps enough I/O. It is reported but excluded from the
  // monotonicity check.
  bool monotone = true;
  for (std::size_t i = 1; i + 1 < times.size(); ++i) {
    if (times[i] > times[i - 1] * 1.05) {
      monotone = false;
    }
  }
  const double best = *std::min_element(times.begin(), times.end());
  std::printf("shape check (each non-prefetch stage no slower than the "
              "previous): %s\n",
              monotone ? "OK" : "FAILED");
  std::printf("shape check (full optimizer >= 4x over naive): %s\n",
              naive_time >= 4 * best ? "OK" : "FAILED");
  std::printf("prefetch tradeoff: %.2f s vs %.2f s without (%s here)\n",
              times.back(), times[times.size() - 2],
              times.back() <= times[times.size() - 2] ? "wins" : "loses");
  return monotone && naive_time >= 4 * best ? 0 : 1;
}
