// Real async I/O engine: host wall-clock overlap of disk and compute.
//
// Two workloads, both through the compiler and the slab buffer pool:
//   chain    c = a*b ; e = c + a*b, statement-at-a-time (fusion off), with
//            double-buffered input streams (prefetch on)
//   stencil  hpf::stencil_source(N, P), OOCC_STENCIL_ITERS sweeps (default 4)
//
// Each workload runs twice at the same physical I/O latency — once with the
// engine attached to the pool (ExecOptions::async) and once synchronously —
// and the bench compares the host wall time of the execute window (per-rank
// max; staging and gathers excluded, matching the simulated timings).
// The simulator prices both runs identically (the clock-rewind model is the
// oracle, the engine only changes *when* the physical I/O happens), so the
// bench asserts bit-identical results AND bit-identical simulated time, and
// a >= 1.3x lower host wall with the engine on for at least one workload.
//
// Real LAF traffic on a warm page cache completes in microseconds, which
// would bury the overlap under thread-scheduling noise; the bench therefore
// dials in OOCC_HOST_IO_DELAY_US (an emulated per-request device latency,
// see io::FileBackend) so each workload's physical I/O takes about as long
// as its compute — the regime the engine exists for. A delay-0 calibration
// run measures the compute; presetting OOCC_HOST_IO_DELAY_US skips the
// calibration and uses the given latency. The wall-ratio assertion is
// gated on N >= 2048 (CI's release smoke job runs exactly that; smaller
// quick runs still check bit-identity but only report the ratio).
#include "bench_common.hpp"

#include <chrono>
#include <cstdlib>
#include <mutex>
#include <set>

#include "oocc/compiler/lower.hpp"
#include "oocc/exec/interp.hpp"
#include "oocc/hpf/programs.hpp"

namespace {

std::string chain_source(std::int64_t n, int p) {
  return "parameter (n=" + std::to_string(n) + ", p=" + std::to_string(p) +
         ")\n"
         "real a(n,n), b(n,n), c(n,n), e(n,n)\n"
         "!hpf$ processors Pr(p)\n"
         "!hpf$ template d(n)\n"
         "!hpf$ distribute d(block) onto Pr\n"
         "!hpf$ align (*,:) with d :: a, b, c, e\n"
         "forall (k=1:n)\n"
         "  c(1:n,k) = a(1:n,k)*b(1:n,k)\n"
         "end forall\n"
         "forall (k=1:n)\n"
         "  e(1:n,k) = c(1:n,k) + a(1:n,k)*b(1:n,k)\n"
         "end forall\n"
         "end\n";
}

struct OverlapResult {
  double exec_wall_s = 0.0;  ///< host wall of the execute window (rank max)
  double sim_time_s = 0.0;
  std::uint64_t io_requests = 0;  ///< LAF requests in that window (rank max)
  std::uint64_t async_jobs = 0;
  double overlap_s = 0.0;
  double blocked_s = 0.0;
  std::vector<double> out;  ///< gathered result (rank 0)
};

/// The emulated device latency is read once per FileBackend, at
/// construction (inside machine.run); set it before the region starts.
void set_host_delay(std::int64_t us) {
  setenv("OOCC_HOST_IO_DELAY_US", std::to_string(us).c_str(), 1);
}

OverlapResult run_chain(std::int64_t n, int p, bool use_async,
                        std::int64_t delay_us) {
  using namespace oocc;
  set_host_delay(delay_us);

  compiler::CompileOptions options;
  options.enable_statement_fusion = false;
  options.prefetch = compiler::PrefetchMode::kOn;
  const std::int64_t local = n * ((n + p - 1) / p);
  // Pool budget 4x: the whole working set (a, b, the staged c) stays
  // resident, so the run is prefetched reads + one flush per output.
  const std::int64_t pool_budget =
      local * env_int("OOCC_CACHE_BUDGET_FACTOR", 4);
  options.memory_budget_elements = local;
  const std::vector<compiler::NodeProgram> plans =
      compiler::compile_sequence_source(chain_source(n, p), options);

  OverlapResult result;
  io::TempDir dir("oocc-async-chain");
  sim::Machine machine(p, sim::MachineCostModel::touchstone_delta());
  std::mutex mu;
  sim::RunReport report = machine.run([&](sim::SpmdContext& ctx) {
    auto arrays = exec::create_sequence_arrays(
        ctx,
        std::span<const compiler::NodeProgram>(plans.data(), plans.size()),
        dir.path(), io::DiskModel::touchstone_delta_cfs());
    std::set<std::string> outputs;
    for (const compiler::NodeProgram& plan : plans) {
      for (const auto& [name, pa] : plan.arrays) {
        if (pa.is_output) {
          outputs.insert(name);
        }
      }
    }
    for (auto& [name, arr] : arrays) {
      if (!outputs.contains(name)) {
        arr->initialize(
            ctx,
            [](std::int64_t r, std::int64_t c) {
              return 1.0 + 1e-3 * static_cast<double>((r * 31 + c * 7) % 101);
            },
            local);
      }
      arr->laf().reset_stats();
    }
    sim::barrier(ctx);
    ctx.reset_accounting();
    exec::ArrayBindings bindings;
    for (auto& [name, arr] : arrays) {
      bindings[name] = arr.get();
    }
    exec::ExecOptions exec_options;
    exec_options.async = use_async;
    exec_options.budget_elements = pool_budget;
    const auto t0 = std::chrono::steady_clock::now();
    exec::execute_sequence(
        ctx,
        std::span<const compiler::NodeProgram>(plans.data(), plans.size()),
        bindings, exec_options);
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    std::uint64_t requests = 0;
    for (auto& [name, arr] : arrays) {
      const io::IoStats& s = arr->laf().stats();
      requests += s.read_requests + s.write_requests;
    }
    std::vector<double> e = arrays.at("e")->gather_global(ctx, local);
    std::lock_guard<std::mutex> lock(mu);
    result.exec_wall_s = std::max(result.exec_wall_s, wall);
    result.io_requests = std::max(result.io_requests, requests);
    if (ctx.rank() == 0) {
      result.out = std::move(e);
    }
  });
  result.sim_time_s = report.max_sim_time_s();
  result.async_jobs = report.async.jobs;
  result.overlap_s = report.async.overlap_s;
  result.blocked_s = report.async.blocked_s;
  return result;
}

OverlapResult run_stencil(std::int64_t n, int p, int iters, bool use_async,
                          std::int64_t delay_us) {
  using namespace oocc;
  set_host_delay(delay_us);

  compiler::CompileOptions options;
  options.prefetch = compiler::PrefetchMode::kOn;
  const std::int64_t local = n * ((n + p - 1) / p);
  // Pool budget 2x (not the usual 4x): the ping-ponged panels then churn
  // through the pool, so write-backs happen at evict time — spread across
  // the sweeps, where the engine can hide them — instead of piling up in
  // one serial flush at region end.
  const std::int64_t pool_budget =
      local * env_int("OOCC_CACHE_BUDGET_FACTOR", 2);
  options.memory_budget_elements = local;
  const compiler::NodeProgram plan =
      compiler::compile_source(hpf::stencil_source(n, p), options);

  OverlapResult result;
  io::TempDir dir("oocc-async-stencil");
  sim::Machine machine(p, sim::MachineCostModel::touchstone_delta());
  std::mutex mu;
  sim::RunReport report = machine.run([&](sim::SpmdContext& ctx) {
    auto arrays = exec::create_plan_arrays(
        ctx, plan, dir.path(), io::DiskModel::touchstone_delta_cfs());
    arrays.at("a")->initialize(
        ctx,
        [](std::int64_t r, std::int64_t c) {
          return c == 0 ? 100.0 : (r % 4 == 0 ? 2.0 : -1.0);
        },
        local);
    for (auto& [name, arr] : arrays) {
      arr->laf().reset_stats();
    }
    sim::barrier(ctx);
    ctx.reset_accounting();
    exec::ArrayBindings bindings;
    for (auto& [name, arr] : arrays) {
      bindings[name] = arr.get();
    }
    exec::ExecOptions exec_options;
    exec_options.async = use_async;
    exec_options.budget_elements = pool_budget;
    exec_options.max_iters = iters;
    exec::StencilRunInfo info;
    exec_options.stencil_info = &info;
    const auto t0 = std::chrono::steady_clock::now();
    exec::execute(ctx, plan, bindings, exec_options);
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    std::uint64_t requests = 0;
    for (auto& [name, arr] : arrays) {
      const io::IoStats& s = arr->laf().stats();
      requests += s.read_requests + s.write_requests;
    }
    std::vector<double> state =
        arrays.at(info.result)->gather_global(ctx, local);
    std::lock_guard<std::mutex> lock(mu);
    result.exec_wall_s = std::max(result.exec_wall_s, wall);
    result.io_requests = std::max(result.io_requests, requests);
    if (ctx.rank() == 0) {
      result.out = std::move(state);
    }
  });
  result.sim_time_s = report.max_sim_time_s();
  result.async_jobs = report.async.jobs;
  result.overlap_s = report.async.overlap_s;
  result.blocked_s = report.async.blocked_s;
  return result;
}

bool bit_identical(const std::vector<double>& a, const std::vector<double>& b,
                   const char* what) {
  if (a.size() != b.size()) {
    std::printf("%s: result size mismatch (%zu vs %zu)\n", what, a.size(),
                b.size());
    return false;
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] != b[i]) {
      std::printf("%s: result mismatch at index %zu\n", what, i);
      return false;
    }
  }
  return true;
}

/// Per-request latency that makes the workload's physical I/O take about
/// 1.5x as long as its compute (calibration wall / request count, scaled):
/// enough I/O that hiding it is worth measuring, not so much that the
/// non-overlappable head and tail requests dominate the async wall.
std::int64_t calibrate_delay_us(const OverlapResult& calib) {
  const double per_request_s =
      calib.exec_wall_s / static_cast<double>(std::max<std::uint64_t>(
                              calib.io_requests, 1));
  return std::clamp<std::int64_t>(
      static_cast<std::int64_t>(per_request_s * 1.5 * 1e6), 200, 50000);
}

}  // namespace

int main() {
  using namespace oocc;
  using namespace oocc::bench;

  // N >= 2048 by default — the regime the ISSUE's wall-ratio assertion
  // targets (deliberately not bench_n's 512 quick default).
  const std::int64_t n = env_int("OOCC_N", 2048);
  const int p = bench_procs().front();
  const int iters = static_cast<int>(env_int("OOCC_STENCIL_ITERS", 4));
  print_header("Async I/O engine: disk/compute overlap in host wall-clock");

  if (!env_flag_or("OOCC_ASYNC", true)) {
    std::printf("OOCC_ASYNC=0: engine disabled, nothing to measure. OK\n");
    return 0;
  }

  // The engine's default worker count (min(nprocs, 4)) is sized for real
  // disks, where a blocked worker means a busy device. Under the emulated
  // per-request latency a worker *sleeps* through each job, so the default
  // starves the per-file streams (4 ranks x several arrays); give the
  // measurement enough workers that streams, not workers, are the limit.
  if (std::getenv("OOCC_IO_THREADS") == nullptr) {
    setenv("OOCC_IO_THREADS", "16", 1);
  }

  const char* preset = std::getenv("OOCC_HOST_IO_DELAY_US");
  const std::int64_t preset_us = preset != nullptr ? std::atoll(preset) : -1;

  std::printf(
      "N = %lld, P = %d; sync vs async at the same emulated device "
      "latency\n\n",
      static_cast<long long>(n), p);

  TextTable table({"workload", "delay us", "reqs", "sync wall (s)",
                   "async wall (s)", "wall ratio", "jobs", "overlap (s)",
                   "blocked (s)", "sim (s)"});
  bool ok = true;
  double best_ratio = 0.0;
  for (const char* kind : {"chain", "stencil"}) {
    const bool is_chain = std::string(kind) == "chain";
    auto run = [&](bool use_async, std::int64_t delay_us) {
      return is_chain ? run_chain(n, p, use_async, delay_us)
                      : run_stencil(n, p, iters, use_async, delay_us);
    };
    std::int64_t delay_us = preset_us;
    if (delay_us < 0) {
      delay_us = calibrate_delay_us(run(/*use_async=*/false, 0));
    }
    // Host wall on a loaded box is noisy; min-of-REPS for each mode is the
    // standard way to ask "how fast can this configuration go". Every
    // repetition's results still have to be bit-identical.
    const int reps = static_cast<int>(env_int("OOCC_BENCH_REPS", 3));
    OverlapResult sync_run;
    OverlapResult async_run;
    for (int r = 0; r < reps; ++r) {
      OverlapResult s = run(/*use_async=*/false, delay_us);
      OverlapResult a = run(/*use_async=*/true, delay_us);

      // The engine must be invisible to both the program and the
      // simulator.
      ok = ok && bit_identical(s.out, a.out, kind);
      if (s.sim_time_s != a.sim_time_s) {
        std::printf("%s: simulated time diverged (%.9f vs %.9f)\n", kind,
                    s.sim_time_s, a.sim_time_s);
        ok = false;
      }
      if (r == 0 || s.exec_wall_s < sync_run.exec_wall_s) {
        sync_run = std::move(s);
      }
      if (r == 0 || a.exec_wall_s < async_run.exec_wall_s) {
        async_run = std::move(a);
      }
    }
    const double ratio = sync_run.exec_wall_s / async_run.exec_wall_s;
    best_ratio = std::max(best_ratio, ratio);
    table.add_row({kind, std::to_string(delay_us),
                   std::to_string(sync_run.io_requests),
                   format_fixed(sync_run.exec_wall_s, 3),
                   format_fixed(async_run.exec_wall_s, 3),
                   format_fixed(ratio, 2) + "x",
                   std::to_string(async_run.async_jobs),
                   format_fixed(async_run.overlap_s, 3),
                   format_fixed(async_run.blocked_s, 3),
                   format_fixed(async_run.sim_time_s, 2)});
  }
  std::printf("%s\n", table.to_string().c_str());

  // The headline invariant, asserted at full scale (CI's release smoke job
  // runs N=2048): the engine buys >= 1.3x lower host wall somewhere.
  const bool assert_ratio = n >= 2048;
  if (assert_ratio) {
    ok = ok && best_ratio >= 1.3;
  }
  std::printf(
      "shape check (bit-identical results and simulated time%s): %s\n",
      assert_ratio ? ", best wall ratio >= 1.3x" : "", ok ? "OK" : "FAILED");
  if (!assert_ratio) {
    std::printf("(wall ratio reported but not asserted below N=2048)\n");
  }
  return ok ? 0 : 1;
}
