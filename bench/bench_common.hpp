// Shared harness for the paper-reproduction benches.
//
// Every bench binary sweeps configurations of the out-of-core GAXPY kernels
// on the simulated Touchstone Delta (sim::MachineCostModel::touchstone_delta
// + io::DiskModel::touchstone_delta_cfs) and prints rows in the layout of
// the paper's tables, alongside the paper's published numbers for shape
// comparison. Environment knobs:
//   OOCC_N      global array extent (default 512; the paper used 1024 for
//               Table 1/Figure 10 and 2048 for Table 2)
//   OOCC_PROCS  comma-separated processor counts (default 4,16,32,64)
//   OOCC_FULL   set to run at full paper scale (N=1024/2048)
#pragma once

#include <cstdio>
#include <mutex>
#include <string>

#include "oocc/gaxpy/gaxpy.hpp"
#include "oocc/io/file_backend.hpp"
#include "oocc/runtime/ooc_array.hpp"
#include "oocc/sim/collectives.hpp"
#include "oocc/util/env.hpp"
#include "oocc/util/table.hpp"

namespace oocc::bench {

enum class GaxpyVersion { kColumnSlabs, kRowSlabs, kInCore };

inline std::string version_name(GaxpyVersion v) {
  switch (v) {
    case GaxpyVersion::kColumnSlabs:
      return "Col. slab";
    case GaxpyVersion::kRowSlabs:
      return "Row slab";
    case GaxpyVersion::kInCore:
      return "In-core";
  }
  return "?";
}

struct GaxpyRunConfig {
  GaxpyVersion version = GaxpyVersion::kColumnSlabs;
  std::int64_t n = 512;
  int nprocs = 4;
  std::int64_t slab_a = 0;  ///< elements; 0 = whole OCLA
  std::int64_t slab_b = 0;
  std::int64_t slab_c = 0;
  bool prefetch = false;
  sim::MachineCostModel machine = sim::MachineCostModel::touchstone_delta();
  io::DiskModel disk = io::DiskModel::touchstone_delta_cfs();
};

struct GaxpyRunResult {
  double sim_time_s = 0.0;
  double wall_time_s = 0.0;  ///< host wall time of the SPMD region
  std::uint64_t a_read_requests = 0;   ///< per processor (max)
  std::uint64_t a_bytes_read = 0;
  std::uint64_t total_io_requests = 0;
  std::uint64_t total_io_bytes = 0;
  std::uint64_t total_messages = 0;
  std::uint64_t total_bytes_sent = 0;  ///< simulated communication payload
};

/// Runs one GAXPY configuration end to end: create arrays (with the
/// storage order natural for the version), initialize, barrier, reset the
/// accounting (so staging is excluded, as the paper's timings exclude the
/// initial distribution), run, and report the simulated makespan.
inline GaxpyRunResult run_gaxpy(const GaxpyRunConfig& cfg) {
  io::TempDir dir("oocc-bench");
  sim::Machine machine(cfg.nprocs, cfg.machine);

  GaxpyRunResult result;
  const std::int64_t local =
      cfg.n * ((cfg.n + cfg.nprocs - 1) / cfg.nprocs);
  const std::int64_t slab_a = cfg.slab_a > 0 ? cfg.slab_a : local;
  const std::int64_t slab_b = cfg.slab_b > 0 ? cfg.slab_b : local;
  const std::int64_t slab_c = cfg.slab_c > 0 ? cfg.slab_c : local;

  std::uint64_t a_reads = 0;
  std::uint64_t a_bytes = 0;
  std::mutex mu;

  sim::RunReport report = machine.run([&](sim::SpmdContext& ctx) {
    const io::StorageOrder a_order =
        cfg.version == GaxpyVersion::kRowSlabs ? io::StorageOrder::kRowMajor
                                               : io::StorageOrder::kColumnMajor;
    runtime::OutOfCoreArray a(ctx, dir.path(), "a",
                              hpf::column_block(cfg.n, cfg.n, cfg.nprocs),
                              a_order, cfg.disk);
    runtime::OutOfCoreArray b(ctx, dir.path(), "b",
                              hpf::row_block(cfg.n, cfg.n, cfg.nprocs),
                              io::StorageOrder::kColumnMajor, cfg.disk);
    runtime::OutOfCoreArray c(ctx, dir.path(), "c",
                              hpf::column_block(cfg.n, cfg.n, cfg.nprocs),
                              a_order, cfg.disk);
    a.initialize(
        ctx,
        [](std::int64_t r, std::int64_t col) {
          return 0.5 + 1e-3 * static_cast<double>((r * 13 + col * 7) % 97);
        },
        local);
    b.initialize(
        ctx,
        [](std::int64_t r, std::int64_t col) {
          return -0.25 + 1e-3 * static_cast<double>((r * 5 + col * 11) % 89);
        },
        local);
    sim::barrier(ctx);
    ctx.reset_accounting();
    a.laf().reset_stats();

    gaxpy::GaxpyConfig kcfg;
    kcfg.slab_a_elements = slab_a;
    kcfg.slab_b_elements = slab_b;
    kcfg.slab_c_elements = slab_c;
    kcfg.prefetch = cfg.prefetch;
    runtime::MemoryBudget budget(4 * local + 4 * cfg.n);
    switch (cfg.version) {
      case GaxpyVersion::kColumnSlabs:
        gaxpy::ooc_gaxpy_column_slabs(ctx, a, b, c, budget, kcfg);
        break;
      case GaxpyVersion::kRowSlabs:
        gaxpy::ooc_gaxpy_row_slabs(ctx, a, b, c, budget, kcfg);
        break;
      case GaxpyVersion::kInCore:
        gaxpy::in_core_gaxpy(ctx, a, b, c);
        break;
    }
    std::lock_guard<std::mutex> lock(mu);
    a_reads = std::max(a_reads, a.laf().stats().read_requests);
    a_bytes = std::max(a_bytes, a.laf().stats().bytes_read);
  });

  result.sim_time_s = report.max_sim_time_s();
  result.wall_time_s = report.wall_time_s;
  result.a_read_requests = a_reads;
  result.a_bytes_read = a_bytes;
  result.total_io_requests = report.total_io_requests();
  result.total_io_bytes = report.total_io_bytes();
  result.total_messages = report.total_messages();
  result.total_bytes_sent = report.total_bytes_sent();
  return result;
}

/// Per-routing-path measurements for the element-vs-block comparisons in
/// bench/redistribution and bench/two_phase_io: simulated makespan,
/// simulated communication bytes (routed descriptors + payload), message
/// count, and host wall time of the SPMD region.
struct RouteRunResult {
  double sim_time_s = 0.0;
  double wall_time_s = 0.0;
  std::uint64_t comm_bytes = 0;
  std::uint64_t messages = 0;
};

inline RouteRunResult route_run_result(const sim::RunReport& report) {
  RouteRunResult r;
  r.sim_time_s = report.max_sim_time_s();
  r.wall_time_s = report.wall_time_s;
  r.comm_bytes = report.total_bytes_sent();
  r.messages = report.total_messages();
  return r;
}

/// Default sweep parameters honouring the environment knobs.
inline std::int64_t bench_n(std::int64_t paper_n) {
  if (env_flag("OOCC_FULL")) {
    return env_int("OOCC_N", paper_n);
  }
  return env_int("OOCC_N", 512);
}

inline std::vector<int> bench_procs() {
  return env_int_list("OOCC_PROCS", {4, 16, 32, 64});
}

inline void print_header(const std::string& title) {
  std::printf("\n==== %s ====\n", title.c_str());
}

}  // namespace oocc::bench
