// Reuse-aware slab buffer pool: LAF traffic of a two-statement GAXPY-style
// elementwise chain, with the pool on vs --no-cache.
//
// Workload (statement-at-a-time — the case fusion does not cover, e.g.
// separately compiled statements):
//   c = a*b ; e = c + a*b
//
// Uncached, statement 2 re-reads c, a and b from their Local Array Files
// even though every one of those slabs was in memory moments earlier:
// 5 local-array reads + 2 writes in total. With the pool, statement 2's
// demand reads hit slabs statement 1 read (a, b) or staged (c, served
// dirty before its write-back), so the chain moves 2 reads + 2 writes —
// a 7/4 = 1.75x LAF-byte reduction. The slab sweeps stay genuinely
// out-of-core (each buffer holds a fraction of a local array); the pool is
// given the memory the compiler left unused (OOCC_CACHE_BUDGET_FACTOR
// local arrays, default 4) so the chain's working set is retainable.
//
// The bench exits nonzero if the >= 1.5x byte invariant breaks (CI runs it
// in the release smoke job), or if the pool run's outputs differ from the
// uncached run's.
#include "bench_common.hpp"

#include <mutex>
#include <set>

#include "oocc/compiler/lower.hpp"
#include "oocc/exec/interp.hpp"

namespace {

std::string chain_source(std::int64_t n, int p) {
  return "parameter (n=" + std::to_string(n) + ", p=" + std::to_string(p) +
         ")\n"
         "real a(n,n), b(n,n), c(n,n), e(n,n)\n"
         "!hpf$ processors Pr(p)\n"
         "!hpf$ template d(n)\n"
         "!hpf$ distribute d(block) onto Pr\n"
         "!hpf$ align (*,:) with d :: a, b, c, e\n"
         "forall (k=1:n)\n"
         "  c(1:n,k) = a(1:n,k)*b(1:n,k)\n"
         "end forall\n"
         "forall (k=1:n)\n"
         "  e(1:n,k) = c(1:n,k) + a(1:n,k)*b(1:n,k)\n"
         "end forall\n"
         "end\n";
}

struct ChainResult {
  std::uint64_t laf_bytes = 0;
  std::uint64_t laf_requests = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_writebacks = 0;
  std::uint64_t bytes_avoided = 0;
  double sim_time_s = 0.0;
  std::vector<double> e_global;  ///< gathered result (rank 0)
};

ChainResult run_chain(std::int64_t n, int p, bool use_cache) {
  using namespace oocc;

  compiler::CompileOptions options;
  // Statement-at-a-time: the pool, not fusion, is under test here.
  options.enable_statement_fusion = false;
  // Slab sizes from one local array's worth of memory: every sweep is
  // multi-slab (each buffer holds ~1/3 of a local array).
  const std::int64_t local = n * ((n + p - 1) / p);
  options.memory_budget_elements = local;
  const std::vector<compiler::NodeProgram> plans =
      compiler::compile_sequence_source(chain_source(n, p), options);

  ChainResult result;
  io::TempDir dir("oocc-cache");
  sim::Machine machine(p, sim::MachineCostModel::touchstone_delta());
  std::mutex mu;
  sim::RunReport report = machine.run([&](sim::SpmdContext& ctx) {
    auto arrays = exec::create_sequence_arrays(
        ctx, std::span<const compiler::NodeProgram>(plans.data(),
                                                    plans.size()),
        dir.path(), io::DiskModel::touchstone_delta_cfs());
    std::set<std::string> outputs;
    for (const compiler::NodeProgram& plan : plans) {
      for (const auto& [name, pa] : plan.arrays) {
        if (pa.is_output) {
          outputs.insert(name);
        }
      }
    }
    for (auto& [name, arr] : arrays) {
      if (!outputs.contains(name)) {
        arr->initialize(
            ctx,
            [](std::int64_t r, std::int64_t c) {
              return 1.0 + 1e-3 * static_cast<double>((r * 31 + c * 7) % 101);
            },
            local);
      }
      arr->laf().reset_stats();
    }
    sim::barrier(ctx);
    ctx.reset_accounting();
    exec::ArrayBindings bindings;
    for (auto& [name, arr] : arrays) {
      bindings[name] = arr.get();
    }
    exec::ExecOptions exec_options;
    exec_options.use_cache = use_cache;
    // The compiler sized the slabs; the pool additionally gets the node
    // memory the plans left unused, so the chain's working set (a, b and
    // the staged c) is retainable across statements.
    exec_options.budget_elements =
        local * env_int("OOCC_CACHE_BUDGET_FACTOR", 4);
    runtime::SlabCacheStats cache;
    exec_options.cache_stats = &cache;
    exec::execute_sequence(
        ctx,
        std::span<const compiler::NodeProgram>(plans.data(), plans.size()),
        bindings, exec_options);
    std::vector<double> e = arrays.at("e")->gather_global(ctx, local);
    std::lock_guard<std::mutex> lock(mu);
    for (auto& [name, arr] : arrays) {
      const io::IoStats& s = arr->laf().stats();
      result.laf_bytes += s.bytes_read + s.bytes_written;
      result.laf_requests += s.read_requests + s.write_requests;
      result.bytes_avoided += s.bytes_cache_hit;
    }
    result.cache_hits += cache.hits;
    result.cache_writebacks += cache.writebacks;
    if (ctx.rank() == 0) {
      result.e_global = std::move(e);
    }
  });
  result.sim_time_s = report.max_sim_time_s();
  return result;
}

}  // namespace

int main() {
  using namespace oocc;
  using namespace oocc::bench;

  const std::int64_t n = bench_n(512);
  print_header(
      "Slab buffer pool: 2-statement GAXPY chain, LAF traffic vs --no-cache");
  std::printf("c = a*b ; e = c + a*b (statement-at-a-time), N = %lld\n\n",
              static_cast<long long>(n));

  TextTable table({"P", "no-cache MB", "pool MB", "byte ratio",
                   "no-cache reqs", "pool reqs", "hits", "write-backs",
                   "MB avoided", "no-cache time (s)", "pool time (s)"});
  bool ok = true;
  for (int p : bench_procs()) {
    if (p > n) {
      continue;
    }
    const ChainResult plain = run_chain(n, p, /*use_cache=*/false);
    const ChainResult pooled = run_chain(n, p, /*use_cache=*/true);
    const double ratio = static_cast<double>(plain.laf_bytes) /
                         static_cast<double>(pooled.laf_bytes);
    // The ISSUE invariant: >= 1.5x fewer LAF bytes with the pool on.
    ok = ok && 2 * plain.laf_bytes >= 3 * pooled.laf_bytes;
    // And bit-identical results: the pool changes where bytes come from,
    // never their values.
    if (plain.e_global.size() != pooled.e_global.size()) {
      std::printf("result size mismatch at P=%d\n", p);
      ok = false;
    } else {
      for (std::size_t i = 0; i < plain.e_global.size(); ++i) {
        if (plain.e_global[i] != pooled.e_global[i]) {
          std::printf("result mismatch at P=%d index %zu\n", p, i);
          ok = false;
          break;
        }
      }
    }
    table.add_row(
        {std::to_string(p),
         format_fixed(static_cast<double>(plain.laf_bytes) / 1e6, 1),
         format_fixed(static_cast<double>(pooled.laf_bytes) / 1e6, 1),
         format_fixed(ratio, 2) + "x", std::to_string(plain.laf_requests),
         std::to_string(pooled.laf_requests),
         std::to_string(pooled.cache_hits),
         std::to_string(pooled.cache_writebacks),
         format_fixed(static_cast<double>(pooled.bytes_avoided) / 1e6, 1),
         format_fixed(plain.sim_time_s, 2),
         format_fixed(pooled.sim_time_s, 2)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "shape check (pool moves >=1.5x fewer LAF bytes, identical results): "
      "%s\n",
      ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
