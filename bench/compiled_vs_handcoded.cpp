// §3.2.1's observation, carried to the out-of-core case: the compiled code
// should match the hand-coded node program. We compile the Figure 3 HPF
// source through the full pipeline and compare its simulated time and I/O
// counters against a direct invocation of the hand-written row-slab
// kernel with the same slab sizes.
#include "bench_common.hpp"

#include "oocc/compiler/lower.hpp"
#include "oocc/exec/interp.hpp"
#include "oocc/hpf/programs.hpp"

int main() {
  using namespace oocc;
  using namespace oocc::bench;

  const std::int64_t n = bench_n(1024);
  const int p = static_cast<int>(env_int("OOCC_CVH_PROCS", 4));
  const std::int64_t local = n * ((n + p - 1) / p);
  const std::int64_t budget = local + 4 * n;

  print_header("Compiled (HPF -> plan -> execute) vs hand-coded kernel");
  std::printf("N = %lld, P = %d\n\n", static_cast<long long>(n), p);

  // Compiled path.
  compiler::CompileOptions options;
  options.memory_budget_elements = budget;
  options.disk = io::DiskModel::touchstone_delta_cfs();
  const compiler::NodeProgram plan =
      compiler::compile_source(hpf::gaxpy_source(n, p), options);

  io::TempDir cdir("oocc-compiled");
  sim::Machine cmachine(p, sim::MachineCostModel::touchstone_delta());
  sim::RunReport creport = cmachine.run([&](sim::SpmdContext& ctx) {
    auto arrays = exec::create_plan_arrays(
        ctx, plan, cdir.path(), io::DiskModel::touchstone_delta_cfs());
    arrays.at(plan.a)->initialize(
        ctx, [](std::int64_t r, std::int64_t c) {
          return 1.0 + 1e-4 * static_cast<double>((r * 3 + c) % 91);
        },
        local / 4);
    arrays.at(plan.b)->initialize(
        ctx, [](std::int64_t r, std::int64_t c) {
          return 2.0 - 1e-4 * static_cast<double>((r + 7 * c) % 83);
        },
        local / 4);
    sim::barrier(ctx);
    ctx.reset_accounting();
    exec::ArrayBindings bindings;
    for (auto& [name, arr] : arrays) {
      bindings[name] = arr.get();
    }
    // The comparison proves the compiled plan equals the hand-coded kernel;
    // the hand-coded path has no slab cache, so run the executor without
    // one too.
    exec::ExecOptions exec_options;
    exec_options.use_cache = false;
    exec::execute(ctx, plan, bindings, exec_options);
  });

  // Hand-coded path with the compiler's slab sizes.
  GaxpyRunConfig cfg;
  cfg.version = plan.a_orientation == runtime::SlabOrientation::kRowSlabs
                    ? GaxpyVersion::kRowSlabs
                    : GaxpyVersion::kColumnSlabs;
  cfg.n = n;
  cfg.nprocs = p;
  cfg.slab_a = plan.memory.slab_a;
  cfg.slab_b = plan.memory.slab_b;
  cfg.slab_c = plan.memory.slab_c;
  const GaxpyRunResult hand = run_gaxpy(cfg);

  TextTable table({"path", "time (s)", "IO requests", "IO MB", "messages"});
  table.add_row({"compiled", format_fixed(creport.max_sim_time_s(), 2),
                 std::to_string(creport.total_io_requests()),
                 format_fixed(static_cast<double>(creport.total_io_bytes()) /
                                  1e6,
                              1),
                 std::to_string(creport.total_messages())});
  table.add_row({"hand-coded", format_fixed(hand.sim_time_s, 2),
                 std::to_string(hand.total_io_requests),
                 format_fixed(static_cast<double>(hand.total_io_bytes) / 1e6,
                              1),
                 std::to_string(hand.total_messages)});
  std::printf("%s\n", table.to_string().c_str());

  const double ratio = creport.max_sim_time_s() / hand.sim_time_s;
  const bool ok = ratio > 0.95 && ratio < 1.05;
  std::printf("compiled/hand-coded time ratio: %.3f — %s\n", ratio,
              ok ? "OK (within 5%)" : "FAILED");
  return ok ? 0 : 1;
}
