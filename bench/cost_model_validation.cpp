// Validation of the compiler's I/O cost estimator (Equations 3-6) against
// measured counters: for a sweep of N, P and slab ratios, the predicted
// T_fetch (requests/processor) and T_data (elements/processor) for array A
// must match the LocalArrayFile counters exactly.
#include "bench_common.hpp"

#include "oocc/compiler/cost.hpp"

int main() {
  using namespace oocc;
  using namespace oocc::bench;

  print_header("Cost-model validation: Equations 3-6 vs measured counters");

  TextTable table({"orient", "N", "P", "ratio", "T_fetch pred", "T_fetch meas",
                   "T_data pred", "T_data meas", "match"});
  bool all_ok = true;

  const std::int64_t n = bench_n(256) >= 512 ? 256 : bench_n(256);
  for (runtime::SlabOrientation orient :
       {runtime::SlabOrientation::kColumnSlabs,
        runtime::SlabOrientation::kRowSlabs}) {
    for (int p : {2, 4, 8}) {
      for (int den : {1, 2, 4, 8}) {
        const std::int64_t local = n * (n / p);
        const std::int64_t slab = local / den;

        compiler::GaxpyCostQuery q;
        q.n = n;
        q.nprocs = p;
        q.slab_a = q.slab_b = q.slab_c = slab;
        const compiler::CandidateCost predicted =
            compiler::estimate_gaxpy_cost(orient, q);

        GaxpyRunConfig cfg;
        cfg.version = orient == runtime::SlabOrientation::kColumnSlabs
                          ? GaxpyVersion::kColumnSlabs
                          : GaxpyVersion::kRowSlabs;
        cfg.n = n;
        cfg.nprocs = p;
        cfg.slab_a = cfg.slab_b = cfg.slab_c = slab;
        const GaxpyRunResult r = run_gaxpy(cfg);

        const double pred_fetch = predicted.cost_of("a").fetch_requests;
        const double pred_data = predicted.cost_of("a").data_elements;
        const double meas_fetch = static_cast<double>(r.a_read_requests);
        const double meas_data = static_cast<double>(r.a_bytes_read) / 8.0;
        const bool ok = pred_fetch == meas_fetch && pred_data == meas_data;
        all_ok = all_ok && ok;
        table.add_row({std::string(runtime::slab_orientation_name(orient)),
                       std::to_string(n), std::to_string(p),
                       format_ratio(1, den), format_fixed(pred_fetch, 0),
                       format_fixed(meas_fetch, 0), format_fixed(pred_data, 0),
                       format_fixed(meas_data, 0), ok ? "OK" : "FAIL"});
      }
    }
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("all predictions exact: %s\n", all_ok ? "OK" : "FAILED");
  return all_ok ? 0 : 1;
}
