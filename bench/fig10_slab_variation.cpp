// Figure 10 reproduction: effect of slab-size variation on the column-slab
// (straightforward) out-of-core matrix multiplication.
//
// Paper setup: 1K x 1K reals on the Intel Touchstone Delta, P in
// {4,16,32,64}, slab ratio (slab size / OCLA size) in {1, 1/2, 1/4, 1/8}.
// Expected shape: time grows as the slab ratio shrinks (more I/O requests
// for the same volume), and shrinks only mildly with P (the shared I/O
// subsystem, not the CPUs, is the bottleneck).
#include "bench_common.hpp"

namespace {

// Figure 10 / Table 1 column-slab numbers from the paper (seconds),
// indexed [ratio 1/8, 1/4, 1/2, 1][P = 4, 16, 32, 64].
constexpr double kPaper[4][4] = {
    {1045.84, 897.59, 857.62, 803.57},
    {979.20, 864.08, 807.99, 783.79},
    {958.17, 802.69, 788.47, 698.29},
    {923.11, 714.15, 680.40, 620.70},
};

}  // namespace

int main() {
  using namespace oocc;
  using namespace oocc::bench;

  const std::int64_t n = bench_n(1024);
  const std::vector<int> procs = bench_procs();
  const int dens[4] = {8, 4, 2, 1};

  print_header("Figure 10: slab-size variation, column-slab OOC GAXPY");
  std::printf("N = %lld, simulated Touchstone Delta; paper numbers are for "
              "N = 1024\n\n",
              static_cast<long long>(n));

  std::vector<std::string> header{"Slab Ratio"};
  for (int p : procs) {
    header.push_back(std::to_string(p) + " Procs");
    header.push_back("(paper)");
  }
  TextTable table(header);

  for (int row = 0; row < 4; ++row) {
    const int den = dens[row];
    std::vector<std::string> cells{format_ratio(1, den)};
    for (std::size_t pi = 0; pi < procs.size(); ++pi) {
      const int p = procs[pi];
      GaxpyRunConfig cfg;
      cfg.version = GaxpyVersion::kColumnSlabs;
      cfg.n = n;
      cfg.nprocs = p;
      const std::int64_t local = n * ((n + p - 1) / p);
      cfg.slab_a = local / den;
      cfg.slab_b = local / den;
      cfg.slab_c = local / den;
      const GaxpyRunResult r = run_gaxpy(cfg);
      cells.push_back(format_fixed(r.sim_time_s, 2));
      const bool have_paper = p == 4 || p == 16 || p == 32 || p == 64;
      const int paper_col = p == 4 ? 0 : p == 16 ? 1 : p == 32 ? 2 : 3;
      cells.push_back(have_paper ? format_fixed(kPaper[row][paper_col], 2)
                                 : "-");
    }
    table.add_row(std::move(cells));
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("Shape checks: time increases as slab ratio decreases; weak "
              "scaling with P (shared disks).\n");
  return 0;
}
