// Inter-statement slab fusion: LAF traffic of a three-statement
// elementwise chain, fused vs statement-at-a-time.
//
// Workload (the chain the compiler sees):
//   y = x*2 + 1 ; z = y*x ; w = z + y*x
//
// Unfused, every statement does its own full sweep: x is read three times
// and y twice, plus z once — 6 slab reads and 3 writes of the local array
// per processor. The fused sweep reads x once and keeps y and z in their
// staging buffers, so the same chain moves 1 read + 3 writes. Expected
// shape: >= 2x fewer LAF bytes (exactly 9/4 = 2.25x here), with the
// simulated time win tracking the disk model. The bench exits nonzero if
// the >= 2x invariant breaks (CI runs it in the release smoke job).
#include "bench_common.hpp"

#include <mutex>
#include <set>

#include "oocc/compiler/lower.hpp"
#include "oocc/exec/interp.hpp"

namespace {

std::string chain_source(std::int64_t n, int p) {
  return "parameter (n=" + std::to_string(n) + ", p=" + std::to_string(p) +
         ")\n"
         "real x(n,n), y(n,n), z(n,n), w(n,n)\n"
         "!hpf$ processors Pr(p)\n"
         "!hpf$ template d(n)\n"
         "!hpf$ distribute d(block) onto Pr\n"
         "!hpf$ align (*,:) with d :: x, y, z, w\n"
         "forall (k=1:n)\n"
         "  y(1:n,k) = x(1:n,k)*2 + 1\n"
         "end forall\n"
         "forall (k=1:n)\n"
         "  z(1:n,k) = y(1:n,k)*x(1:n,k)\n"
         "end forall\n"
         "forall (k=1:n)\n"
         "  w(1:n,k) = z(1:n,k) + y(1:n,k)*x(1:n,k)\n"
         "end forall\n"
         "end\n";
}

struct ChainResult {
  std::uint64_t laf_bytes = 0;
  std::uint64_t laf_requests = 0;
  double sim_time_s = 0.0;
  double wall_time_s = 0.0;
  std::size_t plan_count = 0;
};

ChainResult run_chain(std::int64_t n, int p, bool fuse) {
  using namespace oocc;

  compiler::CompileOptions options;
  options.enable_statement_fusion = fuse;
  // Genuinely out-of-core: a quarter of one local array, split between the
  // chain's four arrays.
  const std::int64_t local = n * ((n + p - 1) / p);
  options.memory_budget_elements = local;
  const std::vector<compiler::NodeProgram> plans =
      compiler::compile_sequence_source(chain_source(n, p), options);

  ChainResult result;
  result.plan_count = plans.size();
  io::TempDir dir("oocc-fusion");
  sim::Machine machine(p, sim::MachineCostModel::touchstone_delta());
  std::mutex mu;
  sim::RunReport report = machine.run([&](sim::SpmdContext& ctx) {
    auto arrays = exec::create_sequence_arrays(
        ctx, std::span<const compiler::NodeProgram>(plans.data(),
                                                    plans.size()),
        dir.path(), io::DiskModel::touchstone_delta_cfs());
    std::set<std::string> outputs;
    for (const compiler::NodeProgram& plan : plans) {
      for (const auto& [name, pa] : plan.arrays) {
        if (pa.is_output) {
          outputs.insert(name);
        }
      }
    }
    for (auto& [name, arr] : arrays) {
      if (!outputs.contains(name)) {
        arr->initialize(
            ctx,
            [](std::int64_t r, std::int64_t c) {
              return 1.0 + 1e-3 * static_cast<double>((r * 31 + c * 7) % 101);
            },
            local);
      }
      arr->laf().reset_stats();
    }
    sim::barrier(ctx);
    ctx.reset_accounting();
    exec::ArrayBindings bindings;
    for (auto& [name, arr] : arrays) {
      bindings[name] = arr.get();
    }
    // This bench isolates *fusion*: with the slab cache on, the unfused
    // chain would recover most of its re-reads from the pool and the
    // comparison would measure caching instead (that is bench/cache_reuse's
    // job). Run both arms uncached.
    exec::ExecOptions exec_options;
    exec_options.use_cache = false;
    exec::execute_sequence(
        ctx,
        std::span<const compiler::NodeProgram>(plans.data(), plans.size()),
        bindings, exec_options);
    std::lock_guard<std::mutex> lock(mu);
    for (auto& [name, arr] : arrays) {
      const io::IoStats& s = arr->laf().stats();
      result.laf_bytes += s.bytes_read + s.bytes_written;
      result.laf_requests += s.read_requests + s.write_requests;
    }
  });
  result.sim_time_s = report.max_sim_time_s();
  result.wall_time_s = report.wall_time_s;
  return result;
}

}  // namespace

int main() {
  using namespace oocc;
  using namespace oocc::bench;

  const std::int64_t n = bench_n(512);
  print_header("Slab fusion: 3-statement elementwise chain, LAF traffic");
  std::printf("y = x*2+1 ; z = y*x ; w = z + y*x, N = %lld\n\n",
              static_cast<long long>(n));

  TextTable table({"P", "unfused MB", "fused MB", "byte ratio",
                   "unfused reqs", "fused reqs", "unfused time (s)",
                   "fused time (s)", "speedup"});
  bool ok = true;
  for (int p : bench_procs()) {
    if (p > n) {
      continue;
    }
    const ChainResult unfused = run_chain(n, p, /*fuse=*/false);
    const ChainResult fused = run_chain(n, p, /*fuse=*/true);
    if (unfused.plan_count != 3 || fused.plan_count != 1) {
      std::printf("unexpected plan counts: unfused=%zu fused=%zu\n",
                  unfused.plan_count, fused.plan_count);
      ok = false;
    }
    const double ratio = static_cast<double>(unfused.laf_bytes) /
                         static_cast<double>(fused.laf_bytes);
    ok = ok && unfused.laf_bytes >= 2 * fused.laf_bytes;
    table.add_row(
        {std::to_string(p),
         format_fixed(static_cast<double>(unfused.laf_bytes) / 1e6, 1),
         format_fixed(static_cast<double>(fused.laf_bytes) / 1e6, 1),
         format_fixed(ratio, 2) + "x", std::to_string(unfused.laf_requests),
         std::to_string(fused.laf_requests),
         format_fixed(unfused.sim_time_s, 2),
         format_fixed(fused.sim_time_s, 2),
         format_fixed(unfused.sim_time_s / fused.sim_time_s, 1) + "x"});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("shape check (fused chain moves >=2x fewer LAF bytes): %s\n",
              ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
