// §2.3 and §4.1 one-time reorganization overheads and their amortization.
//
// Three experiments:
//  1. Routing format: the same column-block -> row-block redistribution
//     with per-element triples (the pre-block baseline) vs ownership-run
//     block descriptors; report simulated communication bytes, messages,
//     simulated time, and host wall time. Shape check: blocks move >= 2x
//     fewer simulated bytes.
//  2. Initial redistribution: data arrives on disk column-block but the
//     program wants row-block; measure the out-of-core redistribution and
//     compare with the cost of one GAXPY run (the paper argues the
//     overhead is amortized when the array is used repeatedly).
//  3. Storage reorganization: the optimizer wants row slabs of A; compare
//     (a) paying strided row-slab reads every run, vs (b) reorganizing the
//     LAF to row-major once and reading contiguous slabs. Report the
//     crossover (number of runs) after which reorganization wins.
#include "bench_common.hpp"

#include "oocc/runtime/redistribute.hpp"
#include "oocc/runtime/reorganize.hpp"

int main() {
  using namespace oocc;
  using namespace oocc::bench;

  const std::int64_t n = bench_n(1024);
  const int p = static_cast<int>(env_int("OOCC_REDIST_PROCS", 4));
  const std::int64_t local = n * ((n + p - 1) / p);

  print_header("Redistribution & storage reorganization overheads");
  std::printf("N = %lld, P = %d\n\n", static_cast<long long>(n), p);

  bool ok = true;
  double block_redist_time = 0.0;

  // ---- Experiment 1: element-path vs block-path routing for the same
  // column-block -> row-block redistribution.
  {
    auto run_redist = [&](runtime::RouteMode mode) {
      io::TempDir dir("oocc-redist");
      sim::Machine machine(p, sim::MachineCostModel::touchstone_delta());
      sim::RunReport report = machine.run([&](sim::SpmdContext& ctx) {
        runtime::OutOfCoreArray src(ctx, dir.path(), "src",
                                    hpf::column_block(n, n, p),
                                    io::StorageOrder::kColumnMajor,
                                    io::DiskModel::touchstone_delta_cfs());
        runtime::OutOfCoreArray dst(ctx, dir.path(), "dst",
                                    hpf::row_block(n, n, p),
                                    io::StorageOrder::kColumnMajor,
                                    io::DiskModel::touchstone_delta_cfs());
        src.initialize(
            ctx,
            [](std::int64_t r, std::int64_t c) {
              return static_cast<double>((r + c) % 17);
            },
            local / 4);
        sim::barrier(ctx);
        ctx.reset_accounting();
        runtime::redistribute(ctx, src, dst, local / 4, mode);
      });
      return route_run_result(report);
    };
    const RouteRunResult elem = run_redist(runtime::RouteMode::kElement);
    const RouteRunResult blk = run_redist(runtime::RouteMode::kBlock);
    block_redist_time = blk.sim_time_s;

    TextTable table({"routing", "sim time (s)", "comm bytes", "messages",
                     "host wall (s)"});
    table.add_row({"element", format_fixed(elem.sim_time_s, 2),
                   std::to_string(elem.comm_bytes),
                   std::to_string(elem.messages),
                   format_fixed(elem.wall_time_s, 3)});
    table.add_row({"block", format_fixed(blk.sim_time_s, 2),
                   std::to_string(blk.comm_bytes),
                   std::to_string(blk.messages),
                   format_fixed(blk.wall_time_s, 3)});
    std::printf("%s\n", table.to_string().c_str());
    if (blk.comm_bytes > 0) {
      std::printf("block routing: %.2fx fewer simulated comm bytes, host "
                  "wall %.3fs -> %.3fs\n",
                  static_cast<double>(elem.comm_bytes) /
                      static_cast<double>(blk.comm_bytes),
                  elem.wall_time_s, blk.wall_time_s);
    }
    const bool bytes_ok =
        p == 1 || elem.comm_bytes >= 2 * blk.comm_bytes;
    std::printf("shape check (blocks move >=2x fewer bytes): %s\n\n",
                bytes_ok ? "OK" : "FAILED");
    ok = ok && bytes_ok;
  }

  // ---- Experiment 2: redistribution amortization against one GAXPY run.
  {
    GaxpyRunConfig cfg;
    cfg.version = GaxpyVersion::kRowSlabs;
    cfg.n = n;
    cfg.nprocs = p;
    cfg.slab_a = cfg.slab_b = cfg.slab_c = local / 4;
    const GaxpyRunResult run = run_gaxpy(cfg);

    std::printf("column-block -> row-block redistribution: %.2f s "
                "(%.2f%% of one optimized GAXPY run at %.2f s)\n",
                block_redist_time,
                100.0 * block_redist_time / run.sim_time_s, run.sim_time_s);
  }

  // ---- Experiment 3: storage order reorganization crossover.
  {
    io::TempDir dir("oocc-reorg");
    sim::Machine machine(p, sim::MachineCostModel::touchstone_delta());
    double reorg_time = 0.0;
    machine.run([&](sim::SpmdContext& ctx) {
      const std::int64_t nlc = (n + p - 1) / p;
      io::LocalArrayFile cm(dir.path() / ("cm_p" + std::to_string(ctx.rank())),
                            n, nlc, io::StorageOrder::kColumnMajor,
                            io::DiskModel::touchstone_delta_cfs());
      io::LocalArrayFile rm(dir.path() / ("rm_p" + std::to_string(ctx.rank())),
                            n, nlc, io::StorageOrder::kRowMajor,
                            io::DiskModel::touchstone_delta_cfs());
      cm.fill(ctx, 1.0);
      sim::barrier(ctx);
      ctx.reset_accounting();
      runtime::reorganize_storage(ctx, cm, rm, local / 4);
      if (ctx.rank() == 0) {
        reorg_time = ctx.clock().now();
      }
    });

    // Per-run cost with strided vs contiguous row slabs. Reuse the cost
    // estimator's honest extent arithmetic by timing actual runs: the
    // "strided" run stores A column-major but sweeps row slabs.
    GaxpyRunConfig strided;
    strided.version = GaxpyVersion::kRowSlabs;
    strided.n = n;
    strided.nprocs = p;
    strided.slab_a = strided.slab_b = strided.slab_c = local / 4;
    // run_gaxpy stores A row-major for the row version; emulate the
    // strided variant with a custom run below.
    io::TempDir sdir("oocc-strided");
    sim::Machine smachine(p, sim::MachineCostModel::touchstone_delta());
    sim::RunReport sreport = smachine.run([&](sim::SpmdContext& ctx) {
      runtime::OutOfCoreArray a(ctx, sdir.path(), "a",
                                hpf::column_block(n, n, p),
                                io::StorageOrder::kColumnMajor,
                                io::DiskModel::touchstone_delta_cfs());
      runtime::OutOfCoreArray b(ctx, sdir.path(), "b",
                                hpf::row_block(n, n, p),
                                io::StorageOrder::kColumnMajor,
                                io::DiskModel::touchstone_delta_cfs());
      runtime::OutOfCoreArray c(ctx, sdir.path(), "c",
                                hpf::column_block(n, n, p),
                                io::StorageOrder::kColumnMajor,
                                io::DiskModel::touchstone_delta_cfs());
      a.initialize(ctx, [](std::int64_t, std::int64_t) { return 1.0; },
                   local / 4);
      b.initialize(ctx, [](std::int64_t, std::int64_t) { return 1.0; },
                   local / 4);
      sim::barrier(ctx);
      ctx.reset_accounting();
      gaxpy::GaxpyConfig kcfg;
      kcfg.slab_a_elements = local / 4;
      kcfg.slab_b_elements = local / 4;
      kcfg.slab_c_elements = local / 4;
      runtime::MemoryBudget budget(4 * local + 4 * n);
      gaxpy::ooc_gaxpy_row_slabs(ctx, a, b, c, budget, kcfg);
    });
    const double strided_time = sreport.max_sim_time_s();

    const GaxpyRunResult contiguous = run_gaxpy(strided);
    const double saving = strided_time - contiguous.sim_time_s;
    std::printf("row slabs on column-major A: %.2f s/run; after one-time "
                "reorganization (%.2f s): %.2f s/run\n",
                strided_time, reorg_time, contiguous.sim_time_s);
    if (saving > 0) {
      std::printf("reorganization pays off after %.1f runs\n",
                  reorg_time / saving);
    }
    const bool reorg_ok = contiguous.sim_time_s < strided_time;
    std::printf("shape check (contiguous slabs faster than strided): %s\n",
                reorg_ok ? "OK" : "FAILED");
    ok = ok && reorg_ok;
  }
  return ok ? 0 : 1;
}
