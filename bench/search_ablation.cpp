// Plan search vs heuristics: priced and simulated makespan of the
// cost-model-driven global plan search (compiler/search.hpp, --opt=search)
// against the default heuristic lowering, on the two workload families the
// search has real room in:
//
//   chain    a 2-statement elementwise chain whose second statement reads
//            three extra arrays: the heuristic's fuse-everything plan
//            shares the slab budget across all five arrays (narrow slabs,
//            many requests), while the search's fusion partitions find
//            that running the statements separately — wider slabs, one
//            extra pass over the intermediate — is strictly cheaper on a
//            request-dominated disk;
//   stencil  the Jacobi sweep at a budget that is not a multiple of
//            4*rows: the heuristic's width w = budget/(4 rows) - d leaves
//            a ragged tail slab, and the search's width enumeration finds
//            the divisor width w = cols/2 that fits the same working-set
//            bound with one fewer slab per sweep.
//
// For each workload and P the bench compiles both ways, prices both plan
// sets with the exact sequence pricer (the search's own objective), runs
// both on the simulated Touchstone Delta, and checks bit-identity of the
// outputs. It exits nonzero unless the searched plan strictly wins —
// priced AND simulated — on at least one chain and one stencil
// configuration (CI runs this in the release smoke job).
#include "bench_common.hpp"

#include <set>

#include "oocc/compiler/lower.hpp"
#include "oocc/compiler/search.hpp"
#include "oocc/exec/interp.hpp"
#include "oocc/hpf/programs.hpp"

namespace {

using namespace oocc;

std::string chain_source(std::int64_t n, int p) {
  return "parameter (n=" + std::to_string(n) + ", p=" + std::to_string(p) +
         ")\n"
         "real x(n,n), y(n,n), u(n,n), v(n,n), w(n,n)\n"
         "!hpf$ processors Pr(p)\n"
         "!hpf$ template d(n)\n"
         "!hpf$ distribute d(block) onto Pr\n"
         "!hpf$ align (*,:) with d :: x, y, u, v, w\n"
         "forall (k=1:n)\n"
         "  y(1:n,k) = x(1:n,k)*2 + 1\n"
         "end forall\n"
         "forall (k=1:n)\n"
         "  w(1:n,k) = y(1:n,k)*u(1:n,k) + v(1:n,k)\n"
         "end forall\n"
         "end\n";
}

struct ModeResult {
  double priced_s = 0.0;
  double sim_time_s = 0.0;
  std::uint64_t laf_requests = 0;
  std::vector<double> output;  ///< gathered final output (rank 0)
};

ModeResult run_mode(const std::vector<compiler::NodeProgram>& plans,
                    const compiler::CompileOptions& options, int p,
                    const std::string& output_array) {
  ModeResult result;
  result.priced_s = compiler::priced_sequence_makespan_s(
      std::span<const compiler::NodeProgram>(plans.data(), plans.size()),
      options.disk, options.machine);

  io::TempDir dir("oocc-search-bench");
  sim::Machine machine(p, options.machine);
  std::mutex mu;
  sim::RunReport report = machine.run([&](sim::SpmdContext& ctx) {
    auto arrays = exec::create_sequence_arrays(
        ctx,
        std::span<const compiler::NodeProgram>(plans.data(), plans.size()),
        dir.path(), options.disk);
    std::set<std::string> outputs;
    for (const compiler::NodeProgram& plan : plans) {
      for (const auto& [name, pa] : plan.arrays) {
        if (pa.is_output) {
          outputs.insert(name);
        }
      }
    }
    for (auto& [name, arr] : arrays) {
      if (!outputs.contains(name)) {
        arr->initialize(
            ctx,
            [](std::int64_t r, std::int64_t c) {
              return 1.0 + 1e-3 * static_cast<double>((r * 31 + c * 7) % 101);
            },
            1 << 16);
      }
      arr->laf().reset_stats();
    }
    sim::barrier(ctx);
    ctx.reset_accounting();
    exec::ArrayBindings bindings;
    for (auto& [name, arr] : arrays) {
      bindings[name] = arr.get();
    }
    exec::ExecOptions exec_options;
    exec_options.max_iters = 1;
    exec::execute_sequence(
        ctx,
        std::span<const compiler::NodeProgram>(plans.data(), plans.size()),
        bindings, exec_options);
    std::vector<double> out =
        arrays.at(output_array)->gather_global(ctx, 1 << 16);
    std::lock_guard<std::mutex> lock(mu);
    for (auto& [name, arr] : arrays) {
      const io::IoStats& s = arr->laf().stats();
      result.laf_requests += s.read_requests + s.write_requests;
    }
    if (ctx.rank() == 0) {
      result.output = std::move(out);
    }
  });
  result.sim_time_s = report.max_sim_time_s();
  return result;
}

struct Comparison {
  bool priced_win = false;
  bool measured_win = false;
  bool identical = false;
};

Comparison compare(const std::string& source, std::int64_t budget, int p,
                   const std::string& output_array,
                   oocc::TextTable& table, const std::string& label) {
  compiler::CompileOptions options;
  options.memory_budget_elements = budget;
  options.disk = io::DiskModel::touchstone_delta_cfs();
  options.machine = sim::MachineCostModel::touchstone_delta();

  const std::vector<compiler::NodeProgram> heuristic =
      compiler::compile_sequence_source(source, options);
  compiler::CompileOptions sopt = options;
  sopt.opt = compiler::OptMode::kSearch;
  compiler::SearchResult searched =
      compiler::search_sequence_source(source, sopt);

  const ModeResult h = run_mode(heuristic, options, p, output_array);
  const ModeResult s = run_mode(searched.plans, options, p, output_array);

  Comparison c;
  c.priced_win = s.priced_s < h.priced_s;
  c.measured_win = s.sim_time_s < h.sim_time_s;
  c.identical = h.output == s.output && !h.output.empty();
  table.add_row({label, std::to_string(p), std::to_string(budget),
                 format_fixed(h.priced_s, 4),
                 format_fixed(s.priced_s, 4),
                 format_fixed(h.sim_time_s, 4),
                 format_fixed(s.sim_time_s, 4),
                 std::to_string(h.laf_requests),
                 std::to_string(s.laf_requests),
                 c.priced_win && c.measured_win
                     ? (c.identical ? "win" : "MISMATCH")
                     : "-"});
  return c;
}

}  // namespace

int main() {
  using namespace oocc;
  using namespace oocc::bench;

  const std::int64_t n = bench_n(512);
  print_header(
      "Plan search vs heuristics: priced + simulated makespan ablation");
  std::printf("chain: 2-statement elementwise (5 arrays); stencil: Jacobi "
              "sweep; N = %lld\n\n",
              static_cast<long long>(n));

  TextTable table({"workload", "P", "budget", "heur priced (s)",
                         "search priced (s)", "heur sim (s)",
                         "search sim (s)", "heur reqs", "search reqs",
                         "verdict"});
  bool chain_win = false;
  bool stencil_win = false;
  bool all_identical = true;
  bool all_ordered = true;
  for (int p : bench_procs()) {
    if (p > n) {
      continue;
    }
    const std::int64_t local = n * ((n + p - 1) / p);
    // Chain: budget around half a local array — the fused sweep splits it
    // five ways, so the per-array slabs are narrow and the run is
    // request-bound, which is exactly the regime where unfusing wins.
    const Comparison chain = compare(chain_source(n, p), local / 2, p, "w",
                                     table, "chain");
    chain_win = chain_win || (chain.priced_win && chain.measured_win &&
                              chain.identical);
    all_identical = all_identical && chain.identical;
    all_ordered = all_ordered && chain.priced_win;

    // Stencil: 2*local + 2n is deliberately NOT a multiple of 4*rows, so
    // the heuristic width w = budget/(4 rows) - d truncates below the
    // divisor width cols/2 that the search's enumeration finds — same
    // working-set bound, one fewer (ragged-tail) slab per sweep.
    const Comparison stencil = compare(hpf::stencil_source(n, p),
                                       2 * local + 2 * n, p, "b", table,
                                       "stencil");
    stencil_win = stencil_win || (stencil.priced_win &&
                                  stencil.measured_win && stencil.identical);
    all_identical = all_identical && stencil.identical;
    all_ordered = all_ordered && stencil.priced_win;
  }
  std::printf("%s\n", table.to_string().c_str());
  const bool ok = chain_win && stencil_win && all_identical;
  std::printf(
      "shape check (search strictly beats heuristics, priced and "
      "simulated, on >=1 chain and >=1 stencil; outputs bit-identical): "
      "%s\n",
      ok ? "OK" : "FAILED");
  if (!all_ordered) {
    std::printf("note: search priced no better than heuristic on some "
                "configurations (never worse is guaranteed; strictly "
                "better is workload-dependent)\n");
  }
  return ok ? 0 : 1;
}
