// bench/serve_throughput — the compile server's two headline invariants.
//
// Phase 1 (plan serving): a mixed workload of op=compile requests is pushed
// through Server::handle_line twice. The cold pass clears the PlanCache
// before every request, so each one pays the full parse + lower + verify
// pipeline; the warm pass leaves the cache alone, so every request after
// priming is a hash lookup. The bench asserts warm throughput is at least
// 5x cold throughput (the ISSUE's warm-cache bar) and that the warm pass
// really was all hits.
//
// Phase 2 (multi-tenant execution): three tenants stream op=run stencil
// jobs at a shared budget sized so exactly two footprints fit at once.
// Asserted invariants: every tenant makes progress (admitted > 0), the
// budget is never oversubscribed (peak <= total), two jobs genuinely
// overlapped (peak >= 2 footprints), and every result fingerprint equals a
// serial reference computed by the oocc_compile driver path (direct
// compile_sequence + Machine::run, no cache, no admission) — bit-identity
// of cached multi-tenant execution against the serial compiler.
//
// Environment knobs (on top of bench_common's):
//   OOCC_SERVE_REQS  compile requests per pass (default 48)
//   OOCC_SERVE_REPS  run jobs per tenant in phase 2 (default 6)
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "oocc/compiler/lower.hpp"
#include "oocc/exec/interp.hpp"
#include "oocc/hpf/parser.hpp"
#include "oocc/hpf/programs.hpp"
#include "oocc/serve/hash.hpp"
#include "oocc/serve/job.hpp"
#include "oocc/serve/server.hpp"

namespace {

using namespace oocc;
using oocc::serve::Json;

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// One compile request line; the workload cycles through distinct keys so
/// the warm pass exercises the cache across programs, not just one entry.
std::string compile_request(int variant, std::int64_t n) {
  Json req = Json::object();
  req.set("id", "bench-" + std::to_string(variant));
  req.set("tenant", "bench");
  req.set("op", std::string("compile"));
  switch (variant % 4) {
    case 0:
      req.set("builtin", std::string("stencil"));
      req.set("n", n);
      req.set("p", 2);
      break;
    case 1:
      req.set("builtin", std::string("gaxpy"));
      req.set("n", n / 2);
      req.set("p", 4);
      break;
    case 2:
      req.set("builtin", std::string("elementwise"));
      req.set("n", n);
      req.set("p", 4);
      break;
    default:
      req.set("builtin", std::string("stencil"));
      req.set("n", n);
      req.set("p", 4);
      break;
  }
  return req.dump();
}

/// Serial reference: the oocc_compile driver path — direct compile, one
/// fresh machine, no cache, no admission. Returns the result fingerprint
/// the server must reproduce bit for bit.
std::uint64_t serial_reference_hash(const std::string& source,
                                    std::int64_t memory, int iters) {
  const hpf::BoundProgram bound = hpf::analyze(hpf::parse(source));
  compiler::CompileOptions options;
  options.memory_budget_elements = memory;
  std::vector<compiler::NodeProgram> plans =
      compiler::compile_sequence(bound, options);
  const compiler::NodeProgram& front = plans.front();
  const std::vector<std::string> outputs = serve::collect_output_arrays(plans);
  const std::set<std::string> output_set(outputs.begin(), outputs.end());

  io::TempDir dir("oocc-serve-bench");
  sim::Machine machine(front.nprocs, options.machine, sim::MachineOptions{});
  std::mutex mu;
  std::uint64_t result_hash = 0;
  machine.run([&](sim::SpmdContext& ctx) {
    auto arrays = exec::create_sequence_arrays(ctx, plans, dir.path(),
                                               options.disk);
    for (auto& [name, arr] : arrays) {
      if (!output_set.contains(name)) {
        arr->initialize(ctx,
                        name == front.b ? serve::input_gen_b
                                        : serve::input_gen_a,
                        options.memory_budget_elements);
      }
    }
    sim::barrier(ctx);
    ctx.reset_accounting();

    exec::ArrayBindings bindings;
    for (auto& [name, arr] : arrays) {
      bindings[name] = arr.get();
    }
    exec::ExecOptions exec_options = exec::default_exec_options();
    exec_options.max_iters = iters;
    exec::StencilRunInfo info;
    exec_options.stencil_info = &info;
    exec::execute_sequence(ctx, plans, bindings, exec_options);

    std::vector<std::string> to_hash;
    if (front.kind == compiler::ProgramKind::kStencil) {
      to_hash.push_back(info.result);
    } else {
      to_hash = outputs;
    }
    std::uint64_t h = serve::kFnvOffsetBasis;
    for (const std::string& name : to_hash) {
      const std::vector<double> global = arrays.at(name)->gather_global(
          ctx, options.memory_budget_elements);
      if (ctx.rank() == 0) {
        h = serve::hash_named_array(name, global, h);
      }
    }
    std::lock_guard<std::mutex> lock(mu);
    if (ctx.rank() == 0) {
      result_hash = h;
    }
  });
  return result_hash;
}

}  // namespace

int main() {
  bool ok = true;

  // --- Phase 1: plan-serving throughput, cold vs warm -------------------
  const std::int64_t n = bench::bench_n(256);
  const int reqs = static_cast<int>(env_int("OOCC_SERVE_REQS", 48));

  serve::ServerOptions cold_opts;
  serve::Server server(cold_opts);

  // Cold pass: every request pays the full compile + verify pipeline.
  const double cold_t0 = now_s();
  for (int i = 0; i < reqs; ++i) {
    server.cache().clear();
    const Json res = server.handle_line(compile_request(i, n));
    ok = ok && res.get_bool("ok", false) && !res.get_bool("cache_hit", true);
  }
  const double cold_s = now_s() - cold_t0;

  // Prime once per distinct key, then the warm pass is all cache hits.
  server.cache().clear();
  for (int v = 0; v < 4; ++v) {
    server.handle_line(compile_request(v, n));
  }
  const auto warm_base = server.cache().stats();
  const double warm_t0 = now_s();
  for (int i = 0; i < reqs; ++i) {
    const Json res = server.handle_line(compile_request(i, n));
    ok = ok && res.get_bool("ok", false) && res.get_bool("cache_hit", false);
  }
  const double warm_s = now_s() - warm_t0;
  const auto warm_stats = server.cache().stats();
  const std::uint64_t warm_hits = warm_stats.hits - warm_base.hits;

  const double cold_pps = cold_s > 0.0 ? reqs / cold_s : 0.0;
  const double warm_pps = warm_s > 0.0 ? reqs / warm_s : 0.0;
  const double speedup = cold_pps > 0.0 ? warm_pps / cold_pps : 0.0;

  bench::print_header("serve plan-serving throughput (op=compile)");
  {
    oocc::TextTable table(
        {"pass", "requests", "seconds", "programs/sec", "cache hits"});
    table.add_row({"cold (cleared per request)", std::to_string(reqs),
                   oocc::format_fixed(cold_s, 4),
                   oocc::format_fixed(cold_pps, 1), "0"});
    table.add_row({"warm (plan cache)", std::to_string(reqs),
                   oocc::format_fixed(warm_s, 4),
                   oocc::format_fixed(warm_pps, 1),
                   std::to_string(warm_hits)});
    std::printf("%s", table.to_string().c_str());
    std::printf("warm/cold speedup: %.1fx (floor 5.0x)\n", speedup);
  }
  if (speedup < 5.0) {
    std::printf("FAIL: warm-cache throughput below the 5x floor\n");
    ok = false;
  }
  if (warm_hits != static_cast<std::uint64_t>(reqs)) {
    std::printf("FAIL: warm pass expected %d hits, saw %llu\n", reqs,
                static_cast<unsigned long long>(warm_hits));
    ok = false;
  }

  // --- Phase 2: multi-tenant execution under one shared budget ----------
  const int tenants = 3;
  const int reps = static_cast<int>(env_int("OOCC_SERVE_REPS", 6));
  const std::int64_t run_n = 64;
  const std::int64_t run_memory = 1024;  // per processor; footprint = 2048
  const int run_iters = 4;
  const std::int64_t footprint = 2 * run_memory;  // p=2

  // Two footprints fit, three do not: with three tenants streaming, the
  // admission controller must queue the third while two run.
  serve::ServerOptions run_opts;
  run_opts.total_budget_elements = 2 * footprint + footprint / 2;
  serve::Server run_server(run_opts);

  const std::uint64_t reference = serial_reference_hash(
      hpf::stencil_source(run_n, 2), run_memory, run_iters);

  std::atomic<int> run_ok{0};
  std::atomic<int> run_errors{0};
  std::mutex hash_mu;
  std::set<std::string> hashes;

  const double run_t0 = now_s();
  std::vector<std::thread> threads;
  for (int t = 0; t < tenants; ++t) {
    threads.emplace_back([&, t] {
      for (int r = 0; r < reps; ++r) {
        Json req = Json::object();
        req.set("id", "t" + std::to_string(t) + "-" + std::to_string(r));
        req.set("tenant", "tenant" + std::to_string(t));
        req.set("op", std::string("run"));
        req.set("builtin", std::string("stencil"));
        req.set("n", run_n);
        req.set("p", static_cast<std::int64_t>(2));
        req.set("memory", run_memory);
        req.set("iters", run_iters);
        const Json res = run_server.handle_line(req.dump());
        if (res.get_bool("ok", false)) {
          run_ok.fetch_add(1);
          std::lock_guard<std::mutex> lock(hash_mu);
          hashes.insert(res.get_string("result_hash", ""));
        } else {
          run_errors.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& th : threads) {
    th.join();
  }
  const double run_s = now_s() - run_t0;
  const auto adm = run_server.admission().stats();

  char ref_hex[32];
  std::snprintf(ref_hex, sizeof(ref_hex), "0x%016llx",
                static_cast<unsigned long long>(reference));

  bench::print_header("serve multi-tenant execution (op=run)");
  {
    oocc::TextTable table({"tenant", "jobs", "queued waits", "wait s"});
    for (const auto& [name, ts] : adm.tenants) {
      table.add_row({name, std::to_string(ts.admitted),
                     std::to_string(ts.waits),
                     oocc::format_fixed(ts.wait_time_s, 3)});
    }
    std::printf("%s", table.to_string().c_str());
    std::printf(
        "budget %lld elements, peak in use %lld (job footprint %lld); "
        "%d jobs in %.2fs, %.1f programs/sec\n",
        static_cast<long long>(adm.total_elements),
        static_cast<long long>(adm.peak_in_use_elements),
        static_cast<long long>(footprint), run_ok.load(), run_s,
        run_s > 0.0 ? run_ok.load() / run_s : 0.0);
    std::printf("result hash: %s on all %d runs (serial reference %s)\n",
                hashes.size() == 1 ? hashes.begin()->c_str() : "DIVERGED",
                run_ok.load(), ref_hex);
  }

  if (run_errors.load() != 0 || run_ok.load() != tenants * reps) {
    std::printf("FAIL: %d of %d run jobs failed\n", run_errors.load(),
                tenants * reps);
    ok = false;
  }
  int progressing = 0;
  for (const auto& [name, ts] : adm.tenants) {
    if (ts.admitted > 0) {
      ++progressing;
    }
  }
  if (progressing < 2) {
    std::printf("FAIL: only %d tenant(s) made progress\n", progressing);
    ok = false;
  }
  if (adm.peak_in_use_elements > adm.total_elements) {
    std::printf("FAIL: budget oversubscribed (peak %lld > total %lld)\n",
                static_cast<long long>(adm.peak_in_use_elements),
                static_cast<long long>(adm.total_elements));
    ok = false;
  }
  if (adm.peak_in_use_elements < 2 * footprint) {
    std::printf("FAIL: no two jobs ever ran concurrently (peak %lld)\n",
                static_cast<long long>(adm.peak_in_use_elements));
    ok = false;
  }
  if (hashes.size() != 1 || *hashes.begin() != ref_hex) {
    std::printf("FAIL: results not bit-identical to the serial driver\n");
    ok = false;
  }

  std::printf("shape check (warm>=5x cold, >=2 tenants progressing, "
              "budget never oversubscribed, bit-identical results): %s\n",
              ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
