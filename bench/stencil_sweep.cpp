// Compiled halo-stencil (Jacobi) sweeps: LAF traffic of the step program
// with the slab buffer pool on vs --no-cache, against the hand-coded
// apps/jacobi.cpp kernel as the baseline oracle.
//
// Workload: hpf::stencil_source(N, P) — the 5-point Jacobi FORALL — run
// for OOCC_STENCIL_ITERS sweeps (default 4) by the executor's convergence
// driver, ping-ponging the a/b pair. Uncached, every sweep re-reads its
// source panel (halo-widened slabs plus ghost edge columns) and writes the
// full output panel: ~2 local arrays of LAF traffic per sweep. With the
// pool, the dirty slabs one sweep stages satisfy the next sweep's halo
// reads in memory (the compiler's reuse hints keep them resident), so the
// whole k-sweep run moves roughly one initial read plus one final
// write-back — the traffic no longer scales with the iteration count.
//
// The bench exits nonzero if the pool moves < 1.5x fewer LAF bytes than
// --no-cache (CI runs it in the release smoke job), or if either compiled
// run's final state differs bit-for-bit from the hand-coded oracle.
#include "bench_common.hpp"

#include <mutex>

#include "oocc/apps/jacobi.hpp"
#include "oocc/compiler/lower.hpp"
#include "oocc/exec/interp.hpp"
#include "oocc/hpf/programs.hpp"

namespace {

double initial_state(std::int64_t r, std::int64_t c) {
  return c == 0 ? 100.0 : (r % 4 == 0 ? 2.0 : -1.0);
}

struct SweepResult {
  std::uint64_t laf_bytes = 0;
  std::uint64_t laf_requests = 0;
  std::uint64_t cache_hits = 0;
  double sim_time_s = 0.0;
  std::vector<double> state;  ///< gathered final grid (rank 0)
};

SweepResult run_compiled(std::int64_t n, int p, int iters, bool use_cache) {
  using namespace oocc;

  compiler::CompileOptions options;
  // One local array's worth of compile-time memory: the sweep is genuinely
  // out-of-core (multiple slabs per panel).
  const std::int64_t local = n * ((n + p - 1) / p);
  options.memory_budget_elements = local;
  const compiler::NodeProgram plan =
      compiler::compile_source(hpf::stencil_source(n, p), options);

  SweepResult result;
  io::TempDir dir("oocc-stencil-bench");
  sim::Machine machine(p, sim::MachineCostModel::touchstone_delta());
  std::mutex mu;
  sim::RunReport report = machine.run([&](sim::SpmdContext& ctx) {
    auto arrays = exec::create_plan_arrays(
        ctx, plan, dir.path(), io::DiskModel::touchstone_delta_cfs());
    arrays.at("a")->initialize(ctx, initial_state, local);
    for (auto& [name, arr] : arrays) {
      arr->laf().reset_stats();
    }
    sim::barrier(ctx);
    ctx.reset_accounting();
    exec::ArrayBindings bindings;
    for (auto& [name, arr] : arrays) {
      bindings[name] = arr.get();
    }
    exec::ExecOptions exec_options;
    exec_options.use_cache = use_cache;
    // As in bench/cache_reuse: the pool gets the node memory the plan left
    // unused, so one sweep's staged panel is retainable for the next.
    exec_options.budget_elements =
        local * env_int("OOCC_CACHE_BUDGET_FACTOR", 4);
    exec_options.max_iters = iters;
    exec::StencilRunInfo info;
    exec_options.stencil_info = &info;
    runtime::SlabCacheStats cache;
    exec_options.cache_stats = &cache;
    exec::execute(ctx, plan, bindings, exec_options);
    std::uint64_t bytes = 0;
    std::uint64_t requests = 0;
    for (auto& [name, arr] : arrays) {
      const io::IoStats& s = arr->laf().stats();
      bytes += s.bytes_read + s.bytes_written;
      requests += s.read_requests + s.write_requests;
    }
    std::vector<double> state =
        arrays.at(info.result)->gather_global(ctx, local);
    std::lock_guard<std::mutex> lock(mu);
    result.laf_bytes += bytes;
    result.laf_requests += requests;
    result.cache_hits += cache.hits;
    if (ctx.rank() == 0) {
      result.state = std::move(state);
    }
  });
  result.sim_time_s = report.max_sim_time_s();
  return result;
}

SweepResult run_oracle(std::int64_t n, int p, int iters) {
  using namespace oocc;
  SweepResult result;
  io::TempDir dir("oocc-stencil-oracle");
  sim::Machine machine(p, sim::MachineCostModel::touchstone_delta());
  std::mutex mu;
  const std::int64_t local = n * ((n + p - 1) / p);
  sim::RunReport report = machine.run([&](sim::SpmdContext& ctx) {
    runtime::OutOfCoreArray a(ctx, dir.path(), "a",
                              hpf::column_block(n, n, p),
                              io::StorageOrder::kColumnMajor,
                              io::DiskModel::touchstone_delta_cfs());
    runtime::OutOfCoreArray b(ctx, dir.path(), "b",
                              hpf::column_block(n, n, p),
                              io::StorageOrder::kColumnMajor,
                              io::DiskModel::touchstone_delta_cfs());
    a.initialize(ctx, initial_state, local);
    a.laf().reset_stats();
    b.laf().reset_stats();
    sim::barrier(ctx);
    ctx.reset_accounting();
    runtime::OutOfCoreArray& fin =
        apps::ooc_jacobi(ctx, a, b, iters, local / 4);
    const io::IoStats& sa = a.laf().stats();
    const io::IoStats& sb = b.laf().stats();
    std::vector<double> state = fin.gather_global(ctx, local);
    std::lock_guard<std::mutex> lock(mu);
    result.laf_bytes += sa.bytes_read + sa.bytes_written + sb.bytes_read +
                        sb.bytes_written;
    result.laf_requests += sa.read_requests + sa.write_requests +
                           sb.read_requests + sb.write_requests;
    if (ctx.rank() == 0) {
      result.state = std::move(state);
    }
  });
  result.sim_time_s = report.max_sim_time_s();
  return result;
}

bool bit_identical(const std::vector<double>& a, const std::vector<double>& b,
                   int p, const char* what) {
  if (a.size() != b.size()) {
    std::printf("%s: state size mismatch at P=%d\n", what, p);
    return false;
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] != b[i]) {
      std::printf("%s: state mismatch at P=%d index %zu\n", what, p, i);
      return false;
    }
  }
  return true;
}

}  // namespace

int main() {
  using namespace oocc;
  using namespace oocc::bench;

  const std::int64_t n = bench_n(512);
  const int iters = static_cast<int>(env_int("OOCC_STENCIL_ITERS", 4));
  print_header(
      "Compiled Jacobi stencil: LAF traffic, pool vs --no-cache vs oracle");
  std::printf("N = %lld, %d sweep(s) of the compiled halo-stencil program\n\n",
              static_cast<long long>(n), iters);

  TextTable table({"P", "oracle MB", "no-cache MB", "pool MB", "byte ratio",
                   "no-cache reqs", "pool reqs", "hits", "no-cache time (s)",
                   "pool time (s)"});
  bool ok = true;
  for (int p : bench_procs()) {
    // The compiled plan needs panels of >= 8 columns for one halo-widened
    // slab per buffer at this budget.
    if (p > n / 8) {
      continue;
    }
    const SweepResult oracle = run_oracle(n, p, iters);
    const SweepResult plain = run_compiled(n, p, iters, /*use_cache=*/false);
    const SweepResult pooled = run_compiled(n, p, iters, /*use_cache=*/true);
    const double ratio = static_cast<double>(plain.laf_bytes) /
                         static_cast<double>(pooled.laf_bytes);
    // The CI invariant: the pool moves >= 1.5x fewer LAF bytes across the
    // iterated sweeps, with results bit-identical to the hand-coded oracle.
    ok = ok && 2 * plain.laf_bytes >= 3 * pooled.laf_bytes;
    ok = ok && bit_identical(plain.state, oracle.state, p, "no-cache");
    ok = ok && bit_identical(pooled.state, oracle.state, p, "pool");
    table.add_row(
        {std::to_string(p),
         format_fixed(static_cast<double>(oracle.laf_bytes) / 1e6, 1),
         format_fixed(static_cast<double>(plain.laf_bytes) / 1e6, 1),
         format_fixed(static_cast<double>(pooled.laf_bytes) / 1e6, 1),
         format_fixed(ratio, 2) + "x", std::to_string(plain.laf_requests),
         std::to_string(pooled.laf_requests),
         std::to_string(pooled.cache_hits),
         format_fixed(plain.sim_time_s, 2),
         format_fixed(pooled.sim_time_s, 2)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "shape check (pool moves >=1.5x fewer LAF bytes over %d sweeps, "
      "compiled == hand-coded oracle bit for bit): %s\n",
      iters, ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
