// Google-benchmark microbenchmarks of the substrates themselves (host wall
// time, not simulated time): message passing, collectives, Local Array
// File section I/O, slab iteration and distribution index algebra. These
// guard the simulator's own performance so paper-scale sweeps stay fast.
#include <benchmark/benchmark.h>

#include "oocc/hpf/distribution.hpp"
#include "oocc/io/laf.hpp"
#include "oocc/runtime/slab_iter.hpp"
#include "oocc/sim/collectives.hpp"

namespace {

using namespace oocc;

void BM_SendRecv(benchmark::State& state) {
  const std::size_t elements = static_cast<std::size_t>(state.range(0));
  sim::Machine machine(2, sim::MachineCostModel::zero());
  for (auto _ : state) {
    machine.run([&](sim::SpmdContext& ctx) {
      if (ctx.rank() == 0) {
        const std::vector<double> payload(elements, 1.0);
        ctx.send<double>(1, 0, std::span<const double>(payload));
      } else {
        benchmark::DoNotOptimize(ctx.recv<double>(0, 0));
      }
    });
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(
      state.iterations() * elements * sizeof(double)));
}
BENCHMARK(BM_SendRecv)->Arg(64)->Arg(4096)->Arg(262144);

void BM_Barrier(benchmark::State& state) {
  const int p = static_cast<int>(state.range(0));
  sim::Machine machine(p, sim::MachineCostModel::zero());
  for (auto _ : state) {
    machine.run([](sim::SpmdContext& ctx) {
      for (int i = 0; i < 10; ++i) {
        sim::barrier(ctx);
      }
    });
  }
}
BENCHMARK(BM_Barrier)->Arg(2)->Arg(8)->Arg(32);

void BM_ReduceSum(benchmark::State& state) {
  const int p = static_cast<int>(state.range(0));
  sim::Machine machine(p, sim::MachineCostModel::zero());
  const std::vector<double> mine(1024, 0.5);
  for (auto _ : state) {
    machine.run([&](sim::SpmdContext& ctx) {
      benchmark::DoNotOptimize(sim::reduce_sum<double>(
          ctx, 0, std::span<const double>(mine.data(), mine.size())));
    });
  }
}
BENCHMARK(BM_ReduceSum)->Arg(4)->Arg(16)->Arg(64);

void BM_LafContiguousRead(benchmark::State& state) {
  const std::int64_t cols = state.range(0);
  io::TempDir dir("oocc-micro");
  sim::Machine machine(1, sim::MachineCostModel::zero());
  machine.run([&](sim::SpmdContext& ctx) {
    io::LocalArrayFile laf(dir.file("x.laf"), 1024, cols,
                           io::StorageOrder::kColumnMajor,
                           io::DiskModel::zero());
    laf.fill(ctx, 3.0);
    std::vector<double> buf(static_cast<std::size_t>(1024 * cols));
    for (auto _ : state) {
      laf.read_full(ctx, std::span<double>(buf.data(), buf.size()));
      benchmark::DoNotOptimize(buf.data());
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(
        state.iterations() * buf.size() * sizeof(double)));
  });
}
BENCHMARK(BM_LafContiguousRead)->Arg(64)->Arg(512);

void BM_LafStridedRead(benchmark::State& state) {
  // Row slab of a column-major file: one extent per column.
  io::TempDir dir("oocc-micro");
  sim::Machine machine(1, sim::MachineCostModel::zero());
  machine.run([&](sim::SpmdContext& ctx) {
    io::LocalArrayFile laf(dir.file("x.laf"), 1024, 256,
                           io::StorageOrder::kColumnMajor,
                           io::DiskModel::zero());
    laf.fill(ctx, 3.0);
    const io::Section s{0, 64, 0, 256};
    std::vector<double> buf(static_cast<std::size_t>(s.elements()));
    for (auto _ : state) {
      laf.read_section(ctx, s, std::span<double>(buf.data(), buf.size()));
      benchmark::DoNotOptimize(buf.data());
    }
  });
}
BENCHMARK(BM_LafStridedRead);

void BM_SlabIteration(benchmark::State& state) {
  const runtime::SlabIterator it(4096, 4096,
                                 runtime::SlabOrientation::kRowSlabs, 65536);
  for (auto _ : state) {
    std::int64_t total = 0;
    for (std::int64_t i = 0; i < it.count(); ++i) {
      total += it.section(i).elements();
    }
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_SlabIteration);

void BM_GlobalToLocal(benchmark::State& state) {
  const hpf::DimDistribution d(hpf::DistKind::kBlockCyclic, 1 << 20, 16, 8);
  for (auto _ : state) {
    std::int64_t acc = 0;
    for (std::int64_t g = 0; g < 4096; ++g) {
      acc += d.global_to_local(g) + d.owner(g);
    }
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_GlobalToLocal);

}  // namespace

BENCHMARK_MAIN();
