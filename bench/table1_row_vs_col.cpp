// Table 1 reproduction: column-slab vs row-slab out-of-core matrix
// multiplication, plus the in-core baseline.
//
// Paper setup: 1K x 1K reals, P in {4,16,32,64}, slab ratio 1/8..1.
// Headline shape: the row-slab (reorganized) version is ~4-10x faster than
// the column-slab version at every P and slab ratio, because it does an
// order of magnitude less I/O (Equations 3-6); both improve as the slab
// ratio grows; the in-core baseline bounds them from below.
#include "bench_common.hpp"

namespace {

// Paper Table 1 (seconds): [ratio 1/8,1/4,1/2,1][P=4,16,32,64][col,row].
constexpr double kPaper[4][4][2] = {
    {{1045.84, 239.97}, {897.59, 161.02}, {857.62, 97.08}, {803.57, 90.29}},
    {{979.20, 226.08}, {864.08, 118.20}, {807.99, 92.43}, {783.79, 75.56}},
    {{958.17, 205.91}, {802.69, 96.79}, {788.47, 80.45}, {698.29, 66.70}},
    {{923.11, 194.15}, {714.15, 84.77}, {680.40, 66.94}, {620.70, 60.11}},
};
constexpr double kPaperInCore[4] = {140.91, 40.40, 20.14, 9.58};

}  // namespace

int main() {
  using namespace oocc;
  using namespace oocc::bench;

  const std::int64_t n = bench_n(1024);
  const std::vector<int> procs = bench_procs();
  const int dens[4] = {8, 4, 2, 1};

  print_header("Table 1: row-slab vs column-slab OOC GAXPY (time in s)");
  std::printf("N = %lld, simulated Touchstone Delta; paper numbers (in "
              "parentheses in EXPERIMENTS.md) are for N = 1024\n\n",
              static_cast<long long>(n));

  std::vector<std::string> header{"Slab Ratio"};
  for (int p : procs) {
    header.push_back(std::to_string(p) + "P col");
    header.push_back(std::to_string(p) + "P row");
    header.push_back("speedup");
  }
  TextTable table(header);

  std::vector<std::vector<double>> measured_col(4), measured_row(4);
  for (int rowi = 0; rowi < 4; ++rowi) {
    const int den = dens[rowi];
    std::vector<std::string> cells{format_ratio(1, den)};
    for (int p : procs) {
      const std::int64_t local = n * ((n + p - 1) / p);
      GaxpyRunConfig cfg;
      cfg.n = n;
      cfg.nprocs = p;
      cfg.slab_a = cfg.slab_b = cfg.slab_c = local / den;

      cfg.version = GaxpyVersion::kColumnSlabs;
      const GaxpyRunResult col = run_gaxpy(cfg);
      cfg.version = GaxpyVersion::kRowSlabs;
      const GaxpyRunResult row = run_gaxpy(cfg);

      measured_col[static_cast<std::size_t>(rowi)].push_back(col.sim_time_s);
      measured_row[static_cast<std::size_t>(rowi)].push_back(row.sim_time_s);
      cells.push_back(format_fixed(col.sim_time_s, 2));
      cells.push_back(format_fixed(row.sim_time_s, 2));
      cells.push_back(format_fixed(col.sim_time_s / row.sim_time_s, 1) + "x");
    }
    table.add_row(std::move(cells));
  }

  // In-core baseline row.
  std::vector<std::string> incore{"In-core"};
  for (int p : procs) {
    GaxpyRunConfig cfg;
    cfg.version = GaxpyVersion::kInCore;
    cfg.n = n;
    cfg.nprocs = p;
    const GaxpyRunResult r = run_gaxpy(cfg);
    incore.push_back(format_fixed(r.sim_time_s, 2));
    incore.push_back("-");
    incore.push_back("-");
  }
  table.add_row(std::move(incore));
  std::printf("%s\n", table.to_string().c_str());

  // Paper's table for side-by-side shape comparison.
  TextTable paper({"Slab Ratio", "4P col", "4P row", "16P col", "16P row",
                   "32P col", "32P row", "64P col", "64P row"});
  const char* labels[4] = {"1/8", "1/4", "1/2", "1"};
  for (int r = 0; r < 4; ++r) {
    std::vector<std::string> cells{labels[r]};
    for (int p = 0; p < 4; ++p) {
      cells.push_back(format_fixed(kPaper[r][p][0], 2));
      cells.push_back(format_fixed(kPaper[r][p][1], 2));
    }
    paper.add_row(std::move(cells));
  }
  paper.add_row({"In-core", format_fixed(kPaperInCore[0], 2), "-",
                 format_fixed(kPaperInCore[1], 2), "-",
                 format_fixed(kPaperInCore[2], 2), "-",
                 format_fixed(kPaperInCore[3], 2), "-"});
  std::printf("Paper's Table 1 (1K x 1K, Intel Touchstone Delta):\n%s\n",
              paper.to_string().c_str());

  // Shape assertions, printed so regressions are visible in bench logs.
  bool ok = true;
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t p = 0; p < measured_col[r].size(); ++p) {
      if (measured_row[r][p] * 2 > measured_col[r][p]) {
        ok = false;
      }
    }
  }
  std::printf("shape check (row slab at least 2x faster everywhere): %s\n",
              ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
