// Table 2 reproduction: dividing node memory between the slabs of A and B
// (row-slab version). Paper setup: 2K x 2K reals on 16 processors; slab
// sizes expressed as the extent along the slab dimension (rows of A /
// columns of B), swept 256..2048.
//
// Expected shape: growing A's slab with B fixed helps more than growing
// B's slab with A fixed — the compiler should give the most frequently
// accessed array (A) the larger share (§4.2.1).
#include "bench_common.hpp"

#include "oocc/compiler/memplan.hpp"

namespace {

// Paper Table 2 (seconds): {slab extent, fixed-A-vary-B, fixed-B-vary-A}.
struct PaperRow {
  int extent;
  double vary_b;
  double vary_a;
};
constexpr PaperRow kPaper[4] = {
    {256, 826.94, 826.94},
    {512, 548.13, 510.02},
    {1024, 507.01, 492.87},
    {2048, 493.04, 452.29},
};

}  // namespace

int main() {
  using namespace oocc;
  using namespace oocc::bench;

  const std::int64_t n = bench_n(2048);
  const int p = static_cast<int>(env_int("OOCC_TABLE2_PROCS", 16));
  const std::int64_t nlc = (n + p - 1) / p;

  print_header("Table 2: memory division between slabs of A and B");
  std::printf("N = %lld, P = %d (paper: N = 2048, P = 16); row-slab "
              "version; slab sizes are extents along the slab dimension\n\n",
              static_cast<long long>(n), p);

  const std::int64_t extents[4] = {n / 8, n / 4, n / 2, n};

  TextTable table({"Slab B ext", "Slab A=" + std::to_string(extents[0]),
                   "Slab A ext", "Slab B=" + std::to_string(extents[0]),
                   "Total Mem (ext units)", "paper vary-B", "paper vary-A"});
  for (int i = 0; i < 4; ++i) {
    // Experiment 1: A fixed at the smallest slab, B grows. C's slab
    // tracks A's (it buffers subcolumns of A's slab height).
    GaxpyRunConfig cfg1;
    cfg1.version = GaxpyVersion::kRowSlabs;
    cfg1.n = n;
    cfg1.nprocs = p;
    cfg1.slab_a = extents[0] * nlc;  // rows x local columns
    cfg1.slab_b = extents[i] * nlc;  // columns x local rows
    cfg1.slab_c = extents[0] * nlc;
    const GaxpyRunResult r1 = run_gaxpy(cfg1);

    // Experiment 2: B fixed, A grows.
    GaxpyRunConfig cfg2 = cfg1;
    cfg2.slab_a = extents[i] * nlc;
    cfg2.slab_b = extents[0] * nlc;
    cfg2.slab_c = extents[i] * nlc;
    const GaxpyRunResult r2 = run_gaxpy(cfg2);

    table.add_row({std::to_string(extents[i]), format_fixed(r1.sim_time_s, 2),
                   std::to_string(extents[i]), format_fixed(r2.sim_time_s, 2),
                   std::to_string(extents[0] + extents[i]),
                   format_fixed(kPaper[i].vary_b, 2),
                   format_fixed(kPaper[i].vary_a, 2)});
  }
  std::printf("%s\n", table.to_string().c_str());

  // The compiler's §4.2.1 policy, for the same total memory as the last
  // row: the weighted planner must allocate A the larger slab and beat
  // (or match) the equal split.
  const std::int64_t budget = (extents[0] + extents[3]) * nlc + n + n;
  double strategy_times[2];
  for (int s = 0; s < 2; ++s) {
    const compiler::MemoryPlan plan = compiler::plan_memory(
        s == 0 ? compiler::MemoryStrategy::kEqualSplit
               : compiler::MemoryStrategy::kAccessWeighted,
        budget, n, p, runtime::SlabOrientation::kRowSlabs);
    GaxpyRunConfig cfg;
    cfg.version = GaxpyVersion::kRowSlabs;
    cfg.n = n;
    cfg.nprocs = p;
    cfg.slab_a = plan.slab_a;
    cfg.slab_b = plan.slab_b;
    cfg.slab_c = plan.slab_c;
    const GaxpyRunResult r = run_gaxpy(cfg);
    strategy_times[s] = r.sim_time_s;
    std::printf("%s allocation: slab_a=%lld slab_b=%lld slab_c=%lld -> "
                "%.2f s\n",
                std::string(compiler::memory_strategy_name(plan.strategy))
                    .c_str(),
                static_cast<long long>(plan.slab_a),
                static_cast<long long>(plan.slab_b),
                static_cast<long long>(plan.slab_c), r.sim_time_s);
  }
  const bool ok = strategy_times[1] <= strategy_times[0] * 1.001;
  std::printf("shape check (weighted allocation <= equal split): %s\n",
              ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
