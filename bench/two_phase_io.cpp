// Two-phase collective I/O vs direct strided access (the PASSION runtime
// technique the paper's compilation model builds on — [TBC+94b], §2.3).
//
// Workload: a column-major global file must be loaded into a row-block
// distributed out-of-core array. Direct access costs one request per
// column per processor (the file does not conform to the distribution);
// two-phase access reads conforming column panels (one request per slab)
// and redistributes in memory.
//
// Expected shape: an order of magnitude fewer I/O requests and a large
// simulated-time win for two-phase, growing with P.
#include "bench_common.hpp"

#include "oocc/io/gaf.hpp"
#include "oocc/runtime/twophase.hpp"

int main() {
  using namespace oocc;
  using namespace oocc::bench;

  const std::int64_t n = bench_n(1024);
  print_header("Two-phase collective I/O vs direct strided access");
  std::printf("N = %lld, column-major global file -> row-block array\n\n",
              static_cast<long long>(n));

  TextTable table({"P", "direct reqs", "direct time (s)", "two-phase reqs",
                   "two-phase time (s)", "request ratio", "speedup"});

  bool ok = true;
  for (int p : bench_procs()) {
    if (p > n) {
      continue;
    }
    double times[2];
    std::uint64_t requests[2];
    for (int mode = 0; mode < 2; ++mode) {
      io::TempDir dir("oocc-twophase");
      io::GlobalArrayFile gaf(dir.file("global.bin"), n, n,
                              io::StorageOrder::kColumnMajor,
                              io::DiskModel::touchstone_delta_cfs());
      gaf.fill_host([](std::int64_t r, std::int64_t c) {
        return static_cast<double>((r + 2 * c) % 1001);
      });
      sim::Machine machine(p, sim::MachineCostModel::touchstone_delta());
      const std::int64_t budget = n * std::max<std::int64_t>(1, n / p / 4);
      sim::RunReport report = machine.run([&](sim::SpmdContext& ctx) {
        runtime::OutOfCoreArray dst(ctx, dir.path(), "dst",
                                    hpf::row_block(n, n, p),
                                    io::StorageOrder::kColumnMajor,
                                    io::DiskModel::touchstone_delta_cfs());
        if (mode == 0) {
          runtime::direct_load(ctx, gaf, dst, budget);
        } else {
          runtime::two_phase_load(ctx, gaf, dst, budget);
        }
      });
      times[mode] = report.max_sim_time_s();
      requests[mode] = gaf.stats().read_requests;
    }
    ok = ok && requests[1] < requests[0] && times[1] < times[0];
    table.add_row({std::to_string(p), std::to_string(requests[0]),
                   format_fixed(times[0], 2), std::to_string(requests[1]),
                   format_fixed(times[1], 2),
                   format_fixed(static_cast<double>(requests[0]) /
                                    static_cast<double>(requests[1]),
                                1) + "x",
                   format_fixed(times[0] / times[1], 1) + "x"});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("shape check (two-phase fewer requests and faster): %s\n",
              ok ? "OK" : "FAILED");

  // ---- Routing format inside two-phase: per-element triples (the
  // pre-block baseline) vs ownership-run block descriptors.
  print_header("Two-phase routing: element triples vs ownership-run blocks");
  TextTable rtable({"P", "elem bytes", "block bytes", "byte ratio",
                    "elem time (s)", "block time (s)", "elem wall (s)",
                    "block wall (s)"});
  for (int p : bench_procs()) {
    if (p > n) {
      continue;
    }
    RouteRunResult results[2];
    for (int m = 0; m < 2; ++m) {
      io::TempDir dir("oocc-twophase-route");
      io::GlobalArrayFile gaf(dir.file("global.bin"), n, n,
                              io::StorageOrder::kColumnMajor,
                              io::DiskModel::touchstone_delta_cfs());
      gaf.fill_host([](std::int64_t r, std::int64_t c) {
        return static_cast<double>((r + 2 * c) % 1001);
      });
      sim::Machine machine(p, sim::MachineCostModel::touchstone_delta());
      const std::int64_t budget = n * std::max<std::int64_t>(1, n / p / 4);
      sim::RunReport report = machine.run([&](sim::SpmdContext& ctx) {
        runtime::OutOfCoreArray dst(ctx, dir.path(), "dst",
                                    hpf::row_block(n, n, p),
                                    io::StorageOrder::kColumnMajor,
                                    io::DiskModel::touchstone_delta_cfs());
        runtime::two_phase_load(ctx, gaf, dst, budget,
                                m == 0 ? runtime::RouteMode::kElement
                                       : runtime::RouteMode::kBlock);
      });
      results[m] = route_run_result(report);
    }
    const double ratio =
        results[1].comm_bytes > 0
            ? static_cast<double>(results[0].comm_bytes) /
                  static_cast<double>(results[1].comm_bytes)
            : 0.0;
    rtable.add_row({std::to_string(p), std::to_string(results[0].comm_bytes),
                    std::to_string(results[1].comm_bytes),
                    results[1].comm_bytes > 0 ? format_fixed(ratio, 1) + "x"
                                              : "n/a",
                    format_fixed(results[0].sim_time_s, 2),
                    format_fixed(results[1].sim_time_s, 2),
                    format_fixed(results[0].wall_time_s, 3),
                    format_fixed(results[1].wall_time_s, 3)});
    if (p > 1 && results[0].comm_bytes > 0) {
      ok = ok && results[0].comm_bytes >= 2 * results[1].comm_bytes;
    }
  }
  std::printf("%s\n", rtable.to_string().c_str());
  std::printf("shape check (two-phase cheaper than direct; blocks move "
              ">=2x fewer bytes): %s\n",
              ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
