// Out-of-core 2-D Jacobi relaxation (oocc::apps::ooc_jacobi) — the class
// of "large-scale scientific application" the paper's introduction
// motivates, written directly against the PASSION-style runtime (no
// compiler involved).
//
// The N x N grid is column-block distributed; each processor's panel
// lives in a Local Array File and is swept slab-by-slab within the node
// memory budget, with one-column ghost exchanges between neighbours. The
// result is verified against a serial in-memory Jacobi.
//
//   $ ./examples/jacobi2d [N] [P] [iterations]
#include <cstdio>
#include <cstdlib>

#include "oocc/apps/jacobi.hpp"
#include "oocc/sim/collectives.hpp"

namespace {

double initial_value(std::int64_t r, std::int64_t c) {
  // Hot left edge, textured interior.
  return c == 0 ? 100.0 : (r % 3 == 0 ? 1.0 : 0.0);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace oocc;

  const std::int64_t n = argc > 1 ? std::atoll(argv[1]) : 128;
  const int p = argc > 2 ? std::atoi(argv[2]) : 4;
  const int iterations = argc > 3 ? std::atoi(argv[3]) : 10;
  const std::int64_t nlc = (n + p - 1) / p;
  const std::int64_t slab = n * std::max<std::int64_t>(1, nlc / 4);

  std::printf("Out-of-core 2-D Jacobi: %lld x %lld grid over %d processors, "
              "%d iterations, slab = %lld elements\n",
              static_cast<long long>(n), static_cast<long long>(n), p,
              iterations, static_cast<long long>(slab));

  io::TempDir dir("oocc-jacobi");
  sim::Machine machine(p, sim::MachineCostModel::touchstone_delta());
  std::vector<double> result;
  sim::RunReport report = machine.run([&](sim::SpmdContext& ctx) {
    runtime::OutOfCoreArray grid_a(ctx, dir.path(), "grid_a",
                                   hpf::column_block(n, n, p),
                                   io::StorageOrder::kColumnMajor,
                                   io::DiskModel::touchstone_delta_cfs());
    runtime::OutOfCoreArray grid_b(ctx, dir.path(), "grid_b",
                                   hpf::column_block(n, n, p),
                                   io::StorageOrder::kColumnMajor,
                                   io::DiskModel::touchstone_delta_cfs());
    grid_a.initialize(ctx, initial_value, slab);
    sim::barrier(ctx);
    ctx.reset_accounting();

    runtime::OutOfCoreArray& final_state =
        apps::ooc_jacobi(ctx, grid_a, grid_b, iterations, slab);
    std::vector<double> gathered = final_state.gather_global(ctx, slab);
    if (ctx.rank() == 0) {
      result = std::move(gathered);
    }
  });

  const std::vector<double> want =
      apps::serial_jacobi(n, iterations, initial_value);
  double max_err = 0.0;
  for (std::size_t i = 0; i < want.size(); ++i) {
    max_err = std::max(max_err, std::abs(want[i] - result[i]));
  }

  std::printf("simulated time: %.3f s (%.3f s/iteration); I/O: %llu "
              "requests, %.2f MB; %llu messages\n",
              report.max_sim_time_s(),
              report.max_sim_time_s() / iterations,
              static_cast<unsigned long long>(report.total_io_requests()),
              static_cast<double>(report.total_io_bytes()) / 1e6,
              static_cast<unsigned long long>(report.total_messages()));
  std::printf("max |ooc - serial| = %.3g -> %s\n", max_err,
              max_err < 1e-9 ? "CORRECT" : "WRONG");
  return max_err < 1e-9 ? 0 : 1;
}
