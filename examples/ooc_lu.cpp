// Out-of-core LU factorization example (oocc::apps::ooc_lu_factor).
//
// Factors a diagonally dominant N x N matrix, column-block distributed,
// in panels sized to the node memory budget. The I/O statistics printed
// at the end show the left-looking reuse pattern: every factored panel is
// re-read once per later panel — exactly the kind of repeated-access
// structure the paper's cost model reasons about.
//
//   $ ./examples/ooc_lu [N] [P] [panel_cols]
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "oocc/apps/lu.hpp"
#include "oocc/sim/collectives.hpp"

namespace {

double matrix(std::int64_t r, std::int64_t c) {
  const double off = std::sin(static_cast<double>(r * 13 + c * 7)) * 0.5;
  return r == c ? 256.0 + off : off;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace oocc;

  const std::int64_t n = argc > 1 ? std::atoll(argv[1]) : 256;
  const int p = argc > 2 ? std::atoi(argv[2]) : 4;
  const std::int64_t panel =
      argc > 3 ? std::atoll(argv[3])
               : std::max<std::int64_t>(1, (n + p - 1) / p / 4);

  std::printf("Out-of-core LU: %lld x %lld over %d processors, panels of "
              "%lld columns (working set: 2 panels = %lld elements)\n",
              static_cast<long long>(n), static_cast<long long>(n), p,
              static_cast<long long>(panel),
              static_cast<long long>(2 * n * panel));

  io::TempDir dir("oocc-lu");
  sim::Machine machine(p, sim::MachineCostModel::touchstone_delta());
  std::vector<double> lu;
  sim::RunReport report = machine.run([&](sim::SpmdContext& ctx) {
    runtime::OutOfCoreArray a(ctx, dir.path(), "a",
                              hpf::column_block(n, n, p),
                              io::StorageOrder::kColumnMajor,
                              io::DiskModel::touchstone_delta_cfs());
    a.initialize(ctx, matrix, 2 * n * panel);
    sim::barrier(ctx);
    ctx.reset_accounting();
    runtime::MemoryBudget budget(2 * n * panel + 16);
    apps::ooc_lu_factor(ctx, a, budget, panel);
    std::vector<double> gathered = a.gather_global(ctx, 2 * n * panel);
    if (ctx.rank() == 0) {
      lu = std::move(gathered);
    }
  });

  // Spot-verify: reconstruct a sample of entries from L*U.
  auto at = [&](std::int64_t r, std::int64_t c) {
    return lu[static_cast<std::size_t>(c * n + r)];
  };
  double max_err = 0.0;
  for (std::int64_t r = 0; r < n; r += std::max<std::int64_t>(1, n / 17)) {
    for (std::int64_t c = 0; c < n; c += std::max<std::int64_t>(1, n / 13)) {
      double sum = 0.0;
      const std::int64_t kmax = std::min(r, c);
      for (std::int64_t k = 0; k < kmax; ++k) {
        sum += at(r, k) * at(k, c);
      }
      sum += r <= c ? at(r, c) : at(r, c) * at(c, c);
      max_err = std::max(max_err, std::abs(sum - matrix(r, c)));
    }
  }

  std::printf("simulated time: %.3f s; I/O: %llu requests, %.2f MB; "
              "%llu messages\n",
              report.max_sim_time_s(),
              static_cast<unsigned long long>(report.total_io_requests()),
              static_cast<double>(report.total_io_bytes()) / 1e6,
              static_cast<unsigned long long>(report.total_messages()));
  std::printf("max |L*U - A| over sampled entries = %.3g -> %s\n", max_err,
              max_err < 1e-8 ? "CORRECT" : "WRONG");
  return max_err < 1e-8 ? 0 : 1;
}
