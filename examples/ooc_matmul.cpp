// Out-of-core matrix multiplication, the long way around: compares the
// straightforward (column-slab) translation against the compiler's
// reorganized (row-slab) translation on the same problem, printing the
// paper's two I/O metrics per array so the order-of-magnitude difference
// of §4.1 is visible directly.
//
//   $ ./examples/ooc_matmul [N] [P]
#include <cstdio>
#include <cstdlib>

#include "oocc/compiler/lower.hpp"
#include "oocc/compiler/pretty.hpp"
#include "oocc/exec/interp.hpp"
#include "oocc/hpf/programs.hpp"
#include "oocc/sim/collectives.hpp"
#include "oocc/util/table.hpp"

int main(int argc, char** argv) {
  using namespace oocc;

  const std::int64_t n = argc > 1 ? std::atoll(argv[1]) : 256;
  const int p = argc > 2 ? std::atoi(argv[2]) : 4;
  const std::int64_t local = n * ((n + p - 1) / p);

  std::printf("Out-of-core GAXPY, N=%lld over %d simulated processors; "
              "node memory = %lld elements (~1/4 of the local array)\n\n",
              static_cast<long long>(n), p,
              static_cast<long long>(local / 4));

  TextTable table({"translation", "orientation", "sim time (s)",
                   "A requests/proc", "A MB/proc", "total IO MB"});

  for (const bool optimize : {false, true}) {
    compiler::CompileOptions options;
    options.memory_budget_elements = local / 4 + 4 * n;
    options.enable_access_reorganization = optimize;
    options.enable_storage_reorganization = optimize;
    options.disk = io::DiskModel::touchstone_delta_cfs();
    const compiler::NodeProgram plan =
        compiler::compile_source(hpf::gaxpy_source(n, p), options);

    io::TempDir dir("oocc-matmul");
    sim::Machine machine(p, sim::MachineCostModel::touchstone_delta());
    std::uint64_t a_requests = 0;
    std::uint64_t a_bytes = 0;
    std::mutex mu;
    sim::RunReport report = machine.run([&](sim::SpmdContext& ctx) {
      auto arrays = exec::create_plan_arrays(ctx, plan, dir.path(),
                                             options.disk);
      arrays.at("a")->initialize(
          ctx,
          [](std::int64_t r, std::int64_t c) {
            return 1.0 + 0.001 * static_cast<double>((r - c) % 19);
          },
          local / 4);
      arrays.at("b")->initialize(
          ctx,
          [](std::int64_t r, std::int64_t c) {
            return 0.5 - 0.002 * static_cast<double>((r + c) % 23);
          },
          local / 4);
      sim::barrier(ctx);
      ctx.reset_accounting();
      arrays.at("a")->laf().reset_stats();

      exec::ArrayBindings bindings;
      for (auto& [name, arr] : arrays) {
        bindings[name] = arr.get();
      }
      exec::execute(ctx, plan, bindings);

      if (ctx.rank() == 0) {
        std::lock_guard<std::mutex> lock(mu);
        a_requests = arrays.at("a")->laf().stats().read_requests;
        a_bytes = arrays.at("a")->laf().stats().bytes_read;
      }
    });

    table.add_row(
        {optimize ? "reorganized (compiler)" : "straightforward",
         std::string(runtime::slab_orientation_name(plan.a_orientation)),
         format_fixed(report.max_sim_time_s(), 2),
         std::to_string(a_requests),
         format_fixed(static_cast<double>(a_bytes) / 1e6, 2),
         format_fixed(static_cast<double>(report.total_io_bytes()) / 1e6,
                      1)});

    if (optimize) {
      std::printf("compiler decision report:\n%s\n",
                  compiler::decision_report(plan).c_str());
    }
  }

  std::printf("%s", table.to_string().c_str());
  std::printf("\nThe reorganized translation reads A once (T_data = N^2/P) "
              "instead of once per output column (N^3/P) — Equations 3-6.\n");
  return 0;
}
