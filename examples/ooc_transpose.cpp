// Out-of-core redistribution and storage reorganization (§2.3 / §4.1).
//
// Data "arrives" on disk column-block distributed (as if streamed from
// archival storage); the program wants it row-block distributed with
// row-major Local Array Files so the compiler's row slabs are contiguous.
// This example performs both reorganizations out-of-core within a memory
// budget, verifies content preservation, and prints the one-time costs
// next to the per-run savings they buy (the amortization argument).
//
//   $ ./examples/ooc_transpose [N] [P]
#include <cstdio>
#include <cstdlib>

#include "oocc/runtime/ooc_array.hpp"
#include "oocc/runtime/redistribute.hpp"
#include "oocc/runtime/reorganize.hpp"
#include "oocc/sim/collectives.hpp"

int main(int argc, char** argv) {
  using namespace oocc;

  const std::int64_t n = argc > 1 ? std::atoll(argv[1]) : 256;
  const int p = argc > 2 ? std::atoi(argv[2]) : 4;
  const std::int64_t budget = n * ((n + p - 1) / p) / 4;

  std::printf("Out-of-core redistribution: %lld x %lld, %d processors, "
              "staging budget %lld elements\n\n",
              static_cast<long long>(n), static_cast<long long>(n), p,
              static_cast<long long>(budget));

  io::TempDir dir("oocc-transpose");
  sim::Machine machine(p, sim::MachineCostModel::touchstone_delta());
  bool content_ok = true;
  double redist_time = 0.0;
  double reorg_time = 0.0;
  std::uint64_t reorg_requests = 0;

  sim::RunReport report = machine.run([&](sim::SpmdContext& ctx) {
    auto value = [](std::int64_t r, std::int64_t c) {
      return static_cast<double>(r * 100000 + c);
    };

    // Stage 1: data as it arrived — column-block, column-major.
    runtime::OutOfCoreArray arrived(ctx, dir.path(), "arrived",
                                    hpf::column_block(n, n, p),
                                    io::StorageOrder::kColumnMajor,
                                    io::DiskModel::touchstone_delta_cfs());
    arrived.initialize(ctx, value, budget);
    sim::barrier(ctx);
    ctx.reset_accounting();

    // Stage 2: redistribute to the program's row-block layout.
    runtime::OutOfCoreArray wanted(ctx, dir.path(), "wanted",
                                   hpf::row_block(n, n, p),
                                   io::StorageOrder::kColumnMajor,
                                   io::DiskModel::touchstone_delta_cfs());
    runtime::redistribute(ctx, arrived, wanted, budget);
    sim::barrier(ctx);
    if (ctx.rank() == 0) {
      redist_time = ctx.clock().now();
    }

    // Stage 3: reorganize each LAF to row-major storage so row slabs are
    // one request each.
    io::LocalArrayFile reorganized(
        dir.path() / ("wanted_rm_p" + std::to_string(ctx.rank())),
        wanted.local_rows(), wanted.local_cols(), io::StorageOrder::kRowMajor,
        io::DiskModel::touchstone_delta_cfs());
    const std::uint64_t reqs = runtime::reorganize_storage(
        ctx, wanted.laf(), reorganized, budget);
    sim::barrier(ctx);
    if (ctx.rank() == 0) {
      reorg_time = ctx.clock().now() - redist_time;
      reorg_requests = reqs;
    }

    // Verify: every element of the reorganized file equals the generator.
    std::vector<double> mine(static_cast<std::size_t>(
        wanted.local_rows() * wanted.local_cols()));
    reorganized.read_full(ctx, std::span<double>(mine.data(), mine.size()));
    bool ok = true;
    for (std::int64_t lc = 0; lc < wanted.local_cols(); ++lc) {
      for (std::int64_t lr = 0; lr < wanted.local_rows(); ++lr) {
        const std::int64_t gr = wanted.ocla().global_row(lr);
        const std::int64_t gc = wanted.ocla().global_col(lc);
        if (mine[static_cast<std::size_t>(lc * wanted.local_rows() + lr)] !=
            value(gr, gc)) {
          ok = false;
        }
      }
    }
    const std::vector<std::uint8_t> flags{static_cast<std::uint8_t>(ok)};
    std::vector<std::uint8_t> all = sim::gather<std::uint8_t>(
        ctx, 0, std::span<const std::uint8_t>(flags.data(), flags.size()));
    if (ctx.rank() == 0) {
      for (std::uint8_t f : all) {
        content_ok = content_ok && f != 0;
      }
    }
    // Demonstrate the payoff: a full row-slab sweep in each layout.
    io::Section row_slab{0, std::min<std::int64_t>(wanted.local_rows(), 8),
                         0, wanted.local_cols()};
    std::printf("rank %d: row slab costs %llu request(s) column-major vs "
                "%llu row-major\n",
                ctx.rank(),
                static_cast<unsigned long long>(
                    wanted.laf().section_request_count(row_slab)),
                static_cast<unsigned long long>(
                    reorganized.section_request_count(row_slab)));

    // Stage 4: an actual out-of-core global transpose (dst = arrived^T),
    // spot-verified.
    runtime::OutOfCoreArray transposed(
        ctx, dir.path(), "transposed", hpf::column_block(n, n, p),
        io::StorageOrder::kColumnMajor, io::DiskModel::touchstone_delta_cfs());
    runtime::transpose(ctx, arrived, transposed, budget);
    std::vector<double> spot(static_cast<std::size_t>(
        transposed.local_rows()));
    transposed.laf().read_section(ctx,
                                  io::Section{0, transposed.local_rows(), 0, 1},
                                  std::span<double>(spot.data(), spot.size()));
    const std::int64_t gc = transposed.ocla().global_col(0);
    for (std::int64_t lr = 0; lr < transposed.local_rows(); ++lr) {
      // transposed(r, c) == value(c, r)
      if (spot[static_cast<std::size_t>(lr)] !=
          value(gc, transposed.ocla().global_row(lr))) {
        std::printf("rank %d: TRANSPOSE MISMATCH at row %lld\n", ctx.rank(),
                    static_cast<long long>(lr));
      }
    }
  });

  std::printf("\nredistribution (column-block -> row-block): %.2f s\n",
              redist_time);
  std::printf("storage reorganization (column-major -> row-major): %.2f s, "
              "%llu requests\n",
              reorg_time, static_cast<unsigned long long>(reorg_requests));
  std::printf("total simulated time: %.2f s; content %s\n",
              report.max_sim_time_s(), content_ok ? "PRESERVED" : "CORRUPTED");
  std::printf("\nBoth costs are one-time; the paper's §2.3 argues they are "
              "amortized when the array is used over many iterations.\n");
  return content_ok ? 0 : 1;
}
