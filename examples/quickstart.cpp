// Quickstart: compile the paper's Figure 3 HPF program from source text,
// run it out-of-core on a simulated 4-processor machine, and verify the
// product against a serial reference.
//
//   $ ./examples/quickstart
//
// Walks through the whole pipeline: parse -> analyze -> two-phase
// out-of-core compilation (with the Figure 14 access reorganization) ->
// plan execution with explicit I/O and message passing -> verification.
#include <cstdio>

#include "oocc/compiler/lower.hpp"
#include "oocc/compiler/pretty.hpp"
#include "oocc/exec/interp.hpp"
#include "oocc/gaxpy/gaxpy.hpp"
#include "oocc/hpf/programs.hpp"
#include "oocc/sim/collectives.hpp"

int main() {
  using namespace oocc;

  constexpr std::int64_t kN = 64;
  constexpr int kProcs = 4;

  // 1. The HPF source program (the paper's Figure 3).
  const std::string source = hpf::gaxpy_source(kN, kProcs);
  std::printf("HPF source:\n%s\n", source.c_str());

  // 2. Compile with a deliberately small memory budget (1/4 of the local
  //    array) so the program is genuinely out of core.
  compiler::CompileOptions options;
  options.memory_budget_elements = kN * (kN / kProcs) / 4 + 4 * kN;
  options.disk = io::DiskModel::touchstone_delta_cfs();
  const compiler::NodeProgram plan =
      compiler::compile_source(source, options);

  std::printf("=== compilation decisions ===\n%s\n",
              compiler::decision_report(plan).c_str());
  std::printf("=== generated node program ===\n%s\n",
              compiler::pseudo_code(plan).c_str());

  // 3. Execute on the simulated machine. Arrays live in Local Array Files
  //    on each processor's logical disk; values come from generators.
  auto gen_a = [](std::int64_t r, std::int64_t c) {
    return static_cast<double>((r * 7 + c * 3) % 11) - 5.0;
  };
  auto gen_b = [](std::int64_t r, std::int64_t c) {
    return static_cast<double>((r + c * 13) % 7) * 0.5;
  };

  io::TempDir dir("oocc-quickstart");
  sim::Machine machine(kProcs, sim::MachineCostModel::touchstone_delta());
  std::vector<double> result;
  sim::RunReport report = machine.run([&](sim::SpmdContext& ctx) {
    auto arrays = exec::create_plan_arrays(ctx, plan, dir.path(),
                                           options.disk);
    arrays.at("a")->initialize(ctx, gen_a, options.memory_budget_elements);
    arrays.at("b")->initialize(ctx, gen_b, options.memory_budget_elements);
    sim::barrier(ctx);
    ctx.reset_accounting();

    exec::ArrayBindings bindings;
    for (auto& [name, arr] : arrays) {
      bindings[name] = arr.get();
    }
    exec::execute(ctx, plan, bindings);

    std::vector<double> c =
        arrays.at("c")->gather_global(ctx, options.memory_budget_elements);
    if (ctx.rank() == 0) {
      result = std::move(c);
    }
  });

  // 4. Verify against the serial reference.
  std::vector<double> dense_a(kN * kN);
  std::vector<double> dense_b(kN * kN);
  for (std::int64_t c = 0; c < kN; ++c) {
    for (std::int64_t r = 0; r < kN; ++r) {
      dense_a[static_cast<std::size_t>(c * kN + r)] = gen_a(r, c);
      dense_b[static_cast<std::size_t>(c * kN + r)] = gen_b(r, c);
    }
  }
  const std::vector<double> want =
      gaxpy::serial_matmul(dense_a, dense_b, kN);
  double max_err = 0.0;
  for (std::size_t i = 0; i < want.size(); ++i) {
    max_err = std::max(max_err, std::abs(want[i] - result[i]));
  }

  std::printf("=== execution ===\n");
  std::printf("simulated time: %.3f s (Touchstone Delta calibration)\n",
              report.max_sim_time_s());
  std::printf("I/O: %llu requests, %.2f MB moved; %llu messages\n",
              static_cast<unsigned long long>(report.total_io_requests()),
              static_cast<double>(report.total_io_bytes()) / 1e6,
              static_cast<unsigned long long>(report.total_messages()));
  std::printf("max |C - A*B| = %.3g -> %s\n", max_err,
              max_err < 1e-9 ? "CORRECT" : "WRONG");
  return max_err < 1e-9 ? 0 : 1;
}
