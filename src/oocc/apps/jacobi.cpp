#include "oocc/apps/jacobi.hpp"

#include <algorithm>

#include "oocc/runtime/slab_iter.hpp"
#include "oocc/sim/collectives.hpp"
#include "oocc/util/error.hpp"

namespace oocc::apps {

namespace {
constexpr int kTagLeft = 101;   // carries a processor's leftmost column
constexpr int kTagRight = 102;  // carries a processor's rightmost column
}  // namespace

void ooc_jacobi_iteration(sim::SpmdContext& ctx, runtime::OutOfCoreArray& cur,
                          runtime::OutOfCoreArray& next,
                          std::int64_t slab_elements) {
  OOCC_REQUIRE(cur.dist() == next.dist(),
               "jacobi state arrays must share a distribution; got "
                   << cur.dist().to_string() << " vs "
                   << next.dist().to_string());
  OOCC_REQUIRE(cur.dist().axis() == hpf::DistAxis::kCols ||
                   ctx.nprocs() == 1,
               "jacobi expects column-block panels, got "
                   << cur.dist().to_string());
  const std::int64_t n = cur.dist().global_rows();
  const std::int64_t nlc = cur.local_cols();
  const int rank = ctx.rank();
  const int p = ctx.nprocs();

  // 1. Ghost exchange. Edge-column reads are single contiguous requests
  //    in the column-major LAF.
  std::vector<double> left_ghost;   // neighbour-to-the-right's column 0
  std::vector<double> right_ghost;  // neighbour-to-the-left's last column
  {
    std::vector<double> edge(static_cast<std::size_t>(n));
    if (rank > 0) {
      cur.laf().read_section(ctx, io::Section{0, n, 0, 1},
                             std::span<double>(edge.data(), edge.size()));
      ctx.send<double>(rank - 1, kTagLeft,
                       std::span<const double>(edge.data(), edge.size()));
    }
    if (rank < p - 1) {
      cur.laf().read_section(ctx, io::Section{0, n, nlc - 1, nlc},
                             std::span<double>(edge.data(), edge.size()));
      ctx.send<double>(rank + 1, kTagRight,
                       std::span<const double>(edge.data(), edge.size()));
    }
    if (rank < p - 1) {
      left_ghost = ctx.recv<double>(rank + 1, kTagLeft);
    }
    if (rank > 0) {
      right_ghost = ctx.recv<double>(rank - 1, kTagRight);
    }
  }

  // 2-4. Slab sweep with a one-column halo.
  runtime::SlabIterator slabs(n, nlc, runtime::SlabOrientation::kColumnSlabs,
                              slab_elements);
  std::vector<double> halo;
  std::vector<double> out;
  for (std::int64_t s = 0; s < slabs.count(); ++s) {
    const io::Section sec = slabs.section(s);
    const std::int64_t lo = std::max<std::int64_t>(0, sec.col0 - 1);
    const std::int64_t hi = std::min<std::int64_t>(nlc, sec.col1 + 1);
    const io::Section halo_sec{0, n, lo, hi};
    halo.resize(static_cast<std::size_t>(halo_sec.elements()));
    cur.laf().read_section(ctx, halo_sec,
                           std::span<double>(halo.data(), halo.size()));
    out.resize(static_cast<std::size_t>(sec.elements()));

    auto col_at = [&](std::int64_t lc) -> const double* {
      if (lc < 0) {
        return right_ghost.data();
      }
      if (lc >= nlc) {
        return left_ghost.data();
      }
      return halo.data() + static_cast<std::size_t>((lc - lo) * n);
    };

    for (std::int64_t lc = sec.col0; lc < sec.col1; ++lc) {
      const std::int64_t gc = cur.dist().local_to_global_col(rank, lc);
      const double* center = col_at(lc);
      double* result =
          out.data() + static_cast<std::size_t>((lc - sec.col0) * n);
      if (gc == 0 || gc == n - 1) {
        std::copy(center, center + n, result);  // fixed boundary column
        continue;
      }
      const double* west = col_at(lc - 1);
      const double* east = col_at(lc + 1);
      result[0] = center[0];          // fixed boundary rows
      result[n - 1] = center[n - 1];
      for (std::int64_t r = 1; r < n - 1; ++r) {
        result[r] =
            0.25 * (center[r - 1] + center[r + 1] + west[r] + east[r]);
      }
      ctx.charge_flops(4.0 * static_cast<double>(n - 2));
    }
    next.laf().write_section(ctx, sec,
                             std::span<const double>(out.data(), out.size()));
  }
}

runtime::OutOfCoreArray& ooc_jacobi(sim::SpmdContext& ctx,
                                    runtime::OutOfCoreArray& a,
                                    runtime::OutOfCoreArray& b,
                                    int iterations,
                                    std::int64_t slab_elements) {
  runtime::OutOfCoreArray* cur = &a;
  runtime::OutOfCoreArray* next = &b;
  for (int it = 0; it < iterations; ++it) {
    ooc_jacobi_iteration(ctx, *cur, *next, slab_elements);
    std::swap(cur, next);
    // Neighbours must not race ahead and overwrite state another rank
    // still needs for its ghost columns.
    sim::barrier(ctx);
  }
  return *cur;
}

std::vector<double> serial_jacobi(
    std::int64_t n, int iterations,
    const std::function<double(std::int64_t, std::int64_t)>& initial) {
  std::vector<double> cur(static_cast<std::size_t>(n * n));
  for (std::int64_t c = 0; c < n; ++c) {
    for (std::int64_t r = 0; r < n; ++r) {
      cur[static_cast<std::size_t>(c * n + r)] = initial(r, c);
    }
  }
  std::vector<double> next = cur;
  for (int it = 0; it < iterations; ++it) {
    for (std::int64_t c = 1; c < n - 1; ++c) {
      for (std::int64_t r = 1; r < n - 1; ++r) {
        next[static_cast<std::size_t>(c * n + r)] =
            0.25 * (cur[static_cast<std::size_t>(c * n + r - 1)] +
                    cur[static_cast<std::size_t>(c * n + r + 1)] +
                    cur[static_cast<std::size_t>((c - 1) * n + r)] +
                    cur[static_cast<std::size_t>((c + 1) * n + r)]);
      }
    }
    std::swap(cur, next);
  }
  return cur;
}

}  // namespace oocc::apps
