// Out-of-core 2-D Jacobi relaxation on the PASSION-style runtime —
// retained as the *test oracle* for the compiled stencil path.
//
// The class of loosely synchronous scientific application the paper's
// introduction motivates: an N x N grid, column-block distributed, too
// large for node memory. Each iteration exchanges one ghost column with
// each neighbour, then sweeps the local panel in column slabs (read with
// a one-column halo from the Local Array File), applies the 5-point
// stencil to interior points, and writes the updated slab to the
// next-state file. Global boundary rows/columns are held fixed.
//
// Since the stencil lowering landed (compiler/lower.cpp's match_stencil +
// exec's convergence driver), hpf::stencil_source() compiles to a step
// program that performs this kernel's arithmetic element for element;
// tests/stencil_test.cpp asserts the two are bit-identical across
// distributions and memory budgets. New stencil work should go through the
// compiler — this hand-coded kernel exists to keep that equivalence
// testable (and as the bench baseline).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "oocc/runtime/ooc_array.hpp"
#include "oocc/sim/machine.hpp"

namespace oocc::apps {

/// One Jacobi sweep: reads `cur`, writes `next` (both column-block over
/// the same machine, same N x N shape, column-major storage). Collective.
/// `slab_elements` bounds the in-core halo buffer.
void ooc_jacobi_iteration(sim::SpmdContext& ctx, runtime::OutOfCoreArray& cur,
                          runtime::OutOfCoreArray& next,
                          std::int64_t slab_elements);

/// Runs `iterations` sweeps, ping-ponging between `a` (initial state) and
/// `b` (scratch). Returns the array holding the final state.
runtime::OutOfCoreArray& ooc_jacobi(sim::SpmdContext& ctx,
                                    runtime::OutOfCoreArray& a,
                                    runtime::OutOfCoreArray& b,
                                    int iterations,
                                    std::int64_t slab_elements);

/// Serial in-memory reference (column-major n x n), for verification.
std::vector<double> serial_jacobi(
    std::int64_t n, int iterations,
    const std::function<double(std::int64_t, std::int64_t)>& initial);

}  // namespace oocc::apps
