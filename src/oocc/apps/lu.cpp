#include "oocc/apps/lu.hpp"

#include <algorithm>

#include "oocc/util/error.hpp"

namespace oocc::apps {

namespace {

constexpr int kTagPanel = 301;

/// One factorization panel: a run of global columns owned by one proc.
struct Panel {
  std::int64_t gc0;  ///< global first column
  std::int64_t gc1;  ///< global one-past-last column
  int owner;
  std::int64_t lc0;  ///< owner-local first column

  std::int64_t width() const noexcept { return gc1 - gc0; }
};

/// Splits every processor's contiguous column block into panels of at
/// most `panel_cols` columns. Deterministic: all ranks compute the same
/// list.
std::vector<Panel> make_panels(const hpf::ArrayDistribution& dist,
                               std::int64_t panel_cols) {
  std::vector<Panel> panels;
  for (int p = 0; p < dist.nprocs(); ++p) {
    const std::int64_t cols = dist.local_cols(p);
    for (std::int64_t lc = 0; lc < cols; lc += panel_cols) {
      Panel panel;
      panel.lc0 = lc;
      panel.gc0 = dist.local_to_global_col(p, lc);
      panel.gc1 =
          dist.local_to_global_col(p, std::min(cols, lc + panel_cols) - 1) +
          1;
      panel.owner = p;
      panels.push_back(panel);
    }
  }
  std::sort(panels.begin(), panels.end(),
            [](const Panel& a, const Panel& b) { return a.gc0 < b.gc0; });
  return panels;
}

/// Applies the eliminations of factored `panelk` to `panelj` (both
/// column-major, full N rows).
void apply_panel_update(sim::SpmdContext& ctx, const Panel& k,
                        std::span<const double> panelk, const Panel& j,
                        std::span<double> panelj, std::int64_t n) {
  double flops = 0.0;
  for (std::int64_t g = k.gc0; g < k.gc1; ++g) {
    const double* lcol = panelk.data() + (g - k.gc0) * n;
    for (std::int64_t c = 0; c < j.width(); ++c) {
      double* target = panelj.data() + c * n;
      const double u = target[g];
      for (std::int64_t r = g + 1; r < n; ++r) {
        target[r] -= lcol[r] * u;
      }
      flops += 2.0 * static_cast<double>(n - g - 1);
    }
  }
  ctx.charge_flops(flops);
}

/// Right-looking factorization within one panel (updates from all earlier
/// panels already applied).
void factor_panel_in_core(sim::SpmdContext& ctx, const Panel& j,
                          std::span<double> panel, std::int64_t n) {
  double flops = 0.0;
  for (std::int64_t g = j.gc0; g < j.gc1; ++g) {
    double* gcol = panel.data() + (g - j.gc0) * n;
    const double pivot = gcol[g];
    OOCC_CHECK(pivot != 0.0, ErrorCode::kRuntimeError,
               "zero pivot at column " << g
                                       << " (LU without pivoting requires "
                                          "nonzero leading minors)");
    for (std::int64_t r = g + 1; r < n; ++r) {
      gcol[r] /= pivot;
    }
    flops += static_cast<double>(n - g - 1);
    for (std::int64_t c = g - j.gc0 + 1; c < j.width(); ++c) {
      double* target = panel.data() + c * n;
      const double u = target[g];
      for (std::int64_t r = g + 1; r < n; ++r) {
        target[r] -= gcol[r] * u;
      }
      flops += 2.0 * static_cast<double>(n - g - 1);
    }
  }
  ctx.charge_flops(flops);
}

}  // namespace

void ooc_lu_factor(sim::SpmdContext& ctx, runtime::OutOfCoreArray& a,
                   runtime::MemoryBudget& budget, std::int64_t panel_cols) {
  const hpf::ArrayDistribution& dist = a.dist();
  OOCC_REQUIRE(dist.global_rows() == dist.global_cols(),
               "LU requires a square matrix, got " << dist.to_string());
  OOCC_REQUIRE(dist.axis() == hpf::DistAxis::kCols &&
                   dist.col_dist().kind() == hpf::DistKind::kBlock,
               "ooc_lu_factor requires a column-block matrix, got "
                   << dist.to_string());
  OOCC_REQUIRE(panel_cols >= 1, "panel width must be >= 1");
  const std::int64_t n = dist.global_rows();
  const int rank = ctx.rank();

  const std::vector<Panel> panels = make_panels(dist, panel_cols);
  const std::int64_t max_w = panel_cols;

  // Working set: the panel being factored plus one incoming update panel.
  runtime::IclaBuffer mine(budget, n * max_w, "lu_panel");
  runtime::IclaBuffer incoming(budget, n * max_w, "lu_update");

  for (std::size_t j = 0; j < panels.size(); ++j) {
    const Panel& pj = panels[j];
    if (rank == pj.owner) {
      mine.load(ctx, a.laf(),
                io::Section{0, n, pj.lc0, pj.lc0 + pj.width()});
    }
    for (std::size_t k = 0; k < j; ++k) {
      const Panel& pk = panels[k];
      if (rank == pk.owner && pk.owner != pj.owner) {
        // Re-read the factored panel from disk and ship it (the OOC
        // discipline: factored panels do not stay in memory).
        incoming.load(ctx, a.laf(),
                      io::Section{0, n, pk.lc0, pk.lc0 + pk.width()});
        ctx.send<double>(pj.owner, kTagPanel, incoming.data());
      }
      if (rank == pj.owner) {
        if (pk.owner == rank) {
          incoming.load(ctx, a.laf(),
                        io::Section{0, n, pk.lc0, pk.lc0 + pk.width()});
        } else {
          incoming.reset_section(io::Section{0, n, 0, pk.width()});
          ctx.recv_into<double>(pk.owner, kTagPanel, incoming.data());
        }
        apply_panel_update(ctx, pk, incoming.data(), pj, mine.data(), n);
      }
    }
    if (rank == pj.owner) {
      factor_panel_in_core(ctx, pj, mine.data(), n);
      mine.store_as(ctx, a.laf(),
                    io::Section{0, n, pj.lc0, pj.lc0 + pj.width()});
    }
  }
}

void serial_lu(std::vector<double>& a, std::int64_t n) {
  OOCC_REQUIRE(a.size() == static_cast<std::size_t>(n * n),
               "serial_lu expects an n x n matrix");
  for (std::int64_t g = 0; g < n; ++g) {
    const double pivot = a[static_cast<std::size_t>(g * n + g)];
    OOCC_CHECK(pivot != 0.0, ErrorCode::kRuntimeError,
               "zero pivot at column " << g);
    for (std::int64_t r = g + 1; r < n; ++r) {
      a[static_cast<std::size_t>(g * n + r)] /= pivot;
    }
    for (std::int64_t c = g + 1; c < n; ++c) {
      const double u = a[static_cast<std::size_t>(c * n + g)];
      for (std::int64_t r = g + 1; r < n; ++r) {
        a[static_cast<std::size_t>(c * n + r)] -=
            a[static_cast<std::size_t>(g * n + r)] * u;
      }
    }
  }
}

}  // namespace oocc::apps
