// Out-of-core LU factorization (left-looking, column panels) — the other
// canonical out-of-core dense kernel of the PASSION era.
//
// The N x N matrix is column-block distributed; each processor's piece is
// divided into *panels* of at most `panel_cols` columns that fit in
// memory. Panels are factored left to right: before panel j is factored
// in core by its owner, every previously factored panel k < j is shipped
// from its owner and applied as an update (the access pattern that makes
// this out-of-core friendly: each factored panel is read from disk once
// per later panel — the same reuse structure the paper's cost model
// reasons about).
//
// No pivoting (the standard simplification for regular OOC factorization;
// callers must supply a matrix with nonzero leading minors, e.g.
// diagonally dominant). The factorization is in place: on return the LAFs
// hold L (unit lower, below the diagonal) and U (upper).
#pragma once

#include <cstdint>
#include <vector>

#include "oocc/runtime/icla.hpp"
#include "oocc/runtime/ooc_array.hpp"

namespace oocc::apps {

/// Factors `a` in place. `panel_cols` bounds the panel width (the in-core
/// working set is two panels: the one being factored plus one incoming
/// update panel). Collective. Throws Error(kInvalidArgument) for
/// non-column-block layouts and Error(kRuntimeError) on a zero pivot.
void ooc_lu_factor(sim::SpmdContext& ctx, runtime::OutOfCoreArray& a,
                   runtime::MemoryBudget& budget, std::int64_t panel_cols);

/// Serial in-place reference LU without pivoting on a column-major n x n
/// matrix (L unit-lower + U packed together, like the OOC result).
void serial_lu(std::vector<double>& a, std::int64_t n);

}  // namespace oocc::apps
