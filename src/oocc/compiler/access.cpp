#include "oocc/compiler/access.hpp"

#include "oocc/util/error.hpp"

namespace oocc::compiler {

std::string_view subscript_class_name(SubscriptClass c) noexcept {
  switch (c) {
    case SubscriptClass::kFullRange:
      return "full-range";
    case SubscriptClass::kForallIndex:
      return "forall-index";
    case SubscriptClass::kOuterIndex:
      return "outer-index";
    case SubscriptClass::kConstant:
      return "constant";
    case SubscriptClass::kOther:
      return "other";
  }
  return "?";
}

namespace {

/// True if `e` is exactly a reference to variable `name`.
bool is_var(const hpf::Expr& e, const std::string& name) {
  return e.kind == hpf::ExprKind::kVarRef && e.name == name;
}

/// True if `e` is a constant under the parameter bindings (no loop vars).
bool is_parameter_constant(const hpf::Expr& e,
                           const std::map<std::string, std::int64_t>& params) {
  switch (e.kind) {
    case hpf::ExprKind::kIntConst:
      return true;
    case hpf::ExprKind::kVarRef:
      return params.contains(e.name);
    case hpf::ExprKind::kBinary:
      return is_parameter_constant(*e.lhs, params) &&
             is_parameter_constant(*e.rhs, params);
    default:
      return false;
  }
}

}  // namespace

SubscriptClass classify_subscript(
    const hpf::Subscript& sub, const hpf::ArrayInfo& info, int dim,
    const LoopContext& loops,
    const std::map<std::string, std::int64_t>& parameters) {
  const std::int64_t extent = dim == 0 ? info.rows : info.cols;
  switch (sub.kind) {
    case hpf::SubscriptKind::kFull:
      return SubscriptClass::kFullRange;
    case hpf::SubscriptKind::kRange: {
      // 1:N over the whole dimension is a full range; anything else is a
      // partial section we treat as kOther (conservative).
      if (is_parameter_constant(*sub.lo, parameters) &&
          is_parameter_constant(*sub.hi, parameters)) {
        const std::int64_t lo = hpf::evaluate_scalar(*sub.lo, parameters);
        const std::int64_t hi = hpf::evaluate_scalar(*sub.hi, parameters);
        if (lo == 1 && hi == extent) {
          return SubscriptClass::kFullRange;
        }
        return SubscriptClass::kOther;
      }
      return SubscriptClass::kOther;
    }
    case hpf::SubscriptKind::kScalar: {
      if (!loops.forall_var.empty() && is_var(*sub.scalar, loops.forall_var)) {
        return SubscriptClass::kForallIndex;
      }
      if (!loops.outer_var.empty() && is_var(*sub.scalar, loops.outer_var)) {
        return SubscriptClass::kOuterIndex;
      }
      if (is_parameter_constant(*sub.scalar, parameters)) {
        return SubscriptClass::kConstant;
      }
      return SubscriptClass::kOther;
    }
  }
  return SubscriptClass::kOther;
}

RefAccess classify_reference(
    const hpf::Expr& ref, const hpf::ArrayInfo& info, const LoopContext& loops,
    const std::map<std::string, std::int64_t>& parameters, bool is_lhs) {
  OOCC_REQUIRE(ref.kind == hpf::ExprKind::kArrayRef,
               "classify_reference expects an array reference");
  RefAccess out;
  out.array = ref.name;
  out.is_lhs = is_lhs;
  out.row_class =
      classify_subscript(ref.subscripts[0], info, 0, loops, parameters);
  if (ref.subscripts.size() > 1) {
    out.col_class =
        classify_subscript(ref.subscripts[1], info, 1, loops, parameters);
  } else {
    out.col_class = SubscriptClass::kConstant;  // rank-1: single column
  }
  return out;
}

void collect_references(const hpf::Expr& expr,
                        const hpf::BoundProgram& program,
                        const LoopContext& loops, bool is_lhs,
                        std::vector<RefAccess>& out) {
  switch (expr.kind) {
    case hpf::ExprKind::kArrayRef:
      out.push_back(classify_reference(expr, program.array(expr.name), loops,
                                       program.parameters, is_lhs));
      return;
    case hpf::ExprKind::kBinary:
      collect_references(*expr.lhs, program, loops, is_lhs, out);
      collect_references(*expr.rhs, program, loops, is_lhs, out);
      return;
    case hpf::ExprKind::kSumIntrinsic: {
      RefAccess ref;
      ref.array = expr.name;
      ref.row_class = SubscriptClass::kFullRange;
      ref.col_class = SubscriptClass::kFullRange;
      ref.is_lhs = is_lhs;
      out.push_back(ref);
      return;
    }
    default:
      return;
  }
}

}  // namespace oocc::compiler
