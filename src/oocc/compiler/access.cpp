#include "oocc/compiler/access.hpp"

#include <optional>

#include "oocc/util/error.hpp"

namespace oocc::compiler {

std::string_view subscript_class_name(SubscriptClass c) noexcept {
  switch (c) {
    case SubscriptClass::kFullRange:
      return "full-range";
    case SubscriptClass::kForallIndex:
      return "forall-index";
    case SubscriptClass::kForallOffset:
      return "forall-offset";
    case SubscriptClass::kOuterIndex:
      return "outer-index";
    case SubscriptClass::kConstant:
      return "constant";
    case SubscriptClass::kConstantRange:
      return "constant-range";
    case SubscriptClass::kOther:
      return "other";
  }
  return "?";
}

namespace {

/// True if `e` is exactly a reference to variable `name`.
bool is_var(const hpf::Expr& e, const std::string& name) {
  return e.kind == hpf::ExprKind::kVarRef && e.name == name;
}

/// True if `e` is a constant under the parameter bindings (no loop vars).
bool is_parameter_constant(const hpf::Expr& e,
                           const std::map<std::string, std::int64_t>& params) {
  switch (e.kind) {
    case hpf::ExprKind::kIntConst:
      return true;
    case hpf::ExprKind::kVarRef:
      return params.contains(e.name);
    case hpf::ExprKind::kBinary:
      return is_parameter_constant(*e.lhs, params) &&
             is_parameter_constant(*e.rhs, params);
    default:
      return false;
  }
}

/// Recognizes `forall_var +/- c` (either operand order for +) and returns
/// the signed offset; nullopt when `e` is not of that shape. The bare
/// forall variable yields offset 0.
std::optional<std::int64_t> forall_offset_of(
    const hpf::Expr& e, const std::string& forall_var,
    const std::map<std::string, std::int64_t>& params) {
  if (forall_var.empty()) {
    return std::nullopt;
  }
  if (is_var(e, forall_var)) {
    return 0;
  }
  if (e.kind != hpf::ExprKind::kBinary ||
      (e.op != hpf::BinOp::kAdd && e.op != hpf::BinOp::kSub)) {
    return std::nullopt;
  }
  const hpf::Expr& l = *e.lhs;
  const hpf::Expr& r = *e.rhs;
  if (is_var(l, forall_var) && is_parameter_constant(r, params)) {
    const std::int64_t c = hpf::evaluate_scalar(r, params);
    return e.op == hpf::BinOp::kAdd ? c : -c;
  }
  if (e.op == hpf::BinOp::kAdd && is_var(r, forall_var) &&
      is_parameter_constant(l, params)) {
    return hpf::evaluate_scalar(l, params);
  }
  return std::nullopt;
}

}  // namespace

SubscriptClass classify_subscript(
    const hpf::Subscript& sub, const hpf::ArrayInfo& info, int dim,
    const LoopContext& loops,
    const std::map<std::string, std::int64_t>& parameters) {
  const std::int64_t extent = dim == 0 ? info.rows : info.cols;
  switch (sub.kind) {
    case hpf::SubscriptKind::kFull:
      return SubscriptClass::kFullRange;
    case hpf::SubscriptKind::kRange: {
      // 1:N over the whole dimension is a full range; other
      // parameter-constant bounds are a partial section (the stencil
      // matcher reads its bounds off the RefAccess).
      if (is_parameter_constant(*sub.lo, parameters) &&
          is_parameter_constant(*sub.hi, parameters)) {
        const std::int64_t lo = hpf::evaluate_scalar(*sub.lo, parameters);
        const std::int64_t hi = hpf::evaluate_scalar(*sub.hi, parameters);
        if (lo == 1 && hi == extent) {
          return SubscriptClass::kFullRange;
        }
        return SubscriptClass::kConstantRange;
      }
      return SubscriptClass::kOther;
    }
    case hpf::SubscriptKind::kScalar: {
      if (const auto off =
              forall_offset_of(*sub.scalar, loops.forall_var, parameters)) {
        return *off == 0 ? SubscriptClass::kForallIndex
                         : SubscriptClass::kForallOffset;
      }
      if (!loops.outer_var.empty() && is_var(*sub.scalar, loops.outer_var)) {
        return SubscriptClass::kOuterIndex;
      }
      if (is_parameter_constant(*sub.scalar, parameters)) {
        return SubscriptClass::kConstant;
      }
      return SubscriptClass::kOther;
    }
  }
  return SubscriptClass::kOther;
}

namespace {

/// Fills one dimension's class plus the detail fields the class implies.
void classify_dim(const hpf::Subscript& sub, const hpf::ArrayInfo& info,
                  int dim, const LoopContext& loops,
                  const std::map<std::string, std::int64_t>& parameters,
                  SubscriptClass& cls, std::int64_t& offset, std::int64_t& lo,
                  std::int64_t& hi) {
  cls = classify_subscript(sub, info, dim, loops, parameters);
  if (cls == SubscriptClass::kForallIndex ||
      cls == SubscriptClass::kForallOffset) {
    offset = *forall_offset_of(*sub.scalar, loops.forall_var, parameters);
  } else if (cls == SubscriptClass::kConstantRange ||
             cls == SubscriptClass::kFullRange) {
    if (sub.kind == hpf::SubscriptKind::kRange) {
      lo = hpf::evaluate_scalar(*sub.lo, parameters);
      hi = hpf::evaluate_scalar(*sub.hi, parameters);
    } else {
      lo = 1;
      hi = dim == 0 ? info.rows : info.cols;
    }
  }
}

}  // namespace

RefAccess classify_reference(
    const hpf::Expr& ref, const hpf::ArrayInfo& info, const LoopContext& loops,
    const std::map<std::string, std::int64_t>& parameters, bool is_lhs) {
  OOCC_REQUIRE(ref.kind == hpf::ExprKind::kArrayRef,
               "classify_reference expects an array reference");
  RefAccess out;
  out.array = ref.name;
  out.is_lhs = is_lhs;
  classify_dim(ref.subscripts[0], info, 0, loops, parameters, out.row_class,
               out.row_offset, out.row_lo, out.row_hi);
  if (ref.subscripts.size() > 1) {
    classify_dim(ref.subscripts[1], info, 1, loops, parameters, out.col_class,
                 out.col_offset, out.col_lo, out.col_hi);
  } else {
    out.col_class = SubscriptClass::kConstant;  // rank-1: single column
  }
  return out;
}

void collect_references(const hpf::Expr& expr,
                        const hpf::BoundProgram& program,
                        const LoopContext& loops, bool is_lhs,
                        std::vector<RefAccess>& out) {
  switch (expr.kind) {
    case hpf::ExprKind::kArrayRef:
      out.push_back(classify_reference(expr, program.array(expr.name), loops,
                                       program.parameters, is_lhs));
      return;
    case hpf::ExprKind::kBinary:
      collect_references(*expr.lhs, program, loops, is_lhs, out);
      collect_references(*expr.rhs, program, loops, is_lhs, out);
      return;
    case hpf::ExprKind::kSumIntrinsic: {
      RefAccess ref;
      ref.array = expr.name;
      ref.row_class = SubscriptClass::kFullRange;
      ref.col_class = SubscriptClass::kFullRange;
      ref.is_lhs = is_lhs;
      out.push_back(ref);
      return;
    }
    default:
      return;
  }
}

}  // namespace oocc::compiler
