// Access-pattern analysis (§4.1: "analyzing the storage and access
// patterns along each dimension of the distributed out-of-core array").
//
// For every array reference in a loop nest, each subscript is classified
// relative to the enclosing loops. The classification drives both the
// communication analysis of the in-core phase and the I/O cost estimator:
// a reference whose subscripts do not involve the outer sequential loop is
// *outer-invariant* — the straightforward translation re-fetches it every
// outer iteration (column-slab GAXPY), which is exactly the waste the
// reorganization removes.
#pragma once

#include <string>
#include <vector>

#include "oocc/hpf/ast.hpp"
#include "oocc/hpf/sema.hpp"

namespace oocc::compiler {

enum class SubscriptClass {
  kFullRange,      ///< ':' or 1:N covering the whole dimension
  kForallIndex,    ///< the FORALL (parallel/streamed) index
  kForallOffset,   ///< forall index +/- a nonzero constant (stencil shape)
  kOuterIndex,     ///< an enclosing sequential DO index
  kConstant,       ///< loop-invariant scalar expression
  kConstantRange,  ///< lo:hi with parameter-constant partial bounds
  kOther           ///< anything else (affine of several vars, etc.)
};

std::string_view subscript_class_name(SubscriptClass c) noexcept;

/// Classification of one 2-D array reference inside a loop nest.
struct RefAccess {
  std::string array;
  SubscriptClass row_class = SubscriptClass::kOther;
  SubscriptClass col_class = SubscriptClass::kOther;
  bool is_lhs = false;

  /// Signed constant added to the forall index; nonzero exactly when
  /// col_class (resp. row_class) is kForallOffset. The stencil matcher's
  /// dependence distances are the max |offset| over a statement's refs.
  std::int64_t row_offset = 0;
  std::int64_t col_offset = 0;

  /// 1-based inclusive Fortran bounds of a kConstantRange subscript.
  std::int64_t row_lo = 0, row_hi = 0;
  std::int64_t col_lo = 0, col_hi = 0;

  /// True if no subscript depends on the outer sequential loop — the whole
  /// referenced region is needed again every outer iteration.
  bool outer_invariant() const noexcept {
    return row_class != SubscriptClass::kOuterIndex &&
           col_class != SubscriptClass::kOuterIndex;
  }
};

/// Loop-nest context for classification.
struct LoopContext {
  std::string outer_var;   ///< sequential DO variable ("" if none)
  std::string forall_var;  ///< FORALL variable ("" if none)
};

/// Classifies one subscript of array `info` along dimension `dim`
/// (0 = rows, 1 = cols).
SubscriptClass classify_subscript(const hpf::Subscript& sub,
                                  const hpf::ArrayInfo& info, int dim,
                                  const LoopContext& loops,
                                  const std::map<std::string, std::int64_t>&
                                      parameters);

/// Classifies a full array reference expression (kind == kArrayRef).
RefAccess classify_reference(const hpf::Expr& ref, const hpf::ArrayInfo& info,
                             const LoopContext& loops,
                             const std::map<std::string, std::int64_t>&
                                 parameters,
                             bool is_lhs);

/// Collects and classifies every array reference in `expr` (recursing
/// through binary operations).
void collect_references(const hpf::Expr& expr, const hpf::BoundProgram& program,
                        const LoopContext& loops, bool is_lhs,
                        std::vector<RefAccess>& out);

}  // namespace oocc::compiler
