#include "oocc/compiler/cost.hpp"

#include <algorithm>
#include <optional>
#include <sstream>

#include "oocc/compiler/plan.hpp"
#include "oocc/hpf/distribution.hpp"
#include "oocc/runtime/slab_writer.hpp"
#include "oocc/util/error.hpp"

namespace oocc::compiler {

double CandidateCost::total_requests() const noexcept {
  double t = 0.0;
  for (const auto& a : arrays) t += a.fetch_requests;
  return t;
}

double CandidateCost::total_elements() const noexcept {
  double t = 0.0;
  for (const auto& a : arrays) t += a.data_elements;
  return t;
}

double CandidateCost::estimated_io_time_s(const io::DiskModel& disk,
                                          int nprocs) const {
  return total_requests() * disk.request_overhead_s +
         total_elements() * static_cast<double>(sizeof(double)) /
             disk.effective_bandwidth(nprocs);
}

const ArrayCost& CandidateCost::cost_of(const std::string& name) const {
  for (const auto& a : arrays) {
    if (a.array == name) {
      return a;
    }
  }
  OOCC_THROW(ErrorCode::kInvalidArgument,
             "candidate has no cost entry for array '" << name << "'");
}

namespace {

std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  return (a + b - 1) / b;
}

}  // namespace

CandidateCost estimate_gaxpy_cost(runtime::SlabOrientation orientation,
                                  const GaxpyCostQuery& q) {
  OOCC_REQUIRE(q.n >= 1 && q.nprocs >= 1, "query needs n >= 1 and P >= 1");
  OOCC_REQUIRE(q.slab_a >= 1 && q.slab_b >= 1 && q.slab_c >= 1,
               "slab sizes must be >= 1 element");
  const std::int64_t n = q.n;
  // Local extents on processor 0 (the maximum under BLOCK); with N a
  // multiple of P every processor matches and the estimate is exact.
  const hpf::ArrayDistribution a_dist = hpf::column_block(n, n, q.nprocs);
  const std::int64_t nlc = a_dist.local_cols(0);

  CandidateCost out;
  out.a_orientation = orientation;
  out.storage_reorganized = q.storage_reorganized;

  // B is stripmined in column slabs in both translations (its ICLA holds
  // nlc-row columns); reads are contiguous in B's column-major LAF.
  const runtime::SlabIterator b_slabs(
      nlc, n, runtime::SlabOrientation::kColumnSlabs, q.slab_b);

  if (orientation == runtime::SlabOrientation::kColumnSlabs) {
    // Figure 9. A is re-swept once per output column (Equations 3-4).
    const runtime::SlabIterator a_slabs(
        n, nlc, runtime::SlabOrientation::kColumnSlabs, q.slab_a);
    // Column slabs of a column-major LAF are contiguous: 1 request/slab.
    const double a_reqs_per_sweep =
        static_cast<double>(a_slabs.count()) *
        (q.storage_reorganized ? 1.0 : 1.0);  // natural order is contiguous
    out.arrays.push_back(ArrayCost{
        "a", static_cast<double>(n) * a_reqs_per_sweep,
        static_cast<double>(n) * static_cast<double>(nlc * n)});
    out.arrays.push_back(ArrayCost{"b",
                                   static_cast<double>(b_slabs.count()),
                                   static_cast<double>(nlc * n)});
    // C: the writer flushes ceil(nlc / wc) full-column sections, one
    // contiguous request each in column-major storage.
    const std::int64_t c_capacity = std::max(q.slab_c, n);
    const std::int64_t wc = std::max<std::int64_t>(1, c_capacity / n);
    out.arrays.push_back(ArrayCost{
        "c", static_cast<double>(ceil_div(nlc, std::min(wc, nlc))),
        static_cast<double>(nlc * n)});
    return out;
  }

  // Figure 12 (row slabs). A is swept exactly once (Equations 5-6).
  const runtime::SlabIterator a_slabs(
      n, nlc, runtime::SlabOrientation::kRowSlabs, q.slab_a);
  const std::int64_t ha = a_slabs.slab_span();
  // Contiguity: one request per slab when A's LAF was reorganized to
  // row-major; otherwise each row slab costs one extent per local column.
  const double a_extents_per_slab =
      q.storage_reorganized ? 1.0 : static_cast<double>(nlc);
  out.arrays.push_back(
      ArrayCost{"a", static_cast<double>(a_slabs.count()) * a_extents_per_slab,
                static_cast<double>(nlc * n)});
  // B is re-read once per A slab (Figure 12's loop nest).
  out.arrays.push_back(ArrayCost{
      "b",
      static_cast<double>(a_slabs.count()) *
          static_cast<double>(b_slabs.count()),
      static_cast<double>(a_slabs.count()) * static_cast<double>(nlc * n)});
  // C: per A slab, the writer flushes ceil(nlc / wc) sections of ha rows.
  const std::int64_t c_capacity = std::max(q.slab_c, ha);
  const std::int64_t wc =
      std::min(std::max<std::int64_t>(1, c_capacity / ha), nlc);
  const std::int64_t sections_per_slab = ceil_div(nlc, wc);
  double extents_per_section;
  if (q.storage_reorganized) {
    // Row-major C: a full-width section is one extent, else one per row.
    extents_per_section =
        wc == nlc ? 1.0 : static_cast<double>(ha);
  } else {
    // Column-major C: one extent per column in the section.
    extents_per_section = static_cast<double>(wc);
  }
  out.arrays.push_back(ArrayCost{
      "c",
      static_cast<double>(a_slabs.count()) *
          static_cast<double>(sections_per_slab) * extents_per_section,
      static_cast<double>(nlc * n)});
  return out;
}

CostDecision choose_access_reorganization(const GaxpyCostQuery& query,
                                          const io::DiskModel& disk) {
  CostDecision decision;
  decision.candidates.push_back(estimate_gaxpy_cost(
      runtime::SlabOrientation::kColumnSlabs, query));
  decision.candidates.push_back(
      estimate_gaxpy_cost(runtime::SlabOrientation::kRowSlabs, query));

  // Figure 14, step 3: which array requires the largest amount of I/O?
  // Judged on the straightforward translation (the first candidate), as
  // the paper does when it identifies A as dominant.
  const CandidateCost& base = decision.candidates.front();
  const ArrayCost* dominant = &base.arrays.front();
  for (const ArrayCost& a : base.arrays) {
    if (a.data_elements > dominant->data_elements) {
      dominant = &a;
    }
  }
  decision.dominant_array = dominant->array;

  // Figure 14, step 4: select the strategy with the lowest cost for the
  // dominant array; break ties with total estimated disk time.
  const CandidateCost* best = nullptr;
  for (const CandidateCost& cand : decision.candidates) {
    if (best == nullptr) {
      best = &cand;
      continue;
    }
    const ArrayCost& lhs = cand.cost_of(decision.dominant_array);
    const ArrayCost& rhs = best->cost_of(decision.dominant_array);
    const double lhs_time = cand.estimated_io_time_s(disk, query.nprocs);
    const double rhs_time = best->estimated_io_time_s(disk, query.nprocs);
    if (lhs.data_elements < rhs.data_elements ||
        (lhs.data_elements == rhs.data_elements && lhs_time < rhs_time)) {
      best = &cand;
    }
  }
  decision.chosen = *best;

  std::ostringstream why;
  why << "dominant array is '" << decision.dominant_array << "' (";
  why << dominant->data_elements << " elements/proc in the column-slab "
      << "translation); ";
  for (const CandidateCost& cand : decision.candidates) {
    const ArrayCost& d = cand.cost_of(decision.dominant_array);
    why << runtime::slab_orientation_name(cand.a_orientation) << ": T_fetch="
        << d.fetch_requests << " T_data=" << d.data_elements << "; ";
  }
  why << "selected "
      << runtime::slab_orientation_name(decision.chosen.a_orientation);
  decision.rationale = why.str();
  return decision;
}

namespace {

/// Symbolic execution of a plan's step tree for one processor: tracks the
/// same loop, reduction, and output-writer state as exec's StepExecutor,
/// but charges extent counts instead of doing I/O.
class StepPricer {
 public:
  StepPricer(const NodeProgram& plan, int proc) : plan_(plan), proc_(proc) {
    for (const SlabLoop& loop : plan_.loops) {
      const PlanArray& space = plan_.array(loop.space);
      states_.emplace(
          loop.name,
          LoopState(&loop, runtime::SlabIterator(space.dist.local_rows(proc_),
                                                 space.dist.local_cols(proc_),
                                                 loop.orientation,
                                                 loop.capacity_elements)));
    }
  }

  std::map<std::string, StepIoCost> run() {
    walk(plan_.steps);
    if (writer_) {
      flush_writer();
    }
    return std::move(out_);
  }

 private:
  struct LoopState {
    LoopState(const SlabLoop* d, runtime::SlabIterator it)
        : decl(d), iter(it) {}

    const SlabLoop* decl;
    runtime::SlabIterator iter;
    io::Section section{};
    std::int64_t column = -1;
  };

  /// The same batching core the executor's OwnedColumnWriter wraps, minus
  /// the data copy and the I/O.
  struct WriterSim {
    WriterSim(std::int64_t capacity, std::int64_t row0, std::int64_t row1,
              std::int64_t local_cols, std::string name)
        : batch(capacity, row0, row1, local_cols),
          r0(row0),
          r1(row1),
          array(std::move(name)) {}

    runtime::ColumnBatch batch;
    std::int64_t r0;
    std::int64_t r1;
    std::string array;
  };

  LoopState& state(const std::string& name) {
    const auto it = states_.find(name);
    OOCC_CHECK(it != states_.end(), ErrorCode::kInvalidArgument,
               "step references undeclared slab loop '" << name << "'");
    return it->second;
  }

  void charge(const std::string& array, const io::Section& s, bool is_read) {
    const PlanArray& pa = plan_.array(array);
    const double extents = static_cast<double>(io::section_extent_count(
        s, pa.dist.local_rows(proc_), pa.dist.local_cols(proc_), pa.storage));
    StepIoCost& cost = out_[array];
    if (is_read) {
      cost.read_requests += extents;
      cost.elements_read += static_cast<double>(s.elements());
    } else {
      cost.write_requests += extents;
      cost.elements_written += static_cast<double>(s.elements());
    }
  }

  void flush_writer() {
    if (!writer_ || writer_->batch.pending() == 0) {
      return;
    }
    charge(writer_->array,
           io::Section{writer_->r0, writer_->r1, writer_->batch.lc0(),
                       writer_->batch.lc0() + writer_->batch.pending()},
           /*is_read=*/false);
    writer_->batch.clear();
  }

  void walk(const std::vector<Step>& steps) {
    for (const Step& step : steps) {
      walk(step);
    }
  }

  void walk(const Step& step) {
    switch (step.kind) {
      case StepKind::kForEachSlab: {
        LoopState& loop = state(step.loop);
        for (std::int64_t i = 0; i < loop.iter.count(); ++i) {
          loop.section = loop.iter.section(i);
          walk(step.body);
        }
        return;
      }
      case StepKind::kForEachColumn: {
        LoopState& loop = state(step.loop);
        for (std::int64_t m = 0; m < loop.section.cols(); ++m) {
          loop.column = m;
          fresh_column_ = true;
          walk(step.body);
        }
        return;
      }
      case StepKind::kReadSlab:
        charge(step.array, state(step.loop).section, /*is_read=*/true);
        return;
      case StepKind::kWriteSlab:
        charge(step.array, state(step.loop).section, /*is_read=*/false);
        return;
      case StepKind::kComputeElementwise:
      case StepKind::kBarrier:
        return;
      case StepKind::kComputeGaxpyPartial: {
        if (fresh_column_) {
          const LoopState& a_loop = state(step.loop);
          temp_r0_ = a_loop.section.row0;
          temp_r1_ = a_loop.section.row1;
          full_rows_ = a_loop.iter.section(0).rows();
          fresh_column_ = false;
        }
        return;
      }
      case StepKind::kReduceSum:
        price_reduce(step);
        return;
    }
  }

  void price_reduce(const Step& step) {
    const LoopState& col_loop = state(step.with);
    const PlanArray& c = plan_.array(step.array);
    const std::int64_t gj = col_loop.section.col0 + col_loop.column;
    if (writer_ && (writer_->r0 != temp_r0_ || writer_->r1 != temp_r1_)) {
      flush_writer();
      writer_.reset();
    }
    if (c.dist.owner_of_col(gj) != proc_) {
      return;
    }
    if (!writer_) {
      const std::int64_t capacity =
          std::max(plan_.memory.slab_c, full_rows_);
      writer_.emplace(capacity, temp_r0_, temp_r1_,
                      c.dist.local_cols(proc_), step.array);
    }
    if (writer_->batch.push(c.dist.global_to_local_col(gj))) {
      flush_writer();
    }
  }

  const NodeProgram& plan_;
  int proc_;
  std::map<std::string, LoopState> states_;
  std::map<std::string, StepIoCost> out_;
  bool fresh_column_ = false;
  std::int64_t temp_r0_ = 0;
  std::int64_t temp_r1_ = 0;
  std::int64_t full_rows_ = 0;
  std::optional<WriterSim> writer_;
};

}  // namespace

std::map<std::string, StepIoCost> price_steps(const NodeProgram& plan,
                                              int proc) {
  OOCC_REQUIRE(proc >= 0 && proc < plan.nprocs,
               "processor " << proc << " outside the plan's 0.."
                            << plan.nprocs - 1);
  return StepPricer(plan, proc).run();
}

TotalCostEstimate estimate_gaxpy_total(runtime::SlabOrientation orientation,
                                       const GaxpyCostQuery& query,
                                       const io::DiskModel& disk,
                                       const sim::MachineCostModel& machine) {
  TotalCostEstimate out;
  const CandidateCost io = estimate_gaxpy_cost(orientation, query);
  out.io_s = io.estimated_io_time_s(disk, query.nprocs);

  // Computation: every processor multiplies its nlc local columns into
  // every output (sub)column exactly once: 2 * N^2 * nlc flops.
  const hpf::ArrayDistribution a_dist =
      hpf::column_block(query.n, query.n, query.nprocs);
  const std::int64_t nlc = a_dist.local_cols(0);
  out.compute_s = machine.compute.flops_time(
      2.0 * static_cast<double>(query.n) * static_cast<double>(query.n) *
      static_cast<double>(nlc));

  // Communication: one binomial-tree sum per output (sub)column. The
  // critical path of each reduction is ceil(log2 P) hops of
  // (latency + vector bytes / bandwidth); vectors are full columns (N) in
  // the column version and slab-height subcolumns in the row version
  // (which does slabs_A * N reductions of N/slabs_A elements each — the
  // same volume, more latencies).
  int hops = 0;
  for (int m = 1; m < query.nprocs; m <<= 1) {
    ++hops;
  }
  double reductions;
  double vector_elements;
  if (orientation == runtime::SlabOrientation::kColumnSlabs) {
    reductions = static_cast<double>(query.n);
    vector_elements = static_cast<double>(query.n);
  } else {
    const runtime::SlabIterator a_slabs(
        query.n, nlc, runtime::SlabOrientation::kRowSlabs, query.slab_a);
    reductions =
        static_cast<double>(a_slabs.count()) * static_cast<double>(query.n);
    vector_elements = static_cast<double>(a_slabs.slab_span());
  }
  const double per_reduction =
      hops * machine.comm.transfer_time(vector_elements *
                                        static_cast<double>(sizeof(double)));
  out.comm_s = reductions * per_reduction;
  return out;
}

}  // namespace oocc::compiler
