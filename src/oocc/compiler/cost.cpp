#include "oocc/compiler/cost.hpp"

#include <algorithm>
#include <deque>
#include <optional>
#include <sstream>

#include "oocc/compiler/plan.hpp"
#include "oocc/hpf/distribution.hpp"
#include "oocc/runtime/slab_writer.hpp"
#include "oocc/util/error.hpp"

namespace oocc::compiler {

double CandidateCost::total_requests() const noexcept {
  double t = 0.0;
  for (const auto& a : arrays) t += a.fetch_requests;
  return t;
}

double CandidateCost::total_elements() const noexcept {
  double t = 0.0;
  for (const auto& a : arrays) t += a.data_elements;
  return t;
}

double CandidateCost::estimated_io_time_s(const io::DiskModel& disk,
                                          int nprocs) const {
  return total_requests() * disk.request_overhead_s +
         total_elements() * static_cast<double>(sizeof(double)) /
             disk.effective_bandwidth(nprocs);
}

const ArrayCost& CandidateCost::cost_of(const std::string& name) const {
  for (const auto& a : arrays) {
    if (a.array == name) {
      return a;
    }
  }
  OOCC_THROW(ErrorCode::kInvalidArgument,
             "candidate has no cost entry for array '" << name << "'");
}

namespace {

std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  return (a + b - 1) / b;
}

}  // namespace

CandidateCost estimate_gaxpy_cost(runtime::SlabOrientation orientation,
                                  const GaxpyCostQuery& q) {
  OOCC_REQUIRE(q.n >= 1 && q.nprocs >= 1, "query needs n >= 1 and P >= 1");
  OOCC_REQUIRE(q.slab_a >= 1 && q.slab_b >= 1 && q.slab_c >= 1,
               "slab sizes must be >= 1 element");
  const std::int64_t n = q.n;
  // Local extents on processor 0 (the maximum under BLOCK); with N a
  // multiple of P every processor matches and the estimate is exact.
  const hpf::ArrayDistribution a_dist = hpf::column_block(n, n, q.nprocs);
  const std::int64_t nlc = a_dist.local_cols(0);

  CandidateCost out;
  out.a_orientation = orientation;
  out.storage_reorganized = q.storage_reorganized;

  // B is stripmined in column slabs in both translations (its ICLA holds
  // nlc-row columns); reads are contiguous in B's column-major LAF.
  const runtime::SlabIterator b_slabs(
      nlc, n, runtime::SlabOrientation::kColumnSlabs, q.slab_b);

  if (orientation == runtime::SlabOrientation::kColumnSlabs) {
    // Figure 9. A is re-swept once per output column (Equations 3-4).
    const runtime::SlabIterator a_slabs(
        n, nlc, runtime::SlabOrientation::kColumnSlabs, q.slab_a);
    // Column slabs of a column-major LAF are contiguous: 1 request/slab.
    const double a_reqs_per_sweep =
        static_cast<double>(a_slabs.count()) *
        (q.storage_reorganized ? 1.0 : 1.0);  // natural order is contiguous
    out.arrays.push_back(ArrayCost{
        "a", static_cast<double>(n) * a_reqs_per_sweep,
        static_cast<double>(n) * static_cast<double>(nlc * n)});
    out.arrays.push_back(ArrayCost{"b",
                                   static_cast<double>(b_slabs.count()),
                                   static_cast<double>(nlc * n)});
    // C: the writer flushes ceil(nlc / wc) full-column sections, one
    // contiguous request each in column-major storage.
    const std::int64_t c_capacity = std::max(q.slab_c, n);
    const std::int64_t wc = std::max<std::int64_t>(1, c_capacity / n);
    out.arrays.push_back(ArrayCost{
        "c", static_cast<double>(ceil_div(nlc, std::min(wc, nlc))),
        static_cast<double>(nlc * n)});
    return out;
  }

  // Figure 12 (row slabs). A is swept exactly once (Equations 5-6).
  const runtime::SlabIterator a_slabs(
      n, nlc, runtime::SlabOrientation::kRowSlabs, q.slab_a);
  const std::int64_t ha = a_slabs.slab_span();
  // Contiguity: one request per slab when A's LAF was reorganized to
  // row-major; otherwise each row slab costs one extent per local column.
  const double a_extents_per_slab =
      q.storage_reorganized ? 1.0 : static_cast<double>(nlc);
  out.arrays.push_back(
      ArrayCost{"a", static_cast<double>(a_slabs.count()) * a_extents_per_slab,
                static_cast<double>(nlc * n)});
  // B is re-read once per A slab (Figure 12's loop nest).
  out.arrays.push_back(ArrayCost{
      "b",
      static_cast<double>(a_slabs.count()) *
          static_cast<double>(b_slabs.count()),
      static_cast<double>(a_slabs.count()) * static_cast<double>(nlc * n)});
  // C: per A slab, the writer flushes ceil(nlc / wc) sections of ha rows.
  const std::int64_t c_capacity = std::max(q.slab_c, ha);
  const std::int64_t wc =
      std::min(std::max<std::int64_t>(1, c_capacity / ha), nlc);
  const std::int64_t sections_per_slab = ceil_div(nlc, wc);
  double extents_per_section;
  if (q.storage_reorganized) {
    // Row-major C: a full-width section is one extent, else one per row.
    extents_per_section =
        wc == nlc ? 1.0 : static_cast<double>(ha);
  } else {
    // Column-major C: one extent per column in the section.
    extents_per_section = static_cast<double>(wc);
  }
  out.arrays.push_back(ArrayCost{
      "c",
      static_cast<double>(a_slabs.count()) *
          static_cast<double>(sections_per_slab) * extents_per_section,
      static_cast<double>(nlc * n)});
  return out;
}

CostDecision choose_access_reorganization(const GaxpyCostQuery& query,
                                          const io::DiskModel& disk) {
  CostDecision decision;
  decision.candidates.push_back(estimate_gaxpy_cost(
      runtime::SlabOrientation::kColumnSlabs, query));
  decision.candidates.push_back(
      estimate_gaxpy_cost(runtime::SlabOrientation::kRowSlabs, query));

  // Figure 14, step 3: which array requires the largest amount of I/O?
  // Judged on the straightforward translation (the first candidate), as
  // the paper does when it identifies A as dominant.
  const CandidateCost& base = decision.candidates.front();
  const ArrayCost* dominant = &base.arrays.front();
  for (const ArrayCost& a : base.arrays) {
    if (a.data_elements > dominant->data_elements) {
      dominant = &a;
    }
  }
  decision.dominant_array = dominant->array;

  // Figure 14, step 4: select the strategy with the lowest cost for the
  // dominant array; break ties with total estimated disk time.
  const CandidateCost* best = nullptr;
  for (const CandidateCost& cand : decision.candidates) {
    if (best == nullptr) {
      best = &cand;
      continue;
    }
    const ArrayCost& lhs = cand.cost_of(decision.dominant_array);
    const ArrayCost& rhs = best->cost_of(decision.dominant_array);
    const double lhs_time = cand.estimated_io_time_s(disk, query.nprocs);
    const double rhs_time = best->estimated_io_time_s(disk, query.nprocs);
    if (lhs.data_elements < rhs.data_elements ||
        (lhs.data_elements == rhs.data_elements && lhs_time < rhs_time)) {
      best = &cand;
    }
  }
  decision.chosen = *best;

  std::ostringstream why;
  why << "dominant array is '" << decision.dominant_array << "' (";
  why << dominant->data_elements << " elements/proc in the column-slab "
      << "translation); ";
  for (const CandidateCost& cand : decision.candidates) {
    const ArrayCost& d = cand.cost_of(decision.dominant_array);
    why << runtime::slab_orientation_name(cand.a_orientation) << ": T_fetch="
        << d.fetch_requests << " T_data=" << d.data_elements << "; ";
  }
  why << "selected "
      << runtime::slab_orientation_name(decision.chosen.a_orientation);
  decision.rationale = why.str();
  return decision;
}

namespace {

/// Shape-only mirror of runtime::SlabBufferPool for the pricer: entries are
/// (section, reuse hint, recency, dirty, pin) tuples against a capacity in
/// elements; lookup is exact / containment / full-height column coverage
/// and eviction is farthest-reuse-first with an LRU tie-break — the same
/// policy as bufferpool.cpp, so priced hits match measured ones. Capacity
/// is soft: when every entry is pinned the sim briefly over-subscribes
/// instead of throwing (the executor would have failed louder).
class CacheSim {
 public:
  struct Entry {
    io::Section sec;
    double hint = -1.0;
    std::uint64_t last_use = 0;
    bool dirty = false;
    bool prefetched = false;
    int pins = 0;
  };

  void set_capacity(std::int64_t cap) noexcept { capacity_ = cap; }

  /// Sections written back by an operation, to be charged by the caller.
  using WriteBacks = std::vector<std::pair<std::string, io::Section>>;

  /// What a demand read found. kPrefetched mirrors the pool's double-buffer
  /// accounting: the bytes did move (charged at read-ahead issue), so the
  /// demand acquire is neither a charged read nor a counted hit.
  enum class ReadResult { kMiss, kHit, kPrefetched };

  /// Demand read. Either way the requested section ends pinned and
  /// resident (assembled entries mirror the pool's copies).
  ReadResult acquire_read(const std::string& array, const io::Section& s,
                          double hint, WriteBacks& wb) {
    if (Entry* e = find_exact(array, s)) {
      e->last_use = ++tick_;
      e->hint = hint;
      ++e->pins;
      if (e->prefetched) {
        e->prefetched = false;
        return ReadResult::kPrefetched;
      }
      return ReadResult::kHit;
    }
    const std::vector<io::Section> sources = covering_sections(array, s);
    if (!sources.empty()) {
      // The pool pins the covering entries while it assembles the new
      // one, so eviction during the insert cannot pick them — mirror that
      // or the resident sets diverge at tight budgets.
      for (const io::Section& src : sources) {
        adjust_pins(array, src, +1);
      }
      insert(array, s, hint, wb).pins = 1;
      for (const io::Section& src : sources) {
        adjust_pins(array, src, -1);
      }
      return ReadResult::kHit;
    }
    // Miss: the pool writes back dirty entries overlapping the request
    // before reading the disk (the read must see current data).
    flush_overlapping_dirty(array, s, wb);
    insert(array, s, hint, wb).pins = 1;
    return ReadResult::kMiss;
  }

  /// Mirror of SlabBufferPool::resident: exact entry or assemblable cover.
  bool resident(const std::string& array, const io::Section& s) {
    return !covering_sections(array, s).empty();
  }

  /// Mirror of SlabBufferPool::read_ahead: inserts an unpinned prefetched
  /// entry only when the spare room holds it — a read-ahead never evicts.
  /// Returns false (queue stalls) when the pool is full. The caller charges
  /// the disk read on success.
  bool read_ahead(const std::string& array, const io::Section& s,
                  double hint, WriteBacks& wb) {
    if (resident(array, s)) {
      return true;
    }
    if (used_ + s.elements() > capacity_) {
      return false;
    }
    flush_overlapping_dirty(array, s, wb);
    insert(array, s, hint, wb).prefetched = true;
    return true;
  }

  /// Staging for a write: drops (write-back first) other overlapping
  /// ranges, pins the exact entry.
  void acquire_write(const std::string& array, const io::Section& s,
                     double hint, WriteBacks& wb) {
    auto it = entries_.find(array);
    if (it != entries_.end()) {
      for (std::size_t i = 0; i < it->second.size();) {
        Entry& e = it->second[i];
        if (!(e.sec == s) && e.sec.overlaps(s)) {
          if (e.dirty) {
            wb.emplace_back(array, e.sec);
          }
          used_ -= e.sec.elements();
          it->second.erase(it->second.begin() +
                           static_cast<std::ptrdiff_t>(i));
        } else {
          ++i;
        }
      }
    }
    if (Entry* e = find_exact(array, s)) {
      e->last_use = ++tick_;
      ++e->pins;
      return;
    }
    insert(array, s, hint, wb).pins = 1;
  }

  void mark_dirty(const std::string& array, const io::Section& s,
                  double hint) {
    if (Entry* e = find_exact(array, s)) {
      e->dirty = true;
      e->hint = hint;
      e->last_use = ++tick_;
    }
  }

  void unpin(const std::string& array, const io::Section& s) {
    if (Entry* e = find_exact(array, s)) {
      if (e->pins > 0) {
        --e->pins;
      }
    }
  }

  /// Drops the exact entry if clean and unpinned (the executor's halo-entry
  /// discard after each slab iteration — SlabBufferPool::drop_clean).
  void drop_clean(const std::string& array, const io::Section& s) {
    const auto it = entries_.find(array);
    if (it == entries_.end()) {
      return;
    }
    for (std::size_t i = 0; i < it->second.size(); ++i) {
      Entry& e = it->second[i];
      if (e.sec == s && !e.dirty && e.pins == 0) {
        used_ -= e.sec.elements();
        it->second.erase(it->second.begin() + static_cast<std::ptrdiff_t>(i));
        return;
      }
    }
  }

  /// Write back and drop every entry of `array` (the OwnedColumnWriter
  /// bypass makes cached slabs stale).
  void invalidate(const std::string& array, WriteBacks& wb) {
    const auto it = entries_.find(array);
    if (it == entries_.end()) {
      return;
    }
    for (const Entry& e : it->second) {
      if (e.dirty) {
        wb.emplace_back(array, e.sec);
      }
      used_ -= e.sec.elements();
    }
    entries_.erase(it);
  }

  /// Write back every dirty entry, in the pool's deterministic flush order.
  void flush(WriteBacks& wb) {
    for (auto& [array, list] : entries_) {
      std::vector<Entry*> dirty;
      for (Entry& e : list) {
        if (e.dirty) {
          dirty.push_back(&e);
        }
      }
      std::sort(dirty.begin(), dirty.end(),
                [](const Entry* a, const Entry* b) {
                  if (a->sec.col0 != b->sec.col0) {
                    return a->sec.col0 < b->sec.col0;
                  }
                  return a->sec.row0 < b->sec.row0;
                });
      for (Entry* e : dirty) {
        wb.emplace_back(array, e->sec);
        e->dirty = false;
      }
    }
  }

 private:
  Entry* find_exact(const std::string& array, const io::Section& s) {
    const auto it = entries_.find(array);
    if (it == entries_.end()) {
      return nullptr;
    }
    for (Entry& e : it->second) {
      if (e.sec == s) {
        return &e;
      }
    }
    return nullptr;
  }

  /// Sections of the entries that cover `s` (same rule as the pool's
  /// covering_entries); empty when `s` is not covered. Sections rather
  /// than pointers: eviction reshuffles the entry vectors.
  std::vector<io::Section> covering_sections(const std::string& array,
                                             const io::Section& s) const {
    const auto it = entries_.find(array);
    if (it == entries_.end()) {
      return {};
    }
    for (const Entry& e : it->second) {
      if (e.sec.contains(s)) {
        return {e.sec};
      }
    }
    std::vector<io::Section> sources;
    for (std::int64_t c = s.col0; c < s.col1;) {
      const Entry* found = nullptr;
      for (const Entry& e : it->second) {
        if (e.sec.row0 == s.row0 && e.sec.row1 == s.row1 && e.sec.col0 <= c &&
            c < e.sec.col1) {
          found = &e;
          break;
        }
      }
      if (found == nullptr) {
        return {};
      }
      sources.push_back(found->sec);
      c = found->sec.col1;
    }
    return sources;
  }

  void adjust_pins(const std::string& array, const io::Section& s,
                   int delta) {
    if (Entry* e = find_exact(array, s)) {
      e->pins += delta;
    }
  }

  void flush_overlapping_dirty(const std::string& array, const io::Section& s,
                               WriteBacks& wb) {
    const auto it = entries_.find(array);
    if (it == entries_.end()) {
      return;
    }
    for (Entry& e : it->second) {
      if (e.dirty && e.sec.overlaps(s)) {
        wb.emplace_back(array, e.sec);
        e.dirty = false;
      }
    }
  }

  Entry& insert(const std::string& array, const io::Section& s, double hint,
                WriteBacks& wb) {
    while (used_ + s.elements() > capacity_) {
      if (!evict_one(wb)) {
        break;  // soft capacity: everything pinned
      }
    }
    Entry e;
    e.sec = s;
    e.hint = hint;
    e.last_use = ++tick_;
    entries_[array].push_back(e);
    used_ += s.elements();
    return entries_[array].back();
  }

  static double rank(double hint) noexcept {
    return hint < 0 ? std::numeric_limits<double>::infinity() : hint;
  }

  bool evict_one(WriteBacks& wb) {
    std::string* varr = nullptr;
    std::size_t vidx = 0;
    const Entry* victim = nullptr;
    for (auto& [array, list] : entries_) {
      for (std::size_t i = 0; i < list.size(); ++i) {
        const Entry& e = list[i];
        if (e.pins > 0) {
          continue;
        }
        if (victim == nullptr || rank(e.hint) > rank(victim->hint) ||
            (rank(e.hint) == rank(victim->hint) &&
             e.last_use < victim->last_use)) {
          varr = const_cast<std::string*>(&array);
          vidx = i;
          victim = &e;
        }
      }
    }
    if (victim == nullptr) {
      return false;
    }
    if (victim->dirty) {
      wb.emplace_back(*varr, victim->sec);
    }
    used_ -= victim->sec.elements();
    auto& list = entries_[*varr];
    list.erase(list.begin() + static_cast<std::ptrdiff_t>(vidx));
    return true;
  }

  std::map<std::string, std::vector<Entry>> entries_;
  std::int64_t capacity_ = 0;
  std::int64_t used_ = 0;
  std::uint64_t tick_ = 0;
};

/// Symbolic execution of a plan's step tree for one processor: tracks the
/// same loop, reduction, and output-writer state as exec's StepExecutor,
/// but charges extent counts instead of doing I/O. With a CacheSim it also
/// mirrors the executor's slab pool, pricing hits as avoided traffic.
class StepPricer {
 public:
  /// `all_arrays` resolves arrays that live in *other* plans of the
  /// sequence being priced (a persistent cache can evict another
  /// statement's dirty slab mid-walk); null for single-plan pricing.
  StepPricer(const NodeProgram& plan, int proc, CacheSim* cache,
             const std::map<std::string, const PlanArray*>* all_arrays =
                 nullptr)
      : plan_(plan), proc_(proc), cache_(cache), all_arrays_(all_arrays) {
    for (const SlabLoop& loop : plan_.loops) {
      const PlanArray& space = plan_.array(loop.space);
      states_.emplace(
          loop.name,
          LoopState(&loop, runtime::SlabIterator(space.dist.local_rows(proc_),
                                                 space.dist.local_cols(proc_),
                                                 loop.orientation,
                                                 loop.capacity_elements)));
    }
  }

  PlanPrice run() {
    if (cache_ != nullptr && plan_.kind == ProgramKind::kGaxpy) {
      // The executor write-backs + drops cached slabs of arrays written
      // through the OwnedColumnWriter bypass before running the plan.
      CacheSim::WriteBacks wb;
      cache_->invalidate(plan_.c, wb);
      charge_writebacks(wb);
    }
    walk(plan_.steps);
    if (writer_) {
      flush_writer();
    }
    return std::move(price_);
  }

 private:
  struct LoopState {
    LoopState(const SlabLoop* d, runtime::SlabIterator it)
        : decl(d), iter(it) {}

    const SlabLoop* decl;
    runtime::SlabIterator iter;
    io::Section section{};
    std::int64_t index = -1;
    std::int64_t column = -1;
    /// Cache entries pinned during the current slab iteration (cache mode).
    std::vector<std::pair<std::string, io::Section>> pinned;
    /// Halo entries dropped at iteration end (mirror of the executor).
    std::vector<std::pair<std::string, io::Section>> transient;
    /// Read-ahead mirror of the executor's per-loop IoScheduler: the
    /// upcoming input-slab schedule, pumped after each demand read.
    struct PrefReq {
      std::string array;
      io::Section section;
      double hint;
    };
    std::deque<PrefReq> queue;
    int lookahead = 0;
  };

  /// The same batching core the executor's OwnedColumnWriter wraps, minus
  /// the data copy and the I/O.
  struct WriterSim {
    WriterSim(std::int64_t capacity, std::int64_t row0, std::int64_t row1,
              std::int64_t local_cols, std::string name)
        : batch(capacity, row0, row1, local_cols),
          r0(row0),
          r1(row1),
          array(std::move(name)) {}

    runtime::ColumnBatch batch;
    std::int64_t r0;
    std::int64_t r1;
    std::string array;
  };

  LoopState& state(const std::string& name) {
    const auto it = states_.find(name);
    OOCC_CHECK(it != states_.end(), ErrorCode::kInvalidArgument,
               "step references undeclared slab loop '" << name << "'");
    return it->second;
  }

  const PlanArray& resolve_array(const std::string& array) const {
    const auto it = plan_.arrays.find(array);
    if (it != plan_.arrays.end()) {
      return it->second;
    }
    OOCC_CHECK(all_arrays_ != nullptr && all_arrays_->contains(array),
               ErrorCode::kInvalidArgument,
               "priced cache holds array '" << array
                                            << "' unknown to the sequence");
    return *all_arrays_->at(array);
  }

  void charge(const std::string& array, const io::Section& s, bool is_read) {
    const PlanArray& pa = resolve_array(array);
    const double extents = static_cast<double>(io::section_extent_count(
        s, pa.dist.local_rows(proc_), pa.dist.local_cols(proc_), pa.storage));
    StepIoCost& cost = price_.arrays[array];
    if (is_read) {
      cost.read_requests += extents;
      cost.elements_read += static_cast<double>(s.elements());
    } else {
      cost.write_requests += extents;
      cost.elements_written += static_cast<double>(s.elements());
    }
  }

  void charge_writebacks(const CacheSim::WriteBacks& wb) {
    for (const auto& [array, sec] : wb) {
      charge(array, sec, /*is_read=*/false);
    }
  }

  void flush_writer() {
    if (!writer_ || writer_->batch.pending() == 0) {
      return;
    }
    charge(writer_->array,
           io::Section{writer_->r0, writer_->r1, writer_->batch.lc0(),
                       writer_->batch.lc0() + writer_->batch.pending()},
           /*is_read=*/false);
    writer_->batch.clear();
  }

  void walk(const std::vector<Step>& steps) {
    for (const Step& step : steps) {
      walk(step);
    }
  }

  void walk(const Step& step) {
    switch (step.kind) {
      case StepKind::kForEachSlab: {
        LoopState& loop = state(step.loop);
        if (cache_ != nullptr && loop.decl->prefetch) {
          // Mirror of the executor's schedule hand-off: every pure-input
          // ReadSlab stream of this loop, every slab, in demand order.
          loop.queue.clear();
          loop.lookahead = 0;
          std::vector<const Step*> reads;
          for (const Step& s : step.body) {
            if (s.kind == StepKind::kReadSlab &&
                !plan_.array(s.array).is_output) {
              reads.push_back(&s);
              ++loop.lookahead;
            }
          }
          for (std::int64_t i = 0; i < loop.iter.count(); ++i) {
            for (const Step* s : reads) {
              loop.queue.push_back(LoopState::PrefReq{
                  s->array, loop.iter.section(i), s->reuse_distance});
            }
          }
        }
        for (std::int64_t i = 0; i < loop.iter.count(); ++i) {
          loop.index = i;
          loop.section = loop.iter.section(i);
          walk(step.body);
          if (cache_ != nullptr) {
            for (auto it = loop.pinned.rbegin(); it != loop.pinned.rend();
                 ++it) {
              cache_->unpin(it->first, it->second);
            }
            loop.pinned.clear();
            for (const auto& [array, sec] : loop.transient) {
              cache_->drop_clean(array, sec);
            }
            loop.transient.clear();
          }
        }
        loop.index = -1;
        return;
      }
      case StepKind::kForEachColumn: {
        LoopState& loop = state(step.loop);
        for (std::int64_t m = 0; m < loop.section.cols(); ++m) {
          loop.column = m;
          fresh_column_ = true;
          walk(step.body);
        }
        return;
      }
      case StepKind::kReadSlab:
        price_read(step);
        return;
      case StepKind::kExchangeHalo:
        price_exchange(step);
        return;
      case StepKind::kWriteSlab:
        if (cache_ != nullptr) {
          // Deferred: the dirty slab is charged at write-back time.
          cache_->mark_dirty(step.array, state(step.loop).section,
                             step.reuse_distance);
        } else {
          charge(step.array, state(step.loop).section, /*is_read=*/false);
        }
        return;
      case StepKind::kComputeElementwise: {
        LoopState& loop = state(step.loop);
        price_.flops += static_cast<double>(loop.section.elements());
        if (cache_ != nullptr) {
          const std::string& lhs =
              plan_.statements.at(static_cast<std::size_t>(step.stmt)).lhs;
          CacheSim::WriteBacks wb;
          cache_->acquire_write(lhs, loop.section, step.reuse_distance, wb);
          charge_writebacks(wb);
          loop.pinned.emplace_back(lhs, loop.section);
        }
        return;
      }
      case StepKind::kComputeStencil:
        price_stencil(step);
        return;
      case StepKind::kBarrier:
        return;
      case StepKind::kComputeGaxpyPartial: {
        const LoopState& a_loop = state(step.loop);
        price_.flops += 2.0 * static_cast<double>(a_loop.section.rows()) *
                        static_cast<double>(a_loop.section.cols());
        if (fresh_column_) {
          temp_r0_ = a_loop.section.row0;
          temp_r1_ = a_loop.section.row1;
          full_rows_ = a_loop.iter.section(0).rows();
          fresh_column_ = false;
        }
        return;
      }
      case StepKind::kReduceSum:
        price_reduce(step);
        return;
    }
  }

  void price_read(const Step& step) {
    LoopState& loop = state(step.loop);
    const PlanArray& ra = resolve_array(step.array);
    const io::Section s =
        step.halo > 0 ? widen_columns(loop.section, step.halo,
                                      ra.dist.local_cols(proc_))
                      : loop.section;
    if (cache_ != nullptr) {
      CacheSim::WriteBacks wb;
      const CacheSim::ReadResult r =
          cache_->acquire_read(step.array, s, step.reuse_distance, wb);
      charge_writebacks(wb);
      loop.pinned.emplace_back(step.array, s);
      if (step.halo > 0) {
        loop.transient.emplace_back(step.array, s);
      }
      if (r == CacheSim::ReadResult::kHit) {
        price_.cache_hits += 1.0;
        price_.elements_avoided += static_cast<double>(s.elements());
      } else if (r == CacheSim::ReadResult::kMiss) {
        charge(step.array, s, /*is_read=*/true);
      }
      if (loop.decl->prefetch) {
        pump(loop);
      }
      return;
    }
    charge(step.array, s, /*is_read=*/true);
    if (loop.decl->prefetch && loop.index > 0) {
      // Cache-off path: the PrefetchingSlabReader double-buffers every
      // stream, so all but the first slab's read overlaps compute.
      const PlanArray& pa = plan_.array(step.array);
      price_.overlappable_read_requests +=
          static_cast<double>(io::section_extent_count(
              s, pa.dist.local_rows(proc_), pa.dist.local_cols(proc_),
              pa.storage));
      price_.overlappable_read_elements += static_cast<double>(s.elements());
    }
  }

  /// Mirror of IoScheduler::pump: pop satisfied requests, then issue
  /// read-aheads until `lookahead` upcoming requests are resident or the
  /// pool has no spare room. Each issued read is charged here (the bytes
  /// move now) and counted overlappable (it runs behind the compute).
  void pump(LoopState& loop) {
    while (!loop.queue.empty() &&
           cache_->resident(loop.queue.front().array,
                            loop.queue.front().section)) {
      loop.queue.pop_front();
    }
    int in_flight = 0;
    for (const LoopState::PrefReq& r : loop.queue) {
      if (in_flight >= loop.lookahead) {
        break;
      }
      if (cache_->resident(r.array, r.section)) {
        ++in_flight;
        continue;
      }
      CacheSim::WriteBacks wb;
      const bool issued = cache_->read_ahead(r.array, r.section, r.hint, wb);
      charge_writebacks(wb);
      if (!issued) {
        break;  // no spare room; try again after the next demand read
      }
      charge(r.array, r.section, /*is_read=*/true);
      const PlanArray& pa = resolve_array(r.array);
      price_.overlappable_read_requests +=
          static_cast<double>(io::section_extent_count(
              r.section, pa.dist.local_rows(proc_),
              pa.dist.local_cols(proc_), pa.storage));
      price_.overlappable_read_elements +=
          static_cast<double>(r.section.elements());
      ++in_flight;
    }
  }

  /// Mirrors StepExecutor::exchange_halo: the edge-column reads hit this
  /// processor's LAF (through the modelled cache when one is active); the
  /// messages themselves carry no LAF cost.
  void price_exchange(const Step& step) {
    if (plan_.nprocs == 1) {
      return;
    }
    const PlanArray& pa = resolve_array(step.array);
    const std::int64_t rows = pa.dist.local_rows(proc_);
    const std::int64_t nlc = pa.dist.local_cols(proc_);
    const std::int64_t d = step.halo;
    const auto price_edge = [&](const io::Section& sec) {
      if (cache_ != nullptr) {
        CacheSim::WriteBacks wb;
        const CacheSim::ReadResult r =
            cache_->acquire_read(step.array, sec, step.reuse_distance, wb);
        charge_writebacks(wb);
        cache_->unpin(step.array, sec);
        if (r == CacheSim::ReadResult::kHit) {
          price_.cache_hits += 1.0;
          price_.elements_avoided += static_cast<double>(sec.elements());
        } else if (r == CacheSim::ReadResult::kMiss) {
          charge(step.array, sec, /*is_read=*/true);
        }
        return;
      }
      charge(step.array, sec, /*is_read=*/true);
    };
    if (proc_ > 0) {
      price_edge(io::Section{0, rows, 0, d});
    }
    if (proc_ < plan_.nprocs - 1) {
      price_edge(io::Section{0, rows, nlc - d, nlc});
    }
  }

  /// Mirrors StepExecutor::compute_stencil: one acquire_write of the output
  /// slab, and `binary ops x interior rows` flops per non-boundary column.
  void price_stencil(const Step& step) {
    const StencilStmt& st =
        plan_.stencils.at(static_cast<std::size_t>(step.stmt));
    LoopState& loop = state(step.loop);
    const io::Section& sec = loop.section;
    const PlanArray& lhs = resolve_array(st.lhs);
    const std::int64_t gcols = lhs.dist.global_cols();
    const std::int64_t rows = sec.rows();
    const double ops = static_cast<double>(hpf::count_binary_ops(*st.rhs));
    for (std::int64_t lc = sec.col0; lc < sec.col1; ++lc) {
      const std::int64_t gc = lhs.dist.local_to_global_col(proc_, lc);
      if (gc < st.halo || gc >= gcols - st.halo) {
        continue;  // boundary column: copy, no flops
      }
      price_.flops += ops * static_cast<double>(rows - 2 * st.row_halo);
    }
    if (cache_ != nullptr) {
      CacheSim::WriteBacks wb;
      cache_->acquire_write(st.lhs, sec, step.reuse_distance, wb);
      charge_writebacks(wb);
      loop.pinned.emplace_back(st.lhs, sec);
    }
  }

  void price_reduce(const Step& step) {
    const LoopState& col_loop = state(step.with);
    const PlanArray& c = plan_.array(step.array);
    const std::int64_t gj = col_loop.section.col0 + col_loop.column;
    if (writer_ && (writer_->r0 != temp_r0_ || writer_->r1 != temp_r1_)) {
      flush_writer();
      writer_.reset();
    }
    if (c.dist.owner_of_col(gj) != proc_) {
      return;
    }
    if (!writer_) {
      const std::int64_t capacity =
          std::max(plan_.memory.slab_c, full_rows_);
      writer_.emplace(capacity, temp_r0_, temp_r1_,
                      c.dist.local_cols(proc_), step.array);
    }
    if (writer_->batch.push(c.dist.global_to_local_col(gj))) {
      flush_writer();
    }
  }

  const NodeProgram& plan_;
  int proc_;
  CacheSim* cache_;
  const std::map<std::string, const PlanArray*>* all_arrays_;
  std::map<std::string, LoopState> states_;
  PlanPrice price_;
  bool fresh_column_ = false;
  std::int64_t temp_r0_ = 0;
  std::int64_t temp_r1_ = 0;
  std::int64_t full_rows_ = 0;
  std::optional<WriterSim> writer_;
};

/// The budget the executor reserves outside the pool for a GAXPY plan (the
/// reduction temporary and the staged-output-column buffer), mirrored so
/// the modelled cache sees the same capacity the real one does.
std::int64_t gaxpy_side_reservation(const NodeProgram& plan, int proc) {
  if (plan.kind != ProgramKind::kGaxpy) {
    return 0;
  }
  for (const SlabLoop& loop : plan.loops) {
    if (loop.space == plan.a) {
      const PlanArray& pa = plan.array(plan.a);
      const runtime::SlabIterator iter(pa.dist.local_rows(proc),
                                       pa.dist.local_cols(proc),
                                       loop.orientation,
                                       loop.capacity_elements);
      const std::int64_t full_rows = iter.section(0).rows();
      return full_rows + std::max(plan.memory.slab_c, full_rows);
    }
  }
  return 0;
}

}  // namespace

double PlanPrice::total_requests() const noexcept {
  double t = 0.0;
  for (const auto& [name, c] : arrays) {
    t += c.read_requests + c.write_requests;
  }
  return t;
}

double PlanPrice::total_elements() const noexcept {
  double t = 0.0;
  for (const auto& [name, c] : arrays) {
    t += c.elements_read + c.elements_written;
  }
  return t;
}

double PlanPrice::io_time_s(const io::DiskModel& disk,
                            int nprocs) const noexcept {
  return total_requests() * disk.request_overhead_s +
         total_elements() * static_cast<double>(sizeof(double)) /
             disk.effective_bandwidth(nprocs);
}

std::map<std::string, StepIoCost> price_steps(const NodeProgram& plan,
                                              int proc) {
  return price_plan(plan, proc).arrays;
}

PlanPrice price_plan(const NodeProgram& plan, int proc,
                     const PriceOptions& options) {
  OOCC_REQUIRE(proc >= 0 && proc < plan.nprocs,
               "processor " << proc << " outside the plan's 0.."
                            << plan.nprocs - 1);
  if (!options.model_cache) {
    return StepPricer(plan, proc, nullptr).run();
  }
  CacheSim cache;
  const std::int64_t budget = options.cache_budget_elements > 0
                                  ? options.cache_budget_elements
                                  : plan.memory_budget_elements;
  cache.set_capacity(
      std::max<std::int64_t>(0, budget - gaxpy_side_reservation(plan, proc)));
  PlanPrice price = StepPricer(plan, proc, &cache).run();
  // Charge the end-of-run flush (the executor flushes its pool there too).
  CacheSim::WriteBacks wb;
  cache.flush(wb);
  for (const auto& [array, sec] : wb) {
    const PlanArray& pa = plan.array(array);
    StepIoCost& cost = price.arrays[array];
    cost.write_requests += static_cast<double>(io::section_extent_count(
        sec, pa.dist.local_rows(proc), pa.dist.local_cols(proc), pa.storage));
    cost.elements_written += static_cast<double>(sec.elements());
  }
  return price;
}

std::vector<PlanPrice> price_sequence(std::span<const NodeProgram> plans,
                                      int proc, const PriceOptions& options) {
  std::vector<PlanPrice> out;
  if (plans.empty()) {
    return out;
  }
  if (!options.model_cache) {
    for (const NodeProgram& plan : plans) {
      out.push_back(price_plan(plan, proc, options));
    }
    return out;
  }
  std::int64_t budget = options.cache_budget_elements;
  if (budget == 0) {
    for (const NodeProgram& plan : plans) {
      budget = std::max(budget, plan.memory_budget_elements);
    }
  }
  // Union of the sequence's arrays: a persistent cache can write back one
  // statement's slab while a later statement (which may not mention the
  // array at all) is being priced.
  std::map<std::string, const PlanArray*> all_arrays;
  for (const NodeProgram& plan : plans) {
    for (const auto& [name, pa] : plan.arrays) {
      all_arrays.emplace(name, &pa);
    }
  }
  CacheSim cache;
  for (const NodeProgram& plan : plans) {
    cache.set_capacity(std::max<std::int64_t>(
        0, budget - gaxpy_side_reservation(plan, proc)));
    out.push_back(StepPricer(plan, proc, &cache, &all_arrays).run());
  }
  // The sequence-end flush lands on the last plan, where the executor
  // performs it.
  CacheSim::WriteBacks wb;
  cache.flush(wb);
  for (const auto& [array, sec] : wb) {
    const PlanArray& pa = *all_arrays.at(array);
    StepIoCost& cost = out.back().arrays[array];
    cost.write_requests += static_cast<double>(io::section_extent_count(
        sec, pa.dist.local_rows(proc), pa.dist.local_cols(proc), pa.storage));
    cost.elements_written += static_cast<double>(sec.elements());
  }
  return out;
}

double estimate_plan_time_s(const NodeProgram& plan, const io::DiskModel& disk,
                            const sim::MachineCostModel& machine) {
  PriceOptions options;
  options.model_cache = true;
  const PlanPrice price = price_plan(plan, 0, options);
  const double io = price.io_time_s(disk, plan.nprocs);
  const double comp = machine.compute.flops_time(price.flops);
  const double overlappable =
      price.overlappable_read_requests * disk.request_overhead_s +
      price.overlappable_read_elements * static_cast<double>(sizeof(double)) /
          disk.effective_bandwidth(plan.nprocs);
  return io + comp - std::min(overlappable, comp);
}

namespace {

/// Replays one plan's dynamic slab schedule, appending (step, array,
/// section, is-read) events. Mirrors the pricer's loop handling; mutable so
/// the events can write the annotations back.
class TraceCollector {
 public:
  struct Event {
    Step* step;
    const std::string* array;
    io::Section sec;
    bool is_read;
  };

  /// `swapped` replays a stencil plan's odd (ping-ponged) sweep: array
  /// names resolve to their partner, exactly as the executor's swapped
  /// StepExecutor does.
  TraceCollector(NodeProgram& plan, int proc, std::vector<Event>& out,
                 std::size_t max_events, bool swapped = false)
      : plan_(plan), proc_(proc), out_(out), max_events_(max_events),
        swapped_(swapped && !plan.stencils.empty()) {
    for (const SlabLoop& loop : plan.loops) {
      const PlanArray& space = plan.array(loop.space);
      states_.emplace(
          loop.name,
          State{&loop,
                runtime::SlabIterator(space.dist.local_rows(proc),
                                      space.dist.local_cols(proc),
                                      loop.orientation,
                                      loop.capacity_elements),
                io::Section{}});
    }
  }

  /// Returns false when the event cap was hit (annotation is skipped).
  bool collect() { return walk(plan_.steps); }

 private:
  struct State {
    const SlabLoop* decl;
    runtime::SlabIterator iter;
    io::Section section;
  };

  bool walk(std::vector<Step>& steps) {
    for (Step& step : steps) {
      if (!walk(step)) {
        return false;
      }
    }
    return true;
  }

  bool push(Step& step, const std::string& array, const io::Section& sec,
            bool is_read) {
    if (out_.size() >= max_events_) {
      return false;
    }
    out_.push_back(Event{&step, &resolve(array), sec, is_read});
    return true;
  }

  /// Ping-pong resolution for the swapped stencil replay (returns a
  /// reference into the plan, stable for the Event pointers).
  const std::string& resolve(const std::string& name) const {
    return stencil_resolve(plan_, swapped_, name);
  }

  bool walk(Step& step) {
    switch (step.kind) {
      case StepKind::kForEachSlab: {
        State& loop = states_.at(step.loop);
        for (std::int64_t i = 0; i < loop.iter.count(); ++i) {
          loop.section = loop.iter.section(i);
          if (!walk(step.body)) {
            return false;
          }
        }
        return true;
      }
      case StepKind::kForEachColumn: {
        State& loop = states_.at(step.loop);
        // The per-column body re-executes once per column of the current
        // slab; the slab I/O steps inside it see the same sections each
        // time, so one pass per column is replayed faithfully.
        for (std::int64_t m = 0; m < loop.section.cols(); ++m) {
          if (!walk(step.body)) {
            return false;
          }
        }
        return true;
      }
      case StepKind::kReadSlab: {
        io::Section sec = states_.at(step.loop).section;
        if (step.halo > 0) {
          sec = widen_columns(
              sec, step.halo,
              plan_.array(step.array).dist.local_cols(proc_));
        }
        return push(step, step.array, sec, true);
      }
      case StepKind::kExchangeHalo: {
        if (plan_.nprocs == 1) {
          return true;
        }
        const PlanArray& pa = plan_.array(step.array);
        const std::int64_t rows = pa.dist.local_rows(proc_);
        const std::int64_t nlc = pa.dist.local_cols(proc_);
        if (proc_ > 0 &&
            !push(step, step.array, io::Section{0, rows, 0, step.halo},
                  true)) {
          return false;
        }
        if (proc_ < plan_.nprocs - 1 &&
            !push(step, step.array,
                  io::Section{0, rows, nlc - step.halo, nlc}, true)) {
          return false;
        }
        return true;
      }
      case StepKind::kWriteSlab:
        return push(step, step.array, states_.at(step.loop).section, false);
      case StepKind::kComputeElementwise:
        return push(
            step,
            plan_.statements.at(static_cast<std::size_t>(step.stmt)).lhs,
            states_.at(step.loop).section, false);
      case StepKind::kComputeStencil:
        return push(
            step,
            plan_.stencils.at(static_cast<std::size_t>(step.stmt)).lhs,
            states_.at(step.loop).section, false);
      case StepKind::kComputeGaxpyPartial:
      case StepKind::kReduceSum:
      case StepKind::kBarrier:
        return true;  // reduction output bypasses the pool
    }
    return true;
  }

  NodeProgram& plan_;
  int proc_;
  std::vector<Event>& out_;
  std::size_t max_events_;
  bool swapped_;
  std::map<std::string, State> states_;
};

void reset_distances(std::vector<Step>& steps) {
  for (Step& step : steps) {
    step.reuse_distance = -1.0;
    reset_distances(step.body);
  }
}

}  // namespace

void annotate_reuse_distances(std::span<NodeProgram> plans, int proc) {
  constexpr std::size_t kMaxEvents = std::size_t{1} << 20;
  for (NodeProgram& plan : plans) {
    reset_distances(plan.steps);
  }
  std::vector<TraceCollector::Event> trace;
  for (NodeProgram& plan : plans) {
    if (!TraceCollector(plan, proc, trace, kMaxEvents).collect()) {
      // Pathologically long schedule: leave every distance at -1 (the pool
      // degrades to plain LRU) rather than annotate from a partial trace.
      for (NodeProgram& p : plans) {
        reset_distances(p.steps);
      }
      return;
    }
    if (plan.kind == ProgramKind::kStencil) {
      // The convergence driver re-runs the sweep with the ping-pong pair
      // swapped: replay that second sweep so the write steps see the next
      // sweep's halo reads of the very slabs they stage — the hint that
      // keeps the previous iteration's interior slabs resident.
      if (!TraceCollector(plan, proc, trace, kMaxEvents, /*swapped=*/true)
               .collect()) {
        for (NodeProgram& p : plans) {
          reset_distances(p.steps);
        }
        return;
      }
    }
  }
  // Backward scan: for each event, the nearest later read overlapping its
  // section gives the distance; the static step keeps the minimum over its
  // dynamic executions. future[array] holds later read events, most recent
  // (smallest position) last.
  std::map<std::string, std::vector<std::pair<std::size_t, io::Section>>>
      future;
  // Scanning outward from the nearest future read finds the overlap
  // within ~one sweep's slab count for real schedules; the bound keeps the
  // pass linear on adversarial ones (an unfound overlap just leaves the
  // hint at -1, i.e. evict-first — conservative).
  constexpr std::size_t kMaxScan = 4096;
  for (std::size_t i = trace.size(); i-- > 0;) {
    const TraceCollector::Event& ev = trace[i];
    auto& reads = future[*ev.array];
    double dist = -1.0;
    std::size_t scanned = 0;
    for (auto it = reads.rbegin(); it != reads.rend() && scanned < kMaxScan;
         ++it, ++scanned) {
      if (it->second.overlaps(ev.sec)) {
        dist = static_cast<double>(it->first - i);
        break;
      }
    }
    if (dist >= 0 && (ev.step->reuse_distance < 0 ||
                      dist < ev.step->reuse_distance)) {
      ev.step->reuse_distance = dist;
    }
    if (ev.is_read) {
      reads.emplace_back(i, ev.sec);
    }
  }
}

TotalCostEstimate estimate_gaxpy_total(runtime::SlabOrientation orientation,
                                       const GaxpyCostQuery& query,
                                       const io::DiskModel& disk,
                                       const sim::MachineCostModel& machine) {
  TotalCostEstimate out;
  const CandidateCost io = estimate_gaxpy_cost(orientation, query);
  out.io_s = io.estimated_io_time_s(disk, query.nprocs);

  // Computation: every processor multiplies its nlc local columns into
  // every output (sub)column exactly once: 2 * N^2 * nlc flops.
  const hpf::ArrayDistribution a_dist =
      hpf::column_block(query.n, query.n, query.nprocs);
  const std::int64_t nlc = a_dist.local_cols(0);
  out.compute_s = machine.compute.flops_time(
      2.0 * static_cast<double>(query.n) * static_cast<double>(query.n) *
      static_cast<double>(nlc));

  // Communication: one binomial-tree sum per output (sub)column. The
  // critical path of each reduction is ceil(log2 P) hops of
  // (latency + vector bytes / bandwidth); vectors are full columns (N) in
  // the column version and slab-height subcolumns in the row version
  // (which does slabs_A * N reductions of N/slabs_A elements each — the
  // same volume, more latencies).
  int hops = 0;
  for (int m = 1; m < query.nprocs; m <<= 1) {
    ++hops;
  }
  double reductions;
  double vector_elements;
  if (orientation == runtime::SlabOrientation::kColumnSlabs) {
    reductions = static_cast<double>(query.n);
    vector_elements = static_cast<double>(query.n);
  } else {
    const runtime::SlabIterator a_slabs(
        query.n, nlc, runtime::SlabOrientation::kRowSlabs, query.slab_a);
    reductions =
        static_cast<double>(a_slabs.count()) * static_cast<double>(query.n);
    vector_elements = static_cast<double>(a_slabs.slab_span());
  }
  const double per_reduction =
      hops * machine.comm.transfer_time(vector_elements *
                                        static_cast<double>(sizeof(double)));
  out.comm_s = reductions * per_reduction;
  return out;
}

}  // namespace oocc::compiler
