// I/O cost estimation and access-reorganization selection (§4.1 of the
// paper, Figure 14's algorithm, Equations 3-6 generalized to arbitrary
// slab sizes).
//
// The estimator predicts, per processor, the paper's two metrics — number
// of I/O requests (T_fetch) and data volume (T_data) — for each candidate
// stripmining orientation of the GAXPY statement, by walking the exact
// loop structures of Figures 9 and 12 symbolically (using the same
// SlabIterator arithmetic the runtime kernels use, so predictions match
// measured counters *exactly*; the tests assert this). Following
// Figure 14, the array with the largest I/O requirement dominates the
// decision and the orientation minimizing its cost is selected.
#pragma once

#include <map>
#include <span>
#include <string>
#include <vector>

#include "oocc/io/disk_model.hpp"
#include "oocc/runtime/slab_iter.hpp"
#include "oocc/sim/cost_model.hpp"

namespace oocc::compiler {

struct NodeProgram;

/// Predicted per-processor I/O cost of one array under one candidate.
struct ArrayCost {
  std::string array;
  double fetch_requests = 0.0;  ///< T_fetch: I/O requests per processor
  double data_elements = 0.0;   ///< T_data: elements moved per processor
};

/// Full cost picture of one candidate orientation for the GAXPY statement.
struct CandidateCost {
  runtime::SlabOrientation a_orientation =
      runtime::SlabOrientation::kColumnSlabs;
  bool storage_reorganized = false;  ///< A/C stored contiguous for the slabs
  std::vector<ArrayCost> arrays;     ///< a, b, c

  double total_requests() const noexcept;
  double total_elements() const noexcept;

  /// Simulated seconds of disk service implied by the counts.
  double estimated_io_time_s(const io::DiskModel& disk, int nprocs) const;

  const ArrayCost& cost_of(const std::string& name) const;
};

/// Inputs to the GAXPY estimator.
struct GaxpyCostQuery {
  std::int64_t n = 0;           ///< global N (square arrays)
  int nprocs = 1;
  std::int64_t slab_a = 0;      ///< ICLA capacities in elements
  std::int64_t slab_b = 0;
  std::int64_t slab_c = 0;
  bool storage_reorganized = true;  ///< slabs contiguous on disk
};

/// Predicts the cost of the Figure 9 (column-slab) or Figure 12 (row-slab)
/// translation.
CandidateCost estimate_gaxpy_cost(runtime::SlabOrientation orientation,
                                  const GaxpyCostQuery& query);

struct TotalCostEstimate;

/// The outcome of Figure 14's algorithm.
struct CostDecision {
  CandidateCost chosen;
  std::vector<CandidateCost> candidates;
  /// End-to-end (io + compute + comm) predictions, parallel to
  /// `candidates` when filled by the compiler (may be empty).
  std::vector<double> candidate_total_s;
  std::string dominant_array;  ///< array with the largest I/O requirement
  std::string rationale;       ///< human-readable derivation
  /// --prefetch=auto derivation (empty unless the auto decision ran).
  std::string prefetch_rationale;
};

/// Runs Figure 14: estimate each candidate, find the dominant array, pick
/// the orientation with the lowest cost for it (ties: total estimated
/// time under `disk`).
CostDecision choose_access_reorganization(const GaxpyCostQuery& query,
                                          const io::DiskModel& disk);

/// End-to-end time prediction for a GAXPY candidate: disk service (from
/// the request/byte counts), computation (2N^3/P flops) and the global-sum
/// communication (one tree reduction per output (sub)column). The paper
/// decides orientation on I/O alone because disk costs dominate by an
/// order of magnitude; this predictor lets the decision report show the
/// whole picture and lets tests check the model's ordering against
/// measured makespans.
struct TotalCostEstimate {
  double io_s = 0.0;
  double compute_s = 0.0;
  double comm_s = 0.0;
  double total_s() const noexcept { return io_s + compute_s + comm_s; }
};

TotalCostEstimate estimate_gaxpy_total(runtime::SlabOrientation orientation,
                                       const GaxpyCostQuery& query,
                                       const io::DiskModel& disk,
                                       const sim::MachineCostModel& machine);

/// Predicted per-processor LAF traffic of one array, derived by walking a
/// plan's slab-program IR rather than from a closed-form schema formula.
struct StepIoCost {
  double read_requests = 0.0;
  double elements_read = 0.0;
  double write_requests = 0.0;
  double elements_written = 0.0;
};

/// Prices a compiled plan by symbolically executing its step tree with
/// processor `proc`'s local extents: every ReadSlab/WriteSlab contributes
/// its section's contiguous-extent count and element volume, and every
/// ReduceSum drives the same staged-column-writer flush pattern the
/// executor uses. Because the walk mirrors the interpreter exactly, the
/// predictions match measured LAF counters request-for-request (the tests
/// assert this); schema-specific estimators like estimate_gaxpy_cost are
/// only still needed *before* lowering, to rank candidate orientations.
std::map<std::string, StepIoCost> price_steps(const NodeProgram& plan,
                                              int proc = 0);

/// Options for price_plan / price_sequence.
struct PriceOptions {
  /// Model the executor's slab buffer pool: demand reads served by the
  /// modelled cache are not charged (they show up as cache_hits /
  /// elements_avoided instead) and staged writes are charged at write-back
  /// time, mirroring runtime::SlabBufferPool's lookup and eviction policy.
  bool model_cache = false;
  /// Cache/working-set budget in elements; 0 = the plan's own
  /// memory_budget_elements (for price_sequence: the max across plans,
  /// matching the pool execute_sequence shares).
  std::int64_t cache_budget_elements = 0;
};

/// Full price of one plan on one processor: per-array LAF traffic plus the
/// compute the executor will charge and, with model_cache, the traffic the
/// slab pool saves.
struct PlanPrice {
  std::map<std::string, StepIoCost> arrays;
  double flops = 0.0;
  double cache_hits = 0.0;        ///< demand reads served from the cache
  double elements_avoided = 0.0;  ///< LAF elements those hits saved
  /// Reads issued under prefetching slab loops past each loop's first
  /// slab — the read I/O a read-ahead queue can overlap with compute.
  double overlappable_read_requests = 0.0;
  double overlappable_read_elements = 0.0;

  double total_requests() const noexcept;
  double total_elements() const noexcept;
  /// Disk service time implied by the *charged* counts.
  double io_time_s(const io::DiskModel& disk, int nprocs) const noexcept;
};

PlanPrice price_plan(const NodeProgram& plan, int proc = 0,
                     const PriceOptions& options = {});

/// Prices a statement sequence with one modelled cache persisting across
/// plans (the executor shares one pool across execute_sequence, so a slab
/// statement i staged can satisfy statement j's demand read).
std::vector<PlanPrice> price_sequence(std::span<const NodeProgram> plans,
                                      int proc = 0,
                                      const PriceOptions& options = {});

/// Annotates every ReadSlab / WriteSlab / ComputeElementwise step of the
/// sequence with its forward reuse distance (see Step::reuse_distance) by
/// replaying the steps' dynamic slab schedule for processor `proc` across
/// all plans in order. Called by the compiler after step emission; safe to
/// re-run (distances are reset first).
void annotate_reuse_distances(std::span<NodeProgram> plans, int proc = 0);

/// Predicted makespan of one plan under the executor's defaults (slab
/// cache on): charged disk service + compute, minus the read I/O the
/// plan's prefetching loops can overlap with compute. The --prefetch=auto
/// decision compares this with and without the double-buffered layout.
double estimate_plan_time_s(const NodeProgram& plan, const io::DiskModel& disk,
                            const sim::MachineCostModel& machine);

}  // namespace oocc::compiler
