#include "oocc/compiler/lower.hpp"

#include <algorithm>
#include <functional>
#include <optional>
#include <span>
#include <sstream>

#include "oocc/compiler/access.hpp"
#include "oocc/compiler/lower_internal.hpp"
#include "oocc/compiler/pretty.hpp"
#include "oocc/compiler/search.hpp"
#include "oocc/compiler/verify.hpp"
#include "oocc/hpf/parser.hpp"
#include "oocc/util/error.hpp"

namespace oocc::compiler {

namespace {

using hpf::ArrayInfo;
using hpf::BoundProgram;
using hpf::Expr;
using hpf::ExprKind;
using hpf::Stmt;
using hpf::StmtKind;

/// Result of recognizing the Figure 3 GAXPY pattern.
struct GaxpyMatch {
  std::string a;
  std::string b;
  std::string c;
  std::string temp;  ///< reduction temporary (elided from the plan)
  std::string outer_var;
  std::string forall_var;
  std::int64_t n = 0;
};

/// Result of recognizing a communication-free elementwise FORALL.
struct ElementwiseMatch {
  std::string lhs;
  const Expr* rhs = nullptr;
  std::string forall_var;
  std::int64_t rows = 0;
  std::int64_t cols = 0;
};

/// Result of recognizing a halo-stencil FORALL: a single-source update of
/// the interior whose rhs reads forall-index +/- constant columns and
/// constant-shifted row ranges (the compiled Jacobi shape).
struct StencilMatch {
  std::string lhs;
  std::string source;
  const Expr* rhs = nullptr;
  std::string forall_var;
  std::int64_t rows = 0;
  std::int64_t cols = 0;
  std::int64_t halo = 0;      ///< column dependence distance d
  std::int64_t row_halo = 0;  ///< row shift magnitude (boundary rows)
};

std::optional<std::int64_t> const_bound(
    const Expr& e, const std::map<std::string, std::int64_t>& params) {
  try {
    return hpf::evaluate_scalar(e, params);
  } catch (const Error&) {
    return std::nullopt;
  }
}

// ------------------------------------------------------- step emission

Step for_each_slab(std::string loop, std::vector<Step> body) {
  Step s;
  s.kind = StepKind::kForEachSlab;
  s.loop = std::move(loop);
  s.body = std::move(body);
  return s;
}

Step for_each_column(std::string loop, std::vector<Step> body) {
  Step s;
  s.kind = StepKind::kForEachColumn;
  s.loop = std::move(loop);
  s.body = std::move(body);
  return s;
}

Step read_slab(std::string loop, std::string array) {
  Step s;
  s.kind = StepKind::kReadSlab;
  s.loop = std::move(loop);
  s.array = std::move(array);
  return s;
}

Step write_slab(std::string loop, std::string array) {
  Step s;
  s.kind = StepKind::kWriteSlab;
  s.loop = std::move(loop);
  s.array = std::move(array);
  return s;
}

Step gaxpy_partial(std::string a_loop, std::string column_loop) {
  Step s;
  s.kind = StepKind::kComputeGaxpyPartial;
  s.loop = std::move(a_loop);
  s.with = std::move(column_loop);
  return s;
}

Step reduce_sum_step(std::string output, std::string column_loop) {
  Step s;
  s.kind = StepKind::kReduceSum;
  s.array = std::move(output);
  s.with = std::move(column_loop);
  return s;
}

Step elementwise_step(std::string loop, int stmt) {
  Step s;
  s.kind = StepKind::kComputeElementwise;
  s.loop = std::move(loop);
  s.stmt = stmt;
  return s;
}

Step halo_read_slab(std::string loop, std::string array, std::int64_t halo) {
  Step s = read_slab(std::move(loop), std::move(array));
  s.halo = halo;
  return s;
}

Step exchange_halo_step(std::string loop, std::string array,
                        std::int64_t halo) {
  Step s;
  s.kind = StepKind::kExchangeHalo;
  s.loop = std::move(loop);
  s.array = std::move(array);
  s.halo = halo;
  return s;
}

Step stencil_step(std::string loop, int stmt) {
  Step s;
  s.kind = StepKind::kComputeStencil;
  s.loop = std::move(loop);
  s.stmt = stmt;
  return s;
}

Step barrier_step() {
  Step s;
  s.kind = StepKind::kBarrier;
  return s;
}

}  // namespace

// Emission hooks shared with the global plan search (lower_internal.hpp):
// the searcher's candidates are re-emitted by the exact routines the
// heuristic pipeline uses, so every searched plan is a plan this file
// could have produced.
namespace detail {

/// Builds the GAXPY step program for the plan's chosen orientation: the
/// exact loop nests of Figure 9 (column slabs, A re-swept per output
/// column) and Figure 12 (row slabs, A fetched exactly once).
void emit_gaxpy_steps(NodeProgram& plan) {
  plan.loops.clear();
  plan.steps.clear();
  plan.loops.push_back(SlabLoop{"A", plan.a, plan.a_orientation,
                                plan.memory.slab_a, plan.prefetch});
  plan.loops.push_back(SlabLoop{"B", plan.b,
                                runtime::SlabOrientation::kColumnSlabs,
                                plan.memory.slab_b, false});
  if (plan.a_orientation == runtime::SlabOrientation::kColumnSlabs) {
    // Figure 9: do slabs(B) { read B; do m { do slabs(A) { read A;
    // partial }; global-sum } }.
    std::vector<Step> per_column;
    per_column.push_back(
        for_each_slab("A", {read_slab("A", plan.a), gaxpy_partial("A", "B")}));
    per_column.push_back(reduce_sum_step(plan.c, "B"));
    plan.steps.push_back(for_each_slab(
        "B",
        {read_slab("B", plan.b), for_each_column("B", std::move(per_column))}));
  } else {
    // Figure 12: do slabs(A) { read A; do slabs(B) { read B; do m {
    // partial; global-sum } } }.
    std::vector<Step> per_column;
    per_column.push_back(gaxpy_partial("A", "B"));
    per_column.push_back(reduce_sum_step(plan.c, "B"));
    Step b_sweep = for_each_slab(
        "B",
        {read_slab("B", plan.b), for_each_column("B", std::move(per_column))});
    plan.steps.push_back(
        for_each_slab("A", {read_slab("A", plan.a), std::move(b_sweep)}));
  }
}

void collect_ref_names(const Expr& e, std::vector<std::string>& out) {
  if (e.kind == ExprKind::kArrayRef &&
      std::find(out.begin(), out.end(), e.name) == out.end()) {
    out.push_back(e.name);
  }
  if (e.lhs) collect_ref_names(*e.lhs, out);
  if (e.rhs) collect_ref_names(*e.rhs, out);
}

/// Divides the budget among the sweep's buffers and emits the elementwise
/// step program for plan.statements (one or a fused group): one column-slab
/// sweep over the first lhs; per slab, read every array consumed before the
/// group produces it, evaluate the statements in order (later statements
/// read earlier results from memory), then write every produced array.
/// `enable_prefetch` double-buffers the pure-input streams (re-runnable:
/// the --prefetch=auto pass builds both layouts and keeps one).
void finish_elementwise_plan(NodeProgram& plan, const CompileOptions& options,
                             bool enable_prefetch) {
  OOCC_ASSERT(!plan.statements.empty(), "no elementwise statements");

  // Which arrays does the group produce, and which must be fetched because
  // they are consumed before (or without) being produced?
  std::vector<std::string> written;
  std::vector<std::string> read_first;
  for (const ElementwiseStmt& st : plan.statements) {
    std::vector<std::string> refs;
    collect_ref_names(*st.rhs, refs);
    for (const std::string& r : refs) {
      if (std::find(written.begin(), written.end(), r) == written.end() &&
          std::find(read_first.begin(), read_first.end(), r) ==
              read_first.end()) {
        read_first.push_back(r);
      }
    }
    if (std::find(written.begin(), written.end(), st.lhs) == written.end()) {
      written.push_back(st.lhs);
    }
  }
  for (auto& [name, pa] : plan.arrays) {
    pa.is_output =
        std::find(written.begin(), written.end(), name) != written.end();
  }
  // Pure inputs stream through double-bufferable readers; arrays the group
  // also produces are staged in writable buffers, so their initial read
  // (the in-place case) cannot be double-buffered.
  std::vector<std::string> pure_reads;
  std::vector<std::string> staged_reads;
  for (const std::string& r : read_first) {
    (plan.array(r).is_output ? staged_reads : pure_reads).push_back(r);
  }
  std::sort(pure_reads.begin(), pure_reads.end());
  std::sort(staged_reads.begin(), staged_reads.end());

  const bool prefetch = enable_prefetch && !pure_reads.empty();
  const std::int64_t buffers =
      static_cast<std::int64_t>(plan.arrays.size()) +
      (prefetch ? static_cast<std::int64_t>(pure_reads.size()) : 0);
  const std::string& sweep_lhs = plan.statements.front().lhs;
  const std::int64_t local_rows = plan.array(sweep_lhs).dist.local_rows(0);
  const std::int64_t share = options.memory_budget_elements / buffers;
  OOCC_CHECK(share >= local_rows, ErrorCode::kResourceExhausted,
             "memory budget of " << options.memory_budget_elements
                                 << " elements cannot hold one column ("
                                 << local_rows << " elements) per array for "
                                 << plan.arrays.size() << " arrays");
  for (auto& [name, pa] : plan.arrays) {
    pa.slab_elements = share;
  }
  plan.memory.strategy = options.memory_strategy;
  plan.memory.slab_a = share;
  plan.memory.slab_b = share;
  plan.memory.slab_c = share;
  plan.memory.temp_elements = 0;
  plan.memory_budget_elements = options.memory_budget_elements;

  plan.loops.clear();
  plan.steps.clear();
  plan.loops.push_back(SlabLoop{"S", sweep_lhs,
                                runtime::SlabOrientation::kColumnSlabs, share,
                                prefetch});
  std::vector<Step> body;
  for (const std::string& r : pure_reads) {
    body.push_back(read_slab("S", r));
  }
  for (const std::string& r : staged_reads) {
    body.push_back(read_slab("S", r));
  }
  for (std::size_t i = 0; i < plan.statements.size(); ++i) {
    body.push_back(elementwise_step("S", static_cast<int>(i)));
  }
  for (const std::string& w : written) {
    body.push_back(write_slab("S", w));
  }
  plan.steps.push_back(for_each_slab("S", std::move(body)));
}

/// Whether `next` can join a fused group whose sweep geometry is `head`'s:
/// both are communication-free elementwise plans whose sweeps cover
/// identically distributed sections, and the union of arrays still fits
/// the memory budget at one column per buffer.
bool can_fuse(const NodeProgram& head, const NodeProgram& next,
              const CompileOptions& options,
              std::size_t union_array_count) {
  if (head.kind != ProgramKind::kElementwise ||
      next.kind != ProgramKind::kElementwise) {
    return false;
  }
  const PlanArray& a = head.array(head.statements.front().lhs);
  const PlanArray& b = next.array(next.statements.front().lhs);
  if (!(a.dist == b.dist) || a.storage != b.storage ||
      a.orientation != b.orientation) {
    return false;
  }
  // Conservative capacity check: every buffer (plus a second one per array
  // when prefetching — assumed for kAuto too) must still hold one column.
  const std::int64_t buffers =
      static_cast<std::int64_t>(union_array_count) *
      (options.prefetch != PrefetchMode::kOff ? 2 : 1);
  return options.memory_budget_elements / buffers >= a.dist.local_rows(0);
}

}  // namespace detail

namespace {

using detail::can_fuse;
using detail::emit_gaxpy_steps;
using detail::finish_elementwise_plan;

/// Matches `do j=1,n { forall(k=1:n) temp(:,k)=b(k,j)*a(:,k); c(:,j)=SUM(temp,2) }`.
std::optional<GaxpyMatch> match_gaxpy(const BoundProgram& program) {
  if (program.stmts.size() != 1 ||
      program.stmts[0]->kind != StmtKind::kDo) {
    return std::nullopt;
  }
  const Stmt& outer = *program.stmts[0];
  const auto lo = const_bound(*outer.lo, program.parameters);
  const auto hi = const_bound(*outer.hi, program.parameters);
  if (!lo || *lo != 1 || !hi || outer.body.size() != 2) {
    return std::nullopt;
  }
  const Stmt& forall = *outer.body[0];
  const Stmt& sum_assign = *outer.body[1];
  if (forall.kind != StmtKind::kForall || forall.body.size() != 1 ||
      sum_assign.kind != StmtKind::kAssign) {
    return std::nullopt;
  }
  const auto flo = const_bound(*forall.lo, program.parameters);
  const auto fhi = const_bound(*forall.hi, program.parameters);
  if (!flo || *flo != 1 || !fhi || *fhi != *hi) {
    return std::nullopt;
  }

  GaxpyMatch match;
  match.outer_var = outer.loop_var;
  match.forall_var = forall.loop_var;
  match.n = *hi;
  const LoopContext loops{match.outer_var, match.forall_var};

  // Inner statement: temp(1:n, k) = <scalar B ref> * <column A ref>.
  const Stmt& inner = *forall.body[0];
  if (inner.kind != StmtKind::kAssign ||
      inner.lhs->kind != ExprKind::kArrayRef ||
      inner.rhs->kind != ExprKind::kBinary ||
      inner.rhs->op != hpf::BinOp::kMul) {
    return std::nullopt;
  }
  match.temp = inner.lhs->name;
  const RefAccess temp_ref =
      classify_reference(*inner.lhs, program.array(match.temp), loops,
                         program.parameters, /*is_lhs=*/true);
  if (temp_ref.row_class != SubscriptClass::kFullRange ||
      temp_ref.col_class != SubscriptClass::kForallIndex) {
    return std::nullopt;
  }

  // The multiplication's operands: one b(k,j)-shaped, one a(1:n,k)-shaped,
  // in either order.
  const Expr* operands[2] = {inner.rhs->lhs.get(), inner.rhs->rhs.get()};
  for (const Expr* op : operands) {
    if (op->kind != ExprKind::kArrayRef) {
      return std::nullopt;
    }
    const RefAccess ref = classify_reference(
        *op, program.array(op->name), loops, program.parameters, false);
    if (ref.row_class == SubscriptClass::kForallIndex &&
        ref.col_class == SubscriptClass::kOuterIndex) {
      match.b = op->name;
    } else if (ref.row_class == SubscriptClass::kFullRange &&
               ref.col_class == SubscriptClass::kForallIndex) {
      match.a = op->name;
    } else {
      return std::nullopt;
    }
  }
  if (match.a.empty() || match.b.empty()) {
    return std::nullopt;
  }

  // Reduction statement: c(1:n, j) = SUM(temp, 2).
  if (sum_assign.lhs->kind != ExprKind::kArrayRef ||
      sum_assign.rhs->kind != ExprKind::kSumIntrinsic ||
      sum_assign.rhs->name != match.temp || sum_assign.rhs->int_value != 2) {
    return std::nullopt;
  }
  match.c = sum_assign.lhs->name;
  const RefAccess c_ref =
      classify_reference(*sum_assign.lhs, program.array(match.c), loops,
                         program.parameters, /*is_lhs=*/true);
  if (c_ref.row_class != SubscriptClass::kFullRange ||
      c_ref.col_class != SubscriptClass::kOuterIndex) {
    return std::nullopt;
  }
  return match;
}

/// Validates the GAXPY match's shapes and distributions; throws
/// kCompileError with a specific diagnostic on violation.
void check_gaxpy_layout(const BoundProgram& program, const GaxpyMatch& m) {
  const ArrayInfo& a = program.array(m.a);
  const ArrayInfo& b = program.array(m.b);
  const ArrayInfo& c = program.array(m.c);
  for (const ArrayInfo* info : {&a, &b, &c}) {
    OOCC_CHECK(info->rows == m.n && info->cols == m.n,
               ErrorCode::kCompileError,
               "GAXPY pattern requires " << m.n << "x" << m.n << " arrays; '"
                                         << info->name << "' is "
                                         << info->rows << "x" << info->cols);
  }
  OOCC_CHECK(a.dist.axis() == hpf::DistAxis::kCols &&
                 c.dist.axis() == hpf::DistAxis::kCols,
             ErrorCode::kCompileError,
             "GAXPY pattern requires '" << m.a << "' and '" << m.c
                                        << "' column-distributed");
  OOCC_CHECK(b.dist.axis() == hpf::DistAxis::kRows, ErrorCode::kCompileError,
             "GAXPY pattern requires '" << m.b << "' row-distributed");
  // The kernels' index correspondence (local column k of A pairs with
  // local row k of B) holds whenever A's columns, B's rows and C's columns
  // share one distribution — BLOCK (the paper's case), CYCLIC and
  // BLOCK-CYCLIC all qualify, because global_to_local is monotonic on each
  // processor's owned set for every kind.
  const hpf::DistKind kind = a.dist.col_dist().kind();
  OOCC_CHECK(b.dist.row_dist().kind() == kind &&
                 c.dist.col_dist().kind() == kind &&
                 b.dist.row_dist().block() == a.dist.col_dist().block(),
             ErrorCode::kCompileError,
             "GAXPY lowering requires A's columns, B's rows and C's columns "
             "to share one distribution; got "
                 << a.dist.to_string() << ", " << b.dist.to_string() << ", "
                 << c.dist.to_string());
  // Every processor must own at least one column/row.
  for (int proc = 0; proc < program.nprocs; ++proc) {
    OOCC_CHECK(a.dist.local_cols(proc) >= 1, ErrorCode::kCompileError,
               "N=" << m.n << " over P=" << program.nprocs
                    << " leaves processor " << proc << " without data");
  }
}

/// HPF array-assignment statements are equivalent to FORALLs (the paper's
/// §3.2 footnote). `lhs(1:m,1:n) = expr` over full sections normalizes to
/// `forall (k=1:n) lhs(1:m,k) = expr[second subscript := k]`, letting one
/// lowering path serve both spellings.
hpf::StmtPtr normalize_assignment_to_forall(const Stmt& assign,
                                       const BoundProgram& program) {
  OOCC_ASSERT(assign.kind == StmtKind::kAssign, "expected assignment");
  const hpf::ArrayInfo& lhs_info = program.array(assign.lhs->name);

  // Rewrites every array reference's column subscript (which must be a
  // full range) into the synthesized FORALL index.
  constexpr const char* kVar = "forall_col__";
  std::function<void(hpf::Expr&)> rewrite = [&](hpf::Expr& e) {
    if (e.kind == ExprKind::kArrayRef) {
      OOCC_CHECK(e.subscripts.size() == 2, ErrorCode::kCompileError,
                 "array assignment normalization requires rank-2 "
                 "references; '"
                     << e.name << "' at line " << e.line << " has rank "
                     << e.subscripts.size());
      hpf::Subscript& col = e.subscripts[1];
      const bool full =
          col.kind == hpf::SubscriptKind::kFull ||
          (col.kind == hpf::SubscriptKind::kRange &&
           hpf::evaluate_scalar(*col.lo, program.parameters) == 1 &&
           hpf::evaluate_scalar(*col.hi, program.parameters) ==
               program.array(e.name).cols);
      OOCC_CHECK(full, ErrorCode::kCompileError,
                 "array assignment normalization requires full column "
                 "sections; '"
                     << e.name << "' at line " << e.line
                     << " uses a partial section");
      col.kind = hpf::SubscriptKind::kScalar;
      col.scalar = hpf::make_var(kVar, e.line);
      col.lo.reset();
      col.hi.reset();
      return;
    }
    if (e.lhs) rewrite(*e.lhs);
    if (e.rhs) rewrite(*e.rhs);
  };

  auto forall = std::make_unique<Stmt>();
  forall->kind = StmtKind::kForall;
  forall->line = assign.line;
  forall->loop_var = kVar;
  forall->lo = hpf::make_int(1, assign.line);
  forall->hi = hpf::make_int(lhs_info.cols, assign.line);

  auto body = std::make_unique<Stmt>();
  body->kind = StmtKind::kAssign;
  body->line = assign.line;
  body->lhs = hpf::clone_expr(*assign.lhs);
  body->rhs = hpf::clone_expr(*assign.rhs);
  rewrite(*body->lhs);
  rewrite(*body->rhs);
  forall->body.push_back(std::move(body));
  return forall;
}

/// Matches `forall (k=1:cols) lhs(1:rows,k) = expr` where every array
/// reference in expr has the (full-range, forall-index) shape. A bare
/// array assignment over full sections is normalized to that form first.
std::optional<ElementwiseMatch> match_elementwise(
    const BoundProgram& program, hpf::StmtPtr& normalized_storage) {
  if (program.stmts.size() != 1) {
    return std::nullopt;
  }
  const Stmt* top = program.stmts[0].get();
  if (top->kind == StmtKind::kAssign &&
      top->lhs->kind == ExprKind::kArrayRef &&
      top->rhs->kind != ExprKind::kSumIntrinsic) {
    try {
      normalized_storage = normalize_assignment_to_forall(*top, program);
    } catch (const Error&) {
      return std::nullopt;  // not normalizable: fall through to diagnostics
    }
    top = normalized_storage.get();
  }
  if (top->kind != StmtKind::kForall || top->body.size() != 1) {
    return std::nullopt;
  }
  const Stmt& forall = *top;
  const Stmt& assign = *forall.body[0];
  if (assign.kind != StmtKind::kAssign ||
      assign.lhs->kind != ExprKind::kArrayRef) {
    return std::nullopt;
  }
  const auto flo = const_bound(*forall.lo, program.parameters);
  const auto fhi = const_bound(*forall.hi, program.parameters);
  if (!flo || *flo != 1 || !fhi) {
    return std::nullopt;
  }

  ElementwiseMatch match;
  match.forall_var = forall.loop_var;
  match.lhs = assign.lhs->name;
  match.rhs = assign.rhs.get();
  const ArrayInfo& lhs_info = program.array(match.lhs);
  match.rows = lhs_info.rows;
  match.cols = lhs_info.cols;
  if (*fhi != match.cols) {
    return std::nullopt;
  }

  const LoopContext loops{"", match.forall_var};
  std::vector<RefAccess> refs;
  refs.push_back(classify_reference(*assign.lhs, lhs_info, loops,
                                    program.parameters, true));
  collect_references(*assign.rhs, program, loops, false, refs);
  for (const RefAccess& ref : refs) {
    if (ref.row_class != SubscriptClass::kFullRange ||
        ref.col_class != SubscriptClass::kForallIndex) {
      return std::nullopt;
    }
  }
  return match;
}

void check_elementwise_layout(const BoundProgram& program,
                              const ElementwiseMatch& m) {
  const ArrayInfo& lhs = program.array(m.lhs);
  std::vector<RefAccess> refs;
  const LoopContext loops{"", m.forall_var};
  collect_references(*m.rhs, program, loops, false, refs);
  for (const RefAccess& ref : refs) {
    const ArrayInfo& info = program.array(ref.array);
    OOCC_CHECK(info.dist == lhs.dist, ErrorCode::kCompileError,
               "elementwise lowering requires identically distributed "
               "operands; '"
                   << ref.array << "' (" << info.dist.to_string()
                   << ") differs from '" << m.lhs << "' ("
                   << lhs.dist.to_string() << ")");
  }
}

// ------------------------------------------------------- stencil lowering

/// Collects every array reference expression in `e` (pre-order).
void collect_ref_exprs(const Expr& e, std::vector<const Expr*>& out) {
  if (e.kind == ExprKind::kArrayRef) {
    out.push_back(&e);
  }
  if (e.lhs) collect_ref_exprs(*e.lhs, out);
  if (e.rhs) collect_ref_exprs(*e.rhs, out);
}

/// True when any column subscript in `e` is forall-index +/- nonzero
/// constant — the trigger that makes a FORALL "stencil-shaped". Once this
/// holds, every further violation is a structured kCompileError rather than
/// a silent fall-through to the generic diagnostic.
bool looks_stencil_shaped(const BoundProgram& program, const Expr& rhs,
                          const LoopContext& loops) {
  std::vector<const Expr*> refs;
  collect_ref_exprs(rhs, refs);
  for (const Expr* ref : refs) {
    if (ref->subscripts.size() != 2) {
      continue;
    }
    const RefAccess acc = classify_reference(
        *ref, program.array(ref->name), loops, program.parameters, false);
    if (acc.col_class == SubscriptClass::kForallOffset) {
      return true;
    }
  }
  return false;
}

#define OOCC_STENCIL_CHECK(cond, msg) \
  OOCC_CHECK(cond, ErrorCode::kCompileError, "stencil lowering: " << msg)

/// Matches `forall (k=1+d : cols-d) lhs(1+r : rows-r, k) = f(source)` where
/// every rhs reference names one source array with column subscripts
/// `k +/- c` (c <= d) and row subscripts that are the lhs row range shifted
/// by a constant. Returns nullopt when the statement is not stencil-shaped
/// at all; throws a structured "stencil lowering: ..." kCompileError when
/// it is stencil-shaped but uses an unsupported shape — lowering must fail
/// loudly, never silently mis-lower.
std::optional<StencilMatch> match_stencil(const BoundProgram& program) {
  if (program.stmts.size() != 1 ||
      program.stmts[0]->kind != StmtKind::kForall ||
      program.stmts[0]->body.size() != 1) {
    return std::nullopt;
  }
  const Stmt& forall = *program.stmts[0];
  const Stmt& assign = *forall.body[0];
  if (assign.kind != StmtKind::kAssign ||
      assign.lhs->kind != ExprKind::kArrayRef) {
    return std::nullopt;
  }
  const LoopContext loops{"", forall.loop_var};
  if (!looks_stencil_shaped(program, *assign.rhs, loops)) {
    return std::nullopt;
  }

  StencilMatch m;
  m.forall_var = forall.loop_var;
  m.lhs = assign.lhs->name;
  m.rhs = assign.rhs.get();
  const ArrayInfo& lhs_info = program.array(m.lhs);
  m.rows = lhs_info.rows;
  m.cols = lhs_info.cols;

  // The lhs: rows are a (possibly interior) constant range, columns the
  // bare forall index.
  const RefAccess lhs_acc = classify_reference(*assign.lhs, lhs_info, loops,
                                               program.parameters, true);
  OOCC_STENCIL_CHECK(lhs_acc.col_class == SubscriptClass::kForallIndex,
                     "the assignment target's column subscript must be the "
                     "bare FORALL index; '"
                         << m.lhs << "' uses a "
                         << subscript_class_name(lhs_acc.col_class)
                         << " subscript");
  OOCC_STENCIL_CHECK(lhs_acc.row_class == SubscriptClass::kFullRange ||
                         lhs_acc.row_class == SubscriptClass::kConstantRange,
                     "the assignment target's row subscript must be a "
                     "constant range; '"
                         << m.lhs << "' uses a "
                         << subscript_class_name(lhs_acc.row_class)
                         << " subscript (row-subscript stencils are "
                            "unsupported: only forall-index column stencils "
                            "lower)");

  // The rhs: one source array, column offsets k +/- c, row ranges shifted
  // from the lhs range by a constant.
  std::vector<const Expr*> refs;
  collect_ref_exprs(*m.rhs, refs);
  std::int64_t dpos = 0;
  std::int64_t dneg = 0;
  std::int64_t row_shift_max = 0;
  for (const Expr* ref : refs) {
    OOCC_STENCIL_CHECK(ref->subscripts.size() == 2,
                       "reference to '" << ref->name
                                        << "' must be rank-2 in a stencil "
                                           "statement");
    if (m.source.empty()) {
      m.source = ref->name;
    }
    OOCC_STENCIL_CHECK(ref->name == m.source,
                       "stencil statements read exactly one source array; "
                       "found both '"
                           << m.source << "' and '" << ref->name << "'");
    const RefAccess acc = classify_reference(
        *ref, program.array(ref->name), loops, program.parameters, false);
    OOCC_STENCIL_CHECK(acc.col_class == SubscriptClass::kForallIndex ||
                           acc.col_class == SubscriptClass::kForallOffset,
                       "column subscript of '"
                           << ref->name << "' must be the FORALL index +/- a "
                           << "constant; got "
                           << subscript_class_name(acc.col_class));
    dpos = std::max(dpos, acc.col_offset);
    dneg = std::max(dneg, -acc.col_offset);
    OOCC_STENCIL_CHECK(
        acc.row_class == SubscriptClass::kFullRange ||
            acc.row_class == SubscriptClass::kConstantRange,
        "row subscript of '"
            << ref->name << "' must be a constant range; got "
            << subscript_class_name(acc.row_class)
            << " (row-subscript stencils are unsupported: only forall-index "
               "column stencils lower)");
    OOCC_STENCIL_CHECK(acc.row_hi - acc.row_lo == lhs_acc.row_hi - lhs_acc.row_lo,
                       "row range of '" << ref->name << "' ("
                                        << acc.row_lo << ":" << acc.row_hi
                                        << ") must have the same length as "
                                           "the target's ("
                                        << lhs_acc.row_lo << ":"
                                        << lhs_acc.row_hi << ")");
    row_shift_max =
        std::max(row_shift_max, std::abs(acc.row_lo - lhs_acc.row_lo));
  }
  OOCC_STENCIL_CHECK(!m.source.empty(),
                     "the right-hand side references no array");
  // Free scalars: only the FORALL index and parameters (folded to
  // constants during normalization) may appear outside subscripts — the
  // executor's stencil evaluator binds nothing else.
  std::function<void(const Expr&)> check_scalars = [&](const Expr& e) {
    if (e.kind == ExprKind::kVarRef) {
      OOCC_STENCIL_CHECK(e.name == m.forall_var ||
                             program.parameters.contains(e.name),
                         "free scalar '" << e.name
                                         << "' is neither the FORALL index "
                                            "nor a parameter");
    }
    if (e.kind == ExprKind::kArrayRef) {
      return;  // subscripts were classified above
    }
    if (e.lhs) check_scalars(*e.lhs);
    if (e.rhs) check_scalars(*e.rhs);
  };
  check_scalars(*m.rhs);
  OOCC_STENCIL_CHECK(m.source != m.lhs,
                     "in-place stencils (the target '"
                         << m.lhs << "' appearing on the right-hand side) "
                         << "are unsupported; use a ping-pong array pair");
  OOCC_STENCIL_CHECK(dpos == dneg,
                     "mixed stencil distances (-" << dneg << "/+" << dpos
                                                  << ") are unsupported; the "
                                                     "halo must be symmetric");
  m.halo = dpos;
  OOCC_STENCIL_CHECK(m.halo >= 1, "no nonzero column offset found");
  m.row_halo = row_shift_max;

  // FORALL bounds and the lhs row range must exclude exactly the halo.
  const auto flo = const_bound(*forall.lo, program.parameters);
  const auto fhi = const_bound(*forall.hi, program.parameters);
  OOCC_STENCIL_CHECK(flo && fhi && *flo == 1 + m.halo &&
                         *fhi == m.cols - m.halo,
                     "the FORALL range must exclude the halo: expected ("
                         << m.forall_var << "=" << 1 + m.halo << ":"
                         << m.cols - m.halo << ")");
  OOCC_STENCIL_CHECK(lhs_acc.row_lo == 1 + m.row_halo &&
                         lhs_acc.row_hi == m.rows - m.row_halo,
                     "the target's row range must exclude the row shift: "
                     "expected ("
                         << 1 + m.row_halo << ":" << m.rows - m.row_halo
                         << ")");
  // Every rhs row range stays inside the array.
  for (const Expr* ref : refs) {
    const RefAccess acc = classify_reference(
        *ref, program.array(ref->name), loops, program.parameters, false);
    OOCC_STENCIL_CHECK(acc.row_lo >= 1 && acc.row_hi <= m.rows,
                       "row range of '" << ref->name << "' (" << acc.row_lo
                                        << ":" << acc.row_hi
                                        << ") leaves the array bounds");
  }
  return m;
}

/// Distribution/shape requirements of the ghost exchange: both arrays share
/// one column-BLOCK distribution (or run on a single processor) and every
/// processor's panel is at least `halo` columns wide, so ghost columns come
/// from the immediate neighbours only.
void check_stencil_layout(const BoundProgram& program,
                          const StencilMatch& m) {
  const ArrayInfo& lhs = program.array(m.lhs);
  const ArrayInfo& src = program.array(m.source);
  OOCC_STENCIL_CHECK(lhs.rows == src.rows && lhs.cols == src.cols,
                     "'" << m.lhs << "' and '" << m.source
                         << "' must have identical shapes");
  OOCC_STENCIL_CHECK(lhs.dist == src.dist,
                     "'" << m.lhs << "' (" << lhs.dist.to_string()
                         << ") and '" << m.source << "' ("
                         << src.dist.to_string()
                         << ") must share one distribution");
  if (program.nprocs > 1) {
    OOCC_STENCIL_CHECK(
        lhs.dist.axis() == hpf::DistAxis::kCols &&
            lhs.dist.col_dist().kind() == hpf::DistKind::kBlock,
        "the ghost exchange requires a column-BLOCK distribution; got "
            << lhs.dist.to_string());
    for (int proc = 0; proc < program.nprocs; ++proc) {
      OOCC_STENCIL_CHECK(lhs.dist.local_cols(proc) >= m.halo,
                         "halo distance " << m.halo
                                          << " exceeds processor " << proc
                                          << "'s panel of "
                                          << lhs.dist.local_cols(proc)
                                          << " columns");
    }
  }
}

/// Rewrites the cloned rhs into stencil-normalized form: every array
/// reference's subscripts become two integer constants (row shift, column
/// offset) relative to the element being computed, and parameter scalars
/// fold to integer constants (the executor's stencil evaluator binds only
/// the FORALL index).
void normalize_stencil_refs(Expr& e, const BoundProgram& program,
                            const LoopContext& loops,
                            std::int64_t lhs_row_lo) {
  if (e.kind == ExprKind::kVarRef &&
      program.parameters.contains(e.name)) {
    e.int_value = program.parameters.at(e.name);
    e.kind = ExprKind::kIntConst;
    e.name.clear();
    return;
  }
  if (e.kind == ExprKind::kArrayRef) {
    const RefAccess acc = classify_reference(
        e, program.array(e.name), loops, program.parameters, false);
    const std::int64_t row_shift = acc.row_lo - lhs_row_lo;
    e.subscripts.clear();
    hpf::Subscript row;
    row.kind = hpf::SubscriptKind::kScalar;
    row.scalar = hpf::make_int(row_shift, e.line);
    e.subscripts.push_back(std::move(row));
    hpf::Subscript col;
    col.kind = hpf::SubscriptKind::kScalar;
    col.scalar = hpf::make_int(acc.col_offset, e.line);
    e.subscripts.push_back(std::move(col));
    return;
  }
  if (e.lhs) normalize_stencil_refs(*e.lhs, program, loops, lhs_row_lo);
  if (e.rhs) normalize_stencil_refs(*e.rhs, program, loops, lhs_row_lo);
}

NodeProgram lower_stencil(const BoundProgram& program,
                          const StencilMatch& match,
                          const CompileOptions& options) {
  check_stencil_layout(program, match);
  NodeProgram plan;
  plan.kind = ProgramKind::kStencil;
  plan.nprocs = program.nprocs;
  plan.n = match.rows;
  plan.elementwise_cols = match.cols;
  plan.memory_budget_elements = options.memory_budget_elements;

  StencilStmt stmt;
  stmt.lhs = match.lhs;
  stmt.source = match.source;
  stmt.forall_var = match.forall_var;
  stmt.halo = match.halo;
  stmt.row_halo = match.row_halo;
  stmt.rhs = hpf::clone_expr(*match.rhs);
  const LoopContext loops{"", match.forall_var};
  normalize_stencil_refs(*stmt.rhs, program, loops, 1 + match.row_halo);
  plan.stencils.push_back(std::move(stmt));

  // Memory plan: the source's halo-widened slab plus the output slab must
  // fit, and the slab pool needs transient headroom to assemble a widened
  // section while the entries covering it stay pinned (worst case: the
  // covering slabs of one sweep plus the new assembled copy). Sizing the
  // width as w = budget / (4 rows) - d bounds that peak by the budget.
  const ArrayInfo& lhs_info = program.array(match.lhs);
  const std::int64_t local_rows = lhs_info.dist.local_rows(0);
  const std::int64_t d = match.halo;
  const std::int64_t w =
      options.memory_budget_elements / (4 * local_rows) - d;
  OOCC_STENCIL_CHECK(w >= 1,
                     "memory budget of "
                         << options.memory_budget_elements
                         << " elements cannot hold the sweep's working set "
                            "(two "
                         << local_rows << "-row buffers plus " << 2 * d
                         << " halo columns and their in-memory assembly)");
  OOCC_STENCIL_CHECK(d <= w,
                     "halo distance " << d << " exceeds the slab width " << w
                                      << " this memory budget allows; raise "
                                         "--memory");
  plan.memory.strategy = options.memory_strategy;
  plan.memory.slab_a = (w + 2 * d) * local_rows;  // source (halo-widened)
  plan.memory.slab_b = w * local_rows;            // output
  plan.memory.slab_c = 0;
  plan.memory.temp_elements = 0;

  plan.arrays[match.source] =
      PlanArray{match.source, program.array(match.source).dist,
                io::StorageOrder::kColumnMajor,
                runtime::SlabOrientation::kColumnSlabs, plan.memory.slab_a,
                false, false};
  plan.arrays[match.lhs] =
      PlanArray{match.lhs, lhs_info.dist, io::StorageOrder::kColumnMajor,
                runtime::SlabOrientation::kColumnSlabs, plan.memory.slab_b,
                true, false};

  plan.loops.push_back(SlabLoop{"S", match.lhs,
                                runtime::SlabOrientation::kColumnSlabs,
                                w * local_rows, false});
  plan.steps.push_back(exchange_halo_step("S", match.source, d));
  plan.steps.push_back(for_each_slab(
      "S", {halo_read_slab("S", match.source, d), stencil_step("S", 0),
            write_slab("S", match.lhs)}));
  plan.steps.push_back(barrier_step());

  std::ostringstream why;
  why << "stencil FORALL: halo distance " << d << " (rows shifted by "
      << match.row_halo << "); owner slabs of " << w
      << " column(s) widened to " << w + 2 * d
      << ", ghost columns exchanged with the neighbouring processors; "
      << "boundary rows/columns copy through from '" << match.source << "'";
  plan.cost.rationale = why.str();
  return plan;
}

NodeProgram lower_gaxpy(const BoundProgram& program, const GaxpyMatch& match,
                        const CompileOptions& options) {
  check_gaxpy_layout(program, match);
  NodeProgram plan;
  plan.kind = ProgramKind::kGaxpy;
  plan.nprocs = program.nprocs;
  plan.n = match.n;
  plan.a = match.a;
  plan.b = match.b;
  plan.c = match.c;
  plan.memory_budget_elements = options.memory_budget_elements;

  // Out-of-core phase step 2 (Figure 14): estimate each candidate with a
  // memory plan computed for that orientation, then decide.
  auto query_for = [&](runtime::SlabOrientation orient) {
    const MemoryPlan mem = plan_memory(options.memory_strategy,
                                       options.memory_budget_elements,
                                       match.n, program.nprocs, orient);
    GaxpyCostQuery q;
    q.n = match.n;
    q.nprocs = program.nprocs;
    q.slab_a = mem.slab_a;
    q.slab_b = mem.slab_b;
    q.slab_c = mem.slab_c;
    q.storage_reorganized = options.enable_storage_reorganization;
    return std::pair<GaxpyCostQuery, MemoryPlan>(q, mem);
  };

  const auto [col_query, col_mem] =
      query_for(runtime::SlabOrientation::kColumnSlabs);
  const auto [row_query, row_mem] =
      query_for(runtime::SlabOrientation::kRowSlabs);

  if (options.enable_access_reorganization) {
    // The decision uses the column-orientation memory plan for the column
    // candidate and the row plan for the row candidate.
    CostDecision decision;
    decision.candidates.push_back(estimate_gaxpy_cost(
        runtime::SlabOrientation::kColumnSlabs, col_query));
    decision.candidates.push_back(
        estimate_gaxpy_cost(runtime::SlabOrientation::kRowSlabs, row_query));
    // Reuse the Figure 14 logic for the pick.
    CostDecision canonical =
        choose_access_reorganization(col_query, options.disk);
    // Recompute the pick against the per-orientation plans' candidates.
    const std::string dominant = canonical.dominant_array;
    const CandidateCost* best = nullptr;
    for (const CandidateCost& cand : decision.candidates) {
      if (best == nullptr ||
          cand.cost_of(dominant).data_elements <
              best->cost_of(dominant).data_elements ||
          (cand.cost_of(dominant).data_elements ==
               best->cost_of(dominant).data_elements &&
           cand.estimated_io_time_s(options.disk, program.nprocs) <
               best->estimated_io_time_s(options.disk, program.nprocs))) {
        best = &cand;
      }
    }
    decision.chosen = *best;
    decision.dominant_array = dominant;
    decision.rationale = canonical.rationale;
    decision.candidate_total_s.push_back(
        estimate_gaxpy_total(runtime::SlabOrientation::kColumnSlabs,
                             col_query, options.disk, options.machine)
            .total_s());
    decision.candidate_total_s.push_back(
        estimate_gaxpy_total(runtime::SlabOrientation::kRowSlabs, row_query,
                             options.disk, options.machine)
            .total_s());
    plan.cost = std::move(decision);
    plan.a_orientation = plan.cost.chosen.a_orientation;
  } else {
    // Ablation: behave like the straightforward in-core extension.
    CostDecision decision;
    decision.candidates.push_back(estimate_gaxpy_cost(
        runtime::SlabOrientation::kColumnSlabs, col_query));
    decision.chosen = decision.candidates.front();
    decision.dominant_array = match.a;
    decision.rationale =
        "access reorganization disabled: column slabs forced";
    plan.cost = std::move(decision);
    plan.a_orientation = runtime::SlabOrientation::kColumnSlabs;
  }

  plan.memory = plan.a_orientation == runtime::SlabOrientation::kColumnSlabs
                    ? col_mem
                    : row_mem;

  // Prefetch double-buffers A: halve its slab so two buffers fit. (kAuto
  // is decided after lowering, when the plan can be priced.)
  plan.prefetch = options.prefetch == PrefetchMode::kOn &&
                  plan.a_orientation == runtime::SlabOrientation::kRowSlabs;
  if (plan.prefetch) {
    const std::int64_t nlc = (match.n + program.nprocs - 1) / program.nprocs;
    plan.memory.slab_a = std::max<std::int64_t>(nlc, plan.memory.slab_a / 2);
  }

  // Out-of-core phase step 3: storage orders. A and C follow the chosen
  // orientation when storage reorganization is enabled; B's column slabs
  // are always contiguous in column-major order.
  const io::StorageOrder ac_order =
      options.enable_storage_reorganization
          ? runtime::contiguous_order_for(plan.a_orientation)
          : io::StorageOrder::kColumnMajor;

  const ArrayInfo& a_info = program.array(match.a);
  const ArrayInfo& b_info = program.array(match.b);
  const ArrayInfo& c_info = program.array(match.c);
  plan.arrays[match.a] =
      PlanArray{match.a, a_info.dist, ac_order, plan.a_orientation,
                plan.memory.slab_a, false,
                ac_order != io::StorageOrder::kColumnMajor};
  plan.arrays[match.b] =
      PlanArray{match.b, b_info.dist, io::StorageOrder::kColumnMajor,
                runtime::SlabOrientation::kColumnSlabs, plan.memory.slab_b,
                false, false};
  plan.arrays[match.c] =
      PlanArray{match.c, c_info.dist, ac_order, plan.a_orientation,
                plan.memory.slab_c, true,
                ac_order != io::StorageOrder::kColumnMajor};
  emit_gaxpy_steps(plan);
  return plan;
}

NodeProgram lower_elementwise(const BoundProgram& program,
                              const ElementwiseMatch& match,
                              const CompileOptions& options) {
  check_elementwise_layout(program, match);
  NodeProgram plan;
  plan.kind = ProgramKind::kElementwise;
  plan.nprocs = program.nprocs;
  plan.n = match.rows;
  plan.elementwise_cols = match.cols;
  ElementwiseStmt stmt;
  stmt.lhs = match.lhs;
  stmt.rhs = hpf::clone_expr(*match.rhs);
  stmt.forall_var = match.forall_var;
  plan.statements.push_back(std::move(stmt));

  // Collect distinct arrays (lhs + rhs references).
  std::vector<RefAccess> refs;
  const LoopContext loops{"", match.forall_var};
  collect_references(*match.rhs, program, loops, false, refs);
  std::map<std::string, PlanArray> arrays;
  const ArrayInfo& lhs_info = program.array(match.lhs);
  arrays[match.lhs] = PlanArray{match.lhs, lhs_info.dist,
                                io::StorageOrder::kColumnMajor,
                                runtime::SlabOrientation::kColumnSlabs,
                                0, true, false};
  for (const RefAccess& ref : refs) {
    if (!arrays.contains(ref.array)) {
      const ArrayInfo& info = program.array(ref.array);
      arrays[ref.array] = PlanArray{ref.array, info.dist,
                                    io::StorageOrder::kColumnMajor,
                                    runtime::SlabOrientation::kColumnSlabs,
                                    0, false, false};
    }
  }
  plan.arrays = std::move(arrays);
  finish_elementwise_plan(plan, options,
                          options.prefetch == PrefetchMode::kOn);
  return plan;
}

// ----------------------------------------------------------- slab fusion

/// Merges consecutive fusable elementwise plans into single sweeps.
std::vector<NodeProgram> fuse_statement_plans(std::vector<NodeProgram> plans,
                                              const CompileOptions& options) {
  std::vector<NodeProgram> out;
  for (NodeProgram& plan : plans) {
    if (!out.empty() &&
        can_fuse(out.back(), plan, options,
                 [&] {
                   std::size_t n = out.back().arrays.size();
                   for (const auto& [name, pa] : plan.arrays) {
                     if (!out.back().arrays.contains(name)) ++n;
                   }
                   return n;
                 }())) {
      NodeProgram& head = out.back();
      for (auto& [name, pa] : plan.arrays) {
        if (!head.arrays.contains(name)) {
          head.arrays.emplace(name, std::move(pa));
        }
      }
      for (ElementwiseStmt& st : plan.statements) {
        head.statements.push_back(std::move(st));
      }
      head.cost.rationale =
          "fused " + std::to_string(head.statements.size()) +
          " communication-free elementwise statements into one slab sweep";
      finish_elementwise_plan(head, options,
                              options.prefetch == PrefetchMode::kOn);
      continue;
    }
    out.push_back(std::move(plan));
  }
  return out;
}

// ------------------------------------------------------ prefetch=auto

std::string prefetch_rationale(bool enabled, double t_on, double t_off) {
  std::ostringstream oss;
  oss << "auto: prefetch " << (enabled ? "enabled" : "disabled")
      << " (predicted " << t_on << "s double-buffered vs " << t_off
      << "s synchronous)";
  return oss.str();
}

/// Prices one freshly (re-)emitted candidate layout. The steps must carry
/// their reuse annotations first — the modelled cache evicts by them, and
/// pricing an unannotated plan would assume a different retention policy
/// than the one the executor runs.
double price_candidate(NodeProgram& plan, const CompileOptions& options) {
  annotate_reuse_distances(std::span<NodeProgram>(&plan, 1));
  return estimate_plan_time_s(plan, options.disk, options.machine);
}

/// --prefetch=auto for an elementwise plan: build the synchronous and the
/// double-buffered layouts, price both under the executor's defaults (slab
/// cache on), and keep whichever the model predicts faster.
void auto_prefetch_elementwise(NodeProgram& plan,
                               const CompileOptions& options) {
  finish_elementwise_plan(plan, options, /*enable_prefetch=*/false);
  const double t_off = price_candidate(plan, options);
  try {
    finish_elementwise_plan(plan, options, /*enable_prefetch=*/true);
  } catch (const Error&) {
    // The doubled buffers do not fit the budget: stay synchronous.
    finish_elementwise_plan(plan, options, /*enable_prefetch=*/false);
    plan.cost.prefetch_rationale =
        "auto: prefetch disabled (double buffers exceed the memory budget)";
    return;
  }
  if (!plan.loops.front().prefetch) {
    // No pure-input stream to double-buffer (e.g. a purely in-place sweep).
    plan.cost.prefetch_rationale =
        "auto: prefetch disabled (no pure-input slab stream)";
    return;
  }
  const double t_on = price_candidate(plan, options);
  if (t_on < t_off) {
    plan.cost.prefetch_rationale = prefetch_rationale(true, t_on, t_off);
    return;
  }
  finish_elementwise_plan(plan, options, /*enable_prefetch=*/false);
  plan.cost.prefetch_rationale = prefetch_rationale(false, t_on, t_off);
}

/// --prefetch=auto for a GAXPY plan: only the row-slab translation streams
/// A through a prefetchable loop; compare it with the halved-slab
/// double-buffered variant.
void auto_prefetch_gaxpy(NodeProgram& plan, const BoundProgram& program,
                         const CompileOptions& options) {
  if (plan.a_orientation != runtime::SlabOrientation::kRowSlabs) {
    plan.cost.prefetch_rationale =
        "auto: prefetch disabled (column-slab translation re-sweeps A; only "
        "the row-slab stream double-buffers)";
    return;
  }
  const double t_off = price_candidate(plan, options);
  const std::int64_t saved_slab_a = plan.memory.slab_a;
  const std::int64_t nlc =
      (plan.n + program.nprocs - 1) / program.nprocs;
  plan.prefetch = true;
  plan.memory.slab_a = std::max<std::int64_t>(nlc, saved_slab_a / 2);
  plan.arrays.at(plan.a).slab_elements = plan.memory.slab_a;
  emit_gaxpy_steps(plan);
  const double t_on = price_candidate(plan, options);
  if (t_on < t_off) {
    plan.cost.prefetch_rationale = prefetch_rationale(true, t_on, t_off);
    return;
  }
  plan.prefetch = false;
  plan.memory.slab_a = saved_slab_a;
  plan.arrays.at(plan.a).slab_elements = saved_slab_a;
  emit_gaxpy_steps(plan);
  plan.cost.prefetch_rationale = prefetch_rationale(false, t_on, t_off);
}

}  // namespace

std::string_view prefetch_mode_name(PrefetchMode m) noexcept {
  switch (m) {
    case PrefetchMode::kOff:
      return "off";
    case PrefetchMode::kOn:
      return "on";
    case PrefetchMode::kAuto:
      return "auto";
  }
  return "?";
}

std::string_view opt_mode_name(OptMode m) noexcept {
  switch (m) {
    case OptMode::kHeuristic:
      return "heuristic";
    case OptMode::kSearch:
      return "search";
  }
  return "?";
}

NodeProgram compile(const BoundProgram& program,
                    const CompileOptions& options) {
  OOCC_REQUIRE(options.memory_budget_elements >= 1,
               "memory budget must be positive");
  NodeProgram plan = [&]() -> NodeProgram {
    if (auto gaxpy = match_gaxpy(program)) {
      NodeProgram p = lower_gaxpy(program, *gaxpy, options);
      if (options.prefetch == PrefetchMode::kAuto) {
        auto_prefetch_gaxpy(p, program, options);
      }
      return p;
    }
    hpf::StmtPtr normalized;  // keeps a synthesized FORALL alive
    if (auto elementwise = match_elementwise(program, normalized)) {
      NodeProgram p = lower_elementwise(program, *elementwise, options);
      if (options.prefetch == PrefetchMode::kAuto) {
        auto_prefetch_elementwise(p, options);
      }
      return p;
    }
    // Stencil-shaped FORALLs either lower or throw a structured
    // "stencil lowering: ..." diagnostic from inside the matcher.
    if (auto stencil = match_stencil(program)) {
      return lower_stencil(program, *stencil, options);
    }
    OOCC_THROW(ErrorCode::kCompileError,
               "no supported statement pattern: expected the GAXPY reduction "
               "nest (do/forall/SUM), a single elementwise FORALL over "
               "aligned sections, or a halo-stencil FORALL");
  }();
  annotate_reuse_distances(std::span<NodeProgram>(&plan, 1));
  if (options.verify) {
    verify_or_throw(plan);
    plan.verified = true;
  }
  return plan;
}

NodeProgram compile_source(std::string_view source,
                           const CompileOptions& options) {
  return compile(hpf::analyze(hpf::parse(source)), options);
}

std::vector<NodeProgram> compile_sequence(const BoundProgram& program,
                                          const CompileOptions& options) {
  if (options.opt == OptMode::kSearch) {
    // Global plan search: the searcher compiles the heuristic baseline
    // (with a kHeuristic copy of these options), enumerates the joint knob
    // space, and returns the min-priced verified candidate sequence.
    return search_sequence(program, options).plans;
  }
  // A single statement (including the GAXPY nest) goes through compile();
  // statement dependencies in longer sequences flow through the arrays'
  // Local Array Files, so every statement lowers independently.
  std::vector<NodeProgram> plans;
  if (program.stmts.size() <= 1) {
    plans.push_back(compile(program, options));
    return plans;
  }
  for (std::size_t i = 0; i < program.stmts.size(); ++i) {
    BoundProgram view;
    view.nprocs = program.nprocs;
    view.parameters = program.parameters;
    view.arrays = program.arrays;
    view.stmts.push_back(hpf::clone_stmt(*program.stmts[i]));
    try {
      plans.push_back(compile(view, options));
    } catch (const Error& e) {
      OOCC_THROW(ErrorCode::kCompileError,
                 "statement " << i + 1 << " of the sequence: " << e.what());
    }
  }
  if (options.enable_statement_fusion) {
    plans = fuse_statement_plans(std::move(plans), options);
    // Fusion re-emits the fused sweeps with the static prefetch setting;
    // re-run the auto decision on the merged plans.
    if (options.prefetch == PrefetchMode::kAuto) {
      for (NodeProgram& plan : plans) {
        if (plan.kind == ProgramKind::kElementwise &&
            plan.statements.size() > 1) {
          auto_prefetch_elementwise(plan, options);
        }
      }
    }
  }
  // Reuse distances span statement boundaries: annotate the whole sequence
  // so the runtime pool knows which slabs a *later* statement will read.
  annotate_reuse_distances(std::span<NodeProgram>(plans.data(), plans.size()));
  if (options.verify) {
    // Fusion and the sequence-wide reuse annotation may have reshaped the
    // per-statement plans since compile() stamped them; re-verify the
    // sequence as the executor will actually see it.
    verify_sequence_or_throw(
        std::span<const NodeProgram>(plans.data(), plans.size()));
    for (NodeProgram& plan : plans) {
      plan.verified = true;
    }
  }
  return plans;
}

std::vector<NodeProgram> compile_sequence_source(
    std::string_view source, const CompileOptions& options) {
  return compile_sequence(hpf::analyze(hpf::parse(source)), options);
}

}  // namespace oocc::compiler
