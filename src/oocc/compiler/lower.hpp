// Lowering: the two-phase out-of-core compilation pipeline (Figure 7).
//
// In-core phase (done by hpf::analyze + the pattern matchers here):
//   1. partition computation via the distribution directives,
//   2. determine communication (the GAXPY pattern needs a global sum; the
//      elementwise pattern is communication-free),
//   3. local bounds come from ArrayDistribution.
// Out-of-core phase (done here):
//   1. stripmine the local iteration space by the ICLA sizes,
//   2. estimate I/O costs per candidate orientation and *reorganize data
//      accesses* (§4.1, Figure 14) — unless disabled for ablation,
//   3. pick storage orders so the chosen slabs are contiguous on disk,
//   4. divide node memory among the competing arrays (§4.2.1),
//   5. emit the NodeProgram with I/O, compute and communication structure.
#pragma once

#include "oocc/compiler/plan.hpp"
#include "oocc/hpf/sema.hpp"
#include "oocc/io/disk_model.hpp"

namespace oocc::compiler {

/// Prefetch (double-buffering) policy for slab streams.
enum class PrefetchMode {
  kOff,  ///< synchronous slab reads (the pre-prefetch baseline)
  kOn,   ///< force double-buffering of the eligible streams
  kAuto  ///< per-plan decision: price_steps + the disk model compare the
         ///< sweep with and without the double-buffered layout and keep
         ///< whichever the cost model predicts faster
};

std::string_view prefetch_mode_name(PrefetchMode m) noexcept;

/// Plan optimizer mode.
enum class OptMode {
  kHeuristic,  ///< per-statement local decisions (the historical pipeline)
  kSearch      ///< global plan search: enumerate slab sizes, memory shares,
               ///< prefetch and fusion groupings, minimize the priced
               ///< makespan of the whole sequence (compiler/search.hpp)
};

std::string_view opt_mode_name(OptMode m) noexcept;

struct CompileOptions {
  /// Per-processor node memory available for ICLAs, in elements.
  std::int64_t memory_budget_elements = 1 << 20;

  MemoryStrategy memory_strategy = MemoryStrategy::kAccessWeighted;

  /// §4.1 optimization switches (ablation study knobs):
  /// when false, the compiler behaves like the straightforward extension
  /// of the in-core compiler — column slabs, no storage reorganization.
  bool enable_access_reorganization = true;
  bool enable_storage_reorganization = true;

  /// Double-buffer the dominant array's slabs (halves its slab size). For
  /// elementwise sweeps this double-buffers the pure-input slab streams
  /// (shrinking every array's share so the extra buffers fit). kAuto lets
  /// the cost model decide per plan.
  PrefetchMode prefetch = PrefetchMode::kOff;

  /// Inter-statement slab fusion: consecutive communication-free
  /// elementwise statements with aligned distributions merge into one
  /// sweep, so intermediate arrays flow buffer-to-buffer in memory
  /// instead of round-tripping through their Local Array Files. Off
  /// reproduces the statement-at-a-time translation (ablation knob).
  bool enable_statement_fusion = true;

  /// Disk model used for cost estimation (should match the machine the
  /// plan will run on).
  io::DiskModel disk = io::DiskModel::touchstone_delta_cfs();

  /// Machine model for the end-to-end (compute + communication) time
  /// predictions recorded in the decision report.
  sim::MachineCostModel machine = sim::MachineCostModel::touchstone_delta();

  /// Plan optimizer: kHeuristic keeps the per-statement local decisions
  /// above; kSearch runs the global plan search (compiler/search.hpp),
  /// which enumerates the joint knob space and returns the min-priced
  /// verified candidate. Only compile_sequence consults this; the search
  /// itself compiles its candidates with a kHeuristic copy.
  OptMode opt = OptMode::kHeuristic;

  /// kSearch only: coordinate-descent passes over the sequence segments.
  /// Pass 1 explores each segment against the heuristic rest; later passes
  /// re-visit segments against the improved context. More passes cost more
  /// candidate pricings and can only improve the priced makespan.
  int search_passes = 2;

  /// Run the static verifier (compiler/verify.hpp) on every emitted plan
  /// and throw Error(kVerifyError) on a violation. On by default: a plan
  /// the compiler cannot prove race-free, covering and within budget is a
  /// compiler bug, not a runtime surprise. oocc_compile --no-verify and
  /// the mutation tests turn it off.
  bool verify = true;
};

/// Compiles the analyzed program to a node-program plan. Throws
/// Error(kCompileError) when the statement list matches no supported
/// pattern, with a diagnostic naming the obstacle.
NodeProgram compile(const hpf::BoundProgram& program,
                    const CompileOptions& options);

/// Convenience: parse + analyze + compile HPF source text.
NodeProgram compile_source(std::string_view source,
                           const CompileOptions& options);

/// Compiles a program whose top level is a *sequence* of supported
/// statements (each an elementwise FORALL / array assignment, or the
/// whole program being one GAXPY nest), executed in order by
/// exec::execute_sequence. Each statement lowers independently; when
/// enable_statement_fusion is set, consecutive compatible elementwise
/// plans are then merged into single fused sweeps, so the returned vector
/// may be shorter than the statement list. Dependencies between the
/// remaining plans flow through the out-of-core arrays on disk: plan i+1
/// simply reads what plan i wrote.
std::vector<NodeProgram> compile_sequence(const hpf::BoundProgram& program,
                                          const CompileOptions& options);

/// Convenience: parse + analyze + compile_sequence.
std::vector<NodeProgram> compile_sequence_source(
    std::string_view source, const CompileOptions& options);

}  // namespace oocc::compiler
