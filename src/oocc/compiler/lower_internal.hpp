// Lowering internals shared with the global plan search.
//
// The searcher (compiler/search.cpp) re-emits candidate layouts by calling
// back into the same emission routines lowering uses, so a searched plan is
// always a plan the heuristic pipeline *could* have produced — same step
// shapes, same invariants, same verifier coverage. These hooks are an
// implementation detail of the compiler, not public API; only search.cpp
// and lower.cpp include this header.
#pragma once

#include "oocc/compiler/lower.hpp"

namespace oocc::compiler::detail {

/// Re-divides the budget among an elementwise (possibly fused) plan's
/// buffers and re-emits its loops and steps. `plan.statements` and
/// `plan.arrays` must already be populated; throws
/// Error(kResourceExhausted) when one column per buffer does not fit
/// options.memory_budget_elements. Re-runnable: the --prefetch=auto pass
/// and the searcher build several layouts from one plan.
void finish_elementwise_plan(NodeProgram& plan, const CompileOptions& options,
                             bool enable_prefetch);

/// Rebuilds a GAXPY plan's loops and steps from its current orientation,
/// memory plan and prefetch flag (Figure 9 column sweep or Figure 12 row
/// sweep). Re-runnable for the same reason.
void emit_gaxpy_steps(NodeProgram& plan);

/// Whether `next` can join a fused group headed by `head`: both elementwise,
/// identically distributed/stored/oriented sweeps, and the union of arrays
/// still holds one column per buffer within the budget.
bool can_fuse(const NodeProgram& head, const NodeProgram& next,
              const CompileOptions& options, std::size_t union_array_count);

}  // namespace oocc::compiler::detail
