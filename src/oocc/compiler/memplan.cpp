#include "oocc/compiler/memplan.hpp"

#include <algorithm>

#include "oocc/hpf/distribution.hpp"
#include "oocc/util/error.hpp"

namespace oocc::compiler {

std::string_view memory_strategy_name(MemoryStrategy s) noexcept {
  switch (s) {
    case MemoryStrategy::kEqualSplit:
      return "equal-split";
    case MemoryStrategy::kAccessWeighted:
      return "access-weighted";
  }
  return "?";
}

MemoryPlan plan_memory(MemoryStrategy strategy, std::int64_t budget_elements,
                       std::int64_t n, int nprocs,
                       runtime::SlabOrientation a_orientation,
                       const io::DiskModel& disk) {
  OOCC_REQUIRE(n >= 1 && nprocs >= 1, "plan_memory needs n >= 1, P >= 1");
  const std::int64_t nlc = (n + nprocs - 1) / nprocs;

  // Floors: each ICLA must hold one natural access unit. A column slab of
  // A/C spans n rows; a row slab of A spans nlc columns; B's ICLA columns
  // are nlc elements; the reduction temp needs up to one output column.
  const std::int64_t floor_a =
      a_orientation == runtime::SlabOrientation::kColumnSlabs ? n : nlc;
  const std::int64_t floor_b = nlc;
  const std::int64_t floor_c = n;
  const std::int64_t floor_temp = n;
  const std::int64_t floors = floor_a + floor_b + floor_c + floor_temp;
  OOCC_CHECK(budget_elements >= floors, ErrorCode::kResourceExhausted,
             "memory budget of " << budget_elements << " elements cannot "
             "cover the minimum working set of " << floors
             << " elements (N=" << n << ", P=" << nprocs << ")");

  MemoryPlan plan;
  plan.strategy = strategy;
  plan.slab_a = floor_a;
  plan.slab_b = floor_b;
  plan.slab_c = floor_c;
  plan.temp_elements = floor_temp;
  std::int64_t remaining = budget_elements - floors;

  if (strategy == MemoryStrategy::kEqualSplit) {
    const std::int64_t share = remaining / 3;
    plan.slab_a += share;
    plan.slab_b += share;
    plan.slab_c += share;
    return plan;
  }

  // Access-weighted (§4.2.1): search over divisions of the spare memory,
  // scoring each with the estimator's predicted disk time. A grid search
  // is cheap (the estimator is closed-form) and handles the feedback
  // between slab sizes and access counts that a one-shot proportional rule
  // gets wrong: shrinking A's slab multiplies B's re-reads in the row
  // version, and starving C forces strided partial-width flushes.
  const std::int64_t local = n * nlc;  // OCLA size (cap for every slab)
  MemoryPlan best = plan;
  double best_time = -1.0;
  auto consider = [&](std::int64_t extra_a, std::int64_t extra_b,
                      std::int64_t extra_c) {
    MemoryPlan cand = plan;
    cand.slab_a = std::min(floor_a + extra_a, local);
    cand.slab_b = std::min(floor_b + extra_b, local);
    cand.slab_c = std::min(floor_c + extra_c, local);
    GaxpyCostQuery q;
    q.n = n;
    q.nprocs = nprocs;
    q.slab_a = cand.slab_a;
    q.slab_b = cand.slab_b;
    q.slab_c = cand.slab_c;
    const double t = estimate_gaxpy_cost(a_orientation, q)
                         .estimated_io_time_s(disk, nprocs);
    if (best_time < 0 || t < best_time) {
      best_time = t;
      best = cand;
    }
  };
  // Seed with the equal split (so access-weighted never predicts worse
  // than kEqualSplit) and the maximal-A division.
  consider(remaining / 3, remaining / 3, remaining / 3);
  consider(remaining, 0, 0);
  constexpr int kSteps = 16;
  for (int ai = 0; ai <= kSteps; ++ai) {
    for (int bi = 0; ai + bi <= kSteps; ++bi) {
      const std::int64_t extra_a = remaining * ai / kSteps;
      const std::int64_t extra_b = remaining * bi / kSteps;
      consider(extra_a, extra_b, remaining - extra_a - extra_b);
    }
  }
  return best;
}

}  // namespace oocc::compiler
