// Memory allocation among competing out-of-core arrays (§4.2.1, Table 2).
//
// Given the per-processor memory budget, the compiler must choose a slab
// size for every out-of-core array in the statement. The paper compares
// two policies:
//   * equal split — every array gets the same share;
//   * access-weighted — the most frequently accessed array (largest
//     estimated T_data) gets the larger slab. Table 2 shows weighted
//     allocation beating equal split (452 s vs 493-827 s variants).
// Both are implemented; bench/table2_memory_alloc reproduces the sweep and
// bench/ablation_optimizer compares the policies end to end.
#pragma once

#include <cstdint>
#include <string>

#include "oocc/compiler/cost.hpp"

namespace oocc::compiler {

enum class MemoryStrategy { kEqualSplit, kAccessWeighted };

std::string_view memory_strategy_name(MemoryStrategy s) noexcept;

/// Slab sizes (elements) for the three GAXPY arrays plus the reduction
/// temporary the lowered code keeps in memory.
struct MemoryPlan {
  MemoryStrategy strategy = MemoryStrategy::kAccessWeighted;
  std::int64_t slab_a = 0;
  std::int64_t slab_b = 0;
  std::int64_t slab_c = 0;
  std::int64_t temp_elements = 0;
  std::int64_t total() const noexcept {
    return slab_a + slab_b + slab_c + temp_elements;
  }
};

/// Computes slab sizes for the GAXPY statement on N x N arrays over
/// `nprocs` processors within `budget_elements` per processor.
///
/// kEqualSplit divides the spare memory evenly. kAccessWeighted performs a
/// grid search over divisions of the spare memory, scoring each division
/// with the cost estimator's predicted disk time under `disk` — the
/// "allocate memory according to access cost" policy of §4.2.1 (a search
/// rather than a one-shot proportional rule, because slab sizes feed back
/// into access counts: a smaller A slab means more sweeps of B).
///
/// Floors guarantee each ICLA holds at least one natural unit (a column of
/// A/C, an nlc-row column of B, the temp vector); throws
/// Error(kResourceExhausted) if the budget cannot cover the floors.
MemoryPlan plan_memory(MemoryStrategy strategy, std::int64_t budget_elements,
                       std::int64_t n, int nprocs,
                       runtime::SlabOrientation a_orientation,
                       const io::DiskModel& disk =
                           io::DiskModel::touchstone_delta_cfs());

}  // namespace oocc::compiler
