#include "oocc/compiler/plan.hpp"

#include "oocc/util/error.hpp"

namespace oocc::compiler {

std::string_view program_kind_name(ProgramKind k) noexcept {
  switch (k) {
    case ProgramKind::kGaxpy:
      return "gaxpy-reduction";
    case ProgramKind::kElementwise:
      return "elementwise-forall";
  }
  return "?";
}

std::string_view step_kind_name(StepKind k) noexcept {
  switch (k) {
    case StepKind::kForEachSlab:
      return "for-each-slab";
    case StepKind::kForEachColumn:
      return "for-each-column";
    case StepKind::kReadSlab:
      return "read-slab";
    case StepKind::kWriteSlab:
      return "write-slab";
    case StepKind::kComputeElementwise:
      return "compute-elementwise";
    case StepKind::kComputeGaxpyPartial:
      return "compute-gaxpy-partial";
    case StepKind::kReduceSum:
      return "reduce-sum";
    case StepKind::kBarrier:
      return "barrier";
  }
  return "?";
}

const PlanArray& NodeProgram::array(const std::string& name) const {
  const auto it = arrays.find(name);
  OOCC_CHECK(it != arrays.end(), ErrorCode::kInvalidArgument,
             "plan has no array named '" << name << "'");
  return it->second;
}

const SlabLoop& NodeProgram::loop(const std::string& name) const {
  for (const SlabLoop& l : loops) {
    if (l.name == name) {
      return l;
    }
  }
  OOCC_THROW(ErrorCode::kInvalidArgument,
             "plan has no slab loop named '" << name << "'");
}

}  // namespace oocc::compiler
