#include "oocc/compiler/plan.hpp"

#include <algorithm>

#include "oocc/util/error.hpp"

namespace oocc::compiler {

std::string_view program_kind_name(ProgramKind k) noexcept {
  switch (k) {
    case ProgramKind::kGaxpy:
      return "gaxpy-reduction";
    case ProgramKind::kElementwise:
      return "elementwise-forall";
    case ProgramKind::kStencil:
      return "stencil-forall";
  }
  return "?";
}

std::string_view step_kind_name(StepKind k) noexcept {
  switch (k) {
    case StepKind::kForEachSlab:
      return "for-each-slab";
    case StepKind::kForEachColumn:
      return "for-each-column";
    case StepKind::kReadSlab:
      return "read-slab";
    case StepKind::kWriteSlab:
      return "write-slab";
    case StepKind::kComputeElementwise:
      return "compute-elementwise";
    case StepKind::kComputeGaxpyPartial:
      return "compute-gaxpy-partial";
    case StepKind::kReduceSum:
      return "reduce-sum";
    case StepKind::kExchangeHalo:
      return "exchange-halo";
    case StepKind::kComputeStencil:
      return "compute-stencil";
    case StepKind::kBarrier:
      return "barrier";
  }
  return "?";
}

const std::string& stencil_resolve(const NodeProgram& plan, bool swapped,
                                   const std::string& name) {
  if (swapped && !plan.stencils.empty()) {
    const StencilStmt& st = plan.stencils.front();
    if (name == st.source) {
      return st.lhs;
    }
    if (name == st.lhs) {
      return st.source;
    }
  }
  return name;
}

io::Section widen_columns(const io::Section& s, std::int64_t halo,
                          std::int64_t local_cols) noexcept {
  io::Section out = s;
  out.col0 = std::max<std::int64_t>(0, s.col0 - halo);
  out.col1 = std::min<std::int64_t>(local_cols, s.col1 + halo);
  return out;
}

const PlanArray& NodeProgram::array(const std::string& name) const {
  const auto it = arrays.find(name);
  OOCC_CHECK(it != arrays.end(), ErrorCode::kInvalidArgument,
             "plan has no array named '" << name << "'");
  return it->second;
}

const SlabLoop& NodeProgram::loop(const std::string& name) const {
  for (const SlabLoop& l : loops) {
    if (l.name == name) {
      return l;
    }
  }
  OOCC_THROW(ErrorCode::kInvalidArgument,
             "plan has no slab loop named '" << name << "'");
}

}  // namespace oocc::compiler
