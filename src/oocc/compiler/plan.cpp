#include "oocc/compiler/plan.hpp"

#include "oocc/util/error.hpp"

namespace oocc::compiler {

std::string_view program_kind_name(ProgramKind k) noexcept {
  switch (k) {
    case ProgramKind::kGaxpy:
      return "gaxpy-reduction";
    case ProgramKind::kElementwise:
      return "elementwise-forall";
  }
  return "?";
}

const PlanArray& NodeProgram::array(const std::string& name) const {
  const auto it = arrays.find(name);
  OOCC_CHECK(it != arrays.end(), ErrorCode::kInvalidArgument,
             "plan has no array named '" << name << "'");
  return it->second;
}

}  // namespace oocc::compiler
