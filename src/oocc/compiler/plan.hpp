// The node-program plan — output of the out-of-core compiler.
//
// The paper's compiler emits "Node + MP + I/O code" (Figures 9/12). Our
// equivalent is a NodeProgram: a structured description of the selected
// translation — which kernel schema (GAXPY reduction or elementwise
// FORALL), the chosen slab orientation, per-array storage orders and slab
// sizes, the cost decision that justified them, and the memory plan. The
// plan is executed by oocc::exec::execute() on the simulated machine and
// can be rendered as Figure 9/12-style pseudo-code by compiler/pretty.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "oocc/compiler/cost.hpp"
#include "oocc/compiler/memplan.hpp"
#include "oocc/hpf/ast.hpp"
#include "oocc/hpf/distribution.hpp"
#include "oocc/io/laf.hpp"
#include "oocc/runtime/slab_iter.hpp"

namespace oocc::compiler {

enum class ProgramKind {
  kGaxpy,       ///< DO/FORALL/SUM reduction (Figure 3's pattern)
  kElementwise  ///< communication-free FORALL over aligned sections
};

std::string_view program_kind_name(ProgramKind k) noexcept;

/// Per-array placement decisions.
struct PlanArray {
  std::string name;
  hpf::ArrayDistribution dist;
  io::StorageOrder storage = io::StorageOrder::kColumnMajor;
  runtime::SlabOrientation orientation =
      runtime::SlabOrientation::kColumnSlabs;
  std::int64_t slab_elements = 0;
  bool is_output = false;
  /// True when `storage` differs from the canonical column-major layout
  /// data arrives in, so the runtime must reorganize the LAF first (§4.1).
  bool needs_storage_reorganization = false;
};

struct NodeProgram {
  ProgramKind kind = ProgramKind::kGaxpy;
  int nprocs = 1;
  std::int64_t n = 0;  ///< global N for GAXPY; rows for elementwise

  // GAXPY schema.
  std::string a;
  std::string b;
  std::string c;
  runtime::SlabOrientation a_orientation =
      runtime::SlabOrientation::kColumnSlabs;
  bool prefetch = false;

  // Elementwise schema.
  std::string lhs;
  hpf::ExprPtr rhs;  ///< cloned expression tree (NodeProgram is move-only)
  std::string forall_var;
  std::int64_t elementwise_cols = 0;

  // Shared decisions.
  std::map<std::string, PlanArray> arrays;
  CostDecision cost;
  MemoryPlan memory;
  std::int64_t memory_budget_elements = 0;

  const PlanArray& array(const std::string& name) const;
};

}  // namespace oocc::compiler
