// The node-program plan — output of the out-of-core compiler.
//
// The paper's compiler emits "Node + MP + I/O code" (Figures 9/12): an
// explicit program of I/O, compute, and communication steps over slabs.
// Our equivalent is a NodeProgram carrying a *slab-program IR*: a set of
// named stripmined loops (SlabLoop) and a tree of typed steps (Step) —
// ReadSlab / WriteSlab / ComputeElementwise / ComputeGaxpyPartial /
// ReduceSum / Barrier nested under ForEachSlab / ForEachColumn structural
// steps. The pattern matchers in compiler/lower recognize the source
// statement (GAXPY reduction or elementwise FORALL) and emit the step
// program; exec::execute interprets the steps generically — there is no
// per-schema executor. The plan also records the placement decisions that
// justify the steps: per-array storage orders and slab sizes, the cost
// decision, and the memory plan. compiler/pretty renders both the
// Figure 9/12-style pseudo-code and the raw step IR.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "oocc/compiler/cost.hpp"
#include "oocc/compiler/memplan.hpp"
#include "oocc/hpf/ast.hpp"
#include "oocc/hpf/distribution.hpp"
#include "oocc/io/laf.hpp"
#include "oocc/runtime/slab_iter.hpp"

namespace oocc::compiler {

enum class ProgramKind {
  kGaxpy,       ///< DO/FORALL/SUM reduction (Figure 3's pattern)
  kElementwise, ///< communication-free FORALL(s) over aligned sections
  kStencil      ///< halo FORALL: rhs uses forall-index +/- constant columns
};

std::string_view program_kind_name(ProgramKind k) noexcept;

/// Per-array placement decisions.
struct PlanArray {
  std::string name;
  hpf::ArrayDistribution dist;
  io::StorageOrder storage = io::StorageOrder::kColumnMajor;
  runtime::SlabOrientation orientation =
      runtime::SlabOrientation::kColumnSlabs;
  std::int64_t slab_elements = 0;
  bool is_output = false;
  /// True when `storage` differs from the canonical column-major layout
  /// data arrives in, so the runtime must reorganize the LAF first (§4.1).
  bool needs_storage_reorganization = false;
};

// --------------------------------------------------------------- step IR

/// A named stripmined loop: the slabs of one plan array's local section,
/// enumerated in order. `space` names the array whose local extents define
/// the iteration space; ReadSlab steps may stream *other* arrays through
/// the same loop when their sections are aligned (the elementwise sweep).
struct SlabLoop {
  std::string name;  ///< unique within the program; steps refer to it
  std::string space;
  runtime::SlabOrientation orientation =
      runtime::SlabOrientation::kColumnSlabs;
  std::int64_t capacity_elements = 0;  ///< ICLA capacity per streamed array
  /// Double-buffer this loop's slab reads (two ICLAs per streamed array).
  bool prefetch = false;
};

enum class StepKind {
  kForEachSlab,    ///< structural: run `body` once per slab of `loop`
  kForEachColumn,  ///< structural: run `body` once per column of `loop`'s
                   ///< current slab (drives the output-column index)
  kReadSlab,       ///< load `array`'s section for `loop`'s current slab
                   ///< (widened by `halo` columns each side when halo > 0)
  kWriteSlab,      ///< store `array`'s staged slab back to its LAF
  kComputeElementwise,   ///< evaluate statements[stmt] over the current slab
  kComputeGaxpyPartial,  ///< temp(:) += A(:,i) * B(i, m) over the A slab
  kReduceSum,      ///< global sum of temp; owner stages its output column
  kExchangeHalo,   ///< trade `halo` edge columns of `array` with the
                   ///< neighbouring processors (ghost columns for a sweep)
  kComputeStencil, ///< evaluate stencils[stmt] over the current slab, with
                   ///< halo/ghost columns bound and boundary copy-through
  kBarrier         ///< synchronize all processors
};

std::string_view step_kind_name(StepKind k) noexcept;

/// One node of the step tree. Field use by kind:
///  * kForEachSlab / kForEachColumn: `loop`, `body`
///  * kReadSlab / kWriteSlab:        `loop` (section source), `array`
///  * kComputeElementwise:           `loop` (sweep), `stmt`
///  * kComputeGaxpyPartial:          `loop` (A slabs), `with` (column loop)
///  * kReduceSum:                    `array` (output), `with` (column loop)
///  * kBarrier:                      nothing
struct Step {
  StepKind kind = StepKind::kBarrier;
  std::string loop;
  std::string array;
  std::string with;
  int stmt = -1;
  /// Halo width in columns. On kReadSlab: widen the loop's current slab by
  /// this many columns on each side, clipped at the local array bounds. On
  /// kExchangeHalo: the number of edge columns traded with each neighbour.
  std::int64_t halo = 0;
  /// Forward reuse distance, annotated by annotate_reuse_distances (cost.hpp)
  /// on kReadSlab / kWriteSlab / kComputeElementwise steps: the minimum
  /// number of slab I/O events between an execution of this step and the
  /// next read of the data it touches, anywhere in the compiled sequence;
  /// -1 when the data is never read again. The runtime slab pool uses it as
  /// an eviction hint (farthest-next-use goes first).
  double reuse_distance = -1.0;
  std::vector<Step> body;
};

/// One lowered elementwise assignment `lhs(1:rows,k) = rhs`. A fused plan
/// carries several; each slab of the sweep evaluates them in order, so a
/// later statement reads the in-memory result of an earlier one.
struct ElementwiseStmt {
  std::string lhs;
  hpf::ExprPtr rhs;  ///< cloned expression tree (NodeProgram is move-only)
  std::string forall_var;
};

/// One lowered halo-stencil FORALL `lhs(interior) = f(source shifted)`.
/// The rhs is *stencil-normalized*: every array reference's subscripts are
/// rewritten to two integer constants (row shift, column offset) relative
/// to the element being computed, so the executor reads them positionally
/// instead of re-deriving the subscript algebra per element. Elements
/// outside the FORALL's interior (the first/last `halo` global columns and
/// the first/last `row_halo` rows) copy through from `source` — the
/// canonical Jacobi fixed boundary.
struct StencilStmt {
  std::string lhs;     ///< output array of one sweep
  std::string source;  ///< the single stenciled input array
  hpf::ExprPtr rhs;    ///< stencil-normalized expression tree
  std::string forall_var;
  std::int64_t halo = 1;      ///< max |column offset| (dependence distance)
  std::int64_t row_halo = 0;  ///< max |row shift| (boundary rows copied)
};

struct NodeProgram {
  ProgramKind kind = ProgramKind::kGaxpy;
  int nprocs = 1;
  std::int64_t n = 0;  ///< global N for GAXPY; rows for elementwise

  // GAXPY statement roles (empty for elementwise plans); kept for cost
  // reporting and the Figure 9/12 pseudo-code renderer.
  std::string a;
  std::string b;
  std::string c;
  runtime::SlabOrientation a_orientation =
      runtime::SlabOrientation::kColumnSlabs;
  bool prefetch = false;

  // Elementwise statement group (one entry per fused source statement).
  std::vector<ElementwiseStmt> statements;
  std::int64_t elementwise_cols = 0;

  // Stencil statement (one per plan; the executor's convergence driver
  // ping-pongs lhs/source between sweeps).
  std::vector<StencilStmt> stencils;

  // The slab-program IR interpreted by exec::execute.
  std::vector<SlabLoop> loops;
  std::vector<Step> steps;

  // Shared decisions.
  std::map<std::string, PlanArray> arrays;
  CostDecision cost;
  MemoryPlan memory;
  std::int64_t memory_budget_elements = 0;

  /// Stamped by compile()/compile_sequence() after the static verifier
  /// (compiler/verify.hpp) passed; the executor re-verifies plans that
  /// arrive without the stamp (hand-built or mutated programs).
  bool verified = false;

  const PlanArray& array(const std::string& name) const;
  const SlabLoop& loop(const std::string& name) const;
};

/// Widens a full-height column section by `halo` columns on each side,
/// clipped to [0, local_cols). The shape of every halo ReadSlab; shared by
/// the executor, the step pricer and the reuse annotator so the three
/// always agree on what a halo read touches.
io::Section widen_columns(const io::Section& s, std::int64_t halo,
                          std::int64_t local_cols) noexcept;

/// Ping-pong name resolution for a stencil plan's odd (swapped) sweeps:
/// with `swapped` set, the stencil pair's lhs and source trade places;
/// every other name (and every non-stencil plan) resolves to itself. One
/// shared definition keeps the executor and the reuse annotator replaying
/// identical schedules. Returns a reference into `plan` or `name` itself,
/// stable for the caller's lifetime.
const std::string& stencil_resolve(const NodeProgram& plan, bool swapped,
                                   const std::string& name);

}  // namespace oocc::compiler
