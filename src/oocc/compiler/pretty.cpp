#include "oocc/compiler/pretty.hpp"

#include <cstdio>
#include <sstream>

#include "oocc/util/error.hpp"

namespace oocc::compiler {

namespace {

void emit_gaxpy_column(std::ostringstream& oss, const NodeProgram& p) {
  oss << "C  Column-slab translation (straightforward extension, Fig. 9)\n"
      << "C  slabs: " << p.a << "=" << p.memory.slab_a << " elems, " << p.b
      << "=" << p.memory.slab_b << " elems, " << p.c << "="
      << p.memory.slab_c << " elems\n"
      << "   global_index = 0\n"
      << "   do l = 1, slabs_of(" << p.b << ")\n"
      << "      call READ_ICLA(" << p.b << ", slab l)\n"
      << "      do m = 1, columns_in_icla(" << p.b << ")\n"
      << "         global_index = global_index + 1\n"
      << "         temp(1:N) = 0\n"
      << "         do n = 1, slabs_of(" << p.a << ")\n"
      << "            call READ_ICLA(" << p.a << ", slab n)    ! re-read "
      << "every output column\n"
      << "            do i = 1, columns_in_icla(" << p.a << ")\n"
      << "               do j = 1, N\n"
      << "                  temp(j) = temp(j) + " << p.a << "(j,i)*" << p.b
      << "(col(i),m)\n"
      << "               end do\n"
      << "            end do\n"
      << "         end do\n"
      << "         call GLOBAL_SUM(temp, owner(global_index))\n"
      << "         if (mynode .eq. owner(global_index)) then\n"
      << "            store temp into ICLA of " << p.c << "\n"
      << "            if (ICLA full) call WRITE_ICLA(" << p.c << ")\n"
      << "         end if\n"
      << "      end do\n"
      << "   end do\n";
}

void emit_gaxpy_row(std::ostringstream& oss, const NodeProgram& p) {
  oss << "C  Row-slab translation (reorganized accesses, Fig. 12)\n"
      << "C  slabs: " << p.a << "=" << p.memory.slab_a << " elems"
      << (p.prefetch ? " (double-buffered)" : "") << ", " << p.b << "="
      << p.memory.slab_b << " elems, " << p.c << "=" << p.memory.slab_c
      << " elems\n";
  if (p.array(p.a).needs_storage_reorganization) {
    oss << "   call REORGANIZE_STORAGE(" << p.a
        << ", row-major)        ! one-time, amortized\n";
  }
  oss << "   do l = 1, slabs_of(" << p.a << ")\n"
      << "      call READ_ICLA(" << p.a << ", row slab l)   ! fetched "
      << "exactly once\n"
      << "      global_index = 0\n"
      << "      do n = 1, slabs_of(" << p.b << ")\n"
      << "         call READ_ICLA(" << p.b << ", slab n)\n"
      << "         do m = 1, columns_in_icla(" << p.b << ")\n"
      << "            global_index = global_index + 1\n"
      << "            temp(1:rows_in_slab) = 0\n"
      << "            do i = 1, local_columns(" << p.a << ")\n"
      << "               do j = 1, rows_in_slab\n"
      << "                  temp(j) = temp(j) + " << p.a << "(j,i)*" << p.b
      << "(i,m)\n"
      << "               end do\n"
      << "            end do\n"
      << "            call GLOBAL_SUM(temp, owner(global_index))\n"
      << "            if (mynode .eq. owner(global_index)) then\n"
      << "               store temp as subcolumn of " << p.c << " ICLA\n"
      << "               if (ICLA full) call WRITE_ICLA(" << p.c << ")\n"
      << "            end if\n"
      << "         end do\n"
      << "      end do\n"
      << "   end do\n";
}

void emit_elementwise(std::ostringstream& oss, const NodeProgram& p) {
  oss << "C  Elementwise FORALL translation (no communication";
  if (p.statements.size() > 1) {
    oss << "; " << p.statements.size() << " statements fused into one sweep";
  }
  oss << ")\n";
  const std::string& sweep = p.statements.front().lhs;
  oss << "   do s = 1, slabs_of(" << sweep << ")\n";
  // Render the sweep body off the step program so the pseudo-code shows
  // exactly which reads the fusion pass kept and which it eliminated.
  OOCC_ASSERT(!p.steps.empty() &&
                  p.steps.front().kind == StepKind::kForEachSlab,
              "elementwise plan must be a single slab sweep");
  for (const Step& step : p.steps.front().body) {
    switch (step.kind) {
      case StepKind::kReadSlab:
        oss << "      call READ_ICLA(" << step.array << ", slab s)\n";
        break;
      case StepKind::kComputeElementwise: {
        const ElementwiseStmt& st =
            p.statements[static_cast<std::size_t>(step.stmt)];
        oss << "      do each element (j,i) in slab s\n"
            << "         " << st.lhs << "(j,i) = " << hpf::to_string(*st.rhs)
            << "\n"
            << "      end do\n";
        break;
      }
      case StepKind::kWriteSlab:
        oss << "      call WRITE_ICLA(" << step.array << ", slab s)\n";
        break;
      default:
        break;
    }
  }
  oss << "   end do\n";
}

void emit_steps(std::ostringstream& oss, const std::vector<Step>& steps,
                int depth) {
  const std::string pad(static_cast<std::size_t>(depth) * 2, ' ');
  for (const Step& s : steps) {
    oss << pad << step_text(s) << "\n";
    emit_steps(oss, s.body, depth + 1);
  }
}

/// Renders a stencil-normalized expression: array references print as
/// name(r+shift, c+offset) relative to the element being computed.
void stencil_expr_text(std::ostringstream& oss, const hpf::Expr& e) {
  switch (e.kind) {
    case hpf::ExprKind::kIntConst:
      oss << e.int_value;
      return;
    case hpf::ExprKind::kVarRef:
      oss << e.name;
      return;
    case hpf::ExprKind::kArrayRef: {
      const std::int64_t sr = e.subscripts[0].scalar->int_value;
      const std::int64_t co = e.subscripts[1].scalar->int_value;
      oss << e.name << "(r";
      if (sr != 0) {
        oss << (sr > 0 ? "+" : "") << sr;
      }
      oss << ",c";
      if (co != 0) {
        oss << (co > 0 ? "+" : "") << co;
      }
      oss << ")";
      return;
    }
    case hpf::ExprKind::kBinary: {
      const char* op = "?";
      switch (e.op) {
        case hpf::BinOp::kAdd:
          op = " + ";
          break;
        case hpf::BinOp::kSub:
          op = " - ";
          break;
        case hpf::BinOp::kMul:
          op = "*";
          break;
        case hpf::BinOp::kDiv:
          op = "/";
          break;
      }
      oss << "(";
      stencil_expr_text(oss, *e.lhs);
      oss << op;
      stencil_expr_text(oss, *e.rhs);
      oss << ")";
      return;
    }
    case hpf::ExprKind::kSumIntrinsic:
      oss << "SUM(?)";
      return;
  }
}

std::string stencil_stmt_text(const StencilStmt& st) {
  std::ostringstream oss;
  oss << st.lhs << "(r,c) = ";
  stencil_expr_text(oss, *st.rhs);
  return oss.str();
}

void emit_stencil(std::ostringstream& oss, const NodeProgram& p) {
  const StencilStmt& st = p.stencils.front();
  oss << "C  Halo-stencil translation (one sweep of the ping-pong pair)\n"
      << "C  slabs: " << st.source << "="
      << p.array(st.source).slab_elements << " elems (halo-widened), "
      << st.lhs << "=" << p.array(st.lhs).slab_elements << " elems\n"
      << "   exchange +/-" << st.halo << " edge columns of " << st.source
      << " with the neighbour processors\n"
      << "   do s = 1, slabs_of(" << st.lhs << ")\n"
      << "      call READ_ICLA(" << st.source << ", slab s widened by "
      << st.halo << " column(s) each side, clipped)\n"
      << "      do each interior element (r,c) in slab s\n"
      << "         " << stencil_stmt_text(st) << "\n"
      << "      end do\n"
      << "      boundary rows/columns copy through from " << st.source
      << "\n"
      << "      call WRITE_ICLA(" << st.lhs << ", slab s)\n"
      << "   end do\n"
      << "   barrier\n"
      << "C  the executor swaps " << st.lhs << "/" << st.source
      << " and repeats until max_iters or residual <= tol\n";
}

}  // namespace

std::string step_text(const Step& s) {
  std::ostringstream oss;
  oss << step_kind_name(s.kind);
  switch (s.kind) {
    case StepKind::kForEachSlab:
    case StepKind::kForEachColumn:
      oss << " " << s.loop << ":";
      break;
    case StepKind::kReadSlab:
    case StepKind::kWriteSlab:
      oss << " " << s.array << " [" << s.loop << "]";
      if (s.halo > 0) {
        oss << " (halo +/-" << s.halo << ", clipped)";
      }
      if (s.reuse_distance >= 0) {
        oss << " (reuse " << s.reuse_distance << ")";
      }
      break;
    case StepKind::kExchangeHalo:
      oss << " " << s.array << " [" << s.loop << "] (+/-" << s.halo
          << " edge columns)";
      break;
    case StepKind::kComputeElementwise:
    case StepKind::kComputeStencil:
      oss << " stmt#" << s.stmt;
      break;
    case StepKind::kComputeGaxpyPartial:
      oss << " (" << s.loop << " x " << s.with << ")";
      break;
    case StepKind::kReduceSum:
      oss << " -> " << s.array << " [" << s.with << "]";
      break;
    case StepKind::kBarrier:
      break;
  }
  return oss.str();
}

std::string step_program_text(const NodeProgram& plan) {
  std::ostringstream oss;
  oss << "slab-program (" << program_kind_name(plan.kind) << ", "
      << plan.nprocs << " procs)\n";
  for (const SlabLoop& loop : plan.loops) {
    oss << "loop " << loop.name << ": "
        << runtime::slab_orientation_name(loop.orientation) << " over '"
        << loop.space << "', capacity " << loop.capacity_elements
        << " elems" << (loop.prefetch ? " (double-buffered)" : "") << "\n";
  }
  emit_steps(oss, plan.steps, 0);
  return oss.str();
}

std::string pseudo_code(const NodeProgram& plan) {
  std::ostringstream oss;
  oss << "C  (N,N) arrays over " << plan.nprocs << " processors, N = "
      << plan.n << "\n";
  switch (plan.kind) {
    case ProgramKind::kGaxpy:
      if (plan.a_orientation == runtime::SlabOrientation::kColumnSlabs) {
        emit_gaxpy_column(oss, plan);
      } else {
        emit_gaxpy_row(oss, plan);
      }
      break;
    case ProgramKind::kElementwise:
      emit_elementwise(oss, plan);
      break;
    case ProgramKind::kStencil:
      emit_stencil(oss, plan);
      break;
  }
  return oss.str();
}

std::string decision_report(const NodeProgram& plan) {
  std::ostringstream oss;
  oss << "kind: " << program_kind_name(plan.kind) << "\n";
  oss << "processors: " << plan.nprocs << ", N: " << plan.n << "\n";
  oss << "memory budget: " << plan.memory_budget_elements << " elements, "
      << "strategy: " << memory_strategy_name(plan.memory.strategy) << "\n";
  if (plan.kind == ProgramKind::kGaxpy) {
    oss << "chosen orientation for '" << plan.a << "': "
        << runtime::slab_orientation_name(plan.a_orientation)
        << (plan.prefetch ? " (prefetching)" : "") << "\n";
    oss << "slab sizes: " << plan.a << "=" << plan.memory.slab_a << " "
        << plan.b << "=" << plan.memory.slab_b << " " << plan.c << "="
        << plan.memory.slab_c << " temp=" << plan.memory.temp_elements
        << "\n";
    for (const auto& [name, pa] : plan.arrays) {
      oss << "array '" << name << "': " << pa.dist.to_string() << ", stored "
          << io::storage_order_name(pa.storage)
          << (pa.needs_storage_reorganization ? " (reorganized)" : "")
          << "\n";
    }
    oss << "candidates:\n";
    for (std::size_t i = 0; i < plan.cost.candidates.size(); ++i) {
      const CandidateCost& cand = plan.cost.candidates[i];
      oss << "  " << runtime::slab_orientation_name(cand.a_orientation)
          << ":";
      for (const ArrayCost& a : cand.arrays) {
        oss << "  " << a.array << "{T_fetch=" << a.fetch_requests
            << ", T_data=" << a.data_elements << "}";
      }
      if (i < plan.cost.candidate_total_s.size()) {
        oss << "  predicted_total=" << plan.cost.candidate_total_s[i] << "s";
      }
      oss << "\n";
    }
    oss << "rationale: " << plan.cost.rationale << "\n";
  } else if (plan.kind == ProgramKind::kStencil) {
    const StencilStmt& st = plan.stencils.front();
    oss << "stmt: " << stencil_stmt_text(st) << "\n";
    oss << "halo: +/-" << st.halo << " columns, +/-" << st.row_halo
        << " rows; ping-pong pair " << st.lhs << "/" << st.source << "\n";
    for (const auto& [name, pa] : plan.arrays) {
      oss << "array '" << name << "': " << pa.dist.to_string() << ", stored "
          << io::storage_order_name(pa.storage) << ", slab "
          << pa.slab_elements << " elems\n";
    }
    if (!plan.cost.rationale.empty()) {
      oss << "rationale: " << plan.cost.rationale << "\n";
    }
  } else {
    for (const ElementwiseStmt& st : plan.statements) {
      oss << "stmt: " << st.lhs << " = " << hpf::to_string(*st.rhs) << "\n";
    }
    if (!plan.cost.rationale.empty()) {
      oss << "rationale: " << plan.cost.rationale << "\n";
    }
  }
  if (!plan.cost.prefetch_rationale.empty()) {
    oss << "prefetch: " << plan.cost.prefetch_rationale << "\n";
  }
  return oss.str();
}

std::string search_report_text(const SearchReport& report) {
  std::ostringstream oss;
  char buf[64];
  const auto secs = [&](double s) {
    std::snprintf(buf, sizeof(buf), "%.6f", s);
    return std::string(buf);
  };
  oss << "statements: " << report.statements << ", segments: "
      << report.segments << ", passes: " << report.passes << "\n";
  oss << "candidates: " << report.enumerated << " enumerated, "
      << report.priced << " priced, " << report.verified << " verified\n";
  oss << "heuristic baseline: " << secs(report.heuristic_priced_s)
      << " s priced makespan\n";
  oss << "chosen: " << secs(report.chosen_priced_s) << " s priced makespan ("
      << report.chosen << ")\n";
  for (const SearchCandidate& c : report.candidates) {
    oss << "  [pass " << c.pass << "]";
    if (c.segment >= 0) {
      oss << " seg " << c.segment + 1;
    }
    oss << " " << c.describe;
    if (c.priced) {
      oss << ": " << secs(c.priced_s) << " s";
    }
    if (c.adopted) {
      oss << "  << adopted";
    } else if (!c.rejected.empty()) {
      oss << "  (rejected: " << c.rejected << ")";
    }
    oss << "\n";
  }
  for (const std::string& d : report.not_searchable) {
    oss << d << "\n";
  }
  return oss.str();
}

}  // namespace oocc::compiler
