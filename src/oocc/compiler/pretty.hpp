// Pseudo-code rendering of a compiled node program, in the style of the
// paper's Figure 9 (column-slab version) and Figure 12 (row-slab version).
// Used by examples and documentation so a reader can see exactly which
// translation the compiler chose and where the I/O calls were inserted.
#pragma once

#include <string>

#include "oocc/compiler/plan.hpp"
#include "oocc/compiler/search.hpp"

namespace oocc::compiler {

/// Renders the node program (loops, I/O calls, communication) as text.
std::string pseudo_code(const NodeProgram& plan);

/// One-paragraph summary of the compilation decisions: chosen orientation,
/// storage orders, slab sizes, estimated costs and the Figure 14 rationale.
std::string decision_report(const NodeProgram& plan);

/// Renders the plan's slab-program IR: the named slab loops, then the step
/// tree (indented two spaces per nesting level). This is what the generic
/// executor actually interprets; `oocc_compile --dump-plan` prints it.
std::string step_program_text(const NodeProgram& plan);

/// Renders one step (no children, no indent) exactly as a step_program_text
/// line would. The verifier quotes this in its diagnostics.
std::string step_text(const Step& step);

/// Renders a plan-search decision record: space statistics, baseline vs
/// chosen priced makespans, the adopted/rejected candidate log and the
/// "not searchable" diagnostics. `oocc_compile --dump-search` prints it;
/// formatting is deterministic so docs can embed the output verbatim.
std::string search_report_text(const SearchReport& report);

}  // namespace oocc::compiler
