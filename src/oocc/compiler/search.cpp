#include "oocc/compiler/search.hpp"

#include <algorithm>
#include <optional>
#include <sstream>

#include "oocc/compiler/lower_internal.hpp"
#include "oocc/compiler/memplan.hpp"
#include "oocc/compiler/verify.hpp"
#include "oocc/hpf/parser.hpp"
#include "oocc/util/error.hpp"

namespace oocc::compiler {

namespace {

/// Deep copy of a (move-only) NodeProgram: everything is value-copyable
/// except the statements' expression trees, which clone via hpf::clone_expr.
NodeProgram clone_plan(const NodeProgram& p) {
  NodeProgram out;
  out.kind = p.kind;
  out.nprocs = p.nprocs;
  out.n = p.n;
  out.a = p.a;
  out.b = p.b;
  out.c = p.c;
  out.a_orientation = p.a_orientation;
  out.prefetch = p.prefetch;
  for (const ElementwiseStmt& st : p.statements) {
    ElementwiseStmt c;
    c.lhs = st.lhs;
    c.rhs = hpf::clone_expr(*st.rhs);
    c.forall_var = st.forall_var;
    out.statements.push_back(std::move(c));
  }
  out.elementwise_cols = p.elementwise_cols;
  for (const StencilStmt& st : p.stencils) {
    StencilStmt c;
    c.lhs = st.lhs;
    c.source = st.source;
    c.rhs = hpf::clone_expr(*st.rhs);
    c.forall_var = st.forall_var;
    c.halo = st.halo;
    c.row_halo = st.row_halo;
    out.stencils.push_back(std::move(c));
  }
  out.loops = p.loops;
  out.steps = p.steps;
  out.arrays = p.arrays;
  out.cost = p.cost;
  out.memory = p.memory;
  out.memory_budget_elements = p.memory_budget_elements;
  out.verified = p.verified;
  return out;
}

/// How many source statements one compiled plan covers (fusion merges
/// several elementwise statements into one plan; GAXPY and stencil plans
/// always cover exactly one).
std::size_t statements_covered(const NodeProgram& plan) {
  return plan.kind == ProgramKind::kElementwise ? plan.statements.size() : 1;
}

/// One searchable segment of the statement sequence: either a single
/// GAXPY/stencil statement or a maximal run of consecutive elementwise
/// statements (the fusible region between reduction/halo barriers).
struct Segment {
  ProgramKind kind = ProgramKind::kElementwise;
  int first_stmt = 0;  ///< index into the proto (per-statement) plans
  int count = 1;       ///< statements in the segment
};

/// One enumerated candidate: the segment's replacement plans plus the knob
/// description. Candidates that fail feasibility never materialize — the
/// enumerators record the rejection instead.
struct Candidate {
  std::string describe;
  std::vector<NodeProgram> plans;
};

// ------------------------------------------------- elementwise run search

/// Fuses `members` (clones of per-statement proto plans, in order) into one
/// sweep, dividing `frac` of the budget among the buffers while the plan —
/// and therefore the runtime slab pool — keeps the full budget: a share
/// fraction below 1 shrinks the slabs to leave the pool headroom to retain
/// other statements' data (the cache-share vs slab-size split).
/// Throws Error(kResourceExhausted) when one column per buffer no longer
/// fits the scaled budget.
NodeProgram build_group(const std::vector<const NodeProgram*>& members,
                        const CompileOptions& options, bool prefetch,
                        double frac) {
  NodeProgram head = clone_plan(*members.front());
  for (std::size_t i = 1; i < members.size(); ++i) {
    const NodeProgram& next = *members[i];
    for (const auto& [name, pa] : next.arrays) {
      if (!head.arrays.contains(name)) {
        head.arrays.emplace(name, pa);
      }
    }
    for (const ElementwiseStmt& st : next.statements) {
      ElementwiseStmt c;
      c.lhs = st.lhs;
      c.rhs = hpf::clone_expr(*st.rhs);
      c.forall_var = st.forall_var;
      head.statements.push_back(std::move(c));
    }
  }
  CompileOptions scaled = options;
  scaled.memory_budget_elements = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(
             static_cast<double>(options.memory_budget_elements) * frac));
  detail::finish_elementwise_plan(head, scaled, prefetch);
  // The executor's pool budget is the plan's memory_budget_elements;
  // restore the full budget so shrunken slabs buy retention, not a
  // smaller pool.
  head.memory_budget_elements = options.memory_budget_elements;
  head.verified = false;
  return head;
}

/// Two elementwise protos can share a sweep only when their lhs sections
/// are identically distributed, stored and oriented (detail::can_fuse's
/// structural half; the budget half is finish_elementwise_plan throwing).
bool compatible_sweeps(const NodeProgram& a, const NodeProgram& b) {
  const PlanArray& pa = a.array(a.statements.front().lhs);
  const PlanArray& pb = b.array(b.statements.front().lhs);
  return pa.dist == pb.dist && pa.storage == pb.storage &&
         pa.orientation == pb.orientation;
}

std::string partition_text(std::span<const int> group_of, int count) {
  std::ostringstream oss;
  oss << "fuse {";
  for (int g = 0, printed = 0;; ++g) {
    bool any = false;
    for (int i = 0; i < count; ++i) {
      if (group_of[static_cast<std::size_t>(i)] == g) {
        oss << (any ? "+" : (printed ? "," : "")) << i + 1;
        any = true;
      }
    }
    if (!any) break;
    ++printed;
  }
  oss << "}";
  return oss.str();
}

}  // namespace

double priced_sequence_makespan_s(std::span<const NodeProgram> plans,
                                  const io::DiskModel& disk,
                                  const sim::MachineCostModel& machine) {
  PriceOptions popts;
  popts.model_cache = true;
  const std::vector<PlanPrice> prices = price_sequence(plans, 0, popts);
  double total = 0.0;
  for (std::size_t i = 0; i < plans.size(); ++i) {
    const double io = prices[i].io_time_s(disk, plans[i].nprocs);
    const double comp = machine.compute.flops_time(prices[i].flops);
    const double overlappable =
        prices[i].overlappable_read_requests * disk.request_overhead_s +
        prices[i].overlappable_read_elements *
            static_cast<double>(sizeof(double)) /
            disk.effective_bandwidth(plans[i].nprocs);
    total += io + comp - std::min(overlappable, comp);
  }
  return total;
}

SearchResult search_sequence(const hpf::BoundProgram& program,
                             const CompileOptions& options) {
  SearchResult result;
  SearchReport& report = result.report;

  CompileOptions heuristic = options;
  heuristic.opt = OptMode::kHeuristic;

  // The baseline: whatever the heuristic pipeline produces under the same
  // knobs. It is candidate 0 and the initial incumbent, so the search can
  // only improve on it; any compile error surfaces here exactly as it
  // would in heuristic mode.
  std::vector<NodeProgram> incumbent = compile_sequence(program, heuristic);

  report.statements = static_cast<int>(std::max<std::size_t>(
      1, program.stmts.size()));

  // Per-statement proto plans: the raw material candidates clone from.
  // Compiled without prefetch (layouts are re-emitted per candidate) and
  // without per-proto verification (candidate sequences verify jointly).
  CompileOptions proto_options = heuristic;
  proto_options.prefetch = PrefetchMode::kOff;
  proto_options.verify = false;
  std::vector<NodeProgram> protos;
  if (program.stmts.size() <= 1) {
    protos.push_back(compile(program, proto_options));
  } else {
    for (std::size_t i = 0; i < program.stmts.size(); ++i) {
      hpf::BoundProgram view;
      view.nprocs = program.nprocs;
      view.parameters = program.parameters;
      view.arrays = program.arrays;
      view.stmts.push_back(hpf::clone_stmt(*program.stmts[i]));
      protos.push_back(compile(view, proto_options));
    }
  }

  // Split the statement list into segments: GAXPY/stencil statements are
  // their own segments (their collective schedules are fusion barriers);
  // maximal elementwise runs are fusible segments.
  std::vector<Segment> segments;
  for (int i = 0; i < static_cast<int>(protos.size()); ++i) {
    if (protos[i].kind == ProgramKind::kElementwise && !segments.empty() &&
        segments.back().kind == ProgramKind::kElementwise &&
        segments.back().first_stmt + segments.back().count == i) {
      ++segments.back().count;
    } else {
      segments.push_back(Segment{protos[i].kind, i, 1});
    }
  }
  report.segments = static_cast<int>(segments.size());

  // Structured diagnostics for the shapes the search skips by
  // construction (satellite of the fusion-barrier fix: the space around a
  // barrier is enumerated, the crossing itself is not — and says so).
  for (std::size_t s = 0; s + 1 < segments.size(); ++s) {
    const Segment& cur = segments[s];
    const Segment& nxt = segments[s + 1];
    const bool cur_ew = cur.kind == ProgramKind::kElementwise;
    const bool nxt_ew = nxt.kind == ProgramKind::kElementwise;
    if (cur_ew != nxt_ew) {
      const Segment& barrier = cur_ew ? nxt : cur;
      std::ostringstream oss;
      oss << "not searchable: fusing elementwise statements across the "
          << (barrier.kind == ProgramKind::kGaxpy
                  ? "GAXPY reduction nest"
                  : "halo-stencil sweep")
          << " at statement " << barrier.first_stmt + 1
          << ": its collective schedule (global sums/ghost exchanges) is a "
             "fusion barrier; the search enumerates fusion groupings on "
             "each side of it only";
      if (std::find(report.not_searchable.begin(),
                    report.not_searchable.end(),
                    oss.str()) == report.not_searchable.end()) {
        report.not_searchable.push_back(oss.str());
      }
    }
  }
  for (const Segment& seg : segments) {
    if (seg.kind == ProgramKind::kStencil) {
      std::ostringstream oss;
      oss << "not searchable: double-buffered halo reads for statement "
          << seg.first_stmt + 1
          << ": prefetch enqueues unwidened sections, so the executor "
             "would read different slabs than the pricer charges; the "
             "search never emits prefetch on a halo loop";
      report.not_searchable.push_back(oss.str());
    }
    if (seg.kind == ProgramKind::kGaxpy &&
        !options.enable_access_reorganization) {
      report.not_searchable.push_back(
          "not searchable: row-slab GAXPY candidates for statement " +
          std::to_string(seg.first_stmt + 1) +
          ": access reorganization is disabled (--no-access-reorg pins "
          "column slabs)");
    }
  }

  // Partition the heuristic baseline into per-segment plan lists (fusion
  // never crosses a segment boundary, so the split is exact).
  std::vector<std::vector<NodeProgram>> seg_plans(segments.size());
  {
    std::size_t pi = 0;
    for (std::size_t s = 0; s < segments.size(); ++s) {
      int covered = 0;
      while (covered < segments[s].count) {
        OOCC_ASSERT(pi < incumbent.size(),
                    "baseline plans do not tile the statement segments");
        covered += static_cast<int>(statements_covered(incumbent[pi]));
        seg_plans[s].push_back(std::move(incumbent[pi]));
        ++pi;
      }
      OOCC_ASSERT(covered == segments[s].count,
                  "baseline fusion crossed a segment boundary");
    }
    OOCC_ASSERT(pi == incumbent.size(), "unassigned baseline plans");
  }

  const auto flatten = [&](int replace_seg,
                           std::span<const NodeProgram> replacement) {
    std::vector<NodeProgram> seq;
    for (std::size_t s = 0; s < seg_plans.size(); ++s) {
      if (static_cast<int>(s) == replace_seg) {
        for (const NodeProgram& p : replacement) {
          seq.push_back(clone_plan(p));
        }
      } else {
        for (const NodeProgram& p : seg_plans[s]) {
          seq.push_back(clone_plan(p));
        }
      }
    }
    return seq;
  };

  const auto priced_of = [&](std::vector<NodeProgram>& seq) {
    annotate_reuse_distances(std::span<NodeProgram>(seq.data(), seq.size()));
    return priced_sequence_makespan_s(
        std::span<const NodeProgram>(seq.data(), seq.size()), options.disk,
        options.machine);
  };

  {
    std::vector<NodeProgram> baseline = flatten(-1, {});
    report.heuristic_priced_s = priced_of(baseline);
  }
  double best_priced = report.heuristic_priced_s;
  std::string best_describe = "heuristic baseline";
  report.chosen = best_describe;

  SearchCandidate base;
  base.pass = 0;
  base.segment = -1;
  base.describe = "heuristic baseline";
  base.priced_s = best_priced;
  base.priced = true;
  base.adopted = true;
  report.candidates.push_back(base);
  ++report.enumerated;
  ++report.priced;

  // ---------------------------------------------- candidate enumerators

  const auto enumerate_run = [&](const Segment& seg,
                                 std::vector<Candidate>& out,
                                 std::vector<SearchCandidate>& rejected) {
    const int k = seg.count;
    // Boundary masks: bit b set = a group boundary between statement b and
    // b+1 of the run. 0 = fuse everything, all-ones = singletons.
    std::vector<unsigned> masks;
    if (k <= 5) {
      for (unsigned m = 0; m < (1u << (k - 1)); ++m) {
        masks.push_back(m);
      }
    } else {
      // Sampled: full enumeration of 2^(k-1) partitions is capped.
      masks = {0u, (1u << (k - 1)) - 1u,
               1u << ((k - 1) / 2)};  // fused, singletons, midpoint split
      std::ostringstream oss;
      oss << "not searchable: the " << (1u << (k - 1))
          << " fusion partitions of the " << k
          << "-statement elementwise run at statements "
          << seg.first_stmt + 1 << ".." << seg.first_stmt + k
          << " exceed the enumeration cap; sampling all-fused, "
             "all-singleton and midpoint-split partitions only";
      report.not_searchable.push_back(oss.str());
    }
    const double fracs[] = {1.0, 0.5, 0.25};
    const char* frac_names[] = {"full", "1/2", "1/4"};
    for (const unsigned mask : masks) {
      // group_of[i]: which group statement i of the run lands in.
      std::vector<int> group_of(static_cast<std::size_t>(k), 0);
      for (int i = 1; i < k; ++i) {
        group_of[static_cast<std::size_t>(i)] =
            group_of[static_cast<std::size_t>(i - 1)] +
            ((mask >> (i - 1)) & 1u ? 1 : 0);
      }
      const int groups = group_of.back() + 1;
      for (int f = 0; f < 3; ++f) {
        for (const bool prefetch : {false, true}) {
          std::ostringstream desc;
          desc << partition_text(group_of, k) << " share=" << frac_names[f]
               << " prefetch=" << (prefetch ? "on" : "off");
          ++report.enumerated;
          try {
            std::vector<NodeProgram> plans;
            for (int g = 0; g < groups; ++g) {
              std::vector<const NodeProgram*> members;
              for (int i = 0; i < k; ++i) {
                if (group_of[static_cast<std::size_t>(i)] == g) {
                  members.push_back(&protos[seg.first_stmt + i]);
                }
              }
              for (std::size_t i = 1; i < members.size(); ++i) {
                OOCC_CHECK(compatible_sweeps(*members[0], *members[i]),
                           ErrorCode::kCompileError,
                           "sweep geometries differ within a fused group");
              }
              plans.push_back(
                  build_group(members, options, prefetch, fracs[f]));
            }
            out.push_back(Candidate{desc.str(), std::move(plans)});
          } catch (const Error& e) {
            SearchCandidate c;
            c.describe = desc.str();
            c.rejected = e.what();
            rejected.push_back(std::move(c));
          }
        }
      }
    }
  };

  const auto enumerate_gaxpy = [&](const Segment& seg,
                                   std::vector<Candidate>& out,
                                   std::vector<SearchCandidate>& rejected) {
    const NodeProgram& proto = protos[seg.first_stmt];
    const std::int64_t nlc =
        (proto.n + proto.nprocs - 1) / proto.nprocs;
    std::vector<runtime::SlabOrientation> orients = {
        runtime::SlabOrientation::kColumnSlabs};
    if (options.enable_access_reorganization) {
      orients.push_back(runtime::SlabOrientation::kRowSlabs);
    }
    for (const runtime::SlabOrientation orient : orients) {
      const bool row = orient == runtime::SlabOrientation::kRowSlabs;
      for (const MemoryStrategy strategy :
           {MemoryStrategy::kAccessWeighted, MemoryStrategy::kEqualSplit}) {
        for (const bool halve_a : {false, true}) {
          for (const bool prefetch : {false, true}) {
            if (prefetch && !row) {
              continue;  // the column sweep re-reads A per output column;
                         // there is no prefetchable stream (the kAuto
                         // heuristic skips it for the same reason)
            }
            std::ostringstream desc;
            desc << "orientation=" << (row ? "row" : "column")
                 << " split=" << memory_strategy_name(strategy)
                 << " slabA=" << (halve_a ? "1/2" : "full")
                 << " prefetch=" << (prefetch ? "on" : "off");
            ++report.enumerated;
            try {
              const MemoryPlan mem =
                  plan_memory(strategy, options.memory_budget_elements,
                              proto.n, proto.nprocs, orient, options.disk);
              NodeProgram plan = clone_plan(proto);
              plan.memory = mem;
              plan.a_orientation = orient;
              const std::int64_t floor_a = row ? nlc : proto.n;
              if (halve_a) {
                plan.memory.slab_a =
                    std::max(floor_a, plan.memory.slab_a / 2);
              }
              plan.prefetch = prefetch;
              if (prefetch) {
                plan.memory.slab_a =
                    std::max(floor_a, plan.memory.slab_a / 2);
              }
              const io::StorageOrder ac_order =
                  options.enable_storage_reorganization
                      ? runtime::contiguous_order_for(orient)
                      : io::StorageOrder::kColumnMajor;
              for (const std::string* name : {&plan.a, &plan.c}) {
                PlanArray& pa = plan.arrays.at(*name);
                pa.storage = ac_order;
                pa.orientation = orient;
                pa.needs_storage_reorganization =
                    ac_order != io::StorageOrder::kColumnMajor;
              }
              plan.arrays.at(plan.a).slab_elements = plan.memory.slab_a;
              plan.arrays.at(plan.b).slab_elements = plan.memory.slab_b;
              plan.arrays.at(plan.c).slab_elements = plan.memory.slab_c;
              detail::emit_gaxpy_steps(plan);
              // Keep the decision report truthful about the layout the
              // search picked.
              GaxpyCostQuery q;
              q.n = plan.n;
              q.nprocs = plan.nprocs;
              q.slab_a = plan.memory.slab_a;
              q.slab_b = plan.memory.slab_b;
              q.slab_c = plan.memory.slab_c;
              q.storage_reorganized =
                  options.enable_storage_reorganization;
              plan.cost.chosen = estimate_gaxpy_cost(orient, q);
              plan.cost.rationale = "plan search: " + desc.str();
              plan.verified = false;
              std::vector<NodeProgram> plans;
              plans.push_back(std::move(plan));
              out.push_back(Candidate{desc.str(), std::move(plans)});
            } catch (const Error& e) {
              SearchCandidate c;
              c.describe = desc.str();
              c.rejected = e.what();
              rejected.push_back(std::move(c));
            }
          }
        }
      }
    }
  };

  const auto enumerate_stencil = [&](const Segment& seg,
                                     std::vector<Candidate>& out) {
    const NodeProgram& proto = protos[seg.first_stmt];
    const StencilStmt& st = proto.stencils.front();
    const PlanArray& lhs = proto.arrays.at(st.lhs);
    const std::int64_t rows = lhs.dist.local_rows(0);
    const std::int64_t d = st.halo;
    const std::int64_t budget = options.memory_budget_elements;
    // Upper bound: the pool's halo-assembly transient (the covering slabs
    // of one sweep stay pinned while the widened copy is assembled) stays
    // inside the budget when (4w + 2d) * rows <= budget. The heuristic's
    // w = budget/(4 rows) - d always satisfies it, so the baseline width
    // is always in the space.
    const std::int64_t wmax = (budget / rows - 2 * d) / 4;
    const std::int64_t wmin = std::max<std::int64_t>(1, d);
    const std::int64_t w_heuristic = budget / (4 * rows) - d;
    std::vector<std::int64_t> widths = {w_heuristic, wmax, wmin};
    // Widths dividing the local panel evenly avoid the ragged tail slab
    // (and its extra halo-overlapped requests).
    const std::int64_t nlc = lhs.dist.local_cols(0);
    int divisors = 0;
    for (std::int64_t w = wmax; w >= wmin && divisors < 3; --w) {
      if (nlc % w == 0) {
        widths.push_back(w);
        ++divisors;
      }
    }
    std::sort(widths.begin(), widths.end());
    widths.erase(std::unique(widths.begin(), widths.end()), widths.end());
    for (const std::int64_t w : widths) {
      if (w < wmin || w > wmax) {
        continue;  // budget cannot hold this width's working set
      }
      std::ostringstream desc;
      desc << "stencil w=" << w << " (slabs of " << w
           << " column(s), halo " << d << ")";
      ++report.enumerated;
      NodeProgram plan = clone_plan(proto);
      plan.memory.slab_a = (w + 2 * d) * rows;
      plan.memory.slab_b = w * rows;
      plan.arrays.at(st.source).slab_elements = plan.memory.slab_a;
      plan.arrays.at(st.lhs).slab_elements = plan.memory.slab_b;
      plan.loops.front().capacity_elements = w * rows;
      plan.cost.rationale = "plan search: " + desc.str();
      plan.verified = false;
      std::vector<NodeProgram> plans;
      plans.push_back(std::move(plan));
      out.push_back(Candidate{desc.str(), std::move(plans)});
    }
  };

  // --------------------------------------------------- coordinate descent

  const int passes = std::clamp(options.search_passes, 1, 8);
  std::vector<std::string> seg_describe(segments.size(), "heuristic");
  constexpr std::size_t kMaxRecorded = 256;

  for (int pass = 1; pass <= passes; ++pass) {
    bool improved_this_pass = false;
    for (std::size_t s = 0; s < segments.size(); ++s) {
      std::vector<Candidate> candidates;
      std::vector<SearchCandidate> rejected;
      switch (segments[s].kind) {
        case ProgramKind::kElementwise:
          enumerate_run(segments[s], candidates, rejected);
          break;
        case ProgramKind::kGaxpy:
          enumerate_gaxpy(segments[s], candidates, rejected);
          break;
        case ProgramKind::kStencil:
          enumerate_stencil(segments[s], candidates);
          break;
      }
      for (SearchCandidate& c : rejected) {
        c.pass = pass;
        c.segment = static_cast<int>(s);
        if (report.candidates.size() < kMaxRecorded) {
          report.candidates.push_back(std::move(c));
        }
      }
      for (Candidate& cand : candidates) {
        SearchCandidate rec;
        rec.pass = pass;
        rec.segment = static_cast<int>(s);
        rec.describe = cand.describe;
        std::vector<NodeProgram> seq = flatten(
            static_cast<int>(s),
            std::span<const NodeProgram>(cand.plans.data(),
                                         cand.plans.size()));
        rec.priced_s = priced_of(seq);
        rec.priced = true;
        ++report.priced;
        if (rec.priced_s < best_priced - 1e-12) {
          bool ok = true;
          if (options.verify) {
            ++report.verified;
            const VerifyReport vr = verify_sequence(
                std::span<const NodeProgram>(seq.data(), seq.size()));
            if (!vr.ok()) {
              ok = false;
              rec.rejected = "verifier: " + vr.diagnostics.front().code;
            } else {
              for (NodeProgram& p : seq) {
                p.verified = true;
              }
            }
          }
          if (ok) {
            best_priced = rec.priced_s;
            rec.adopted = true;
            improved_this_pass = true;
            seg_describe[s] = cand.describe;
            // Re-split the adopted sequence back into the segment lists
            // (only segment s changed shape; counts elsewhere are stable).
            std::size_t pi = 0;
            for (std::size_t t = 0; t < seg_plans.size(); ++t) {
              const std::size_t n =
                  t == s ? cand.plans.size() : seg_plans[t].size();
              std::vector<NodeProgram> part;
              for (std::size_t j = 0; j < n; ++j) {
                part.push_back(std::move(seq[pi++]));
              }
              seg_plans[t] = std::move(part);
            }
          }
        }
        if (report.candidates.size() < kMaxRecorded) {
          report.candidates.push_back(std::move(rec));
        }
      }
    }
    report.passes = pass;
    if (!improved_this_pass) {
      break;  // converged: a further pass would re-price the same space
    }
  }

  // Assemble the result: re-annotate the final sequence as one scope and
  // re-verify it end to end (the per-candidate checks verified clones).
  for (std::vector<NodeProgram>& part : seg_plans) {
    for (NodeProgram& p : part) {
      result.plans.push_back(std::move(p));
    }
  }
  annotate_reuse_distances(
      std::span<NodeProgram>(result.plans.data(), result.plans.size()));
  if (options.verify) {
    verify_sequence_or_throw(std::span<const NodeProgram>(
        result.plans.data(), result.plans.size()));
    for (NodeProgram& p : result.plans) {
      p.verified = true;
    }
  }

  report.chosen_priced_s = best_priced;
  if (best_priced < report.heuristic_priced_s - 1e-12) {
    std::ostringstream oss;
    for (std::size_t s = 0; s < seg_describe.size(); ++s) {
      if (s) oss << "; ";
      oss << "seg " << s + 1 << ": " << seg_describe[s];
    }
    report.chosen = oss.str();
  }
  return result;
}

SearchResult search_sequence_source(std::string_view source,
                                    const CompileOptions& options) {
  return search_sequence(hpf::analyze(hpf::parse(source)), options);
}

}  // namespace oocc::compiler
