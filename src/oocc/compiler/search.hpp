// Cost-model-driven global plan search (`--opt=search`).
//
// The symbolic pricer is exact — priced LAF counters match measured ones
// request-for-request, and CI asserts it — but the heuristic pipeline only
// ever *checks* plans with it, making local one-knob decisions (greedy
// fusion, --prefetch=auto, the memplan grid). This pass inverts that: the
// pricer becomes the objective. The statement sequence is split into
// segments (each GAXPY or stencil statement is its own segment; maximal
// runs of elementwise statements form fusible segments), every segment
// gets an enumerated candidate set —
//
//   * elementwise runs: every contiguous fusion partition of the run,
//     crossed with prefetch on/off and a slab-share fraction (full budget,
//     1/2, 1/4 — smaller slabs leave the shared slab pool headroom to
//     retain another statement's data);
//   * GAXPY: slab orientation (Figure 9 vs 12) x memory-split strategy
//     x A-slab scale x prefetch (row orientation only);
//   * stencil: every slab width w with d <= w <= (budget/rows - 2d)/4 —
//     the upper bound keeps the pool's halo-assembly transient (covering
//     slabs pinned while the widened copy is built) inside the budget —
//     sampled down to the heuristic width, the maximum, the even divisors
//     of the local panel (no ragged tail) and the extremes;
//
// — and coordinate descent walks the segments (CompileOptions::search_passes
// rounds), re-pricing the *whole sequence* (price_sequence with the slab
// cache modelled, the executor's default) for every candidate and adopting
// a candidate only when it is strictly cheaper AND the re-annotated
// sequence passes the static verifier. The heuristic compile is candidate
// 0 and the initial incumbent, so the result's priced makespan is <= the
// heuristic's by construction — the invariant the differential harness
// (tests/search_test.cpp) checks over randomized programs. Shapes the
// search cannot legally explore (fusion across a reduction barrier,
// double-buffered halo reads) are recorded as structured "not searchable:
// ..." diagnostics in the report, never silently skipped.
#pragma once

#include <span>

#include "oocc/compiler/lower.hpp"

namespace oocc::compiler {

/// One enumerated candidate's fate, recorded for the --dump-search report.
struct SearchCandidate {
  int pass = 0;             ///< coordinate-descent round (0 = baseline)
  int segment = -1;         ///< segment index (-1 = whole-sequence baseline)
  std::string describe;     ///< knob assignment, human-readable
  double priced_s = 0.0;    ///< priced sequence makespan (0 when pruned)
  bool priced = false;      ///< false when pruned before pricing
  bool adopted = false;     ///< became the incumbent
  std::string rejected;     ///< why it was pruned / rejected ("" if adopted
                            ///< or simply not cheaper)
};

/// Decision record of one search run (what --dump-search renders).
struct SearchReport {
  int statements = 0;       ///< source statements in the sequence
  int segments = 0;         ///< searchable segments they were split into
  int passes = 0;           ///< coordinate-descent rounds actually run
  int enumerated = 0;       ///< candidates generated (incl. pruned)
  int priced = 0;           ///< candidates priced against the objective
  int verified = 0;         ///< improving candidates verified
  double heuristic_priced_s = 0.0;  ///< baseline priced makespan
  double chosen_priced_s = 0.0;     ///< incumbent's priced makespan
  std::string chosen;               ///< incumbent knob description
  std::vector<SearchCandidate> candidates;
  /// Structured diagnostics for shapes the search skips by construction
  /// ("not searchable: ..."), e.g. fusing across a GAXPY reduction barrier.
  std::vector<std::string> not_searchable;
};

struct SearchResult {
  std::vector<NodeProgram> plans;
  SearchReport report;
};

/// Runs the global plan search over the analyzed program. `options.opt` is
/// ignored (callers arrive here via compile_sequence's kSearch dispatch or
/// directly); the heuristic baseline is compiled with a kHeuristic copy of
/// `options`. When options.verify is set, every adopted candidate passed
/// verify_sequence and the returned plans carry the verified stamp; with
/// it cleared the search trusts the pricer alone (mutation tests do this).
SearchResult search_sequence(const hpf::BoundProgram& program,
                             const CompileOptions& options);

/// Convenience: parse + analyze + search.
SearchResult search_sequence_source(std::string_view source,
                                    const CompileOptions& options);

/// The search objective: predicted makespan of the whole sequence under
/// the executor's defaults (slab cache on, one pool persisting across the
/// statements). Per plan: charged disk service + compute, minus the read
/// I/O its prefetching loops can overlap with compute — the sequence
/// generalization of estimate_plan_time_s. Exposed so tests and benches
/// rank plans with exactly the objective the searcher minimized.
double priced_sequence_makespan_s(std::span<const NodeProgram> plans,
                                  const io::DiskModel& disk,
                                  const sim::MachineCostModel& machine);

}  // namespace oocc::compiler
