#include "oocc/compiler/verify.hpp"

#include <algorithm>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <utility>

#include "oocc/compiler/cost.hpp"
#include "oocc/compiler/pretty.hpp"
#include "oocc/util/error.hpp"

namespace oocc::compiler {

namespace {

constexpr std::size_t kMaxDiagnostics = 64;
constexpr std::int64_t kMaxReplayEvents = std::int64_t{1} << 20;

/// Collects diagnostics with per-(code, plan, step, salt) deduplication, so
/// a step that misbehaves on every slab of every rank reports once.
class Sink {
 public:
  explicit Sink(VerifyReport& report) : report_(report) {}

  void add(const char* code, int plan_index, int rank,
           const std::string& message, const Step* step,
           const std::string& salt = {}) {
    std::ostringstream key;
    key << code << '#' << plan_index << '#' << static_cast<const void*>(step)
        << '#' << salt;
    if (!seen_.insert(key.str()).second) {
      return;
    }
    if (report_.diagnostics.size() >= kMaxDiagnostics) {
      report_.stats.truncated = true;
      return;
    }
    VerifyDiagnostic d;
    d.code = code;
    d.plan_index = plan_index;
    d.rank = rank;
    d.message = message;
    if (step != nullptr) {
      d.step = step_text(*step);
    }
    report_.diagnostics.push_back(std::move(d));
  }

  bool has(const char* code) const {
    for (const VerifyDiagnostic& d : report_.diagnostics) {
      if (d.code == code) {
        return true;
      }
    }
    return false;
  }

 private:
  VerifyReport& report_;
  std::set<std::string> seen_;
};

// --------------------------------------------------------------- structure

/// Lexical walk of one plan's step tree: declared loops, known arrays,
/// well-formed fields, slab steps inside an active ForEachSlab of their
/// loop, and writes only of data the current iteration staged. Returns
/// false when the tree is too broken to replay (V001-V004 / unknown
/// arrays), in which case the dynamic passes are skipped.
class StructureChecker {
 public:
  StructureChecker(const NodeProgram& plan, int plan_index, Sink& sink)
      : plan_(plan), plan_index_(plan_index), sink_(sink) {}

  bool run() {
    for (const SlabLoop& loop : plan_.loops) {
      if (!loops_.emplace(loop.name, &loop).second) {
        fatal("OOCC-V003", "duplicate slab loop '" + loop.name + "'",
              nullptr);
      }
      if (!plan_.arrays.contains(loop.space)) {
        fatal("OOCC-V002",
              "loop '" + loop.name + "' iterates unknown array '" +
                  loop.space + "'",
              nullptr);
      }
    }
    walk(plan_.steps);
    check_stencil_halo();
    return replayable_;
  }

 private:
  void fatal(const char* code, const std::string& message, const Step* step) {
    sink_.add(code, plan_index_, -1, message, step);
    replayable_ = false;
  }

  bool check_loop_ref(const Step& step, const std::string& name) {
    if (name.empty() || !loops_.contains(name)) {
      fatal("OOCC-V001", "step references undeclared loop '" + name + "'",
            &step);
      return false;
    }
    return true;
  }

  bool check_array_ref(const Step& step, const std::string& name) {
    if (name.empty() || !plan_.arrays.contains(name)) {
      fatal("OOCC-V002", "step references unknown array '" + name + "'",
            &step);
      return false;
    }
    return true;
  }

  /// The loop must be an *active* ForEachSlab enclosing the step: its slab
  /// section is otherwise undefined, and pins taken against it would never
  /// be released (the pin/unpin balance lives at the loop's iteration end).
  bool check_active(const Step& step, const std::string& loop) {
    if (std::find(active_.begin(), active_.end(), loop) == active_.end()) {
      fatal("OOCC-V004",
            "slab step for loop '" + loop +
                "' is not nested inside ForEachSlab " + loop +
                " (undefined slab section, unbalanced pins)",
            &step);
      return false;
    }
    return true;
  }

  void walk(const std::vector<Step>& steps) {
    for (const Step& step : steps) {
      walk(step);
    }
  }

  void walk(const Step& step) {
    if (step.halo < 0) {
      fatal("OOCC-V003", "negative halo width", &step);
      return;
    }
    switch (step.kind) {
      case StepKind::kForEachSlab: {
        if (!check_loop_ref(step, step.loop)) {
          return;
        }
        if (std::find(active_.begin(), active_.end(), step.loop) !=
            active_.end()) {
          fatal("OOCC-V003",
                "ForEachSlab re-enters already-active loop '" + step.loop +
                    "'",
                &step);
          return;
        }
        active_.push_back(step.loop);
        staged_[step.loop].clear();
        walk(step.body);
        staged_.erase(step.loop);
        active_.pop_back();
        return;
      }
      case StepKind::kForEachColumn:
        if (!check_loop_ref(step, step.loop) ||
            !check_active(step, step.loop)) {
          return;
        }
        column_loops_.push_back(step.loop);
        walk(step.body);
        column_loops_.pop_back();
        return;
      case StepKind::kReadSlab:
        if (check_loop_ref(step, step.loop) &&
            check_array_ref(step, step.array) &&
            check_active(step, step.loop)) {
          staged_[step.loop].insert(step.array);
        }
        return;
      case StepKind::kWriteSlab:
        if (check_loop_ref(step, step.loop) &&
            check_array_ref(step, step.array) &&
            check_active(step, step.loop)) {
          // Writing a slab nothing in this iteration staged stores
          // uninitialized buffer contents — the classic dropped-compute
          // mutation.
          bool staged = false;
          for (const std::string& loop : active_) {
            const auto it = staged_.find(loop);
            if (it != staged_.end() && it->second.contains(step.array)) {
              staged = true;
              break;
            }
          }
          if (!staged) {
            sink_.add("OOCC-V005", plan_index_, -1,
                      "WriteSlab of '" + step.array +
                          "' stores a slab no ReadSlab or compute step of "
                          "the current iteration staged",
                      &step);
          }
        }
        return;
      case StepKind::kComputeElementwise: {
        if (!check_loop_ref(step, step.loop) ||
            !check_active(step, step.loop)) {
          return;
        }
        if (step.stmt < 0 ||
            static_cast<std::size_t>(step.stmt) >= plan_.statements.size()) {
          fatal("OOCC-V003",
                "ComputeElementwise stmt#" + std::to_string(step.stmt) +
                    " is outside the plan's " +
                    std::to_string(plan_.statements.size()) + " statement(s)",
                &step);
          return;
        }
        const std::string& lhs =
            plan_.statements[static_cast<std::size_t>(step.stmt)].lhs;
        if (check_array_ref(step, lhs)) {
          staged_[step.loop].insert(lhs);
        }
        return;
      }
      case StepKind::kComputeStencil: {
        if (!check_loop_ref(step, step.loop) ||
            !check_active(step, step.loop)) {
          return;
        }
        if (step.stmt < 0 ||
            static_cast<std::size_t>(step.stmt) >= plan_.stencils.size()) {
          fatal("OOCC-V003",
                "ComputeStencil stmt#" + std::to_string(step.stmt) +
                    " is outside the plan's " +
                    std::to_string(plan_.stencils.size()) + " stencil(s)",
                &step);
          return;
        }
        const std::string& lhs =
            plan_.stencils[static_cast<std::size_t>(step.stmt)].lhs;
        if (check_array_ref(step, lhs)) {
          staged_[step.loop].insert(lhs);
        }
        return;
      }
      case StepKind::kComputeGaxpyPartial:
        if (check_loop_ref(step, step.loop)) {
          check_active(step, step.loop);
        }
        if (check_loop_ref(step, step.with)) {
          check_active(step, step.with);
        }
        return;
      case StepKind::kReduceSum:
        if (!check_array_ref(step, step.array) ||
            !check_loop_ref(step, step.with) ||
            !check_active(step, step.with)) {
          return;
        }
        // The staged output column index comes from the enclosing
        // per-column iteration; without one there is no global index.
        if (std::find(column_loops_.begin(), column_loops_.end(),
                      step.with) == column_loops_.end()) {
          fatal("OOCC-V004",
                "ReduceSum is not nested inside ForEachColumn " + step.with +
                    " (no output column index)",
                &step);
        }
        return;
      case StepKind::kExchangeHalo:
        check_loop_ref(step, step.loop);
        check_array_ref(step, step.array);
        return;
      case StepKind::kBarrier:
        return;
    }
  }

  /// OOCC-V012: a stencil of dependence distance d needs ghost columns d
  /// wide (ExchangeHalo, when there are neighbours) and a slab read widened
  /// by at least d — otherwise interior elements read stale or absent
  /// neighbour data.
  void check_stencil_halo() {
    if (plan_.stencils.empty()) {
      return;
    }
    const StencilStmt& st = plan_.stencils.front();
    std::int64_t exchange_halo = -1;
    std::int64_t read_halo = -1;
    const Step* read_step = nullptr;
    scan_stencil(plan_.steps, st.source, exchange_halo, read_halo,
                 &read_step);
    if (plan_.nprocs > 1 && exchange_halo < st.halo) {
      sink_.add("OOCC-V012", plan_index_, -1,
                exchange_halo < 0
                    ? "stencil of distance " + std::to_string(st.halo) +
                          " has no ExchangeHalo of '" + st.source +
                          "' (ghost columns never arrive)"
                    : "ExchangeHalo trades " + std::to_string(exchange_halo) +
                          " edge column(s) but the stencil reaches " +
                          std::to_string(st.halo),
                nullptr, st.source);
    }
    if (read_halo < st.halo) {
      sink_.add("OOCC-V012", plan_index_, -1,
                "the sweep reads '" + st.source + "' widened by " +
                    std::to_string(std::max<std::int64_t>(read_halo, 0)) +
                    " column(s) but the stencil reaches " +
                    std::to_string(st.halo),
                read_step, st.source);
    }
  }

  void scan_stencil(const std::vector<Step>& steps, const std::string& source,
                    std::int64_t& exchange_halo, std::int64_t& read_halo,
                    const Step** read_step) {
    for (const Step& step : steps) {
      if (step.kind == StepKind::kExchangeHalo && step.array == source) {
        exchange_halo = std::max(exchange_halo, step.halo);
      }
      if (step.kind == StepKind::kReadSlab && step.array == source) {
        read_halo = std::max(read_halo, step.halo);
        *read_step = &step;
      }
      scan_stencil(step.body, source, exchange_halo, read_halo, read_step);
    }
  }

  const NodeProgram& plan_;
  int plan_index_;
  Sink& sink_;
  std::map<std::string, const SlabLoop*> loops_;
  std::vector<std::string> active_;
  std::vector<std::string> column_loops_;
  std::map<std::string, std::set<std::string>> staged_;
  bool replayable_ = true;
};

// ----------------------------------------------------------------- replay

/// Maps a local section on `proc` to the global rectangles it images to,
/// decomposed along the distributed axis's ownership runs (one rectangle
/// for BLOCK, one per dealt block for BLOCK-CYCLIC, per element for
/// CYCLIC). Sections are clamped to the local extents first — bounds
/// violations are reported separately and must not corrupt the ownership
/// algebra.
std::vector<io::Section> global_rects(const hpf::ArrayDistribution& dist,
                                      int proc, io::Section sec) {
  sec.row0 = std::clamp<std::int64_t>(sec.row0, 0, dist.local_rows(proc));
  sec.row1 = std::clamp<std::int64_t>(sec.row1, 0, dist.local_rows(proc));
  sec.col0 = std::clamp<std::int64_t>(sec.col0, 0, dist.local_cols(proc));
  sec.col1 = std::clamp<std::int64_t>(sec.col1, 0, dist.local_cols(proc));
  std::vector<io::Section> out;
  if (sec.empty()) {
    return out;
  }
  const auto runs = [&](const hpf::DimDistribution& d, std::int64_t lo,
                        std::int64_t hi) {
    std::vector<std::pair<std::int64_t, std::int64_t>> r;
    for (std::int64_t l = lo; l < hi;) {
      const std::int64_t e = std::min(hi, d.local_run_end(proc, l));
      const std::int64_t g0 = d.local_to_global(proc, l);
      r.emplace_back(g0, g0 + (e - l));
      l = e;
    }
    return r;
  };
  for (const auto& [r0, r1] : runs(dist.row_dist(), sec.row0, sec.row1)) {
    for (const auto& [c0, c1] : runs(dist.col_dist(), sec.col0, sec.col1)) {
      out.push_back(io::Section{r0, r1, c0, c1});
    }
  }
  return out;
}

bool rects_overlap(const std::vector<io::Section>& a,
                   const std::vector<io::Section>& b) {
  for (const io::Section& x : a) {
    for (const io::Section& y : b) {
      if (x.overlaps(y)) {
        return true;
      }
    }
  }
  return false;
}

/// Mirror of the executor's non-pool reservations for a GAXPY plan (the
/// reduction temporary plus the staged-output-column buffer). Must agree
/// with gaxpy_side_reservation in compiler/cost.cpp and the executor's
/// reserve calls, or the budget check drifts from what execute() enforces.
std::int64_t side_reservation(const NodeProgram& plan, int proc) {
  if (plan.kind != ProgramKind::kGaxpy) {
    return 0;
  }
  for (const SlabLoop& loop : plan.loops) {
    if (loop.space == plan.a) {
      const PlanArray& pa = plan.array(plan.a);
      const runtime::SlabIterator iter(pa.dist.local_rows(proc),
                                       pa.dist.local_cols(proc),
                                       loop.orientation,
                                       loop.capacity_elements);
      const std::int64_t full_rows = iter.section(0).rows();
      return full_rows + std::max(plan.memory.slab_c, full_rows);
    }
  }
  return 0;
}

/// A write one rank performed: local section plus its global image, the
/// barrier interval it happened in, and the sweep (epoch) it belongs to —
/// stencil plans replay the swapped ping-pong sweep as a second epoch.
struct WriteEvent {
  std::string array;  ///< resolved name (after stencil ping-pong)
  io::Section local;
  std::vector<io::Section> global;
  std::int64_t interval = 0;
  int epoch = 0;
  const Step* step = nullptr;
};

/// Ghost columns one rank received through an ExchangeHalo: global
/// rectangles owned by a *different* rank, read in `interval`.
struct GhostRead {
  std::string array;
  std::vector<io::Section> global;
  std::int64_t interval = 0;
  const Step* step = nullptr;
};

/// Everything one rank's replay produced.
struct RankTrace {
  std::vector<WriteEvent> writes;
  std::vector<GhostRead> ghosts;
  std::vector<std::string> collectives;  ///< signature per collective event
  std::int64_t intervals = 0;
  std::int64_t peak_pinned = 0;
  const Step* peak_step = nullptr;
  std::int64_t events = 0;
  bool truncated = false;
};

/// Replays one plan's dynamic slab schedule for one rank, mirroring the
/// executor's StepExecutor (and cost.cpp's TraceCollector): per-loop
/// SlabIterator state, pins held until the owning ForEachSlab iteration
/// ends, stencil ping-pong resolution for the swapped sweep.
class RankReplayer {
 public:
  RankReplayer(const NodeProgram& plan, int plan_index, int proc, Sink& sink,
               RankTrace& trace)
      : plan_(plan), plan_index_(plan_index), proc_(proc), sink_(sink),
        trace_(trace) {
    for (const SlabLoop& loop : plan_.loops) {
      const PlanArray& space = plan_.array(loop.space);
      states_.emplace(loop.name,
                      LoopState{runtime::SlabIterator(
                          space.dist.local_rows(proc), space.dist.local_cols(proc),
                          loop.orientation, loop.capacity_elements)});
    }
  }

  /// One sweep; stencil plans call this twice (epoch 1 swapped), interval
  /// and collective state carrying over exactly as the convergence driver's
  /// back-to-back sweeps do.
  void run(int epoch, bool swapped) {
    epoch_ = epoch;
    swapped_ = swapped && !plan_.stencils.empty();
    walk(plan_.steps);
  }

 private:
  struct LoopState {
    explicit LoopState(runtime::SlabIterator it) : iter(std::move(it)) {}
    runtime::SlabIterator iter;
    io::Section section{};
    std::int64_t column = -1;  ///< current ForEachColumn global offset
    std::vector<std::string> pins;
  };

  const std::string& resolve(const std::string& name) const {
    return stencil_resolve(plan_, swapped_, name);
  }

  bool count_event() {
    if (++trace_.events > kMaxReplayEvents) {
      trace_.truncated = true;
      return false;
    }
    return true;
  }

  static std::string pin_key(const std::string& array,
                             const io::Section& sec) {
    std::ostringstream oss;
    oss << array << '|' << sec.row0 << ',' << sec.row1 << ',' << sec.col0
        << ',' << sec.col1;
    return oss.str();
  }

  /// Pins (array, section) until the owning loop's iteration ends. The
  /// pool holds ONE entry per (array, section), so re-pinning the same key
  /// refcounts instead of double-charging — exactly the budget the
  /// executor's SlabBufferPool reserves.
  void pin(LoopState& owner, const std::string& array,
           const io::Section& sec, const Step& step) {
    std::string key = pin_key(array, sec);
    auto [it, inserted] = pinned_.try_emplace(key, 0, sec.elements());
    ++it->second.first;
    if (inserted) {
      cur_pinned_ += it->second.second;
      if (cur_pinned_ > trace_.peak_pinned) {
        trace_.peak_pinned = cur_pinned_;
        trace_.peak_step = &step;
      }
    }
    owner.pins.push_back(std::move(key));
  }

  void unpin_all(LoopState& loop) {
    for (const std::string& key : loop.pins) {
      const auto it = pinned_.find(key);
      if (it != pinned_.end() && --it->second.first == 0) {
        cur_pinned_ -= it->second.second;
        pinned_.erase(it);
      }
    }
    loop.pins.clear();
  }

  /// Clamped bounds check of a section against the resolved array's local
  /// extents; out-of-bounds reads/writes are the V020/V021 diagnostics.
  void check_bounds(const Step& step, const char* code,
                    const std::string& array, const io::Section& sec,
                    const char* what) {
    const PlanArray& pa = plan_.array(array);
    const std::int64_t rows = pa.dist.local_rows(proc_);
    const std::int64_t cols = pa.dist.local_cols(proc_);
    if (sec.row0 < 0 || sec.col0 < 0 || sec.row1 > rows || sec.col1 > cols) {
      std::ostringstream oss;
      oss << what << " section [" << sec.row0 << ',' << sec.row1 << ")x["
          << sec.col0 << ',' << sec.col1 << ") of '" << array
          << "' exceeds its local " << rows << 'x' << cols << " extent";
      sink_.add(code, plan_index_, proc_, oss.str(), &step);
    }
  }

  void walk(const std::vector<Step>& steps) {
    for (const Step& step : steps) {
      if (trace_.truncated) {
        return;
      }
      walk(step);
    }
  }

  void walk(const Step& step) {
    switch (step.kind) {
      case StepKind::kForEachSlab: {
        LoopState& loop = states_.at(step.loop);
        for (std::int64_t i = 0; i < loop.iter.count(); ++i) {
          loop.section = loop.iter.section(i);
          walk(step.body);
          unpin_all(loop);
          if (trace_.truncated) {
            return;
          }
        }
        return;
      }
      case StepKind::kForEachColumn: {
        LoopState& loop = states_.at(step.loop);
        for (std::int64_t m = 0; m < loop.section.cols(); ++m) {
          loop.column = loop.section.col0 + m;
          if (trace_.truncated) {
            return;
          }
          walk(step.body);
        }
        loop.column = -1;
        return;
      }
      case StepKind::kReadSlab: {
        if (!count_event()) {
          return;
        }
        LoopState& loop = states_.at(step.loop);
        const std::string& array = resolve(step.array);
        io::Section sec = loop.section;
        check_bounds(step, "OOCC-V020", array, sec, "ReadSlab");
        if (step.halo > 0) {
          sec = widen_columns(sec, step.halo,
                              plan_.array(array).dist.local_cols(proc_));
        }
        pin(loop, array, sec, step);
        return;
      }
      case StepKind::kWriteSlab: {
        if (!count_event()) {
          return;
        }
        LoopState& loop = states_.at(step.loop);
        const std::string& array = resolve(step.array);
        const io::Section sec = loop.section;
        check_bounds(step, "OOCC-V021", array, sec, "WriteSlab");
        const PlanArray& pa = plan_.array(array);
        trace_.writes.push_back(WriteEvent{
            array, sec, global_rects(pa.dist, proc_, sec), interval_, epoch_,
            &step});
        pin(loop, array, sec, step);
        return;
      }
      case StepKind::kComputeElementwise: {
        LoopState& loop = states_.at(step.loop);
        const std::string& lhs = resolve(
            plan_.statements.at(static_cast<std::size_t>(step.stmt)).lhs);
        pin(loop, lhs, loop.section, step);
        return;
      }
      case StepKind::kComputeStencil: {
        LoopState& loop = states_.at(step.loop);
        const std::string& lhs = resolve(
            plan_.stencils.at(static_cast<std::size_t>(step.stmt)).lhs);
        pin(loop, lhs, loop.section, step);
        return;
      }
      case StepKind::kComputeGaxpyPartial:
        return;  // reads already-pinned slabs into the side-reserved temp
      case StepKind::kReduceSum: {
        if (!count_event()) {
          return;
        }
        const std::string& array = resolve(step.array);
        trace_.collectives.push_back("reduce:" + array);
        reduce_write(step, array);
        ++interval_;  // the global sum synchronizes every rank
        ++trace_.intervals;
        return;
      }
      case StepKind::kExchangeHalo: {
        const std::string& array = resolve(step.array);
        trace_.collectives.push_back("exchange:" + array + ":" +
                                     std::to_string(step.halo));
        if (plan_.nprocs == 1 || step.halo <= 0) {
          return;
        }
        if (!count_event()) {
          return;
        }
        const PlanArray& pa = plan_.array(array);
        const std::int64_t rows = pa.dist.local_rows(proc_);
        const std::int64_t nlc = pa.dist.local_cols(proc_);
        // Own edge columns are read and sent; ghosts from each neighbour
        // are held transiently. Model the momentary working set.
        std::int64_t transient = 0;
        const auto ghost_from = [&](int neighbour, bool low_edge) {
          const std::int64_t ncols = pa.dist.local_cols(neighbour);
          const std::int64_t d = std::min(step.halo, ncols);
          const io::Section remote =
              low_edge ? io::Section{0, pa.dist.local_rows(neighbour), 0, d}
                       : io::Section{0, pa.dist.local_rows(neighbour),
                                     ncols - d, ncols};
          trace_.ghosts.push_back(
              GhostRead{array, global_rects(pa.dist, neighbour, remote),
                        interval_, &step});
          transient += remote.elements();
        };
        if (proc_ > 0) {
          // Receive the left neighbour's high edge; send our low edge.
          ghost_from(proc_ - 1, /*low_edge=*/false);
          transient += io::Section{0, rows, 0, std::min(step.halo, nlc)}
                           .elements();
        }
        if (proc_ < plan_.nprocs - 1) {
          ghost_from(proc_ + 1, /*low_edge=*/true);
          transient +=
              io::Section{0, rows, nlc - std::min(step.halo, nlc), nlc}
                  .elements();
        }
        if (cur_pinned_ + transient > trace_.peak_pinned) {
          trace_.peak_pinned = cur_pinned_ + transient;
          trace_.peak_step = &step;
        }
        return;
      }
      case StepKind::kBarrier:
        trace_.collectives.emplace_back("barrier");
        ++interval_;
        ++trace_.intervals;
        return;
    }
  }

  /// A ReduceSum stages one output (sub)column on the owner of the current
  /// global column (Figure 9/12's GLOBAL_SUM + owner store). The rows are
  /// the active row-slab's range when the A sweep is a row stripmine
  /// (Figure 12), the full column otherwise (Figure 9).
  void reduce_write(const Step& step, const std::string& array) {
    const PlanArray& out = plan_.array(array);
    const LoopState& col_loop = states_.at(step.with);
    if (col_loop.column < 0) {
      return;  // structurally rejected already (V004)
    }
    const SlabLoop* with_decl = nullptr;
    for (const SlabLoop& loop : plan_.loops) {
      if (loop.name == step.with) {
        with_decl = &loop;
      }
    }
    if (with_decl == nullptr) {
      return;
    }
    // Global column index: the column loop streams B, whose column axis is
    // collapsed for the GAXPY layout, so local == global; go through the
    // distribution anyway so exotic layouts stay honest.
    const std::int64_t g = plan_.array(with_decl->space)
                               .dist.col_dist()
                               .local_to_global(proc_, col_loop.column);
    if (out.dist.col_dist().owner(g) != proc_ &&
        out.dist.col_dist().kind() != hpf::DistKind::kCollapsed) {
      return;
    }
    std::int64_t row0 = 0;
    std::int64_t row1 = out.dist.local_rows(proc_);
    if (plan_.kind == ProgramKind::kGaxpy) {
      // Figure 12's row stripmine of A stages only the active row range of
      // the output column; Figure 9 (column orientation) stages it whole.
      for (const SlabLoop& loop : plan_.loops) {
        if (loop.space == plan_.a &&
            loop.orientation == runtime::SlabOrientation::kRowSlabs) {
          const LoopState& a_state = states_.at(loop.name);
          if (!a_state.section.empty()) {
            row0 = a_state.section.row0;
            row1 = a_state.section.row1;
          }
        }
      }
    }
    const io::Section local{row0, row1, out.dist.col_dist().global_to_local(g),
                            out.dist.col_dist().global_to_local(g) + 1};
    trace_.writes.push_back(WriteEvent{array, local,
                                       global_rects(out.dist, proc_, local),
                                       interval_, epoch_, &step});
  }

  const NodeProgram& plan_;
  int plan_index_;
  int proc_;
  Sink& sink_;
  RankTrace& trace_;
  bool swapped_ = false;
  int epoch_ = 0;
  std::int64_t interval_ = 0;
  std::map<std::string, LoopState> states_;
  std::map<std::string, std::pair<int, std::int64_t>> pinned_;  ///< key -> (pins, elements)
  std::int64_t cur_pinned_ = 0;
};

// ------------------------------------------------------ cross-rank checks

void check_collectives(const std::vector<RankTrace>& traces, int plan_index,
                       Sink& sink) {
  for (std::size_t r = 1; r < traces.size(); ++r) {
    const auto& a = traces[0].collectives;
    const auto& b = traces[r].collectives;
    const std::size_t n = std::min(a.size(), b.size());
    for (std::size_t i = 0; i < n; ++i) {
      if (a[i] != b[i]) {
        sink.add("OOCC-V040", plan_index, static_cast<int>(r),
                 "collective sequence diverges from rank 0 at event " +
                     std::to_string(i) + ": rank 0 runs '" + a[i] +
                     "', rank " + std::to_string(r) + " runs '" + b[i] + "'",
                 nullptr, std::to_string(r));
        return;
      }
    }
    if (a.size() != b.size()) {
      sink.add("OOCC-V040", plan_index, static_cast<int>(r),
               "rank 0 runs " + std::to_string(a.size()) +
                   " collective(s) but rank " + std::to_string(r) + " runs " +
                   std::to_string(b.size()) +
                   " (a rank would block forever)",
               nullptr, std::to_string(r));
      return;
    }
  }
}

void check_races(const NodeProgram& plan, const std::vector<RankTrace>& traces,
                 int plan_index, Sink& sink) {
  // Write-write (OOCC-V010): for an array with a distributed axis, every
  // in-bounds local write images into the writer's owned global region, so
  // two ranks' writes are disjoint *by construction* — the ownership
  // algebra is the proof, and V020/V021 guard its precondition. Only
  // arrays without a distributed axis (replicated) can collide.
  for (std::size_t p = 0; p < traces.size(); ++p) {
    for (const WriteEvent& wa : traces[p].writes) {
      if (plan.array(wa.array).dist.axis() != hpf::DistAxis::kNone) {
        continue;
      }
      // A ReduceSum's store is itself a synchronized collective writing
      // the identical global sum on every rank — replicated agreement,
      // not a race.
      if (wa.step != nullptr && wa.step->kind == StepKind::kReduceSum) {
        continue;
      }
      for (std::size_t q = p + 1; q < traces.size(); ++q) {
        for (const WriteEvent& wb : traces[q].writes) {
          if (wb.step != nullptr && wb.step->kind == StepKind::kReduceSum) {
            continue;
          }
          if (wa.array == wb.array && wa.interval == wb.interval &&
              rects_overlap(wa.global, wb.global)) {
            std::ostringstream oss;
            oss << "ranks " << p << " and " << q
                << " write overlapping global sections of replicated '"
                << wa.array << "' in the same barrier interval "
                << wa.interval;
            sink.add("OOCC-V010", plan_index, static_cast<int>(p), oss.str(),
                     wa.step, wa.array);
          }
        }
      }
    }
  }
  // Ghost-read vs write (OOCC-V011): an ExchangeHalo's ghost columns are
  // another rank's data; if that rank writes them in the same barrier
  // interval, a threads backend has a read-write race (the dropped-barrier
  // hazard). Exchanges reading data written in an *earlier* interval are
  // the sanctioned pattern.
  for (std::size_t p = 0; p < traces.size(); ++p) {
    for (const GhostRead& gr : traces[p].ghosts) {
      for (std::size_t q = 0; q < traces.size(); ++q) {
        if (q == p) {
          continue;
        }
        for (const WriteEvent& wb : traces[q].writes) {
          if (gr.array == wb.array && gr.interval == wb.interval &&
              rects_overlap(gr.global, wb.global)) {
            std::ostringstream oss;
            oss << "rank " << p << " receives ghost columns of '" << gr.array
                << "' that rank " << q
                << " writes in the same barrier interval " << gr.interval
                << " (missing Barrier between sweep and exchange?)";
            sink.add("OOCC-V011", plan_index, static_cast<int>(p), oss.str(),
                     gr.step, gr.array);
          }
        }
      }
    }
  }
}

void check_coverage(const NodeProgram& plan,
                    const std::vector<RankTrace>& traces, int plan_index,
                    Sink& sink) {
  // Which (epoch, array) pairs must be covered? Declared outputs always
  // must (so a dropped write of an entire array is still a hole, not a
  // vacuous pass), plus anything any rank actually wrote.
  std::set<std::pair<int, std::string>> written;
  for (const auto& [name, pa] : plan.arrays) {
    if (pa.is_output) {
      written.emplace(0, name);
    }
  }
  for (const RankTrace& t : traces) {
    for (const WriteEvent& w : t.writes) {
      written.emplace(w.epoch, w.array);
    }
  }
  for (std::size_t p = 0; p < traces.size(); ++p) {
    for (const auto& [epoch, array] : written) {
      std::vector<const WriteEvent*> mine;
      for (const WriteEvent& w : traces[p].writes) {
        if (w.epoch == epoch && w.array == array) {
          mine.push_back(&w);
        }
      }
      // Same-rank overlap (OOCC-V023): each element must be produced once.
      std::int64_t area = 0;
      bool overlapped = false;
      for (std::size_t i = 0; i < mine.size(); ++i) {
        area += mine[i]->local.elements();
        for (std::size_t j = i + 1; !overlapped && j < mine.size(); ++j) {
          if (mine[i]->local.overlaps(mine[j]->local)) {
            sink.add("OOCC-V023", plan_index, static_cast<int>(p),
                     "two writes of '" + array +
                         "' touch overlapping local sections within one "
                         "sweep (each element must be produced exactly once)",
                     mine[j]->step, array);
            overlapped = true;
          }
        }
      }
      // Exact tiling (OOCC-V022): without overlaps, covering the owned
      // region exactly once is an area identity.
      const std::int64_t owned =
          plan.array(array).dist.local_elements(static_cast<int>(p));
      if (area != owned) {
        std::ostringstream oss;
        oss << "write sections of '" << array << "' cover " << area
            << " of the " << owned << " locally owned element(s)"
            << (area < owned ? " (holes keep stale data)"
                             : " (elements written more than once)");
        sink.add("OOCC-V022", plan_index, static_cast<int>(p), oss.str(),
                 mine.empty() ? nullptr : mine.front()->step,
                 array + "@" + std::to_string(epoch));
      }
    }
  }
}

void check_budget(const NodeProgram& plan,
                  const std::vector<RankTrace>& traces, int plan_index,
                  Sink& sink, VerifyReport& report) {
  if (plan.memory_budget_elements <= 0) {
    return;  // hand-built plan without a declared budget: nothing to check
  }
  for (std::size_t p = 0; p < traces.size(); ++p) {
    const std::int64_t side = side_reservation(plan, static_cast<int>(p));
    const std::int64_t peak = traces[p].peak_pinned + side;
    if (peak > report.stats.peak_pinned_elements) {
      report.stats.peak_pinned_elements = peak;
      report.stats.side_reservation_elements = side;
      report.stats.peak_rank = static_cast<int>(p);
    }
    if (peak > plan.memory_budget_elements) {
      std::ostringstream oss;
      oss << "peak working set of " << traces[p].peak_pinned
          << " pinned element(s)";
      if (side > 0) {
        oss << " + " << side << " reduction-side element(s)";
      }
      oss << " exceeds the memory budget of " << plan.memory_budget_elements
          << " (the executor would throw ResourceExhausted mid-sweep)";
      sink.add("OOCC-V030", plan_index, static_cast<int>(p), oss.str(),
               traces[p].peak_step);
    }
  }
}

// ------------------------------------------------------------- reuse check

/// A structural copy of a plan sufficient to replay its slab schedule:
/// statements and stencils keep their names/halos but drop the expression
/// trees (NodeProgram is move-only because of them; the reuse annotator
/// never dereferences an rhs).
NodeProgram replay_clone(const NodeProgram& plan) {
  NodeProgram c;
  c.kind = plan.kind;
  c.nprocs = plan.nprocs;
  c.n = plan.n;
  c.a = plan.a;
  c.b = plan.b;
  c.c = plan.c;
  c.a_orientation = plan.a_orientation;
  c.prefetch = plan.prefetch;
  c.elementwise_cols = plan.elementwise_cols;
  for (const ElementwiseStmt& st : plan.statements) {
    ElementwiseStmt s;
    s.lhs = st.lhs;
    s.forall_var = st.forall_var;
    c.statements.push_back(std::move(s));
  }
  for (const StencilStmt& st : plan.stencils) {
    StencilStmt s;
    s.lhs = st.lhs;
    s.source = st.source;
    s.forall_var = st.forall_var;
    s.halo = st.halo;
    s.row_halo = st.row_halo;
    c.stencils.push_back(std::move(s));
  }
  c.loops = plan.loops;
  c.steps = plan.steps;
  c.arrays = plan.arrays;
  c.memory = plan.memory;
  c.memory_budget_elements = plan.memory_budget_elements;
  return c;
}

void compare_distances(const std::vector<Step>& got,
                       const std::vector<Step>& want, int plan_index,
                       Sink& sink) {
  for (std::size_t i = 0; i < got.size() && i < want.size(); ++i) {
    const double g = got[i].reuse_distance;
    const double w = want[i].reuse_distance;
    if (g != w) {
      std::ostringstream oss;
      oss << "reuse_distance " << g << " disagrees with the replayed slab "
          << "schedule (expected " << w
          << "); the pool would mis-rank this slab for eviction";
      sink.add("OOCC-V041", plan_index, -1, oss.str(), &got[i]);
    }
    compare_distances(got[i].body, want[i].body, plan_index, sink);
  }
}

/// OOCC-V041: re-derives the reuse annotations on replay clones of the
/// whole sequence (annotate_reuse_distances' own scope) and compares.
void check_reuse_annotations(std::span<const NodeProgram> plans, Sink& sink) {
  std::vector<NodeProgram> clones;
  clones.reserve(plans.size());
  for (const NodeProgram& plan : plans) {
    clones.push_back(replay_clone(plan));
  }
  annotate_reuse_distances(
      std::span<NodeProgram>(clones.data(), clones.size()));
  for (std::size_t i = 0; i < plans.size(); ++i) {
    compare_distances(plans[i].steps, clones[i].steps, static_cast<int>(i),
                      sink);
  }
}

}  // namespace

std::string VerifyReport::to_string() const {
  std::ostringstream oss;
  oss << "verifier: " << stats.plans << " plan(s), " << stats.ranks
      << " rank(s) replayed, " << stats.events << " event(s), "
      << stats.intervals << " barrier interval(s)\n";
  oss << "peak working set: " << stats.peak_pinned_elements << " of "
      << stats.budget_elements << " budgeted element(s)";
  if (stats.side_reservation_elements > 0) {
    oss << " (incl. " << stats.side_reservation_elements
        << " reduction-side)";
  }
  oss << " on rank " << stats.peak_rank << "\n";
  if (ok()) {
    oss << "result: OK — no violations\n";
    return oss.str();
  }
  oss << "result: FAIL — " << diagnostics.size() << " violation(s)"
      << (stats.truncated ? " (truncated)" : "") << "\n";
  for (const VerifyDiagnostic& d : diagnostics) {
    oss << d.code << " [plan " << d.plan_index;
    if (d.rank >= 0) {
      oss << ", rank " << d.rank;
    }
    oss << "] " << d.message << "\n";
    if (!d.step.empty()) {
      oss << "  step: " << d.step << "\n";
    }
  }
  return oss.str();
}

VerifyReport verify_sequence(std::span<const NodeProgram> plans,
                             const VerifyOptions& options) {
  VerifyReport report;
  report.stats.plans = static_cast<int>(plans.size());
  Sink sink(report);
  bool all_replayable = true;
  for (std::size_t i = 0; i < plans.size(); ++i) {
    const NodeProgram& plan = plans[i];
    report.stats.ranks = std::max(report.stats.ranks, plan.nprocs);
    report.stats.budget_elements =
        std::max(report.stats.budget_elements, plan.memory_budget_elements);
    const bool replayable =
        StructureChecker(plan, static_cast<int>(i), sink).run();
    if (!replayable) {
      all_replayable = false;
      continue;
    }
    std::vector<RankTrace> traces(static_cast<std::size_t>(plan.nprocs));
    for (int p = 0; p < plan.nprocs; ++p) {
      RankReplayer replayer(plan, static_cast<int>(i), p, sink,
                            traces[static_cast<std::size_t>(p)]);
      replayer.run(/*epoch=*/0, /*swapped=*/false);
      if (plan.kind == ProgramKind::kStencil) {
        // The convergence driver re-runs the sweep ping-ponged; replaying
        // it as a second epoch checks the steady-state schedule — the one
        // whose exchange reads what the previous sweep wrote.
        replayer.run(/*epoch=*/1, /*swapped=*/true);
      }
      report.stats.events += traces[static_cast<std::size_t>(p)].events;
      report.stats.intervals =
          std::max(report.stats.intervals,
                   traces[static_cast<std::size_t>(p)].intervals);
      if (traces[static_cast<std::size_t>(p)].truncated) {
        report.stats.truncated = true;
      }
    }
    check_collectives(traces, static_cast<int>(i), sink);
    if (!report.stats.truncated && !sink.has("OOCC-V040")) {
      // Interval numbering only aligns across ranks when the collective
      // sequences do; racing checks against skewed intervals would report
      // noise on top of the real V040.
      check_races(plan, traces, static_cast<int>(i), sink);
    }
    if (!report.stats.truncated) {
      check_coverage(plan, traces, static_cast<int>(i), sink);
    }
    check_budget(plan, traces, static_cast<int>(i), sink, report);
  }
  if (options.check_reuse && all_replayable && !report.stats.truncated) {
    check_reuse_annotations(plans, sink);
  }
  return report;
}

VerifyReport verify_plan(const NodeProgram& plan,
                         const VerifyOptions& options) {
  return verify_sequence(std::span<const NodeProgram>(&plan, 1), options);
}

void verify_sequence_or_throw(std::span<const NodeProgram> plans,
                              const VerifyOptions& options) {
  const VerifyReport report = verify_sequence(plans, options);
  if (!report.ok()) {
    OOCC_THROW(ErrorCode::kVerifyError,
               "the slab program failed static verification\n"
                   << report.to_string());
  }
}

void verify_or_throw(const NodeProgram& plan, const VerifyOptions& options) {
  verify_sequence_or_throw(std::span<const NodeProgram>(&plan, 1), options);
}

}  // namespace oocc::compiler
