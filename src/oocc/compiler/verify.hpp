// Static slab-program verification (the gate before execution).
//
// The paper's bet is that out-of-core programs are analyzable at compile
// time: the compiler already prices every plan exactly, and this pass
// completes the story by *proving* a step program safe to run before any
// rank executes it. The ROADMAP's native-threads backend depends on it —
// before P simulated processors become P real threads, race freedom has to
// be a checked property of the IR, not a hope.
//
// verify_plan / verify_sequence replay the step program symbolically for
// every rank (the same SlabIterator walk the executor, the pricer and the
// reuse annotator use) and check, per rank and across ranks via the
// ownership-interval algebra in hpf::DimDistribution:
//
//  * structure   — declared loops, known arrays, well-formed steps, slab
//                  steps inside their loops, writes of staged data only
//                  (OOCC-V001..V005);
//  * races       — no two ranks write overlapping global sections within a
//                  barrier interval, and no rank reads ghost data another
//                  rank writes in the same interval (OOCC-V010..V012);
//  * coverage    — every read in bounds, every output's write sections tile
//                  its owned region exactly once (OOCC-V020..V023);
//  * budget      — the peak simultaneously-pinned working set (plus the
//                  GAXPY side reservations) fits the memory budget, turning
//                  runtime kResourceExhausted failures into compile-time
//                  diagnostics (OOCC-V030);
//  * schedule    — the collective sequence (Barrier / ReduceSum /
//                  ExchangeHalo) is identical on every rank, and the
//                  reuse_distance annotations match a fresh replay
//                  (OOCC-V040..V041).
//
// Every violation carries a stable OOCC-V0xx code plus the pretty-printed
// offending step. compile()/compile_sequence() run the verifier by default
// and stamp NodeProgram::verified; the executor re-verifies unstamped
// (hand-built or mutated) plans unless told not to. docs/verification.md
// has the full check catalogue.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "oocc/compiler/plan.hpp"

namespace oocc::compiler {

/// One violation found by the verifier.
struct VerifyDiagnostic {
  std::string code;     ///< stable identifier, e.g. "OOCC-V022"
  std::string message;  ///< human-readable description
  std::string step;     ///< pretty-printed offending step ("" if structural)
  int plan_index = 0;   ///< which plan of the sequence (0-based)
  int rank = -1;        ///< offending rank; -1 = structural or cross-rank
};

/// Replay statistics, reported even when the program verifies clean
/// (oocc_compile --dump-verify prints them).
struct VerifyStats {
  int plans = 0;
  int ranks = 0;             ///< ranks replayed (the plans' nprocs)
  std::int64_t events = 0;   ///< slab I/O / exchange events across all ranks
  std::int64_t intervals = 0;  ///< barrier intervals (max over ranks)
  std::int64_t peak_pinned_elements = 0;  ///< worst simultaneous working set
  std::int64_t side_reservation_elements = 0;  ///< non-pool GAXPY buffers
  std::int64_t budget_elements = 0;       ///< budget the peak is checked against
  int peak_rank = 0;
  /// Set when the replay or the diagnostic list hit its cap; the report is
  /// then a prefix of the truth, never wrong but possibly incomplete.
  bool truncated = false;
};

struct VerifyOptions {
  /// Check the reuse_distance annotations against a fresh replay
  /// (OOCC-V041). Disable when verifying a plan outside the annotation
  /// scope it was compiled in (the executor does this for unstamped plans,
  /// whose sequence-wide distances a lone replay cannot reconstruct).
  bool check_reuse = true;
};

struct VerifyReport {
  std::vector<VerifyDiagnostic> diagnostics;
  VerifyStats stats;

  bool ok() const noexcept { return diagnostics.empty(); }
  /// Renders the stats line plus every diagnostic (what --dump-verify
  /// prints and what Error(kVerifyError) messages quote).
  std::string to_string() const;
};

/// Verifies a single compiled plan (annotated standalone).
VerifyReport verify_plan(const NodeProgram& plan,
                         const VerifyOptions& options = {});

/// Verifies a compiled statement sequence; the reuse check replays the
/// whole sequence jointly, matching annotate_reuse_distances' scope.
VerifyReport verify_sequence(std::span<const NodeProgram> plans,
                             const VerifyOptions& options = {});

/// Throws Error(kVerifyError) quoting the report when verification fails.
void verify_or_throw(const NodeProgram& plan, const VerifyOptions& options = {});
void verify_sequence_or_throw(std::span<const NodeProgram> plans,
                              const VerifyOptions& options = {});

}  // namespace oocc::compiler
