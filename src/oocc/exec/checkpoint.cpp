#include "oocc/exec/checkpoint.hpp"

#include <cstring>
#include <fstream>
#include <mutex>
#include <vector>

#include "oocc/io/file_backend.hpp"
#include "oocc/sim/collectives.hpp"
#include "oocc/util/log.hpp"

namespace oocc::exec {

namespace {

constexpr std::uint64_t kCkptMagic = 0x4f4f43432d434b50ULL;  // "OOCC-CKP"

// Per-rank checkpoint data file: [CkptHeader][local array, column-major
// section order]. The file is only trusted once the directory's `meta`
// file names its iteration — data files themselves are never committed.
struct CkptHeader {
  std::uint64_t magic = 0;
  std::int64_t iterations = 0;
  std::int64_t rows = 0;
  std::int64_t cols = 0;
  std::uint64_t payload_bytes = 0;
  std::uint64_t checksum = 0;
};
static_assert(sizeof(CkptHeader) == 48);

std::uint64_t fnv1a(const void* data, std::size_t bytes) noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = 1469598103934665603ULL;
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

CheckpointStore::CheckpointStore(std::filesystem::path dir)
    : dir_(std::move(dir)) {
  OOCC_REQUIRE(!dir_.empty(), "checkpoint directory must be set");
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  OOCC_CHECK(!ec, ErrorCode::kIoError,
             "cannot create checkpoint directory " << dir_ << ": "
                                                   << ec.message());
}

std::filesystem::path CheckpointStore::data_path(const Meta& meta,
                                                 int rank) const {
  std::string name = meta.state;
  name += '.';
  name += std::to_string(meta.iterations);
  name += ".r";
  name += std::to_string(rank);
  return dir_ / name;
}

void CheckpointStore::save(sim::SpmdContext& ctx, int iterations,
                           const std::string& state,
                           runtime::OutOfCoreArray& array) {
  const Meta meta{iterations, state};
  const std::int64_t elements = array.local_elements();
  // Staging is deliberately outside the memory budget, like the halo
  // exchange's ghost buffers: it is transient runtime scratch, not an ICLA.
  std::vector<double> buf(static_cast<std::size_t>(elements));
  array.laf().read_full(ctx, buf);  // charged + retried by the LAF

  CkptHeader h;
  h.magic = kCkptMagic;
  h.iterations = iterations;
  h.rows = array.local_rows();
  h.cols = array.local_cols();
  h.payload_bytes = buf.size() * sizeof(double);
  h.checksum = fnv1a(buf.data(), h.payload_bytes);
  {
    io::FileBackend f(data_path(meta, ctx.rank()));
    f.truncate(0);
    f.write_at(0, &h, sizeof(h));
    f.write_at(sizeof(h), buf.data(), h.payload_bytes);
  }
  // One streaming request against this array's disk; the meta commit below
  // is a metadata touch and is not priced.
  const double time = array.laf().disk().request_time(
      static_cast<double>(sizeof(h) + h.payload_bytes), ctx.nprocs());
  ctx.charge_io_time(time);
  ++ctx.stats().io_requests;
  ctx.stats().io_bytes_written += h.payload_bytes;

  // Commit protocol: every rank's data file is durable before rank 0
  // publishes the checkpoint with an atomic rename; a second barrier keeps
  // any rank from starting the next sweep (or a later save) against a
  // half-committed directory.
  sim::barrier(ctx);
  if (ctx.rank() == 0) {
    const std::filesystem::path tmp = dir_ / "meta.tmp";
    {
      std::ofstream out(tmp, std::ios::trunc);
      out << iterations << ' ' << state << '\n';
      OOCC_CHECK(out.good(), ErrorCode::kIoError,
                 "cannot write checkpoint meta " << tmp);
    }
    std::error_code ec;
    std::filesystem::rename(tmp, dir_ / "meta", ec);
    OOCC_CHECK(!ec, ErrorCode::kIoError,
               "cannot commit checkpoint meta: " << ec.message());
    // Garbage-collect superseded checkpoints (and stray meta.tmp files).
    std::string keep = ".";
    keep += std::to_string(iterations);
    keep += ".r";
    for (const auto& entry : std::filesystem::directory_iterator(dir_, ec)) {
      const std::string name = entry.path().filename().string();
      if (name == "meta" || name.find(keep) != std::string::npos) {
        continue;
      }
      std::filesystem::remove(entry.path(), ec);
    }
  }
  sim::barrier(ctx);
}

void CheckpointStore::restore(sim::SpmdContext& ctx, const Meta& meta,
                              runtime::OutOfCoreArray& array) {
  const std::filesystem::path path = data_path(meta, ctx.rank());
  std::error_code ec;
  OOCC_CHECK(std::filesystem::exists(path, ec) && !ec, ErrorCode::kIoError,
             "checkpoint data file " << path << " is missing");
  io::FileBackend f(path);
  CkptHeader h;
  f.read_at(0, &h, sizeof(h));
  OOCC_CHECK(h.magic == kCkptMagic && h.iterations == meta.iterations &&
                 h.rows == array.local_rows() && h.cols == array.local_cols(),
             ErrorCode::kIoError,
             "checkpoint data file " << path
                                     << " does not match the committed "
                                        "checkpoint (corrupt directory?)");
  const std::uint64_t want =
      static_cast<std::uint64_t>(array.local_elements()) * sizeof(double);
  OOCC_CHECK(h.payload_bytes == want, ErrorCode::kIoError,
             "checkpoint data file " << path << " holds " << h.payload_bytes
                                     << " payload bytes, expected " << want);
  std::vector<double> buf(static_cast<std::size_t>(array.local_elements()));
  f.read_at(sizeof(h), buf.data(), h.payload_bytes);
  OOCC_CHECK(fnv1a(buf.data(), h.payload_bytes) == h.checksum,
             ErrorCode::kIoError,
             "checkpoint data file " << path << " fails its checksum");
  const double time = array.laf().disk().request_time(
      static_cast<double>(sizeof(h) + h.payload_bytes), ctx.nprocs());
  ctx.charge_io_time(time);
  ++ctx.stats().io_requests;
  ctx.stats().io_bytes_read += h.payload_bytes;
  array.laf().write_full(ctx, buf);
}

std::optional<CheckpointStore::Meta> CheckpointStore::latest(
    const std::filesystem::path& dir) {
  std::ifstream in(dir / "meta");
  if (!in.good()) {
    return std::nullopt;
  }
  Meta meta;
  in >> meta.iterations >> meta.state;
  if (in.fail() || meta.iterations <= 0 || meta.state.empty()) {
    return std::nullopt;
  }
  return meta;
}

bool restartable_error(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::kIoError:
    case ErrorCode::kTransientIoError:
    case ErrorCode::kCrash:
    case ErrorCode::kResourceExhausted:
    // The abort protocol surfaces the failing rank's error on that rank and
    // kRuntimeError ("aborted by another rank") everywhere else; Machine::
    // run rethrows the lowest rank's exception, which may be either.
    case ErrorCode::kRuntimeError:
      return true;
    default:
      return false;
  }
}

RestartRunInfo run_stencil_with_restart(sim::Machine& machine,
                                        const compiler::NodeProgram& plan,
                                        const RestartOptions& options) {
  OOCC_REQUIRE(plan.kind == compiler::ProgramKind::kStencil,
               "run_stencil_with_restart needs a stencil plan");
  OOCC_REQUIRE(options.checkpoint_every >= 1,
               "checkpoint_every must be >= 1, got "
                   << options.checkpoint_every);
  OOCC_REQUIRE(!options.checkpoint_dir.empty() && !options.array_dir.empty(),
               "checkpoint_dir and array_dir must be set");
  CheckpointStore store(options.checkpoint_dir);  // create dir up front

  RestartRunInfo result;
  for (;;) {
    try {
      StencilRunInfo info;
      std::mutex mu;
      result.report = machine.run([&](sim::SpmdContext& ctx) {
        auto arrays =
            create_plan_arrays(ctx, plan, options.array_dir, options.disk);
        ArrayBindings bindings;
        for (auto& [name, array] : arrays) {
          bindings[name] = array.get();
        }
        ExecOptions exec = options.exec;
        exec.checkpoint_every = options.checkpoint_every;
        exec.checkpoint_dir = options.checkpoint_dir;
        StencilRunInfo local;
        exec.stencil_info = &local;
        // The commit protocol's barriers order every rank's view of `meta`:
        // all ranks of an attempt see the same committed checkpoint here.
        const auto meta = CheckpointStore::latest(options.checkpoint_dir);
        if (meta.has_value()) {
          CheckpointStore attempt_store(options.checkpoint_dir);
          attempt_store.restore(ctx, *meta, *bindings.at(meta->state));
          exec.start_iteration = meta->iterations;
        } else if (options.initialize) {
          options.initialize(ctx, bindings);
        }
        sim::barrier(ctx);
        ctx.reset_accounting();
        execute(ctx, plan, bindings, exec);
        const std::lock_guard<std::mutex> lock(mu);
        info = local;
      });
      result.stencil = info;
      return result;
    } catch (const Error& e) {
      if (!restartable_error(e.code()) ||
          result.restarts >= options.max_restarts) {
        throw;
      }
      ++result.restarts;
      OOCC_WARN("exec", "stencil run failed ("
                            << error_code_name(e.code()) << ": " << e.what()
                            << "); restarting " << result.restarts << "/"
                            << options.max_restarts);
    }
  }
}

}  // namespace oocc::exec
