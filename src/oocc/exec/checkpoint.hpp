// Checkpoint/restart for iterative out-of-core programs.
//
// The stencil driver (interp.cpp) iterates a ping-pong pair of out-of-core
// arrays to convergence. A fault anywhere in a sweep — disk, message,
// memory budget, or an injected crash — aborts the whole SPMD region, and
// without help the work of every completed sweep is lost. This module adds
// the classic two-piece remedy:
//
//  * CheckpointStore — saves the current state array (the live half of the
//    ping-pong pair) plus the sweep counter to a sidecar directory every k
//    sweeps, with a commit protocol that tolerates a crash at any point:
//    per-rank data files are written under an iteration-versioned name
//    (`<state>.<iter>.r<rank>`), all ranks barrier, and only then does rank
//    0 publish the checkpoint by atomically renaming a fresh `meta` file.
//    A crash before the rename leaves the previous checkpoint intact; a
//    crash after it leaves the new one complete.
//
//  * run_stencil_with_restart — wraps Machine::run around the stencil
//    executor: on a restartable failure it re-enters the region, restores
//    the latest committed checkpoint (or re-runs the deterministic
//    initializer when none exists) and resumes from the recorded sweep.
//    Because sweeps are deterministic and checkpoints store exact doubles,
//    the recovered run is bit-identical to a fault-free one.
//
// Checkpoint I/O is charged to the simulated clock as streaming requests
// against the owning array's disk model, so fault-tolerant runs report
// honestly higher I/O time. See docs/fault-tolerance.md.
#pragma once

#include <cstdint>
#include <filesystem>
#include <functional>
#include <optional>
#include <string>

#include "oocc/exec/interp.hpp"
#include "oocc/io/disk_model.hpp"
#include "oocc/runtime/ooc_array.hpp"
#include "oocc/sim/machine.hpp"

namespace oocc::exec {

/// Sidecar checkpoint directory for one iterative run.
class CheckpointStore {
 public:
  /// Identity of the latest committed checkpoint.
  struct Meta {
    int iterations = 0;    ///< sweeps completed when it was taken
    std::string state;     ///< plan array holding the state at that point
  };

  /// Opens (creating if needed) the checkpoint directory.
  explicit CheckpointStore(std::filesystem::path dir);

  const std::filesystem::path& dir() const noexcept { return dir_; }

  /// Collective: saves `state`'s local pieces as checkpoint `iterations`
  /// and commits it (rank 0 renames the meta file after a barrier), then
  /// garbage-collects superseded checkpoints. Charged as streaming
  /// requests against the array's disk model.
  void save(sim::SpmdContext& ctx, int iterations, const std::string& state,
            runtime::OutOfCoreArray& array);

  /// Collective: loads checkpoint `meta` into `array` (each rank its own
  /// piece). Throws Error(kIoError) on a missing/corrupt data file.
  void restore(sim::SpmdContext& ctx, const Meta& meta,
               runtime::OutOfCoreArray& array);

  /// Host-side query (uncharged): the latest committed checkpoint under
  /// `dir`, or nullopt when none was ever committed.
  static std::optional<Meta> latest(const std::filesystem::path& dir);

 private:
  std::filesystem::path data_path(const Meta& meta, int rank) const;

  std::filesystem::path dir_;
};

/// Everything run_stencil_with_restart needs beyond the plan itself.
struct RestartOptions {
  /// Executor knobs for each attempt (checkpoint fields are overwritten
  /// from the settings below; stencil_info is captured internally).
  ExecOptions exec;
  /// Directory holding the plan arrays' LAFs. Reused across attempts so
  /// surviving data (and write-back journals) carry over.
  std::filesystem::path array_dir;
  io::DiskModel disk;
  /// Checkpoint cadence: every k completed sweeps (must be >= 1).
  int checkpoint_every = 1;
  std::filesystem::path checkpoint_dir;
  /// Attempts after the first before the last error is rethrown.
  int max_restarts = 8;
  /// Deterministically creates the initial contents of the plan arrays
  /// (called inside the SPMD region on a cold start — i.e. when no
  /// committed checkpoint exists yet).
  std::function<void(sim::SpmdContext&, const ArrayBindings&)> initialize;
};

/// Outcome of a restartable stencil run.
struct RestartRunInfo {
  StencilRunInfo stencil;
  int restarts = 0;       ///< recoveries performed (0 = fault-free)
  sim::RunReport report;  ///< report of the successful attempt
};

/// True when a failure with this code is worth a restart: faults injected
/// or escalated by the fault framework, budget exhaustion, and the
/// secondary "aborted by another rank" errors the abort protocol spreads.
bool restartable_error(ErrorCode code) noexcept;

/// Runs the stencil plan to completion, recovering from restartable
/// failures via checkpoint/restart (see file comment). Accounting is reset
/// after initialization/restore, so the report covers the sweeps of the
/// final (successful) attempt only.
RestartRunInfo run_stencil_with_restart(sim::Machine& machine,
                                        const compiler::NodeProgram& plan,
                                        const RestartOptions& options);

}  // namespace oocc::exec
