#include "oocc/exec/eval.hpp"

#include "oocc/util/error.hpp"

namespace oocc::exec {

double eval_element(const hpf::Expr& e, const EvalEnv& env) {
  switch (e.kind) {
    case hpf::ExprKind::kIntConst:
      return static_cast<double>(e.int_value);
    case hpf::ExprKind::kVarRef:
      OOCC_CHECK(e.name == env.forall_var, ErrorCode::kRuntimeError,
                 "unbound scalar '" << e.name << "' in compiled expression");
      return static_cast<double>(env.forall_value);
    case hpf::ExprKind::kBinary: {
      const double a = eval_element(*e.lhs, env);
      const double b = eval_element(*e.rhs, env);
      switch (e.op) {
        case hpf::BinOp::kAdd:
          return a + b;
        case hpf::BinOp::kSub:
          return a - b;
        case hpf::BinOp::kMul:
          return a * b;
        case hpf::BinOp::kDiv:
          return a / b;
      }
      return 0.0;
    }
    case hpf::ExprKind::kArrayRef: {
      OOCC_CHECK(env.buffers != nullptr, ErrorCode::kRuntimeError,
                 "no slab buffers bound");
      const auto it = env.buffers->find(e.name);
      OOCC_CHECK(it != env.buffers->end(), ErrorCode::kRuntimeError,
                 "array '" << e.name << "' has no bound slab");
      return it->second->at(env.row, env.col_rel);
    }
    case hpf::ExprKind::kSumIntrinsic:
      OOCC_THROW(ErrorCode::kRuntimeError,
                 "SUM intrinsic cannot appear in an elementwise plan");
  }
  return 0.0;
}

}  // namespace oocc::exec
