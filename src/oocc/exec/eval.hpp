// Element-level expression evaluation for compiled elementwise FORALLs.
//
// The lowered elementwise plan keeps the right-hand side as an expression
// tree; the interpreter evaluates it once per element with the referenced
// arrays' slabs bound to ICLA buffers. Supported leaves: integer
// constants, the FORALL index (its 1-based Fortran value), parameters
// folded by sema, and array references of the (full-range, forall-index)
// shape.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "oocc/hpf/ast.hpp"
#include "oocc/runtime/icla.hpp"

namespace oocc::exec {

struct EvalEnv {
  /// Row within the current slab section (0-based local).
  std::int64_t row = 0;
  /// Column within the current slab section (0-based, section-relative).
  std::int64_t col_rel = 0;
  /// Name and 1-based value of the FORALL index for this element.
  std::string forall_var;
  std::int64_t forall_value = 0;
  /// Slab buffers for every referenced array (all aligned on the same
  /// section because operands are identically distributed).
  const std::map<std::string, const runtime::IclaBuffer*>* buffers = nullptr;
};

/// Evaluates `e` for one element. Throws Error(kRuntimeError) on
/// unsupported node kinds (which lowering should have rejected).
double eval_element(const hpf::Expr& e, const EvalEnv& env);

}  // namespace oocc::exec
