#include "oocc/exec/interp.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "oocc/compiler/verify.hpp"
#include "oocc/exec/checkpoint.hpp"
#include "oocc/exec/eval.hpp"
#include "oocc/runtime/bufferpool.hpp"
#include "oocc/runtime/prefetch.hpp"
#include "oocc/runtime/slab_iter.hpp"
#include "oocc/runtime/slab_writer.hpp"
#include "oocc/sim/collectives.hpp"
#include "oocc/util/env.hpp"
#include "oocc/util/error.hpp"
#include "oocc/util/faults.hpp"

namespace oocc::exec {

namespace {

// Ghost-column exchange tags (user tags are >= 0; the hand-coded Jacobi
// oracle uses 101/102, kept distinct so both can run in one simulation).
constexpr int kTagStencilLeft = 151;   ///< carries a rank's leftmost columns
constexpr int kTagStencilRight = 152;  ///< carries a rank's rightmost columns

runtime::OutOfCoreArray& bound(const ArrayBindings& arrays,
                               const std::string& name) {
  const auto it = arrays.find(name);
  OOCC_CHECK(it != arrays.end() && it->second != nullptr,
             ErrorCode::kRuntimeError,
             "plan array '" << name << "' is not bound");
  return *it->second;
}

void check_binding(const compiler::NodeProgram& plan,
                   const runtime::OutOfCoreArray& array) {
  const compiler::PlanArray& pa = plan.array(array.name());
  OOCC_CHECK(array.laf().order() == pa.storage, ErrorCode::kRuntimeError,
             "array '" << array.name() << "' is stored "
                       << io::storage_order_name(array.laf().order())
                       << " but the plan requires "
                       << io::storage_order_name(pa.storage)
                       << " (create it with create_plan_arrays, or "
                          "reorganize the LAF first)");
  OOCC_CHECK(array.dist() == pa.dist, ErrorCode::kRuntimeError,
             "array '" << array.name() << "' distribution "
                       << array.dist().to_string()
                       << " does not match the plan's "
                       << pa.dist.to_string());
}

/// Interprets a plan's slab-program IR on one simulated processor. The
/// executor is schema-free: every behavior (which arrays stream through
/// which loops, where partial products accumulate, when the global sum
/// runs) is read off the step tree, so new kernels are new step programs,
/// not new executors. With a SlabBufferPool all slab I/O routes through it
/// (pinned per slab iteration, staged outputs write back lazily); without
/// one the pre-pool paths run: per-loop PrefetchingSlabReaders and direct
/// write-through staging.
class StepExecutor {
 public:
  /// `stencil_swapped` runs a stencil plan's sweep with the lhs/source
  /// roles exchanged (the convergence driver's odd sweeps): every array
  /// name in the step program resolves to its ping-pong partner at the
  /// LAF/pool boundary.
  StepExecutor(sim::SpmdContext& ctx, const compiler::NodeProgram& plan,
               const ArrayBindings& arrays, runtime::MemoryBudget& budget,
               runtime::SlabBufferPool* pool, bool stencil_swapped = false)
      : ctx_(ctx), plan_(plan), arrays_(arrays), budget_(budget),
        pool_(pool),
        swap_(stencil_swapped && !plan.stencils.empty()) {
    for (const compiler::SlabLoop& loop : plan_.loops) {
      const runtime::OutOfCoreArray& space =
          bound(arrays_, resolve(loop.space));
      states_.emplace(
          loop.name,
          LoopState(&loop, runtime::SlabIterator(space.local_rows(),
                                                 space.local_cols(),
                                                 loop.orientation,
                                                 loop.capacity_elements)));
    }
  }

  /// Local max |update| of the sweep's interior elements (stencil plans).
  double residual() const noexcept { return residual_; }

  void run() {
    if (pool_ != nullptr && plan_.kind == compiler::ProgramKind::kGaxpy) {
      // The reduction output is written through the OwnedColumnWriter,
      // which bypasses the pool: cached slabs of it would go stale.
      pool_->invalidate(ctx_, plan_.c);
    }
    run_steps(plan_.steps);
    if (writer_) {
      writer_->flush(ctx_);
      writer_.reset();
    }
    if (temp_reserved_ > 0) {
      budget_.release(temp_reserved_);
      temp_reserved_ = 0;
    }
    if (pool_ != nullptr) {
      // Pin-count leak detection: every slab iteration must have unpinned
      // what it acquired.
      OOCC_CHECK(pool_->pinned_count() == 0, ErrorCode::kRuntimeError,
                 "slab pool pin leak: " << pool_->pinned_count()
                                        << " entries still pinned after the "
                                           "sweep");
    }
  }

 private:
  struct LoopState {
    LoopState(const compiler::SlabLoop* d, runtime::SlabIterator it)
        : decl(d), iter(it) {}

    const compiler::SlabLoop* decl;
    runtime::SlabIterator iter;
    std::int64_t index = -1;       ///< current slab, -1 outside the loop
    io::Section section{};         ///< current slab's section
    std::int64_t column = -1;      ///< ForEachColumn position
    /// One double-bufferable reader per array streamed through this loop
    /// (cache-off mode only).
    std::map<std::string, std::unique_ptr<runtime::PrefetchingSlabReader>>
        readers;
    /// Buffers holding the current slab of each streamed array.
    std::map<std::string, const runtime::IclaBuffer*> loaded;
    /// Pool entries pinned during the current slab iteration (cache mode).
    std::vector<std::pair<std::string, io::Section>> pinned;
    /// Halo-widened entries to drop when the iteration ends: they overlap
    /// their neighbours and the ping-pong partner is what the next sweep
    /// reads, so retaining them only crowds out the reusable dirty slabs
    /// (and can deadlock the pool's assembly at tight budgets).
    std::vector<std::pair<std::string, io::Section>> transient;
    /// Read-ahead queue for this loop's upcoming ReadSlab schedule.
    runtime::IoScheduler scheduler;
    int lookahead = 0;  ///< reads to keep in flight (streamed array count)
  };

  LoopState& state(const std::string& name) {
    const auto it = states_.find(name);
    OOCC_CHECK(it != states_.end(), ErrorCode::kRuntimeError,
               "step references undeclared slab loop '" << name << "'");
    return it->second;
  }

  /// Plan array name -> the array actually touched this sweep. Identity
  /// except for a swapped stencil sweep, where the ping-pong pair trade
  /// places. Only LAF/pool accesses resolve; in-executor maps (loaded,
  /// staging) stay keyed by plan name.
  const std::string& resolve(const std::string& name) const {
    return compiler::stencil_resolve(plan_, swap_, name);
  }

  /// Writable slab-sized buffer for an array the program produces.
  runtime::IclaBuffer& staging(const std::string& array,
                               std::int64_t capacity) {
    auto it = staging_.find(array);
    if (it == staging_.end()) {
      it = staging_
               .emplace(array, std::make_unique<runtime::IclaBuffer>(
                                   budget_, capacity, "icla_" + array))
               .first;
    }
    return *it->second;
  }

  void run_steps(const std::vector<compiler::Step>& steps) {
    for (const compiler::Step& step : steps) {
      run_step(step);
    }
  }

  void run_step(const compiler::Step& step) {
    using compiler::StepKind;
    switch (step.kind) {
      case StepKind::kForEachSlab: {
        LoopState& loop = state(step.loop);
        if (pool_ == nullptr) {
          for (auto& [name, reader] : loop.readers) {
            reader->reset();  // a re-sweep re-reads; cached slabs are stale
          }
        } else if (loop.decl->prefetch) {
          // Hand the loop's full upcoming ReadSlab schedule to the
          // read-ahead queue: every pure-input stream, every slab, in
          // demand order.
          loop.scheduler.clear();
          loop.lookahead = 0;
          std::vector<const compiler::Step*> reads;
          for (const compiler::Step& s : step.body) {
            if (s.kind == StepKind::kReadSlab &&
                !plan_.array(s.array).is_output) {
              reads.push_back(&s);
              ++loop.lookahead;
            }
          }
          for (std::int64_t i = 0; i < loop.iter.count(); ++i) {
            for (const compiler::Step* s : reads) {
              loop.scheduler.enqueue(runtime::IoScheduler::Request{
                  &bound(arrays_, resolve(s->array)).laf(),
                  resolve(s->array), loop.iter.section(i),
                  s->reuse_distance});
            }
          }
        }
        for (std::int64_t i = 0; i < loop.iter.count(); ++i) {
          loop.index = i;
          loop.section = loop.iter.section(i);
          run_steps(step.body);
          if (pool_ != nullptr) {
            for (auto it = loop.pinned.rbegin(); it != loop.pinned.rend();
                 ++it) {
              pool_->unpin(it->first, it->second);
            }
            loop.pinned.clear();
            for (const auto& [array, sec] : loop.transient) {
              pool_->drop_clean(array, sec);
            }
            loop.transient.clear();
          }
        }
        loop.index = -1;
        if (pool_ != nullptr) {
          loop.scheduler.clear();
        }
        return;
      }
      case StepKind::kForEachColumn: {
        LoopState& loop = state(step.loop);
        for (std::int64_t m = 0; m < loop.section.cols(); ++m) {
          loop.column = m;
          fresh_column_ = true;
          run_steps(step.body);
        }
        loop.column = -1;
        return;
      }
      case StepKind::kReadSlab:
        read_slab(step);
        return;
      case StepKind::kWriteSlab: {
        LoopState& loop = state(step.loop);
        if (pool_ != nullptr) {
          // Deferred write-back: the dirty slab reaches the LAF on eviction
          // or at the end-of-sequence flush; meanwhile a later statement's
          // read of it is a hit.
          pool_->mark_dirty(resolve(step.array), loop.section,
                            step.reuse_distance);
          return;
        }
        const auto it = staging_.find(step.array);
        OOCC_CHECK(it != staging_.end(), ErrorCode::kRuntimeError,
                   "write-slab of '" << step.array
                                     << "' before any compute staged it");
        it->second->store_as(ctx_, bound(arrays_, resolve(step.array)).laf(),
                             loop.section);
        return;
      }
      case StepKind::kComputeElementwise:
        compute_elementwise(step);
        return;
      case StepKind::kComputeGaxpyPartial:
        compute_gaxpy_partial(step);
        return;
      case StepKind::kReduceSum:
        reduce_sum(step);
        return;
      case StepKind::kExchangeHalo:
        exchange_halo(step);
        return;
      case StepKind::kComputeStencil:
        compute_stencil(step);
        return;
      case StepKind::kBarrier:
        // Settle in-flight async write-backs first: a rank must not report
        // "done" to its peers while a worker error is still pending, and
        // post-barrier reads by other statements expect the bytes on disk.
        if (pool_ != nullptr) {
          pool_->drain_writes(ctx_);
        }
        sim::barrier(ctx_);
        return;
    }
    OOCC_THROW(ErrorCode::kRuntimeError, "unknown step kind");
  }

  void read_slab(const compiler::Step& step) {
    LoopState& loop = state(step.loop);
    const std::string& name = resolve(step.array);
    runtime::OutOfCoreArray& array = bound(arrays_, name);
    // Halo reads widen the owner slab by the dependence distance, clipped
    // at the local array bounds (columns beyond them arrive as ghosts).
    const io::Section sec =
        step.halo > 0
            ? compiler::widen_columns(loop.section, step.halo,
                                      array.local_cols())
            : loop.section;
    if (pool_ != nullptr) {
      runtime::IclaBuffer& buf = pool_->acquire_read(
          ctx_, array.laf(), name, sec, step.reuse_distance);
      loop.pinned.emplace_back(name, sec);
      if (step.halo > 0) {
        loop.transient.emplace_back(name, sec);
      }
      loop.loaded[step.array] = &buf;
      if (loop.decl->prefetch) {
        loop.scheduler.pump(ctx_, *pool_, loop.lookahead);
      }
      return;
    }
    if (step.halo > 0) {
      // Cache-off path: load the widened section into a dedicated staging
      // buffer (the per-loop readers only know unwidened iterator slabs).
      runtime::IclaBuffer& buf =
          staging(step.array, plan_.array(step.array).slab_elements);
      buf.load(ctx_, array.laf(), sec);
      loop.loaded[step.array] = &buf;
      return;
    }
    if (plan_.array(step.array).is_output) {
      // An array the program also produces is staged in a writable buffer;
      // its initial read (the in-place update case) loads straight into it
      // and cannot be double-buffered against the coming write.
      runtime::IclaBuffer& buf =
          staging(step.array, loop.iter.slab_elements());
      buf.load(ctx_, array.laf(), loop.section);
      loop.loaded[step.array] = &buf;
      return;
    }
    auto it = loop.readers.find(step.array);
    if (it == loop.readers.end()) {
      it = loop.readers
               .emplace(step.array,
                        std::make_unique<runtime::PrefetchingSlabReader>(
                            ctx_, array.laf(), loop.iter, budget_,
                            "icla_" + step.array, loop.decl->prefetch))
               .first;
    }
    loop.loaded[step.array] = &it->second->acquire(ctx_, loop.index);
  }

  void compute_elementwise(const compiler::Step& step) {
    const compiler::ElementwiseStmt& st =
        plan_.statements.at(static_cast<std::size_t>(step.stmt));
    LoopState& loop = state(step.loop);
    const io::Section sec = loop.section;
    runtime::OutOfCoreArray& lhs = bound(arrays_, st.lhs);
    runtime::IclaBuffer* out_ptr;
    if (pool_ != nullptr) {
      // Stage into a pool entry: an in-place load or an earlier statement
      // of the fused group already created it (data preserved).
      out_ptr = &pool_->acquire_write(ctx_, lhs.laf(), st.lhs, sec,
                                      step.reuse_distance);
      loop.pinned.emplace_back(st.lhs, sec);
    } else {
      out_ptr = &staging(st.lhs, loop.iter.slab_elements());
      // Re-target without clearing: an in-place load or an earlier
      // statement of the fused group may already have staged this data.
      out_ptr->reset_section(sec);
    }
    runtime::IclaBuffer& out = *out_ptr;
    // Safe to install before evaluating: each element is written only from
    // values of the same (row, column), read before the write. Later
    // statements of a fused group read this result from memory.
    loop.loaded[st.lhs] = &out;

    EvalEnv env;
    env.forall_var = st.forall_var;
    env.buffers = &loop.loaded;
    for (std::int64_t c = 0; c < sec.cols(); ++c) {
      // FORALL index is the 1-based global column number.
      env.forall_value =
          lhs.dist().local_to_global_col(ctx_.rank(), sec.col0 + c) + 1;
      env.col_rel = c;
      for (std::int64_t r = 0; r < sec.rows(); ++r) {
        env.row = r;
        out.at(r, c) = eval_element(*st.rhs, env);
      }
    }
    ctx_.charge_flops(static_cast<double>(sec.elements()));
  }

  void compute_gaxpy_partial(const compiler::Step& step) {
    LoopState& a_loop = state(step.loop);
    LoopState& col_loop = state(step.with);
    const runtime::IclaBuffer* a_buf = a_loop.loaded.at(a_loop.decl->space);
    const runtime::IclaBuffer* b_buf =
        col_loop.loaded.at(col_loop.decl->space);
    const io::Section asec = a_buf->section();
    if (fresh_column_) {
      if (temp_reserved_ == 0) {
        if (pool_ != nullptr) {
          pool_->ensure_available(ctx_, asec.rows());
        }
        budget_.reserve(asec.rows(), "temp column");
        temp_reserved_ = asec.rows();
      }
      temp_.assign(static_cast<std::size_t>(asec.rows()), 0.0);
      temp_row0_ = asec.row0;
      temp_row1_ = asec.row1;
      partial_loop_ = &a_loop;
      fresh_column_ = false;
    }
    const std::int64_t m = col_loop.column;
    for (std::int64_t i = 0; i < asec.cols(); ++i) {
      // Local column asec.col0+i of A pairs with the same local row of B
      // (both derive from the same distribution template).
      const double bval = b_buf->at(asec.col0 + i, m);
      const double* acol = &a_buf->at(0, i);
      for (std::int64_t r = 0; r < asec.rows(); ++r) {
        temp_[static_cast<std::size_t>(r)] += acol[r] * bval;
      }
    }
    ctx_.charge_flops(2.0 * static_cast<double>(asec.rows()) *
                      static_cast<double>(asec.cols()));
  }

  void reduce_sum(const compiler::Step& step) {
    LoopState& col_loop = state(step.with);
    runtime::OutOfCoreArray& c = bound(arrays_, step.array);
    // Global output column = the column loop's position in its sweep.
    const std::int64_t gj = col_loop.section.col0 + col_loop.column;
    const int owner = c.dist().owner_of_col(gj);
    std::vector<double> summed = sim::reduce_sum<double>(
        ctx_, owner, std::span<const double>(temp_.data(), temp_.size()));
    // A new row range (the next A row slab) starts a new output pass;
    // flush what the previous pass staged.
    if (writer_ &&
        (writer_->row0() != temp_row0_ || writer_->row1() != temp_row1_)) {
      writer_->flush(ctx_);
      writer_.reset();
    }
    if (ctx_.rank() != owner) {
      return;
    }
    if (!writer_) {
      if (!c_buf_) {
        // Room for at least one full-height output (sub)column per flush.
        const std::int64_t full_rows = partial_loop_->iter.section(0).rows();
        const std::int64_t capacity =
            std::max(plan_.memory.slab_c, full_rows);
        if (pool_ != nullptr) {
          pool_->ensure_available(ctx_, capacity);
        }
        c_buf_ = std::make_unique<runtime::IclaBuffer>(budget_, capacity,
                                                       "icla_" + step.array);
      }
      writer_ = std::make_unique<runtime::OwnedColumnWriter>(
          c, *c_buf_, temp_row0_, temp_row1_);
    }
    writer_->append(
        ctx_, c.dist().global_to_local_col(gj),
        std::span<const double>(summed.data(), summed.size()));
  }

  /// Ghost-column exchange before a stencil sweep: every rank ships its
  /// `halo` edge columns to the neighbouring ranks and keeps the columns it
  /// receives for the sweep's out-of-panel reads. Reads go through the pool
  /// when it is active, so columns a previous sweep staged (and never wrote
  /// back) are seen current.
  void exchange_halo(const compiler::Step& step) {
    left_ghost_.clear();
    right_ghost_.clear();
    const int p = ctx_.nprocs();
    if (p == 1) {
      return;
    }
    const std::int64_t d = step.halo;
    const std::string& name = resolve(step.array);
    runtime::OutOfCoreArray& arr = bound(arrays_, name);
    const std::int64_t rows = arr.local_rows();
    const std::int64_t nlc = arr.local_cols();
    const int rank = ctx_.rank();

    std::vector<double> edge;
    const auto read_edge = [&](const io::Section& sec) {
      edge.resize(static_cast<std::size_t>(sec.elements()));
      if (pool_ != nullptr) {
        runtime::IclaBuffer& buf = pool_->acquire_read(
            ctx_, arr.laf(), name, sec, step.reuse_distance);
        const std::span<const double> data = buf.data();
        std::copy(data.begin(), data.end(), edge.begin());
        pool_->unpin(name, sec);
      } else {
        arr.laf().read_section(ctx_, sec,
                               std::span<double>(edge.data(), edge.size()));
      }
    };
    if (rank > 0) {
      read_edge(io::Section{0, rows, 0, d});
      ctx_.send<double>(rank - 1, kTagStencilLeft,
                        std::span<const double>(edge.data(), edge.size()));
    }
    if (rank < p - 1) {
      read_edge(io::Section{0, rows, nlc - d, nlc});
      ctx_.send<double>(rank + 1, kTagStencilRight,
                        std::span<const double>(edge.data(), edge.size()));
    }
    if (rank < p - 1) {
      left_ghost_ = ctx_.recv<double>(rank + 1, kTagStencilLeft);
    }
    if (rank > 0) {
      right_ghost_ = ctx_.recv<double>(rank - 1, kTagStencilRight);
    }
  }

  /// Evaluates one element of a stencil-normalized expression: array
  /// references carry (row shift, column offset) integer subscripts.
  template <typename ColAt>
  double eval_stencil(const hpf::Expr& e, std::int64_t r, std::int64_t lc,
                      std::int64_t forall_value, const ColAt& col_at) const {
    switch (e.kind) {
      case hpf::ExprKind::kIntConst:
        return static_cast<double>(e.int_value);
      case hpf::ExprKind::kVarRef:
        // Lowering only admits the FORALL index as a free scalar.
        return static_cast<double>(forall_value);
      case hpf::ExprKind::kBinary: {
        const double a = eval_stencil(*e.lhs, r, lc, forall_value, col_at);
        const double b = eval_stencil(*e.rhs, r, lc, forall_value, col_at);
        switch (e.op) {
          case hpf::BinOp::kAdd:
            return a + b;
          case hpf::BinOp::kSub:
            return a - b;
          case hpf::BinOp::kMul:
            return a * b;
          case hpf::BinOp::kDiv:
            return a / b;
        }
        return 0.0;
      }
      case hpf::ExprKind::kArrayRef: {
        const std::int64_t sr = e.subscripts[0].scalar->int_value;
        const std::int64_t co = e.subscripts[1].scalar->int_value;
        return col_at(lc + co)[r + sr];
      }
      case hpf::ExprKind::kSumIntrinsic:
        break;
    }
    OOCC_THROW(ErrorCode::kRuntimeError,
               "unsupported node in a stencil-normalized expression");
  }

  /// One slab of the stencil sweep. Interior elements evaluate the
  /// normalized rhs over the halo-widened source slab (ghost columns for
  /// out-of-panel offsets); boundary rows and the first/last `halo` global
  /// columns copy through from the source — the hand-coded Jacobi oracle's
  /// exact arithmetic and boundary policy, element for element.
  void compute_stencil(const compiler::Step& step) {
    const compiler::StencilStmt& st =
        plan_.stencils.at(static_cast<std::size_t>(step.stmt));
    LoopState& loop = state(step.loop);
    const io::Section sec = loop.section;
    const std::string& lhs_name = resolve(st.lhs);
    runtime::OutOfCoreArray& lhs = bound(arrays_, lhs_name);
    const runtime::IclaBuffer* src = loop.loaded.at(st.source);
    const io::Section hs = src->section();
    const std::int64_t rows = sec.rows();
    const std::int64_t nlc = lhs.local_cols();
    const std::int64_t gcols = lhs.dist().global_cols();
    const std::int64_t d = st.halo;
    const std::int64_t rh = st.row_halo;

    runtime::IclaBuffer* out_ptr;
    if (pool_ != nullptr) {
      out_ptr = &pool_->acquire_write(ctx_, lhs.laf(), lhs_name, sec,
                                      step.reuse_distance);
      loop.pinned.emplace_back(lhs_name, sec);
    } else {
      out_ptr = &staging(st.lhs, loop.iter.slab_elements());
      out_ptr->reset_section(sec);
    }
    runtime::IclaBuffer& out = *out_ptr;

    const auto col_at = [&](std::int64_t lc) -> const double* {
      if (lc < 0) {
        return right_ghost_.data() +
               static_cast<std::size_t>((lc + d) * rows);
      }
      if (lc >= nlc) {
        return left_ghost_.data() +
               static_cast<std::size_t>((lc - nlc) * rows);
      }
      return &src->at(0, lc - hs.col0);
    };
    const double ops = static_cast<double>(hpf::count_binary_ops(*st.rhs));
    for (std::int64_t lc = sec.col0; lc < sec.col1; ++lc) {
      const std::int64_t gc = lhs.dist().local_to_global_col(ctx_.rank(), lc);
      const double* center = col_at(lc);
      double* res = &out.at(0, lc - sec.col0);
      if (gc < d || gc >= gcols - d) {
        std::copy(center, center + rows, res);  // fixed boundary column
        continue;
      }
      for (std::int64_t r = 0; r < rh; ++r) {
        res[r] = center[r];  // fixed boundary rows
      }
      for (std::int64_t r = rows - rh; r < rows; ++r) {
        res[r] = center[r];
      }
      const std::int64_t forall_value = gc + 1;  // 1-based Fortran index
      for (std::int64_t r = rh; r < rows - rh; ++r) {
        const double v = eval_stencil(*st.rhs, r, lc, forall_value, col_at);
        res[r] = v;
        residual_ = std::max(residual_, std::abs(v - center[r]));
      }
      ctx_.charge_flops(ops * static_cast<double>(rows - 2 * rh));
    }
    loop.loaded[st.lhs] = &out;
  }

  sim::SpmdContext& ctx_;
  const compiler::NodeProgram& plan_;
  const ArrayBindings& arrays_;
  runtime::MemoryBudget& budget_;
  runtime::SlabBufferPool* pool_;
  bool swap_ = false;  ///< stencil ping-pong: lhs/source roles exchanged
  std::map<std::string, LoopState> states_;
  std::map<std::string, std::unique_ptr<runtime::IclaBuffer>> staging_;

  // Stencil sweep state: ghost columns from the neighbouring ranks and the
  // running max |update| of the interior.
  std::vector<double> left_ghost_;   ///< right neighbour's first d columns
  std::vector<double> right_ghost_;  ///< left neighbour's last d columns
  double residual_ = 0.0;

  // GAXPY reduction state: the in-memory partial column of Figures 9/12.
  std::vector<double> temp_;
  std::int64_t temp_reserved_ = 0;
  std::int64_t temp_row0_ = 0;
  std::int64_t temp_row1_ = 0;
  bool fresh_column_ = false;
  const LoopState* partial_loop_ = nullptr;
  std::unique_ptr<runtime::IclaBuffer> c_buf_;
  std::unique_ptr<runtime::OwnedColumnWriter> writer_;
};

}  // namespace

std::map<std::string, std::unique_ptr<runtime::OutOfCoreArray>>
create_plan_arrays(sim::SpmdContext& ctx, const compiler::NodeProgram& plan,
                   const std::filesystem::path& dir,
                   const io::DiskModel& disk) {
  std::map<std::string, std::unique_ptr<runtime::OutOfCoreArray>> out;
  for (const auto& [name, pa] : plan.arrays) {
    out[name] = std::make_unique<runtime::OutOfCoreArray>(
        ctx, dir, name, pa.dist, pa.storage, disk);
  }
  return out;
}

namespace {

void check_plan(sim::SpmdContext& ctx, const compiler::NodeProgram& plan,
                const ArrayBindings& arrays) {
  OOCC_CHECK(ctx.nprocs() == plan.nprocs, ErrorCode::kRuntimeError,
             "plan was compiled for " << plan.nprocs
                                      << " processors but the machine has "
                                      << ctx.nprocs());
  OOCC_CHECK(!plan.steps.empty(), ErrorCode::kRuntimeError,
             "plan carries no step program (was it built by compile()?)");
  for (const auto& [name, pa] : plan.arrays) {
    check_binding(plan, bound(arrays, name));
  }
}

/// Iterate-to-convergence driver for a stencil plan: up to `max_iters`
/// sweeps, ping-ponging the lhs/source pair, stopping early when the global
/// max |update| drops to `residual_tol`. Every rank takes the same branch
/// because the residual is allreduced. Collective.
void run_stencil(sim::SpmdContext& ctx, const compiler::NodeProgram& plan,
                 const ArrayBindings& arrays, const ExecOptions& options,
                 runtime::MemoryBudget& budget,
                 runtime::SlabBufferPool* pool) {
  const compiler::StencilStmt& st = plan.stencils.front();
  const int max_iters = std::max(1, options.max_iters);
  const bool want_residual =
      options.residual_tol > 0 || options.stencil_info != nullptr;
  const bool checkpointing =
      options.checkpoint_every > 0 && !options.checkpoint_dir.empty();
  int iters = options.start_iteration;
  double residual = 0.0;
  for (int it = options.start_iteration; it < max_iters; ++it) {
    StepExecutor sweep(ctx, plan, arrays, budget, pool,
                       /*stencil_swapped=*/(it % 2) != 0);
    sweep.run();
    ++iters;
    bool stop = false;
    if (want_residual) {
      residual = sim::allreduce_max<double>(ctx, sweep.residual());
      stop = options.residual_tol > 0 && residual <= options.residual_tol;
    }
    // Checkpoint the live half of the ping-pong pair every k sweeps. The
    // final sweep is not checkpointed: a failure after it would replay
    // from the last checkpoint and reach the same bits anyway.
    if (checkpointing && !stop && iters < max_iters &&
        iters % options.checkpoint_every == 0) {
      if (pool != nullptr) {
        pool->flush(ctx);  // checkpoint from disk state, not stale files
      }
      const std::string& state = iters % 2 == 1 ? st.lhs : st.source;
      CheckpointStore store(options.checkpoint_dir);
      store.save(ctx, iters, state, bound(arrays, state));
    }
    if (stop) {
      break;
    }
  }
  if (options.stencil_info != nullptr) {
    options.stencil_info->iterations = iters;
    options.stencil_info->final_residual = residual;
    options.stencil_info->result = iters % 2 == 1 ? st.lhs : st.source;
  }
}

/// Runs one plan with the pool (or without, pool == nullptr): stencil plans
/// go through the convergence driver, everything else is a single sweep.
void run_plan(sim::SpmdContext& ctx, const compiler::NodeProgram& plan,
              const ArrayBindings& arrays, const ExecOptions& options,
              runtime::MemoryBudget& budget, runtime::SlabBufferPool* pool) {
  if (plan.kind == compiler::ProgramKind::kStencil) {
    run_stencil(ctx, plan, arrays, options, budget, pool);
    return;
  }
  StepExecutor(ctx, plan, arrays, budget, pool).run();
}

/// Verifies a plan the compiler did not stamp (hand-built or mutated).
/// The reuse check is off: a lone replay cannot reconstruct sequence-wide
/// reuse distances, and stale annotations are a performance hint, not a
/// safety hazard.
void verify_if_unstamped(const compiler::NodeProgram& plan,
                         const ExecOptions& options) {
  if (!options.verify || plan.verified) {
    return;
  }
  compiler::VerifyOptions vopts;
  vopts.check_reuse = false;
  compiler::verify_or_throw(plan, vopts);
}

}  // namespace

ExecOptions default_exec_options() {
  ExecOptions options;
  if (env_flag("OOCC_NO_CACHE")) {
    options.use_cache = false;
  }
  if (env_flag("OOCC_NO_VERIFY")) {
    options.verify = false;
  }
  options.async = env_flag_or("OOCC_ASYNC", true);
  // Under an active fault plan a write can be interrupted at any point, so
  // crash consistency is on unless the caller overrides it afterwards.
  if (env_flag("OOCC_JOURNAL") || faults::FaultInjector::instance().active()) {
    options.journal = true;
  }
  return options;
}

namespace {

/// Applies the journaling option to every bound array's LAF. Idempotent.
void apply_journaling(const ArrayBindings& arrays, const ExecOptions& options) {
  if (!options.journal) {
    return;
  }
  for (const auto& [name, array] : arrays) {
    if (array != nullptr) {
      array->laf().set_journaling(true);
    }
  }
}

}  // namespace

void execute(sim::SpmdContext& ctx, const compiler::NodeProgram& plan,
             const ArrayBindings& arrays) {
  execute(ctx, plan, arrays, default_exec_options());
}

void execute(sim::SpmdContext& ctx, const compiler::NodeProgram& plan,
             const ArrayBindings& arrays, const ExecOptions& options) {
  check_plan(ctx, plan, arrays);
  verify_if_unstamped(plan, options);
  apply_journaling(arrays, options);
  runtime::MemoryBudget budget(
      std::max(plan.memory_budget_elements, options.budget_elements));
  if (!options.use_cache) {
    run_plan(ctx, plan, arrays, options, budget, nullptr);
    return;
  }
  runtime::SlabBufferPool pool(budget, "pool");
  if (options.async) {
    pool.set_async_engine(ctx.async_engine());
  }
  run_plan(ctx, plan, arrays, options, budget, &pool);
  pool.flush(ctx);
  if (options.cache_stats != nullptr) {
    options.cache_stats->merge(pool.stats());
  }
}

std::map<std::string, std::unique_ptr<runtime::OutOfCoreArray>>
create_sequence_arrays(sim::SpmdContext& ctx,
                       std::span<const compiler::NodeProgram> plans,
                       const std::filesystem::path& dir,
                       const io::DiskModel& disk) {
  std::map<std::string, const compiler::PlanArray*> merged;
  for (const compiler::NodeProgram& plan : plans) {
    for (const auto& [name, pa] : plan.arrays) {
      const auto it = merged.find(name);
      if (it == merged.end()) {
        merged[name] = &pa;
        continue;
      }
      OOCC_CHECK(it->second->storage == pa.storage, ErrorCode::kCompileError,
                 "array '" << name
                           << "' is placed differently by two plans of the "
                              "sequence: storage "
                           << io::storage_order_name(it->second->storage)
                           << " vs " << io::storage_order_name(pa.storage));
      OOCC_CHECK(it->second->dist == pa.dist, ErrorCode::kCompileError,
                 "array '" << name
                           << "' is distributed differently by two plans of "
                              "the sequence: "
                           << it->second->dist.to_string() << " vs "
                           << pa.dist.to_string());
    }
  }
  std::map<std::string, std::unique_ptr<runtime::OutOfCoreArray>> out;
  for (const auto& [name, pa] : merged) {
    out[name] = std::make_unique<runtime::OutOfCoreArray>(
        ctx, dir, name, pa->dist, pa->storage, disk);
  }
  return out;
}

void execute_sequence(sim::SpmdContext& ctx,
                      std::span<const compiler::NodeProgram> plans,
                      const ArrayBindings& arrays) {
  execute_sequence(ctx, plans, arrays, default_exec_options());
}

void execute_sequence(sim::SpmdContext& ctx,
                      std::span<const compiler::NodeProgram> plans,
                      const ArrayBindings& arrays,
                      const ExecOptions& options) {
  const auto subset_for = [&](const compiler::NodeProgram& plan) {
    ArrayBindings subset;
    for (const auto& [name, pa] : plan.arrays) {
      const auto it = arrays.find(name);
      OOCC_CHECK(it != arrays.end(), ErrorCode::kRuntimeError,
                 "sequence binding is missing array '" << name << "'");
      subset[name] = it->second;
    }
    return subset;
  };
  if (plans.empty()) {
    return;
  }
  if (!options.use_cache) {
    for (const compiler::NodeProgram& plan : plans) {
      execute(ctx, plan, subset_for(plan), options);
    }
    return;
  }
  // One pool spans the whole sequence: slabs one statement read or staged
  // satisfy later statements' demand reads, which is where multi-statement
  // chains recover their shared traffic.
  std::int64_t budget_elements = options.budget_elements;
  for (const compiler::NodeProgram& plan : plans) {
    budget_elements = std::max(budget_elements, plan.memory_budget_elements);
  }
  runtime::MemoryBudget budget(budget_elements);
  runtime::SlabBufferPool pool(budget, "pool");
  if (options.async) {
    pool.set_async_engine(ctx.async_engine());
  }
  apply_journaling(arrays, options);
  for (const compiler::NodeProgram& plan : plans) {
    const ArrayBindings subset = subset_for(plan);
    check_plan(ctx, plan, subset);
    verify_if_unstamped(plan, options);
    run_plan(ctx, plan, subset, options, budget, &pool);
  }
  pool.flush(ctx);
  if (options.cache_stats != nullptr) {
    options.cache_stats->merge(pool.stats());
  }
}

}  // namespace oocc::exec
