#include "oocc/exec/interp.hpp"

#include "oocc/exec/eval.hpp"
#include "oocc/gaxpy/gaxpy.hpp"
#include "oocc/runtime/slab_iter.hpp"
#include "oocc/util/error.hpp"

namespace oocc::exec {

namespace {

runtime::OutOfCoreArray& bound(const ArrayBindings& arrays,
                               const std::string& name) {
  const auto it = arrays.find(name);
  OOCC_CHECK(it != arrays.end() && it->second != nullptr,
             ErrorCode::kRuntimeError,
             "plan array '" << name << "' is not bound");
  return *it->second;
}

void check_binding(const compiler::NodeProgram& plan,
                   const runtime::OutOfCoreArray& array) {
  const compiler::PlanArray& pa = plan.array(array.name());
  OOCC_CHECK(array.laf().order() == pa.storage, ErrorCode::kRuntimeError,
             "array '" << array.name() << "' is stored "
                       << io::storage_order_name(array.laf().order())
                       << " but the plan requires "
                       << io::storage_order_name(pa.storage)
                       << " (create it with create_plan_arrays, or "
                          "reorganize the LAF first)");
  OOCC_CHECK(array.dist() == pa.dist, ErrorCode::kRuntimeError,
             "array '" << array.name() << "' distribution "
                       << array.dist().to_string()
                       << " does not match the plan's "
                       << pa.dist.to_string());
}

void execute_gaxpy(sim::SpmdContext& ctx, const compiler::NodeProgram& plan,
                   const ArrayBindings& arrays) {
  runtime::OutOfCoreArray& a = bound(arrays, plan.a);
  runtime::OutOfCoreArray& b = bound(arrays, plan.b);
  runtime::OutOfCoreArray& c = bound(arrays, plan.c);
  check_binding(plan, a);
  check_binding(plan, b);
  check_binding(plan, c);

  gaxpy::GaxpyConfig config;
  config.slab_a_elements = plan.memory.slab_a;
  config.slab_b_elements = plan.memory.slab_b;
  config.slab_c_elements = plan.memory.slab_c;
  config.prefetch = plan.prefetch;

  runtime::MemoryBudget budget(plan.memory_budget_elements);
  if (plan.a_orientation == runtime::SlabOrientation::kColumnSlabs) {
    gaxpy::ooc_gaxpy_column_slabs(ctx, a, b, c, budget, config);
  } else {
    gaxpy::ooc_gaxpy_row_slabs(ctx, a, b, c, budget, config);
  }
}

void execute_elementwise(sim::SpmdContext& ctx,
                         const compiler::NodeProgram& plan,
                         const ArrayBindings& arrays) {
  runtime::OutOfCoreArray& lhs = bound(arrays, plan.lhs);
  check_binding(plan, lhs);

  // Inputs: every plan array except the output.
  std::vector<runtime::OutOfCoreArray*> inputs;
  for (const auto& [name, pa] : plan.arrays) {
    if (!pa.is_output) {
      runtime::OutOfCoreArray& in = bound(arrays, name);
      check_binding(plan, in);
      inputs.push_back(&in);
    }
  }

  runtime::MemoryBudget budget(plan.memory_budget_elements);
  const std::int64_t slab = plan.array(plan.lhs).slab_elements;
  runtime::SlabIterator slabs(lhs.local_rows(), lhs.local_cols(),
                              runtime::SlabOrientation::kColumnSlabs, slab);

  runtime::IclaBuffer out(budget, slabs.slab_elements(), "icla_" + plan.lhs);
  std::map<std::string, std::unique_ptr<runtime::IclaBuffer>> in_bufs;
  std::map<std::string, const runtime::IclaBuffer*> buffer_view;
  for (runtime::OutOfCoreArray* in : inputs) {
    auto buf = std::make_unique<runtime::IclaBuffer>(
        budget, slabs.slab_elements(), "icla_" + in->name());
    buffer_view[in->name()] = buf.get();
    in_bufs[in->name()] = std::move(buf);
  }
  // The output's own slab participates too when the lhs array also appears
  // on the rhs (e.g. x = x * 2).
  buffer_view[plan.lhs] = &out;

  for (std::int64_t s = 0; s < slabs.count(); ++s) {
    const io::Section sec = slabs.section(s);
    for (runtime::OutOfCoreArray* in : inputs) {
      in_bufs[in->name()]->load(ctx, in->laf(), sec);
    }
    // If lhs is read on the rhs, its current contents must be loaded; the
    // copy-in/copy-out FORALL semantics then hold because each element is
    // written exactly once from values read before any write.
    bool lhs_on_rhs = false;
    {
      std::vector<const hpf::Expr*> stack{plan.rhs.get()};
      while (!stack.empty()) {
        const hpf::Expr* e = stack.back();
        stack.pop_back();
        if (e->kind == hpf::ExprKind::kArrayRef && e->name == plan.lhs) {
          lhs_on_rhs = true;
        }
        if (e->lhs) stack.push_back(e->lhs.get());
        if (e->rhs) stack.push_back(e->rhs.get());
      }
    }
    if (lhs_on_rhs) {
      out.load(ctx, lhs.laf(), sec);
    } else {
      out.reset_section(sec);
    }

    EvalEnv env;
    env.forall_var = plan.forall_var;
    env.buffers = &buffer_view;
    for (std::int64_t c = 0; c < sec.cols(); ++c) {
      // FORALL index is the 1-based global column number.
      env.forall_value =
          lhs.dist().local_to_global_col(ctx.rank(), sec.col0 + c) + 1;
      env.col_rel = c;
      for (std::int64_t r = 0; r < sec.rows(); ++r) {
        env.row = r;
        out.at(r, c) = eval_element(*plan.rhs, env);
      }
    }
    ctx.charge_flops(static_cast<double>(sec.elements()));
    out.store_as(ctx, lhs.laf(), sec);
  }
}

}  // namespace

std::map<std::string, std::unique_ptr<runtime::OutOfCoreArray>>
create_plan_arrays(sim::SpmdContext& ctx, const compiler::NodeProgram& plan,
                   const std::filesystem::path& dir,
                   const io::DiskModel& disk) {
  std::map<std::string, std::unique_ptr<runtime::OutOfCoreArray>> out;
  for (const auto& [name, pa] : plan.arrays) {
    out[name] = std::make_unique<runtime::OutOfCoreArray>(
        ctx, dir, name, pa.dist, pa.storage, disk);
  }
  return out;
}

void execute(sim::SpmdContext& ctx, const compiler::NodeProgram& plan,
             const ArrayBindings& arrays) {
  OOCC_CHECK(ctx.nprocs() == plan.nprocs, ErrorCode::kRuntimeError,
             "plan was compiled for " << plan.nprocs
                                      << " processors but the machine has "
                                      << ctx.nprocs());
  switch (plan.kind) {
    case compiler::ProgramKind::kGaxpy:
      execute_gaxpy(ctx, plan, arrays);
      return;
    case compiler::ProgramKind::kElementwise:
      execute_elementwise(ctx, plan, arrays);
      return;
  }
}

std::map<std::string, std::unique_ptr<runtime::OutOfCoreArray>>
create_sequence_arrays(sim::SpmdContext& ctx,
                       std::span<const compiler::NodeProgram> plans,
                       const std::filesystem::path& dir,
                       const io::DiskModel& disk) {
  std::map<std::string, const compiler::PlanArray*> merged;
  for (const compiler::NodeProgram& plan : plans) {
    for (const auto& [name, pa] : plan.arrays) {
      const auto it = merged.find(name);
      if (it == merged.end()) {
        merged[name] = &pa;
        continue;
      }
      OOCC_CHECK(it->second->storage == pa.storage &&
                     it->second->dist == pa.dist,
                 ErrorCode::kCompileError,
                 "array '" << name << "' is placed differently by two plans "
                 "of the sequence (storage "
                     << io::storage_order_name(it->second->storage) << " vs "
                     << io::storage_order_name(pa.storage) << ")");
    }
  }
  std::map<std::string, std::unique_ptr<runtime::OutOfCoreArray>> out;
  for (const auto& [name, pa] : merged) {
    out[name] = std::make_unique<runtime::OutOfCoreArray>(
        ctx, dir, name, pa->dist, pa->storage, disk);
  }
  return out;
}

void execute_sequence(sim::SpmdContext& ctx,
                      std::span<const compiler::NodeProgram> plans,
                      const ArrayBindings& arrays) {
  for (const compiler::NodeProgram& plan : plans) {
    ArrayBindings subset;
    for (const auto& [name, pa] : plan.arrays) {
      const auto it = arrays.find(name);
      OOCC_CHECK(it != arrays.end(), ErrorCode::kRuntimeError,
                 "sequence binding is missing array '" << name << "'");
      subset[name] = it->second;
    }
    execute(ctx, plan, subset);
  }
}

}  // namespace oocc::exec
