// Plan interpreter: runs a compiled NodeProgram on the simulated machine.
//
// This closes the loop the paper describes: HPF source -> two-phase
// compilation -> node program with explicit I/O and message passing ->
// execution on the distributed-memory machine. There is one generic
// executor: it walks the plan's slab-program IR (ForEachSlab /
// ForEachColumn structure with ReadSlab, WriteSlab, ComputeElementwise,
// ComputeGaxpyPartial, ReduceSum, Barrier leaves). By default every
// ReadSlab/WriteSlab routes through a runtime::SlabBufferPool shared
// across the statements of a sequence, so slabs a statement staged (or a
// re-sweep already fetched) are served from memory, guided by the
// compiler's reuse-distance annotations; prefetching loops drive an
// IoScheduler read-ahead queue. With the cache disabled (ExecOptions /
// OOCC_NO_CACHE) slab streams fall back to per-loop
// runtime::PrefetchingSlabReaders and direct write-through — bit-identical
// to the pre-pool executor. The GAXPY and elementwise translations are
// just different step programs.
#pragma once

#include <filesystem>
#include <map>
#include <memory>
#include <span>

#include "oocc/compiler/plan.hpp"
#include "oocc/runtime/bufferpool.hpp"
#include "oocc/runtime/ooc_array.hpp"

namespace oocc::exec {

/// Per-processor set of arrays bound to a plan.
using ArrayBindings = std::map<std::string, runtime::OutOfCoreArray*>;

/// Outcome of a stencil plan's iterate-to-convergence driver.
struct StencilRunInfo {
  int iterations = 0;        ///< sweeps actually run
  double final_residual = 0.0;  ///< global max |update| of the last sweep
  /// Name of the array holding the final state (the ping-pong pair swaps
  /// roles every sweep, so this is lhs after an odd count, source after an
  /// even one).
  std::string result;
};

/// Per-run executor knobs.
struct ExecOptions {
  /// Route slab I/O through a reuse-aware SlabBufferPool (shared across a
  /// sequence's statements). Off reproduces the pre-pool executor exactly:
  /// per-loop readers, every sweep re-reads, writes go straight through.
  bool use_cache = true;
  /// Memory available to the executor in elements; 0 = the plan's own
  /// memory_budget_elements (for a sequence: the max across its plans).
  /// Values above the plan budget give the pool headroom to retain slabs.
  std::int64_t budget_elements = 0;
  /// When non-null, the pool's counters are merged into it after the run.
  runtime::SlabCacheStats* cache_stats = nullptr;

  /// Attach the machine's real async I/O engine to the pool, so prefetch
  /// and write-back physically overlap compute in wall-clock. Simulated
  /// accounting is identical either way (docs/async-io.md); off (or
  /// OOCC_ASYNC=0 / --no-async) falls back to synchronous host I/O
  /// bit-identically.
  bool async = true;

  /// Stencil plans only: number of Jacobi-style sweeps to run, ping-ponging
  /// the lhs/source pair between sweeps. Ignored by other plan kinds.
  int max_iters = 1;
  /// Stencil plans only: when > 0, stop as soon as the global max |update|
  /// of a sweep drops to (or below) this threshold.
  double residual_tol = 0.0;
  /// When non-null, filled with the stencil driver's outcome.
  StencilRunInfo* stencil_info = nullptr;

  /// Crash-consistent write-back: route every bound array's LAF writes
  /// through the shadow journal (laf.hpp). Off by default — it adds one
  /// disk request per write, which would skew fault-free cost accounting.
  /// default_exec_options turns it on when OOCC_JOURNAL is set or a fault
  /// plan is active.
  bool journal = false;

  /// Stencil plans only: checkpoint the live half of the ping-pong pair
  /// every k completed sweeps to checkpoint_dir (0 = off). See
  /// exec/checkpoint.hpp for the commit protocol.
  int checkpoint_every = 0;
  std::filesystem::path checkpoint_dir;
  /// Stencil plans only: first sweep index. The restart driver sets this
  /// to the restored checkpoint's sweep count so ping-pong parity and the
  /// remaining iteration count line up with the uninterrupted run.
  int start_iteration = 0;

  /// Statically verify plans that arrive without the compiler's
  /// NodeProgram::verified stamp (hand-built or mutated programs) before
  /// running them, throwing Error(kVerifyError) on a violation. Stamped
  /// plans are never re-verified — execution stays zero-overhead for the
  /// compile() path.
  bool verify = true;
};

/// ExecOptions honouring the environment: OOCC_NO_CACHE disables the pool,
/// OOCC_NO_VERIFY skips verification of unstamped plans.
ExecOptions default_exec_options();

/// Creates one OutOfCoreArray per plan array (with the plan's storage
/// orders) under `dir`. Call inside the SPMD region.
std::map<std::string, std::unique_ptr<runtime::OutOfCoreArray>>
create_plan_arrays(sim::SpmdContext& ctx, const compiler::NodeProgram& plan,
                   const std::filesystem::path& dir,
                   const io::DiskModel& disk);

/// Executes the plan. `arrays` must contain every plan array, created with
/// the plan's storage orders (create_plan_arrays does this); a memory
/// budget of plan.memory_budget_elements is enforced. Collective: every
/// rank calls it. Throws Error(kRuntimeError) on binding mismatches.
void execute(sim::SpmdContext& ctx, const compiler::NodeProgram& plan,
             const ArrayBindings& arrays);
void execute(sim::SpmdContext& ctx, const compiler::NodeProgram& plan,
             const ArrayBindings& arrays, const ExecOptions& options);

/// Creates the union of arrays across a compiled statement sequence.
/// Throws Error(kCompileError) if two plans disagree about an array's
/// storage order or distribution.
std::map<std::string, std::unique_ptr<runtime::OutOfCoreArray>>
create_sequence_arrays(sim::SpmdContext& ctx,
                       std::span<const compiler::NodeProgram> plans,
                       const std::filesystem::path& dir,
                       const io::DiskModel& disk);

/// Executes every plan of a compiled sequence in order; dependencies flow
/// through the arrays' Local Array Files. Collective.
void execute_sequence(sim::SpmdContext& ctx,
                      std::span<const compiler::NodeProgram> plans,
                      const ArrayBindings& arrays);
void execute_sequence(sim::SpmdContext& ctx,
                      std::span<const compiler::NodeProgram> plans,
                      const ArrayBindings& arrays,
                      const ExecOptions& options);

}  // namespace oocc::exec
