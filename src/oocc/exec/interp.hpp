// Plan interpreter: runs a compiled NodeProgram on the simulated machine.
//
// This closes the loop the paper describes: HPF source -> two-phase
// compilation -> node program with explicit I/O and message passing ->
// execution on the distributed-memory machine. There is one generic
// executor: it walks the plan's slab-program IR (ForEachSlab /
// ForEachColumn structure with ReadSlab, WriteSlab, ComputeElementwise,
// ComputeGaxpyPartial, ReduceSum, Barrier leaves), streaming every slab
// read through runtime::PrefetchingSlabReader so double-buffering is a
// per-loop flag rather than a per-kernel rewrite. The GAXPY and
// elementwise translations are just different step programs.
#pragma once

#include <filesystem>
#include <map>
#include <memory>
#include <span>

#include "oocc/compiler/plan.hpp"
#include "oocc/runtime/ooc_array.hpp"

namespace oocc::exec {

/// Per-processor set of arrays bound to a plan.
using ArrayBindings = std::map<std::string, runtime::OutOfCoreArray*>;

/// Creates one OutOfCoreArray per plan array (with the plan's storage
/// orders) under `dir`. Call inside the SPMD region.
std::map<std::string, std::unique_ptr<runtime::OutOfCoreArray>>
create_plan_arrays(sim::SpmdContext& ctx, const compiler::NodeProgram& plan,
                   const std::filesystem::path& dir,
                   const io::DiskModel& disk);

/// Executes the plan. `arrays` must contain every plan array, created with
/// the plan's storage orders (create_plan_arrays does this); a memory
/// budget of plan.memory_budget_elements is enforced. Collective: every
/// rank calls it. Throws Error(kRuntimeError) on binding mismatches.
void execute(sim::SpmdContext& ctx, const compiler::NodeProgram& plan,
             const ArrayBindings& arrays);

/// Creates the union of arrays across a compiled statement sequence.
/// Throws Error(kCompileError) if two plans disagree about an array's
/// storage order or distribution.
std::map<std::string, std::unique_ptr<runtime::OutOfCoreArray>>
create_sequence_arrays(sim::SpmdContext& ctx,
                       std::span<const compiler::NodeProgram> plans,
                       const std::filesystem::path& dir,
                       const io::DiskModel& disk);

/// Executes every plan of a compiled sequence in order; dependencies flow
/// through the arrays' Local Array Files. Collective.
void execute_sequence(sim::SpmdContext& ctx,
                      std::span<const compiler::NodeProgram> plans,
                      const ArrayBindings& arrays);

}  // namespace oocc::exec
