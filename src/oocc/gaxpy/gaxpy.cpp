#include "oocc/gaxpy/gaxpy.hpp"

#include <algorithm>

#include "oocc/runtime/prefetch.hpp"
#include "oocc/runtime/slab_iter.hpp"
#include "oocc/runtime/slab_writer.hpp"
#include "oocc/sim/collectives.hpp"
#include "oocc/util/error.hpp"

namespace oocc::gaxpy {

using runtime::OwnedColumnWriter;

namespace {

/// Validates the Figure 6 layout: A, C column-block; B row-block; square.
void check_gaxpy_layout(const runtime::OutOfCoreArray& a,
                        const runtime::OutOfCoreArray& b,
                        const runtime::OutOfCoreArray& c) {
  const std::int64_t n = a.dist().global_rows();
  OOCC_REQUIRE(a.dist().global_cols() == n && b.dist().global_rows() == n &&
                   b.dist().global_cols() == n &&
                   c.dist().global_rows() == n && c.dist().global_cols() == n,
               "GAXPY kernels require square N x N arrays");
  OOCC_REQUIRE(a.dist().axis() == hpf::DistAxis::kCols,
               "A must be column-block distributed, got "
                   << a.dist().to_string());
  OOCC_REQUIRE(c.dist().axis() == hpf::DistAxis::kCols,
               "C must be column-block distributed, got "
                   << c.dist().to_string());
  OOCC_REQUIRE(b.dist().axis() == hpf::DistAxis::kRows,
               "B must be row-block distributed, got "
                   << b.dist().to_string());
}

}  // namespace

void ooc_gaxpy_column_slabs(sim::SpmdContext& ctx,
                            runtime::OutOfCoreArray& a,
                            runtime::OutOfCoreArray& b,
                            runtime::OutOfCoreArray& c,
                            runtime::MemoryBudget& budget,
                            const GaxpyConfig& config) {
  check_gaxpy_layout(a, b, c);
  const std::int64_t n = a.dist().global_rows();
  const std::int64_t nlc = a.local_cols();  // local columns of A (= rows of B)

  // Stripmined index spaces (§3.3): column slabs for A and B.
  runtime::SlabIterator a_slabs(n, nlc, runtime::SlabOrientation::kColumnSlabs,
                                config.slab_a_elements);
  runtime::SlabIterator b_slabs(nlc, n, runtime::SlabOrientation::kColumnSlabs,
                                config.slab_b_elements);

  runtime::IclaBuffer a_icla(budget, a_slabs.slab_elements(), "icla_a");
  runtime::IclaBuffer b_icla(budget, b_slabs.slab_elements(), "icla_b");
  // C's ICLA buffers whole output columns; it needs room for at least one.
  runtime::IclaBuffer c_icla(
      budget, std::max<std::int64_t>(config.slab_c_elements, n), "icla_c");
  // The temporary vector of Figure 9 holds one full column of C.
  std::vector<double> temp(static_cast<std::size_t>(n));
  budget.reserve(n, "temp column");

  OwnedColumnWriter c_writer(c, c_icla, 0, n);

  // Figure 9's loop nest. The outer loop walks column slabs of B; each
  // local B column m corresponds to global output column `gj` because B's
  // column dimension is collapsed (every processor sees all columns).
  std::int64_t gj = 0;
  for (std::int64_t l = 0; l < b_slabs.count(); ++l) {
    b_icla.load(ctx, b.laf(), b_slabs.section(l));
    for (std::int64_t m = 0; m < b_icla.section().cols(); ++m, ++gj) {
      std::fill(temp.begin(), temp.end(), 0.0);
      for (std::int64_t sa = 0; sa < a_slabs.count(); ++sa) {
        a_icla.load(ctx, a.laf(), a_slabs.section(sa));
        const io::Section asec = a_icla.section();
        for (std::int64_t i = 0; i < asec.cols(); ++i) {
          // Local column asec.col0+i of A pairs with local row of B at the
          // same local index (both derive from the same BLOCK template).
          const double bval = b_icla.at(asec.col0 + i, m);
          const double* acol = &a_icla.at(0, i);
          for (std::int64_t r = 0; r < n; ++r) {
            temp[static_cast<std::size_t>(r)] += acol[r] * bval;
          }
        }
        ctx.charge_flops(2.0 * static_cast<double>(n) *
                         static_cast<double>(asec.cols()));
      }
      // Global sum of the partial columns; the owner stores column gj.
      const int owner = c.dist().owner_of_col(gj);
      std::vector<double> summed = sim::reduce_sum<double>(
          ctx, owner, std::span<const double>(temp.data(), temp.size()));
      if (ctx.rank() == owner) {
        c_writer.append(ctx, c.dist().global_to_local_col(gj),
                        std::span<const double>(summed.data(), summed.size()));
      }
    }
  }
  c_writer.flush(ctx);
  budget.release(n);
}

void ooc_gaxpy_row_slabs(sim::SpmdContext& ctx, runtime::OutOfCoreArray& a,
                         runtime::OutOfCoreArray& b,
                         runtime::OutOfCoreArray& c,
                         runtime::MemoryBudget& budget,
                         const GaxpyConfig& config) {
  check_gaxpy_layout(a, b, c);
  const std::int64_t n = a.dist().global_rows();
  const std::int64_t nlc = a.local_cols();

  runtime::SlabIterator a_slabs(n, nlc, runtime::SlabOrientation::kRowSlabs,
                                config.slab_a_elements);
  runtime::SlabIterator b_slabs(nlc, n, runtime::SlabOrientation::kColumnSlabs,
                                config.slab_b_elements);

  // A's slabs are optionally double-buffered (prefetch ablation). The
  // reader owns A's ICLA buffers.
  runtime::IclaBuffer b_icla(budget, b_slabs.slab_elements(), "icla_b");
  // C's ICLA buffers subcolumns of slab height; room for at least one.
  runtime::IclaBuffer c_icla(
      budget,
      std::max<std::int64_t>(config.slab_c_elements, a_slabs.slab_span()),
      "icla_c");
  std::vector<double> temp(
      static_cast<std::size_t>(a_slabs.slab_span()));
  budget.reserve(a_slabs.slab_span(), "temp subcolumn");

  // Figure 12's loop nest: A's row slabs outermost, fetched exactly once.
  runtime::PrefetchingSlabReader a_reader(ctx, a.laf(), a_slabs, budget,
                                          "icla_a", config.prefetch);
  for (std::int64_t l = 0; l < a_slabs.count(); ++l) {
    const runtime::IclaBuffer& a_icla = a_reader.acquire(ctx, l);
    const io::Section asec = a_icla.section();
    const std::int64_t hr = asec.rows();
    OwnedColumnWriter c_writer(c, c_icla, asec.row0, asec.row1);

    std::int64_t gj = 0;
    for (std::int64_t nb = 0; nb < b_slabs.count(); ++nb) {
      b_icla.load(ctx, b.laf(), b_slabs.section(nb));
      for (std::int64_t m = 0; m < b_icla.section().cols(); ++m, ++gj) {
        std::fill(temp.begin(),
                  temp.begin() + static_cast<std::ptrdiff_t>(hr), 0.0);
        for (std::int64_t i = 0; i < nlc; ++i) {
          const double bval = b_icla.at(i, m);
          const double* acol = &a_icla.at(0, i);
          for (std::int64_t r = 0; r < hr; ++r) {
            temp[static_cast<std::size_t>(r)] += acol[r] * bval;
          }
        }
        ctx.charge_flops(2.0 * static_cast<double>(hr) *
                         static_cast<double>(nlc));
        // Global sum of the subcolumn [row0, row1) of output column gj.
        const int owner = c.dist().owner_of_col(gj);
        std::vector<double> summed = sim::reduce_sum<double>(
            ctx, owner, std::span<const double>(temp.data(),
                                                static_cast<std::size_t>(hr)));
        if (ctx.rank() == owner) {
          c_writer.append(
              ctx, c.dist().global_to_local_col(gj),
              std::span<const double>(summed.data(), summed.size()));
        }
      }
    }
    c_writer.flush(ctx);
  }
  budget.release(a_slabs.slab_span());
}

void in_core_gaxpy(sim::SpmdContext& ctx, runtime::OutOfCoreArray& a,
                   runtime::OutOfCoreArray& b, runtime::OutOfCoreArray& c) {
  check_gaxpy_layout(a, b, c);
  const std::int64_t n = a.dist().global_rows();
  const std::int64_t nlc = a.local_cols();

  // One initial read of the full local arrays (the in-core baseline's only
  // I/O besides the final write of C).
  std::vector<double> la(static_cast<std::size_t>(n * nlc));
  std::vector<double> lb(static_cast<std::size_t>(nlc * n));
  std::vector<double> lc(static_cast<std::size_t>(n * nlc), 0.0);
  a.laf().read_full(ctx, std::span<double>(la.data(), la.size()));
  b.laf().read_full(ctx, std::span<double>(lb.data(), lb.size()));

  std::vector<double> temp(static_cast<std::size_t>(n));
  for (std::int64_t gj = 0; gj < n; ++gj) {
    std::fill(temp.begin(), temp.end(), 0.0);
    for (std::int64_t i = 0; i < nlc; ++i) {
      const double bval = lb[static_cast<std::size_t>(gj * nlc + i)];
      const double* acol = &la[static_cast<std::size_t>(i * n)];
      for (std::int64_t r = 0; r < n; ++r) {
        temp[static_cast<std::size_t>(r)] += acol[r] * bval;
      }
    }
    ctx.charge_flops(2.0 * static_cast<double>(n) * static_cast<double>(nlc));
    const int owner = c.dist().owner_of_col(gj);
    std::vector<double> summed = sim::reduce_sum<double>(
        ctx, owner, std::span<const double>(temp.data(), temp.size()));
    if (ctx.rank() == owner) {
      const std::int64_t jl = c.dist().global_to_local_col(gj);
      std::copy(summed.begin(), summed.end(),
                lc.begin() + static_cast<std::ptrdiff_t>(jl * n));
    }
  }
  c.laf().write_full(ctx, std::span<const double>(lc.data(), lc.size()));
}

std::vector<double> serial_matmul(const std::vector<double>& a,
                                  const std::vector<double>& b,
                                  std::int64_t n) {
  OOCC_REQUIRE(a.size() == static_cast<std::size_t>(n * n) &&
                   b.size() == static_cast<std::size_t>(n * n),
               "serial_matmul expects " << n << "x" << n << " inputs");
  std::vector<double> c(static_cast<std::size_t>(n * n), 0.0);
  for (std::int64_t j = 0; j < n; ++j) {
    for (std::int64_t k = 0; k < n; ++k) {
      const double bkj = b[static_cast<std::size_t>(j * n + k)];
      const double* acol = &a[static_cast<std::size_t>(k * n)];
      double* ccol = &c[static_cast<std::size_t>(j * n)];
      for (std::int64_t r = 0; r < n; ++r) {
        ccol[r] += acol[r] * bkj;
      }
    }
  }
  return c;
}

}  // namespace oocc::gaxpy
