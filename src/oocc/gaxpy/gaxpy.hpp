// Distributed GAXPY matrix multiplication kernels — the paper's running
// example, in the three forms it analyzes:
//
//  * in_core_gaxpy         — Figure 5: the hand-coded in-core node program
//                            (arrays read from disk once, then held in
//                            memory). Table 1's "In-core" row.
//  * ooc_gaxpy_column_slabs — Figure 9: the straightforward extension of
//                            in-core compilation: A swept in column slabs
//                            once per output column. T_fetch = N^3/(M*P).
//  * ooc_gaxpy_row_slabs   — Figure 12: the reorganized access pattern:
//                            A swept once in row slabs. T_fetch = N^2/(M*P).
//
// C = A * B with A, C column-block and B row-block distributed over P
// processors (Figure 6), all three stored out of core in Local Array
// Files. These kernels compute real results (validated against
// serial_matmul in the tests) while charging simulated compute, I/O and
// communication costs.
#pragma once

#include <cstdint>
#include <vector>

#include "oocc/runtime/icla.hpp"
#include "oocc/runtime/ooc_array.hpp"
#include "oocc/sim/machine.hpp"

namespace oocc::gaxpy {

/// Slab-size configuration (in elements) for the out-of-core kernels.
/// §4.2.1: the compiler divides the node memory budget among the three
/// competing arrays; Table 2 varies slab_a/slab_b independently.
struct GaxpyConfig {
  std::int64_t slab_a_elements = 0;
  std::int64_t slab_b_elements = 0;
  std::int64_t slab_c_elements = 0;
  bool prefetch = false;  ///< double-buffer A's slabs (row-slab kernel only)
};

/// Figure 9 (column-slab version). Expects A, C column-block and B
/// row-block over ctx.nprocs() processors, square N x N. Works with any
/// LAF storage orders; requests are charged per contiguous extent, so
/// column-major A/B/C is the natural (cheapest) layout here.
void ooc_gaxpy_column_slabs(sim::SpmdContext& ctx,
                            runtime::OutOfCoreArray& a,
                            runtime::OutOfCoreArray& b,
                            runtime::OutOfCoreArray& c,
                            runtime::MemoryBudget& budget,
                            const GaxpyConfig& config);

/// Figure 12 (row-slab version). Same distributions; A is swept once in
/// row slabs (cheapest when A's LAF is row-major — the compiler pairs this
/// kernel with storage reorganization), B is re-read once per A slab.
void ooc_gaxpy_row_slabs(sim::SpmdContext& ctx, runtime::OutOfCoreArray& a,
                         runtime::OutOfCoreArray& b,
                         runtime::OutOfCoreArray& c,
                         runtime::MemoryBudget& budget,
                         const GaxpyConfig& config);

/// Figure 5 baseline: one initial read of the full local arrays, all
/// compute in memory, one final write of local C.
void in_core_gaxpy(sim::SpmdContext& ctx, runtime::OutOfCoreArray& a,
                   runtime::OutOfCoreArray& b, runtime::OutOfCoreArray& c);

/// Serial reference multiply of column-major n x n globals (for tests).
std::vector<double> serial_matmul(const std::vector<double>& a,
                                  const std::vector<double>& b,
                                  std::int64_t n);

}  // namespace oocc::gaxpy
