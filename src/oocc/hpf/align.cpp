#include "oocc/hpf/align.hpp"

#include "oocc/util/error.hpp"

namespace oocc::hpf {

ArrayDistribution resolve_alignment(const std::vector<AlignDim>& dims,
                                    const TemplateInfo& tmpl,
                                    std::int64_t rows, std::int64_t cols,
                                    const std::string& array_name) {
  const int rank = cols == 1 && dims.size() == 1 ? 1 : 2;
  OOCC_CHECK(dims.size() == static_cast<std::size_t>(rank),
             ErrorCode::kSemanticError,
             "align spec for '" << array_name << "' has " << dims.size()
                                << " positions but the array has rank "
                                << rank);

  int aligned_dim = -1;
  for (std::size_t i = 0; i < dims.size(); ++i) {
    if (dims[i] == AlignDim::kColon) {
      OOCC_CHECK(aligned_dim == -1, ErrorCode::kSemanticError,
                 "align spec for '" << array_name
                                    << "' aligns more than one dimension "
                                       "with a 1-D template");
      aligned_dim = static_cast<int>(i);
    }
  }
  OOCC_CHECK(aligned_dim != -1, ErrorCode::kSemanticError,
             "align spec for '" << array_name
                                << "' aligns no dimension (all '*')");

  const std::int64_t aligned_extent = aligned_dim == 0 ? rows : cols;
  OOCC_CHECK(aligned_extent == tmpl.extent, ErrorCode::kSemanticError,
             "dimension " << aligned_dim + 1 << " of '" << array_name
                          << "' has extent " << aligned_extent
                          << " but template '" << tmpl.name << "' has extent "
                          << tmpl.extent);

  const DistAxis axis = aligned_dim == 0 ? DistAxis::kRows : DistAxis::kCols;
  return ArrayDistribution(rows, cols, axis, tmpl.kind, tmpl.nprocs,
                           tmpl.block);
}

}  // namespace oocc::hpf
