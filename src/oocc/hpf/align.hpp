// Resolution of ALIGN directives onto distributed templates.
//
// The subset uses 1-D templates: `align (*,:) with d :: a` aligns a's
// second dimension with template d, so d's DISTRIBUTE determines how a's
// columns are divided among processors; '*' positions are collapsed (the
// processor holds the full extent of that dimension). This is how the
// paper obtains column-block A/C and row-block B from one BLOCK template.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "oocc/hpf/ast.hpp"
#include "oocc/hpf/distribution.hpp"

namespace oocc::hpf {

/// A template bound to its DISTRIBUTE directive.
struct TemplateInfo {
  std::string name;
  std::int64_t extent = 0;
  DistKind kind = DistKind::kBlock;
  std::int64_t block = 0;  ///< block size for kBlockCyclic
  int nprocs = 1;
};

/// Computes the distribution of a `rows` x `cols` array (rank 1 arrays use
/// cols == 1 and a single align dim) from its align spec and the template.
/// Throws Error(kSemanticError) when the spec arity mismatches the rank,
/// more or fewer than one dimension is aligned, or the aligned extent does
/// not match the template extent.
ArrayDistribution resolve_alignment(const std::vector<AlignDim>& dims,
                                    const TemplateInfo& tmpl,
                                    std::int64_t rows, std::int64_t cols,
                                    const std::string& array_name);

}  // namespace oocc::hpf
