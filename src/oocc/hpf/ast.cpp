#include "oocc/hpf/ast.hpp"

#include <sstream>

#include "oocc/util/error.hpp"

namespace oocc::hpf {

ExprPtr make_int(std::int64_t value, int line) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kIntConst;
  e->int_value = value;
  e->line = line;
  return e;
}

ExprPtr make_var(std::string name, int line) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kVarRef;
  e->name = std::move(name);
  e->line = line;
  return e;
}

ExprPtr make_binary(BinOp op, ExprPtr lhs, ExprPtr rhs, int line) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kBinary;
  e->op = op;
  e->lhs = std::move(lhs);
  e->rhs = std::move(rhs);
  e->line = line;
  return e;
}

ExprPtr clone_expr(const Expr& e) {
  auto out = std::make_unique<Expr>();
  out->kind = e.kind;
  out->line = e.line;
  out->int_value = e.int_value;
  out->name = e.name;
  out->op = e.op;
  if (e.lhs) out->lhs = clone_expr(*e.lhs);
  if (e.rhs) out->rhs = clone_expr(*e.rhs);
  out->subscripts.reserve(e.subscripts.size());
  for (const Subscript& s : e.subscripts) {
    Subscript c;
    c.kind = s.kind;
    if (s.scalar) c.scalar = clone_expr(*s.scalar);
    if (s.lo) c.lo = clone_expr(*s.lo);
    if (s.hi) c.hi = clone_expr(*s.hi);
    out->subscripts.push_back(std::move(c));
  }
  return out;
}

std::int64_t count_binary_ops(const Expr& e) {
  std::int64_t ops = e.kind == ExprKind::kBinary ? 1 : 0;
  if (e.lhs) ops += count_binary_ops(*e.lhs);
  if (e.rhs) ops += count_binary_ops(*e.rhs);
  return ops;
}

namespace {

char op_char(BinOp op) noexcept {
  switch (op) {
    case BinOp::kAdd:
      return '+';
    case BinOp::kSub:
      return '-';
    case BinOp::kMul:
      return '*';
    case BinOp::kDiv:
      return '/';
  }
  return '?';
}

}  // namespace

std::string to_string(const Subscript& s) {
  switch (s.kind) {
    case SubscriptKind::kFull:
      return ":";
    case SubscriptKind::kScalar:
      return to_string(*s.scalar);
    case SubscriptKind::kRange:
      return to_string(*s.lo) + ":" + to_string(*s.hi);
  }
  return "?";
}

std::string to_string(const Expr& e) {
  switch (e.kind) {
    case ExprKind::kIntConst:
      return std::to_string(e.int_value);
    case ExprKind::kVarRef:
      return e.name;
    case ExprKind::kArrayRef: {
      std::string out = e.name + "(";
      for (std::size_t i = 0; i < e.subscripts.size(); ++i) {
        if (i != 0) out += ",";
        out += to_string(e.subscripts[i]);
      }
      return out + ")";
    }
    case ExprKind::kBinary:
      return "(" + to_string(*e.lhs) + op_char(e.op) + to_string(*e.rhs) + ")";
    case ExprKind::kSumIntrinsic:
      return "sum(" + e.name + "," + std::to_string(e.int_value) + ")";
  }
  return "?";
}

std::int64_t evaluate_scalar(const Expr& e,
                             const std::map<std::string, std::int64_t>& env) {
  switch (e.kind) {
    case ExprKind::kIntConst:
      return e.int_value;
    case ExprKind::kVarRef: {
      const auto it = env.find(e.name);
      OOCC_CHECK(it != env.end(), ErrorCode::kSemanticError,
                 "unbound scalar '" << e.name << "' at line " << e.line);
      return it->second;
    }
    case ExprKind::kBinary: {
      const std::int64_t a = evaluate_scalar(*e.lhs, env);
      const std::int64_t b = evaluate_scalar(*e.rhs, env);
      switch (e.op) {
        case BinOp::kAdd:
          return a + b;
        case BinOp::kSub:
          return a - b;
        case BinOp::kMul:
          return a * b;
        case BinOp::kDiv:
          OOCC_CHECK(b != 0, ErrorCode::kSemanticError,
                     "division by zero at line " << e.line);
          return a / b;
      }
      return 0;
    }
    case ExprKind::kArrayRef:
      OOCC_THROW(ErrorCode::kSemanticError,
                 "array reference '" << e.name
                                     << "' used where a scalar is required "
                                        "at line "
                                     << e.line);
    case ExprKind::kSumIntrinsic:
      OOCC_THROW(ErrorCode::kSemanticError,
                 "SUM intrinsic used where a scalar is required at line "
                     << e.line);
  }
  return 0;
}

StmtPtr clone_stmt(const Stmt& s) {
  auto out = std::make_unique<Stmt>();
  out->kind = s.kind;
  out->line = s.line;
  out->loop_var = s.loop_var;
  if (s.lo) out->lo = clone_expr(*s.lo);
  if (s.hi) out->hi = clone_expr(*s.hi);
  if (s.lhs) out->lhs = clone_expr(*s.lhs);
  if (s.rhs) out->rhs = clone_expr(*s.rhs);
  out->body.reserve(s.body.size());
  for (const auto& b : s.body) {
    out->body.push_back(clone_stmt(*b));
  }
  return out;
}

std::string to_string(const Stmt& s, int indent) {
  const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
  std::ostringstream oss;
  switch (s.kind) {
    case StmtKind::kDo:
      oss << pad << "do " << s.loop_var << "=" << to_string(*s.lo) << ", "
          << to_string(*s.hi) << "\n";
      for (const auto& b : s.body) {
        oss << to_string(*b, indent + 1);
      }
      oss << pad << "end do\n";
      break;
    case StmtKind::kForall:
      oss << pad << "forall (" << s.loop_var << "=" << to_string(*s.lo) << ":"
          << to_string(*s.hi) << ")\n";
      for (const auto& b : s.body) {
        oss << to_string(*b, indent + 1);
      }
      oss << pad << "end forall\n";
      break;
    case StmtKind::kAssign:
      oss << pad << to_string(*s.lhs) << " = " << to_string(*s.rhs) << "\n";
      break;
  }
  return oss.str();
}

std::string to_string(const Program& p) {
  std::ostringstream oss;
  if (!p.parameters.empty()) {
    oss << "parameter (";
    bool first = true;
    for (const auto& [name, value] : p.parameters) {
      if (!first) oss << ", ";
      oss << name << "=" << value;
      first = false;
    }
    oss << ")\n";
  }
  for (const auto& a : p.arrays) {
    oss << "real " << a.name << "(";
    for (std::size_t i = 0; i < a.extents.size(); ++i) {
      if (i != 0) oss << ",";
      oss << to_string(*a.extents[i]);
    }
    oss << ")\n";
  }
  if (p.processors.has_value()) {
    oss << "!hpf$ processors " << p.processors->name << "("
        << to_string(*p.processors->count) << ")\n";
  }
  for (const auto& t : p.templates) {
    oss << "!hpf$ template " << t.name << "(" << to_string(*t.extent) << ")\n";
  }
  for (const auto& d : p.distributes) {
    oss << "!hpf$ distribute " << d.template_name << "(";
    switch (d.kind) {
      case DistSpecKind::kBlock:
        oss << "block";
        break;
      case DistSpecKind::kCyclic:
        oss << "cyclic";
        break;
      case DistSpecKind::kBlockCyclic:
        oss << "cyclic(" << to_string(*d.block) << ")";
        break;
    }
    oss << ") onto " << d.processors_name << "\n";
  }
  for (const auto& al : p.aligns) {
    oss << "!hpf$ align (";
    for (std::size_t i = 0; i < al.dims.size(); ++i) {
      if (i != 0) oss << ",";
      oss << (al.dims[i] == AlignDim::kStar ? "*" : ":");
    }
    oss << ") with " << al.template_name << " ::";
    for (std::size_t i = 0; i < al.arrays.size(); ++i) {
      oss << (i == 0 ? " " : ", ") << al.arrays[i];
    }
    oss << "\n";
  }
  for (const auto& s : p.stmts) {
    oss << to_string(*s, 0);
  }
  oss << "end\n";
  return oss.str();
}

}  // namespace oocc::hpf
