// Abstract syntax tree for the HPF subset (Figure 3 of the paper and the
// surrounding class of data-parallel programs).
//
// Supported program shape:
//   parameter (name=int, ...)
//   real a(n,n), b(n,m), v(n)
//   !hpf$ processors Pr(p)
//   !hpf$ template d(n)
//   !hpf$ distribute d(block) onto Pr        (block | cyclic | cyclic(k))
//   !hpf$ align (*,:) with d :: a, c
//   do j=1, n ... end do                     (sequential loop)
//   forall (k=1:n) stmt... end forall        (parallel loop)
//   lhs-section = expr                        (array assignment)
//   x(1:n,j) = SUM(temp, 2)                   (sum-reduction intrinsic)
//   end
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace oocc::hpf {

// ---------------------------------------------------------------- exprs --

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

enum class ExprKind {
  kIntConst,     ///< integer literal (or folded parameter)
  kVarRef,       ///< scalar variable / loop index / parameter reference
  kArrayRef,     ///< array element or section reference
  kBinary,       ///< arithmetic on scalars or elementwise on sections
  kSumIntrinsic  ///< SUM(array, dim)
};

enum class BinOp { kAdd, kSub, kMul, kDiv };

/// One subscript of an array reference.
enum class SubscriptKind {
  kScalar,  ///< a(expr, ...)
  kRange,   ///< a(lo:hi, ...) — inclusive Fortran bounds
  kFull     ///< a(:, ...)
};

struct Subscript {
  SubscriptKind kind = SubscriptKind::kFull;
  ExprPtr scalar;  ///< kScalar
  ExprPtr lo;      ///< kRange
  ExprPtr hi;      ///< kRange
};

struct Expr {
  ExprKind kind = ExprKind::kIntConst;
  int line = 0;

  std::int64_t int_value = 0;         ///< kIntConst; dim for kSumIntrinsic
  std::string name;                   ///< kVarRef / kArrayRef / kSumIntrinsic
  std::vector<Subscript> subscripts;  ///< kArrayRef
  BinOp op = BinOp::kAdd;             ///< kBinary
  ExprPtr lhs;                        ///< kBinary
  ExprPtr rhs;                        ///< kBinary
};

ExprPtr make_int(std::int64_t value, int line = 0);
ExprPtr make_var(std::string name, int line = 0);
ExprPtr make_binary(BinOp op, ExprPtr lhs, ExprPtr rhs, int line = 0);
ExprPtr clone_expr(const Expr& e);

/// Number of binary operations one evaluation of `e` performs — the flop
/// count both the executor charges and the cost model prices for a
/// compiled expression (one shared definition keeps them identical).
std::int64_t count_binary_ops(const Expr& e);

/// Renders an expression back to (lower-case) source-like text.
std::string to_string(const Expr& e);
std::string to_string(const Subscript& s);

/// Evaluates a scalar expression given variable bindings (parameters and
/// loop indices). Throws Error(kSemanticError) on unbound names, array
/// references, or division by zero.
std::int64_t evaluate_scalar(const Expr& e,
                             const std::map<std::string, std::int64_t>& env);

// ---------------------------------------------------------------- stmts --

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

enum class StmtKind {
  kDo,      ///< sequential DO loop
  kForall,  ///< parallel FORALL construct
  kAssign   ///< (array) assignment statement
};

struct Stmt {
  StmtKind kind = StmtKind::kAssign;
  int line = 0;

  // kDo / kForall
  std::string loop_var;
  ExprPtr lo;
  ExprPtr hi;
  std::vector<StmtPtr> body;

  // kAssign
  ExprPtr lhs;  ///< must be an ArrayRef (scalar assignment unsupported)
  ExprPtr rhs;
};

std::string to_string(const Stmt& s, int indent = 0);

/// Deep copy of a statement tree.
StmtPtr clone_stmt(const Stmt& s);

// --------------------------------------------------------- declarations --

struct ArrayDecl {
  std::string name;
  std::vector<ExprPtr> extents;  ///< 1 or 2 dimensions
  int line = 0;
};

struct ProcessorsDirective {
  std::string name;
  ExprPtr count;
  int line = 0;
};

struct TemplateDirective {
  std::string name;
  ExprPtr extent;  ///< templates in the subset are 1-D
  int line = 0;
};

enum class DistSpecKind { kBlock, kCyclic, kBlockCyclic };

struct DistributeDirective {
  std::string template_name;
  DistSpecKind kind = DistSpecKind::kBlock;
  ExprPtr block;  ///< kBlockCyclic block size
  std::string processors_name;
  int line = 0;
};

/// One position of an align source spec: '*' collapses the array dimension,
/// ':' aligns it with the (1-D) template.
enum class AlignDim { kStar, kColon };

struct AlignDirective {
  std::vector<AlignDim> dims;  ///< one entry per array dimension
  std::string template_name;
  std::vector<std::string> arrays;
  int line = 0;
};

// -------------------------------------------------------------- program --

struct Program {
  std::map<std::string, std::int64_t> parameters;
  std::vector<ArrayDecl> arrays;
  std::optional<ProcessorsDirective> processors;
  std::vector<TemplateDirective> templates;
  std::vector<DistributeDirective> distributes;
  std::vector<AlignDirective> aligns;
  std::vector<StmtPtr> stmts;
};

std::string to_string(const Program& p);

}  // namespace oocc::hpf
