#include "oocc/hpf/distribution.hpp"

#include <algorithm>
#include <sstream>

#include "oocc/util/error.hpp"

namespace oocc::hpf {

std::string_view dist_kind_name(DistKind kind) noexcept {
  switch (kind) {
    case DistKind::kBlock:
      return "BLOCK";
    case DistKind::kCyclic:
      return "CYCLIC";
    case DistKind::kBlockCyclic:
      return "BLOCK-CYCLIC";
    case DistKind::kCollapsed:
      return "*";
  }
  return "?";
}

std::string_view dist_axis_name(DistAxis axis) noexcept {
  switch (axis) {
    case DistAxis::kNone:
      return "none";
    case DistAxis::kRows:
      return "rows";
    case DistAxis::kCols:
      return "cols";
  }
  return "?";
}

DimDistribution::DimDistribution(DistKind kind, std::int64_t extent,
                                 int nprocs, std::int64_t block)
    : kind_(kind), extent_(extent), nprocs_(nprocs) {
  OOCC_REQUIRE(extent >= 1, "dimension extent must be >= 1, got " << extent);
  OOCC_REQUIRE(nprocs >= 1, "processor count must be >= 1, got " << nprocs);
  switch (kind) {
    case DistKind::kBlock:
      block_ = (extent + nprocs - 1) / nprocs;  // ceil(N/P), HPF BLOCK
      break;
    case DistKind::kCyclic:
      block_ = 1;
      break;
    case DistKind::kBlockCyclic:
      OOCC_REQUIRE(block >= 1,
                   "BLOCK-CYCLIC needs a block size >= 1, got " << block);
      block_ = block;
      break;
    case DistKind::kCollapsed:
      block_ = extent;
      nprocs_ = nprocs;  // still recorded; every proc holds the full extent
      break;
  }
}

void DimDistribution::validate_global(std::int64_t g) const {
  OOCC_CHECK(g >= 0 && g < extent_, ErrorCode::kOutOfRange,
             "global index " << g << " outside [0, " << extent_ << ")");
}

void DimDistribution::validate_proc(int proc) const {
  OOCC_CHECK(proc >= 0 && proc < nprocs_, ErrorCode::kOutOfRange,
             "processor " << proc << " outside [0, " << nprocs_ << ")");
}

std::int64_t DimDistribution::local_extent(int proc) const {
  validate_proc(proc);
  switch (kind_) {
    case DistKind::kCollapsed:
      return extent_;
    case DistKind::kBlock: {
      const std::int64_t lo = static_cast<std::int64_t>(proc) * block_;
      if (lo >= extent_) {
        return 0;
      }
      return std::min(block_, extent_ - lo);
    }
    case DistKind::kCyclic: {
      // Elements proc, proc+P, proc+2P, ...
      if (proc >= extent_) {
        return 0;
      }
      return (extent_ - proc - 1) / nprocs_ + 1;
    }
    case DistKind::kBlockCyclic: {
      const std::int64_t full_cycles = extent_ / (block_ * nprocs_);
      const std::int64_t rem = extent_ - full_cycles * block_ * nprocs_;
      const std::int64_t rem_start =
          static_cast<std::int64_t>(proc) * block_;
      std::int64_t extra = 0;
      if (rem > rem_start) {
        extra = std::min(block_, rem - rem_start);
      }
      return full_cycles * block_ + extra;
    }
  }
  return 0;
}

int DimDistribution::owner(std::int64_t g) const {
  validate_global(g);
  switch (kind_) {
    case DistKind::kCollapsed:
      return 0;
    case DistKind::kBlock:
      return static_cast<int>(g / block_);
    case DistKind::kCyclic:
      return static_cast<int>(g % nprocs_);
    case DistKind::kBlockCyclic:
      return static_cast<int>((g / block_) % nprocs_);
  }
  return 0;
}

bool DimDistribution::owns(int proc, std::int64_t g) const {
  validate_proc(proc);
  if (kind_ == DistKind::kCollapsed) {
    return true;
  }
  return owner(g) == proc;
}

std::int64_t DimDistribution::global_to_local(std::int64_t g) const {
  validate_global(g);
  switch (kind_) {
    case DistKind::kCollapsed:
      return g;
    case DistKind::kBlock:
      return g - static_cast<std::int64_t>(owner(g)) * block_;
    case DistKind::kCyclic:
      return g / nprocs_;
    case DistKind::kBlockCyclic: {
      const std::int64_t cycle = g / (block_ * nprocs_);
      return cycle * block_ + g % block_;
    }
  }
  return 0;
}

std::int64_t DimDistribution::local_to_global(int proc,
                                              std::int64_t l) const {
  validate_proc(proc);
  OOCC_CHECK(l >= 0 && l < local_extent(proc), ErrorCode::kOutOfRange,
             "local index " << l << " outside [0, " << local_extent(proc)
                            << ") on proc " << proc);
  switch (kind_) {
    case DistKind::kCollapsed:
      return l;
    case DistKind::kBlock:
      return static_cast<std::int64_t>(proc) * block_ + l;
    case DistKind::kCyclic:
      return l * nprocs_ + proc;
    case DistKind::kBlockCyclic: {
      const std::int64_t cycle = l / block_;
      return cycle * block_ * nprocs_ +
             static_cast<std::int64_t>(proc) * block_ + l % block_;
    }
  }
  return 0;
}

std::int64_t DimDistribution::owner_run_end(std::int64_t g) const {
  validate_global(g);
  switch (kind_) {
    case DistKind::kCollapsed:
      return extent_;
    case DistKind::kBlock:
      return std::min(extent_, (g / block_ + 1) * block_);
    case DistKind::kCyclic:
      return nprocs_ == 1 ? extent_ : g + 1;
    case DistKind::kBlockCyclic:
      // With one processor every index is both owned by 0 and mapped
      // identically, so the whole extent is one run.
      if (nprocs_ == 1) {
        return extent_;
      }
      return std::min(extent_, (g / block_ + 1) * block_);
  }
  return extent_;
}

std::vector<OwnerRun> DimDistribution::owner_runs(std::int64_t begin,
                                                  std::int64_t end) const {
  OOCC_REQUIRE(begin >= 0 && begin <= end && end <= extent_,
               "owner_runs range [" << begin << ", " << end
                                    << ") outside [0, " << extent_ << "]");
  std::vector<OwnerRun> runs;
  for_each_owner_run(begin, end,
                     [&runs](std::int64_t g0, std::int64_t g1, int owner) {
                       runs.push_back(OwnerRun{g0, g1, owner});
                     });
  return runs;
}

std::int64_t DimDistribution::local_run_end(int proc, std::int64_t l) const {
  const std::int64_t n = local_extent(proc);
  OOCC_CHECK(l >= 0 && l < n, ErrorCode::kOutOfRange,
             "local index " << l << " outside [0, " << n << ") on proc "
                            << proc);
  switch (kind_) {
    case DistKind::kCollapsed:
    case DistKind::kBlock:
      return n;
    case DistKind::kCyclic:
      return nprocs_ == 1 ? n : l + 1;
    case DistKind::kBlockCyclic:
      if (nprocs_ == 1) {
        return n;
      }
      return std::min(n, (l / block_ + 1) * block_);
  }
  return n;
}

std::int64_t DimDistribution::run_length_hint() const noexcept {
  switch (kind_) {
    case DistKind::kCollapsed:
      return extent_;
    case DistKind::kBlock:
      return block_;
    case DistKind::kCyclic:
      return nprocs_ == 1 ? extent_ : 1;
    case DistKind::kBlockCyclic:
      return nprocs_ == 1 ? extent_ : block_;
  }
  return 1;
}

ArrayDistribution::ArrayDistribution(std::int64_t rows, std::int64_t cols,
                                     DistAxis axis, DistKind kind, int nprocs,
                                     std::int64_t block)
    : rows_(rows), cols_(cols), axis_(axis), nprocs_(nprocs) {
  OOCC_REQUIRE(rows >= 1 && cols >= 1,
               "array must be non-empty, got " << rows << "x" << cols);
  OOCC_REQUIRE(nprocs >= 1, "processor count must be >= 1, got " << nprocs);
  OOCC_REQUIRE(axis != DistAxis::kNone || kind == DistKind::kCollapsed ||
                   nprocs == 1,
               "a replicated array cannot name a distribution kind");
  if (axis == DistAxis::kRows) {
    row_dist_ = DimDistribution(kind, rows, nprocs, block);
    col_dist_ = DimDistribution(DistKind::kCollapsed, cols, nprocs);
  } else if (axis == DistAxis::kCols) {
    row_dist_ = DimDistribution(DistKind::kCollapsed, rows, nprocs);
    col_dist_ = DimDistribution(kind, cols, nprocs, block);
  } else {
    row_dist_ = DimDistribution(DistKind::kCollapsed, rows, nprocs);
    col_dist_ = DimDistribution(DistKind::kCollapsed, cols, nprocs);
  }
}

int ArrayDistribution::owner(std::int64_t gr, std::int64_t gc) const {
  if (axis_ == DistAxis::kRows) {
    return row_dist_.owner(gr);
  }
  if (axis_ == DistAxis::kCols) {
    return col_dist_.owner(gc);
  }
  (void)gr;
  (void)gc;
  return 0;
}

bool ArrayDistribution::operator==(const ArrayDistribution& other)
    const noexcept {
  return rows_ == other.rows_ && cols_ == other.cols_ &&
         axis_ == other.axis_ && nprocs_ == other.nprocs_ &&
         row_dist_.kind() == other.row_dist_.kind() &&
         col_dist_.kind() == other.col_dist_.kind() &&
         row_dist_.block() == other.row_dist_.block() &&
         col_dist_.block() == other.col_dist_.block();
}

std::string ArrayDistribution::to_string() const {
  std::ostringstream oss;
  oss << rows_ << "x" << cols_ << " dist(" << dist_axis_name(axis_);
  if (axis_ == DistAxis::kRows) {
    oss << "," << dist_kind_name(row_dist_.kind());
  } else if (axis_ == DistAxis::kCols) {
    oss << "," << dist_kind_name(col_dist_.kind());
  }
  oss << ") over " << nprocs_ << " procs";
  return oss.str();
}

ArrayDistribution column_block(std::int64_t rows, std::int64_t cols,
                               int nprocs) {
  return ArrayDistribution(rows, cols, DistAxis::kCols, DistKind::kBlock,
                           nprocs);
}

ArrayDistribution row_block(std::int64_t rows, std::int64_t cols,
                            int nprocs) {
  return ArrayDistribution(rows, cols, DistAxis::kRows, DistKind::kBlock,
                           nprocs);
}

}  // namespace oocc::hpf
