// HPF data-distribution algebra (§2.1 of the paper).
//
// The machine model is the paper's: a one-dimensional arrangement of P
// processors (`PROCESSORS Pr(P)`). A 2-D global array distributes exactly
// one of its dimensions across the processors — BLOCK, CYCLIC or
// BLOCK-CYCLIC(b) — while the other dimension is collapsed ('*', every
// processor holds its full extent). This covers the paper's programs
// (A and C column-block, B row-block) and the standard HPF kinds.
//
// This header is the single source of truth for global<->local index
// mapping, ownership and local extents; the compiler, runtime and tests
// all derive their layout knowledge from it.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace oocc::hpf {

/// Distribution kind along one dimension.
enum class DistKind {
  kBlock,        ///< contiguous chunks of ceil(N/P)
  kCyclic,       ///< element i on processor i mod P
  kBlockCyclic,  ///< blocks of `block` elements dealt round-robin
  kCollapsed     ///< '*': not distributed, replicated extent on every proc
};

std::string_view dist_kind_name(DistKind kind) noexcept;

/// A maximal interval [g0, g1) of global indices held by one owner. Within
/// a run, global_to_local maps consecutive global indices to consecutive
/// local indices, so a run is addressable as one contiguous local segment
/// on its owner — the invariant the block routing layer
/// (runtime/redistribute.hpp) is built on.
struct OwnerRun {
  std::int64_t g0 = 0;
  std::int64_t g1 = 0;
  int owner = 0;
};

/// Distribution of a single dimension of extent `extent` over `nprocs`
/// processors. For kCollapsed, every processor locally holds the full
/// extent and "ownership" is universal.
class DimDistribution {
 public:
  DimDistribution() = default;
  DimDistribution(DistKind kind, std::int64_t extent, int nprocs,
                  std::int64_t block = 0);

  DistKind kind() const noexcept { return kind_; }
  std::int64_t extent() const noexcept { return extent_; }
  int nprocs() const noexcept { return nprocs_; }
  /// Block size: ceil(N/P) for kBlock, 1 for kCyclic, `block` for
  /// kBlockCyclic, N for kCollapsed.
  std::int64_t block() const noexcept { return block_; }

  bool distributed() const noexcept { return kind_ != DistKind::kCollapsed; }

  /// Number of elements of this dimension held locally by `proc`.
  std::int64_t local_extent(int proc) const;

  /// Owning processor of global index `g` (0 for kCollapsed — every
  /// processor holds collapsed dims; use `owns()` for membership).
  int owner(std::int64_t g) const;

  /// True if `proc` holds global index `g` locally.
  bool owns(int proc, std::int64_t g) const;

  /// Local index of global index `g` on its owner (for kCollapsed, the
  /// local index equals the global index on every processor).
  std::int64_t global_to_local(std::int64_t g) const;

  /// Global index of local index `l` on processor `proc`.
  std::int64_t local_to_global(int proc, std::int64_t l) const;

  /// End (exclusive, clamped to the extent) of the maximal constant-owner
  /// run containing `g`. Within [g, owner_run_end(g)) the owner is fixed
  /// and global_to_local yields consecutive local indices.
  std::int64_t owner_run_end(std::int64_t g) const;

  /// Piecewise-constant ownership decomposition of [begin, end): BLOCK
  /// yields at most P runs, CYCLIC length-1 runs (P > 1), BLOCK-CYCLIC one
  /// run per dealt block, collapsed a single run with owner 0.
  std::vector<OwnerRun> owner_runs(std::int64_t begin, std::int64_t end) const;

  /// Calls f(g0, g1, owner) for every ownership run of [begin, end)
  /// without materializing a vector (the block router's hot path).
  template <typename F>
  void for_each_owner_run(std::int64_t begin, std::int64_t end, F&& f) const {
    for (std::int64_t g = begin; g < end;) {
      const std::int64_t e = std::min(end, owner_run_end(g));
      f(g, e, owner(g));
      g = e;
    }
  }

  /// End (exclusive, clamped to local_extent(proc)) of the maximal run of
  /// local indices starting at `l` on `proc` whose global images are
  /// consecutive — i.e. the largest segment a slab sweep may treat as one
  /// contiguous global interval.
  std::int64_t local_run_end(int proc, std::int64_t l) const;

  /// Typical ownership-run length (1 for CYCLIC when P > 1, the dealt
  /// block for BLOCK-CYCLIC, the whole extent when a single processor owns
  /// everything). The routing layer uses this to decide between block
  /// descriptors and the per-element fallback.
  std::int64_t run_length_hint() const noexcept;

 private:
  void validate_global(std::int64_t g) const;
  void validate_proc(int proc) const;

  DistKind kind_ = DistKind::kCollapsed;
  std::int64_t extent_ = 0;
  int nprocs_ = 1;
  std::int64_t block_ = 0;
};

/// Which dimension of a 2-D array is distributed.
enum class DistAxis { kNone, kRows, kCols };

std::string_view dist_axis_name(DistAxis axis) noexcept;

/// Distribution of a 2-D global array over the 1-D processor arrangement.
/// Exactly one axis is distributed (or none: fully replicated).
class ArrayDistribution {
 public:
  ArrayDistribution() = default;

  /// `axis` selects the distributed dimension; `kind`/`block` configure it.
  ArrayDistribution(std::int64_t rows, std::int64_t cols, DistAxis axis,
                    DistKind kind, int nprocs, std::int64_t block = 0);

  std::int64_t global_rows() const noexcept { return rows_; }
  std::int64_t global_cols() const noexcept { return cols_; }
  DistAxis axis() const noexcept { return axis_; }
  int nprocs() const noexcept { return nprocs_; }

  const DimDistribution& row_dist() const noexcept { return row_dist_; }
  const DimDistribution& col_dist() const noexcept { return col_dist_; }

  std::int64_t local_rows(int proc) const { return row_dist_.local_extent(proc); }
  std::int64_t local_cols(int proc) const { return col_dist_.local_extent(proc); }
  std::int64_t local_elements(int proc) const {
    return local_rows(proc) * local_cols(proc);
  }

  /// Owner of global element (gr, gc). For kNone the element is replicated
  /// and this returns 0 by convention.
  int owner(std::int64_t gr, std::int64_t gc) const;

  /// Owner of a whole global column / row (only meaningful when the
  /// corresponding axis is the distributed one or none is).
  int owner_of_col(std::int64_t gc) const { return col_dist_.owner(gc); }
  int owner_of_row(std::int64_t gr) const { return row_dist_.owner(gr); }

  bool owns(int proc, std::int64_t gr, std::int64_t gc) const {
    return row_dist_.owns(proc, gr) && col_dist_.owns(proc, gc);
  }

  std::int64_t global_to_local_row(std::int64_t gr) const {
    return row_dist_.global_to_local(gr);
  }
  std::int64_t global_to_local_col(std::int64_t gc) const {
    return col_dist_.global_to_local(gc);
  }
  std::int64_t local_to_global_row(int proc, std::int64_t lr) const {
    return row_dist_.local_to_global(proc, lr);
  }
  std::int64_t local_to_global_col(int proc, std::int64_t lc) const {
    return col_dist_.local_to_global(proc, lc);
  }

  bool operator==(const ArrayDistribution& other) const noexcept;

  std::string to_string() const;

 private:
  std::int64_t rows_ = 0;
  std::int64_t cols_ = 0;
  DistAxis axis_ = DistAxis::kNone;
  int nprocs_ = 1;
  DimDistribution row_dist_;
  DimDistribution col_dist_;
};

/// Convenience factories matching the paper's usage.
ArrayDistribution column_block(std::int64_t rows, std::int64_t cols,
                               int nprocs);
ArrayDistribution row_block(std::int64_t rows, std::int64_t cols, int nprocs);

}  // namespace oocc::hpf
