#include "oocc/hpf/lexer.hpp"

#include <cctype>
#include <cstdlib>

#include "oocc/util/error.hpp"

namespace oocc::hpf {
namespace {

bool is_ident_start(char c) noexcept {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool is_ident_char(char c) noexcept {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

char to_lower(char c) noexcept {
  return static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
}

bool iequals_prefix(std::string_view text, std::size_t pos,
                    std::string_view prefix) noexcept {
  if (pos + prefix.size() > text.size()) {
    return false;
  }
  for (std::size_t i = 0; i < prefix.size(); ++i) {
    if (to_lower(text[pos + i]) != prefix[i]) {
      return false;
    }
  }
  return true;
}

class LexerImpl {
 public:
  explicit LexerImpl(std::string_view source) : src_(source) {}

  std::vector<Token> run() {
    while (pos_ < src_.size()) {
      lex_line();
    }
    push_simple(TokenKind::kEof, 0);
    return std::move(tokens_);
  }

 private:
  void lex_line() {
    const std::size_t line_start = pos_;
    line_no_++;
    bool emitted_any = false;

    // Classic comment line: first non-blank char is 'c'/'C' followed by
    // whitespace (e.g. "C Partition the arrays ...").
    std::size_t scan = pos_;
    while (scan < src_.size() && (src_[scan] == ' ' || src_[scan] == '\t')) {
      ++scan;
    }
    if (scan < src_.size() && to_lower(src_[scan]) == 'c' &&
        (scan + 1 >= src_.size() || src_[scan + 1] == ' ' ||
         src_[scan + 1] == '\t' || src_[scan + 1] == '\n')) {
      skip_to_eol();
      return;
    }

    while (pos_ < src_.size() && src_[pos_] != '\n') {
      const char c = src_[pos_];
      if (c == ' ' || c == '\t' || c == '\r') {
        ++pos_;
        continue;
      }
      if (c == '!') {
        if (iequals_prefix(src_, pos_, "!hpf$")) {
          push_simple(TokenKind::kDirective, column_of(line_start));
          pos_ += 5;
          emitted_any = true;
          continue;
        }
        skip_to_eol_body();
        break;
      }
      emitted_any = true;
      if (is_ident_start(c)) {
        lex_identifier(line_start);
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
        lex_integer(line_start);
        continue;
      }
      lex_punct(line_start);
    }
    if (emitted_any) {
      push_simple(TokenKind::kEol, column_of(line_start));
    }
    skip_to_eol();
  }

  void lex_identifier(std::size_t line_start) {
    Token t;
    t.kind = TokenKind::kIdentifier;
    t.line = line_no_;
    t.column = column_of(line_start);
    while (pos_ < src_.size() && is_ident_char(src_[pos_])) {
      t.text.push_back(to_lower(src_[pos_]));
      ++pos_;
    }
    tokens_.push_back(std::move(t));
  }

  void lex_integer(std::size_t line_start) {
    Token t;
    t.kind = TokenKind::kInteger;
    t.line = line_no_;
    t.column = column_of(line_start);
    while (pos_ < src_.size() &&
           std::isdigit(static_cast<unsigned char>(src_[pos_])) != 0) {
      t.text.push_back(src_[pos_]);
      ++pos_;
    }
    t.int_value = std::strtoll(t.text.c_str(), nullptr, 10);
    tokens_.push_back(std::move(t));
  }

  void lex_punct(std::size_t line_start) {
    const int col = column_of(line_start);
    const char c = src_[pos_];
    switch (c) {
      case '(':
        ++pos_;
        push_simple(TokenKind::kLParen, col);
        return;
      case ')':
        ++pos_;
        push_simple(TokenKind::kRParen, col);
        return;
      case ',':
        ++pos_;
        push_simple(TokenKind::kComma, col);
        return;
      case ':':
        ++pos_;
        if (pos_ < src_.size() && src_[pos_] == ':') {
          ++pos_;
          push_simple(TokenKind::kDoubleColon, col);
        } else {
          push_simple(TokenKind::kColon, col);
        }
        return;
      case '=':
        ++pos_;
        push_simple(TokenKind::kAssign, col);
        return;
      case '+':
        ++pos_;
        push_simple(TokenKind::kPlus, col);
        return;
      case '-':
        ++pos_;
        push_simple(TokenKind::kMinus, col);
        return;
      case '*':
        ++pos_;
        push_simple(TokenKind::kStar, col);
        return;
      case '/':
        ++pos_;
        push_simple(TokenKind::kSlash, col);
        return;
      default:
        OOCC_THROW(ErrorCode::kParseError,
                   "illegal character '" << c << "' at line " << line_no_
                                         << ", column " << col);
    }
  }

  int column_of(std::size_t line_start) const noexcept {
    return static_cast<int>(pos_ - line_start) + 1;
  }

  void push_simple(TokenKind kind, int column) {
    Token t;
    t.kind = kind;
    t.line = line_no_;
    t.column = column;
    tokens_.push_back(std::move(t));
  }

  void skip_to_eol_body() {
    while (pos_ < src_.size() && src_[pos_] != '\n') {
      ++pos_;
    }
  }

  void skip_to_eol() {
    skip_to_eol_body();
    if (pos_ < src_.size()) {
      ++pos_;  // consume '\n'
    }
  }

  std::string_view src_;
  std::size_t pos_ = 0;
  int line_no_ = 0;
  std::vector<Token> tokens_;
};

}  // namespace

std::vector<Token> lex(std::string_view source) {
  return LexerImpl(source).run();
}

}  // namespace oocc::hpf
