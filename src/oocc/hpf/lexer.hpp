// Lexer for the HPF subset.
//
// Handling of Fortran-isms:
//  - case-insensitive: identifiers/keywords are lower-cased;
//  - `!` starts a comment to end of line, EXCEPT `!hpf$` which begins a
//    directive line and is emitted as a kDirective token;
//  - a line whose first non-blank character is `c` or `C` followed by a
//    space is a classic comment line and is skipped entirely;
//  - blank lines produce no tokens; lines with tokens end with kEol.
#pragma once

#include <string_view>
#include <vector>

#include "oocc/hpf/token.hpp"

namespace oocc::hpf {

/// Tokenizes `source`; throws Error(kParseError) on illegal characters.
std::vector<Token> lex(std::string_view source);

}  // namespace oocc::hpf
