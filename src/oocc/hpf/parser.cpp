#include "oocc/hpf/parser.hpp"

#include "oocc/hpf/lexer.hpp"
#include "oocc/util/error.hpp"

namespace oocc::hpf {
namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Program run() {
    Program program;
    skip_eols();
    while (!at(TokenKind::kEof)) {
      if (peek().is_keyword("end") && !peek_ahead_is_loop_end()) {
        advance();
        skip_eols();
        break;
      }
      parse_line(program);
      skip_eols();
    }
    return program;
  }

 private:
  // ------------------------------------------------------------ helpers --

  const Token& peek(std::size_t off = 0) const {
    const std::size_t i = std::min(pos_ + off, tokens_.size() - 1);
    return tokens_[i];
  }

  bool at(TokenKind kind) const { return peek().kind == kind; }

  const Token& advance() {
    const Token& t = tokens_[pos_];
    if (pos_ + 1 < tokens_.size()) {
      ++pos_;
    }
    return t;
  }

  [[noreturn]] void fail(const std::string& what) const {
    const Token& t = peek();
    OOCC_THROW(ErrorCode::kParseError,
               what << " at line " << t.line << ", column " << t.column
                    << " (found " << token_kind_name(t.kind)
                    << (t.text.empty() ? "" : " '" + t.text + "'") << ")");
  }

  const Token& expect(TokenKind kind, const char* what) {
    if (!at(kind)) {
      fail(std::string("expected ") + what);
    }
    return advance();
  }

  std::string expect_identifier(const char* what) {
    if (!at(TokenKind::kIdentifier)) {
      fail(std::string("expected ") + what);
    }
    return advance().text;
  }

  void expect_keyword(std::string_view kw) {
    if (!peek().is_keyword(kw)) {
      fail("expected keyword '" + std::string(kw) + "'");
    }
    advance();
  }

  void expect_eol() {
    if (at(TokenKind::kEof)) {
      return;
    }
    expect(TokenKind::kEol, "end of line");
  }

  void skip_eols() {
    while (at(TokenKind::kEol)) {
      advance();
    }
  }

  /// Distinguishes the program-terminating 'end' from 'end do'/'end forall'
  /// (the latter are consumed inside loop bodies; seeing one here is an
  /// error reported by the loop parser path).
  bool peek_ahead_is_loop_end() const {
    return peek(1).is_keyword("do") || peek(1).is_keyword("forall");
  }

  // -------------------------------------------------------------- lines --

  void parse_line(Program& program) {
    if (at(TokenKind::kDirective)) {
      parse_directive(program);
      return;
    }
    if (peek().is_keyword("parameter")) {
      parse_parameter(program);
      return;
    }
    if (peek().is_keyword("real") || peek().is_keyword("integer") ||
        peek().is_keyword("double")) {
      parse_decl_line(program);
      return;
    }
    program.stmts.push_back(parse_stmt());
  }

  void parse_parameter(Program& program) {
    advance();  // 'parameter'
    expect(TokenKind::kLParen, "'('");
    for (;;) {
      const std::string name = expect_identifier("parameter name");
      expect(TokenKind::kAssign, "'='");
      const Token& value = expect(TokenKind::kInteger, "integer value");
      OOCC_CHECK(!program.parameters.contains(name), ErrorCode::kParseError,
                 "duplicate parameter '" << name << "' at line " << value.line);
      program.parameters[name] = value.int_value;
      if (at(TokenKind::kComma)) {
        advance();
        continue;
      }
      break;
    }
    expect(TokenKind::kRParen, "')'");
    expect_eol();
  }

  void parse_decl_line(Program& program) {
    const Token& type_tok = advance();  // type keyword
    if (type_tok.is_keyword("double")) {
      // Accept 'double precision'.
      if (peek().is_keyword("precision")) {
        advance();
      }
    }
    for (;;) {
      ArrayDecl decl;
      decl.line = peek().line;
      decl.name = expect_identifier("array name");
      expect(TokenKind::kLParen, "'('");
      decl.extents.push_back(parse_expr());
      if (at(TokenKind::kComma)) {
        advance();
        decl.extents.push_back(parse_expr());
      }
      OOCC_CHECK(decl.extents.size() <= 2, ErrorCode::kParseError,
                 "arrays of rank > 2 are not supported (line " << decl.line
                                                               << ")");
      expect(TokenKind::kRParen, "')'");
      program.arrays.push_back(std::move(decl));
      if (at(TokenKind::kComma)) {
        advance();
        continue;
      }
      break;
    }
    expect_eol();
  }

  // --------------------------------------------------------- directives --

  void parse_directive(Program& program) {
    advance();  // '!hpf$'
    if (peek().is_keyword("processors")) {
      advance();
      ProcessorsDirective d;
      d.line = peek().line;
      d.name = expect_identifier("processors arrangement name");
      expect(TokenKind::kLParen, "'('");
      d.count = parse_expr();
      expect(TokenKind::kRParen, "')'");
      OOCC_CHECK(!program.processors.has_value(), ErrorCode::kParseError,
                 "duplicate PROCESSORS directive at line " << d.line);
      program.processors = std::move(d);
    } else if (peek().is_keyword("template")) {
      advance();
      TemplateDirective d;
      d.line = peek().line;
      d.name = expect_identifier("template name");
      expect(TokenKind::kLParen, "'('");
      d.extent = parse_expr();
      expect(TokenKind::kRParen, "')'");
      program.templates.push_back(std::move(d));
    } else if (peek().is_keyword("distribute")) {
      advance();
      parse_distribute(program);
    } else if (peek().is_keyword("align")) {
      advance();
      parse_align(program);
    } else {
      fail("unknown HPF directive");
    }
    expect_eol();
  }

  void parse_distribute(Program& program) {
    DistributeDirective d;
    d.line = peek().line;
    d.template_name = expect_identifier("template name");
    expect(TokenKind::kLParen, "'('");
    if (peek().is_keyword("block")) {
      advance();
      d.kind = DistSpecKind::kBlock;
      // HPF allows BLOCK(k); treat as block-cyclic with that block size,
      // which equals BLOCK when k >= ceil(N/P).
      if (at(TokenKind::kLParen)) {
        advance();
        d.kind = DistSpecKind::kBlockCyclic;
        d.block = parse_expr();
        expect(TokenKind::kRParen, "')'");
      }
    } else if (peek().is_keyword("cyclic")) {
      advance();
      d.kind = DistSpecKind::kCyclic;
      if (at(TokenKind::kLParen)) {
        advance();
        d.kind = DistSpecKind::kBlockCyclic;
        d.block = parse_expr();
        expect(TokenKind::kRParen, "')'");
      }
    } else {
      fail("expected BLOCK or CYCLIC");
    }
    expect(TokenKind::kRParen, "')'");
    if (peek().is_keyword("onto") || peek().is_keyword("on")) {
      advance();
      d.processors_name = expect_identifier("processors arrangement name");
    }
    program.distributes.push_back(std::move(d));
  }

  void parse_align(Program& program) {
    AlignDirective d;
    d.line = peek().line;
    expect(TokenKind::kLParen, "'('");
    for (;;) {
      if (at(TokenKind::kStar)) {
        advance();
        d.dims.push_back(AlignDim::kStar);
      } else if (at(TokenKind::kColon)) {
        advance();
        d.dims.push_back(AlignDim::kColon);
      } else {
        fail("expected '*' or ':' in align spec");
      }
      if (at(TokenKind::kComma)) {
        advance();
        continue;
      }
      break;
    }
    expect(TokenKind::kRParen, "')'");
    expect_keyword("with");
    d.template_name = expect_identifier("template name");
    expect(TokenKind::kDoubleColon, "'::'");
    for (;;) {
      d.arrays.push_back(expect_identifier("array name"));
      if (at(TokenKind::kComma)) {
        advance();
        continue;
      }
      break;
    }
    program.aligns.push_back(std::move(d));
  }

  // ------------------------------------------------------------- stmts --

  StmtPtr parse_stmt() {
    if (peek().is_keyword("do")) {
      return parse_do();
    }
    if (peek().is_keyword("forall")) {
      return parse_forall();
    }
    return parse_assign();
  }

  std::vector<StmtPtr> parse_body_until_end(const char* end_kw) {
    std::vector<StmtPtr> body;
    skip_eols();
    while (!(peek().is_keyword("end") && peek(1).is_keyword(end_kw))) {
      OOCC_CHECK(!at(TokenKind::kEof), ErrorCode::kParseError,
                 "unexpected end of file inside '" << end_kw << "' body");
      body.push_back(parse_stmt());
      skip_eols();
    }
    advance();  // 'end'
    advance();  // end_kw
    expect_eol();
    return body;
  }

  StmtPtr parse_do() {
    auto s = std::make_unique<Stmt>();
    s->kind = StmtKind::kDo;
    s->line = peek().line;
    advance();  // 'do'
    s->loop_var = expect_identifier("loop variable");
    expect(TokenKind::kAssign, "'='");
    s->lo = parse_expr();
    expect(TokenKind::kComma, "','");
    s->hi = parse_expr();
    expect_eol();
    s->body = parse_body_until_end("do");
    return s;
  }

  StmtPtr parse_forall() {
    auto s = std::make_unique<Stmt>();
    s->kind = StmtKind::kForall;
    s->line = peek().line;
    advance();  // 'forall'
    expect(TokenKind::kLParen, "'('");
    s->loop_var = expect_identifier("forall index");
    expect(TokenKind::kAssign, "'='");
    s->lo = parse_expr();
    expect(TokenKind::kColon, "':'");
    s->hi = parse_expr();
    expect(TokenKind::kRParen, "')'");
    if (at(TokenKind::kEol)) {
      // Block FORALL: body until 'end forall'.
      advance();
      s->body = parse_body_until_end("forall");
    } else {
      // Single-statement FORALL.
      s->body.push_back(parse_assign());
    }
    return s;
  }

  StmtPtr parse_assign() {
    auto s = std::make_unique<Stmt>();
    s->kind = StmtKind::kAssign;
    s->line = peek().line;
    s->lhs = parse_primary();
    OOCC_CHECK(s->lhs->kind == ExprKind::kArrayRef, ErrorCode::kParseError,
               "assignment target must be an array reference at line "
                   << s->line);
    expect(TokenKind::kAssign, "'='");
    if (peek().is_keyword("sum") && peek(1).kind == TokenKind::kLParen) {
      s->rhs = parse_sum();
    } else {
      s->rhs = parse_expr();
    }
    expect_eol();
    return s;
  }

  ExprPtr parse_sum() {
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::kSumIntrinsic;
    e->line = peek().line;
    advance();  // 'sum'
    expect(TokenKind::kLParen, "'('");
    e->name = expect_identifier("array name");
    expect(TokenKind::kComma, "','");
    const Token& dim = expect(TokenKind::kInteger, "reduction dimension");
    e->int_value = dim.int_value;
    OOCC_CHECK(dim.int_value == 1 || dim.int_value == 2,
               ErrorCode::kParseError,
               "SUM dimension must be 1 or 2, got " << dim.int_value
                                                    << " at line " << dim.line);
    expect(TokenKind::kRParen, "')'");
    return e;
  }

  // -------------------------------------------------------------- exprs --

  ExprPtr parse_expr() {
    ExprPtr lhs = parse_term();
    while (at(TokenKind::kPlus) || at(TokenKind::kMinus)) {
      const BinOp op =
          at(TokenKind::kPlus) ? BinOp::kAdd : BinOp::kSub;
      const int line = peek().line;
      advance();
      lhs = make_binary(op, std::move(lhs), parse_term(), line);
    }
    return lhs;
  }

  ExprPtr parse_term() {
    ExprPtr lhs = parse_primary();
    while (at(TokenKind::kStar) || at(TokenKind::kSlash)) {
      const BinOp op = at(TokenKind::kStar) ? BinOp::kMul : BinOp::kDiv;
      const int line = peek().line;
      advance();
      lhs = make_binary(op, std::move(lhs), parse_primary(), line);
    }
    return lhs;
  }

  ExprPtr parse_primary() {
    if (at(TokenKind::kInteger)) {
      const Token& t = advance();
      return make_int(t.int_value, t.line);
    }
    if (at(TokenKind::kMinus)) {
      const int line = peek().line;
      advance();
      return make_binary(BinOp::kSub, make_int(0, line), parse_primary(),
                         line);
    }
    if (at(TokenKind::kLParen)) {
      advance();
      ExprPtr inner = parse_expr();
      expect(TokenKind::kRParen, "')'");
      return inner;
    }
    if (at(TokenKind::kIdentifier)) {
      const Token& t = advance();
      if (!at(TokenKind::kLParen)) {
        return make_var(t.text, t.line);
      }
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kArrayRef;
      e->name = t.text;
      e->line = t.line;
      advance();  // '('
      for (;;) {
        e->subscripts.push_back(parse_subscript());
        if (at(TokenKind::kComma)) {
          advance();
          continue;
        }
        break;
      }
      expect(TokenKind::kRParen, "')'");
      OOCC_CHECK(e->subscripts.size() <= 2, ErrorCode::kParseError,
                 "references of rank > 2 are not supported at line "
                     << e->line);
      return e;
    }
    fail("expected expression");
  }

  Subscript parse_subscript() {
    Subscript s;
    if (at(TokenKind::kColon)) {
      advance();
      s.kind = SubscriptKind::kFull;
      return s;
    }
    ExprPtr first = parse_expr();
    if (at(TokenKind::kColon)) {
      advance();
      s.kind = SubscriptKind::kRange;
      s.lo = std::move(first);
      s.hi = parse_expr();
      return s;
    }
    s.kind = SubscriptKind::kScalar;
    s.scalar = std::move(first);
    return s;
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

}  // namespace

Program parse(std::string_view source) {
  return Parser(lex(source)).run();
}

}  // namespace oocc::hpf
