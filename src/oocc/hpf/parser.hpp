// Recursive-descent parser for the HPF subset.
//
// Grammar (EOL = end of source line; keywords case-insensitive):
//   program    := line* 'end'
//   line       := parameter | real_decl | directive | stmt
//   parameter  := 'parameter' '(' ident '=' int {',' ident '=' int} ')'
//   real_decl  := 'real' decl {',' decl}
//   decl       := ident '(' expr [',' expr] ')'
//   directive  := '!hpf$' (processors | template | distribute | align)
//   processors := 'processors' ident '(' expr ')'
//   template   := 'template' ident '(' expr ')'
//   distribute := 'distribute' ident '(' distspec ')' ('onto'|'on') ident
//   distspec   := 'block' | 'cyclic' ['(' expr ')']
//   align      := 'align' '(' ('*'|':') {',' ('*'|':')} ')' 'with' ident
//                 '::' ident {',' ident}
//   stmt       := do | forall | assign
//   do         := 'do' ident '=' expr ',' expr EOL stmt* 'end' 'do'
//   forall     := 'forall' '(' ident '=' expr ':' expr ')' EOL stmt*
//                 'end' 'forall'
//   assign     := array_ref '=' (sum | expr)
//   sum        := 'sum' '(' ident ',' int ')'
//   expr       := term {('+'|'-') term}
//   term       := factor {('*'|'/') factor}
//   factor     := int | '-' factor | '(' expr ')'
//               | ident ['(' subscript {',' subscript} ')']
//   subscript  := ':' | expr [':' expr]
#pragma once

#include <string_view>

#include "oocc/hpf/ast.hpp"

namespace oocc::hpf {

/// Parses HPF source text into an AST. Throws Error(kParseError) with a
/// line/column diagnostic on malformed input.
Program parse(std::string_view source);

}  // namespace oocc::hpf
