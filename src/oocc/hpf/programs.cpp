#include "oocc/hpf/programs.hpp"

#include <sstream>

namespace oocc::hpf {

std::string gaxpy_source(std::int64_t n, int nprocs) {
  std::ostringstream oss;
  oss << "      parameter (n=" << n << ", nprocs=" << nprocs << ")\n"
      << "      real a(n,n), b(n,n), c(n,n), temp(n,n)\n"
      << "!hpf$ processors Pr(nprocs)\n"
      << "!hpf$ template d(n)\n"
      << "!hpf$ distribute d(block) onto Pr\n"
      << "!hpf$ align (*,:) with d :: a, c, temp\n"
      << "!hpf$ align (:,*) with d :: b\n"
      << "      do j=1, n\n"
      << "        forall (k=1:n)\n"
      << "          temp(1:n,k) = b(k,j)*a(1:n,k)\n"
      << "        end forall\n"
      << "        c(1:n,j) = SUM(temp,2)\n"
      << "      end do\n"
      << "      end\n";
  return oss.str();
}

std::string elementwise_source(std::int64_t rows, std::int64_t cols,
                               int nprocs, std::int64_t alpha) {
  std::ostringstream oss;
  oss << "      parameter (m=" << rows << ", n=" << cols << ", p=" << nprocs
      << ")\n"
      << "      real x(m,n), y(m,n)\n"
      << "!hpf$ processors Pr(p)\n"
      << "!hpf$ template d(n)\n"
      << "!hpf$ distribute d(block) onto Pr\n"
      << "!hpf$ align (*,:) with d :: x, y\n"
      << "      forall (k=1:n)\n"
      << "        y(1:m,k) = x(1:m,k)*" << alpha << " + k\n"
      << "      end forall\n"
      << "      end\n";
  return oss.str();
}

std::string stencil_source(std::int64_t n, int nprocs) {
  std::ostringstream oss;
  oss << "      parameter (n=" << n << ", p=" << nprocs << ")\n"
      << "      real a(n,n), b(n,n)\n"
      << "!hpf$ processors Pr(p)\n"
      << "!hpf$ template d(n)\n"
      << "!hpf$ distribute d(block) onto Pr\n"
      << "!hpf$ align (*,:) with d :: a, b\n"
      << "      forall (k=2:n-1)\n"
      << "        b(2:n-1,k) = (a(1:n-2,k) + a(3:n,k) + a(2:n-1,k-1)"
      << " + a(2:n-1,k+1))/4\n"
      << "      end forall\n"
      << "      end\n";
  return oss.str();
}

}  // namespace oocc::hpf
