// Canonical HPF source programs used by tests, examples and benches.
//
// gaxpy_source() reproduces the paper's Figure 3 (parameterized in N and
// P); the others exercise the elementwise FORALL path.
#pragma once

#include <cstdint>
#include <string>

namespace oocc::hpf {

/// The Figure 3 GAXPY matrix-multiplication program.
std::string gaxpy_source(std::int64_t n, int nprocs);

/// `y(1:n,k) = x(1:n,k)*alpha + k` — a communication-free elementwise
/// FORALL over two column-block arrays.
std::string elementwise_source(std::int64_t rows, std::int64_t cols,
                               int nprocs, std::int64_t alpha);

/// The 5-point Jacobi sweep as a halo-stencil FORALL over a column-block
/// ping-pong pair:
///   forall (k=2:n-1)
///     b(2:n-1,k) = (a(1:n-2,k) + a(3:n,k) + a(2:n-1,k-1) + a(2:n-1,k+1))/4
/// The operand order matches apps/jacobi.cpp's hand-coded kernel term for
/// term, so the compiled program is bit-identical to that oracle.
std::string stencil_source(std::int64_t n, int nprocs);

}  // namespace oocc::hpf
