#include "oocc/hpf/sema.hpp"

#include <set>

#include "oocc/hpf/align.hpp"
#include "oocc/util/error.hpp"

namespace oocc::hpf {

namespace {

/// Validates statements: referenced arrays are declared with matching rank,
/// loop variables are unique along a nest path, and scalar subscripts only
/// reference loop variables / parameters.
class StmtChecker {
 public:
  StmtChecker(const std::map<std::string, ArrayInfo>& arrays,
              const std::map<std::string, std::int64_t>& parameters)
      : arrays_(arrays), parameters_(parameters) {}

  void check_all(const std::vector<StmtPtr>& stmts) {
    for (const auto& s : stmts) {
      check_stmt(*s);
    }
  }

 private:
  void check_stmt(const Stmt& s) {
    switch (s.kind) {
      case StmtKind::kDo:
      case StmtKind::kForall: {
        OOCC_CHECK(!scope_.contains(s.loop_var), ErrorCode::kSemanticError,
                   "loop variable '" << s.loop_var
                                     << "' shadows an enclosing loop at line "
                                     << s.line);
        OOCC_CHECK(!parameters_.contains(s.loop_var),
                   ErrorCode::kSemanticError,
                   "loop variable '" << s.loop_var
                                     << "' shadows a parameter at line "
                                     << s.line);
        check_scalar_expr(*s.lo);
        check_scalar_expr(*s.hi);
        scope_.insert(s.loop_var);
        for (const auto& b : s.body) {
          check_stmt(*b);
        }
        scope_.erase(s.loop_var);
        return;
      }
      case StmtKind::kAssign: {
        check_expr(*s.lhs);
        check_expr(*s.rhs);
        return;
      }
    }
  }

  void check_expr(const Expr& e) {
    switch (e.kind) {
      case ExprKind::kIntConst:
        return;
      case ExprKind::kVarRef:
        OOCC_CHECK(scope_.contains(e.name) || parameters_.contains(e.name),
                   ErrorCode::kSemanticError,
                   "reference to unknown scalar '" << e.name << "' at line "
                                                   << e.line);
        return;
      case ExprKind::kBinary:
        check_expr(*e.lhs);
        check_expr(*e.rhs);
        return;
      case ExprKind::kSumIntrinsic: {
        const auto it = arrays_.find(e.name);
        OOCC_CHECK(it != arrays_.end(), ErrorCode::kSemanticError,
                   "SUM of undeclared array '" << e.name << "' at line "
                                               << e.line);
        OOCC_CHECK(it->second.rank == 2, ErrorCode::kSemanticError,
                   "SUM(array, dim) requires a rank-2 array; '"
                       << e.name << "' has rank " << it->second.rank
                       << " at line " << e.line);
        return;
      }
      case ExprKind::kArrayRef: {
        const auto it = arrays_.find(e.name);
        OOCC_CHECK(it != arrays_.end(), ErrorCode::kSemanticError,
                   "reference to undeclared array '" << e.name << "' at line "
                                                     << e.line);
        OOCC_CHECK(
            e.subscripts.size() == static_cast<std::size_t>(it->second.rank),
            ErrorCode::kSemanticError,
            "'" << e.name << "' has rank " << it->second.rank << " but is "
                << "referenced with " << e.subscripts.size()
                << " subscripts at line " << e.line);
        for (const auto& sub : e.subscripts) {
          if (sub.kind == SubscriptKind::kScalar) {
            check_scalar_expr(*sub.scalar);
          } else if (sub.kind == SubscriptKind::kRange) {
            check_scalar_expr(*sub.lo);
            check_scalar_expr(*sub.hi);
          }
        }
        return;
      }
    }
  }

  void check_scalar_expr(const Expr& e) {
    switch (e.kind) {
      case ExprKind::kIntConst:
        return;
      case ExprKind::kVarRef:
        OOCC_CHECK(scope_.contains(e.name) || parameters_.contains(e.name),
                   ErrorCode::kSemanticError,
                   "reference to unknown scalar '" << e.name << "' at line "
                                                   << e.line);
        return;
      case ExprKind::kBinary:
        check_scalar_expr(*e.lhs);
        check_scalar_expr(*e.rhs);
        return;
      default:
        OOCC_THROW(ErrorCode::kSemanticError,
                   "subscript expressions must be scalar at line " << e.line);
    }
  }

  const std::map<std::string, ArrayInfo>& arrays_;
  const std::map<std::string, std::int64_t>& parameters_;
  std::set<std::string> scope_;
};

}  // namespace

const ArrayInfo& BoundProgram::array(const std::string& name) const {
  const auto it = arrays.find(name);
  OOCC_CHECK(it != arrays.end(), ErrorCode::kSemanticError,
             "unknown array '" << name << "'");
  return it->second;
}

BoundProgram analyze(Program program) {
  BoundProgram bound;
  bound.parameters = program.parameters;

  // Processor arrangement. A program with no PROCESSORS directive is a
  // single-processor program.
  std::string procs_name;
  if (program.processors.has_value()) {
    procs_name = program.processors->name;
    const std::int64_t p =
        evaluate_scalar(*program.processors->count, bound.parameters);
    OOCC_CHECK(p >= 1, ErrorCode::kSemanticError,
               "PROCESSORS count must be >= 1, got " << p);
    bound.nprocs = static_cast<int>(p);
  }

  // Templates, then their DISTRIBUTE directives.
  std::map<std::string, TemplateInfo> templates;
  for (const auto& t : program.templates) {
    OOCC_CHECK(!templates.contains(t.name), ErrorCode::kSemanticError,
               "duplicate template '" << t.name << "' at line " << t.line);
    TemplateInfo info;
    info.name = t.name;
    info.extent = evaluate_scalar(*t.extent, bound.parameters);
    info.nprocs = 1;  // undistributed until a DISTRIBUTE names it
    templates[t.name] = info;
  }
  for (const auto& d : program.distributes) {
    const auto it = templates.find(d.template_name);
    OOCC_CHECK(it != templates.end(), ErrorCode::kSemanticError,
               "DISTRIBUTE names unknown template '" << d.template_name
                                                     << "' at line " << d.line);
    OOCC_CHECK(d.processors_name.empty() || d.processors_name == procs_name,
               ErrorCode::kSemanticError,
               "DISTRIBUTE onto unknown arrangement '" << d.processors_name
                                                       << "' at line "
                                                       << d.line);
    TemplateInfo& info = it->second;
    info.nprocs = bound.nprocs;
    switch (d.kind) {
      case DistSpecKind::kBlock:
        info.kind = DistKind::kBlock;
        break;
      case DistSpecKind::kCyclic:
        info.kind = DistKind::kCyclic;
        break;
      case DistSpecKind::kBlockCyclic:
        info.kind = DistKind::kBlockCyclic;
        info.block = evaluate_scalar(*d.block, bound.parameters);
        break;
    }
  }

  // Array declarations (distribution defaults to fully replicated).
  for (const auto& decl : program.arrays) {
    OOCC_CHECK(!bound.arrays.contains(decl.name), ErrorCode::kSemanticError,
               "duplicate array '" << decl.name << "' at line " << decl.line);
    ArrayInfo info;
    info.name = decl.name;
    info.rank = static_cast<int>(decl.extents.size());
    info.rows = evaluate_scalar(*decl.extents[0], bound.parameters);
    info.cols = info.rank == 2
                    ? evaluate_scalar(*decl.extents[1], bound.parameters)
                    : 1;
    OOCC_CHECK(info.rows >= 1 && info.cols >= 1, ErrorCode::kSemanticError,
               "array '" << decl.name << "' has non-positive extents "
                         << info.rows << "x" << info.cols);
    info.dist = ArrayDistribution(info.rows, info.cols, DistAxis::kNone,
                                  DistKind::kCollapsed, bound.nprocs);
    bound.arrays[decl.name] = std::move(info);
  }

  // ALIGN directives map array dimensions onto templates.
  for (const auto& al : program.aligns) {
    const auto t_it = templates.find(al.template_name);
    OOCC_CHECK(t_it != templates.end(), ErrorCode::kSemanticError,
               "ALIGN names unknown template '" << al.template_name
                                                << "' at line " << al.line);
    for (const auto& array_name : al.arrays) {
      const auto a_it = bound.arrays.find(array_name);
      OOCC_CHECK(a_it != bound.arrays.end(), ErrorCode::kSemanticError,
                 "ALIGN names undeclared array '" << array_name
                                                  << "' at line " << al.line);
      ArrayInfo& info = a_it->second;
      info.dist = resolve_alignment(al.dims, t_it->second, info.rows,
                                    info.cols, array_name);
    }
  }

  // Statement checks.
  StmtChecker checker(bound.arrays, bound.parameters);
  checker.check_all(program.stmts);

  bound.stmts = std::move(program.stmts);
  return bound;
}

}  // namespace oocc::hpf
