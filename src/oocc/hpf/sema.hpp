// Semantic analysis: binds the parsed Program to concrete array layouts.
//
// This is the front half of the paper's "in-core phase" (Figure 7): the
// distribution directives are resolved into an ArrayDistribution per array
// (from which local bounds on every processor follow), parameters are
// folded, and the statement list is checked for well-formedness. The
// result, BoundProgram, is what the out-of-core compiler (oocc/compiler)
// lowers to a node program.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "oocc/hpf/ast.hpp"
#include "oocc/hpf/distribution.hpp"

namespace oocc::hpf {

/// A declared array with its resolved distribution. Rank-1 arrays are
/// carried as rows x 1.
struct ArrayInfo {
  std::string name;
  int rank = 2;
  std::int64_t rows = 0;
  std::int64_t cols = 0;
  ArrayDistribution dist;
};

/// The semantically analyzed program.
struct BoundProgram {
  int nprocs = 1;
  std::map<std::string, std::int64_t> parameters;
  std::map<std::string, ArrayInfo> arrays;
  std::vector<StmtPtr> stmts;  ///< ownership moved from the parsed Program

  const ArrayInfo& array(const std::string& name) const;
};

/// Runs semantic analysis; consumes `program`. Throws
/// Error(kSemanticError) on undeclared names, rank mismatches, unresolved
/// directives, or non-constant declaration extents.
BoundProgram analyze(Program program);

}  // namespace oocc::hpf
