#include "oocc/hpf/token.hpp"

namespace oocc::hpf {

std::string_view token_kind_name(TokenKind kind) noexcept {
  switch (kind) {
    case TokenKind::kIdentifier:
      return "identifier";
    case TokenKind::kInteger:
      return "integer";
    case TokenKind::kDirective:
      return "!hpf$";
    case TokenKind::kLParen:
      return "(";
    case TokenKind::kRParen:
      return ")";
    case TokenKind::kComma:
      return ",";
    case TokenKind::kColon:
      return ":";
    case TokenKind::kDoubleColon:
      return "::";
    case TokenKind::kAssign:
      return "=";
    case TokenKind::kPlus:
      return "+";
    case TokenKind::kMinus:
      return "-";
    case TokenKind::kStar:
      return "*";
    case TokenKind::kSlash:
      return "/";
    case TokenKind::kEol:
      return "end-of-line";
    case TokenKind::kEof:
      return "end-of-file";
  }
  return "?";
}

}  // namespace oocc::hpf
