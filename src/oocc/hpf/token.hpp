// Tokens of the HPF subset accepted by the front end.
//
// The subset is line-oriented like Fortran: end-of-line terminates a
// statement (kEol tokens are significant). Keywords are case-insensitive;
// identifiers are normalized to lower case. HPF directives appear on lines
// beginning with `!hpf$` and are lexed into the same token stream with a
// leading kDirective marker.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace oocc::hpf {

enum class TokenKind {
  kIdentifier,  ///< normalized to lower case
  kInteger,     ///< 64-bit literal
  kDirective,   ///< the `!hpf$` sentinel starting a directive line
  kLParen,
  kRParen,
  kComma,
  kColon,
  kDoubleColon,  ///< ::
  kAssign,       ///< =
  kPlus,
  kMinus,
  kStar,
  kSlash,
  kEol,  ///< end of a source line holding tokens
  kEof
};

std::string_view token_kind_name(TokenKind kind) noexcept;

struct Token {
  TokenKind kind = TokenKind::kEof;
  std::string text;          ///< identifier text (lower-cased) or literal text
  std::int64_t int_value = 0;  ///< value for kInteger
  int line = 0;              ///< 1-based source line
  int column = 0;            ///< 1-based source column

  bool is_keyword(std::string_view kw) const noexcept {
    return kind == TokenKind::kIdentifier && text == kw;
  }
};

}  // namespace oocc::hpf
