#include "oocc/io/async_engine.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "oocc/util/env.hpp"
#include "oocc/util/faults.hpp"

namespace oocc::io {

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

struct AsyncEngine::Ticket::State {
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  std::exception_ptr error;
  AsyncEngine* engine = nullptr;
};

void AsyncEngine::Ticket::wait() {
  if (state_ == nullptr) {
    return;
  }
  const auto t0 = std::chrono::steady_clock::now();
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lk(state_->mu);
    state_->cv.wait(lk, [&] { return state_->done; });
    error = state_->error;
  }
  state_->engine->note_blocked(seconds_since(t0));
  if (error != nullptr) {
    std::rethrow_exception(error);
  }
}

AsyncEngine::AsyncEngine(int threads) {
  const int n = std::max(1, threads);
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

AsyncEngine::~AsyncEngine() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) {
    t.join();
  }
}

int AsyncEngine::default_threads(int nprocs) {
  const std::int64_t env = env_int("OOCC_IO_THREADS", 0);
  if (env > 0) {
    return static_cast<int>(std::min<std::int64_t>(env, 64));
  }
  return std::max(1, std::min(nprocs, 4));
}

AsyncEngine::Ticket AsyncEngine::submit(const void* stream,
                                        std::function<void()> job) {
  auto state = std::make_shared<Ticket::State>();
  state->engine = this;
  Job j;
  j.fn = std::move(job);
  j.state = state;
  j.rank = faults::thread_rank();
  {
    std::lock_guard<std::mutex> lk(mu_);
    Stream& st = streams_[stream];
    const bool was_idle = !st.running && st.queue.empty();
    st.queue.push_back(std::move(j));
    ++counters_.jobs_submitted;
    ++inflight_;
    counters_.max_queue_depth = std::max(counters_.max_queue_depth, inflight_);
    if (was_idle) {
      ready_.push_back(stream);
    }
  }
  work_cv_.notify_one();
  return Ticket(std::move(state));
}

AsyncEngine::Counters AsyncEngine::counters() const {
  std::lock_guard<std::mutex> lk(mu_);
  return counters_;
}

void AsyncEngine::note_blocked(double seconds) {
  std::lock_guard<std::mutex> lk(mu_);
  counters_.blocked_s += seconds;
}

void AsyncEngine::worker_loop() {
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    work_cv_.wait(lk, [&] { return stop_ || !ready_.empty(); });
    if (ready_.empty()) {
      // stop_ is set and no stream is ready. A stream still running on
      // another worker re-queues itself on completion and that worker
      // keeps draining it, so exiting here never strands a job.
      return;
    }
    const void* key = ready_.front();
    ready_.pop_front();
    Stream& st = streams_[key];
    Job job = std::move(st.queue.front());
    st.queue.pop_front();
    st.running = true;
    lk.unlock();

    const auto t0 = std::chrono::steady_clock::now();
    std::exception_ptr error;
    {
      // Fault sites reached inside the job fire with the submitting
      // rank's identity.
      faults::ThreadRankGuard rank_guard(job.rank);
      try {
        job.fn();
      } catch (...) {
        error = std::current_exception();
      }
    }
    const double busy = seconds_since(t0);
    lk.lock();
    // Engine counters are updated BEFORE the ticket is signalled, so a
    // caller returning from wait() observes its job in jobs_completed.
    counters_.busy_s += busy;
    ++counters_.jobs_completed;
    --inflight_;
    lk.unlock();
    {
      std::lock_guard<std::mutex> slk(job.state->mu);
      job.state->error = error;
      job.state->done = true;
    }
    job.state->cv.notify_all();

    lk.lock();
    Stream& done_stream = streams_[key];
    done_stream.running = false;
    if (!done_stream.queue.empty()) {
      ready_.push_back(key);
      work_cv_.notify_one();
    } else {
      streams_.erase(key);
    }
  }
}

}  // namespace oocc::io
