// Real asynchronous I/O engine: a small worker-thread pool that performs
// host file operations off the simulated compute threads.
//
// The simulator prices asynchronous I/O with the clock-rewind model
// (sim/clock.hpp): a read-ahead is charged at issue time and its completion
// is queued behind the processor's one modelled disk. This engine makes the
// *host* side match that model: the submitting thread pays only the
// simulated charge, the physical pread/pwrite runs on a worker thread, and
// the submitter blocks only when it actually needs the bytes (Ticket::wait).
//
// Ordering. Jobs are FIFO per *stream* (an opaque `const void*` key).
// The LAF layer keys its submissions by SPMD context — one stream per
// simulated processor — which mirrors the pricing model's one-disk-per-
// processor queue exactly and keeps fault-injection op counting in program
// order per rank (see util/faults.hpp). FileBackend's raw async API keys by
// backend, giving per-file FIFO.
//
// Fault identity. submit() captures faults::thread_rank() on the calling
// thread and the worker runs the job under a faults::ThreadRankGuard for
// that rank, so injected fault sites reached on a worker fire with the
// submitting rank's identity. A job's exception (fault, crash, I/O error)
// is stored and rethrown from Ticket::wait() — faults surface at the wait
// point with today's error codes.
//
// Thread safety. All engine state is guarded by one mutex; each ticket has
// its own mutex/condvar for completion handoff, which also provides the
// happens-before edge between the worker's writes (e.g. into a slab buffer)
// and the submitter's reads after wait(). The engine must outlive every
// Ticket obtained from it (Machine owns the engine; pools wait out their
// in-flight tickets before destruction).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace oocc::io {

class AsyncEngine {
 public:
  /// Host wall-clock activity counters (monotone over the engine lifetime).
  struct Counters {
    std::uint64_t jobs_submitted = 0;
    std::uint64_t jobs_completed = 0;
    /// Peak number of submitted-but-unfinished jobs (queue depth).
    std::uint64_t max_queue_depth = 0;
    /// Host seconds workers spent executing jobs.
    double busy_s = 0.0;
    /// Host seconds submitters spent blocked in Ticket::wait().
    double blocked_s = 0.0;
    /// Host seconds of I/O genuinely hidden behind compute: worker time
    /// that nobody was waiting for.
    double overlap_s() const noexcept {
      return busy_s > blocked_s ? busy_s - blocked_s : 0.0;
    }
  };

  /// Completion handle for one submitted job. Default-constructed tickets
  /// are inert (wait() returns immediately).
  class Ticket {
   public:
    Ticket() = default;

    /// True when this ticket refers to a submitted job.
    bool valid() const noexcept { return state_ != nullptr; }

    /// Blocks until the job finished, then rethrows its exception (if any).
    /// Time actually spent blocked is added to the engine's counters.
    /// Safe to call more than once.
    void wait();

   private:
    friend class AsyncEngine;
    struct State;
    explicit Ticket(std::shared_ptr<State> state) : state_(std::move(state)) {}
    std::shared_ptr<State> state_;
  };

  /// Spawns `threads` workers (clamped to >= 1).
  explicit AsyncEngine(int threads);
  ~AsyncEngine();

  AsyncEngine(const AsyncEngine&) = delete;
  AsyncEngine& operator=(const AsyncEngine&) = delete;

  /// Worker count for a P-processor machine: OOCC_IO_THREADS if set,
  /// otherwise min(nprocs, 4).
  static int default_threads(int nprocs);

  int threads() const noexcept { return static_cast<int>(workers_.size()); }

  /// Enqueues `job` on `stream` (FIFO per stream) and returns its ticket.
  /// The job runs on a worker under the submitting thread's fault rank.
  Ticket submit(const void* stream, std::function<void()> job);

  /// Snapshot of the activity counters.
  Counters counters() const;

 private:
  struct Job {
    std::function<void()> fn;
    std::shared_ptr<Ticket::State> state;
    int rank = -1;
  };
  struct Stream {
    std::deque<Job> queue;
    bool running = false;
  };

  void worker_loop();
  void note_blocked(double seconds);

  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::map<const void*, Stream> streams_;
  std::deque<const void*> ready_;
  std::uint64_t inflight_ = 0;
  bool stop_ = false;
  Counters counters_;
  std::vector<std::thread> workers_;
};

}  // namespace oocc::io
