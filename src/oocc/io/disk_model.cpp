// disk_model.hpp is header-only; this TU anchors the module in the build.
#include "oocc/io/disk_model.hpp"
