// Disk cost model for the parallel I/O substrate (§2.2-2.3 of the paper).
//
// Each processor owns a *logical disk* holding its Local Array File. The
// paper measures I/O cost with two metrics — number of I/O requests and
// bytes fetched per processor — because the physical cost of a request
// (seek + controller + file-system overhead) is hardware-determined. We
// charge exactly that: every *contiguous extent* transferred costs one
// request overhead plus bytes at the streaming bandwidth.
//
// Physical disks are shared on machines like the Touchstone Delta (its
// Concurrent File System served all compute nodes), so per-processor
// streaming bandwidth is capped by an aggregate subsystem bandwidth divided
// by the number of processors doing I/O. This reproduces the paper's weak
// I/O scaling: in Table 1, 16x more processors only reduce the column-slab
// time by ~25% because the I/O subsystem, not the CPUs, is the bottleneck.
#pragma once

#include <algorithm>

namespace oocc::io {

struct DiskModel {
  /// Fixed cost per contiguous request: seek + rotational latency +
  /// file-system bookkeeping.
  double request_overhead_s = 18e-3;

  /// Streaming bandwidth a single processor can achieve when alone.
  /// NOTE: the library stores 8-byte doubles where the paper used 4-byte
  /// reals, so the Delta calibration doubles the byte bandwidths to keep
  /// *elements per second* matched to the original hardware.
  double per_proc_bandwidth_Bps = 3.2e6;

  /// Aggregate bandwidth of the shared I/O subsystem.
  double aggregate_bandwidth_Bps = 12.8e6;

  /// Effective streaming bandwidth per processor when `nprocs` processors
  /// perform I/O concurrently.
  double effective_bandwidth(int nprocs) const noexcept {
    const double share =
        aggregate_bandwidth_Bps / static_cast<double>(nprocs < 1 ? 1 : nprocs);
    return std::min(per_proc_bandwidth_Bps, share);
  }

  /// Simulated service time of one contiguous request of `bytes` bytes when
  /// `nprocs` processors share the subsystem.
  double request_time(double bytes, int nprocs) const noexcept {
    return request_overhead_s + bytes / effective_bandwidth(nprocs);
  }

  /// Calibration used for the paper-reproduction benches; constants are
  /// Delta/CFS-era magnitudes (see EXPERIMENTS.md for the derivation).
  static DiskModel touchstone_delta_cfs() noexcept {
    DiskModel d;
    d.request_overhead_s = 18e-3;
    d.per_proc_bandwidth_Bps = 3.2e6;   // 1.6 MB/s in 4-byte-real terms
    d.aggregate_bandwidth_Bps = 12.8e6; // 6.4 MB/s in 4-byte-real terms
    return d;
  }

  /// Round constants for analytic checks in unit tests.
  static DiskModel unit_test() noexcept {
    DiskModel d;
    d.request_overhead_s = 1e-3;
    d.per_proc_bandwidth_Bps = 1e6;
    d.aggregate_bandwidth_Bps = 1e9;  // no contention in unit tests
    return d;
  }

  /// Zero-cost model for purely functional tests.
  static DiskModel zero() noexcept {
    DiskModel d;
    d.request_overhead_s = 0;
    d.per_proc_bandwidth_Bps = 1e30;
    d.aggregate_bandwidth_Bps = 1e30;
    return d;
  }
};

}  // namespace oocc::io
