#include "oocc/io/file_backend.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <system_error>

#include "oocc/util/error.hpp"

namespace oocc::io {

FileBackend::FileBackend(const std::filesystem::path& path) : path_(path) {
  fd_ = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  OOCC_CHECK(fd_ >= 0, ErrorCode::kIoError,
             "cannot open " << path << ": " << std::strerror(errno));
}

FileBackend::~FileBackend() { close(); }

FileBackend::FileBackend(FileBackend&& other) noexcept
    : path_(std::move(other.path_)),
      fd_(other.fd_),
      read_fault_countdown_(other.read_fault_countdown_),
      write_fault_countdown_(other.write_fault_countdown_) {
  other.fd_ = -1;
}

FileBackend& FileBackend::operator=(FileBackend&& other) noexcept {
  if (this != &other) {
    close();
    path_ = std::move(other.path_);
    fd_ = other.fd_;
    read_fault_countdown_ = other.read_fault_countdown_;
    write_fault_countdown_ = other.write_fault_countdown_;
    other.fd_ = -1;
  }
  return *this;
}

void FileBackend::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void FileBackend::read_at(std::uint64_t offset, void* data,
                          std::size_t bytes) {
  OOCC_CHECK(fd_ >= 0, ErrorCode::kIoError, "file " << path_ << " is closed");
  if (read_fault_countdown_ > 0 && --read_fault_countdown_ == 0) {
    OOCC_THROW(ErrorCode::kIoError,
               "injected read fault on " << path_ << " at offset " << offset);
  }
  std::size_t done = 0;
  while (done < bytes) {
    const ssize_t n =
        ::pread(fd_, static_cast<char*>(data) + done, bytes - done,
                static_cast<off_t>(offset + done));
    OOCC_CHECK(n > 0, ErrorCode::kIoError,
               "short read on " << path_ << " at offset " << offset + done
                                << " (" << (n == 0 ? "EOF" : std::strerror(errno))
                                << ")");
    done += static_cast<std::size_t>(n);
  }
}

void FileBackend::write_at(std::uint64_t offset, const void* data,
                           std::size_t bytes) {
  OOCC_CHECK(fd_ >= 0, ErrorCode::kIoError, "file " << path_ << " is closed");
  if (write_fault_countdown_ > 0 && --write_fault_countdown_ == 0) {
    OOCC_THROW(ErrorCode::kIoError,
               "injected write fault on " << path_ << " at offset " << offset);
  }
  std::size_t done = 0;
  while (done < bytes) {
    const ssize_t n =
        ::pwrite(fd_, static_cast<const char*>(data) + done, bytes - done,
                 static_cast<off_t>(offset + done));
    OOCC_CHECK(n >= 0, ErrorCode::kIoError,
               "write failed on " << path_ << " at offset " << offset + done
                                  << ": " << std::strerror(errno));
    done += static_cast<std::size_t>(n);
  }
}

std::uint64_t FileBackend::size() const {
  OOCC_CHECK(fd_ >= 0, ErrorCode::kIoError, "file " << path_ << " is closed");
  struct stat st {};
  OOCC_CHECK(::fstat(fd_, &st) == 0, ErrorCode::kIoError,
             "fstat failed on " << path_ << ": " << std::strerror(errno));
  return static_cast<std::uint64_t>(st.st_size);
}

void FileBackend::truncate(std::uint64_t bytes) {
  OOCC_CHECK(fd_ >= 0, ErrorCode::kIoError, "file " << path_ << " is closed");
  OOCC_CHECK(::ftruncate(fd_, static_cast<off_t>(bytes)) == 0,
             ErrorCode::kIoError,
             "ftruncate failed on " << path_ << ": " << std::strerror(errno));
}

TempDir::TempDir(const std::string& prefix) {
  const char* base = std::getenv("TMPDIR");
  std::filesystem::path dir = (base != nullptr && *base != '\0')
                                  ? std::filesystem::path(base)
                                  : std::filesystem::path("/tmp");
  std::string templ = (dir / (prefix + ".XXXXXX")).string();
  // mkdtemp mutates its argument in place.
  std::string buf = templ;
  OOCC_CHECK(::mkdtemp(buf.data()) != nullptr, ErrorCode::kIoError,
             "mkdtemp failed for " << templ << ": " << std::strerror(errno));
  path_ = buf;
}

TempDir::~TempDir() {
  std::error_code ec;
  std::filesystem::remove_all(path_, ec);
  // Destructor must not throw; a leaked temp dir is logged nowhere on
  // purpose (tests clean /tmp eventually).
}

}  // namespace oocc::io
