#include "oocc/io/file_backend.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <system_error>
#include <thread>

#include "oocc/util/env.hpp"
#include "oocc/util/error.hpp"
#include "oocc/util/faults.hpp"
#include "oocc/util/log.hpp"

namespace oocc::io {

FileBackend::FileBackend(const std::filesystem::path& path) : path_(path) {
  fd_ = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  OOCC_CHECK(fd_ >= 0, ErrorCode::kIoError,
             "cannot open " << path << ": " << std::strerror(errno));
  const std::int64_t delay = env_int("OOCC_HOST_IO_DELAY_US", 0);
  host_delay_us_ = delay > 0 ? static_cast<std::uint32_t>(delay) : 0;
}

FileBackend::~FileBackend() { close(); }

FileBackend::FileBackend(FileBackend&& other) noexcept
    : path_(std::move(other.path_)),
      fd_(other.fd_),
      host_delay_us_(other.host_delay_us_) {
  other.fd_ = -1;
}

FileBackend& FileBackend::operator=(FileBackend&& other) noexcept {
  if (this != &other) {
    close();
    path_ = std::move(other.path_);
    fd_ = other.fd_;
    host_delay_us_ = other.host_delay_us_;
    other.fd_ = -1;
  }
  return *this;
}

void FileBackend::close() noexcept {
  if (fd_ >= 0) {
    if (::close(fd_) != 0) {
      // Destructor path; the write data is already out of our hands, but a
      // failing close (e.g. NFS deferred-error reporting) must not vanish.
      OOCC_WARN("io", "close failed on " << path_ << ": "
                                         << std::strerror(errno));
    }
    fd_ = -1;
  }
}

void FileBackend::read_at(std::uint64_t offset, void* data,
                          std::size_t bytes) {
  OOCC_CHECK(fd_ >= 0, ErrorCode::kIoError, "file " << path_ << " is closed");
  faults::FaultInjector::instance().check(
      faults::Site::kRead, "read " + path_.filename().string());
  if (host_delay_us_ > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(host_delay_us_));
  }
  std::size_t done = 0;
  while (done < bytes) {
    const ssize_t n =
        ::pread(fd_, static_cast<char*>(data) + done, bytes - done,
                static_cast<off_t>(offset + done));
    if (n < 0) {
      // EINTR/EAGAIN are not failures: the syscall was interrupted (or the
      // fd is briefly unready) and must simply be reissued. Conflating them
      // with EOF (n == 0) turned every signal delivery into a hard error.
      if (errno == EINTR || errno == EAGAIN) {
        continue;
      }
      OOCC_THROW(ErrorCode::kIoError,
                 "read failed on " << path_ << " at offset " << offset + done
                                   << ": " << std::strerror(errno));
    }
    OOCC_CHECK(n > 0, ErrorCode::kIoError,
               "short read on " << path_ << " at offset " << offset + done
                                << " (EOF)");
    done += static_cast<std::size_t>(n);
  }
}

void FileBackend::write_at(std::uint64_t offset, const void* data,
                           std::size_t bytes) {
  OOCC_CHECK(fd_ >= 0, ErrorCode::kIoError, "file " << path_ << " is closed");
  faults::FaultInjector::instance().check(
      faults::Site::kWrite, "write " + path_.filename().string());
  if (host_delay_us_ > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(host_delay_us_));
  }
  std::size_t done = 0;
  while (done < bytes) {
    const ssize_t n =
        ::pwrite(fd_, static_cast<const char*>(data) + done, bytes - done,
                 static_cast<off_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN) {
        continue;
      }
      OOCC_THROW(ErrorCode::kIoError,
                 "write failed on " << path_ << " at offset " << offset + done
                                    << ": " << std::strerror(errno));
    }
    OOCC_CHECK(n > 0, ErrorCode::kIoError,
               "zero-length write on " << path_ << " at offset "
                                       << offset + done);
    done += static_cast<std::size_t>(n);
  }
}

AsyncEngine::Ticket FileBackend::read_at_async(AsyncEngine& engine,
                                               std::uint64_t offset,
                                               void* data, std::size_t bytes) {
  return engine.submit(this,
                       [this, offset, data, bytes] { read_at(offset, data, bytes); });
}

AsyncEngine::Ticket FileBackend::write_at_async(AsyncEngine& engine,
                                                std::uint64_t offset,
                                                const void* data,
                                                std::size_t bytes) {
  return engine.submit(
      this, [this, offset, data, bytes] { write_at(offset, data, bytes); });
}

std::uint64_t FileBackend::size() const {
  OOCC_CHECK(fd_ >= 0, ErrorCode::kIoError, "file " << path_ << " is closed");
  struct stat st {};
  OOCC_CHECK(::fstat(fd_, &st) == 0, ErrorCode::kIoError,
             "fstat failed on " << path_ << ": " << std::strerror(errno));
  return static_cast<std::uint64_t>(st.st_size);
}

void FileBackend::truncate(std::uint64_t bytes) {
  OOCC_CHECK(fd_ >= 0, ErrorCode::kIoError, "file " << path_ << " is closed");
  OOCC_CHECK(::ftruncate(fd_, static_cast<off_t>(bytes)) == 0,
             ErrorCode::kIoError,
             "ftruncate failed on " << path_ << ": " << std::strerror(errno));
}

TempDir::TempDir(const std::string& prefix) {
  const char* base = std::getenv("TMPDIR");
  std::filesystem::path dir = (base != nullptr && *base != '\0')
                                  ? std::filesystem::path(base)
                                  : std::filesystem::path("/tmp");
  std::string templ = (dir / (prefix + ".XXXXXX")).string();
  // mkdtemp mutates its argument in place.
  std::string buf = templ;
  OOCC_CHECK(::mkdtemp(buf.data()) != nullptr, ErrorCode::kIoError,
             "mkdtemp failed for " << templ << ": " << std::strerror(errno));
  path_ = buf;
}

TempDir::~TempDir() {
  std::error_code ec;
  std::filesystem::remove_all(path_, ec);
  if (ec) {
    // Destructor must not throw, but a leaked temp dir should at least be
    // visible — silent leaks fill /tmp on busy CI machines.
    OOCC_WARN("io", "failed to remove temp dir " << path_ << ": "
                                                 << ec.message());
  }
}

}  // namespace oocc::io
