// POSIX-file backend for Local Array Files, plus a RAII temporary directory.
//
// The simulated "disks" are backed by real host files: all data written by a
// simulated program physically round-trips through the file system, so
// functional correctness of the out-of-core runtime is genuinely exercised.
// Only the *cost* is modelled (by DiskModel); host speed is irrelevant.
#pragma once

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <string>

#include "oocc/io/async_engine.hpp"

namespace oocc::io {

/// Random-access file with pread/pwrite semantics. Movable, not copyable.
/// Every read/write consults the process-global faults::FaultInjector, so
/// a fault plan (OOCC_FAULTS / --faults=) can fail any operation
/// deterministically; EINTR/EAGAIN from the host are retried internally
/// and never surface as errors.
///
/// Concurrency: pread/pwrite carry their own file offset, so read_at /
/// write_at on one FileBackend are safe from multiple threads as long as
/// writes to overlapping byte ranges are externally ordered (the async
/// engine's per-stream FIFO provides that ordering); tests/async_test.cpp
/// pins this. Open/close/truncate are not thread-safe against concurrent
/// I/O on the same object.
///
/// OOCC_HOST_IO_DELAY_US (read at construction) adds an artificial host
/// sleep to every read_at/write_at request — a deterministic stand-in for
/// real disk latency so benches can demonstrate wall-clock overlap on
/// machines whose page cache makes file I/O near-free.
class FileBackend {
 public:
  /// Opens (creating if needed) the file at `path` for read/write.
  explicit FileBackend(const std::filesystem::path& path);
  ~FileBackend();

  FileBackend(FileBackend&& other) noexcept;
  FileBackend& operator=(FileBackend&& other) noexcept;
  FileBackend(const FileBackend&) = delete;
  FileBackend& operator=(const FileBackend&) = delete;

  const std::filesystem::path& path() const noexcept { return path_; }

  /// Reads exactly `bytes` at `offset`; throws Error(kIoError) on short
  /// reads (reading past EOF is a caller bug surfaced as an error).
  void read_at(std::uint64_t offset, void* data, std::size_t bytes);

  /// Writes exactly `bytes` at `offset`, extending the file as needed.
  void write_at(std::uint64_t offset, const void* data, std::size_t bytes);

  /// Submit/wait counterparts of read_at/write_at: the physical transfer
  /// runs on `engine` (FIFO per backend), errors and injected faults
  /// surface from Ticket::wait(). `data` must stay valid until then.
  AsyncEngine::Ticket read_at_async(AsyncEngine& engine, std::uint64_t offset,
                                    void* data, std::size_t bytes);
  AsyncEngine::Ticket write_at_async(AsyncEngine& engine, std::uint64_t offset,
                                     const void* data, std::size_t bytes);

  /// Current file size in bytes.
  std::uint64_t size() const;

  /// Pre-extends the file to `bytes` (zero-filled) so partial-slab reads of
  /// a not-yet-written array are well defined.
  void truncate(std::uint64_t bytes);

 private:
  void close() noexcept;

  std::filesystem::path path_;
  int fd_ = -1;
  std::uint32_t host_delay_us_ = 0;
};

/// Creates a unique directory under the system temp dir; removes it (and
/// all contents) on destruction. Used for Local Array Files in tests,
/// examples and benches.
class TempDir {
 public:
  /// `prefix` appears in the directory name for debuggability.
  explicit TempDir(const std::string& prefix = "oocc");
  ~TempDir();

  TempDir(const TempDir&) = delete;
  TempDir& operator=(const TempDir&) = delete;

  const std::filesystem::path& path() const noexcept { return path_; }

  /// Path of a file inside the directory.
  std::filesystem::path file(const std::string& name) const {
    return path_ / name;
  }

 private:
  std::filesystem::path path_;
};

}  // namespace oocc::io
