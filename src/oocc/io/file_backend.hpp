// POSIX-file backend for Local Array Files, plus a RAII temporary directory.
//
// The simulated "disks" are backed by real host files: all data written by a
// simulated program physically round-trips through the file system, so
// functional correctness of the out-of-core runtime is genuinely exercised.
// Only the *cost* is modelled (by DiskModel); host speed is irrelevant.
#pragma once

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <string>

namespace oocc::io {

/// Random-access file with pread/pwrite semantics. Movable, not copyable.
/// Supports deterministic fault injection for failure-path tests.
class FileBackend {
 public:
  /// Opens (creating if needed) the file at `path` for read/write.
  explicit FileBackend(const std::filesystem::path& path);
  ~FileBackend();

  FileBackend(FileBackend&& other) noexcept;
  FileBackend& operator=(FileBackend&& other) noexcept;
  FileBackend(const FileBackend&) = delete;
  FileBackend& operator=(const FileBackend&) = delete;

  const std::filesystem::path& path() const noexcept { return path_; }

  /// Reads exactly `bytes` at `offset`; throws Error(kIoError) on short
  /// reads (reading past EOF is a caller bug surfaced as an error).
  void read_at(std::uint64_t offset, void* data, std::size_t bytes);

  /// Writes exactly `bytes` at `offset`, extending the file as needed.
  void write_at(std::uint64_t offset, const void* data, std::size_t bytes);

  /// Current file size in bytes.
  std::uint64_t size() const;

  /// Pre-extends the file to `bytes` (zero-filled) so partial-slab reads of
  /// a not-yet-written array are well defined.
  void truncate(std::uint64_t bytes);

  /// Fault injection: the n-th subsequent read (1 = next) fails with
  /// Error(kIoError). Pass 0 to clear.
  void inject_read_fault(std::uint64_t after_reads) noexcept {
    read_fault_countdown_ = after_reads;
  }
  /// Same for writes.
  void inject_write_fault(std::uint64_t after_writes) noexcept {
    write_fault_countdown_ = after_writes;
  }

 private:
  void close() noexcept;

  std::filesystem::path path_;
  int fd_ = -1;
  std::uint64_t read_fault_countdown_ = 0;
  std::uint64_t write_fault_countdown_ = 0;
};

/// Creates a unique directory under the system temp dir; removes it (and
/// all contents) on destruction. Used for Local Array Files in tests,
/// examples and benches.
class TempDir {
 public:
  /// `prefix` appears in the directory name for debuggability.
  explicit TempDir(const std::string& prefix = "oocc");
  ~TempDir();

  TempDir(const TempDir&) = delete;
  TempDir& operator=(const TempDir&) = delete;

  const std::filesystem::path& path() const noexcept { return path_; }

  /// Path of a file inside the directory.
  std::filesystem::path file(const std::string& name) const {
    return path_ / name;
  }

 private:
  std::filesystem::path path_;
};

}  // namespace oocc::io
