// POSIX-file backend for Local Array Files, plus a RAII temporary directory.
//
// The simulated "disks" are backed by real host files: all data written by a
// simulated program physically round-trips through the file system, so
// functional correctness of the out-of-core runtime is genuinely exercised.
// Only the *cost* is modelled (by DiskModel); host speed is irrelevant.
#pragma once

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <string>

namespace oocc::io {

/// Random-access file with pread/pwrite semantics. Movable, not copyable.
/// Every read/write consults the process-global faults::FaultInjector, so
/// a fault plan (OOCC_FAULTS / --faults=) can fail any operation
/// deterministically; EINTR/EAGAIN from the host are retried internally
/// and never surface as errors.
class FileBackend {
 public:
  /// Opens (creating if needed) the file at `path` for read/write.
  explicit FileBackend(const std::filesystem::path& path);
  ~FileBackend();

  FileBackend(FileBackend&& other) noexcept;
  FileBackend& operator=(FileBackend&& other) noexcept;
  FileBackend(const FileBackend&) = delete;
  FileBackend& operator=(const FileBackend&) = delete;

  const std::filesystem::path& path() const noexcept { return path_; }

  /// Reads exactly `bytes` at `offset`; throws Error(kIoError) on short
  /// reads (reading past EOF is a caller bug surfaced as an error).
  void read_at(std::uint64_t offset, void* data, std::size_t bytes);

  /// Writes exactly `bytes` at `offset`, extending the file as needed.
  void write_at(std::uint64_t offset, const void* data, std::size_t bytes);

  /// Current file size in bytes.
  std::uint64_t size() const;

  /// Pre-extends the file to `bytes` (zero-filled) so partial-slab reads of
  /// a not-yet-written array are well defined.
  void truncate(std::uint64_t bytes);

 private:
  void close() noexcept;

  std::filesystem::path path_;
  int fd_ = -1;
};

/// Creates a unique directory under the system temp dir; removes it (and
/// all contents) on destruction. Used for Local Array Files in tests,
/// examples and benches.
class TempDir {
 public:
  /// `prefix` appears in the directory name for debuggability.
  explicit TempDir(const std::string& prefix = "oocc");
  ~TempDir();

  TempDir(const TempDir&) = delete;
  TempDir& operator=(const TempDir&) = delete;

  const std::filesystem::path& path() const noexcept { return path_; }

  /// Path of a file inside the directory.
  std::filesystem::path file(const std::string& name) const {
    return path_ / name;
  }

 private:
  std::filesystem::path path_;
};

}  // namespace oocc::io
