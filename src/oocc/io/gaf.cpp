#include "oocc/io/gaf.hpp"

namespace oocc::io {

GlobalArrayFile::GlobalArrayFile(const std::filesystem::path& path,
                                 std::int64_t rows, std::int64_t cols,
                                 StorageOrder order, DiskModel disk)
    : file_(path, rows, cols, order, disk) {}

std::vector<Extent> GlobalArrayFile::section_extents(const Section& s) const {
  return file_.section_extents(s);
}

std::uint64_t GlobalArrayFile::section_request_count(const Section& s) const {
  return file_.section_request_count(s);
}

void GlobalArrayFile::read_section(sim::SpmdContext& ctx, const Section& s,
                                   std::span<double> out) {
  std::lock_guard<std::mutex> lock(mu_);
  file_.read_section(ctx, s, out);
}

void GlobalArrayFile::write_section(sim::SpmdContext& ctx, const Section& s,
                                    std::span<const double> in) {
  std::lock_guard<std::mutex> lock(mu_);
  file_.write_section(ctx, s, in);
}

void GlobalArrayFile::fill_host(
    const std::function<double(std::int64_t, std::int64_t)>& f) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::int64_t r_n = file_.rows();
  const std::int64_t c_n = file_.cols();
  std::vector<double> all(static_cast<std::size_t>(r_n * c_n));
  if (file_.order() == StorageOrder::kColumnMajor) {
    for (std::int64_t c = 0; c < c_n; ++c) {
      for (std::int64_t r = 0; r < r_n; ++r) {
        all[static_cast<std::size_t>(c * r_n + r)] = f(r, c);
      }
    }
  } else {
    for (std::int64_t r = 0; r < r_n; ++r) {
      for (std::int64_t c = 0; c < c_n; ++c) {
        all[static_cast<std::size_t>(r * c_n + c)] = f(r, c);
      }
    }
  }
  file_.backend().write_at(0, all.data(), all.size() * sizeof(double));
}

IoStats GlobalArrayFile::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return file_.stats();
}

void GlobalArrayFile::reset_stats() {
  std::lock_guard<std::mutex> lock(mu_);
  file_.reset_stats();
}

}  // namespace oocc::io
