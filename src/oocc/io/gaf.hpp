// Global Array File — a single shared file holding an entire global array.
//
// This models the common parallel-file-system situation the PASSION
// runtime (the paper's [TBC+94b]) addresses with *two-phase I/O*: data
// arrives in one file in a canonical order (say column-major), and every
// compute processor needs the piece its distribution assigns to it. A
// processor reading its piece *directly* pays one request per contiguous
// extent, which for non-conforming distributions is disastrous; reading
// cooperatively in conforming chunks and redistributing in memory costs a
// handful of requests plus cheap communication (runtime/twophase.hpp).
//
// Unlike a LocalArrayFile (private to one processor), a GlobalArrayFile is
// shared: any simulated processor may read/write any section, and host-side
// access is serialized internally. Costs are charged to the calling
// processor's clock, exactly like the LAF.
#pragma once

#include <functional>
#include <mutex>

#include "oocc/io/laf.hpp"

namespace oocc::io {

class GlobalArrayFile {
 public:
  /// Creates (or opens) the shared file for a rows x cols global array.
  /// Construct once, outside the SPMD region.
  GlobalArrayFile(const std::filesystem::path& path, std::int64_t rows,
                  std::int64_t cols, StorageOrder order, DiskModel disk);

  std::int64_t rows() const noexcept { return file_.rows(); }
  std::int64_t cols() const noexcept { return file_.cols(); }
  StorageOrder order() const noexcept { return file_.order(); }

  /// Extents / request count of a *global-coordinate* section.
  std::vector<Extent> section_extents(const Section& s) const;
  std::uint64_t section_request_count(const Section& s) const;

  /// Reads/writes a global section (column-major section order buffer),
  /// charging the calling processor. Thread-safe across simulated
  /// processors.
  void read_section(sim::SpmdContext& ctx, const Section& s,
                    std::span<double> out);
  void write_section(sim::SpmdContext& ctx, const Section& s,
                     std::span<const double> in);

  /// Fills the whole array from a generator (host-side helper for tests
  /// and benches; call from one place before the SPMD region, with a
  /// context from a staging machine, or use fill_host()).
  void fill_host(const std::function<double(std::int64_t, std::int64_t)>& f);

  /// Snapshot of the accumulated counters.
  IoStats stats() const;
  void reset_stats();

 private:
  mutable std::mutex mu_;
  LocalArrayFile file_;
};

}  // namespace oocc::io
