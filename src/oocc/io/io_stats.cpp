#include "oocc/io/io_stats.hpp"

#include <sstream>

namespace oocc::io {

std::string IoStats::summary() const {
  std::ostringstream oss;
  oss << "reads=" << read_requests << " writes=" << write_requests
      << " bytes_read=" << bytes_read << " bytes_written=" << bytes_written
      << " io_time=" << time_s << "s";
  if (cache_hits + cache_misses + cache_evictions + cache_writebacks > 0) {
    oss << " cache_hits=" << cache_hits << " cache_misses=" << cache_misses
        << " cache_evictions=" << cache_evictions
        << " cache_writebacks=" << cache_writebacks
        << " bytes_cache_hit=" << bytes_cache_hit;
  }
  if (retries + journal_writes + recoveries > 0) {
    oss << " retries=" << retries << " journal_writes=" << journal_writes
        << " bytes_journaled=" << bytes_journaled
        << " recoveries=" << recoveries;
  }
  if (async_reads + async_writes > 0) {
    oss << " async_reads=" << async_reads << " async_writes=" << async_writes;
  }
  return oss.str();
}

}  // namespace oocc::io
