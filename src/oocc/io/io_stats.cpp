#include "oocc/io/io_stats.hpp"

#include <sstream>

namespace oocc::io {

std::string IoStats::summary() const {
  std::ostringstream oss;
  oss << "reads=" << read_requests << " writes=" << write_requests
      << " bytes_read=" << bytes_read << " bytes_written=" << bytes_written
      << " io_time=" << time_s << "s";
  return oss.str();
}

}  // namespace oocc::io
