// Per-file I/O counters: the paper's two cost metrics (requests and bytes)
// plus the simulated time they induced. LocalArrayFile maintains one of
// these per array file and also mirrors the counts into the owning
// processor's sim::ProcStats.
#pragma once

#include <cstdint>
#include <string>

namespace oocc::io {

struct IoStats {
  std::uint64_t read_requests = 0;   ///< contiguous extents read
  std::uint64_t write_requests = 0;  ///< contiguous extents written
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;
  double time_s = 0.0;  ///< simulated disk service time charged

  // Slab-cache activity against this file (runtime::SlabBufferPool): demand
  // reads served from memory instead of disk, and the pool's eviction /
  // dirty write-back traffic. Hits do not appear in the request/byte
  // counters above — bytes_cache_hit is exactly the LAF volume they avoided.
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_evictions = 0;
  std::uint64_t cache_writebacks = 0;
  std::uint64_t bytes_cache_hit = 0;

  // Fault-tolerance activity (docs/fault-tolerance.md): transient faults
  // masked by the retry loop, shadow-journal records written by the
  // crash-consistent write-back path, and committed journal records
  // replayed by the recovery scan when the file was (re)opened.
  std::uint64_t retries = 0;
  std::uint64_t journal_writes = 0;
  std::uint64_t bytes_journaled = 0;
  std::uint64_t recoveries = 0;

  // Real-async activity (docs/async-io.md): section transfers whose
  // physical I/O ran on the AsyncEngine. Their requests/bytes are already
  // in the counters above (charged at submit); these count how many
  // transfers were in flight off the compute thread. Queue-depth and
  // overlap-seconds live in the engine's wall-clock counters
  // (sim::RunReport::async).
  std::uint64_t async_reads = 0;
  std::uint64_t async_writes = 0;

  std::uint64_t total_requests() const noexcept {
    return read_requests + write_requests;
  }
  std::uint64_t total_bytes() const noexcept {
    return bytes_read + bytes_written;
  }

  void merge(const IoStats& other) noexcept {
    read_requests += other.read_requests;
    write_requests += other.write_requests;
    bytes_read += other.bytes_read;
    bytes_written += other.bytes_written;
    time_s += other.time_s;
    cache_hits += other.cache_hits;
    cache_misses += other.cache_misses;
    cache_evictions += other.cache_evictions;
    cache_writebacks += other.cache_writebacks;
    bytes_cache_hit += other.bytes_cache_hit;
    retries += other.retries;
    journal_writes += other.journal_writes;
    bytes_journaled += other.bytes_journaled;
    recoveries += other.recoveries;
    async_reads += other.async_reads;
    async_writes += other.async_writes;
  }

  std::string summary() const;
};

}  // namespace oocc::io
