// Per-file I/O counters: the paper's two cost metrics (requests and bytes)
// plus the simulated time they induced. LocalArrayFile maintains one of
// these per array file and also mirrors the counts into the owning
// processor's sim::ProcStats.
#pragma once

#include <cstdint>
#include <string>

namespace oocc::io {

struct IoStats {
  std::uint64_t read_requests = 0;   ///< contiguous extents read
  std::uint64_t write_requests = 0;  ///< contiguous extents written
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;
  double time_s = 0.0;  ///< simulated disk service time charged

  std::uint64_t total_requests() const noexcept {
    return read_requests + write_requests;
  }
  std::uint64_t total_bytes() const noexcept {
    return bytes_read + bytes_written;
  }

  void merge(const IoStats& other) noexcept {
    read_requests += other.read_requests;
    write_requests += other.write_requests;
    bytes_read += other.bytes_read;
    bytes_written += other.bytes_written;
    time_s += other.time_s;
  }

  std::string summary() const;
};

}  // namespace oocc::io
