#include "oocc/io/laf.hpp"

#include <cstring>

#include "oocc/util/log.hpp"

namespace oocc::io {

namespace {
constexpr std::uint64_t kElem = sizeof(double);

// Write-back journal record layout: [WalHeader][payload][commit marker].
// The payload is the section's bytes in file-extent order (exactly what the
// apply step writes in place), so replay is a straight extent walk.
constexpr std::uint64_t kWalMagic = 0x4f4f43432d57414cULL;   // "OOCC-WAL"
constexpr std::uint64_t kWalCommit = 0x434f4d4d49542121ULL;  // "COMMIT!!"

struct WalHeader {
  std::uint64_t magic = 0;
  std::int64_t row0 = 0;
  std::int64_t row1 = 0;
  std::int64_t col0 = 0;
  std::int64_t col1 = 0;
  std::uint64_t payload_bytes = 0;
  std::uint64_t checksum = 0;
};
static_assert(sizeof(WalHeader) == 56);

std::uint64_t fnv1a(const void* data, std::size_t bytes) noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = 1469598103934665603ULL;
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}

/// Runs `op`, masking transient faults with bounded retries. Each failed
/// attempt charges exponential backoff to the simulated clock (and the
/// paper's I/O time metric); exhausting the budget escalates to a
/// permanent kIoError.
template <typename Op>
void with_retry(sim::SpmdContext& ctx, const faults::RetryPolicy& policy,
                const DiskModel& disk, IoStats& stats, Op&& op) {
  for (int attempt = 1;; ++attempt) {
    try {
      op();
      return;
    } catch (const Error& e) {
      if (e.code() != ErrorCode::kTransientIoError) {
        throw;
      }
      if (attempt >= policy.max_attempts) {
        OOCC_THROW(ErrorCode::kIoError,
                   "transient I/O fault persisted after "
                       << attempt << " attempts: " << e.what());
      }
      const double backoff =
          policy.backoff_s(attempt, disk.request_overhead_s);
      ctx.charge_io_time(backoff);
      stats.time_s += backoff;
      ++stats.retries;
      ++ctx.stats().retries;
    }
  }
}

/// Worker-thread variant of with_retry: no SpmdContext is available on an
/// engine thread, so failed transient attempts are only *recorded* (their
/// simulated backoff is charged later by LocalArrayFile::settle). The
/// escalation behaviour and message match with_retry exactly.
template <typename Op>
void retry_on_worker(const faults::RetryPolicy& policy,
                     std::vector<int>& attempts, Op&& op) {
  for (int attempt = 1;; ++attempt) {
    try {
      op();
      return;
    } catch (const Error& e) {
      if (e.code() != ErrorCode::kTransientIoError) {
        throw;
      }
      if (attempt >= policy.max_attempts) {
        OOCC_THROW(ErrorCode::kIoError,
                   "transient I/O fault persisted after "
                       << attempt << " attempts: " << e.what());
      }
      attempts.push_back(attempt);
    }
  }
}

}  // namespace

std::string_view storage_order_name(StorageOrder order) noexcept {
  switch (order) {
    case StorageOrder::kColumnMajor:
      return "column-major";
    case StorageOrder::kRowMajor:
      return "row-major";
  }
  return "?";
}

LocalArrayFile::LocalArrayFile(const std::filesystem::path& path,
                               std::int64_t rows, std::int64_t cols,
                               StorageOrder order, DiskModel disk)
    : rows_(rows), cols_(cols), order_(order), disk_(disk), backend_(path) {
  OOCC_REQUIRE(rows >= 1 && cols >= 1,
               "local array must be non-empty, got " << rows << "x" << cols);
  const std::uint64_t bytes =
      static_cast<std::uint64_t>(rows) * static_cast<std::uint64_t>(cols) *
      kElem;
  if (backend_.size() < bytes) {
    backend_.truncate(bytes);
  }
  recover_from_journal();
}

std::filesystem::path LocalArrayFile::journal_path() const {
  return std::filesystem::path(backend_.path().string() + ".wal");
}

void LocalArrayFile::set_journaling(bool on) {
  if (on && journal_ == nullptr) {
    journal_ = std::make_unique<FileBackend>(journal_path());
  } else if (!on) {
    journal_.reset();
  }
}

void LocalArrayFile::recover_from_journal() {
  const std::filesystem::path jpath = journal_path();
  std::error_code ec;
  if (!std::filesystem::exists(jpath, ec) || ec) {
    return;
  }
  FileBackend journal(jpath);
  const std::uint64_t size = journal.size();
  if (size == 0) {
    return;  // cleanly applied (or never used)
  }
  bool replayed = false;
  try {
    WalHeader h;
    if (size >= sizeof(WalHeader)) {
      journal.read_at(0, &h, sizeof(WalHeader));
      std::uint64_t marker = 0;
      if (h.magic == kWalMagic &&
          size >= sizeof(WalHeader) + h.payload_bytes + sizeof(marker)) {
        journal.read_at(sizeof(WalHeader) + h.payload_bytes, &marker,
                        sizeof(marker));
        if (marker == kWalCommit) {
          std::vector<char> payload(h.payload_bytes);
          journal.read_at(sizeof(WalHeader), payload.data(),
                          h.payload_bytes);
          const Section s{h.row0, h.row1, h.col0, h.col1};
          if (fnv1a(payload.data(), payload.size()) == h.checksum &&
              static_cast<std::uint64_t>(s.elements()) * kElem ==
                  h.payload_bytes) {
            // Committed record: redo the in-place apply (idempotent — the
            // payload is exactly what a completed apply wrote).
            std::size_t off = 0;
            for (const Extent& e : section_extents(s)) {
              backend_.write_at(e.offset_bytes, payload.data() + off,
                                e.length_bytes);
              off += e.length_bytes;
            }
            replayed = true;
          }
        }
      }
    }
  } catch (const Error&) {
    // A torn or corrupt journal (crash mid shadow-write) carries an
    // uncommitted record: the pre-write array contents are intact, so the
    // record is simply discarded below.
  }
  journal.truncate(0);
  if (replayed) {
    ++stats_.recoveries;
    faults::FaultInjector::instance().note_recovery();
    OOCC_INFO("laf", "replayed committed write-back journal for "
                         << backend_.path());
  } else {
    OOCC_WARN("laf", "discarded uncommitted write-back journal for "
                         << backend_.path());
  }
}

void LocalArrayFile::validate_section(const Section& s) const {
  OOCC_CHECK(s.row0 >= 0 && s.row1 <= rows_ && s.col0 >= 0 && s.col1 <= cols_,
             ErrorCode::kOutOfRange,
             "section [" << s.row0 << "," << s.row1 << ")x[" << s.col0 << ","
                         << s.col1 << ") outside local array " << rows_ << "x"
                         << cols_);
  OOCC_CHECK(!s.empty(), ErrorCode::kInvalidArgument,
             "empty section [" << s.row0 << "," << s.row1 << ")x[" << s.col0
                               << "," << s.col1 << ")");
}

std::uint64_t section_extent_count(const Section& s, std::int64_t rows,
                                   std::int64_t cols,
                                   StorageOrder order) noexcept {
  if (s.empty()) {
    return 0;
  }
  if (order == StorageOrder::kColumnMajor) {
    return s.row0 == 0 && s.row1 == rows ? 1
                                         : static_cast<std::uint64_t>(s.cols());
  }
  return s.col0 == 0 && s.col1 == cols ? 1
                                       : static_cast<std::uint64_t>(s.rows());
}

std::vector<Extent> LocalArrayFile::section_extents(const Section& s) const {
  validate_section(s);
  std::vector<Extent> extents;
  if (order_ == StorageOrder::kColumnMajor) {
    if (s.row0 == 0 && s.row1 == rows_) {
      // Full columns are adjacent in the file: one coalesced extent.
      extents.push_back(Extent{element_offset(0, s.col0) * kElem,
                               static_cast<std::uint64_t>(s.elements()) *
                                   kElem});
    } else {
      extents.reserve(static_cast<std::size_t>(s.cols()));
      for (std::int64_t c = s.col0; c < s.col1; ++c) {
        extents.push_back(Extent{element_offset(s.row0, c) * kElem,
                                 static_cast<std::uint64_t>(s.rows()) * kElem});
      }
    }
  } else {
    if (s.col0 == 0 && s.col1 == cols_) {
      extents.push_back(Extent{element_offset(s.row0, 0) * kElem,
                               static_cast<std::uint64_t>(s.elements()) *
                                   kElem});
    } else {
      extents.reserve(static_cast<std::size_t>(s.rows()));
      for (std::int64_t r = s.row0; r < s.row1; ++r) {
        extents.push_back(Extent{element_offset(r, s.col0) * kElem,
                                 static_cast<std::uint64_t>(s.cols()) * kElem});
      }
    }
  }
  return extents;
}

std::uint64_t LocalArrayFile::section_request_count(const Section& s) const {
  validate_section(s);
  return section_extent_count(s, rows_, cols_, order_);
}

void LocalArrayFile::charge(sim::SpmdContext& ctx,
                            const std::vector<Extent>& extents, bool is_read) {
  double time = 0.0;
  std::uint64_t bytes = 0;
  for (const Extent& e : extents) {
    time += disk_.request_time(static_cast<double>(e.length_bytes),
                               ctx.nprocs());
    bytes += e.length_bytes;
  }
  ctx.charge_io_time(time);
  stats_.time_s += time;
  auto& ps = ctx.stats();
  ps.io_requests += extents.size();
  if (is_read) {
    stats_.read_requests += extents.size();
    stats_.bytes_read += bytes;
    ps.io_bytes_read += bytes;
  } else {
    stats_.write_requests += extents.size();
    stats_.bytes_written += bytes;
    ps.io_bytes_written += bytes;
  }
}

void LocalArrayFile::bread(sim::SpmdContext& ctx, std::uint64_t offset,
                           void* data, std::size_t bytes) {
  with_retry(ctx, retry_, disk_, stats_,
             [&] { backend_.read_at(offset, data, bytes); });
}

void LocalArrayFile::bwrite(sim::SpmdContext& ctx, std::uint64_t offset,
                            const void* data, std::size_t bytes) {
  with_retry(ctx, retry_, disk_, stats_,
             [&] { backend_.write_at(offset, data, bytes); });
}

void LocalArrayFile::extent_payload(const Section& s,
                                    std::span<const double> in,
                                    std::vector<double>& out) const {
  out.resize(static_cast<std::size_t>(s.elements()));
  if (order_ == StorageOrder::kColumnMajor) {
    // Column-major extents follow column-major section order exactly.
    std::memcpy(out.data(), in.data(), in.size() * kElem);
    return;
  }
  const std::int64_t srows = s.rows();
  const std::int64_t scols = s.cols();
  for (std::int64_t r = 0; r < srows; ++r) {
    for (std::int64_t c = 0; c < scols; ++c) {
      out[static_cast<std::size_t>(r * scols + c)] =
          in[static_cast<std::size_t>(c * srows + r)];
    }
  }
}

void LocalArrayFile::journal_write(sim::SpmdContext& ctx, const Section& s,
                                   const std::vector<double>& payload) {
  const std::uint64_t payload_bytes = payload.size() * kElem;
  WalHeader h;
  h.magic = kWalMagic;
  h.row0 = s.row0;
  h.row1 = s.row1;
  h.col0 = s.col0;
  h.col1 = s.col1;
  h.payload_bytes = payload_bytes;
  h.checksum = fnv1a(payload.data(), payload_bytes);

  // The shadow record is one streaming request against the same disk.
  const double time = disk_.request_time(
      static_cast<double>(sizeof(WalHeader) + payload_bytes +
                          sizeof(kWalCommit)),
      ctx.nprocs());
  ctx.charge_io_time(time);
  stats_.time_s += time;
  ++stats_.journal_writes;
  stats_.bytes_journaled += payload_bytes;
  auto& ps = ctx.stats();
  ++ps.io_requests;
  ps.io_bytes_written += payload_bytes;

  journal_->truncate(0);
  with_retry(ctx, retry_, disk_, stats_,
             [&] { journal_->write_at(0, &h, sizeof(WalHeader)); });
  with_retry(ctx, retry_, disk_, stats_, [&] {
    journal_->write_at(sizeof(WalHeader), payload.data(), payload_bytes);
  });
  // Crash here (before the commit marker) => record is discarded on open.
  faults::FaultInjector::instance().check_crash(
      "shadow", "journal " + backend_.path().filename().string());
  with_retry(ctx, retry_, disk_, stats_, [&] {
    journal_->write_at(sizeof(WalHeader) + payload_bytes, &kWalCommit,
                       sizeof(kWalCommit));
  });
}

void LocalArrayFile::read_section(sim::SpmdContext& ctx, const Section& s,
                                  std::span<double> out) {
  validate_section(s);
  OOCC_REQUIRE(out.size() == static_cast<std::size_t>(s.elements()),
               "output buffer holds " << out.size() << " elements; section "
                                      << "needs " << s.elements());
  const std::vector<Extent> extents = section_extents(s);
  charge(ctx, extents, /*is_read=*/true);

  const std::int64_t srows = s.rows();
  if (order_ == StorageOrder::kColumnMajor) {
    if (extents.size() == 1 && s.row0 == 0 && s.row1 == rows_) {
      bread(ctx, extents[0].offset_bytes, out.data(),
            extents[0].length_bytes);
      return;
    }
    // One extent per column; each maps to a contiguous run of `out`.
    std::size_t off = 0;
    for (const Extent& e : extents) {
      bread(ctx, e.offset_bytes, out.data() + off, e.length_bytes);
      off += static_cast<std::size_t>(srows);
    }
    return;
  }

  // Row-major storage: each extent is one row segment (or the whole
  // section when it spans all columns); scatter into column-major `out`.
  if (extents.size() == 1 && s.col0 == 0 && s.col1 == cols_) {
    scratch_.resize(static_cast<std::size_t>(s.elements()));
    bread(ctx, extents[0].offset_bytes, scratch_.data(),
          extents[0].length_bytes);
    for (std::int64_t r = 0; r < s.rows(); ++r) {
      for (std::int64_t c = 0; c < s.cols(); ++c) {
        out[static_cast<std::size_t>(c * srows + r)] =
            scratch_[static_cast<std::size_t>(r * s.cols() + c)];
      }
    }
    return;
  }
  scratch_.resize(static_cast<std::size_t>(s.cols()));
  std::int64_t r = s.row0;
  for (const Extent& e : extents) {
    bread(ctx, e.offset_bytes, scratch_.data(), e.length_bytes);
    for (std::int64_t c = 0; c < s.cols(); ++c) {
      out[static_cast<std::size_t>(c * srows + (r - s.row0))] =
          scratch_[static_cast<std::size_t>(c)];
    }
    ++r;
  }
}

void LocalArrayFile::write_section(sim::SpmdContext& ctx, const Section& s,
                                   std::span<const double> in) {
  validate_section(s);
  OOCC_REQUIRE(in.size() == static_cast<std::size_t>(s.elements()),
               "input buffer holds " << in.size() << " elements; section "
                                     << "needs " << s.elements());
  const std::vector<Extent> extents = section_extents(s);
  charge(ctx, extents, /*is_read=*/false);

  if (journal_ != nullptr) {
    // Crash-consistent path: shadow-write + commit, then apply in place
    // from the same payload bytes the journal holds, then clear. A crash
    // at any point leaves either the old section (uncommitted record
    // discarded on open) or the new one (committed record replayed).
    extent_payload(s, in, journal_scratch_);
    journal_write(ctx, s, journal_scratch_);
    faults::FaultInjector::instance().check_crash(
        "apply", "write " + backend_.path().filename().string());
    const char* bytes =
        reinterpret_cast<const char*>(journal_scratch_.data());
    std::size_t off = 0;
    for (const Extent& e : extents) {
      bwrite(ctx, e.offset_bytes, bytes + off, e.length_bytes);
      off += static_cast<std::size_t>(e.length_bytes);
    }
    journal_->truncate(0);
    return;
  }

  const std::int64_t srows = s.rows();
  if (order_ == StorageOrder::kColumnMajor) {
    if (extents.size() == 1 && s.row0 == 0 && s.row1 == rows_) {
      bwrite(ctx, extents[0].offset_bytes, in.data(),
             extents[0].length_bytes);
      return;
    }
    std::size_t off = 0;
    for (const Extent& e : extents) {
      bwrite(ctx, e.offset_bytes, in.data() + off, e.length_bytes);
      off += static_cast<std::size_t>(srows);
    }
    return;
  }

  if (extents.size() == 1 && s.col0 == 0 && s.col1 == cols_) {
    scratch_.resize(static_cast<std::size_t>(s.elements()));
    for (std::int64_t r = 0; r < s.rows(); ++r) {
      for (std::int64_t c = 0; c < s.cols(); ++c) {
        scratch_[static_cast<std::size_t>(r * s.cols() + c)] =
            in[static_cast<std::size_t>(c * srows + r)];
      }
    }
    bwrite(ctx, extents[0].offset_bytes, scratch_.data(),
           extents[0].length_bytes);
    return;
  }
  scratch_.resize(static_cast<std::size_t>(s.cols()));
  std::int64_t r = s.row0;
  for (const Extent& e : extents) {
    for (std::int64_t c = 0; c < s.cols(); ++c) {
      scratch_[static_cast<std::size_t>(c)] =
          in[static_cast<std::size_t>(c * srows + (r - s.row0))];
    }
    bwrite(ctx, e.offset_bytes, scratch_.data(), e.length_bytes);
    ++r;
  }
}

AsyncHandle LocalArrayFile::read_section_async(sim::SpmdContext& ctx,
                                               AsyncEngine& engine,
                                               const Section& s,
                                               std::span<double> out) {
  validate_section(s);
  OOCC_REQUIRE(out.size() == static_cast<std::size_t>(s.elements()),
               "output buffer holds " << out.size() << " elements; section "
                                      << "needs " << s.elements());
  std::vector<Extent> extents = section_extents(s);
  // Simulated cost is charged now, on the compute thread — identical to the
  // synchronous path in fault-free runs. Only the physical transfer moves
  // to the engine.
  charge(ctx, extents, /*is_read=*/true);
  ++stats_.async_reads;

  AsyncHandle h;
  h.retry_attempts = std::make_shared<std::vector<int>>();
  auto attempts = h.retry_attempts;
  const faults::RetryPolicy policy = retry_;
  const Section sec = s;
  // Stream key: the file itself. Submissions against one LAF stay in
  // program order (so a read never overtakes a write-back it must see);
  // different files behave as independent devices and overlap.
  h.ticket = engine.submit(
      this, [this, sec, out, extents = std::move(extents), attempts, policy] {
        if (order_ == StorageOrder::kColumnMajor) {
          // Each extent maps to a contiguous run of `out`.
          std::size_t off = 0;
          for (const Extent& e : extents) {
            retry_on_worker(policy, *attempts, [&] {
              backend_.read_at(e.offset_bytes, out.data() + off,
                               e.length_bytes);
            });
            off += static_cast<std::size_t>(e.length_bytes / kElem);
          }
          return;
        }
        // Row-major storage: the concatenated extents hold the section in
        // row-major order; read into a job-local staging buffer (the shared
        // scratch_ belongs to the compute thread) and scatter.
        std::vector<double> payload(static_cast<std::size_t>(sec.elements()));
        char* bytes = reinterpret_cast<char*>(payload.data());
        std::size_t off = 0;
        for (const Extent& e : extents) {
          retry_on_worker(policy, *attempts, [&] {
            backend_.read_at(e.offset_bytes, bytes + off, e.length_bytes);
          });
          off += static_cast<std::size_t>(e.length_bytes);
        }
        const std::int64_t srows = sec.rows();
        const std::int64_t scols = sec.cols();
        for (std::int64_t r = 0; r < srows; ++r) {
          for (std::int64_t c = 0; c < scols; ++c) {
            out[static_cast<std::size_t>(c * srows + r)] =
                payload[static_cast<std::size_t>(r * scols + c)];
          }
        }
      });
  return h;
}

AsyncHandle LocalArrayFile::write_section_async(sim::SpmdContext& ctx,
                                                AsyncEngine& engine,
                                                const Section& s,
                                                std::vector<double> in) {
  validate_section(s);
  OOCC_REQUIRE(in.size() == static_cast<std::size_t>(s.elements()),
               "input buffer holds " << in.size() << " elements; section "
                                     << "needs " << s.elements());
  std::vector<Extent> extents = section_extents(s);
  charge(ctx, extents, /*is_read=*/false);
  ++stats_.async_writes;

  const bool journaled = journal_ != nullptr;
  if (journaled) {
    // Same simulated charge journal_write makes: one streaming request for
    // the shadow record.
    const std::uint64_t payload_bytes =
        static_cast<std::uint64_t>(s.elements()) * kElem;
    const double time = disk_.request_time(
        static_cast<double>(sizeof(WalHeader) + payload_bytes +
                            sizeof(kWalCommit)),
        ctx.nprocs());
    ctx.charge_io_time(time);
    stats_.time_s += time;
    ++stats_.journal_writes;
    stats_.bytes_journaled += payload_bytes;
    auto& ps = ctx.stats();
    ++ps.io_requests;
    ps.io_bytes_written += payload_bytes;
  }

  AsyncHandle h;
  h.retry_attempts = std::make_shared<std::vector<int>>();
  auto attempts = h.retry_attempts;
  const faults::RetryPolicy policy = retry_;
  const Section sec = s;
  h.ticket = engine.submit(
      this, [this, sec, in = std::move(in), extents = std::move(extents),
             attempts, policy, journaled] {
        // Column-major extents follow column-major section order exactly,
        // so `in` already IS the extent payload — skip the copy (it is
        // megabytes of memcpy stolen from the compute threads' cores).
        std::vector<double> scratch;
        if (order_ != StorageOrder::kColumnMajor) {
          extent_payload(sec, in, scratch);
        }
        const std::vector<double>& payload =
            order_ == StorageOrder::kColumnMajor ? in : scratch;
        const char* bytes = reinterpret_cast<const char*>(payload.data());
        const std::uint64_t payload_bytes = payload.size() * kElem;
        if (journaled) {
          // The full physical journal protocol runs on the worker in the
          // same order as the synchronous path, so an injected crash at
          // either point leaves the journal in exactly the states the
          // open-time recovery scan handles.
          WalHeader wal;
          wal.magic = kWalMagic;
          wal.row0 = sec.row0;
          wal.row1 = sec.row1;
          wal.col0 = sec.col0;
          wal.col1 = sec.col1;
          wal.payload_bytes = payload_bytes;
          wal.checksum = fnv1a(payload.data(), payload_bytes);
          journal_->truncate(0);
          retry_on_worker(policy, *attempts, [&] {
            journal_->write_at(0, &wal, sizeof(WalHeader));
          });
          retry_on_worker(policy, *attempts, [&] {
            journal_->write_at(sizeof(WalHeader), payload.data(),
                               payload_bytes);
          });
          faults::FaultInjector::instance().check_crash(
              "shadow", "journal " + backend_.path().filename().string());
          retry_on_worker(policy, *attempts, [&] {
            journal_->write_at(sizeof(WalHeader) + payload_bytes, &kWalCommit,
                               sizeof(kWalCommit));
          });
          faults::FaultInjector::instance().check_crash(
              "apply", "write " + backend_.path().filename().string());
        }
        std::size_t off = 0;
        for (const Extent& e : extents) {
          retry_on_worker(policy, *attempts, [&] {
            backend_.write_at(e.offset_bytes, bytes + off, e.length_bytes);
          });
          off += static_cast<std::size_t>(e.length_bytes);
        }
        if (journaled) {
          journal_->truncate(0);
        }
      });
  return h;
}

void LocalArrayFile::settle(sim::SpmdContext& ctx, AsyncHandle& h) {
  std::exception_ptr error;
  try {
    h.ticket.wait();
  } catch (...) {
    error = std::current_exception();
  }
  if (h.retry_attempts != nullptr) {
    // Deferred transient-fault accounting: the worker could not touch the
    // simulated clock, so each failed attempt's backoff lands here, at the
    // wait point.
    for (const int attempt : *h.retry_attempts) {
      const double backoff = retry_.backoff_s(attempt, disk_.request_overhead_s);
      ctx.charge_io_time(backoff);
      stats_.time_s += backoff;
      ++stats_.retries;
      ++ctx.stats().retries;
    }
    h.retry_attempts->clear();
  }
  if (error != nullptr) {
    std::rethrow_exception(error);
  }
}

void LocalArrayFile::fill(sim::SpmdContext& ctx, double value) {
  std::vector<double> buf(static_cast<std::size_t>(rows_ * cols_), value);
  write_full(ctx, std::span<const double>(buf));
}

}  // namespace oocc::io
