#include "oocc/io/laf.hpp"

#include <cstring>

namespace oocc::io {

namespace {
constexpr std::uint64_t kElem = sizeof(double);
}

std::string_view storage_order_name(StorageOrder order) noexcept {
  switch (order) {
    case StorageOrder::kColumnMajor:
      return "column-major";
    case StorageOrder::kRowMajor:
      return "row-major";
  }
  return "?";
}

LocalArrayFile::LocalArrayFile(const std::filesystem::path& path,
                               std::int64_t rows, std::int64_t cols,
                               StorageOrder order, DiskModel disk)
    : rows_(rows), cols_(cols), order_(order), disk_(disk), backend_(path) {
  OOCC_REQUIRE(rows >= 1 && cols >= 1,
               "local array must be non-empty, got " << rows << "x" << cols);
  const std::uint64_t bytes =
      static_cast<std::uint64_t>(rows) * static_cast<std::uint64_t>(cols) *
      kElem;
  if (backend_.size() < bytes) {
    backend_.truncate(bytes);
  }
}

void LocalArrayFile::validate_section(const Section& s) const {
  OOCC_CHECK(s.row0 >= 0 && s.row1 <= rows_ && s.col0 >= 0 && s.col1 <= cols_,
             ErrorCode::kOutOfRange,
             "section [" << s.row0 << "," << s.row1 << ")x[" << s.col0 << ","
                         << s.col1 << ") outside local array " << rows_ << "x"
                         << cols_);
  OOCC_CHECK(!s.empty(), ErrorCode::kInvalidArgument,
             "empty section [" << s.row0 << "," << s.row1 << ")x[" << s.col0
                               << "," << s.col1 << ")");
}

std::uint64_t section_extent_count(const Section& s, std::int64_t rows,
                                   std::int64_t cols,
                                   StorageOrder order) noexcept {
  if (s.empty()) {
    return 0;
  }
  if (order == StorageOrder::kColumnMajor) {
    return s.row0 == 0 && s.row1 == rows ? 1
                                         : static_cast<std::uint64_t>(s.cols());
  }
  return s.col0 == 0 && s.col1 == cols ? 1
                                       : static_cast<std::uint64_t>(s.rows());
}

std::vector<Extent> LocalArrayFile::section_extents(const Section& s) const {
  validate_section(s);
  std::vector<Extent> extents;
  if (order_ == StorageOrder::kColumnMajor) {
    if (s.row0 == 0 && s.row1 == rows_) {
      // Full columns are adjacent in the file: one coalesced extent.
      extents.push_back(Extent{element_offset(0, s.col0) * kElem,
                               static_cast<std::uint64_t>(s.elements()) *
                                   kElem});
    } else {
      extents.reserve(static_cast<std::size_t>(s.cols()));
      for (std::int64_t c = s.col0; c < s.col1; ++c) {
        extents.push_back(Extent{element_offset(s.row0, c) * kElem,
                                 static_cast<std::uint64_t>(s.rows()) * kElem});
      }
    }
  } else {
    if (s.col0 == 0 && s.col1 == cols_) {
      extents.push_back(Extent{element_offset(s.row0, 0) * kElem,
                               static_cast<std::uint64_t>(s.elements()) *
                                   kElem});
    } else {
      extents.reserve(static_cast<std::size_t>(s.rows()));
      for (std::int64_t r = s.row0; r < s.row1; ++r) {
        extents.push_back(Extent{element_offset(r, s.col0) * kElem,
                                 static_cast<std::uint64_t>(s.cols()) * kElem});
      }
    }
  }
  return extents;
}

std::uint64_t LocalArrayFile::section_request_count(const Section& s) const {
  validate_section(s);
  return section_extent_count(s, rows_, cols_, order_);
}

void LocalArrayFile::charge(sim::SpmdContext& ctx,
                            const std::vector<Extent>& extents, bool is_read) {
  double time = 0.0;
  std::uint64_t bytes = 0;
  for (const Extent& e : extents) {
    time += disk_.request_time(static_cast<double>(e.length_bytes),
                               ctx.nprocs());
    bytes += e.length_bytes;
  }
  ctx.charge_io_time(time);
  stats_.time_s += time;
  auto& ps = ctx.stats();
  ps.io_requests += extents.size();
  if (is_read) {
    stats_.read_requests += extents.size();
    stats_.bytes_read += bytes;
    ps.io_bytes_read += bytes;
  } else {
    stats_.write_requests += extents.size();
    stats_.bytes_written += bytes;
    ps.io_bytes_written += bytes;
  }
}

void LocalArrayFile::read_section(sim::SpmdContext& ctx, const Section& s,
                                  std::span<double> out) {
  validate_section(s);
  OOCC_REQUIRE(out.size() == static_cast<std::size_t>(s.elements()),
               "output buffer holds " << out.size() << " elements; section "
                                      << "needs " << s.elements());
  const std::vector<Extent> extents = section_extents(s);
  charge(ctx, extents, /*is_read=*/true);

  const std::int64_t srows = s.rows();
  if (order_ == StorageOrder::kColumnMajor) {
    if (extents.size() == 1 && s.row0 == 0 && s.row1 == rows_) {
      backend_.read_at(extents[0].offset_bytes, out.data(),
                       extents[0].length_bytes);
      return;
    }
    // One extent per column; each maps to a contiguous run of `out`.
    std::size_t off = 0;
    for (const Extent& e : extents) {
      backend_.read_at(e.offset_bytes, out.data() + off, e.length_bytes);
      off += static_cast<std::size_t>(srows);
    }
    return;
  }

  // Row-major storage: each extent is one row segment (or the whole
  // section when it spans all columns); scatter into column-major `out`.
  if (extents.size() == 1 && s.col0 == 0 && s.col1 == cols_) {
    scratch_.resize(static_cast<std::size_t>(s.elements()));
    backend_.read_at(extents[0].offset_bytes, scratch_.data(),
                     extents[0].length_bytes);
    for (std::int64_t r = 0; r < s.rows(); ++r) {
      for (std::int64_t c = 0; c < s.cols(); ++c) {
        out[static_cast<std::size_t>(c * srows + r)] =
            scratch_[static_cast<std::size_t>(r * s.cols() + c)];
      }
    }
    return;
  }
  scratch_.resize(static_cast<std::size_t>(s.cols()));
  std::int64_t r = s.row0;
  for (const Extent& e : extents) {
    backend_.read_at(e.offset_bytes, scratch_.data(), e.length_bytes);
    for (std::int64_t c = 0; c < s.cols(); ++c) {
      out[static_cast<std::size_t>(c * srows + (r - s.row0))] =
          scratch_[static_cast<std::size_t>(c)];
    }
    ++r;
  }
}

void LocalArrayFile::write_section(sim::SpmdContext& ctx, const Section& s,
                                   std::span<const double> in) {
  validate_section(s);
  OOCC_REQUIRE(in.size() == static_cast<std::size_t>(s.elements()),
               "input buffer holds " << in.size() << " elements; section "
                                     << "needs " << s.elements());
  const std::vector<Extent> extents = section_extents(s);
  charge(ctx, extents, /*is_read=*/false);

  const std::int64_t srows = s.rows();
  if (order_ == StorageOrder::kColumnMajor) {
    if (extents.size() == 1 && s.row0 == 0 && s.row1 == rows_) {
      backend_.write_at(extents[0].offset_bytes, in.data(),
                        extents[0].length_bytes);
      return;
    }
    std::size_t off = 0;
    for (const Extent& e : extents) {
      backend_.write_at(e.offset_bytes, in.data() + off, e.length_bytes);
      off += static_cast<std::size_t>(srows);
    }
    return;
  }

  if (extents.size() == 1 && s.col0 == 0 && s.col1 == cols_) {
    scratch_.resize(static_cast<std::size_t>(s.elements()));
    for (std::int64_t r = 0; r < s.rows(); ++r) {
      for (std::int64_t c = 0; c < s.cols(); ++c) {
        scratch_[static_cast<std::size_t>(r * s.cols() + c)] =
            in[static_cast<std::size_t>(c * srows + r)];
      }
    }
    backend_.write_at(extents[0].offset_bytes, scratch_.data(),
                      extents[0].length_bytes);
    return;
  }
  scratch_.resize(static_cast<std::size_t>(s.cols()));
  std::int64_t r = s.row0;
  for (const Extent& e : extents) {
    for (std::int64_t c = 0; c < s.cols(); ++c) {
      scratch_[static_cast<std::size_t>(c)] =
          in[static_cast<std::size_t>(c * srows + (r - s.row0))];
    }
    backend_.write_at(e.offset_bytes, scratch_.data(), e.length_bytes);
    ++r;
  }
}

void LocalArrayFile::fill(sim::SpmdContext& ctx, double value) {
  std::vector<double> buf(static_cast<std::size_t>(rows_ * cols_), value);
  write_full(ctx, std::span<const double>(buf));
}

}  // namespace oocc::io
