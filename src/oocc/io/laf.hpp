// Local Array File (LAF) — §2.3 of the paper.
//
// Each processor's out-of-core local array (OCLA) lives in its own file on
// that processor's logical disk. The node program explicitly reads
// rectangular *sections* of the local array into in-core buffers (ICLAs)
// and writes them back. A section that is contiguous in the file's storage
// order costs one I/O request; a strided section costs one request per
// contiguous extent — this is exactly the distinction that makes the
// paper's row-slab / column-slab reorganization matter, and why the
// compiler also reorganizes on-disk storage (reorganize.hpp).
//
// Element type is double throughout the library.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "oocc/io/async_engine.hpp"
#include "oocc/io/disk_model.hpp"
#include "oocc/io/file_backend.hpp"
#include "oocc/io/io_stats.hpp"
#include "oocc/sim/machine.hpp"
#include "oocc/util/faults.hpp"

namespace oocc::io {

/// On-disk layout of the 2-D local array.
enum class StorageOrder {
  kColumnMajor,  ///< Fortran order: column slabs are contiguous
  kRowMajor      ///< transposed order: row slabs are contiguous
};

std::string_view storage_order_name(StorageOrder order) noexcept;

/// Half-open rectangular section [row0,row1) x [col0,col1) of a local array.
struct Section {
  std::int64_t row0 = 0;
  std::int64_t row1 = 0;
  std::int64_t col0 = 0;
  std::int64_t col1 = 0;

  std::int64_t rows() const noexcept { return row1 - row0; }
  std::int64_t cols() const noexcept { return col1 - col0; }
  std::int64_t elements() const noexcept { return rows() * cols(); }
  bool empty() const noexcept { return rows() <= 0 || cols() <= 0; }

  friend bool operator==(const Section&, const Section&) = default;

  /// True when the two rectangles share at least one element.
  bool overlaps(const Section& o) const noexcept {
    return row0 < o.row1 && o.row0 < row1 && col0 < o.col1 && o.col0 < col1;
  }
  /// True when `o` lies entirely inside this section.
  bool contains(const Section& o) const noexcept {
    return row0 <= o.row0 && o.row1 <= row1 && col0 <= o.col0 &&
           o.col1 <= col1;
  }
};

/// One contiguous byte range of the file backing part of a section.
struct Extent {
  std::uint64_t offset_bytes = 0;
  std::uint64_t length_bytes = 0;
};

/// One in-flight asynchronous section transfer (read_section_async /
/// write_section_async). The simulated cost was already charged at submit;
/// settle() waits for the physical transfer, applies any deferred
/// transient-retry backoff, and rethrows the job's error (injected faults
/// surface here with today's error codes).
struct AsyncHandle {
  AsyncEngine::Ticket ticket;
  /// Failed transient attempts recorded by the worker (attempt indices);
  /// their backoff is charged to the simulated clock at settle time.
  std::shared_ptr<std::vector<int>> retry_attempts;
};

/// Contiguous extents a section of a rows x cols local array costs in the
/// given storage order, from shape alone (no file needed). This is the
/// single statement of the coalescing rule: full-height column runs (resp.
/// full-width row runs) merge into one extent, partial runs cost one
/// extent per column (resp. row). LocalArrayFile's request counters and
/// the compiler's step pricer both use it.
std::uint64_t section_extent_count(const Section& s, std::int64_t rows,
                                   std::int64_t cols,
                                   StorageOrder order) noexcept;

/// A 2-D out-of-core local array stored in a host file with simulated disk
/// costs. All data operations take the owning processor's SpmdContext so
/// simulated time and the paper's request/byte metrics are charged to the
/// right processor.
class LocalArrayFile {
 public:
  /// Creates (or opens) the LAF at `path` for a `rows` x `cols` local
  /// array in `order`, pre-extended so every section read is defined.
  /// Opening runs the crash-recovery scan: a committed write-back journal
  /// left by an interrupted journaled write (`path` + ".wal") is replayed,
  /// an uncommitted one discarded, so no section is ever half-applied.
  LocalArrayFile(const std::filesystem::path& path, std::int64_t rows,
                 std::int64_t cols, StorageOrder order, DiskModel disk);

  std::int64_t rows() const noexcept { return rows_; }
  std::int64_t cols() const noexcept { return cols_; }
  StorageOrder order() const noexcept { return order_; }
  const DiskModel& disk() const noexcept { return disk_; }
  const IoStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = IoStats{}; }

  /// Slab-cache accounting hooks (runtime::SlabBufferPool): a hit avoids
  /// traffic on this file but should stay visible next to its counters.
  void note_cache_hit(std::uint64_t bytes) noexcept {
    ++stats_.cache_hits;
    stats_.bytes_cache_hit += bytes;
  }
  void note_cache_miss() noexcept { ++stats_.cache_misses; }
  void note_cache_eviction() noexcept { ++stats_.cache_evictions; }
  void note_cache_writeback() noexcept { ++stats_.cache_writebacks; }
  FileBackend& backend() noexcept { return backend_; }

  /// Crash-consistent write-back: when enabled, every write_section first
  /// shadow-writes the section (payload in file-extent order + checksum)
  /// to the `.wal` sidecar, commits it with a marker record, applies it in
  /// place, then clears the journal. An injected crash (faults::Site::
  /// kCrash) between any two steps leaves the array recoverable: the open
  /// scan replays committed records and discards uncommitted ones. Off by
  /// default — journaling adds one disk request per write, which would
  /// break the priced == measured invariants of fault-free runs.
  void set_journaling(bool on);
  bool journaling() const noexcept { return journal_ != nullptr; }

  /// Bounded-retry policy masking transient faults on this file's reads
  /// and writes; backoff is charged to the simulated clock (the DiskModel
  /// request overhead is the default base).
  const faults::RetryPolicy& retry_policy() const noexcept { return retry_; }
  void set_retry_policy(const faults::RetryPolicy& policy) noexcept {
    retry_ = policy;
  }

  /// Whole-array section.
  Section full() const noexcept { return Section{0, rows_, 0, cols_}; }

  /// The contiguous extents a section occupies in this storage order
  /// (already coalesced). Exposed so the compiler's cost estimator and the
  /// tests can reason about request counts without doing I/O.
  std::vector<Extent> section_extents(const Section& s) const;

  /// Number of I/O requests a section transfer costs (== extent count).
  std::uint64_t section_request_count(const Section& s) const;

  /// Reads the section into `out`, which receives the data in
  /// *column-major section order*: out[(c-col0)*section_rows + (r-row0)].
  /// Charges one request per extent to the simulated clock.
  void read_section(sim::SpmdContext& ctx, const Section& s,
                    std::span<double> out);

  /// Writes the section from `in` (same column-major section order).
  void write_section(sim::SpmdContext& ctx, const Section& s,
                     std::span<const double> in);

  /// Asynchronous counterparts: the simulated clock/counters are charged
  /// here (on the compute thread, identically to the synchronous calls in
  /// fault-free runs), while the physical transfer runs on `engine`, FIFO
  /// per file — every submission against one LocalArrayFile runs in
  /// program order (a read never overtakes the write-back it must observe,
  /// and the journal protocol stays serialized), while transfers against
  /// *different* files overlap freely, like independent devices. `out`
  /// must stay valid until settle(); the write takes its payload by value.
  AsyncHandle read_section_async(sim::SpmdContext& ctx, AsyncEngine& engine,
                                 const Section& s, std::span<double> out);
  AsyncHandle write_section_async(sim::SpmdContext& ctx, AsyncEngine& engine,
                                  const Section& s, std::vector<double> in);

  /// Waits out an async transfer, charges deferred retry backoff, and
  /// rethrows the worker's exception (fault, crash, I/O error), if any.
  void settle(sim::SpmdContext& ctx, AsyncHandle& h);

  /// Fills the whole array with `value` (one streaming request).
  void fill(sim::SpmdContext& ctx, double value);

  /// Convenience: read/write the whole local array.
  void read_full(sim::SpmdContext& ctx, std::span<double> out) {
    read_section(ctx, full(), out);
  }
  void write_full(sim::SpmdContext& ctx, std::span<const double> in) {
    write_section(ctx, full(), in);
  }

 private:
  void validate_section(const Section& s) const;
  void charge(sim::SpmdContext& ctx, const std::vector<Extent>& extents,
              bool is_read);
  /// Backend read/write wrapped in the transient-fault retry loop.
  void bread(sim::SpmdContext& ctx, std::uint64_t offset, void* data,
             std::size_t bytes);
  void bwrite(sim::SpmdContext& ctx, std::uint64_t offset, const void* data,
              std::size_t bytes);
  /// Serializes `in` (column-major section order) into the byte layout the
  /// file will hold: the concatenation of the section's extents.
  void extent_payload(const Section& s, std::span<const double> in,
                      std::vector<double>& out) const;
  /// Shadow-write + commit of one section's payload to the journal.
  void journal_write(sim::SpmdContext& ctx, const Section& s,
                     const std::vector<double>& payload);
  /// Open-time scan: replay a committed journal record, discard the rest.
  void recover_from_journal();
  std::filesystem::path journal_path() const;
  std::uint64_t element_offset(std::int64_t r, std::int64_t c) const noexcept {
    if (order_ == StorageOrder::kColumnMajor) {
      return static_cast<std::uint64_t>(c * rows_ + r);
    }
    return static_cast<std::uint64_t>(r * cols_ + c);
  }

  std::int64_t rows_;
  std::int64_t cols_;
  StorageOrder order_;
  DiskModel disk_;
  FileBackend backend_;
  IoStats stats_;
  std::vector<double> scratch_;
  faults::RetryPolicy retry_ = faults::RetryPolicy::from_env();
  std::unique_ptr<FileBackend> journal_;  ///< non-null while journaling
  std::vector<double> journal_scratch_;
};

}  // namespace oocc::io
