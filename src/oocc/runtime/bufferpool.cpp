#include "oocc/runtime/bufferpool.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <limits>

#include "oocc/util/log.hpp"

namespace oocc::runtime {

namespace {

/// Eviction rank: larger = better victim. -1 (no known reuse) evicts first.
double eviction_rank(double reuse_hint) noexcept {
  return reuse_hint < 0 ? std::numeric_limits<double>::infinity() : reuse_hint;
}

}  // namespace

SlabBufferPool::SlabBufferPool(MemoryBudget& budget, std::string name,
                               bool mirror_laf_stats)
    : budget_(budget),
      name_(std::move(name)),
      mirror_laf_stats_(mirror_laf_stats) {}

SlabBufferPool::~SlabBufferPool() {
  // Wait out every in-flight engine job before touching buffers: a worker
  // may still be filling an entry's IclaBuffer. Errors cannot be reported
  // from a destructor; drain_writes() at barriers / flush is where they
  // surface in normal operation.
  for (const auto& [array, list] : entries_) {
    for (const auto& e : list) {
      if (e->pending != nullptr && e->pending->ticket.valid()) {
        try {
          e->pending->ticket.wait();
        } catch (...) {
        }
      }
    }
  }
  for (PendingWrite& w : pending_writes_) {
    if (w.handle.ticket.valid()) {
      try {
        w.handle.ticket.wait();
      } catch (...) {
      }
    }
  }

  bool pin_leak = false;
  for (const auto& [array, list] : entries_) {
    for (const auto& e : list) {
      if (e->pins > 0) {
        pin_leak = true;
        OOCC_WARN("bufferpool", "pool '" << name_ << "' destroyed with '"
                                         << array << "' slab still pinned "
                                         << e->pins << " time(s)");
      }
      if (e->dirty) {
        OOCC_WARN("bufferpool", "pool '" << name_
                                         << "' destroyed with dirty '"
                                         << array
                                         << "' slab (missing flush?)");
      }
    }
  }
  // Fault unwinding destroys pools with slabs still pinned by design (the
  // injected error propagates out of StepExecutor mid-step); aborting then
  // would turn every fault-injection test into a crash, so the strict
  // teardown check only applies on clean (non-exceptional) destruction.
  if (pin_leak && strict_teardown() && std::uncaught_exceptions() == 0) {
    // Sanitizer builds treat a pin leak like ASan treats a memory leak: a
    // bug to fix, not a condition to tolerate. Destructors cannot throw,
    // so abort with the diagnostic already on stderr.
    std::fprintf(stderr,
                 "bufferpool: pin leak — pool '%s' destroyed with pinned "
                 "entries\n",
                 name_.c_str());
    std::abort();
  }
}

SlabBufferPool::Entry* SlabBufferPool::find_exact(
    const std::string& array, const io::Section& s) noexcept {
  const auto it = entries_.find(array);
  if (it == entries_.end()) {
    return nullptr;
  }
  for (const auto& e : it->second) {
    if (e->sec == s) {
      return e.get();
    }
  }
  return nullptr;
}

const SlabBufferPool::Entry* SlabBufferPool::find_exact(
    const std::string& array, const io::Section& s) const noexcept {
  return const_cast<SlabBufferPool*>(this)->find_exact(array, s);
}

std::vector<SlabBufferPool::Entry*> SlabBufferPool::covering_entries(
    const std::string& array, const io::Section& s) {
  const auto it = entries_.find(array);
  if (it == entries_.end()) {
    return {};
  }
  // Single entry containing the whole request (any geometry).
  for (const auto& e : it->second) {
    if (e->sec.contains(s)) {
      return {e.get()};
    }
  }
  // Multi-entry assembly only for full-height column sections covered by
  // full-height entries (the shape every column-slab sweep uses); column c
  // is served by the first entry spanning it.
  std::vector<Entry*> sources;
  for (std::int64_t c = s.col0; c < s.col1;) {
    Entry* found = nullptr;
    for (const auto& e : it->second) {
      if (e->sec.row0 == s.row0 && e->sec.row1 == s.row1 &&
          e->sec.col0 <= c && c < e->sec.col1) {
        found = e.get();
        break;
      }
    }
    if (found == nullptr) {
      return {};
    }
    sources.push_back(found);
    c = found->sec.col1;
  }
  return sources;
}

bool SlabBufferPool::resident(const std::string& array,
                              const io::Section& s) const {
  return !const_cast<SlabBufferPool*>(this)->covering_entries(array, s)
              .empty();
}

void SlabBufferPool::read_into(sim::SpmdContext& ctx, Entry& e) {
  // Model asynchronous issue exactly like the classic double buffer: the
  // host read runs now and charges its service time, then the clock rewinds
  // to the issue point and the completion timestamp is queued behind any
  // earlier outstanding request (one disk per processor).
  const double t_issue = ctx.clock().now();
  if (engine_ != nullptr) {
    // Real-async path: the simulated charge is identical (read_section_async
    // prices on the compute thread exactly like the synchronous read); only
    // the physical transfer moves to an engine worker. settle_entry() waits
    // it out before anyone touches the buffer.
    e.buf->reset_section(e.sec);
    e.pending = std::make_unique<io::AsyncHandle>(
        e.laf->read_section_async(ctx, *engine_, e.sec, e.buf->data()));
  } else {
    e.buf->load(ctx, *e.laf, e.sec);
  }
  const double service = ctx.clock().now() - t_issue;
  const double start = std::max(t_issue, disk_free_time_s_);
  e.ready_time_s = start + service;
  disk_free_time_s_ = e.ready_time_s;
  ctx.clock().rewind_to(t_issue);
}

void SlabBufferPool::settle_entry(sim::SpmdContext& ctx, Entry& e) {
  if (e.pending == nullptr) {
    return;
  }
  // Move the handle out first so a throwing settle cannot be retried on a
  // consumed ticket.
  const std::unique_ptr<io::AsyncHandle> pending = std::move(e.pending);
  e.laf->settle(ctx, *pending);
}

void SlabBufferPool::write_back(sim::SpmdContext& ctx, Entry& e) {
  // Eviction may pick a never-consumed prefetch: its fill must complete
  // before the buffer is read or dropped.
  settle_entry(ctx, e);
  if (!e.dirty) {
    return;
  }
  if (engine_ != nullptr) {
    // The job owns a snapshot of the slab, so the entry can be evicted
    // immediately; errors surface at the next drain_writes().
    const std::span<const double> data = e.buf->data();
    pending_writes_.push_back(PendingWrite{
        e.laf,
        e.laf->write_section_async(ctx, *engine_, e.sec,
                                   std::vector<double>(data.begin(),
                                                       data.end()))});
  } else {
    e.buf->store_as(ctx, *e.laf, e.sec);
  }
  e.dirty = false;
  ++stats_.writebacks;
  if (mirror_laf_stats_) {
    e.laf->note_cache_writeback();
  }
}

bool SlabBufferPool::evict_one(sim::SpmdContext& ctx) {
  const std::string* victim_array = nullptr;
  Entry* victim = nullptr;
  for (auto& [array, list] : entries_) {
    for (const auto& e : list) {
      if (e->pins > 0) {
        continue;
      }
      if (victim == nullptr ||
          eviction_rank(e->reuse_hint) > eviction_rank(victim->reuse_hint) ||
          (eviction_rank(e->reuse_hint) == eviction_rank(victim->reuse_hint) &&
           e->last_use < victim->last_use)) {
        victim_array = &array;
        victim = e.get();
      }
    }
  }
  if (victim == nullptr) {
    return false;
  }
  write_back(ctx, *victim);
  ++stats_.evictions;
  if (mirror_laf_stats_) {
    victim->laf->note_cache_eviction();
  }
  erase_entry(*victim_array, victim);
  return true;
}

void SlabBufferPool::erase_entry(const std::string& array,
                                 const Entry* e) noexcept {
  const auto it = entries_.find(array);
  if (it == entries_.end()) {
    return;
  }
  EntryList& list = it->second;
  for (auto lit = list.begin(); lit != list.end(); ++lit) {
    if (lit->get() == e) {
      resident_elements_ -= e->sec.elements();
      list.erase(lit);  // ~IclaBuffer releases the budget
      break;
    }
  }
  if (list.empty()) {
    entries_.erase(it);
  }
}

void SlabBufferPool::ensure_available(sim::SpmdContext& ctx,
                                      std::int64_t elements) {
  while (budget_.remaining() < elements) {
    if (!evict_one(ctx)) {
      OOCC_THROW(ErrorCode::kResourceExhausted,
                 "slab pool '" << name_ << "' cannot free " << elements
                               << " elements: " << budget_.remaining()
                               << " free, " << pinned_count()
                               << " entries pinned");
    }
  }
}

SlabBufferPool::Entry& SlabBufferPool::insert_entry(sim::SpmdContext& ctx,
                                                    io::LocalArrayFile& laf,
                                                    const std::string& array,
                                                    const io::Section& s,
                                                    double reuse_hint) {
  ensure_available(ctx, s.elements());
  auto e = std::make_unique<Entry>();
  e->sec = s;
  e->laf = &laf;
  e->reuse_hint = reuse_hint;
  e->last_use = ++tick_;
  e->buf = std::make_unique<IclaBuffer>(budget_, s.elements(),
                                        name_ + ":" + array);
  e->buf->reset_section(s);
  Entry& ref = *e;
  entries_[array].push_back(std::move(e));
  resident_elements_ += s.elements();
  return ref;
}

IclaBuffer& SlabBufferPool::acquire_read(sim::SpmdContext& ctx,
                                         io::LocalArrayFile& laf,
                                         const std::string& array,
                                         const io::Section& s,
                                         double reuse_hint) {
  OOCC_REQUIRE(!s.empty(), "cannot acquire empty section of '" << array
                                                               << "'");
  if (Entry* e = find_exact(array, s)) {
    e->last_use = ++tick_;
    e->reuse_hint = reuse_hint;
    settle_entry(ctx, *e);
    ++e->pins;
    ctx.clock().wait_until(e->ready_time_s);
    if (e->prefetched) {
      // The double-buffer path: the bytes did move, just earlier.
      e->prefetched = false;
    } else {
      ++stats_.hits;
      stats_.elements_hit += static_cast<std::uint64_t>(s.elements());
      if (mirror_laf_stats_) {
        laf.note_cache_hit(static_cast<std::uint64_t>(s.elements()) *
                           sizeof(double));
      }
    }
    return *e->buf;
  }

  std::vector<Entry*> sources = covering_entries(array, s);
  if (!sources.empty()) {
    // Assemble the requested section from cached data: pin the sources so
    // allocation cannot evict them, copy column by column, unpin.
    double ready = ctx.clock().now();
    for (Entry* src : sources) {
      settle_entry(ctx, *src);
    }
    for (Entry* src : sources) {
      ++src->pins;
      ready = std::max(ready, src->ready_time_s);
    }
    Entry& e = insert_entry(ctx, laf, array, s, reuse_hint);
    for (std::int64_t c = s.col0; c < s.col1; ++c) {
      const Entry* src = nullptr;
      for (const Entry* cand : sources) {
        if (cand->sec.col0 <= c && c < cand->sec.col1) {
          src = cand;
          break;
        }
      }
      OOCC_ASSERT(src != nullptr, "coverage lost during assembly");
      const double* from =
          &src->buf->at(s.row0 - src->sec.row0, c - src->sec.col0);
      double* to = &e.buf->at(0, c - s.col0);
      std::memcpy(to, from, static_cast<std::size_t>(s.rows()) *
                                sizeof(double));
    }
    for (Entry* src : sources) {
      --src->pins;
    }
    e.ready_time_s = ready;
    e.pins = 1;
    ctx.clock().wait_until(ready);
    ++stats_.hits;
    stats_.elements_hit += static_cast<std::uint64_t>(s.elements());
    if (mirror_laf_stats_) {
      laf.note_cache_hit(static_cast<std::uint64_t>(s.elements()) *
                         sizeof(double));
    }
    return *e.buf;
  }

  // Miss: read from disk into a fresh entry. Dirty entries overlapping the
  // request hold data the disk does not have yet — write them back first
  // or the read returns stale bytes (the partially-evicted cross-geometry
  // case).
  flush_overlapping_dirty(ctx, array, s);
  ++stats_.misses;
  if (mirror_laf_stats_) {
    laf.note_cache_miss();
  }
  Entry& e = insert_entry(ctx, laf, array, s, reuse_hint);
  read_into(ctx, e);
  settle_entry(ctx, e);
  e.pins = 1;
  ctx.clock().wait_until(e.ready_time_s);
  return *e.buf;
}

void SlabBufferPool::flush_overlapping_dirty(sim::SpmdContext& ctx,
                                             const std::string& array,
                                             const io::Section& s) {
  const auto it = entries_.find(array);
  if (it == entries_.end()) {
    return;
  }
  for (const auto& e : it->second) {
    if (e->dirty && e->sec.overlaps(s)) {
      write_back(ctx, *e);
    }
  }
}

IclaBuffer& SlabBufferPool::acquire_write(sim::SpmdContext& ctx,
                                          io::LocalArrayFile& laf,
                                          const std::string& array,
                                          const io::Section& s,
                                          double reuse_hint) {
  OOCC_REQUIRE(!s.empty(), "cannot stage empty section of '" << array << "'");
  // Every other cached range overlapping s goes stale once this buffer is
  // computed into: write dirty ones back, then drop them.
  const auto it = entries_.find(array);
  if (it != entries_.end()) {
    std::vector<Entry*> stale;
    for (const auto& e : it->second) {
      if (!(e->sec == s) && e->sec.overlaps(s)) {
        OOCC_CHECK(e->pins == 0, ErrorCode::kRuntimeError,
                   "staging '" << array
                               << "' would invalidate a pinned cached slab");
        stale.push_back(e.get());
      }
    }
    for (Entry* e : stale) {
      write_back(ctx, *e);
      erase_entry(array, e);
    }
  }
  Entry* e = find_exact(array, s);
  if (e == nullptr) {
    e = &insert_entry(ctx, laf, array, s, reuse_hint);
  } else {
    settle_entry(ctx, *e);
    e->last_use = ++tick_;
  }
  ++e->pins;
  return *e->buf;
}

void SlabBufferPool::mark_dirty(const std::string& array,
                                const io::Section& s, double reuse_hint) {
  Entry* e = find_exact(array, s);
  OOCC_CHECK(e != nullptr, ErrorCode::kRuntimeError,
             "mark_dirty of '" << array
                               << "' before any compute staged the slab");
  e->dirty = true;
  e->reuse_hint = reuse_hint;
  e->last_use = ++tick_;
}

void SlabBufferPool::unpin(const std::string& array, const io::Section& s) {
  Entry* e = find_exact(array, s);
  OOCC_CHECK(e != nullptr && e->pins > 0, ErrorCode::kRuntimeError,
             "unpin of '" << array << "' slab that is not pinned");
  --e->pins;
}

bool SlabBufferPool::read_ahead(sim::SpmdContext& ctx,
                                io::LocalArrayFile& laf,
                                const std::string& array,
                                const io::Section& s, double reuse_hint) {
  if (resident(array, s)) {
    return true;
  }
  if (budget_.remaining() < s.elements()) {
    return false;  // read-ahead never evicts
  }
  flush_overlapping_dirty(ctx, array, s);
  Entry& e = insert_entry(ctx, laf, array, s, reuse_hint);
  e.prefetched = true;
  read_into(ctx, e);
  return true;
}

void SlabBufferPool::flush(sim::SpmdContext& ctx) {
  // Deterministic order: arrays by name (map order), sections ascending.
  for (auto& [array, list] : entries_) {
    std::vector<Entry*> dirty;
    for (const auto& e : list) {
      if (e->dirty) {
        dirty.push_back(e.get());
      }
    }
    std::sort(dirty.begin(), dirty.end(), [](const Entry* a, const Entry* b) {
      if (a->sec.col0 != b->sec.col0) {
        return a->sec.col0 < b->sec.col0;
      }
      return a->sec.row0 < b->sec.row0;
    });
    for (Entry* e : dirty) {
      write_back(ctx, *e);
    }
  }
  drain_writes(ctx);
}

void SlabBufferPool::drain_writes(sim::SpmdContext& ctx) {
  std::exception_ptr first;
  for (PendingWrite& w : pending_writes_) {
    try {
      w.laf->settle(ctx, w.handle);
    } catch (...) {
      if (first == nullptr) {
        first = std::current_exception();
      }
    }
  }
  pending_writes_.clear();
  if (first != nullptr) {
    std::rethrow_exception(first);
  }
}

void SlabBufferPool::invalidate(sim::SpmdContext& ctx,
                                const std::string& array) {
  const auto it = entries_.find(array);
  if (it == entries_.end()) {
    return;
  }
  for (const auto& e : it->second) {
    OOCC_CHECK(e->pins == 0, ErrorCode::kRuntimeError,
               "invalidate of '" << array << "' with pinned slabs");
    write_back(ctx, *e);
    resident_elements_ -= e->sec.elements();
  }
  entries_.erase(it);
  drain_writes(ctx);
}

void SlabBufferPool::drop_clean(const std::string& array) noexcept {
  const auto it = entries_.find(array);
  if (it == entries_.end()) {
    return;
  }
  EntryList& list = it->second;
  for (auto lit = list.begin(); lit != list.end();) {
    if (!(*lit)->dirty && (*lit)->pins == 0 && (*lit)->pending == nullptr) {
      resident_elements_ -= (*lit)->sec.elements();
      lit = list.erase(lit);
    } else {
      ++lit;
    }
  }
  if (list.empty()) {
    entries_.erase(it);
  }
}

void SlabBufferPool::drop_clean(const std::string& array,
                                const io::Section& s) noexcept {
  Entry* e = find_exact(array, s);
  if (e != nullptr && !e->dirty && e->pins == 0 && e->pending == nullptr) {
    erase_entry(array, e);
  }
}

std::int64_t SlabBufferPool::pinned_count() const noexcept {
  std::int64_t n = 0;
  for (const auto& [array, list] : entries_) {
    for (const auto& e : list) {
      if (e->pins > 0) {
        ++n;
      }
    }
  }
  return n;
}

void IoScheduler::pump(sim::SpmdContext& ctx, SlabBufferPool& pool,
                       int lookahead) {
  while (!queue_.empty() &&
         pool.resident(queue_.front().array, queue_.front().section)) {
    queue_.pop_front();
  }
  int in_flight = 0;
  for (const Request& r : queue_) {
    if (in_flight >= lookahead) {
      break;
    }
    if (pool.resident(r.array, r.section)) {
      ++in_flight;
      continue;
    }
    if (!pool.read_ahead(ctx, *r.laf, r.array, r.section, r.reuse_hint)) {
      break;  // no spare room; try again after the next demand read
    }
    ++in_flight;
  }
}

}  // namespace oocc::runtime
