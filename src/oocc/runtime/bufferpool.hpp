// Reuse-aware slab buffer pool and I/O scheduler.
//
// The paper's whole argument (§2.3, §4.2.1) is that out-of-core performance
// is decided by how few LAF bytes each sweep moves. The step-program IR
// knows the full future reference string of a compiled sweep, but without a
// cache the runtime forgets a slab the moment the loop iteration ends —
// chains like `c = a*b; e = c + a*b` re-read data that was in memory
// microseconds earlier. SlabBufferPool is the per-processor substrate that
// closes that gap:
//
//  * entries are keyed by (array name, slab section) and charged against
//    the node's MemoryBudget, exactly like the ICLAs they replace;
//  * consumers pin entries for the duration of a slab iteration (pin/unpin
//    refcounts; eviction never touches a pinned entry);
//  * eviction is LRU refined by the compiler's forward-reuse hints
//    (Step::reuse_distance): the entry whose next use is farthest away —
//    or unknown — goes first, ties broken least-recently-used;
//  * dirty entries (staged outputs) write back through their Local Array
//    File on eviction and at flush(), so deferring the write never changes
//    which bytes reach disk;
//  * reads are modelled with the same conservative async-I/O trick the old
//    double-buffer used: the host performs the read immediately, the
//    simulated clock is rewound to the issue point, and the entry carries
//    its completion timestamp; a demand acquire waits for it, a read-ahead
//    does not. One outstanding request per pool (one disk per processor).
//
// IoScheduler is the read-ahead front: the executor enqueues the upcoming
// ReadSlab schedule of a prefetching slab loop and pumps the queue after
// each demand read, which generalizes the old two-buffer prefetch to any
// lookahead the budget can hold.
//
// Lookup is containment-aware: a request hits when one cached entry holds
// exactly or a superset of the section, and full-height column sections
// (the shape every column-slab sweep uses) also hit when their columns are
// covered by several cached entries — the pool assembles the requested
// section in memory. This is what lets two statements with different slab
// widths share data.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "oocc/io/laf.hpp"
#include "oocc/runtime/icla.hpp"
#include "oocc/sim/machine.hpp"

namespace oocc::runtime {

/// Aggregate counters for one pool. Per-array counts are also mirrored into
/// the owning LocalArrayFile's IoStats (cache_hits etc.).
struct SlabCacheStats {
  std::uint64_t hits = 0;         ///< demand reads served without disk I/O
  std::uint64_t misses = 0;       ///< demand reads that went to the LAF
  std::uint64_t evictions = 0;
  std::uint64_t writebacks = 0;   ///< dirty slabs written back to their LAF
  std::uint64_t elements_hit = 0; ///< LAF elements the hits avoided moving

  void merge(const SlabCacheStats& o) noexcept {
    hits += o.hits;
    misses += o.misses;
    evictions += o.evictions;
    writebacks += o.writebacks;
    elements_hit += o.elements_hit;
  }
};

/// Per-processor cache of slab-sized buffers over the Local Array Files.
/// Not thread-safe; one pool per simulated processor, like every other
/// runtime object.
///
/// NOTE: compiler/cost.cpp's CacheSim is the shape-only mirror of this
/// class — any change to the lookup rule (exact / containment / column
/// coverage), the eviction rank, the miss-path dirty-overlap flush, or the
/// flush order must be made in both, or the asserted priced-equals-
/// measured invariant (tests/fusion_test.cpp) breaks.
class SlabBufferPool {
 public:
  /// Entries are reserved against `budget` as they are created and released
  /// as they are evicted; `name` prefixes buffer names for diagnostics.
  /// `mirror_laf_stats` controls whether hits/misses/evictions/write-backs
  /// are also recorded on each LocalArrayFile's IoStats — the executor's
  /// shared pool does, while PrefetchingSlabReader's private window does
  /// not (a --no-cache run must not report phantom cache activity).
  SlabBufferPool(MemoryBudget& budget, std::string name,
                 bool mirror_laf_stats = true);
  ~SlabBufferPool();

  /// True in OOCC_SANITIZE builds, where destroying a pool that still
  /// holds pinned entries (a pin leak: some sweep forgot its unpin) is a
  /// hard error — the destructor aborts instead of warning. Regular
  /// builds only log, so a leaky teardown path stays observable without
  /// taking the process down in production runs.
  static constexpr bool strict_teardown() noexcept {
#if defined(OOCC_SANITIZE)
    return true;
#else
    return false;
#endif
  }

  SlabBufferPool(const SlabBufferPool&) = delete;
  SlabBufferPool& operator=(const SlabBufferPool&) = delete;

  /// Demand-reads section `s` of `array` and returns the buffer holding
  /// exactly it, pinned. Served from the cache when resident (or
  /// assemblable); otherwise read from `laf`, evicting unpinned entries as
  /// needed. `reuse_hint` is the compiler's forward reuse distance (-1 =
  /// no known reuse). Blocks (in simulated time) until the data is ready.
  IclaBuffer& acquire_read(sim::SpmdContext& ctx, io::LocalArrayFile& laf,
                           const std::string& array, const io::Section& s,
                           double reuse_hint);

  /// Returns a pinned buffer targeted at `s` for staging output data; no
  /// disk read happens. An existing entry for exactly `s` keeps its data
  /// (the in-place-update and fused-statement cases); any *other* cached
  /// range overlapping `s` is written back (if dirty) and dropped, since it
  /// would go stale the moment this buffer is computed into.
  IclaBuffer& acquire_write(sim::SpmdContext& ctx, io::LocalArrayFile& laf,
                            const std::string& array, const io::Section& s,
                            double reuse_hint);

  /// Marks the entry holding exactly `s` dirty: its contents supersede the
  /// LAF and will be written back on eviction or flush. Updates the entry's
  /// reuse hint (the write step knows the distance to the next read).
  void mark_dirty(const std::string& array, const io::Section& s,
                  double reuse_hint);

  /// Drops one pin from the entry holding exactly `s`.
  void unpin(const std::string& array, const io::Section& s);

  /// True when a demand read of `s` would be served from memory.
  bool resident(const std::string& array, const io::Section& s) const;

  /// Fetches `s` into the cache without pinning, modelled asynchronously
  /// (the caller's clock is not advanced by the service time). Returns true
  /// when the section is resident or was issued; false when it would not
  /// fit without eviction — read-ahead never evicts.
  bool read_ahead(sim::SpmdContext& ctx, io::LocalArrayFile& laf,
                  const std::string& array, const io::Section& s,
                  double reuse_hint);

  /// Writes back every dirty entry (deterministically: arrays in name
  /// order, sections in ascending (col0, row0) order). Called at the end of
  /// a sweep/sequence so the LAFs are the source of truth again.
  void flush(sim::SpmdContext& ctx);

  /// Writes back and drops every entry of `array`. Used before a plan
  /// writes the array through a path that bypasses the pool (the GAXPY
  /// OwnedColumnWriter), after which cached slabs would be stale.
  void invalidate(sim::SpmdContext& ctx, const std::string& array);

  /// Drops the clean, unpinned entries of `array` without I/O; dirty or
  /// pinned entries are left alone. Lets PrefetchingSlabReader::reset()
  /// stay noexcept (its entries are never dirty).
  void drop_clean(const std::string& array) noexcept;

  /// Drops the entry holding exactly `s` if it is resident, clean and
  /// unpinned (the reader wrapper's trailing-buffer discard).
  void drop_clean(const std::string& array, const io::Section& s) noexcept;

  /// Attaches the machine's real async I/O engine. With an engine, the
  /// physical disk transfer of every pool read and dirty write-back runs
  /// on a worker thread: read_ahead becomes a true submit-ahead, a demand
  /// acquire of a prefetched slab costs only a wait, and write-backs drain
  /// at barriers / flush. The *simulated* accounting (the clock-rewind
  /// model above, and every lookup/eviction/flush decision) is unchanged —
  /// fault-free runs are bit-identical with and without an engine, which
  /// is what keeps CacheSim and the priced == measured invariants intact.
  void set_async_engine(io::AsyncEngine* engine) noexcept {
    engine_ = engine;
  }

  /// Settles every in-flight asynchronous write-back, charging deferred
  /// retry backoff and rethrowing the first worker error. Called at
  /// barriers and after flush()/invalidate() so errors cannot outlive the
  /// region that caused them. No-op without an engine.
  void drain_writes(sim::SpmdContext& ctx);

  /// Evicts unpinned entries until `elements` fit in the budget; throws
  /// Error(kResourceExhausted) when pinned entries make that impossible.
  /// Used before reserving non-pool buffers (reduction temporaries) from
  /// the shared budget.
  void ensure_available(sim::SpmdContext& ctx, std::int64_t elements);

  /// Number of entries with a nonzero pin count (leak detection: a sweep
  /// must end with zero).
  std::int64_t pinned_count() const noexcept;

  std::int64_t resident_elements() const noexcept { return resident_elements_; }
  const SlabCacheStats& stats() const noexcept { return stats_; }
  MemoryBudget& budget() noexcept { return budget_; }

 private:
  struct Entry {
    io::Section sec;
    std::unique_ptr<IclaBuffer> buf;
    io::LocalArrayFile* laf = nullptr;
    int pins = 0;
    bool dirty = false;
    /// First demand acquire of a read-ahead entry is the double-buffer
    /// path, not a reuse hit; cleared after that acquire.
    bool prefetched = false;
    double reuse_hint = -1.0;
    std::uint64_t last_use = 0;
    double ready_time_s = 0.0;
    /// In-flight asynchronous read filling `buf` (engine mode only);
    /// settled before the buffer is touched, evicted or dropped.
    std::unique_ptr<io::AsyncHandle> pending;
  };
  using EntryList = std::vector<std::unique_ptr<Entry>>;

  Entry* find_exact(const std::string& array, const io::Section& s) noexcept;
  const Entry* find_exact(const std::string& array,
                          const io::Section& s) const noexcept;

  /// Entries of `array` that together cover every column of the full-height
  /// column section `s` (or one entry containing `s`). Empty on failure.
  std::vector<Entry*> covering_entries(const std::string& array,
                                       const io::Section& s);

  /// Allocates a fresh entry for `s`, evicting unpinned entries for room.
  Entry& insert_entry(sim::SpmdContext& ctx, io::LocalArrayFile& laf,
                      const std::string& array, const io::Section& s,
                      double reuse_hint);

  /// Performs the (modelled-async) disk read of `e.sec` into `e.buf`.
  void read_into(sim::SpmdContext& ctx, Entry& e);

  /// Writes back (without dropping) every dirty entry of `array` that
  /// overlaps `s`, so a following disk read of `s` sees current data.
  void flush_overlapping_dirty(sim::SpmdContext& ctx,
                               const std::string& array,
                               const io::Section& s);

  void write_back(sim::SpmdContext& ctx, Entry& e);
  bool evict_one(sim::SpmdContext& ctx);
  void erase_entry(const std::string& array, const Entry* e) noexcept;
  /// Waits out `e.pending` (if any), applying its deferred accounting.
  void settle_entry(sim::SpmdContext& ctx, Entry& e);

  struct PendingWrite {
    io::LocalArrayFile* laf = nullptr;
    io::AsyncHandle handle;
  };

  MemoryBudget& budget_;
  std::string name_;
  bool mirror_laf_stats_;
  std::map<std::string, EntryList> entries_;
  SlabCacheStats stats_;
  std::int64_t resident_elements_ = 0;
  double disk_free_time_s_ = 0.0;
  std::uint64_t tick_ = 0;
  io::AsyncEngine* engine_ = nullptr;
  std::vector<PendingWrite> pending_writes_;
};

/// Read-ahead queue over a SlabBufferPool: the executor enqueues a slab
/// loop's upcoming ReadSlab schedule and pumps after each demand read, so
/// the next reads are issued (asynchronously, in schedule order) while the
/// current slab computes. Lookahead is bounded by the caller and by what
/// fits the budget without eviction.
class IoScheduler {
 public:
  struct Request {
    io::LocalArrayFile* laf = nullptr;
    std::string array;
    io::Section section;
    double reuse_hint = -1.0;
  };

  void clear() { queue_.clear(); }
  void enqueue(Request r) { queue_.push_back(std::move(r)); }
  std::size_t pending() const noexcept { return queue_.size(); }

  /// Pops requests already satisfied (resident) from the front, then issues
  /// read-aheads until `lookahead` upcoming requests are resident or in
  /// flight, stopping early when the pool has no spare room.
  void pump(sim::SpmdContext& ctx, SlabBufferPool& pool, int lookahead);

 private:
  std::deque<Request> queue_;
};

}  // namespace oocc::runtime
