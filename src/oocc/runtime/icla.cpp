#include "oocc/runtime/icla.hpp"

#include <algorithm>

#include "oocc/util/faults.hpp"
#include "oocc/util/log.hpp"

namespace oocc::runtime {

MemoryBudget::MemoryBudget(std::int64_t total_elements)
    : total_(total_elements) {
  OOCC_REQUIRE(total_elements >= 1,
               "memory budget must be positive, got " << total_elements);
}

void MemoryBudget::reserve(std::int64_t elements, const std::string& what) {
  OOCC_REQUIRE(elements >= 0, "cannot reserve " << elements << " elements");
  // Budget fault site: models a transient allocation failure on the node.
  // Deliberately not retried here — the region aborts with a structured
  // error and recovery happens at the checkpoint/restart level.
  faults::FaultInjector::instance().check(faults::Site::kBudget,
                                          "reserve " + what);
  OOCC_CHECK(used_ + elements <= total_, ErrorCode::kResourceExhausted,
             "allocating " << elements << " elements for " << what
                           << " exceeds the node memory budget (" << used_
                           << " of " << total_ << " already in use)");
  used_ += elements;
}

void MemoryBudget::release(std::int64_t elements) noexcept {
  if (elements > used_) {
    // Silently accepting this would drive used_ negative and mask
    // double-release bugs; clamp and make the event observable. Must stay
    // noexcept: IclaBuffer's destructor releases.
    ++over_releases_;
    OOCC_WARN("runtime", "MemoryBudget over-release: releasing "
                             << elements << " elements with only " << used_
                             << " reserved (double release?)");
    used_ = 0;
    return;
  }
  used_ -= elements;
}

IclaBuffer::IclaBuffer(MemoryBudget& budget, std::int64_t capacity_elements,
                       std::string name)
    : budget_(budget), capacity_(capacity_elements), name_(std::move(name)) {
  budget_.reserve(capacity_, name_);
  data_.resize(static_cast<std::size_t>(capacity_));
}

IclaBuffer::~IclaBuffer() { budget_.release(capacity_); }

void IclaBuffer::load(sim::SpmdContext& ctx, io::LocalArrayFile& laf,
                      const io::Section& s) {
  OOCC_CHECK(s.elements() <= capacity_, ErrorCode::kResourceExhausted,
             "section of " << s.elements() << " elements does not fit ICLA '"
                           << name_ << "' of capacity " << capacity_);
  section_ = s;
  laf.read_section(ctx, s,
                   std::span<double>(data_.data(),
                                     static_cast<std::size_t>(s.elements())));
}

void IclaBuffer::store(sim::SpmdContext& ctx, io::LocalArrayFile& laf) const {
  store_as(ctx, laf, section_);
}

void IclaBuffer::store_as(sim::SpmdContext& ctx, io::LocalArrayFile& laf,
                          const io::Section& s) const {
  OOCC_REQUIRE(s.elements() == section_.elements(),
               "buffer '" << name_ << "' holds " << section_.elements()
                          << " elements; cannot store section of "
                          << s.elements());
  laf.write_section(
      ctx, s,
      std::span<const double>(data_.data(),
                              static_cast<std::size_t>(s.elements())));
}

void IclaBuffer::reset_section(const io::Section& s) {
  OOCC_CHECK(s.elements() <= capacity_, ErrorCode::kResourceExhausted,
             "section of " << s.elements() << " elements does not fit ICLA '"
                           << name_ << "' of capacity " << capacity_);
  section_ = s;
}

void IclaBuffer::fill(double value) noexcept {
  std::fill(data_.begin(),
            data_.begin() + static_cast<std::ptrdiff_t>(section_.elements()),
            value);
}

}  // namespace oocc::runtime
