// In-Core Local Array (ICLA) buffers and the per-processor memory budget.
//
// The ICLA is the slab-sized in-memory window over an OCLA (§3.3). Its
// size is fixed at compile time from the amount of node memory the
// compiler was given; the MemoryBudget type enforces that the slabs of all
// competing arrays fit (§4.2.1's slab-size selection is about dividing
// this budget between arrays).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "oocc/io/laf.hpp"
#include "oocc/util/error.hpp"

namespace oocc::runtime {

/// Tracks in-core memory (in array elements) available to ICLAs on one
/// simulated processor. Over-subscription throws kResourceExhausted — the
/// out-of-core compiler must never generate a plan whose working set
/// exceeds node memory.
class MemoryBudget {
 public:
  explicit MemoryBudget(std::int64_t total_elements);

  std::int64_t total() const noexcept { return total_; }
  std::int64_t used() const noexcept { return used_; }
  std::int64_t remaining() const noexcept { return total_ - used_; }

  /// Reserves `elements`; `what` names the buffer for diagnostics.
  void reserve(std::int64_t elements, const std::string& what);

  /// Releases a previous reservation. Releasing more than is currently
  /// reserved is a caller bug (usually a double-release); the budget
  /// clamps at zero, logs a warning, and counts the event so tests can
  /// assert it never happens in healthy code paths.
  void release(std::int64_t elements) noexcept;

  /// Number of release() calls that exceeded the outstanding reservation.
  std::int64_t over_releases() const noexcept { return over_releases_; }

 private:
  std::int64_t total_;
  std::int64_t used_ = 0;
  std::int64_t over_releases_ = 0;
};

/// A slab buffer holding one section of a local array in column-major
/// section order. RAII-registered against a MemoryBudget.
class IclaBuffer {
 public:
  IclaBuffer(MemoryBudget& budget, std::int64_t capacity_elements,
             std::string name);
  ~IclaBuffer();

  IclaBuffer(const IclaBuffer&) = delete;
  IclaBuffer& operator=(const IclaBuffer&) = delete;

  const std::string& name() const noexcept { return name_; }
  std::int64_t capacity() const noexcept { return capacity_; }

  /// Section currently held (empty until the first load).
  const io::Section& section() const noexcept { return section_; }

  /// Loads `s` from `laf` into this buffer. The section must fit.
  void load(sim::SpmdContext& ctx, io::LocalArrayFile& laf,
            const io::Section& s);

  /// Writes the held section back to `laf`.
  void store(sim::SpmdContext& ctx, io::LocalArrayFile& laf) const;

  /// Stores an explicit section (the buffer must hold exactly it).
  void store_as(sim::SpmdContext& ctx, io::LocalArrayFile& laf,
                const io::Section& s) const;

  /// Raw element access for compute kernels: element (r, c) *relative to
  /// the held section*, column-major.
  double& at(std::int64_t r, std::int64_t c) noexcept {
    return data_[static_cast<std::size_t>(c * section_.rows() + r)];
  }
  const double& at(std::int64_t r, std::int64_t c) const noexcept {
    return data_[static_cast<std::size_t>(c * section_.rows() + r)];
  }

  std::span<double> data() noexcept {
    return {data_.data(), static_cast<std::size_t>(section_.elements())};
  }
  std::span<const double> data() const noexcept {
    return {data_.data(), static_cast<std::size_t>(section_.elements())};
  }

  /// Re-targets the buffer at a section without I/O (for building output
  /// slabs in memory before a store).
  void reset_section(const io::Section& s);

  /// Fills the current section with a value.
  void fill(double value) noexcept;

 private:
  MemoryBudget& budget_;
  std::int64_t capacity_;
  std::string name_;
  io::Section section_{};
  std::vector<double> data_;
};

}  // namespace oocc::runtime
