#include "oocc/runtime/ocla.hpp"

namespace oocc::runtime {

OclaDescriptor::OclaDescriptor(std::string name, int proc_id,
                               const hpf::ArrayDistribution& distribution,
                               io::StorageOrder storage_order)
    : array_name(std::move(name)),
      proc(proc_id),
      dist(distribution),
      local_rows(distribution.local_rows(proc_id)),
      local_cols(distribution.local_cols(proc_id)),
      order(storage_order) {}

std::string OclaDescriptor::laf_filename() const {
  return array_name + "_p" + std::to_string(proc) + ".laf";
}

}  // namespace oocc::runtime
