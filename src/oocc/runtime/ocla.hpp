// Out-of-Core Local Array (OCLA) descriptor — §2.1/§2.3 of the paper.
//
// The OCLA is a processor's share of a distributed global array, too large
// for memory, living in that processor's Local Array File. The descriptor
// carries everything needed to map between global indices, local indices
// and file sections; the data itself is accessed through
// runtime::OutOfCoreArray.
#pragma once

#include <cstdint>
#include <string>

#include "oocc/hpf/distribution.hpp"
#include "oocc/io/laf.hpp"

namespace oocc::runtime {

struct OclaDescriptor {
  std::string array_name;
  int proc = 0;
  hpf::ArrayDistribution dist;
  std::int64_t local_rows = 0;
  std::int64_t local_cols = 0;
  io::StorageOrder order = io::StorageOrder::kColumnMajor;

  OclaDescriptor() = default;
  OclaDescriptor(std::string name, int proc_id,
                 const hpf::ArrayDistribution& distribution,
                 io::StorageOrder storage_order);

  std::int64_t local_elements() const noexcept {
    return local_rows * local_cols;
  }

  /// Global row/col index of a local position on this processor.
  std::int64_t global_row(std::int64_t lr) const {
    return dist.local_to_global_row(proc, lr);
  }
  std::int64_t global_col(std::int64_t lc) const {
    return dist.local_to_global_col(proc, lc);
  }

  /// Name of the LAF file for this processor ("a_p3.laf").
  std::string laf_filename() const;
};

}  // namespace oocc::runtime
