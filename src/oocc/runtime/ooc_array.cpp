#include "oocc/runtime/ooc_array.hpp"

namespace oocc::runtime {

namespace {
/// Tag for gather_global traffic (user-tag space).
constexpr int kTagGatherGlobal = 9001;
}  // namespace

OutOfCoreArray::OutOfCoreArray(sim::SpmdContext& ctx,
                               const std::filesystem::path& dir,
                               std::string name,
                               const hpf::ArrayDistribution& dist,
                               io::StorageOrder order,
                               const io::DiskModel& disk)
    : ocla_(std::move(name), ctx.rank(), dist, order),
      laf_(dir / ocla_.laf_filename(), std::max<std::int64_t>(1, ocla_.local_rows),
           std::max<std::int64_t>(1, ocla_.local_cols), order, disk) {
  OOCC_CHECK(ocla_.local_rows >= 1 && ocla_.local_cols >= 1,
             ErrorCode::kInvalidArgument,
             "processor " << ctx.rank() << " owns no elements of '"
                          << ocla_.array_name << "' (" << dist.to_string()
                          << "); the runtime requires every processor to own "
                             "a non-empty local array");
}

void OutOfCoreArray::initialize(
    sim::SpmdContext& ctx,
    const std::function<double(std::int64_t, std::int64_t)>& f,
    std::int64_t budget_elements) {
  // Iterate in the orientation that is contiguous in this LAF's storage
  // order so initialization costs one request per slab.
  const SlabOrientation orient =
      ocla_.order == io::StorageOrder::kColumnMajor
          ? SlabOrientation::kColumnSlabs
          : SlabOrientation::kRowSlabs;
  SlabIterator slabs(ocla_.local_rows, ocla_.local_cols, orient,
                     budget_elements);
  std::vector<double> buf(
      static_cast<std::size_t>(slabs.slab_elements()));
  for (std::int64_t s = 0; s < slabs.count(); ++s) {
    const io::Section sec = slabs.section(s);
    const std::int64_t srows = sec.rows();
    for (std::int64_t lc = sec.col0; lc < sec.col1; ++lc) {
      const std::int64_t gc = ocla_.global_col(lc);
      for (std::int64_t lr = sec.row0; lr < sec.row1; ++lr) {
        buf[static_cast<std::size_t>((lc - sec.col0) * srows +
                                     (lr - sec.row0))] =
            f(ocla_.global_row(lr), gc);
      }
    }
    laf_.write_section(ctx, sec,
                       std::span<const double>(
                           buf.data(),
                           static_cast<std::size_t>(sec.elements())));
  }
}

std::vector<double> OutOfCoreArray::gather_global(
    sim::SpmdContext& ctx, std::int64_t budget_elements) {
  const int p = ctx.nprocs();
  const int rank = ctx.rank();
  const hpf::ArrayDistribution& d = ocla_.dist;

  // Every rank streams its local slabs; rank 0 places them into the global
  // buffer. All ranks pass the same budget (SPMD), so rank 0 can recompute
  // every sender's slab sections deterministically.
  auto slab_iter_for = [&](int proc) {
    return SlabIterator(d.local_rows(proc), d.local_cols(proc),
                        SlabOrientation::kColumnSlabs, budget_elements);
  };

  if (rank != 0) {
    SlabIterator slabs = slab_iter_for(rank);
    std::vector<double> buf(
        static_cast<std::size_t>(slabs.slab_elements()));
    for (std::int64_t s = 0; s < slabs.count(); ++s) {
      const io::Section sec = slabs.section(s);
      std::span<double> view(buf.data(),
                             static_cast<std::size_t>(sec.elements()));
      laf_.read_section(ctx, sec, view);
      ctx.send<double>(0, kTagGatherGlobal,
                       std::span<const double>(view.data(), view.size()));
    }
    return {};
  }

  std::vector<double> global(static_cast<std::size_t>(d.global_rows() *
                                                      d.global_cols()));
  std::vector<double> buf;
  for (int proc = 0; proc < p; ++proc) {
    SlabIterator slabs = slab_iter_for(proc);
    for (std::int64_t s = 0; s < slabs.count(); ++s) {
      const io::Section sec = slabs.section(s);
      std::span<const double> view;
      if (proc == 0) {
        buf.resize(static_cast<std::size_t>(sec.elements()));
        std::span<double> mut(buf.data(), buf.size());
        laf_.read_section(ctx, sec, mut);
        view = std::span<const double>(buf.data(), buf.size());
      } else {
        buf = ctx.recv<double>(proc, kTagGatherGlobal);
        OOCC_CHECK(buf.size() == static_cast<std::size_t>(sec.elements()),
                   ErrorCode::kRuntimeError,
                   "gather_global: slab from proc "
                       << proc << " has " << buf.size() << " elements, "
                       << "expected " << sec.elements());
        view = std::span<const double>(buf.data(), buf.size());
      }
      const std::int64_t srows = sec.rows();
      for (std::int64_t lc = sec.col0; lc < sec.col1; ++lc) {
        const std::int64_t gc = d.local_to_global_col(proc, lc);
        for (std::int64_t lr = sec.row0; lr < sec.row1; ++lr) {
          const std::int64_t gr = d.local_to_global_row(proc, lr);
          global[static_cast<std::size_t>(gc * d.global_rows() + gr)] =
              view[static_cast<std::size_t>((lc - sec.col0) * srows +
                                            (lr - sec.row0))];
        }
      }
    }
  }
  return global;
}

}  // namespace oocc::runtime
