// Out-of-core distributed array — the user-facing runtime object.
//
// One OutOfCoreArray instance exists per simulated processor (constructed
// inside the SPMD region); together they represent one global array
// distributed per an hpf::ArrayDistribution with each local piece in a
// Local Array File (§2.3, Figure 2). The class offers budgeted slab-wise
// initialization and gathering so even "setup" honours the out-of-core
// discipline: no processor ever materializes more than its memory budget.
#pragma once

#include <filesystem>
#include <functional>
#include <vector>

#include "oocc/hpf/distribution.hpp"
#include "oocc/io/disk_model.hpp"
#include "oocc/io/laf.hpp"
#include "oocc/runtime/icla.hpp"
#include "oocc/runtime/ocla.hpp"
#include "oocc/runtime/slab_iter.hpp"
#include "oocc/sim/machine.hpp"

namespace oocc::runtime {

class OutOfCoreArray {
 public:
  /// Opens/creates this processor's LAF under `dir`. `order` is the
  /// on-disk storage order (the compiler chooses it to make the selected
  /// slab orientation contiguous).
  OutOfCoreArray(sim::SpmdContext& ctx, const std::filesystem::path& dir,
                 std::string name, const hpf::ArrayDistribution& dist,
                 io::StorageOrder order, const io::DiskModel& disk);

  const OclaDescriptor& ocla() const noexcept { return ocla_; }
  const hpf::ArrayDistribution& dist() const noexcept { return ocla_.dist; }
  const std::string& name() const noexcept { return ocla_.array_name; }
  std::int64_t local_rows() const noexcept { return ocla_.local_rows; }
  std::int64_t local_cols() const noexcept { return ocla_.local_cols; }
  std::int64_t local_elements() const noexcept {
    return ocla_.local_elements();
  }
  io::LocalArrayFile& laf() noexcept { return laf_; }
  const io::LocalArrayFile& laf() const noexcept { return laf_; }

  io::Section local_full() const noexcept {
    return io::Section{0, ocla_.local_rows, 0, ocla_.local_cols};
  }

  /// Fills the local piece from a global-index generator f(grow, gcol),
  /// processed in slabs of at most `budget_elements` (each processor only
  /// writes data it owns; no communication).
  void initialize(sim::SpmdContext& ctx,
                  const std::function<double(std::int64_t, std::int64_t)>& f,
                  std::int64_t budget_elements);

  /// Gathers the full global array to rank 0 (slab-wise, for verification
  /// and examples; other ranks return an empty vector). Column-major
  /// global layout: out[gc * global_rows + gr].
  std::vector<double> gather_global(sim::SpmdContext& ctx,
                                    std::int64_t budget_elements);

 private:
  OclaDescriptor ocla_;
  io::LocalArrayFile laf_;
};

}  // namespace oocc::runtime
