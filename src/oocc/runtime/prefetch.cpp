#include "oocc/runtime/prefetch.hpp"

namespace oocc::runtime {

PrefetchingSlabReader::PrefetchingSlabReader(sim::SpmdContext& ctx,
                                             io::LocalArrayFile& laf,
                                             const SlabIterator& slabs,
                                             MemoryBudget& budget,
                                             const std::string& name,
                                             bool enable_prefetch)
    : laf_(laf),
      slabs_(slabs),
      prefetch_(enable_prefetch),
      // The private window is not a reuse cache: a --no-cache run must not
      // report cache activity on the LAFs it streams.
      pool_(budget, name, /*mirror_laf_stats=*/false) {
  (void)ctx;
}

PrefetchingSlabReader::~PrefetchingSlabReader() {
  if (holding_) {
    pool_.unpin(kStream, held_);
    holding_ = false;
  }
}

void PrefetchingSlabReader::reset() noexcept {
  if (holding_) {
    // unpin() throws only on a pool/reader state mismatch, which cannot
    // arise here: held_ is exactly the section we pinned.
    pool_.unpin(kStream, held_);
    holding_ = false;
  }
  pool_.drop_clean(kStream);
  next_expected_ = 0;
}

const IclaBuffer& PrefetchingSlabReader::acquire(sim::SpmdContext& ctx,
                                                 std::int64_t i) {
  OOCC_REQUIRE(i == next_expected_,
               "slabs must be acquired in order; expected "
                   << next_expected_ << ", got " << i);
  OOCC_CHECK(i < slabs_.count(), ErrorCode::kOutOfRange,
             "slab " << i << " outside [0, " << slabs_.count() << ")");
  ++next_expected_;

  if (holding_) {
    pool_.unpin(kStream, held_);
    holding_ = false;
  }
  if (i > 0) {
    // The classic window: the buffer behind the sweep is recycled.
    pool_.drop_clean(kStream, slabs_.section(i - 1));
  }
  // No reuse hint: within a sweep each slab is visited once, and re-sweeps
  // go through reset() which re-reads by design.
  const IclaBuffer& buf =
      pool_.acquire_read(ctx, laf_, kStream, slabs_.section(i), -1.0);
  held_ = slabs_.section(i);
  holding_ = true;

  if (prefetch_ && i + 1 < slabs_.count()) {
    pool_.read_ahead(ctx, laf_, kStream, slabs_.section(i + 1), -1.0);
  }
  return buf;
}

}  // namespace oocc::runtime
