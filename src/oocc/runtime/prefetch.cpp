#include "oocc/runtime/prefetch.hpp"

namespace oocc::runtime {

PrefetchingSlabReader::PrefetchingSlabReader(sim::SpmdContext& ctx,
                                             io::LocalArrayFile& laf,
                                             const SlabIterator& slabs,
                                             MemoryBudget& budget,
                                             const std::string& name,
                                             bool enable_prefetch)
    : laf_(laf), slabs_(slabs), prefetch_(enable_prefetch) {
  (void)ctx;
  bufs_[0].buffer = std::make_unique<IclaBuffer>(
      budget, slabs_.slab_elements(), name + "[buf0]");
  if (prefetch_) {
    bufs_[1].buffer = std::make_unique<IclaBuffer>(
        budget, slabs_.slab_elements(), name + "[buf1]");
  }
}

void PrefetchingSlabReader::issue(sim::SpmdContext& ctx, std::int64_t i,
                                  BufferState& state) {
  const double t_issue = ctx.clock().now();
  state.buffer->load(ctx, laf_, slabs_.section(i));
  const double service = ctx.clock().now() - t_issue;
  const double start = std::max(t_issue, disk_free_time_s_);
  state.ready_time_s = start + service;
  disk_free_time_s_ = state.ready_time_s;
  state.slab = i;
  if (prefetch_) {
    // Model asynchrony: the CPU resumes at the issue point; the data
    // becomes usable at ready_time_s.
    ctx.clock().rewind_to(t_issue);
  } else {
    // Synchronous read: the CPU also waits for any queued earlier request.
    ctx.clock().wait_until(state.ready_time_s);
  }
}

void PrefetchingSlabReader::reset() noexcept {
  next_expected_ = 0;
  for (BufferState& state : bufs_) {
    state.slab = -1;
  }
}

const IclaBuffer& PrefetchingSlabReader::acquire(sim::SpmdContext& ctx,
                                                 std::int64_t i) {
  OOCC_REQUIRE(i == next_expected_,
               "slabs must be acquired in order; expected "
                   << next_expected_ << ", got " << i);
  OOCC_CHECK(i < slabs_.count(), ErrorCode::kOutOfRange,
             "slab " << i << " outside [0, " << slabs_.count() << ")");
  ++next_expected_;

  BufferState& current =
      bufs_[prefetch_ ? static_cast<std::size_t>(i % 2) : 0];
  if (current.slab != i) {
    issue(ctx, i, current);
  }
  // Block until the (possibly prefetched) slab is complete.
  ctx.clock().wait_until(current.ready_time_s);

  if (prefetch_ && i + 1 < slabs_.count()) {
    BufferState& next = bufs_[static_cast<std::size_t>((i + 1) % 2)];
    if (next.slab != i + 1) {
      issue(ctx, i + 1, next);
    }
  }
  return *current.buffer;
}

}  // namespace oocc::runtime
