// Double-buffered slab prefetching (§3.3 mentions prefetching/caching
// strategies as a compiler concern; PASSION provided asynchronous slab
// reads).
//
// The simulator's I/O calls are synchronous, so asynchrony is *modelled*:
// when a prefetch is issued at simulated time t, the read is performed
// immediately (host-side) and its service time D is charged, then the
// clock is rewound to t and the slab's ready-time is recorded as
// max(t, disk_free) + D. A consumer that later acquires the slab waits
// until the ready-time. One outstanding request is allowed (one disk per
// processor), matching double-buffering on real hardware.
#pragma once

#include <array>
#include <cstdint>
#include <memory>

#include "oocc/io/laf.hpp"
#include "oocc/runtime/icla.hpp"
#include "oocc/runtime/slab_iter.hpp"
#include "oocc/sim/machine.hpp"

namespace oocc::runtime {

/// Reads the slabs of one LAF sequentially with optional double-buffered
/// prefetch. With prefetching disabled it degrades to plain synchronous
/// slab reads (the ablation baseline).
class PrefetchingSlabReader {
 public:
  /// Two ICLA buffers are reserved against `budget`, each of the iterator's
  /// full slab size (with prefetching off, only one is reserved).
  PrefetchingSlabReader(sim::SpmdContext& ctx, io::LocalArrayFile& laf,
                        const SlabIterator& slabs, MemoryBudget& budget,
                        const std::string& name, bool enable_prefetch);

  std::int64_t slab_count() const noexcept { return slabs_.count(); }

  /// Returns the buffer holding slab `i`, issuing the prefetch of slab
  /// i+1. Slabs must be acquired in ascending order (0, 1, 2, ...).
  const IclaBuffer& acquire(sim::SpmdContext& ctx, std::int64_t i);

  /// Restarts the sweep: the next acquire must be slab 0 again, and any
  /// held slabs are invalidated so they are re-read from disk (re-sweeps
  /// must pay their I/O — the cost model counts every pass).
  void reset() noexcept;

 private:
  struct BufferState {
    std::unique_ptr<IclaBuffer> buffer;
    std::int64_t slab = -1;      ///< slab index held, -1 = empty
    double ready_time_s = 0.0;   ///< simulated completion time
  };

  /// Performs the read of slab `i` into `state`, modelling async issue.
  void issue(sim::SpmdContext& ctx, std::int64_t i, BufferState& state);

  io::LocalArrayFile& laf_;
  SlabIterator slabs_;
  bool prefetch_;
  double disk_free_time_s_ = 0.0;
  std::int64_t next_expected_ = 0;
  std::array<BufferState, 2> bufs_;
};

}  // namespace oocc::runtime
