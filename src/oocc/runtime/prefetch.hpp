// Double-buffered slab prefetching (§3.3 mentions prefetching/caching
// strategies as a compiler concern; PASSION provided asynchronous slab
// reads).
//
// Since the slab buffer pool landed, this reader is a thin window over a
// private SlabBufferPool: acquire(i) demand-reads slab i (pinned), issues
// the read-ahead of slab i+1 when prefetching, and drops slab i-1 so the
// working set never exceeds the classic one/two buffers. Unlike the old
// fixed buffer pair this allocates one pool entry per slab; the host-side
// cost is dominated by the file read that fills it, and recycling buffers
// through the pool would break its exact-fit budget accounting, so the
// simpler shape wins. The asynchronous
// overlap model (immediate host read, clock rewound to the issue point,
// completion timestamp honoured at acquire) lives in the pool; this class
// only adds the sequential-sweep discipline. It remains the executor's
// slab-stream primitive when the cache is disabled (OOCC_NO_CACHE) — in
// that configuration every sweep re-reads, exactly like the pre-pool
// runtime.
#pragma once

#include <cstdint>

#include "oocc/io/laf.hpp"
#include "oocc/runtime/bufferpool.hpp"
#include "oocc/runtime/icla.hpp"
#include "oocc/runtime/slab_iter.hpp"
#include "oocc/sim/machine.hpp"

namespace oocc::runtime {

/// Reads the slabs of one LAF sequentially with optional double-buffered
/// prefetch. With prefetching disabled it degrades to plain synchronous
/// slab reads (the ablation baseline).
class PrefetchingSlabReader {
 public:
  /// Buffers come from a private pool charged against `budget`: at most one
  /// slab (no prefetch) or two slabs (prefetch) are ever resident.
  PrefetchingSlabReader(sim::SpmdContext& ctx, io::LocalArrayFile& laf,
                        const SlabIterator& slabs, MemoryBudget& budget,
                        const std::string& name, bool enable_prefetch);
  ~PrefetchingSlabReader();

  std::int64_t slab_count() const noexcept { return slabs_.count(); }

  /// Returns the buffer holding slab `i`, issuing the prefetch of slab
  /// i+1. Slabs must be acquired in ascending order (0, 1, 2, ...).
  const IclaBuffer& acquire(sim::SpmdContext& ctx, std::int64_t i);

  /// Restarts the sweep: the next acquire must be slab 0 again, and any
  /// held slabs are invalidated so they are re-read from disk (re-sweeps
  /// must pay their I/O — the cost model counts every pass).
  void reset() noexcept;

 private:
  /// Single stream: every pool entry belongs to this pseudo-array.
  static constexpr const char* kStream = "slab";

  io::LocalArrayFile& laf_;
  SlabIterator slabs_;
  bool prefetch_;
  SlabBufferPool pool_;
  std::int64_t next_expected_ = 0;
  bool holding_ = false;
  io::Section held_{};
};

}  // namespace oocc::runtime
