#include "oocc/runtime/redistribute.hpp"

#include <algorithm>
#include <cstring>
#include <vector>

#include "oocc/runtime/slab_iter.hpp"
#include "oocc/sim/collectives.hpp"
#include "oocc/util/env.hpp"
#include "oocc/util/error.hpp"

namespace oocc::runtime {

namespace {

/// Coalesces sorted disjoint local blocks into maximal rectangles and
/// writes each with one section write. Shared by the block receive path
/// and the per-element adapter (whose blocks are 1x1). All working memory
/// lives in `scratch`.
void write_local_blocks(sim::SpmdContext& ctx, OutOfCoreArray& dst,
                        RouteScratch& scratch,
                        std::span<const double> payload) {
  std::vector<LocalBlock>& blocks = scratch.blocks;
  if (blocks.empty()) {
    return;
  }
  std::sort(blocks.begin(), blocks.end(),
            [](const LocalBlock& a, const LocalBlock& b) {
              return a.lc0 != b.lc0 ? a.lc0 < b.lc0 : a.lr0 < b.lr0;
            });

  // Pass 1: vertical groups — maximal stacks of blocks with one column
  // range and adjacent row ranges; group g spans blocks
  // [group_first[g], group_first[g + 1]). Each group covers the full
  // rectangle [group rows) x [block cols).
  std::vector<std::size_t>& group_first = scratch.group_first;
  group_first.clear();
  {
    std::size_t i = 0;
    while (i < blocks.size()) {
      group_first.push_back(i);
      std::size_t j = i + 1;
      while (j < blocks.size() && blocks[j].lc0 == blocks[i].lc0 &&
             blocks[j].lc1 == blocks[i].lc1 &&
             blocks[j].lr0 == blocks[j - 1].lr1) {
        ++j;
      }
      i = j;
    }
    group_first.push_back(blocks.size());
  }
  const std::size_t ngroups = group_first.size() - 1;

  // Pass 2: merge column-adjacent groups with identical row ranges into
  // one rectangular write — bulk arrivals (whole local pieces from a
  // redistribution round) then cost a single request when the row range
  // spans the full local height.
  std::size_t g = 0;
  while (g < ngroups) {
    const std::int64_t lr0 = blocks[group_first[g]].lr0;
    const std::int64_t lr1 = blocks[group_first[g + 1] - 1].lr1;
    std::size_t h = g + 1;
    while (h < ngroups &&
           blocks[group_first[h]].lc0 == blocks[group_first[h - 1]].lc1 &&
           blocks[group_first[h]].lr0 == lr0 &&
           blocks[group_first[h + 1] - 1].lr1 == lr1) {
      ++h;
    }
    const std::int64_t lc0 = blocks[group_first[g]].lc0;
    const std::int64_t lc1 = blocks[group_first[h - 1]].lc1;
    const io::Section sec{lr0, lr1, lc0, lc1};

    if (group_first[h] - group_first[g] == 1) {
      // Single block: its payload already is the section, column-major.
      const LocalBlock& b = blocks[group_first[g]];
      dst.laf().write_section(
          ctx, sec,
          payload.subspan(b.offset,
                          static_cast<std::size_t>(sec.elements())));
    } else {
      const std::int64_t height = lr1 - lr0;
      std::vector<double>& rect = scratch.rect;
      rect.resize(static_cast<std::size_t>(sec.elements()));
      for (std::size_t k = group_first[g]; k < group_first[h]; ++k) {
        const LocalBlock& b = blocks[k];
        const std::int64_t bh = b.lr1 - b.lr0;
        for (std::int64_t c = b.lc0; c < b.lc1; ++c) {
          std::memcpy(rect.data() + (c - lc0) * height + (b.lr0 - lr0),
                      payload.data() + b.offset +
                          static_cast<std::size_t>((c - b.lc0) * bh),
                      static_cast<std::size_t>(bh) * sizeof(double));
        }
      }
      dst.laf().write_section(
          ctx, sec, std::span<const double>(rect.data(), rect.size()));
    }
    g = h;
  }
}

}  // namespace

RouteMode resolve_route_mode(RouteMode mode, std::int64_t hint) {
  if (mode != RouteMode::kAuto) {
    return mode;
  }
  static const std::string forced = env_string("OOCC_ROUTE_MODE", "");
  if (forced == "element") {
    return RouteMode::kElement;
  }
  if (forced == "block") {
    return RouteMode::kBlock;
  }
  return hint >= 2 ? RouteMode::kBlock : RouteMode::kElement;
}

void route_segment(const hpf::ArrayDistribution& dst, std::int64_t g0,
                   std::int64_t g1, std::int64_t gfixed, bool swap,
                   const double* data,
                   std::vector<std::vector<RoutedBlock>>& out_headers,
                   std::vector<std::vector<double>>& out_payload) {
  const hpf::DimDistribution& vdist = swap ? dst.col_dist() : dst.row_dist();
  vdist.for_each_owner_run(
      g0, g1, [&](std::int64_t r0, std::int64_t r1, int /*dim_owner*/) {
        // The array-level owner accounts for which axis is distributed
        // (the run's owner is 0 when the varying dimension is collapsed).
        const std::int64_t dr = swap ? gfixed : r0;
        const std::int64_t dc = swap ? r0 : gfixed;
        const std::size_t owner =
            static_cast<std::size_t>(dst.owner(dr, dc));
        out_headers[owner].push_back(
            swap ? RoutedBlock{gfixed, r0, 1, r1 - r0}
                 : RoutedBlock{r0, gfixed, r1 - r0, 1});
        out_payload[owner].insert(out_payload[owner].end(), data + (r0 - g0),
                                  data + (r1 - g0));
      });
}

void route_segment_elements(const hpf::ArrayDistribution& dst,
                            std::int64_t g0, std::int64_t g1,
                            std::int64_t gfixed, bool swap,
                            const double* data,
                            std::vector<std::vector<RoutedElement>>& out) {
  const hpf::DimDistribution& vdist = swap ? dst.col_dist() : dst.row_dist();
  vdist.for_each_owner_run(
      g0, g1, [&](std::int64_t r0, std::int64_t r1, int /*dim_owner*/) {
        const std::int64_t dr0 = swap ? gfixed : r0;
        const std::int64_t dc0 = swap ? r0 : gfixed;
        auto& dest = out[static_cast<std::size_t>(dst.owner(dr0, dc0))];
        for (std::int64_t g = r0; g < r1; ++g) {
          const std::int64_t dr = swap ? gfixed : g;
          const std::int64_t dc = swap ? g : gfixed;
          dest.push_back(RoutedElement{dr, dc, data[g - g0]});
        }
      });
}

void write_routed_blocks(sim::SpmdContext& ctx, OutOfCoreArray& dst,
                         std::span<const RoutedBlock> blocks,
                         std::span<const double> payload,
                         RouteScratch& scratch) {
  if (blocks.empty()) {
    return;
  }
  const hpf::ArrayDistribution& d = dst.dist();
  scratch.blocks.clear();
  scratch.blocks.reserve(blocks.size());
  std::size_t offset = 0;
  for (const RoutedBlock& b : blocks) {
    const std::int64_t lr0 = d.global_to_local_row(b.grow0);
    const std::int64_t lc0 = d.global_to_local_col(b.gcol0);
    scratch.blocks.push_back(
        LocalBlock{lr0, lr0 + b.rows, lc0, lc0 + b.cols, offset});
    offset += static_cast<std::size_t>(b.rows * b.cols);
  }
  OOCC_CHECK(offset == payload.size(), ErrorCode::kRuntimeError,
             "routed payload of " << payload.size()
                                  << " elements does not match descriptors "
                                     "covering "
                                  << offset);
  write_local_blocks(ctx, dst, scratch, payload);
}

void write_routed_elements(sim::SpmdContext& ctx, OutOfCoreArray& dst,
                           std::vector<RoutedElement>& elems,
                           RouteScratch& scratch) {
  if (elems.empty()) {
    return;
  }
  const hpf::ArrayDistribution& d = dst.dist();
  // Map to local 1x1 blocks whose payload offsets point at the original
  // element order — the coalescer indexes payload per block, so only the
  // descriptors need sorting, not the values.
  scratch.blocks.clear();
  scratch.blocks.reserve(elems.size());
  scratch.values.clear();
  scratch.values.reserve(elems.size());
  for (const RoutedElement& e : elems) {
    const std::int64_t lr = d.global_to_local_row(e.grow);
    const std::int64_t lc = d.global_to_local_col(e.gcol);
    scratch.blocks.push_back(
        LocalBlock{lr, lr + 1, lc, lc + 1, scratch.values.size()});
    scratch.values.push_back(e.value);
  }
  write_local_blocks(
      ctx, dst, scratch,
      std::span<const double>(scratch.values.data(), scratch.values.size()));
}

void write_routed_elements(sim::SpmdContext& ctx, OutOfCoreArray& dst,
                           std::vector<RoutedElement>& elems) {
  RouteScratch scratch;
  write_routed_elements(ctx, dst, elems, scratch);
}

RouteChannels::RouteChannels(RouteMode resolved, int nprocs)
    : blocks_(resolved == RouteMode::kBlock),
      nprocs_(static_cast<std::size_t>(nprocs)) {
  OOCC_REQUIRE(resolved != RouteMode::kAuto,
               "RouteChannels needs a resolved mode; call "
               "resolve_route_mode first");
  if (blocks_) {
    out_headers_.resize(nprocs_);
    in_headers_.resize(nprocs_);
    out_payload_.resize(nprocs_);
    in_payload_.resize(nprocs_);
  }
}

void RouteChannels::begin_round() {
  if (blocks_) {
    for (auto& v : out_headers_) {
      v.clear();
    }
    for (auto& v : out_payload_) {
      v.clear();
    }
  } else {
    out_elems_.assign(nprocs_, {});
  }
}

void RouteChannels::emit(const hpf::ArrayDistribution& dst, std::int64_t g0,
                         std::int64_t g1, std::int64_t gfixed, bool swap,
                         const double* data) {
  if (blocks_) {
    route_segment(dst, g0, g1, gfixed, swap, data, out_headers_,
                  out_payload_);
  } else {
    route_segment_elements(dst, g0, g1, gfixed, swap, data, out_elems_);
  }
}

void RouteChannels::exchange_and_write(sim::SpmdContext& ctx,
                                       OutOfCoreArray& dst) {
  if (blocks_) {
    sim::alltoallv_hp(ctx, out_headers_, out_payload_, in_headers_,
                      in_payload_);
    for (std::size_t s = 0; s < nprocs_; ++s) {
      write_routed_blocks(
          ctx, dst,
          std::span<const RoutedBlock>(in_headers_[s].data(),
                                       in_headers_[s].size()),
          std::span<const double>(in_payload_[s].data(),
                                  in_payload_[s].size()),
          scratch_);
    }
  } else {
    std::vector<std::vector<RoutedElement>> inbound =
        sim::alltoallv(ctx, std::move(out_elems_));
    for (auto& from_proc : inbound) {
      write_routed_elements(ctx, dst, from_proc, scratch_);
    }
  }
}

namespace {

/// Shared sweep for redistribute and transpose: read src slab-wise, route
/// whole ownership runs (or single elements in the fallback) to their
/// destination owners, exchange, write.
void route_all(sim::SpmdContext& ctx, OutOfCoreArray& src,
               OutOfCoreArray& dst, std::int64_t budget_elements,
               bool swap_indices, RouteMode mode) {
  const int p = ctx.nprocs();

  // Slab sweep over the source in its contiguous orientation. Round count
  // is the maximum over all processors so the all-to-all stays collective;
  // it is computed locally from the (replicated) distribution metadata.
  const SlabOrientation orient =
      src.laf().order() == io::StorageOrder::kColumnMajor
          ? SlabOrientation::kColumnSlabs
          : SlabOrientation::kRowSlabs;
  std::int64_t rounds = 0;
  for (int proc = 0; proc < p; ++proc) {
    const SlabIterator it(src.dist().local_rows(proc),
                          src.dist().local_cols(proc), orient,
                          budget_elements);
    rounds = std::max(rounds, it.count());
  }

  const SlabIterator mine(src.local_rows(), src.local_cols(), orient,
                          budget_elements);
  std::vector<double> buf(static_cast<std::size_t>(mine.slab_elements()));
  const OclaDescriptor& socla = src.ocla();
  const hpf::DimDistribution& src_rows = src.dist().row_dist();
  const hpf::DimDistribution& dst_vdim =
      swap_indices ? dst.dist().col_dist() : dst.dist().row_dist();

  // Blocks pay off when both the source's contiguous local runs and the
  // destination's ownership runs span at least two elements; otherwise
  // (CYCLIC on the routed dimension) fall back to per-element triples.
  const RouteMode resolved = resolve_route_mode(
      mode,
      std::min(src_rows.run_length_hint(), dst_vdim.run_length_hint()));

  // One sweep serves both wire formats: per source column, split the
  // slab's local row range into globally contiguous runs and hand each to
  // the channels' resolved serializer.
  RouteChannels channels(resolved, p);
  for (std::int64_t round = 0; round < rounds; ++round) {
    channels.begin_round();
    if (round < mine.count()) {
      const io::Section sec = mine.section(round);
      std::span<double> view(buf.data(),
                             static_cast<std::size_t>(sec.elements()));
      src.laf().read_section(ctx, sec, view);
      const std::int64_t srows = sec.rows();
      for (std::int64_t lc = sec.col0; lc < sec.col1; ++lc) {
        const std::int64_t gc = socla.global_col(lc);
        const double* col = buf.data() +
                            static_cast<std::size_t>((lc - sec.col0) * srows);
        for (std::int64_t lr = sec.row0; lr < sec.row1;) {
          const std::int64_t lr_end = std::min(
              sec.row1, src_rows.local_run_end(ctx.rank(), lr));
          channels.emit(dst.dist(), socla.global_row(lr),
                        socla.global_row(lr) + (lr_end - lr), gc,
                        swap_indices, col + (lr - sec.row0));
          lr = lr_end;
        }
      }
    }
    channels.exchange_and_write(ctx, dst);
  }
}

}  // namespace

void redistribute(sim::SpmdContext& ctx, OutOfCoreArray& src,
                  OutOfCoreArray& dst, std::int64_t budget_elements,
                  RouteMode mode) {
  OOCC_REQUIRE(src.dist().global_rows() == dst.dist().global_rows() &&
                   src.dist().global_cols() == dst.dist().global_cols(),
               "redistribute requires identical global shapes; got "
                   << src.dist().to_string() << " vs "
                   << dst.dist().to_string());
  route_all(ctx, src, dst, budget_elements, /*swap_indices=*/false, mode);
}

void transpose(sim::SpmdContext& ctx, OutOfCoreArray& src,
               OutOfCoreArray& dst, std::int64_t budget_elements,
               RouteMode mode) {
  OOCC_REQUIRE(src.dist().global_rows() == dst.dist().global_cols() &&
                   src.dist().global_cols() == dst.dist().global_rows(),
               "transpose requires swapped global shapes; got "
                   << src.dist().to_string() << " vs "
                   << dst.dist().to_string());
  route_all(ctx, src, dst, budget_elements, /*swap_indices=*/true, mode);
}

}  // namespace oocc::runtime
