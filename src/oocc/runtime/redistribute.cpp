#include "oocc/runtime/redistribute.hpp"

#include <algorithm>
#include <vector>

#include "oocc/runtime/slab_iter.hpp"
#include "oocc/sim/collectives.hpp"
#include "oocc/util/error.hpp"

namespace oocc::runtime {

void write_routed_elements(sim::SpmdContext& ctx, OutOfCoreArray& dst,
                           std::vector<RoutedElement>& elems) {
  if (elems.empty()) {
    return;
  }
  const hpf::ArrayDistribution& d = dst.dist();
  // Map to local coordinates, then sort column-major.
  struct LocalElement {
    std::int64_t lr;
    std::int64_t lc;
    double value;
  };
  std::vector<LocalElement> local;
  local.reserve(elems.size());
  for (const RoutedElement& e : elems) {
    local.push_back(LocalElement{d.global_to_local_row(e.grow),
                                 d.global_to_local_col(e.gcol), e.value});
  }
  std::sort(local.begin(), local.end(),
            [](const LocalElement& a, const LocalElement& b) {
              return a.lc != b.lc ? a.lc < b.lc : a.lr < b.lr;
            });

  // First pass: maximal per-column runs of consecutive local rows.
  struct Run {
    std::int64_t lc;
    std::int64_t lr0;
    std::size_t begin;  // index range into `local`
    std::size_t end;
  };
  std::vector<Run> runs;
  {
    std::size_t i = 0;
    while (i < local.size()) {
      const std::int64_t lc = local[i].lc;
      const std::int64_t lr0 = local[i].lr;
      std::size_t j = i + 1;
      while (j < local.size() && local[j].lc == lc &&
             local[j].lr == lr0 + static_cast<std::int64_t>(j - i)) {
        ++j;
      }
      runs.push_back(Run{lc, lr0, i, j});
      i = j;
    }
  }

  // Second pass: merge consecutive columns whose runs cover the same row
  // range into one rectangular write. Bulk arrivals (whole local pieces
  // from a redistribution round) then cost one section write — a single
  // request when the row range spans the full local height.
  std::vector<double> rect;
  std::size_t r = 0;
  while (r < runs.size()) {
    const std::int64_t lr0 = runs[r].lr0;
    const std::int64_t height =
        static_cast<std::int64_t>(runs[r].end - runs[r].begin);
    std::size_t s = r + 1;
    while (s < runs.size() && runs[s].lc == runs[s - 1].lc + 1 &&
           runs[s].lr0 == lr0 &&
           static_cast<std::int64_t>(runs[s].end - runs[s].begin) == height) {
      ++s;
    }
    const std::int64_t width = static_cast<std::int64_t>(s - r);
    rect.resize(static_cast<std::size_t>(height * width));
    for (std::size_t col = 0; col < static_cast<std::size_t>(width); ++col) {
      const Run& run = runs[r + col];
      for (std::size_t k = run.begin; k < run.end; ++k) {
        rect[col * static_cast<std::size_t>(height) + (k - run.begin)] =
            local[k].value;
      }
    }
    const io::Section sec{lr0, lr0 + height, runs[r].lc,
                          runs[r].lc + width};
    dst.laf().write_section(ctx, sec,
                            std::span<const double>(rect.data(), rect.size()));
    r = s;
  }
}

namespace {

/// Shared sweep for redistribute and transpose: read src slab-wise, route
/// every element to its destination owner (optionally swapping indices),
/// exchange, write.
void route_all(sim::SpmdContext& ctx, OutOfCoreArray& src,
               OutOfCoreArray& dst, std::int64_t budget_elements,
               bool swap_indices) {
  const int p = ctx.nprocs();

  // Slab sweep over the source in its contiguous orientation. Round count
  // is the maximum over all processors so the all-to-all stays collective;
  // it is computed locally from the (replicated) distribution metadata.
  const SlabOrientation orient =
      src.laf().order() == io::StorageOrder::kColumnMajor
          ? SlabOrientation::kColumnSlabs
          : SlabOrientation::kRowSlabs;
  std::int64_t rounds = 0;
  for (int proc = 0; proc < p; ++proc) {
    const SlabIterator it(src.dist().local_rows(proc),
                          src.dist().local_cols(proc), orient,
                          budget_elements);
    rounds = std::max(rounds, it.count());
  }

  const SlabIterator mine(src.local_rows(), src.local_cols(), orient,
                          budget_elements);
  std::vector<double> buf(static_cast<std::size_t>(mine.slab_elements()));
  const OclaDescriptor& socla = src.ocla();

  for (std::int64_t round = 0; round < rounds; ++round) {
    std::vector<std::vector<RoutedElement>> outbound(
        static_cast<std::size_t>(p));
    if (round < mine.count()) {
      const io::Section sec = mine.section(round);
      std::span<double> view(buf.data(),
                             static_cast<std::size_t>(sec.elements()));
      src.laf().read_section(ctx, sec, view);
      const std::int64_t srows = sec.rows();
      for (std::int64_t lc = sec.col0; lc < sec.col1; ++lc) {
        const std::int64_t gc = socla.global_col(lc);
        for (std::int64_t lr = sec.row0; lr < sec.row1; ++lr) {
          const std::int64_t gr = socla.global_row(lr);
          const std::int64_t dr = swap_indices ? gc : gr;
          const std::int64_t dc = swap_indices ? gr : gc;
          const int owner = dst.dist().owner(dr, dc);
          outbound[static_cast<std::size_t>(owner)].push_back(
              RoutedElement{dr, dc,
                            view[static_cast<std::size_t>(
                                (lc - sec.col0) * srows + (lr - sec.row0))]});
        }
      }
    }
    std::vector<std::vector<RoutedElement>> inbound =
        sim::alltoallv(ctx, outbound);
    for (auto& from_proc : inbound) {
      write_routed_elements(ctx, dst, from_proc);
    }
  }
}

}  // namespace

void redistribute(sim::SpmdContext& ctx, OutOfCoreArray& src,
                  OutOfCoreArray& dst, std::int64_t budget_elements) {
  OOCC_REQUIRE(src.dist().global_rows() == dst.dist().global_rows() &&
                   src.dist().global_cols() == dst.dist().global_cols(),
               "redistribute requires identical global shapes; got "
                   << src.dist().to_string() << " vs "
                   << dst.dist().to_string());
  route_all(ctx, src, dst, budget_elements, /*swap_indices=*/false);
}

void transpose(sim::SpmdContext& ctx, OutOfCoreArray& src,
               OutOfCoreArray& dst, std::int64_t budget_elements) {
  OOCC_REQUIRE(src.dist().global_rows() == dst.dist().global_cols() &&
                   src.dist().global_cols() == dst.dist().global_rows(),
               "transpose requires swapped global shapes; got "
                   << src.dist().to_string() << " vs "
                   << dst.dist().to_string());
  route_all(ctx, src, dst, budget_elements, /*swap_indices=*/true);
}

}  // namespace oocc::runtime
