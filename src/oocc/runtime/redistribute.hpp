// Out-of-core redistribution (§2.3 of the paper).
//
// Data often arrives on disk in a layout that does not conform to the
// distribution the program declares (the paper's example: data arriving
// from archival storage or a satellite feed). Redistribution reads each
// processor's local array slab by slab, routes data to its new owners with
// an all-to-all exchange, and writes it into the destination Local Array
// Files. The paper notes this overhead is amortized when the array is used
// repeatedly; bench/redistribution measures exactly that.
//
// Routing is *block-structured*: the paper's whole point is turning many
// small requests into few large ones, so the communication phase ships
// ownership runs (hpf::DimDistribution::owner_runs) as RoutedBlock
// descriptors over a flat double payload — ~8 bytes per element on the
// wire instead of a 24-byte per-element triple — and the receive side
// coalesces whole blocks into rectangular section writes without ever
// sorting elements. A per-element path remains as the fallback for
// distributions whose ownership runs degenerate to single elements
// (CYCLIC on the routed dimension).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "oocc/runtime/ooc_array.hpp"
#include "oocc/sim/machine.hpp"

namespace oocc::runtime {

/// How the routing sweep encodes data in flight. kAuto picks kBlock
/// whenever the typical ownership run spans at least two elements
/// (run_length_hint of the routed dimensions) and kElement otherwise —
/// every rank resolves the same choice from the replicated distribution
/// metadata, so the collectives stay matched.
enum class RouteMode { kAuto, kElement, kBlock };

/// An element in flight between distributions, addressed in *destination*
/// global coordinates. The per-element fallback format (cyclic worst
/// case); block-capable paths use RoutedBlock instead.
struct RoutedElement {
  std::int64_t grow;
  std::int64_t gcol;
  double value;
};
static_assert(std::is_trivially_copyable_v<RoutedElement>);

/// A routed rectangle [grow0, grow0+rows) x [gcol0, gcol0+cols) of
/// destination global coordinates. Values travel separately in a flat
/// payload stream, packed column-major per block in descriptor order; a
/// block's payload offset is the cumulative element count of the blocks
/// before it, so no offset rides on the wire. The varying dimension of a
/// block always lies inside one ownership run of the destination
/// distribution, which guarantees the whole block maps to one contiguous
/// local segment per local column on the receiver.
struct RoutedBlock {
  std::int64_t grow0;
  std::int64_t gcol0;
  std::int64_t rows;
  std::int64_t cols;
};
static_assert(std::is_trivially_copyable_v<RoutedBlock>);

/// A routed block resolved to destination-local coordinates plus its
/// element offset into the flat payload stream.
struct LocalBlock {
  std::int64_t lr0;
  std::int64_t lr1;
  std::int64_t lc0;
  std::int64_t lc1;
  std::size_t offset;
};

/// Receive-side scratch buffers, hoisted by the caller and reused across
/// rounds and source ranks so bulk arrivals never reallocate per
/// rectangle. `group_first` holds the block-index boundaries of the
/// coalescer's vertical groups.
struct RouteScratch {
  std::vector<LocalBlock> blocks;
  std::vector<std::size_t> group_first;
  std::vector<double> values;
  std::vector<double> rect;
};

/// Resolves kAuto against a run-length hint (the minimum typical
/// ownership-run length of the routed dimensions, from
/// hpf::DimDistribution::run_length_hint): blocks when runs span >= 2
/// elements, the per-element fallback otherwise. An OOCC_ROUTE_MODE
/// environment variable set to "element" or "block" overrides kAuto for
/// experiments (read once per process, so all ranks agree).
RouteMode resolve_route_mode(RouteMode mode, std::int64_t hint);

/// Splits the destination-global segment {rows [g0, g1), column `gfixed`}
/// — or, with `swap`, {row `gfixed`, columns [g0, g1)} — into ownership
/// runs of `dst` and appends one RoutedBlock plus its payload per run.
/// `data` holds the segment's values in ascending varying-index order.
/// Shared by redistribute/transpose and two-phase I/O.
void route_segment(const hpf::ArrayDistribution& dst, std::int64_t g0,
                   std::int64_t g1, std::int64_t gfixed, bool swap,
                   const double* data,
                   std::vector<std::vector<RoutedBlock>>& out_headers,
                   std::vector<std::vector<double>>& out_payload);

/// The same segment split, serialized as per-element triples (the cyclic
/// fallback's wire format). Emission order matches a plain ascending
/// element walk, so both formats deliver identically ordered data.
void route_segment_elements(const hpf::ArrayDistribution& dst,
                            std::int64_t g0, std::int64_t g1,
                            std::int64_t gfixed, bool swap,
                            const double* data,
                            std::vector<std::vector<RoutedElement>>& out);

/// Writes received blocks into `dst`'s Local Array File. Blocks arrive
/// already run-structured, so this only merges vertically/horizontally
/// adjacent blocks into maximal rectangles (descriptor-level work, no
/// element sort) and issues one section write per rectangle; a rectangle
/// that is a single block is written straight from the payload span.
void write_routed_blocks(sim::SpmdContext& ctx, OutOfCoreArray& dst,
                         std::span<const RoutedBlock> blocks,
                         std::span<const double> payload,
                         RouteScratch& scratch);

/// Writes received per-element arrivals into `dst`'s Local Array File — a
/// thin adapter that maps the elements to local 1x1 blocks and reuses the
/// block coalescer, producing the same rectangular writes as before.
/// `elems` is consumed (reordered).
void write_routed_elements(sim::SpmdContext& ctx, OutOfCoreArray& dst,
                           std::vector<RoutedElement>& elems,
                           RouteScratch& scratch);

/// Convenience overload with its own scratch (tests, one-shot calls).
void write_routed_elements(sim::SpmdContext& ctx, OutOfCoreArray& dst,
                           std::vector<RoutedElement>& elems);

/// Outbound/inbound routing buffers for one sweep, shared by
/// redistribute/transpose and two-phase I/O. Encapsulates the per-round
/// reset, the wire-format choice (block descriptors over a flat payload
/// vs per-element triples), and the exchange-then-write tail, so the two
/// sweeps cannot drift apart. Block-path buffers persist across rounds;
/// steady-state rounds allocate nothing.
class RouteChannels {
 public:
  RouteChannels(RouteMode resolved, int nprocs);

  bool blocks() const noexcept { return blocks_; }

  /// Resets the outbound buffers for a new round. Block-path buffers keep
  /// their capacity; the element path's are re-created because the
  /// exchange consumes them by move.
  void begin_round();

  /// Serializes one destination segment (see route_segment /
  /// route_segment_elements) in the resolved wire format.
  void emit(const hpf::ArrayDistribution& dst, std::int64_t g0,
            std::int64_t g1, std::int64_t gfixed, bool swap,
            const double* data);

  /// Collective: exchanges this round's outbound data and writes every
  /// arrival into `dst`'s Local Array File.
  void exchange_and_write(sim::SpmdContext& ctx, OutOfCoreArray& dst);

 private:
  bool blocks_;
  std::size_t nprocs_;
  std::vector<std::vector<RoutedBlock>> out_headers_, in_headers_;
  std::vector<std::vector<double>> out_payload_, in_payload_;
  std::vector<std::vector<RoutedElement>> out_elems_;
  RouteScratch scratch_;
};

/// Moves the contents of `src` into `dst` (same global shape, arbitrary
/// distributions and storage orders), staging at most `budget_elements`
/// of outbound slab data per round. Collective: every rank must call it
/// with the same `mode`.
void redistribute(sim::SpmdContext& ctx, OutOfCoreArray& src,
                  OutOfCoreArray& dst, std::int64_t budget_elements,
                  RouteMode mode = RouteMode::kAuto);

/// Out-of-core global transpose: dst = src^T. `dst`'s global shape must be
/// the transpose of `src`'s; distributions and storage orders are
/// arbitrary. Same sweep/alltoall structure as redistribute, with indices
/// swapped in flight. Collective.
void transpose(sim::SpmdContext& ctx, OutOfCoreArray& src,
               OutOfCoreArray& dst, std::int64_t budget_elements,
               RouteMode mode = RouteMode::kAuto);

}  // namespace oocc::runtime
