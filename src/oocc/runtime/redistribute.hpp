// Out-of-core redistribution (§2.3 of the paper).
//
// Data often arrives on disk in a layout that does not conform to the
// distribution the program declares (the paper's example: data arriving
// from archival storage or a satellite feed). Redistribution reads each
// processor's local array slab by slab, routes elements to their new
// owners with an all-to-all exchange, and writes them into the destination
// Local Array Files. The paper notes this overhead is amortized when the
// array is used repeatedly; bench/redistribution measures exactly that.
#pragma once

#include <cstdint>

#include "oocc/runtime/ooc_array.hpp"
#include "oocc/sim/machine.hpp"

namespace oocc::runtime {

/// An element in flight between distributions, addressed in *destination*
/// global coordinates. Shared by redistribute, transpose and two-phase
/// I/O (runtime/twophase.hpp).
struct RoutedElement {
  std::int64_t grow;
  std::int64_t gcol;
  double value;
};
static_assert(std::is_trivially_copyable_v<RoutedElement>);

/// Writes received elements into `dst`'s Local Array File, sorting and
/// coalescing them into maximal per-column runs so contiguous arrivals
/// cost few I/O requests. `elems` is consumed (reordered).
void write_routed_elements(sim::SpmdContext& ctx, OutOfCoreArray& dst,
                           std::vector<RoutedElement>& elems);

/// Moves the contents of `src` into `dst` (same global shape, arbitrary
/// distributions and storage orders), staging at most `budget_elements`
/// of outbound slab data per round. Collective: every rank must call it.
void redistribute(sim::SpmdContext& ctx, OutOfCoreArray& src,
                  OutOfCoreArray& dst, std::int64_t budget_elements);

/// Out-of-core global transpose: dst = src^T. `dst`'s global shape must be
/// the transpose of `src`'s; distributions and storage orders are
/// arbitrary. Same sweep/alltoall structure as redistribute, with indices
/// swapped in flight. Collective.
void transpose(sim::SpmdContext& ctx, OutOfCoreArray& src,
               OutOfCoreArray& dst, std::int64_t budget_elements);

}  // namespace oocc::runtime
