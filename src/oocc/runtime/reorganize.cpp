#include "oocc/runtime/reorganize.hpp"

#include <vector>

#include "oocc/runtime/slab_iter.hpp"
#include "oocc/util/error.hpp"

namespace oocc::runtime {

std::uint64_t reorganize_storage(sim::SpmdContext& ctx,
                                 io::LocalArrayFile& src,
                                 io::LocalArrayFile& dst,
                                 std::int64_t budget_elements) {
  OOCC_REQUIRE(src.rows() == dst.rows() && src.cols() == dst.cols(),
               "reorganize_storage requires equal shapes; got "
                   << src.rows() << "x" << src.cols() << " vs " << dst.rows()
                   << "x" << dst.cols());
  const std::uint64_t before =
      src.stats().total_requests() + dst.stats().total_requests();

  // Sweep in the orientation contiguous for the *source* so reads are one
  // request per slab; writes into the destination pay whatever striding
  // its order imposes (1 request per slab if orders match, per-row/column
  // extents otherwise). That asymmetry is the honest cost of conversion.
  const SlabOrientation orient =
      src.order() == io::StorageOrder::kColumnMajor
          ? SlabOrientation::kColumnSlabs
          : SlabOrientation::kRowSlabs;
  SlabIterator slabs(src.rows(), src.cols(), orient, budget_elements);
  std::vector<double> buf(static_cast<std::size_t>(slabs.slab_elements()));
  for (std::int64_t s = 0; s < slabs.count(); ++s) {
    const io::Section sec = slabs.section(s);
    std::span<double> view(buf.data(),
                           static_cast<std::size_t>(sec.elements()));
    src.read_section(ctx, sec, view);
    dst.write_section(ctx, sec,
                      std::span<const double>(view.data(), view.size()));
  }
  return src.stats().total_requests() + dst.stats().total_requests() - before;
}

}  // namespace oocc::runtime
