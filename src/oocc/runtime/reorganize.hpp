// On-disk storage reorganization (§4.1: "how to reorganize data storage on
// disks to reduce I/O costs").
//
// When the compiler selects a slab orientation that is strided in the
// array's current storage order, it can either pay per-extent request
// costs on every access or reorganize the LAF once so the chosen slabs
// become contiguous. Reorganization itself is done out-of-core within the
// memory budget: the source is swept in its own contiguous orientation and
// the pieces are written (strided) into the destination order; the
// one-time cost is amortized over the repeated accesses it saves — the
// same amortization argument §2.3 makes for initial redistribution.
#pragma once

#include <cstdint>

#include "oocc/io/laf.hpp"
#include "oocc/sim/machine.hpp"

namespace oocc::runtime {

/// Copies `src` into `dst` (same local dimensions, any storage orders),
/// staging at most `budget_elements` in memory. Returns the number of I/O
/// requests spent, so callers can report the reorganization overhead.
std::uint64_t reorganize_storage(sim::SpmdContext& ctx,
                                 io::LocalArrayFile& src,
                                 io::LocalArrayFile& dst,
                                 std::int64_t budget_elements);

}  // namespace oocc::runtime
