#include "oocc/runtime/slab_iter.hpp"

#include <algorithm>

#include "oocc/util/error.hpp"

namespace oocc::runtime {

std::string_view slab_orientation_name(SlabOrientation o) noexcept {
  switch (o) {
    case SlabOrientation::kColumnSlabs:
      return "column-slabs";
    case SlabOrientation::kRowSlabs:
      return "row-slabs";
  }
  return "?";
}

io::StorageOrder contiguous_order_for(SlabOrientation o) noexcept {
  return o == SlabOrientation::kColumnSlabs ? io::StorageOrder::kColumnMajor
                                            : io::StorageOrder::kRowMajor;
}

SlabIterator::SlabIterator(std::int64_t rows, std::int64_t cols,
                           SlabOrientation o, std::int64_t capacity_elements)
    : rows_(rows), cols_(cols), orientation_(o) {
  OOCC_REQUIRE(rows >= 1 && cols >= 1,
               "local array must be non-empty, got " << rows << "x" << cols);
  OOCC_REQUIRE(capacity_elements >= 1,
               "slab capacity must be >= 1 element, got "
                   << capacity_elements);
  const std::int64_t cross =
      o == SlabOrientation::kColumnSlabs ? rows : cols;
  const std::int64_t extent =
      o == SlabOrientation::kColumnSlabs ? cols : rows;
  span_ = std::clamp<std::int64_t>(capacity_elements / cross, 1, extent);
  count_ = (extent + span_ - 1) / span_;
}

io::Section SlabIterator::section(std::int64_t i) const {
  OOCC_CHECK(i >= 0 && i < count_, ErrorCode::kOutOfRange,
             "slab index " << i << " outside [0, " << count_ << ")");
  if (orientation_ == SlabOrientation::kColumnSlabs) {
    const std::int64_t c0 = i * span_;
    return io::Section{0, rows_, c0, std::min(cols_, c0 + span_)};
  }
  const std::int64_t r0 = i * span_;
  return io::Section{r0, std::min(rows_, r0 + span_), 0, cols_};
}

}  // namespace oocc::runtime
