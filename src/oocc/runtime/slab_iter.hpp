// Slab iteration over an out-of-core local array (§3.3 of the paper).
//
// Stripmining sections the OCLA into *slabs*, each sized to fit the in-core
// local array (ICLA). A slab is a full-height run of columns (column slabs,
// Figure 11-I) or a full-width run of rows (row slabs, Figure 11-II). The
// compiler picks the orientation (data access reorganization, §4); the
// runtime iterates the resulting sections.
#pragma once

#include <cstdint>
#include <string_view>

#include "oocc/io/laf.hpp"

namespace oocc::runtime {

enum class SlabOrientation { kColumnSlabs, kRowSlabs };

std::string_view slab_orientation_name(SlabOrientation o) noexcept;

/// The storage order in which slabs of this orientation are contiguous
/// (one I/O request per slab).
io::StorageOrder contiguous_order_for(SlabOrientation o) noexcept;

/// Enumerates the slab sections of a rows x cols local array for a given
/// orientation and memory capacity (in elements). The slab width/height is
/// floor(capacity / cross_extent), clamped to [1, extent]; the final slab
/// may be smaller.
class SlabIterator {
 public:
  SlabIterator(std::int64_t rows, std::int64_t cols, SlabOrientation o,
               std::int64_t capacity_elements);

  SlabOrientation orientation() const noexcept { return orientation_; }
  std::int64_t count() const noexcept { return count_; }

  /// Columns per slab (column orientation) or rows per slab (row
  /// orientation) for all but possibly the last slab.
  std::int64_t slab_span() const noexcept { return span_; }

  /// Elements in a full (non-final) slab.
  std::int64_t slab_elements() const noexcept {
    return orientation_ == SlabOrientation::kColumnSlabs ? span_ * rows_
                                                         : span_ * cols_;
  }

  /// Section of the i-th slab (0-based).
  io::Section section(std::int64_t i) const;

 private:
  std::int64_t rows_;
  std::int64_t cols_;
  SlabOrientation orientation_;
  std::int64_t span_;
  std::int64_t count_;
};

}  // namespace oocc::runtime
