#include "oocc/runtime/slab_writer.hpp"

#include "oocc/util/error.hpp"

namespace oocc::runtime {

OwnedColumnWriter::OwnedColumnWriter(OutOfCoreArray& c, IclaBuffer& icla,
                                     std::int64_t r0, std::int64_t r1)
    : c_(c),
      icla_(icla),
      r0_(r0),
      r1_(r1),
      batch_(icla.capacity(), r0, r1, c.local_cols()) {}

void OwnedColumnWriter::append(sim::SpmdContext& ctx, std::int64_t lc,
                               std::span<const double> values) {
  const bool starting = batch_.pending() == 0;
  OOCC_ASSERT(starting || lc == batch_.lc0() + batch_.pending(),
              "owned columns must arrive consecutively: expected "
                  << batch_.lc0() + batch_.pending() << ", got " << lc);
  const bool full = batch_.push(lc);
  if (starting) {
    icla_.reset_section(
        io::Section{r0_, r1_, batch_.lc0(), batch_.lc0() + batch_.span()});
  }
  std::copy(values.begin(), values.end(),
            icla_.data().begin() + static_cast<std::ptrdiff_t>(
                                       (batch_.pending() - 1) * (r1_ - r0_)));
  if (full) {
    flush(ctx);
  }
}

void OwnedColumnWriter::flush(sim::SpmdContext& ctx) {
  if (batch_.pending() == 0) {
    return;
  }
  const io::Section sec{r0_, r1_, batch_.lc0(),
                        batch_.lc0() + batch_.pending()};
  icla_.store_as(ctx, c_.laf(), sec);
  batch_.clear();
}

}  // namespace oocc::runtime
