// Buffered writer for owned output columns — the "if ICLA is full then
// write" logic of the paper's Figures 9/12, shared by the hand-coded GAXPY
// kernels and the generic step executor.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>

#include "oocc/runtime/icla.hpp"
#include "oocc/runtime/ooc_array.hpp"

namespace oocc::runtime {

/// Shape-only batching arithmetic for staged output columns: given the
/// staging capacity, the row range, and the owner's local column count,
/// decides which consecutive appended columns share one flushed section.
/// OwnedColumnWriter wraps it with the data copy and the I/O; the
/// compiler's step pricer (compiler::price_steps) drives it directly so
/// priced write requests can never drift from measured ones.
class ColumnBatch {
 public:
  ColumnBatch(std::int64_t capacity, std::int64_t r0, std::int64_t r1,
              std::int64_t local_cols)
      : width_(std::max<std::int64_t>(1, capacity / (r1 - r0))),
        local_cols_(local_cols) {}

  std::int64_t lc0() const noexcept { return lc0_; }
  std::int64_t pending() const noexcept { return pending_; }
  /// Columns the current batch will hold when full (valid once pending>0).
  std::int64_t span() const noexcept { return span_; }

  /// Records one appended column (`lc` starts a new batch when none is
  /// pending); returns true when the batch just became full and must
  /// flush.
  bool push(std::int64_t lc) noexcept {
    if (pending_ == 0) {
      lc0_ = lc;
      span_ = std::min(width_, local_cols_ - lc0_);
    }
    ++pending_;
    return pending_ == span_;
  }

  void clear() noexcept { pending_ = 0; }

 private:
  std::int64_t width_;
  std::int64_t local_cols_;
  std::int64_t lc0_ = 0;
  std::int64_t span_ = 0;
  std::int64_t pending_ = 0;
};

/// Accumulates owned output columns into a column-slab ICLA for `c` and
/// flushes full (or final partial) slabs. Generalized to a row range
/// [r0, r1) so the row-slab translation can stage subcolumns.
class OwnedColumnWriter {
 public:
  OwnedColumnWriter(OutOfCoreArray& c, IclaBuffer& icla, std::int64_t r0,
                    std::int64_t r1);

  std::int64_t row0() const noexcept { return r0_; }
  std::int64_t row1() const noexcept { return r1_; }

  /// Appends the owner's local column `lc` (values for rows [r0, r1)).
  /// Columns must arrive consecutively within one writer's lifetime.
  void append(sim::SpmdContext& ctx, std::int64_t lc,
              std::span<const double> values);

  /// Writes any pending columns back to the LAF.
  void flush(sim::SpmdContext& ctx);

 private:
  OutOfCoreArray& c_;
  IclaBuffer& icla_;
  std::int64_t r0_;
  std::int64_t r1_;
  ColumnBatch batch_;
};

}  // namespace oocc::runtime
