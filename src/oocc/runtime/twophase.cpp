#include "oocc/runtime/twophase.hpp"

#include <algorithm>

#include "oocc/runtime/redistribute.hpp"
#include "oocc/runtime/slab_iter.hpp"
#include "oocc/sim/collectives.hpp"
#include "oocc/util/error.hpp"

namespace oocc::runtime {

namespace {

/// True when a dimension's local indices map to one contiguous global run
/// (BLOCK or collapsed), which direct_load requires.
bool contiguous_dim(const hpf::DimDistribution& d) {
  return d.kind() == hpf::DistKind::kBlock ||
         d.kind() == hpf::DistKind::kCollapsed;
}

}  // namespace

void direct_load(sim::SpmdContext& ctx, io::GlobalArrayFile& src,
                 OutOfCoreArray& dst, std::int64_t budget_elements) {
  OOCC_REQUIRE(src.rows() == dst.dist().global_rows() &&
                   src.cols() == dst.dist().global_cols(),
               "direct_load shape mismatch: file is "
                   << src.rows() << "x" << src.cols() << ", array is "
                   << dst.dist().to_string());
  OOCC_REQUIRE(contiguous_dim(dst.dist().row_dist()) &&
                   contiguous_dim(dst.dist().col_dist()),
               "direct_load requires BLOCK/collapsed distributions (one "
               "global rectangle per processor); got "
                   << dst.dist().to_string());

  const int rank = ctx.rank();
  const std::int64_t gr0 = dst.dist().local_to_global_row(rank, 0);
  const std::int64_t gc0 = dst.dist().local_to_global_col(rank, 0);

  // Sweep the local piece in the LAF's contiguous orientation; each slab
  // maps to one global sub-rectangle of the shared file (whose extent
  // count depends on how well the distribution conforms to the file's
  // storage order — that is the point of this function).
  const SlabOrientation orient =
      dst.laf().order() == io::StorageOrder::kColumnMajor
          ? SlabOrientation::kColumnSlabs
          : SlabOrientation::kRowSlabs;
  SlabIterator slabs(dst.local_rows(), dst.local_cols(), orient,
                     budget_elements);
  std::vector<double> buf(static_cast<std::size_t>(slabs.slab_elements()));
  for (std::int64_t s = 0; s < slabs.count(); ++s) {
    const io::Section local = slabs.section(s);
    const io::Section global{gr0 + local.row0, gr0 + local.row1,
                             gc0 + local.col0, gc0 + local.col1};
    std::span<double> view(buf.data(),
                           static_cast<std::size_t>(local.elements()));
    src.read_section(ctx, global, view);
    dst.laf().write_section(
        ctx, local, std::span<const double>(view.data(), view.size()));
  }
}

void two_phase_load(sim::SpmdContext& ctx, io::GlobalArrayFile& src,
                    OutOfCoreArray& dst, std::int64_t budget_elements,
                    RouteMode mode) {
  OOCC_REQUIRE(src.rows() == dst.dist().global_rows() &&
                   src.cols() == dst.dist().global_cols(),
               "two_phase_load shape mismatch: file is "
                   << src.rows() << "x" << src.cols() << ", array is "
                   << dst.dist().to_string());
  OOCC_REQUIRE(src.order() == io::StorageOrder::kColumnMajor,
               "two_phase_load's conforming chunks assume a column-major "
               "global file");
  const int p = ctx.nprocs();
  const int rank = ctx.rank();

  // Phase-one conforming distribution: contiguous column panels.
  const hpf::DimDistribution panels(hpf::DistKind::kBlock, src.cols(), p);
  const std::int64_t my_cols = panels.local_extent(rank);
  const std::int64_t my_c0 =
      my_cols > 0 ? panels.local_to_global(rank, 0) : 0;

  // Round count: everyone must join every all-to-all.
  std::int64_t rounds = 0;
  for (int proc = 0; proc < p; ++proc) {
    const std::int64_t cols_p = panels.local_extent(proc);
    if (cols_p > 0) {
      const SlabIterator it(src.rows(), cols_p,
                            SlabOrientation::kColumnSlabs, budget_elements);
      rounds = std::max(rounds, it.count());
    }
  }

  std::vector<double> buf;
  std::int64_t my_rounds = 0;
  std::unique_ptr<SlabIterator> mine;
  if (my_cols > 0) {
    mine = std::make_unique<SlabIterator>(
        src.rows(), my_cols, SlabOrientation::kColumnSlabs, budget_elements);
    my_rounds = mine->count();
    buf.resize(static_cast<std::size_t>(mine->slab_elements()));
  }

  // The panel's global rows are contiguous by construction, so only the
  // destination's row ownership runs bound the routed block size.
  const RouteMode resolved = resolve_route_mode(
      mode, dst.dist().row_dist().run_length_hint());

  // One sweep serves both wire formats: each panel column splits into
  // destination ownership runs (one whole-column block per destination
  // when the distributed axis is the column axis), serialized by the
  // channels' resolved format.
  RouteChannels channels(resolved, p);
  for (std::int64_t round = 0; round < rounds; ++round) {
    channels.begin_round();
    if (round < my_rounds) {
      const io::Section panel_sec = mine->section(round);
      // Panel-local columns offset into global columns.
      const io::Section global{0, src.rows(), my_c0 + panel_sec.col0,
                               my_c0 + panel_sec.col1};
      std::span<double> view(buf.data(),
                             static_cast<std::size_t>(global.elements()));
      src.read_section(ctx, global, view);
      const std::int64_t grows = global.rows();
      for (std::int64_t gc = global.col0; gc < global.col1; ++gc) {
        const double* col =
            buf.data() + static_cast<std::size_t>((gc - global.col0) * grows);
        channels.emit(dst.dist(), 0, grows, gc, /*swap=*/false, col);
      }
    }
    channels.exchange_and_write(ctx, dst);
  }
}

}  // namespace oocc::runtime
