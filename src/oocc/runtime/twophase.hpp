// Two-phase collective I/O — the PASSION runtime technique ([TBC+94b],
// the paper's §2.3 staging problem).
//
// A global array arrives in one shared file in canonical (column-major)
// order; each processor needs the piece its distribution assigns to it.
//
//  * direct_load: every processor reads its own piece straight from the
//    shared file. For a distribution that does not conform to the file's
//    storage order (e.g. row-block from a column-major file), the piece is
//    scattered across the file and costs one I/O request per contiguous
//    extent — O(N) requests per processor.
//
//  * two_phase_load: phase one, processors cooperatively read *conforming*
//    chunks (contiguous column panels of a column-major file — one request
//    per slab); phase two, whole ownership runs are routed to their owners
//    as block descriptors with an all-to-all exchange and written locally.
//    I/O requests drop by an order of magnitude at the cost of cheap
//    communication — the same trade the paper's access reorganization
//    makes on disk.
//
// bench/two_phase_io measures both against each other.
#pragma once

#include "oocc/io/gaf.hpp"
#include "oocc/runtime/ooc_array.hpp"
#include "oocc/runtime/redistribute.hpp"

namespace oocc::runtime {

/// Each processor reads its local piece of `src` directly. Requires BLOCK
/// (or collapsed) distributions so the piece is one global rectangle;
/// staging is bounded by `budget_elements`. Collective only in the sense
/// that everyone participates; no communication happens.
void direct_load(sim::SpmdContext& ctx, io::GlobalArrayFile& src,
                 OutOfCoreArray& dst, std::int64_t budget_elements);

/// Cooperative two-phase read: conforming contiguous phase-one chunks,
/// all-to-all redistribution, local writes. Works for any destination
/// distribution. Collective: every rank must call it with the same `mode`.
void two_phase_load(sim::SpmdContext& ctx, io::GlobalArrayFile& src,
                    OutOfCoreArray& dst, std::int64_t budget_elements,
                    RouteMode mode = RouteMode::kAuto);

}  // namespace oocc::runtime
