#include "oocc/serve/admission.hpp"

#include <algorithm>
#include <vector>

namespace oocc::serve {

AdmissionController::AdmissionController(std::int64_t total_elements)
    : total_(total_elements) {
  OOCC_REQUIRE(total_elements > 0,
               "admission controller needs a positive budget, got "
                   << total_elements);
}

AdmissionController::Grant::Grant(Grant&& o) noexcept
    : owner_(o.owner_), tenant_(std::move(o.tenant_)),
      elements_(o.elements_), wait_s_(o.wait_s_) {
  o.owner_ = nullptr;
  o.elements_ = 0;
}

AdmissionController::Grant& AdmissionController::Grant::operator=(
    Grant&& o) noexcept {
  if (this != &o) {
    release();
    owner_ = o.owner_;
    tenant_ = std::move(o.tenant_);
    elements_ = o.elements_;
    wait_s_ = o.wait_s_;
    o.owner_ = nullptr;
    o.elements_ = 0;
  }
  return *this;
}

AdmissionController::Grant::~Grant() { release(); }

void AdmissionController::Grant::release() {
  if (owner_ == nullptr) {
    return;
  }
  AdmissionController* owner = owner_;
  owner_ = nullptr;
  {
    std::lock_guard<std::mutex> lock(owner->mu_);
    owner->release_locked(tenant_, elements_);
  }
  owner->cv_.notify_all();
}

void AdmissionController::release_locked(const std::string& tenant,
                                         std::int64_t elements) {
  in_use_ -= elements;
  TenantStats& ts = tenants_[tenant];
  ts.elements_in_use -= elements;
  --ts.jobs_in_flight;
  grant_pass_locked();
}

void AdmissionController::grant_pass_locked() {
  bool admitted_any = true;
  while (admitted_any) {
    admitted_any = false;
    // Barrier: the oldest waiter that has been passed over too often. No
    // younger waiter may be admitted ahead of it.
    std::uint64_t barrier_ticket = 0;
    bool have_barrier = false;
    for (const auto& w : waiting_) {
      if (!w->admitted && w->passed_over >= kStarvationLimit &&
          (!have_barrier || w->ticket < barrier_ticket)) {
        barrier_ticket = w->ticket;
        have_barrier = true;
      }
    }
    // Head (oldest non-admitted) waiter per tenant.
    std::map<std::string, std::shared_ptr<Waiter>> heads;
    for (const auto& w : waiting_) {
      if (w->admitted) {
        continue;
      }
      auto [it, inserted] = heads.emplace(w->tenant, w);
      if (!inserted && w->ticket < it->second->ticket) {
        it->second = w;
      }
    }
    if (heads.empty()) {
      break;
    }
    // Round-robin: tenant names in order, rotated past the last grantee.
    std::vector<std::string> rotation;
    rotation.reserve(heads.size());
    for (const auto& [tenant, w] : heads) {
      rotation.push_back(tenant);
    }
    const auto pivot = std::upper_bound(rotation.begin(), rotation.end(),
                                        last_granted_tenant_);
    std::rotate(rotation.begin(), pivot, rotation.end());

    for (const std::string& tenant : rotation) {
      const std::shared_ptr<Waiter>& w = heads.at(tenant);
      if (have_barrier && w->ticket > barrier_ticket) {
        continue;
      }
      if (in_use_ + w->elements > total_) {
        continue;
      }
      w->admitted = true;
      in_use_ += w->elements;
      peak_in_use_ = std::max(peak_in_use_, in_use_);
      ++admitted_;
      TenantStats& ts = tenants_[tenant];
      ++ts.admitted;
      ts.elements_in_use += w->elements;
      ++ts.jobs_in_flight;
      last_granted_tenant_ = tenant;
      // Every older waiter just got passed over by this admission.
      for (const auto& other : waiting_) {
        if (!other->admitted && other->ticket < w->ticket) {
          ++other->passed_over;
        }
      }
      std::erase_if(waiting_, [&](const std::shared_ptr<Waiter>& q) {
        return q.get() == w.get();
      });
      admitted_any = true;
      break;  // heads/rotation changed; rescan
    }
  }
}

AdmissionController::Grant AdmissionController::acquire(
    const std::string& tenant, std::int64_t elements) {
  OOCC_REQUIRE(elements > 0,
               "admission acquire of " << elements << " elements");
  OOCC_CHECK(elements <= total_, ErrorCode::kResourceExhausted,
             "job needs " << elements << " elements but the server budget is "
                          << total_ << " — it could never be admitted");
  std::unique_lock<std::mutex> lock(mu_);
  if (waiting_.empty() && in_use_ + elements <= total_) {
    in_use_ += elements;
    peak_in_use_ = std::max(peak_in_use_, in_use_);
    ++admitted_;
    TenantStats& ts = tenants_[tenant];
    ++ts.admitted;
    ts.elements_in_use += elements;
    ++ts.jobs_in_flight;
    last_granted_tenant_ = tenant;
    return Grant(this, tenant, elements, 0.0);
  }

  auto waiter = std::make_shared<Waiter>();
  waiter->tenant = tenant;
  waiter->elements = elements;
  waiter->ticket = next_ticket_++;
  waiting_.push_back(waiter);
  ++waits_;
  ++tenants_[tenant].waits;
  const auto t0 = std::chrono::steady_clock::now();
  grant_pass_locked();
  cv_.wait(lock, [&] { return waiter->admitted; });
  const double waited =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  wait_time_s_ += waited;
  tenants_[tenant].wait_time_s += waited;
  return Grant(this, tenant, elements, waited);
}

AdmissionController::Stats AdmissionController::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s;
  s.total_elements = total_;
  s.in_use_elements = in_use_;
  s.peak_in_use_elements = peak_in_use_;
  s.admitted = admitted_;
  s.waits = waits_;
  s.wait_time_s = wait_time_s_;
  s.waiting_jobs = static_cast<int>(waiting_.size());
  s.tenants = tenants_;
  return s;
}

}  // namespace oocc::serve
