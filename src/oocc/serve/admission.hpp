// Multi-tenant admission control over the global memory budget.
//
// Every admitted job runs its plan's per-processor MemoryBudget on each of
// its nprocs simulated ranks — the buffer pool's pin/refcount machinery is
// what actually enforces the per-rank cap. AdmissionController sits above
// that: it owns the *global* element budget of the server and only admits
// a job when the sum of admitted jobs' footprints (nprocs × per-rank
// budget) still fits. Jobs that do not fit queue; the budget is never
// oversubscribed.
//
// Fairness policy (documented in docs/serve.md, asserted in
// tests/serve_test.cpp):
//  * tenants take turns — waiting jobs are admitted round-robin across
//    tenants, FIFO within a tenant, so a tenant streaming big jobs cannot
//    monopolize the budget while another tenant's small jobs fit;
//  * a waiter that does not currently fit is skipped, so small jobs flow
//    past a queued giant (no head-of-line blocking across tenants);
//  * anti-starvation: a waiter that has been passed over kStarvationLimit
//    times becomes a barrier — nothing younger is admitted until it fits —
//    so the queued giant is guaranteed to run once in-flight jobs drain.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "oocc/util/error.hpp"

namespace oocc::serve {

class AdmissionController {
 public:
  /// Passed-over count at which a waiter blocks younger admissions.
  static constexpr int kStarvationLimit = 16;

  explicit AdmissionController(std::int64_t total_elements);

  /// RAII share of the global budget; releasing re-runs the grant pass.
  class Grant {
   public:
    Grant() = default;
    Grant(Grant&& o) noexcept;
    Grant& operator=(Grant&& o) noexcept;
    Grant(const Grant&) = delete;
    Grant& operator=(const Grant&) = delete;
    ~Grant();

    std::int64_t elements() const noexcept { return elements_; }
    double wait_s() const noexcept { return wait_s_; }
    void release();

   private:
    friend class AdmissionController;
    Grant(AdmissionController* owner, std::string tenant,
          std::int64_t elements, double wait_s)
        : owner_(owner), tenant_(std::move(tenant)), elements_(elements),
          wait_s_(wait_s) {}

    AdmissionController* owner_ = nullptr;
    std::string tenant_;
    std::int64_t elements_ = 0;
    double wait_s_ = 0.0;
  };

  /// Blocks until `elements` of the global budget are granted to `tenant`.
  /// Throws Error(kResourceExhausted) immediately when elements > total —
  /// such a job could never run.
  Grant acquire(const std::string& tenant, std::int64_t elements);

  struct TenantStats {
    std::uint64_t admitted = 0;
    std::uint64_t waits = 0;        ///< admissions that had to queue
    double wait_time_s = 0.0;
    std::int64_t elements_in_use = 0;
    int jobs_in_flight = 0;
  };

  struct Stats {
    std::int64_t total_elements = 0;
    std::int64_t in_use_elements = 0;
    std::int64_t peak_in_use_elements = 0;
    std::uint64_t admitted = 0;
    std::uint64_t waits = 0;
    double wait_time_s = 0.0;
    int waiting_jobs = 0;
    std::map<std::string, TenantStats> tenants;
  };

  Stats stats() const;
  std::int64_t total_elements() const noexcept { return total_; }

 private:
  struct Waiter {
    std::string tenant;
    std::int64_t elements = 0;
    std::uint64_t ticket = 0;
    int passed_over = 0;
    bool admitted = false;
  };

  void release_locked(const std::string& tenant, std::int64_t elements);

  /// Admits every waiter the policy allows right now; called with mu_ held
  /// whenever capacity or the queue changes.
  void grant_pass_locked();

  const std::int64_t total_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::int64_t in_use_ = 0;
  std::int64_t peak_in_use_ = 0;
  std::uint64_t next_ticket_ = 0;
  std::uint64_t admitted_ = 0;
  std::uint64_t waits_ = 0;
  double wait_time_s_ = 0.0;
  /// Round-robin cursor: name of the tenant granted most recently; the
  /// next pass starts after it in tenant name order.
  std::string last_granted_tenant_;
  std::deque<std::shared_ptr<Waiter>> waiting_;
  std::map<std::string, TenantStats> tenants_;

  friend class Grant;
};

}  // namespace oocc::serve
