#include "oocc/serve/hash.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace oocc::serve {

std::uint64_t fnv1a64(std::string_view bytes, std::uint64_t seed) noexcept {
  std::uint64_t h = seed;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t canonical_program_hash(const hpf::BoundProgram& bound) {
  std::ostringstream oss;
  oss << "nprocs=" << bound.nprocs << "\n";
  // std::map iteration gives a name-sorted, order-insensitive rendering of
  // the declarations; distributions print their kind, axis and extents.
  for (const auto& [name, info] : bound.arrays) {
    oss << "array " << name << " rank=" << info.rank << " " << info.rows
        << "x" << info.cols << " " << info.dist.to_string() << "\n";
  }
  for (const auto& stmt : bound.stmts) {
    oss << hpf::to_string(*stmt, 0);
  }
  return fnv1a64(oss.str());
}

std::int64_t default_memory_budget(const hpf::BoundProgram& bound) {
  std::int64_t largest = 0;
  for (const auto& [name, info] : bound.arrays) {
    largest = std::max(largest, info.dist.local_elements(0));
  }
  return largest / 4 +
         4 * (largest > 0 ? bound.arrays.begin()->second.rows : 1);
}

std::uint64_t cost_model_fingerprint(
    const io::DiskModel& disk,
    const sim::MachineCostModel& machine) noexcept {
  const double params[] = {disk.request_overhead_s,
                           disk.per_proc_bandwidth_Bps,
                           disk.aggregate_bandwidth_Bps,
                           machine.comm.send_overhead_s,
                           machine.comm.latency_s,
                           machine.comm.bandwidth_Bps,
                           machine.compute.seconds_per_flop};
  return fnv1a64(
      std::string_view(reinterpret_cast<const char*>(params), sizeof(params)));
}

bool PlanKey::operator<(const PlanKey& o) const {
  const auto tie = [](const PlanKey& k) {
    return std::tuple(k.program_hash, k.nprocs, k.memory_budget_elements,
                      static_cast<int>(k.memory_strategy), k.access_reorg,
                      k.storage_reorg, k.fuse, static_cast<int>(k.prefetch),
                      static_cast<int>(k.opt), k.search_passes, k.verify,
                      k.cost_model_hash);
  };
  return tie(*this) < tie(o);
}

std::uint64_t PlanKey::digest() const noexcept {
  char buf[192];
  const int n = std::snprintf(
      buf, sizeof(buf), "%016llx|%d|%lld|%d|%d|%d|%d|%d|%d|%d|%d|%016llx",
      static_cast<unsigned long long>(program_hash), nprocs,
      static_cast<long long>(memory_budget_elements),
      static_cast<int>(memory_strategy), access_reorg ? 1 : 0,
      storage_reorg ? 1 : 0, fuse ? 1 : 0, static_cast<int>(prefetch),
      static_cast<int>(opt), search_passes, verify ? 1 : 0,
      static_cast<unsigned long long>(cost_model_hash));
  return fnv1a64(std::string_view(buf, static_cast<std::size_t>(n)));
}

std::string PlanKey::to_string() const {
  std::ostringstream oss;
  char hex[24];
  std::snprintf(hex, sizeof(hex), "plan-%016llx",
                static_cast<unsigned long long>(digest()));
  oss << hex << " p=" << nprocs << " mem=" << memory_budget_elements
      << " split=" << compiler::memory_strategy_name(memory_strategy)
      << " access-reorg=" << (access_reorg ? "on" : "off")
      << " storage-reorg=" << (storage_reorg ? "on" : "off")
      << " fuse=" << (fuse ? "on" : "off")
      << " prefetch=" << compiler::prefetch_mode_name(prefetch)
      << " opt=" << compiler::opt_mode_name(opt);
  if (opt == compiler::OptMode::kSearch) {
    oss << " passes=" << search_passes;
  }
  oss << " verify=" << (verify ? "on" : "off");
  std::snprintf(hex, sizeof(hex), "%016llx",
                static_cast<unsigned long long>(cost_model_hash));
  oss << " cost=" << hex;
  return oss.str();
}

std::uint64_t hash_named_array(const std::string& name,
                               std::span<const double> data,
                               std::uint64_t h) noexcept {
  h = fnv1a64(name, h);
  return fnv1a64(
      std::string_view(reinterpret_cast<const char*>(data.data()),
                       data.size() * sizeof(double)),
      h);
}

PlanKey make_plan_key(const hpf::BoundProgram& bound,
                      const compiler::CompileOptions& options) {
  PlanKey key;
  key.program_hash = canonical_program_hash(bound);
  key.nprocs = bound.nprocs;
  key.memory_budget_elements = options.memory_budget_elements;
  key.memory_strategy = options.memory_strategy;
  key.access_reorg = options.enable_access_reorganization;
  key.storage_reorg = options.enable_storage_reorganization;
  key.fuse = options.enable_statement_fusion;
  key.prefetch = options.prefetch;
  key.opt = options.opt;
  // search_passes only shapes kSearch plans; under kHeuristic the knob is
  // dead, and folding it in would split the cache for identical plans.
  key.search_passes =
      options.opt == compiler::OptMode::kSearch ? options.search_passes : 0;
  key.verify = options.verify;
  key.cost_model_hash = cost_model_fingerprint(options.disk, options.machine);
  return key;
}

}  // namespace oocc::serve
