// Canonical program/config hashing — the PlanCache key.
//
// A cached plan may be handed to any request that would have compiled an
// identical plan, so the key must capture everything compile_sequence
// depends on and nothing it does not. The program half hashes the
// *analyzed* program (statements rendered from the AST plus every array's
// resolved distribution), which makes the hash insensitive to whitespace,
// comments and directive ordering but sensitive to N, P, distribution kind
// and statement changes. The config half carries the optimizer knobs
// (budget, memory strategy, reorganization/fusion switches, prefetch mode,
// verify) plus a fingerprint of the disk and machine cost models — both
// feed lowering decisions (e.g. PrefetchMode::kAuto prices the prefetch
// variant), so two requests under different calibrations must not share a
// plan. `oocc_compile --hash` prints the same key, so clients and tests
// can predict cache behaviour without talking to the server.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "oocc/compiler/lower.hpp"
#include "oocc/hpf/sema.hpp"

namespace oocc::serve {

/// FNV-1a offset basis: the starting value of every serve fingerprint.
inline constexpr std::uint64_t kFnvOffsetBasis = 0xcbf29ce484222325ULL;

/// 64-bit FNV-1a over raw bytes; the building block of every serve hash.
std::uint64_t fnv1a64(std::string_view bytes,
                      std::uint64_t seed = kFnvOffsetBasis) noexcept;

/// Hash of the canonical (analyzed) program text: nprocs, every array's
/// shape + resolved distribution, and the statement list. Two sources that
/// differ only in formatting or comments collide by construction.
std::uint64_t canonical_program_hash(const hpf::BoundProgram& bound);

/// The oocc_compile default memory rule: a quarter of the largest local
/// array plus room for the reduction temporary. Shared by the CLI driver
/// and the serve request parser so a request with memory = 0 lands on the
/// same cache key as the equivalent CLI invocation.
std::int64_t default_memory_budget(const hpf::BoundProgram& bound);

/// FNV-1a over the numeric parameters of the disk + machine cost models.
/// Part of the PlanKey: the pricer consults both models during lowering,
/// so plans compiled under different calibrations are distinct.
std::uint64_t cost_model_fingerprint(
    const io::DiskModel& disk, const sim::MachineCostModel& machine) noexcept;

/// The full cache key: canonical program hash plus the compile
/// configuration that shapes the emitted plans.
struct PlanKey {
  std::uint64_t program_hash = 0;
  int nprocs = 1;
  std::int64_t memory_budget_elements = 0;
  compiler::MemoryStrategy memory_strategy =
      compiler::MemoryStrategy::kAccessWeighted;
  bool access_reorg = true;
  bool storage_reorg = true;
  bool fuse = true;
  compiler::PrefetchMode prefetch = compiler::PrefetchMode::kOff;
  /// Plan optimizer: heuristic and searched plans for the same program are
  /// different plans, so they must land on different cache entries.
  compiler::OptMode opt = compiler::OptMode::kHeuristic;
  /// Coordinate-descent rounds under kSearch. Normalized to 0 when opt is
  /// kHeuristic (the knob is dead there and must not split the cache).
  int search_passes = 0;
  bool verify = true;
  /// cost_model_fingerprint of CompileOptions::disk + ::machine.
  std::uint64_t cost_model_hash = 0;

  bool operator==(const PlanKey&) const = default;
  bool operator<(const PlanKey& o) const;

  /// Single 64-bit digest over every field (the printable identity).
  std::uint64_t digest() const noexcept;

  /// "plan-<digest hex> p=4 mem=1024 ..." — one line, greppable; what
  /// --hash prints and what protocol responses carry in "key".
  std::string to_string() const;
};

/// Builds the key for one analyzed program under the given options.
/// `options.memory_budget_elements` must already be resolved (apply
/// default_memory_budget first when the caller's budget is 0).
PlanKey make_plan_key(const hpf::BoundProgram& bound,
                      const compiler::CompileOptions& options);

/// Folds one named array's gathered (column-major) contents into a result
/// fingerprint. Shared by serve jobs and `oocc_compile --result-hash`, so
/// equal fingerprints mean bit-identical output bytes.
std::uint64_t hash_named_array(const std::string& name,
                               std::span<const double> data,
                               std::uint64_t h) noexcept;

}  // namespace oocc::serve
