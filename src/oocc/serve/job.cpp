#include "oocc/serve/job.hpp"

#include <atomic>
#include <mutex>
#include <set>
#include <system_error>

#include "oocc/hpf/parser.hpp"
#include "oocc/sim/collectives.hpp"

namespace oocc::serve {

namespace {

/// Monotonic job-directory counter: job dirs must be unique even when two
/// jobs of one tenant run concurrently, and request ids are client-chosen
/// (not trusted as path components).
std::atomic<std::uint64_t> job_seq{0};

struct DirGuard {
  std::filesystem::path path;
  ~DirGuard() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
};

}  // namespace

double input_gen_a(std::int64_t r, std::int64_t c) {
  return 1.0 + 1e-3 * static_cast<double>((r * 31 + c * 7) % 101);
}

double input_gen_b(std::int64_t r, std::int64_t c) {
  return -0.5 + 1e-3 * static_cast<double>((r * 13 + c * 3) % 97);
}

ExecProfile ExecProfile::capture() {
  ExecProfile p;
  p.exec = exec::default_exec_options();
  p.machine = sim::MachineOptions::from_env();
  return p;
}

JobResult run_job(const JobRequest& req, PlanCache& cache,
                  AdmissionController& admission,
                  const std::filesystem::path& tenant_root) {
  JobResult res;
  res.id = req.id;
  res.tenant = req.tenant;

  const hpf::BoundProgram bound = hpf::analyze(hpf::parse(req.source));
  compiler::CompileOptions options = req.options;
  if (options.memory_budget_elements == 0) {
    options.memory_budget_elements = default_memory_budget(bound);
  }
  res.memory_budget_elements = options.memory_budget_elements;
  res.footprint_elements =
      static_cast<std::int64_t>(bound.nprocs) * options.memory_budget_elements;
  res.key = make_plan_key(bound, options);

  bool served_from_cache = false;
  const std::shared_ptr<const CachedPlan> entry = cache.get_or_compile(
      res.key, [&] { return compiler::compile_sequence(bound, options); },
      &served_from_cache);
  res.cache_hit = served_from_cache;
  res.plan_count = static_cast<int>(entry->plans.size());

  if (req.op == JobOp::kCompile) {
    return res;
  }

  // Execution: hold a share of the server's global budget for the job's
  // whole footprint before spinning up the machine. The grant outlives the
  // SPMD region and releases on every exit path.
  AdmissionController::Grant grant =
      admission.acquire(req.tenant, res.footprint_elements);
  res.admission_wait_s = grant.wait_s();

  const std::filesystem::path job_dir =
      tenant_root /
      ("job-" + std::to_string(job_seq.fetch_add(1, std::memory_order_relaxed)));
  std::filesystem::create_directories(job_dir);
  DirGuard guard{job_dir};

  const std::span<const compiler::NodeProgram> plans(entry->plans.data(),
                                                     entry->plans.size());
  const compiler::NodeProgram& front = entry->plans.front();
  const std::set<std::string> outputs(entry->output_arrays.begin(),
                                      entry->output_arrays.end());

  // The machine runs under the knobs captured at request scope — not the
  // process globals of whatever moment this worker thread reached the job.
  sim::Machine machine(front.nprocs, options.machine, req.profile.machine);
  exec::ExecOptions base = req.profile.exec;
  base.verify = base.verify && options.verify;
  base.max_iters = req.max_iters;
  base.residual_tol = req.residual_tol;

  std::mutex mu;
  exec::StencilRunInfo stencil_info;
  std::uint64_t result_hash = 0;

  const sim::RunReport report = machine.run([&](sim::SpmdContext& ctx) {
    auto arrays =
        exec::create_sequence_arrays(ctx, plans, job_dir, options.disk);
    for (auto& [name, arr] : arrays) {
      if (!outputs.contains(name)) {
        arr->initialize(ctx, name == front.b ? input_gen_b : input_gen_a,
                        options.memory_budget_elements);
      }
    }
    sim::barrier(ctx);
    ctx.reset_accounting();

    exec::ArrayBindings bindings;
    for (auto& [name, arr] : arrays) {
      bindings[name] = arr.get();
    }
    exec::ExecOptions exec_options = base;
    exec::StencilRunInfo local_info;
    exec_options.stencil_info = &local_info;
    exec::execute_sequence(ctx, plans, bindings, exec_options);

    // Fingerprint the results: for stencil plans the live half of the
    // ping-pong pair, otherwise every pure output, in sorted name order.
    std::vector<std::string> to_hash;
    if (front.kind == compiler::ProgramKind::kStencil) {
      to_hash.push_back(local_info.result);
    } else {
      to_hash = entry->output_arrays;
    }
    std::uint64_t h = kFnvOffsetBasis;
    for (const std::string& name : to_hash) {
      const std::vector<double> global =
          arrays.at(name)->gather_global(ctx, options.memory_budget_elements);
      if (ctx.rank() == 0) {
        h = hash_named_array(name, global, h);
      }
    }
    std::lock_guard<std::mutex> lock(mu);
    if (ctx.rank() == 0) {
      result_hash = h;
    }
    if (!local_info.result.empty()) {
      stencil_info = local_info;  // allreduced: identical on every rank
    }
  });

  res.sim_time_s = report.max_sim_time_s();
  res.wall_time_s = report.wall_time_s;
  res.io_requests = report.total_io_requests();
  res.result_hash = result_hash;
  res.stencil_iterations = stencil_info.iterations;
  res.stencil_residual = stencil_info.final_residual;
  return res;
}

}  // namespace oocc::serve
