// One compile-or-run job inside the serve subsystem.
//
// run_job() is the server's whole data path for a single request: analyze
// the program, hit the PlanCache (single-flight compile on a miss), and —
// for op=run — acquire an AdmissionController grant for the job's global
// footprint (nprocs × per-processor budget), execute the cached plans on a
// fresh simulated machine over a job-private LAF directory under the
// tenant's tree, and fingerprint the outputs.
//
// Bit-identity contract: a run served from the cache must produce exactly
// the bytes a cold serial `oocc_compile --run` produces. That holds because
// (a) the cache stores the verified plans themselves (no re-lowering), and
// (b) inputs come from the same deterministic generators the CLI uses
// (input_gen_a / input_gen_b below — oocc_compile calls these too).
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>

#include "oocc/compiler/lower.hpp"
#include "oocc/exec/interp.hpp"
#include "oocc/serve/admission.hpp"
#include "oocc/serve/plan_cache.hpp"
#include "oocc/sim/machine.hpp"

namespace oocc::serve {

/// Deterministic input generators shared by oocc_compile and the server —
/// the foundation of the cached-vs-fresh bit-identity invariant.
double input_gen_a(std::int64_t r, std::int64_t c);
double input_gen_b(std::int64_t r, std::int64_t c);

/// Snapshot of every process-global execution knob a job depends on
/// (OOCC_NO_CACHE, OOCC_NO_VERIFY, OOCC_ASYNC, OOCC_JOURNAL,
/// OOCC_IO_THREADS, active fault plans). The daemon captures this once per
/// request, at request scope, and workers execute from the snapshot — a job
/// must never re-read process globals at whatever later moment a worker
/// thread picks it up.
struct ExecProfile {
  exec::ExecOptions exec;
  sim::MachineOptions machine;

  static ExecProfile capture();
};

enum class JobOp {
  kCompile,  ///< compile (or fetch) the plan; no execution, no admission
  kRun,      ///< compile/fetch, admit against the global budget, execute
};

struct JobRequest {
  std::string id;                ///< client-chosen; echoed in the result
  std::string tenant = "default";
  JobOp op = JobOp::kCompile;
  std::string source;            ///< HPF program text
  compiler::CompileOptions options;  ///< budget + optimizer knobs
  int max_iters = 10;            ///< stencil plans: max Jacobi sweeps
  double residual_tol = 0.0;     ///< stencil plans: early-stop threshold
  /// Process-global knobs captured when the request was accepted.
  ExecProfile profile;
};

struct JobResult {
  std::string id;
  std::string tenant;
  PlanKey key;
  bool cache_hit = false;        ///< plan served without running the compiler
  int plan_count = 0;
  std::int64_t memory_budget_elements = 0;  ///< per-processor, post-default
  std::int64_t footprint_elements = 0;      ///< nprocs × per-processor budget
  double admission_wait_s = 0.0;
  double sim_time_s = 0.0;       ///< op=run: simulated makespan
  double wall_time_s = 0.0;      ///< op=run: host wall clock of the region
  std::uint64_t io_requests = 0; ///< op=run: physical LAF requests
  /// op=run: FNV-1a fingerprint over (name, column-major bytes) of every
  /// output array — stencil plans fingerprint the live half of the
  /// ping-pong pair. Equal fingerprints == bit-identical results.
  std::uint64_t result_hash = 0;
  int stencil_iterations = 0;
  double stencil_residual = 0.0;
};

/// Executes one job end to end. `tenant_root` is the tenant's private LAF
/// tree; the job creates (and removes) a job-private subdirectory in it.
/// Throws oocc::Error on parse/compile/execution failure.
JobResult run_job(const JobRequest& req, PlanCache& cache,
                  AdmissionController& admission,
                  const std::filesystem::path& tenant_root);

/// The per-processor default budget rule shared with oocc_compile, applied
/// when the request leaves memory_budget_elements at 0.
/// (Declared in hash.hpp as default_memory_budget.)

}  // namespace oocc::serve
