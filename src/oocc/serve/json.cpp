#include "oocc/serve/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

#include "oocc/util/error.hpp"

namespace oocc::serve {

Json Json::array() {
  Json j;
  j.kind_ = Kind::kArray;
  return j;
}

Json Json::object() {
  Json j;
  j.kind_ = Kind::kObject;
  return j;
}

bool Json::as_bool() const {
  OOCC_CHECK(kind_ == Kind::kBool, ErrorCode::kRuntimeError,
             "json: value is not a boolean");
  return bool_;
}

std::int64_t Json::as_int() const {
  if (kind_ == Kind::kDouble) {
    return static_cast<std::int64_t>(double_);
  }
  OOCC_CHECK(kind_ == Kind::kInt, ErrorCode::kRuntimeError,
             "json: value is not a number");
  return int_;
}

double Json::as_double() const {
  if (kind_ == Kind::kInt) {
    return static_cast<double>(int_);
  }
  OOCC_CHECK(kind_ == Kind::kDouble, ErrorCode::kRuntimeError,
             "json: value is not a number");
  return double_;
}

const std::string& Json::as_string() const {
  OOCC_CHECK(kind_ == Kind::kString, ErrorCode::kRuntimeError,
             "json: value is not a string");
  return string_;
}

const std::vector<Json>& Json::as_array() const {
  OOCC_CHECK(kind_ == Kind::kArray, ErrorCode::kRuntimeError,
             "json: value is not an array");
  return array_;
}

const std::map<std::string, Json>& Json::as_object() const {
  OOCC_CHECK(kind_ == Kind::kObject, ErrorCode::kRuntimeError,
             "json: value is not an object");
  return object_;
}

bool Json::has(const std::string& key) const {
  if (kind_ != Kind::kObject) {
    return false;
  }
  const auto it = object_.find(key);
  return it != object_.end() && !it->second.is_null();
}

bool Json::get_bool(const std::string& key, bool fallback) const {
  return has(key) ? object_.at(key).as_bool() : fallback;
}

std::int64_t Json::get_int(const std::string& key,
                           std::int64_t fallback) const {
  return has(key) ? object_.at(key).as_int() : fallback;
}

double Json::get_double(const std::string& key, double fallback) const {
  return has(key) ? object_.at(key).as_double() : fallback;
}

std::string Json::get_string(const std::string& key,
                             const std::string& fallback) const {
  return has(key) ? object_.at(key).as_string() : fallback;
}

Json& Json::set(const std::string& key, Json value) {
  OOCC_CHECK(kind_ == Kind::kObject || kind_ == Kind::kNull,
             ErrorCode::kRuntimeError, "json: set() on a non-object");
  kind_ = Kind::kObject;
  object_[key] = std::move(value);
  return *this;
}

Json& Json::push_back(Json value) {
  OOCC_CHECK(kind_ == Kind::kArray || kind_ == Kind::kNull,
             ErrorCode::kRuntimeError, "json: push_back() on a non-array");
  kind_ = Kind::kArray;
  array_.push_back(std::move(value));
  return *this;
}

namespace {

void dump_string(const std::string& s, std::string& out) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void dump_value(const Json& j, std::string& out) {
  switch (j.kind()) {
    case Json::Kind::kNull:
      out += "null";
      return;
    case Json::Kind::kBool:
      out += j.as_bool() ? "true" : "false";
      return;
    case Json::Kind::kInt: {
      char buf[32];
      const auto [ptr, ec] =
          std::to_chars(buf, buf + sizeof(buf), j.as_int());
      (void)ec;
      out.append(buf, ptr);
      return;
    }
    case Json::Kind::kDouble: {
      char buf[40];
      std::snprintf(buf, sizeof(buf), "%.17g", j.as_double());
      out += buf;
      return;
    }
    case Json::Kind::kString:
      dump_string(j.as_string(), out);
      return;
    case Json::Kind::kArray: {
      out.push_back('[');
      bool first = true;
      for (const Json& e : j.as_array()) {
        if (!first) {
          out.push_back(',');
        }
        first = false;
        dump_value(e, out);
      }
      out.push_back(']');
      return;
    }
    case Json::Kind::kObject: {
      out.push_back('{');
      bool first = true;
      for (const auto& [k, v] : j.as_object()) {
        if (!first) {
          out.push_back(',');
        }
        first = false;
        dump_string(k, out);
        out.push_back(':');
        dump_value(v, out);
      }
      out.push_back('}');
      return;
    }
  }
}

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Json parse_document() {
    Json v = parse_value();
    skip_ws();
    OOCC_CHECK(pos_ == text_.size(), ErrorCode::kParseError,
               "json: trailing characters at offset " << pos_);
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    OOCC_CHECK(pos_ < text_.size(), ErrorCode::kParseError,
               "json: unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    OOCC_CHECK(peek() == c, ErrorCode::kParseError,
               "json: expected '" << c << "' at offset " << pos_ << ", got '"
                                  << text_[pos_] << "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    const std::size_t n = std::char_traits<char>::length(lit);
    if (text_.compare(pos_, n, lit) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }

  Json parse_value() {
    const char c = peek();
    switch (c) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"':
        return Json(parse_string());
      case 't':
        OOCC_CHECK(consume_literal("true"), ErrorCode::kParseError,
                   "json: bad literal at offset " << pos_);
        return Json(true);
      case 'f':
        OOCC_CHECK(consume_literal("false"), ErrorCode::kParseError,
                   "json: bad literal at offset " << pos_);
        return Json(false);
      case 'n':
        OOCC_CHECK(consume_literal("null"), ErrorCode::kParseError,
                   "json: bad literal at offset " << pos_);
        return Json();
      default:
        return parse_number();
    }
  }

  Json parse_object() {
    expect('{');
    Json obj = Json::object();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    while (true) {
      skip_ws();
      const std::string key = parse_string();
      expect(':');
      obj.set(key, parse_value());
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return obj;
    }
  }

  Json parse_array() {
    expect('[');
    Json arr = Json::array();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    while (true) {
      arr.push_back(parse_value());
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return arr;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      OOCC_CHECK(pos_ < text_.size(), ErrorCode::kParseError,
                 "json: unterminated string");
      const char c = text_[pos_++];
      if (c == '"') {
        return out;
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      OOCC_CHECK(pos_ < text_.size(), ErrorCode::kParseError,
                 "json: unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u': {
          OOCC_CHECK(pos_ + 4 <= text_.size(), ErrorCode::kParseError,
                     "json: truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              OOCC_THROW(ErrorCode::kParseError,
                         "json: bad hex digit in \\u escape");
            }
          }
          // The protocol only escapes control characters; encode the code
          // point as UTF-8 for completeness.
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          OOCC_THROW(ErrorCode::kParseError,
                     "json: unknown escape '\\" << e << "'");
      }
    }
  }

  Json parse_number() {
    skip_ws();
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    bool is_double = false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '-' || c == '+') {
        // '-'/'+' only continue a number inside an exponent; the loop is
        // permissive and the from_chars below is the arbiter.
        is_double = is_double || c == '.' || c == 'e' || c == 'E';
        ++pos_;
      } else {
        break;
      }
    }
    OOCC_CHECK(pos_ > start, ErrorCode::kParseError,
               "json: expected a value at offset " << start);
    const std::string_view tok{text_.data() + start, pos_ - start};
    if (!is_double) {
      std::int64_t v = 0;
      const auto [ptr, ec] =
          std::from_chars(tok.data(), tok.data() + tok.size(), v);
      OOCC_CHECK(ec == std::errc() && ptr == tok.data() + tok.size(),
                 ErrorCode::kParseError, "json: bad integer '" << tok << "'");
      return Json(v);
    }
    double d = 0.0;
    const auto [ptr, ec] =
        std::from_chars(tok.data(), tok.data() + tok.size(), d);
    OOCC_CHECK(ec == std::errc() && ptr == tok.data() + tok.size(),
               ErrorCode::kParseError, "json: bad number '" << tok << "'");
    return Json(d);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string Json::dump() const {
  std::string out;
  dump_value(*this, out);
  return out;
}

Json Json::parse(const std::string& text) {
  return Parser(text).parse_document();
}

}  // namespace oocc::serve
