// Minimal JSON for the serve protocol (serve/proto: one object per line).
//
// The compile server speaks newline-delimited JSON over a Unix-domain
// socket (or stdio), so it needs a parser/writer that round-trips program
// text — including embedded newlines — through one framed line. This is a
// deliberately small implementation: objects, arrays, strings (with the
// standard escapes), doubles/int64s, booleans and null. No comments, no
// NaN/Inf, and \uXXXX escapes outside the BMP-ASCII range are passed
// through byte-wise; the protocol never needs them.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace oocc::serve {

/// One JSON value. Numbers keep an integer/double distinction so budgets
/// and counters survive a round trip exactly.
class Json {
 public:
  enum class Kind { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  Json() = default;
  Json(bool b) : kind_(Kind::kBool), bool_(b) {}                  // NOLINT
  Json(std::int64_t i) : kind_(Kind::kInt), int_(i) {}            // NOLINT
  Json(int i) : kind_(Kind::kInt), int_(i) {}                     // NOLINT
  Json(std::uint64_t i)                                           // NOLINT
      : kind_(Kind::kInt), int_(static_cast<std::int64_t>(i)) {}
  Json(double d) : kind_(Kind::kDouble), double_(d) {}            // NOLINT
  Json(std::string s) : kind_(Kind::kString), string_(std::move(s)) {}  // NOLINT
  Json(const char* s) : kind_(Kind::kString), string_(s) {}       // NOLINT

  static Json array();
  static Json object();

  Kind kind() const noexcept { return kind_; }
  bool is_null() const noexcept { return kind_ == Kind::kNull; }
  bool is_object() const noexcept { return kind_ == Kind::kObject; }
  bool is_array() const noexcept { return kind_ == Kind::kArray; }
  bool is_string() const noexcept { return kind_ == Kind::kString; }
  bool is_number() const noexcept {
    return kind_ == Kind::kInt || kind_ == Kind::kDouble;
  }
  bool is_bool() const noexcept { return kind_ == Kind::kBool; }

  /// Typed accessors; each throws Error(kRuntimeError) on a kind mismatch.
  bool as_bool() const;
  std::int64_t as_int() const;
  double as_double() const;
  const std::string& as_string() const;
  const std::vector<Json>& as_array() const;
  const std::map<std::string, Json>& as_object() const;

  /// Object convenience: member lookup with a typed default. `has` is
  /// false-membership aware (a present null counts as absent).
  bool has(const std::string& key) const;
  bool get_bool(const std::string& key, bool fallback) const;
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  double get_double(const std::string& key, double fallback) const;
  std::string get_string(const std::string& key,
                         const std::string& fallback) const;

  /// Object/array mutation.
  Json& set(const std::string& key, Json value);
  Json& push_back(Json value);

  /// Serializes to a single line (no interior newlines: every control
  /// character in strings is escaped), suitable for the framed protocol.
  std::string dump() const;

  /// Parses exactly one JSON value from `text` (surrounding whitespace
  /// allowed). Throws Error(kParseError) on malformed input or trailing
  /// garbage.
  static Json parse(const std::string& text);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<Json> array_;
  std::map<std::string, Json> object_;
};

}  // namespace oocc::serve
