#include "oocc/serve/plan_cache.hpp"

#include <chrono>
#include <set>

namespace oocc::serve {

std::vector<std::string> collect_output_arrays(
    std::span<const compiler::NodeProgram> plans) {
  std::set<std::string> outputs;
  for (const compiler::NodeProgram& plan : plans) {
    for (const auto& [name, pa] : plan.arrays) {
      if (pa.is_output) {
        outputs.insert(name);
      }
    }
  }
  return {outputs.begin(), outputs.end()};
}

std::shared_ptr<const CachedPlan> PlanCache::get_or_compile(
    const PlanKey& key, const CompileFn& compile, bool* served_from_cache) {
  std::promise<std::shared_ptr<const CachedPlan>> promise;
  Flight flight;
  bool owner = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = flights_.find(key);
    if (it != flights_.end()) {
      flight = it->second;
      // A published entry is ready immediately; an in-flight one makes
      // this caller a joiner. Distinguish for the stats without blocking
      // under the lock.
      if (flight.wait_for(std::chrono::seconds(0)) ==
          std::future_status::ready) {
        ++stats_.hits;
      } else {
        ++stats_.inflight_waits;
      }
    } else {
      owner = true;
      ++stats_.misses;
      flight = promise.get_future().share();
      flights_.emplace(key, flight);
    }
  }
  if (served_from_cache != nullptr) {
    *served_from_cache = !owner;
  }

  if (!owner) {
    return flight.get();  // rethrows the owner's compile error, if any
  }

  try {
    auto entry = std::make_shared<CachedPlan>();
    entry->key = key;
    entry->plans = compile();
    entry->output_arrays = collect_output_arrays(
        std::span<const compiler::NodeProgram>(entry->plans.data(),
                                               entry->plans.size()));
    promise.set_value(entry);
    return entry;
  } catch (...) {
    // Publish the failure to every joiner, then forget the key so a later
    // request retries instead of replaying a stale exception forever.
    promise.set_exception(std::current_exception());
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.failures;
      flights_.erase(key);
    }
    throw;
  }
}

std::shared_ptr<const CachedPlan> PlanCache::lookup(const PlanKey& key) const {
  Flight flight;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = flights_.find(key);
    if (it == flights_.end() ||
        it->second.wait_for(std::chrono::seconds(0)) !=
            std::future_status::ready) {
      return nullptr;
    }
    flight = it->second;
  }
  try {
    return flight.get();
  } catch (...) {
    return nullptr;
  }
}

void PlanCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  // Only drop settled flights; erasing an in-flight future here would be
  // harmless (the owner holds its own promise) but would break the
  // single-flight guarantee for concurrent requesters.
  for (auto it = flights_.begin(); it != flights_.end();) {
    if (it->second.wait_for(std::chrono::seconds(0)) ==
        std::future_status::ready) {
      it = flights_.erase(it);
    } else {
      ++it;
    }
  }
}

PlanCache::Stats PlanCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s = stats_;
  s.entries = flights_.size();
  return s;
}

}  // namespace oocc::serve
