// Thread-safe, single-flight cache of compiled-and-verified plans.
//
// The compile server's whole throughput argument rests on compiling a
// program once and serving the verified NodeProgram sequence to every
// later request with the same PlanKey. Three properties matter:
//
//  * thread safety — worker threads hit the cache concurrently;
//  * single flight — N concurrent requests for the same missing key run
//    the compiler exactly once; the other N-1 block on the first compile
//    and share its result (tests assert "no duplicate lowering");
//  * verified-once — compile_sequence stamps NodeProgram::verified, and the
//    cache stores the stamped plans, so a cache hit skips both lowering
//    and re-verification (the executor never re-checks stamped plans).
//
// Entries are immutable once published (shared_ptr<const CachedPlan>), so
// any number of concurrent executions may walk the same step trees.
#pragma once

#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "oocc/compiler/plan.hpp"
#include "oocc/serve/hash.hpp"

namespace oocc::serve {

/// One compiled program sequence, immutable after publication.
struct CachedPlan {
  PlanKey key;
  std::vector<compiler::NodeProgram> plans;
  /// Arrays written by any plan of the sequence (is_output), including
  /// ones also read (in-place / staged updates); every array NOT listed
  /// here is a pure input that job setup must initialize. Precomputed so
  /// job setup need not rescan the plans.
  std::vector<std::string> output_arrays;
};

class PlanCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;           ///< served from a published entry
    std::uint64_t misses = 0;         ///< ran the compiler
    std::uint64_t inflight_waits = 0; ///< joined another thread's compile
    std::uint64_t failures = 0;       ///< compiles that threw
    std::size_t entries = 0;
  };

  using CompileFn = std::function<std::vector<compiler::NodeProgram>()>;

  /// Returns the cached plans for `key`, compiling at most once across all
  /// concurrent callers. On compile failure the error propagates to every
  /// waiter of that flight and the key is forgotten, so a later request
  /// retries (the failure may have been transient, e.g. budget-dependent).
  /// `served_from_cache`, when non-null, reports whether this caller got an
  /// existing flight (published or joined) rather than running the compiler.
  std::shared_ptr<const CachedPlan> get_or_compile(
      const PlanKey& key, const CompileFn& compile,
      bool* served_from_cache = nullptr);

  /// Lookup without compiling; nullptr when absent or still in flight.
  std::shared_ptr<const CachedPlan> lookup(const PlanKey& key) const;

  /// Drops every published entry (bench cold-path control). In-flight
  /// compiles are unaffected and publish into the cleared map.
  void clear();

  Stats stats() const;

 private:
  using Flight = std::shared_future<std::shared_ptr<const CachedPlan>>;

  mutable std::mutex mu_;
  std::map<PlanKey, Flight> flights_;
  Stats stats_;
};

/// Fills CachedPlan::output_arrays: arrays some plan writes (is_output).
std::vector<std::string> collect_output_arrays(
    std::span<const compiler::NodeProgram> plans);

}  // namespace oocc::serve
