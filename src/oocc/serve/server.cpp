#include "oocc/serve/server.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <deque>
#include <istream>
#include <ostream>
#include <thread>
#include <vector>

#include "oocc/hpf/parser.hpp"
#include "oocc/hpf/programs.hpp"
#include "oocc/util/log.hpp"

namespace oocc::serve {

namespace {

std::string hex64(std::uint64_t v) {
  char buf[19];
  std::snprintf(buf, sizeof(buf), "0x%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

/// Tenant names become directory components; keep them boring. '/' and
/// every other non-portable character map to '_', so the result is always
/// a single path component; a leading '.' also maps to '_' so "." and ".."
/// (which would resolve outside the work root and later be remove_all'd by
/// the job DirGuard) and hidden directories are impossible by construction.
std::string sanitize_tenant(const std::string& tenant) {
  std::string out;
  for (const char c : tenant) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '-' || c == '_' ||
                    c == '.';
    out.push_back(ok ? c : '_');
  }
  if (out.empty()) {
    out = "default";
  }
  if (out.front() == '.') {
    out.front() = '_';
  }
  return out;
}

}  // namespace

Server::Server(ServerOptions options)
    : options_(std::move(options)),
      admission_(options_.total_budget_elements) {
  if (options_.work_root.empty()) {
    owned_root_ = std::make_unique<io::TempDir>("oocc-serve");
    root_ = owned_root_->path();
  } else {
    root_ = options_.work_root;
    std::filesystem::create_directories(root_);
  }
}

std::filesystem::path Server::tenant_root(const std::string& tenant) {
  const std::string safe = sanitize_tenant(tenant);
  const std::filesystem::path dir = root_ / safe;
  std::lock_guard<std::mutex> lock(tenants_mu_);
  if (known_tenants_.insert(safe).second) {
    std::filesystem::create_directories(dir);
  }
  return dir;
}

JobRequest Server::parse_request(const std::string& line) const {
  const Json req = Json::parse(line);
  OOCC_CHECK(req.is_object(), ErrorCode::kParseError,
             "request must be a JSON object, got: " << line.substr(0, 80));

  JobRequest job;
  job.id = req.get_string("id", "");
  job.tenant = req.get_string("tenant", "default");

  const std::string op = req.get_string("op", "compile");
  if (op == "compile") {
    job.op = JobOp::kCompile;
  } else if (op == "run") {
    job.op = JobOp::kRun;
  } else {
    OOCC_THROW(ErrorCode::kParseError, "unknown op '" << op << "'");
  }

  if (req.has("program")) {
    job.source = req.get_string("program", "");
  } else if (req.has("builtin")) {
    const std::string builtin = req.get_string("builtin", "");
    const std::int64_t n = req.get_int("n", 64);
    const int p = static_cast<int>(req.get_int("p", 4));
    if (builtin == "gaxpy") {
      job.source = hpf::gaxpy_source(n, p);
    } else if (builtin == "elementwise") {
      job.source = hpf::elementwise_source(n, n, p, 3);
    } else if (builtin == "stencil") {
      job.source = hpf::stencil_source(n, p);
    } else {
      OOCC_THROW(ErrorCode::kParseError,
                 "unknown builtin '" << builtin << "'");
    }
  } else {
    OOCC_THROW(ErrorCode::kParseError,
               "request needs \"program\" or \"builtin\"");
  }

  compiler::CompileOptions& o = job.options;
  o.memory_budget_elements = req.get_int("memory", 0);
  o.memory_strategy = req.get_bool("equal_split", false)
                          ? compiler::MemoryStrategy::kEqualSplit
                          : compiler::MemoryStrategy::kAccessWeighted;
  o.enable_access_reorganization = req.get_bool("access_reorg", true);
  o.enable_storage_reorganization = req.get_bool("storage_reorg", true);
  o.enable_statement_fusion = req.get_bool("fuse", true);
  const std::string prefetch = req.get_string("prefetch", "off");
  if (prefetch == "off") {
    o.prefetch = compiler::PrefetchMode::kOff;
  } else if (prefetch == "on") {
    o.prefetch = compiler::PrefetchMode::kOn;
  } else if (prefetch == "auto") {
    o.prefetch = compiler::PrefetchMode::kAuto;
  } else {
    OOCC_THROW(ErrorCode::kParseError,
               "unknown prefetch mode '" << prefetch << "'");
  }
  const std::string opt = req.get_string("opt", "heuristic");
  if (opt == "heuristic") {
    o.opt = compiler::OptMode::kHeuristic;
  } else if (opt == "search") {
    o.opt = compiler::OptMode::kSearch;
  } else {
    OOCC_THROW(ErrorCode::kParseError,
               "unknown optimizer mode '" << opt << "'");
  }
  o.search_passes =
      static_cast<int>(req.get_int("search_passes", o.search_passes));
  o.verify = req.get_bool("verify", true);

  job.max_iters = static_cast<int>(req.get_int("iters", 10));
  job.residual_tol = req.get_double("tol", 0.0);

  // Request scope is THE capture point for process-global knobs: whatever
  // OOCC_ASYNC / OOCC_NO_VERIFY / OOCC_NO_CACHE / OOCC_JOURNAL /
  // OOCC_IO_THREADS say right now travels with the job, however long it
  // queues and whichever worker finally runs it.
  job.profile = ExecProfile::capture();
  return job;
}

JobResult Server::serve_one(const JobRequest& req) {
  jobs_in_flight_.fetch_add(1, std::memory_order_relaxed);
  try {
    JobResult res =
        run_job(req, cache_, admission_, tenant_root(req.tenant));
    jobs_in_flight_.fetch_sub(1, std::memory_order_relaxed);
    jobs_done_.fetch_add(1, std::memory_order_relaxed);
    return res;
  } catch (...) {
    jobs_in_flight_.fetch_sub(1, std::memory_order_relaxed);
    jobs_failed_.fetch_add(1, std::memory_order_relaxed);
    throw;
  }
}

Json Server::result_json(const JobResult& res) {
  Json out = Json::object();
  out.set("id", res.id);
  out.set("ok", true);
  out.set("tenant", res.tenant);
  out.set("key", res.key.to_string());
  out.set("key_digest", hex64(res.key.digest()));
  out.set("program_hash", hex64(res.key.program_hash));
  out.set("cache_hit", res.cache_hit);
  out.set("plans", res.plan_count);
  out.set("memory", res.memory_budget_elements);
  out.set("footprint", res.footprint_elements);
  out.set("wait_s", res.admission_wait_s);
  if (res.wall_time_s > 0.0 || res.io_requests > 0) {
    out.set("sim_s", res.sim_time_s);
    out.set("wall_s", res.wall_time_s);
    out.set("io_requests", res.io_requests);
    out.set("result_hash", hex64(res.result_hash));
    if (res.stencil_iterations > 0) {
      out.set("iterations", res.stencil_iterations);
      out.set("residual", res.stencil_residual);
    }
  }
  return out;
}

Json Server::handle_line(const std::string& line) {
  std::string id;
  try {
    // Control ops are cheap to special-case before full request parsing.
    const Json req = Json::parse(line);
    OOCC_CHECK(req.is_object(), ErrorCode::kParseError,
               "request must be a JSON object");
    id = req.get_string("id", "");
    const std::string op = req.get_string("op", "compile");
    if (op == "ping") {
      Json out = Json::object();
      out.set("id", id);
      out.set("ok", true);
      out.set("pong", true);
      return out;
    }
    if (op == "stats") {
      Json out = Json::object();
      out.set("id", id);
      out.set("ok", true);
      out.set("stats", stats_json());
      return out;
    }
    if (op == "shutdown") {
      shutdown_.store(true, std::memory_order_release);
      Json out = Json::object();
      out.set("id", id);
      out.set("ok", true);
      out.set("shutdown", true);
      return out;
    }
    return result_json(serve_one(parse_request(line)));
  } catch (const Error& e) {
    Json out = Json::object();
    out.set("id", id);
    out.set("ok", false);
    out.set("code", std::string(error_code_name(e.code())));
    out.set("error", e.what());
    return out;
  } catch (const std::exception& e) {
    Json out = Json::object();
    out.set("id", id);
    out.set("ok", false);
    out.set("code", "exception");
    out.set("error", e.what());
    return out;
  }
}

Json Server::stats_json() const {
  const PlanCache::Stats cs = cache_.stats();
  const AdmissionController::Stats as = admission_.stats();
  const double up_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    started_)
          .count();
  const std::uint64_t done = jobs_done_.load(std::memory_order_relaxed);

  Json cache = Json::object();
  cache.set("hits", cs.hits);
  cache.set("misses", cs.misses);
  cache.set("inflight_waits", cs.inflight_waits);
  cache.set("failures", cs.failures);
  cache.set("entries", static_cast<std::int64_t>(cs.entries));

  Json admission = Json::object();
  admission.set("total_elements", as.total_elements);
  admission.set("in_use_elements", as.in_use_elements);
  admission.set("peak_in_use_elements", as.peak_in_use_elements);
  admission.set("admitted", as.admitted);
  admission.set("waits", as.waits);
  admission.set("wait_time_s", as.wait_time_s);
  admission.set("waiting_jobs", as.waiting_jobs);
  Json tenants = Json::object();
  for (const auto& [name, ts] : as.tenants) {
    Json t = Json::object();
    t.set("admitted", ts.admitted);
    t.set("waits", ts.waits);
    t.set("wait_time_s", ts.wait_time_s);
    t.set("elements_in_use", ts.elements_in_use);
    t.set("jobs_in_flight", ts.jobs_in_flight);
    tenants.set(name, std::move(t));
  }
  admission.set("tenants", std::move(tenants));

  Json jobs = Json::object();
  jobs.set("done", done);
  jobs.set("failed", jobs_failed_.load(std::memory_order_relaxed));
  jobs.set("in_flight", jobs_in_flight_.load(std::memory_order_relaxed));

  Json out = Json::object();
  out.set("cache", std::move(cache));
  out.set("admission", std::move(admission));
  out.set("jobs", std::move(jobs));
  out.set("uptime_s", up_s);
  out.set("programs_per_sec", up_s > 0.0 ? static_cast<double>(done) / up_s
                                         : 0.0);
  return out;
}

std::string Server::stats_line() const {
  const PlanCache::Stats cs = cache_.stats();
  const AdmissionController::Stats as = admission_.stats();
  const double up_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    started_)
          .count();
  const std::uint64_t done = jobs_done_.load(std::memory_order_relaxed);
  char buf[256];
  std::snprintf(
      buf, sizeof(buf),
      "serve: %llu jobs (%d in flight), cache %llu hits / %llu misses / "
      "%llu joins, admission %llu waits %.2fs, %.2f programs/s",
      static_cast<unsigned long long>(done),
      jobs_in_flight_.load(std::memory_order_relaxed),
      static_cast<unsigned long long>(cs.hits),
      static_cast<unsigned long long>(cs.misses),
      static_cast<unsigned long long>(cs.inflight_waits),
      static_cast<unsigned long long>(as.waits), as.wait_time_s,
      up_s > 0.0 ? static_cast<double>(done) / up_s : 0.0);
  return buf;
}

void serve_stdio(Server& server, std::istream& in, std::ostream& out) {
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) {
      continue;
    }
    out << server.handle_line(line).dump() << "\n";
    out.flush();
    if (server.shutdown_requested()) {
      break;
    }
  }
}

namespace {

/// One accepted connection: reader thread + serialized writes. Jobs run on
/// the shared worker pool, so a single connection can keep several jobs in
/// flight; responses carry the request id for correlation.
struct Connection {
  int fd = -1;
  std::mutex write_mu;
  std::atomic<int> pending{0};  ///< jobs queued or running
  std::atomic<bool> closed{false};

  /// Best-effort framed write. MSG_NOSIGNAL: a client that disconnected
  /// mid-job must not SIGPIPE the daemon; the response is simply dropped.
  void write_line(const std::string& line) {
    std::lock_guard<std::mutex> lock(write_mu);
    if (closed.load(std::memory_order_acquire)) {
      return;
    }
    std::string framed = line;
    framed.push_back('\n');
    std::size_t off = 0;
    while (off < framed.size()) {
      const ssize_t n = ::send(fd, framed.data() + off, framed.size() - off,
                               MSG_NOSIGNAL);
      if (n <= 0) {
        closed.store(true, std::memory_order_release);
        return;
      }
      off += static_cast<std::size_t>(n);
    }
  }

  /// Unblocks a reader parked in recv() on an idle client (daemon
  /// shutdown): half-close the read side; pending responses still flush.
  /// write_mu guards against racing close_fd — shutting down a recycled
  /// fd number would hit an unrelated descriptor.
  void shutdown_read() {
    std::lock_guard<std::mutex> lock(write_mu);
    if (!closed.load(std::memory_order_acquire)) {
      ::shutdown(fd, SHUT_RD);
    }
  }

  /// Final close, owned by the reader thread once its drain completes.
  void close_fd() {
    std::lock_guard<std::mutex> lock(write_mu);
    closed.store(true, std::memory_order_release);
    ::close(fd);
  }
};

struct WorkItem {
  std::shared_ptr<Connection> conn;
  std::string line;
};

class WorkQueue {
 public:
  void push(WorkItem item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
  }

  /// Blocks for work; empty conn means "stop".
  WorkItem pop() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return stopped_ || !items_.empty(); });
    if (items_.empty()) {
      return {};
    }
    WorkItem item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  void stop() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stopped_ = true;
    }
    cv_.notify_all();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<WorkItem> items_;
  bool stopped_ = false;
};

}  // namespace

int serve_socket(Server& server, const std::filesystem::path& socket_path,
                 int workers) {
  if (workers <= 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    workers = static_cast<int>(std::min(8u, std::max(2u, 2 * hw)));
  }

  const int listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  OOCC_CHECK(listen_fd >= 0, ErrorCode::kIoError,
             "socket() failed: " << std::strerror(errno));
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  const std::string path = socket_path.string();
  OOCC_CHECK(path.size() < sizeof(addr.sun_path), ErrorCode::kInvalidArgument,
             "socket path too long: " << path);
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  ::unlink(path.c_str());
  OOCC_CHECK(::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr),
                    sizeof(addr)) == 0,
             ErrorCode::kIoError,
             "bind(" << path << ") failed: " << std::strerror(errno));
  OOCC_CHECK(::listen(listen_fd, 64) == 0, ErrorCode::kIoError,
             "listen(" << path << ") failed: " << std::strerror(errno));

  WorkQueue queue;
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    pool.emplace_back([&] {
      for (;;) {
        WorkItem item = queue.pop();
        if (item.conn == nullptr) {
          return;
        }
        const Json response = server.handle_line(item.line);
        item.conn->write_line(response.dump());
        item.conn->pending.fetch_sub(1, std::memory_order_acq_rel);
      }
    });
  }

  // Accept loop. A shutdown request flips the server flag; the accept loop
  // notices after at most one more accept because handle_line runs on the
  // workers — so shutdown closes the listener from a helper thread instead.
  std::atomic<bool> accepting{true};
  std::thread shutdown_watch([&] {
    while (accepting.load(std::memory_order_acquire) &&
           !server.shutdown_requested()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    ::shutdown(listen_fd, SHUT_RDWR);
    ::close(listen_fd);
  });

  int connections = 0;
  std::vector<std::thread> readers;
  std::vector<std::shared_ptr<Connection>> conns;  // main-thread only
  for (;;) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      break;  // listener closed (shutdown) or fatal error
    }
    ++connections;
    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    conns.push_back(conn);
    readers.emplace_back([&server, &queue, conn] {
      std::string buffer;
      char chunk[4096];
      for (;;) {
        const ssize_t n = ::recv(conn->fd, chunk, sizeof(chunk), 0);
        if (n <= 0) {
          break;  // disconnect (mid-job is fine: responses are dropped)
        }
        buffer.append(chunk, static_cast<std::size_t>(n));
        std::size_t pos;
        while ((pos = buffer.find('\n')) != std::string::npos) {
          std::string line = buffer.substr(0, pos);
          buffer.erase(0, pos + 1);
          if (line.empty()) {
            continue;
          }
          conn->pending.fetch_add(1, std::memory_order_acq_rel);
          queue.push(WorkItem{conn, std::move(line)});
        }
        if (server.shutdown_requested()) {
          break;
        }
      }
      // Drain: in-flight jobs of this connection still complete (their
      // writes turn into no-ops once the peer is gone).
      while (conn->pending.load(std::memory_order_acquire) > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      conn->close_fd();
    });
  }

  accepting.store(false, std::memory_order_release);
  shutdown_watch.join();
  // The listener is closed, so no new connections arrive; readers parked
  // in recv() on clients that sent nothing would otherwise block the join
  // loop forever — half-close every live connection to wake them.
  for (const auto& conn : conns) {
    conn->shutdown_read();
  }
  for (std::thread& t : readers) {
    t.join();
  }
  queue.stop();
  for (std::thread& t : pool) {
    t.join();
  }
  ::unlink(path.c_str());
  return connections;
}

}  // namespace oocc::serve
