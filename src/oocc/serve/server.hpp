// The compile server: plan cache + admission control + worker scheduler.
//
// Layering (docs/serve.md):
//
//   SocketDaemon / stdio loop        framing: one JSON object per line
//        │  parse_request()          capture ExecProfile at request scope
//        ▼
//   Server::serve_one()              thread-safe synchronous core
//        │
//        ├─ PlanCache                single-flight compile, verified plans
//        ├─ AdmissionController      fair-share of the global budget
//        └─ run_job()                execute over a tenant-private LAF tree
//
// The synchronous core is what tests and the bench drive in-process; the
// daemon merely adds sockets, a worker pool and JSON framing on top. Every
// response is a single line; errors come back as {"ok":false,...} on the
// same connection — a malformed request never kills the server.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <set>
#include <string>

#include "oocc/io/file_backend.hpp"
#include "oocc/serve/admission.hpp"
#include "oocc/serve/job.hpp"
#include "oocc/serve/json.hpp"
#include "oocc/serve/plan_cache.hpp"

namespace oocc::serve {

struct ServerOptions {
  /// Global admission budget in elements, fair-shared across tenants. A
  /// job's footprint is nprocs × its per-processor compile budget.
  std::int64_t total_budget_elements = 1 << 22;
  /// Root of the per-tenant LAF trees; empty = a private TempDir removed on
  /// shutdown.
  std::filesystem::path work_root;
};

class Server {
 public:
  explicit Server(ServerOptions options);

  /// Parses one request line (see docs/serve.md for the schema) into a
  /// JobRequest, capturing the process-global ExecProfile *now* — at
  /// request scope — so later execution on a worker thread cannot observe
  /// knob changes that happened after the request was accepted. Throws
  /// Error(kParseError) on malformed input.
  JobRequest parse_request(const std::string& line) const;

  /// Thread-safe synchronous core: runs one job on the calling thread
  /// (compile ops never block on admission; run ops do). Throws on failure.
  JobResult serve_one(const JobRequest& req);

  /// JSON-in, JSON-out wrapper used by the daemon, the stdio loop and the
  /// tests. Never throws: parse/compile/run failures become
  /// {"ok":false,"error":...}. Handles the control ops (ping, stats,
  /// shutdown) that never reach serve_one.
  Json handle_line(const std::string& line);

  /// Renders a JobResult as the wire response object.
  static Json result_json(const JobResult& res);

  Json stats_json() const;

  /// One greppable line: "serve: N jobs (M in flight), cache ..., X.XX
  /// programs/s". The daemon prints it on shutdown; op=stats returns the
  /// same numbers as JSON.
  std::string stats_line() const;

  /// True once an op=shutdown request was handled.
  bool shutdown_requested() const noexcept {
    return shutdown_.load(std::memory_order_acquire);
  }

  PlanCache& cache() noexcept { return cache_; }
  AdmissionController& admission() noexcept { return admission_; }
  const std::filesystem::path& work_root() const noexcept { return root_; }

 private:
  std::filesystem::path tenant_root(const std::string& tenant);

  ServerOptions options_;
  std::unique_ptr<io::TempDir> owned_root_;
  std::filesystem::path root_;
  PlanCache cache_;
  AdmissionController admission_;
  mutable std::mutex tenants_mu_;
  std::set<std::string> known_tenants_;
  std::atomic<std::uint64_t> jobs_done_{0};
  std::atomic<std::uint64_t> jobs_failed_{0};
  std::atomic<int> jobs_in_flight_{0};
  std::atomic<bool> shutdown_{false};
  std::chrono::steady_clock::time_point started_ =
      std::chrono::steady_clock::now();
};

/// Reads one request line at a time from `in`, writes one response line to
/// `out` (the daemon's --stdio mode; also what tests drive with string
/// streams). Returns when the stream ends or a shutdown request arrives.
void serve_stdio(Server& server, std::istream& in, std::ostream& out);

/// Unix-domain-socket front end: accept loop + per-connection readers + a
/// pool of worker threads executing jobs (so one connection can have many
/// jobs in flight). `workers` ≤ 0 means 2×hardware_concurrency capped at 8.
/// Blocks until a shutdown request; removes the socket file on exit.
/// Returns the number of connections served.
int serve_socket(Server& server, const std::filesystem::path& socket_path,
                 int workers = 0);

}  // namespace oocc::serve
