// clock.hpp is header-only; this translation unit exists so the build lists
// every module explicitly and future out-of-line additions have a home.
#include "oocc/sim/clock.hpp"
