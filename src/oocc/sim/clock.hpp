// Per-processor simulated clock.
//
// The simulator is *conservative*: each simulated processor advances its own
// clock as it performs compute, communication and I/O, and receiving a
// message pulls the receiver's clock forward to at least the message's
// arrival time. Because every inter-processor dependency flows through a
// message (or a collective built from messages), the resulting per-processor
// times are exactly the times a real machine with the modelled costs would
// produce, regardless of host-thread scheduling.
#pragma once

#include <algorithm>

namespace oocc::sim {

class Clock {
 public:
  /// Current simulated time in seconds since the start of the SPMD region.
  double now() const noexcept { return now_s_; }

  /// Advances the clock by `seconds` (>= 0).
  void advance(double seconds) noexcept {
    if (seconds > 0) now_s_ += seconds;
  }

  /// Pulls the clock forward to at least `time_s` (never moves backwards).
  void wait_until(double time_s) noexcept { now_s_ = std::max(now_s_, time_s); }

  /// Resets to time zero (used between SPMD phases in benches).
  void reset() noexcept { now_s_ = 0.0; }

  /// Rewinds to an earlier instant (no-op if `time_s` is in the future).
  /// Reserved for the asynchronous-I/O overlap model in runtime/prefetch:
  /// a synchronous read charges the clock with its service time, then the
  /// prefetch engine rewinds to the issue point and remembers the
  /// completion timestamp, so compute proceeds overlapped with the I/O.
  void rewind_to(double time_s) noexcept {
    now_s_ = std::min(now_s_, time_s);
  }

 private:
  double now_s_ = 0.0;
};

}  // namespace oocc::sim
