#include "oocc/sim/collectives.hpp"

namespace oocc::sim {

namespace detail {

int virtual_rank(int rank, int root, int nprocs) noexcept {
  return (rank - root + nprocs) % nprocs;
}

int real_rank(int vrank, int root, int nprocs) noexcept {
  return (vrank + root) % nprocs;
}

void bcast_bytes(SpmdContext& ctx, int root, std::vector<std::byte>& data) {
  const int p = ctx.nprocs();
  if (p == 1) {
    return;
  }
  const int vr = virtual_rank(ctx.rank(), root, p);

  // Find the highest power of two <= p to bound the binomial tree.
  int top = 1;
  while ((top << 1) <= p && (top << 1) > top) {
    top <<= 1;
  }

  // Receive phase: a non-root rank receives from the peer that clears its
  // lowest set bit.
  if (vr != 0) {
    int mask = 1;
    while ((vr & mask) == 0) {
      mask <<= 1;
    }
    const int src = real_rank(vr - mask, root, p);
    Message m = ctx.recv_message(src, kTagBcast);
    data = std::move(m.payload);
    // Forward phase below continues with `mask` already positioned past the
    // receive bit.
    for (int fwd = mask >> 1; fwd >= 1; fwd >>= 1) {
      if (vr + fwd < p) {
        ctx.send_bytes(real_rank(vr + fwd, root, p), kTagBcast, data.data(),
                       data.size());
      }
    }
    return;
  }

  // Root: send with halving stride, covering ranks top, top/2, ..., 1.
  for (int fwd = top; fwd >= 1; fwd >>= 1) {
    if (vr + fwd < p) {
      ctx.send_bytes(real_rank(vr + fwd, root, p), kTagBcast, data.data(),
                     data.size());
    }
  }
}

}  // namespace detail

void barrier(SpmdContext& ctx) {
  const int p = ctx.nprocs();
  if (p == 1) {
    return;
  }
  // Dissemination barrier: in round k, rank r signals (r + 2^k) mod p and
  // waits for (r - 2^k) mod p. After ceil(log2 p) rounds every rank has a
  // dependency chain from every other rank, so simulated clocks are
  // correctly synchronized to at least the latest participant.
  const std::byte token{0};
  for (int dist = 1; dist < p; dist <<= 1) {
    const int dest = (ctx.rank() + dist) % p;
    const int src = (ctx.rank() - dist + p) % p;
    ctx.send_bytes(dest, kTagBarrier, &token, 1);
    (void)ctx.recv_message(src, kTagBarrier);
  }
}

}  // namespace oocc::sim
