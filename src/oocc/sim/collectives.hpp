// Collective communication operations for the SPMD simulator.
//
// All collectives are built from point-to-point messages (binomial trees,
// dissemination patterns), so their simulated cost falls out of the
// Hockney per-message model rather than being asserted — the same way the
// paper's node programs used NX library collectives built on sends.
//
// Every collective is *matched*: all ranks of the machine must call it with
// compatible arguments. Collectives use reserved negative tags, so they can
// be freely interleaved with user point-to-point traffic on tags >= 0.
// Repeated collectives of the same kind are safe because per-(source, tag)
// delivery is FIFO (non-overtaking).
#pragma once

#include <algorithm>
#include <span>
#include <utility>
#include <vector>

#include "oocc/sim/machine.hpp"

namespace oocc::sim {

// Reserved internal tags (user tags are >= 0; kAbortTag is INT_MIN).
inline constexpr int kTagBarrier = -2;
inline constexpr int kTagBcast = -3;
inline constexpr int kTagReduce = -4;
inline constexpr int kTagGather = -5;
inline constexpr int kTagScatter = -6;
inline constexpr int kTagAlltoall = -7;
inline constexpr int kTagAlltoallPayload = -8;

/// Dissemination barrier: ceil(log2 P) rounds, correct for any P.
void barrier(SpmdContext& ctx);

namespace detail {
void bcast_bytes(SpmdContext& ctx, int root, std::vector<std::byte>& data);
int virtual_rank(int rank, int root, int nprocs) noexcept;
int real_rank(int vrank, int root, int nprocs) noexcept;

/// Receives into an existing vector, resizing instead of reallocating —
/// repeated exchanges (redistribution rounds) reuse the buffer's capacity.
template <typename T>
void recv_resize(SpmdContext& ctx, int source, int tag, std::vector<T>& out) {
  static_assert(std::is_trivially_copyable_v<T>);
  Message m = ctx.recv_message(source, tag);
  OOCC_CHECK(m.payload.size() % sizeof(T) == 0, ErrorCode::kRuntimeError,
             "received payload of " << m.payload.size()
                                    << " bytes is not a multiple of element "
                                       "size "
                                    << sizeof(T));
  out.resize(m.payload.size() / sizeof(T));
  if (!out.empty()) {
    std::memcpy(out.data(), m.payload.data(), m.payload.size());
  }
}
}  // namespace detail

/// Binomial-tree broadcast of a trivially copyable vector. On non-root
/// ranks, `data` is resized and overwritten with the root's contents.
template <typename T>
void broadcast(SpmdContext& ctx, int root, std::vector<T>& data) {
  static_assert(std::is_trivially_copyable_v<T>);
  std::vector<std::byte> bytes(data.size() * sizeof(T));
  if (ctx.rank() == root && !bytes.empty()) {
    std::memcpy(bytes.data(), data.data(), bytes.size());
  }
  detail::bcast_bytes(ctx, root, bytes);
  if (ctx.rank() != root) {
    data.resize(bytes.size() / sizeof(T));
    if (!bytes.empty()) {
      std::memcpy(data.data(), bytes.data(), bytes.size());
    }
  }
}

/// Binomial-tree sum reduction to `root`. `in` must have the same extent on
/// every rank. On the root, returns the elementwise sum; on other ranks the
/// return value is empty. Addition is charged to the compute clock (one
/// flop per added element), matching the paper's global-sum step.
template <typename T>
std::vector<T> reduce_sum(SpmdContext& ctx, int root, std::span<const T> in) {
  static_assert(std::is_trivially_copyable_v<T>);
  const int p = ctx.nprocs();
  const int vr = detail::virtual_rank(ctx.rank(), root, p);
  std::vector<T> acc(in.begin(), in.end());
  std::vector<T> incoming(in.size());
  for (int mask = 1; mask < p; mask <<= 1) {
    if ((vr & mask) != 0) {
      const int dest = detail::real_rank(vr - mask, root, p);
      ctx.send<T>(dest, kTagReduce, std::span<const T>(acc));
      return {};
    }
    if (vr + mask < p) {
      const int src = detail::real_rank(vr + mask, root, p);
      ctx.recv_into<T>(src, kTagReduce, std::span<T>(incoming));
      for (std::size_t i = 0; i < acc.size(); ++i) {
        acc[i] += incoming[i];
      }
      ctx.charge_flops(static_cast<double>(acc.size()));
    }
  }
  return acc;
}

/// reduce_sum followed by broadcast; every rank gets the full sum.
template <typename T>
std::vector<T> allreduce_sum(SpmdContext& ctx, std::span<const T> in) {
  std::vector<T> result = reduce_sum<T>(ctx, /*root=*/0, in);
  broadcast(ctx, /*root=*/0, result);
  return result;
}

/// Binomial-tree elementwise max reduction to `root`; same contract as
/// reduce_sum. The comparisons are not charged as flops (the paper's cost
/// model only counts arithmetic).
template <typename T>
std::vector<T> reduce_max(SpmdContext& ctx, int root, std::span<const T> in) {
  static_assert(std::is_trivially_copyable_v<T>);
  const int p = ctx.nprocs();
  const int vr = detail::virtual_rank(ctx.rank(), root, p);
  std::vector<T> acc(in.begin(), in.end());
  std::vector<T> incoming(in.size());
  for (int mask = 1; mask < p; mask <<= 1) {
    if ((vr & mask) != 0) {
      const int dest = detail::real_rank(vr - mask, root, p);
      ctx.send<T>(dest, kTagReduce, std::span<const T>(acc));
      return {};
    }
    if (vr + mask < p) {
      const int src = detail::real_rank(vr + mask, root, p);
      ctx.recv_into<T>(src, kTagReduce, std::span<T>(incoming));
      for (std::size_t i = 0; i < acc.size(); ++i) {
        acc[i] = std::max(acc[i], incoming[i]);
      }
    }
  }
  return acc;
}

/// Scalar max across all ranks; every rank gets the result (the stencil
/// executor's convergence test).
template <typename T>
T allreduce_max(SpmdContext& ctx, T value) {
  std::vector<T> result =
      reduce_max<T>(ctx, /*root=*/0, std::span<const T>(&value, 1));
  broadcast(ctx, /*root=*/0, result);
  return result.empty() ? value : result.front();
}

/// Gathers equal-sized contributions to `root`, concatenated in rank order.
/// Non-root ranks receive an empty vector.
template <typename T>
std::vector<T> gather(SpmdContext& ctx, int root, std::span<const T> in) {
  static_assert(std::is_trivially_copyable_v<T>);
  const int p = ctx.nprocs();
  if (ctx.rank() != root) {
    ctx.send<T>(root, kTagGather, in);
    return {};
  }
  std::vector<T> out(in.size() * static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r) {
    std::span<T> slot(out.data() + static_cast<std::size_t>(r) * in.size(),
                      in.size());
    if (r == root) {
      std::copy(in.begin(), in.end(), slot.begin());
    } else {
      ctx.recv_into<T>(r, kTagGather, slot);
    }
  }
  return out;
}

/// Scatters `all` (meaningful on root only) in equal chunks of
/// `per_rank` elements; every rank returns its chunk.
template <typename T>
std::vector<T> scatter(SpmdContext& ctx, int root, std::span<const T> all,
                       std::size_t per_rank) {
  static_assert(std::is_trivially_copyable_v<T>);
  const int p = ctx.nprocs();
  if (ctx.rank() == root) {
    OOCC_REQUIRE(all.size() == per_rank * static_cast<std::size_t>(p),
                 "scatter buffer of " << all.size() << " elements cannot be "
                 "split into " << p << " chunks of " << per_rank);
    std::vector<T> mine;
    for (int r = 0; r < p; ++r) {
      std::span<const T> chunk(
          all.data() + static_cast<std::size_t>(r) * per_rank, per_rank);
      if (r == root) {
        mine.assign(chunk.begin(), chunk.end());
      } else {
        ctx.send<T>(r, kTagScatter, chunk);
      }
    }
    return mine;
  }
  return ctx.recv<T>(root, kTagScatter);
}

/// Personalized all-to-all with per-destination vectors of varying sizes
/// (MPI_Alltoallv analogue, used by redistribution §2.3). `out[d]` is the
/// data this rank sends to rank d; returns `in[s]` = data received from s.
/// `out` is taken by value so the self-exchange is a move, never a deep
/// copy — pass `std::move(out)` when the outbound buffers are dead after
/// the call (every runtime caller is).
template <typename T>
std::vector<std::vector<T>> alltoallv(SpmdContext& ctx,
                                      std::vector<std::vector<T>> out) {
  static_assert(std::is_trivially_copyable_v<T>);
  const int p = ctx.nprocs();
  OOCC_REQUIRE(static_cast<int>(out.size()) == p,
               "alltoallv needs one outgoing vector per rank; got "
                   << out.size() << " for " << p << " ranks");
  std::vector<std::vector<T>> in(static_cast<std::size_t>(p));
  in[static_cast<std::size_t>(ctx.rank())] =
      std::move(out[static_cast<std::size_t>(ctx.rank())]);
  // Rotational pairwise exchange: step s sends to (rank+s) and receives
  // from (rank-s); every pair of ranks communicates exactly once per step.
  for (int s = 1; s < p; ++s) {
    const int dest = (ctx.rank() + s) % p;
    const int src = (ctx.rank() - s + p) % p;
    ctx.send<T>(dest, kTagAlltoall,
                std::span<const T>(out[static_cast<std::size_t>(dest)]));
    in[static_cast<std::size_t>(src)] = ctx.recv<T>(src, kTagAlltoall);
  }
  return in;
}

/// Header+payload personalized all-to-all, the wire format of the block
/// routing layer: for each destination this rank sends two typed messages —
/// `out_headers[d]` (fixed-size descriptors) and `out_payload[d]` (a flat
/// value stream) — instead of one stream of self-describing per-element
/// records. `in_headers[s]` / `in_payload[s]` receive rank s's
/// contribution; both are resized in place so repeated rounds reuse their
/// capacity. The self-exchange is swapped with the outbound slot, never
/// copied. On return every `out_*` vector is valid but unspecified;
/// callers clear them at the top of each round.
template <typename H, typename T>
void alltoallv_hp(SpmdContext& ctx, std::vector<std::vector<H>>& out_headers,
                  std::vector<std::vector<T>>& out_payload,
                  std::vector<std::vector<H>>& in_headers,
                  std::vector<std::vector<T>>& in_payload) {
  static_assert(std::is_trivially_copyable_v<H>);
  static_assert(std::is_trivially_copyable_v<T>);
  const int p = ctx.nprocs();
  const std::size_t up = static_cast<std::size_t>(p);
  OOCC_REQUIRE(out_headers.size() == up && out_payload.size() == up &&
                   in_headers.size() == up && in_payload.size() == up,
               "alltoallv_hp needs one header and one payload vector per "
               "rank on both sides; got "
                   << out_headers.size() << "/" << out_payload.size() << "/"
                   << in_headers.size() << "/" << in_payload.size() << " for "
                   << p << " ranks");
  const std::size_t rank = static_cast<std::size_t>(ctx.rank());
  std::swap(in_headers[rank], out_headers[rank]);
  std::swap(in_payload[rank], out_payload[rank]);
  for (int s = 1; s < p; ++s) {
    const std::size_t dest = static_cast<std::size_t>((ctx.rank() + s) % p);
    const std::size_t src =
        static_cast<std::size_t>((ctx.rank() - s + p) % p);
    ctx.send<H>(static_cast<int>(dest), kTagAlltoall,
                std::span<const H>(out_headers[dest]));
    ctx.send<T>(static_cast<int>(dest), kTagAlltoallPayload,
                std::span<const T>(out_payload[dest]));
    detail::recv_resize<H>(ctx, static_cast<int>(src), kTagAlltoall,
                           in_headers[src]);
    detail::recv_resize<T>(ctx, static_cast<int>(src), kTagAlltoallPayload,
                           in_payload[src]);
  }
}

}  // namespace oocc::sim
