// Collective communication operations for the SPMD simulator.
//
// All collectives are built from point-to-point messages (binomial trees,
// dissemination patterns), so their simulated cost falls out of the
// Hockney per-message model rather than being asserted — the same way the
// paper's node programs used NX library collectives built on sends.
//
// Every collective is *matched*: all ranks of the machine must call it with
// compatible arguments. Collectives use reserved negative tags, so they can
// be freely interleaved with user point-to-point traffic on tags >= 0.
// Repeated collectives of the same kind are safe because per-(source, tag)
// delivery is FIFO (non-overtaking).
#pragma once

#include <span>
#include <vector>

#include "oocc/sim/machine.hpp"

namespace oocc::sim {

// Reserved internal tags (user tags are >= 0; kAbortTag is INT_MIN).
inline constexpr int kTagBarrier = -2;
inline constexpr int kTagBcast = -3;
inline constexpr int kTagReduce = -4;
inline constexpr int kTagGather = -5;
inline constexpr int kTagScatter = -6;
inline constexpr int kTagAlltoall = -7;

/// Dissemination barrier: ceil(log2 P) rounds, correct for any P.
void barrier(SpmdContext& ctx);

namespace detail {
void bcast_bytes(SpmdContext& ctx, int root, std::vector<std::byte>& data);
int virtual_rank(int rank, int root, int nprocs) noexcept;
int real_rank(int vrank, int root, int nprocs) noexcept;
}  // namespace detail

/// Binomial-tree broadcast of a trivially copyable vector. On non-root
/// ranks, `data` is resized and overwritten with the root's contents.
template <typename T>
void broadcast(SpmdContext& ctx, int root, std::vector<T>& data) {
  static_assert(std::is_trivially_copyable_v<T>);
  std::vector<std::byte> bytes(data.size() * sizeof(T));
  if (ctx.rank() == root && !bytes.empty()) {
    std::memcpy(bytes.data(), data.data(), bytes.size());
  }
  detail::bcast_bytes(ctx, root, bytes);
  if (ctx.rank() != root) {
    data.resize(bytes.size() / sizeof(T));
    if (!bytes.empty()) {
      std::memcpy(data.data(), bytes.data(), bytes.size());
    }
  }
}

/// Binomial-tree sum reduction to `root`. `in` must have the same extent on
/// every rank. On the root, returns the elementwise sum; on other ranks the
/// return value is empty. Addition is charged to the compute clock (one
/// flop per added element), matching the paper's global-sum step.
template <typename T>
std::vector<T> reduce_sum(SpmdContext& ctx, int root, std::span<const T> in) {
  static_assert(std::is_trivially_copyable_v<T>);
  const int p = ctx.nprocs();
  const int vr = detail::virtual_rank(ctx.rank(), root, p);
  std::vector<T> acc(in.begin(), in.end());
  std::vector<T> incoming(in.size());
  for (int mask = 1; mask < p; mask <<= 1) {
    if ((vr & mask) != 0) {
      const int dest = detail::real_rank(vr - mask, root, p);
      ctx.send<T>(dest, kTagReduce, std::span<const T>(acc));
      return {};
    }
    if (vr + mask < p) {
      const int src = detail::real_rank(vr + mask, root, p);
      ctx.recv_into<T>(src, kTagReduce, std::span<T>(incoming));
      for (std::size_t i = 0; i < acc.size(); ++i) {
        acc[i] += incoming[i];
      }
      ctx.charge_flops(static_cast<double>(acc.size()));
    }
  }
  return acc;
}

/// reduce_sum followed by broadcast; every rank gets the full sum.
template <typename T>
std::vector<T> allreduce_sum(SpmdContext& ctx, std::span<const T> in) {
  std::vector<T> result = reduce_sum<T>(ctx, /*root=*/0, in);
  broadcast(ctx, /*root=*/0, result);
  return result;
}

/// Gathers equal-sized contributions to `root`, concatenated in rank order.
/// Non-root ranks receive an empty vector.
template <typename T>
std::vector<T> gather(SpmdContext& ctx, int root, std::span<const T> in) {
  static_assert(std::is_trivially_copyable_v<T>);
  const int p = ctx.nprocs();
  if (ctx.rank() != root) {
    ctx.send<T>(root, kTagGather, in);
    return {};
  }
  std::vector<T> out(in.size() * static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r) {
    std::span<T> slot(out.data() + static_cast<std::size_t>(r) * in.size(),
                      in.size());
    if (r == root) {
      std::copy(in.begin(), in.end(), slot.begin());
    } else {
      ctx.recv_into<T>(r, kTagGather, slot);
    }
  }
  return out;
}

/// Scatters `all` (meaningful on root only) in equal chunks of
/// `per_rank` elements; every rank returns its chunk.
template <typename T>
std::vector<T> scatter(SpmdContext& ctx, int root, std::span<const T> all,
                       std::size_t per_rank) {
  static_assert(std::is_trivially_copyable_v<T>);
  const int p = ctx.nprocs();
  if (ctx.rank() == root) {
    OOCC_REQUIRE(all.size() == per_rank * static_cast<std::size_t>(p),
                 "scatter buffer of " << all.size() << " elements cannot be "
                 "split into " << p << " chunks of " << per_rank);
    std::vector<T> mine;
    for (int r = 0; r < p; ++r) {
      std::span<const T> chunk(
          all.data() + static_cast<std::size_t>(r) * per_rank, per_rank);
      if (r == root) {
        mine.assign(chunk.begin(), chunk.end());
      } else {
        ctx.send<T>(r, kTagScatter, chunk);
      }
    }
    return mine;
  }
  return ctx.recv<T>(root, kTagScatter);
}

/// Personalized all-to-all with per-destination vectors of varying sizes
/// (MPI_Alltoallv analogue, used by redistribution §2.3). `out[d]` is the
/// data this rank sends to rank d; returns `in[s]` = data received from s.
template <typename T>
std::vector<std::vector<T>> alltoallv(SpmdContext& ctx,
                                      const std::vector<std::vector<T>>& out) {
  static_assert(std::is_trivially_copyable_v<T>);
  const int p = ctx.nprocs();
  OOCC_REQUIRE(static_cast<int>(out.size()) == p,
               "alltoallv needs one outgoing vector per rank; got "
                   << out.size() << " for " << p << " ranks");
  std::vector<std::vector<T>> in(static_cast<std::size_t>(p));
  in[static_cast<std::size_t>(ctx.rank())] =
      out[static_cast<std::size_t>(ctx.rank())];
  // Rotational pairwise exchange: step s sends to (rank+s) and receives
  // from (rank-s); every pair of ranks communicates exactly once per step.
  for (int s = 1; s < p; ++s) {
    const int dest = (ctx.rank() + s) % p;
    const int src = (ctx.rank() - s + p) % p;
    ctx.send<T>(dest, kTagAlltoall,
                std::span<const T>(out[static_cast<std::size_t>(dest)]));
    in[static_cast<std::size_t>(src)] = ctx.recv<T>(src, kTagAlltoall);
  }
  return in;
}

}  // namespace oocc::sim
