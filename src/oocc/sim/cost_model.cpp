// cost_model.hpp is header-only; see clock.cpp for rationale.
#include "oocc/sim/cost_model.hpp"
