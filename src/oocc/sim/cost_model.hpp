// Cost model for the simulated distributed-memory machine.
//
// Communication follows the Hockney model: a message of b bytes costs
// `latency + b / bandwidth` end to end, plus a small CPU send overhead on
// the sender. Compute is charged per floating point operation. The disk
// model lives in oocc/io/disk_model.hpp.
//
// The `touchstone_delta()` preset is calibrated to Intel Touchstone
// Delta-era magnitudes (i860 nodes running unoptimized Fortran inner loops,
// mesh interconnect), so simulated times land in the same range as the
// paper's Tables 1-2. The calibration rationale is documented in
// EXPERIMENTS.md.
#pragma once

namespace oocc::sim {

struct CommCostModel {
  double send_overhead_s = 5e-6;   ///< CPU time consumed on the sender
  double latency_s = 95e-6;        ///< wire latency per message
  double bandwidth_Bps = 10e6;     ///< link bandwidth, bytes/second

  /// Wire time for a message of `bytes` (excludes sender CPU overhead).
  double transfer_time(double bytes) const noexcept {
    return latency_s + bytes / bandwidth_Bps;
  }
};

struct ComputeCostModel {
  /// Seconds per floating point operation. The default corresponds to
  /// ~4 Mflop/s, a realistic i860 rate for compiled Fortran loops.
  double seconds_per_flop = 1.0 / 4.0e6;

  double flops_time(double flops) const noexcept {
    return flops * seconds_per_flop;
  }
};

struct MachineCostModel {
  CommCostModel comm;
  ComputeCostModel compute;

  /// Delta-era calibration used by the paper-reproduction benches.
  static MachineCostModel touchstone_delta() noexcept {
    MachineCostModel m;
    m.comm.send_overhead_s = 5e-6;
    m.comm.latency_s = 95e-6;       // NX message latency on the Delta
    m.comm.bandwidth_Bps = 10e6;    // ~10 MB/s per mesh link
    m.compute.seconds_per_flop = 1.0 / 4.0e6;
    return m;
  }

  /// A fast model for unit tests where simulated time is checked
  /// analytically: all constants are round numbers.
  static MachineCostModel unit_test() noexcept {
    MachineCostModel m;
    m.comm.send_overhead_s = 1e-6;
    m.comm.latency_s = 1e-4;
    m.comm.bandwidth_Bps = 1e8;
    m.compute.seconds_per_flop = 1e-9;
    return m;
  }

  /// Zero-cost model: simulated time stays 0; used when only functional
  /// behaviour matters.
  static MachineCostModel zero() noexcept {
    MachineCostModel m;
    m.comm.send_overhead_s = 0;
    m.comm.latency_s = 0;
    m.comm.bandwidth_Bps = 1e30;
    m.compute.seconds_per_flop = 0;
    return m;
  }
};

}  // namespace oocc::sim
