#include "oocc/sim/machine.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <thread>

#include "oocc/io/async_engine.hpp"
#include "oocc/util/env.hpp"
#include "oocc/util/faults.hpp"
#include "oocc/util/log.hpp"
#include "oocc/util/table.hpp"

#include <sstream>

namespace oocc::sim {

double RunReport::max_sim_time_s() const noexcept {
  double m = 0.0;
  for (const auto& p : procs) m = std::max(m, p.sim_time_s);
  return m;
}

std::uint64_t RunReport::total_io_requests() const noexcept {
  std::uint64_t n = 0;
  for (const auto& p : procs) n += p.io_requests;
  return n;
}

std::uint64_t RunReport::total_io_bytes() const noexcept {
  std::uint64_t n = 0;
  for (const auto& p : procs) n += p.io_bytes_read + p.io_bytes_written;
  return n;
}

std::uint64_t RunReport::total_messages() const noexcept {
  std::uint64_t n = 0;
  for (const auto& p : procs) n += p.messages_sent;
  return n;
}

std::uint64_t RunReport::total_bytes_sent() const noexcept {
  std::uint64_t n = 0;
  for (const auto& p : procs) n += p.bytes_sent;
  return n;
}

std::uint64_t RunReport::total_retries() const noexcept {
  std::uint64_t n = 0;
  for (const auto& p : procs) n += p.retries;
  return n;
}

double RunReport::max_io_requests_per_proc() const noexcept {
  double m = 0.0;
  for (const auto& p : procs) m = std::max(m, static_cast<double>(p.io_requests));
  return m;
}

double RunReport::max_io_bytes_per_proc() const noexcept {
  double m = 0.0;
  for (const auto& p : procs) {
    m = std::max(m, static_cast<double>(p.io_bytes_read + p.io_bytes_written));
  }
  return m;
}

std::string format_report(const RunReport& report) {
  TextTable table({"proc", "sim time (s)", "compute (s)", "comm (s)",
                   "io (s)", "io reqs", "io MB", "msgs sent", "MB sent",
                   "Mflops"});
  for (std::size_t r = 0; r < report.procs.size(); ++r) {
    const ProcStats& p = report.procs[r];
    table.add_row(
        {std::to_string(r), format_fixed(p.sim_time_s, 3),
         format_fixed(p.compute_time_s, 3), format_fixed(p.comm_time_s, 3),
         format_fixed(p.io_time_s, 3), std::to_string(p.io_requests),
         format_fixed(
             static_cast<double>(p.io_bytes_read + p.io_bytes_written) / 1e6,
             2),
         std::to_string(p.messages_sent),
         format_fixed(static_cast<double>(p.bytes_sent) / 1e6, 2),
         format_fixed(p.flops / 1e6, 1)});
  }
  std::ostringstream oss;
  oss << table.to_string() << "makespan: " << format_fixed(
             report.max_sim_time_s(), 3)
      << " s simulated, " << format_fixed(report.wall_time_s, 3)
      << " s wall\n";
  // Regions that never touched the engine (pure compute/comm) keep the
  // classic report shape.
  if (report.async.enabled && report.async.jobs > 0) {
    oss << "async io: " << report.async.threads << " threads, "
        << report.async.jobs << " jobs, peak queue "
        << report.async.max_queue_depth << "; busy "
        << format_fixed(report.async.busy_s, 3) << " s, blocked "
        << format_fixed(report.async.blocked_s, 3) << " s, overlap "
        << format_fixed(report.async.overlap_s, 3) << " s wall\n";
  }
  return oss.str();
}

int SpmdContext::nprocs() const noexcept { return machine_->nprocs(); }

const MachineCostModel& SpmdContext::cost() const noexcept {
  return machine_->cost();
}

void SpmdContext::send_bytes(int dest, int tag, const void* data,
                             std::size_t bytes) {
  OOCC_REQUIRE(dest >= 0 && dest < machine_->nprocs(),
               "send destination " << dest << " outside [0, "
                                   << machine_->nprocs() << ")");
  OOCC_REQUIRE(tag != kAbortTag, "tag " << tag << " is reserved");

  // Message-fault site: a transient fault models a dropped message that
  // succeeds on retransmit — each failed attempt charges backoff to the
  // simulated clock. A permanent fault (or an exhausted retry budget)
  // escalates and aborts the region.
  if (faults::FaultInjector::instance().active()) {
    const faults::RetryPolicy policy = faults::RetryPolicy::from_env();
    for (int attempt = 1;; ++attempt) {
      try {
        faults::FaultInjector::instance().check(
            faults::Site::kCollective,
            "send to rank " + std::to_string(dest));
        break;
      } catch (const Error& e) {
        if (e.code() != ErrorCode::kTransientIoError) {
          throw;
        }
        if (attempt >= policy.max_attempts) {
          OOCC_THROW(ErrorCode::kRuntimeError,
                     "transient message fault persisted after "
                         << attempt << " attempts: " << e.what());
        }
        const double backoff =
            policy.backoff_s(attempt, cost().comm.send_overhead_s);
        clock_.advance(backoff);
        stats_.comm_time_s += backoff;
        ++stats_.retries;
      }
    }
  }

  clock_.advance(cost().comm.send_overhead_s);
  stats_.comm_time_s += cost().comm.send_overhead_s;

  Message m;
  m.source = rank_;
  m.tag = tag;
  m.arrival_time_s =
      clock_.now() + cost().comm.transfer_time(static_cast<double>(bytes));
  m.payload.resize(bytes);
  if (bytes > 0) {
    std::memcpy(m.payload.data(), data, bytes);
  }

  ++stats_.messages_sent;
  stats_.bytes_sent += bytes;
  machine_->mailboxes_[static_cast<std::size_t>(dest)]->push(std::move(m));
}

Message SpmdContext::recv_message(int source, int tag) {
  OOCC_REQUIRE(tag != kAbortTag, "tag " << tag << " is reserved");
  auto& box = *machine_->mailboxes_[static_cast<std::size_t>(rank_)];
  // The abort protocol: a failing rank pushes a kAbortTag message into every
  // mailbox, so a blocked receiver wakes up and unwinds instead of hanging.
  Mailbox::PopResult result = box.pop_matching_or_abort(source, tag, kAbortTag);
  if (result.aborted) {
    OOCC_THROW(ErrorCode::kRuntimeError,
               "SPMD region aborted by another rank");
  }
  Message m = std::move(result.message);
  const double before = clock_.now();
  clock_.wait_until(m.arrival_time_s);
  stats_.comm_time_s += clock_.now() - before;
  ++stats_.messages_received;
  stats_.bytes_received += m.payload.size();
  return m;
}

bool SpmdContext::probe(int source, int tag) {
  return machine_->mailboxes_[static_cast<std::size_t>(rank_)]->probe(source,
                                                                      tag);
}

io::AsyncEngine* SpmdContext::async_engine() noexcept {
  return machine_->engine_.get();
}

Machine::~Machine() = default;

MachineOptions MachineOptions::from_env() {
  MachineOptions o;
  o.async = env_flag_or("OOCC_ASYNC", true);
  o.io_threads = static_cast<int>(env_int("OOCC_IO_THREADS", 0));
  return o;
}

Machine::Machine(int nprocs, MachineCostModel cost_model)
    : Machine(nprocs, cost_model, MachineOptions::from_env()) {}

Machine::Machine(int nprocs, MachineCostModel cost_model,
                 MachineOptions options)
    : nprocs_(nprocs), cost_(cost_model), options_(options) {
  OOCC_REQUIRE(nprocs >= 1, "machine needs at least 1 processor, got "
                                << nprocs);
  mailboxes_.reserve(static_cast<std::size_t>(nprocs));
  for (int i = 0; i < nprocs; ++i) {
    mailboxes_.push_back(std::make_unique<Mailbox>());
  }
}

void Machine::abort_all() {
  for (auto& box : mailboxes_) {
    Message m;
    m.source = 0;
    m.tag = kAbortTag;
    box->push(std::move(m));
  }
}

RunReport Machine::run(const std::function<void(SpmdContext&)>& body) {
  // Discard everything left over from a previous failed region — abort
  // markers AND in-flight data messages. A restarted region reuses the
  // same tags, so a stale halo column from an aborted attempt would
  // otherwise be consumed in place of the fresh one and silently corrupt
  // the rerun.
  for (std::size_t r = 0; r < mailboxes_.size(); ++r) {
    const std::size_t dropped = mailboxes_[r]->clear();
    if (dropped != 0) {
      OOCC_DEBUG("sim", "rank " << r << ": dropped " << dropped
                                << " stale message(s) from a previous region");
    }
  }

  // Lazily bring up the real async I/O engine from the knobs captured at
  // construction time — run() itself never consults the environment, so a
  // server can pin each job to the snapshot it was admitted under.
  if (engine_ == nullptr && options_.async) {
    const int threads = options_.io_threads > 0
                            ? std::min(options_.io_threads, 64)
                            : std::max(1, std::min(nprocs_, 4));
    engine_ = std::make_unique<io::AsyncEngine>(threads);
  }
  const io::AsyncEngine::Counters engine_before =
      engine_ != nullptr ? engine_->counters() : io::AsyncEngine::Counters{};

  std::vector<std::unique_ptr<SpmdContext>> contexts;
  contexts.reserve(static_cast<std::size_t>(nprocs_));
  for (int r = 0; r < nprocs_; ++r) {
    contexts.push_back(
        std::unique_ptr<SpmdContext>(new SpmdContext(this, r)));
  }

  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(nprocs_));
  std::atomic<bool> aborted{false};

  const auto wall_start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(nprocs_));
  for (int r = 0; r < nprocs_; ++r) {
    threads.emplace_back([&, r] {
      // Tag the host thread with its simulated rank so rank-filtered fault
      // specs (e.g. "read:rank=2") hit the right processor.
      faults::ThreadRankGuard rank_guard(r);
      try {
        body(*contexts[static_cast<std::size_t>(r)]);
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
        if (!aborted.exchange(true)) {
          abort_all();
        }
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  const auto wall_end = std::chrono::steady_clock::now();

  for (auto& err : errors) {
    if (err) {
      std::rethrow_exception(err);
    }
  }

  // A clean region must not leave unmatched messages behind (abort messages
  // were consumed above on failure paths; here the region succeeded).
  for (int r = 0; r < nprocs_; ++r) {
    const std::size_t pending =
        mailboxes_[static_cast<std::size_t>(r)]->pending();
    if (pending != 0) {
      OOCC_WARN("sim", "rank " << r << " finished with " << pending
                               << " unconsumed message(s)");
    }
  }

  RunReport report;
  report.procs.reserve(static_cast<std::size_t>(nprocs_));
  for (auto& ctx : contexts) {
    ctx->stats_.sim_time_s = ctx->clock_.now();
    report.procs.push_back(ctx->stats_);
  }
  report.wall_time_s =
      std::chrono::duration<double>(wall_end - wall_start).count();
  if (engine_ != nullptr) {
    const io::AsyncEngine::Counters after = engine_->counters();
    report.async.enabled = true;
    report.async.threads = engine_->threads();
    report.async.jobs = after.jobs_completed - engine_before.jobs_completed;
    report.async.max_queue_depth = after.max_queue_depth;
    report.async.busy_s = after.busy_s - engine_before.busy_s;
    report.async.blocked_s = after.blocked_s - engine_before.blocked_s;
    report.async.overlap_s =
        std::max(0.0, report.async.busy_s - report.async.blocked_s);
  }
  return report;
}

}  // namespace oocc::sim
