// The simulated distributed-memory machine (§2.2 of the paper).
//
// A Machine models P compute processors connected by an interconnect with a
// Hockney-style cost model. `Machine::run(body)` executes `body` once per
// simulated processor, each on its own host thread, in SPMD fashion — the
// direct analogue of the message-passing node programs the paper's compiler
// emits. All inter-processor data motion goes through SpmdContext::send /
// recv (and the collectives built on them in collectives.hpp), which both
// move real bytes and advance the per-processor simulated clocks.
//
// Error handling: if any rank throws, the machine aborts the region — every
// blocked recv() is released with an abort message and rethrows — so a
// failing rank cannot deadlock the host process.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>
#include <limits>
#include <string>
#include <memory>
#include <span>
#include <vector>

#include "oocc/sim/clock.hpp"
#include "oocc/sim/cost_model.hpp"
#include "oocc/sim/mailbox.hpp"
#include "oocc/util/error.hpp"

namespace oocc::io {
class AsyncEngine;
}  // namespace oocc::io

namespace oocc::sim {

/// Tag reserved for the abort protocol. User tags must be >= 0; the
/// collectives use negative tags above this sentinel.
inline constexpr int kAbortTag = std::numeric_limits<int>::min();

/// Per-processor activity counters, filled during an SPMD region.
struct ProcStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_received = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
  double flops = 0.0;

  // Simulated-time breakdown (seconds). io_time_s is charged by the I/O
  // layer (oocc/io); the three parts need not sum exactly to sim_time_s
  // because waiting at a recv counts as comm time.
  double compute_time_s = 0.0;
  double comm_time_s = 0.0;
  double io_time_s = 0.0;

  // I/O counters, charged by oocc::io::LocalArrayFile.
  std::uint64_t io_requests = 0;
  std::uint64_t io_bytes_read = 0;
  std::uint64_t io_bytes_written = 0;

  /// Transient faults masked by a bounded-retry loop on this processor
  /// (disk retries charged by the I/O layer, message retries by
  /// send_bytes). Zero in fault-free runs.
  std::uint64_t retries = 0;

  double sim_time_s = 0.0;  ///< final simulated clock of this processor
};

/// Wall-clock activity of the real async I/O engine during one SPMD region
/// (all zero when the engine is disabled via OOCC_ASYNC=0). busy/blocked/
/// overlap are host seconds, not simulated seconds — the simulated pricing
/// of asynchrony is the clock-rewind model and is unaffected by the engine.
struct AsyncIoReport {
  bool enabled = false;
  int threads = 0;
  std::uint64_t jobs = 0;
  std::uint64_t max_queue_depth = 0;  ///< peak in-flight jobs (engine lifetime)
  double busy_s = 0.0;     ///< worker time spent in physical I/O
  double blocked_s = 0.0;  ///< compute-thread time spent waiting on tickets
  double overlap_s = 0.0;  ///< I/O genuinely hidden behind compute
};

/// Aggregate result of one SPMD region.
struct RunReport {
  std::vector<ProcStats> procs;
  double wall_time_s = 0.0;
  AsyncIoReport async;

  /// Simulated makespan: the latest final clock across processors. This is
  /// the quantity reported as "Time (s)" in the reproduced tables.
  double max_sim_time_s() const noexcept;
  std::uint64_t total_io_requests() const noexcept;
  std::uint64_t total_io_bytes() const noexcept;
  std::uint64_t total_messages() const noexcept;
  std::uint64_t total_bytes_sent() const noexcept;
  std::uint64_t total_retries() const noexcept;
  double max_io_requests_per_proc() const noexcept;
  double max_io_bytes_per_proc() const noexcept;
};

/// Renders a per-processor breakdown table (simulated time split into
/// compute / communication / I/O, plus counters) for reports and bench
/// logs.
std::string format_report(const RunReport& report);

class Machine;

/// Handle given to the SPMD body on each simulated processor. Provides the
/// processor's identity, its simulated clock, typed message passing, and
/// cost-charging entry points used by the compute kernels and the I/O layer.
class SpmdContext {
 public:
  int rank() const noexcept { return rank_; }
  int nprocs() const noexcept;

  Clock& clock() noexcept { return clock_; }
  const Clock& clock() const noexcept { return clock_; }
  ProcStats& stats() noexcept { return stats_; }
  const MachineCostModel& cost() const noexcept;

  /// Charges `flops` floating point operations to the simulated clock.
  void charge_flops(double flops) noexcept {
    stats_.flops += flops;
    const double t = cost().compute.flops_time(flops);
    stats_.compute_time_s += t;
    clock_.advance(t);
  }

  /// Charges `seconds` of I/O service time (called by the I/O layer).
  void charge_io_time(double seconds) noexcept {
    stats_.io_time_s += seconds;
    clock_.advance(seconds);
  }

  /// Zeroes the simulated clock and counters. Benches call this (after a
  /// barrier, so no pre-reset message timestamps are still in flight) to
  /// exclude data-staging from the measured phase.
  void reset_accounting() noexcept {
    clock_.reset();
    stats_ = ProcStats{};
  }

  /// Sends `bytes` of raw payload to `dest` with tag `tag` (>= 0 for user
  /// messages). Returns immediately in simulated terms: the sender is only
  /// charged the CPU send overhead; the transfer time determines the
  /// message's arrival timestamp at the destination.
  void send_bytes(int dest, int tag, const void* data, std::size_t bytes);

  /// Blocks until a message matching (source, tag) arrives; pulls the
  /// simulated clock to the arrival time. Wildcards kAnySource / kAnyTag.
  Message recv_message(int source, int tag);

  /// Typed convenience wrappers.
  template <typename T>
  void send(int dest, int tag, std::span<const T> data) {
    static_assert(std::is_trivially_copyable_v<T>);
    send_bytes(dest, tag, data.data(), data.size_bytes());
  }

  template <typename T>
  void send_value(int dest, int tag, const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    send_bytes(dest, tag, &value, sizeof(T));
  }

  template <typename T>
  std::vector<T> recv(int source, int tag) {
    static_assert(std::is_trivially_copyable_v<T>);
    Message m = recv_message(source, tag);
    OOCC_CHECK(m.payload.size() % sizeof(T) == 0, ErrorCode::kRuntimeError,
               "received payload of " << m.payload.size()
                                      << " bytes is not a multiple of element "
                                         "size "
                                      << sizeof(T));
    std::vector<T> out(m.payload.size() / sizeof(T));
    std::memcpy(out.data(), m.payload.data(), m.payload.size());
    return out;
  }

  template <typename T>
  T recv_value(int source, int tag) {
    std::vector<T> v = recv<T>(source, tag);
    OOCC_CHECK(v.size() == 1, ErrorCode::kRuntimeError,
               "expected single-value message, got " << v.size()
                                                     << " elements");
    return v[0];
  }

  /// Receives into a caller-provided buffer (avoids an allocation on hot
  /// paths like slab-sized reductions). The buffer must be exactly the
  /// message size.
  template <typename T>
  void recv_into(int source, int tag, std::span<T> out) {
    Message m = recv_message(source, tag);
    OOCC_CHECK(m.payload.size() == out.size_bytes(), ErrorCode::kRuntimeError,
               "message size " << m.payload.size()
                               << " != expected buffer size "
                               << out.size_bytes());
    std::memcpy(out.data(), m.payload.data(), m.payload.size());
  }

  /// True if a matching message is already queued (no time charge).
  bool probe(int source, int tag);

  /// The machine's real async I/O engine, or nullptr when disabled
  /// (OOCC_ASYNC=0). Shared by all ranks; the LAF layer keys its
  /// submissions by file, so each local array file gets its own FIFO
  /// stream and distinct files overlap like independent devices.
  io::AsyncEngine* async_engine() noexcept;

 private:
  friend class Machine;
  SpmdContext(Machine* machine, int rank) : machine_(machine), rank_(rank) {}

  Machine* machine_;
  int rank_;
  Clock clock_;
  ProcStats stats_;
};

/// Process-global knobs a Machine snapshots at construction. Long-lived
/// hosts (the compile server) capture these once per request via
/// `from_env()` — a job must see the knob values of the process state it
/// was admitted under, not whatever the globals happen to say when a worker
/// thread finally calls run().
struct MachineOptions {
  /// Bring up the real async I/O engine (kill switch: OOCC_ASYNC=0 falls
  /// back to fully synchronous host I/O bit-identically).
  bool async = true;
  /// Engine worker threads; 0 = the built-in default min(nprocs, 4).
  int io_threads = 0;

  /// Snapshot of OOCC_ASYNC / OOCC_IO_THREADS.
  static MachineOptions from_env();
};

/// The simulated machine. Construct once with a processor count and cost
/// model; `run()` may be invoked repeatedly (each run starts from clock 0).
class Machine {
 public:
  /// Captures MachineOptions::from_env() — the environment is read here,
  /// once, never again during run().
  Machine(int nprocs, MachineCostModel cost_model);
  Machine(int nprocs, MachineCostModel cost_model, MachineOptions options);
  ~Machine();

  int nprocs() const noexcept { return nprocs_; }
  const MachineCostModel& cost() const noexcept { return cost_; }
  const MachineOptions& options() const noexcept { return options_; }

  /// Runs `body(ctx)` on every simulated processor, one host thread each.
  /// Rethrows the lowest-rank exception if any rank fails.
  ///
  /// Unless options().async is off, the machine lazily creates its async
  /// I/O engine on the first run (options().io_threads workers, default
  /// min(nprocs, 4)); RunReport::async carries the engine activity of this
  /// region.
  RunReport run(const std::function<void(SpmdContext&)>& body);

 private:
  friend class SpmdContext;

  void abort_all();

  int nprocs_;
  MachineCostModel cost_;
  MachineOptions options_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  std::unique_ptr<io::AsyncEngine> engine_;
};

}  // namespace oocc::sim
