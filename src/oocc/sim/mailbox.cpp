#include "oocc/sim/mailbox.hpp"

namespace oocc::sim {

void Mailbox::push(Message message) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(message));
  }
  cv_.notify_all();
}

Mailbox::PopResult Mailbox::pop_matching_or_abort(int source, int tag,
                                                  int abort_tag) {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    for (const auto& m : queue_) {
      if (m.tag == abort_tag) {
        return PopResult{true, Message{}};
      }
    }
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      if (matches(*it, source, tag)) {
        PopResult out{false, std::move(*it)};
        queue_.erase(it);
        return out;
      }
    }
    cv_.wait(lock);
  }
}

Message Mailbox::pop_matching(int source, int tag) {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      if (matches(*it, source, tag)) {
        Message out = std::move(*it);
        queue_.erase(it);
        return out;
      }
    }
    cv_.wait(lock);
  }
}

bool Mailbox::probe(int source, int tag) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& m : queue_) {
    if (matches(m, source, tag)) {
      return true;
    }
  }
  return false;
}

std::size_t Mailbox::pending() {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

std::size_t Mailbox::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  const std::size_t dropped = queue_.size();
  queue_.clear();
  return dropped;
}

}  // namespace oocc::sim
