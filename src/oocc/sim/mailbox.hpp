// Typed, timestamped message queues for the SPMD simulator.
//
// Each simulated processor owns one Mailbox. send() enqueues a byte payload
// together with its simulated arrival time; recv() blocks the host thread
// until a matching message is present, then pulls the receiver's simulated
// clock forward to the arrival time (done by the caller in machine.hpp).
//
// Matching is MPI-like: (source, tag), where kAnySource / kAnyTag act as
// wildcards. Messages from the same (source, tag) pair are delivered in
// send order (non-overtaking), as MPI guarantees.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

namespace oocc::sim {

inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;

struct Message {
  int source = 0;
  int tag = 0;
  double arrival_time_s = 0.0;  ///< simulated time the message is available
  std::vector<std::byte> payload;
};

class Mailbox {
 public:
  /// Enqueues a message (called from the sender's thread).
  void push(Message message);

  /// Blocks until a message matching (source, tag) is available and removes
  /// it from the queue. Wildcards: kAnySource, kAnyTag.
  Message pop_matching(int source, int tag);

  /// Non-blocking probe: true if a matching message is queued.
  bool probe(int source, int tag);

  /// Result of pop_matching_or_abort: if `aborted` is true the abort
  /// message was *left in the queue* (so every subsequent recv on this
  /// mailbox also observes the abort) and `message` is empty.
  struct PopResult {
    bool aborted = false;
    Message message;
  };

  /// Blocks until either a message matching (source, tag) or any message
  /// with tag `abort_tag` is queued. The matching message is removed; an
  /// abort message is only observed. This is the receive primitive used by
  /// SpmdContext so a failing rank can never deadlock its peers.
  PopResult pop_matching_or_abort(int source, int tag, int abort_tag);

  /// Number of queued messages (for tests / leak detection at region end).
  std::size_t pending();

  /// Discards every queued message, returning how many were dropped. Run
  /// between SPMD regions: an aborted region can leave in-flight data
  /// messages behind, and a later region (e.g. a checkpoint/restart
  /// attempt reusing the same tags) must never consume them.
  std::size_t clear();

 private:
  bool matches(const Message& m, int source, int tag) const noexcept {
    return (source == kAnySource || m.source == source) &&
           (tag == kAnyTag || m.tag == tag);
  }

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Message> queue_;
};

}  // namespace oocc::sim
