#include "oocc/util/env.hpp"

#include <cstdlib>
#include <cstring>
#include <sstream>

namespace oocc {

std::string env_string(const char* name, const std::string& fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') {
    return fallback;
  }
  return value;
}

std::int64_t env_int(const char* name, std::int64_t fallback) noexcept {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') {
    return fallback;
  }
  char* end = nullptr;
  const long long parsed = std::strtoll(value, &end, 10);
  if (end == value || (end != nullptr && *end != '\0')) {
    return fallback;
  }
  return parsed;
}

bool env_flag(const char* name) noexcept {
  const char* value = std::getenv(name);
  if (value == nullptr) {
    return false;
  }
  return std::strcmp(value, "") != 0 && std::strcmp(value, "0") != 0 &&
         std::strcmp(value, "false") != 0 && std::strcmp(value, "no") != 0 &&
         std::strcmp(value, "off") != 0;
}

bool env_flag_or(const char* name, bool fallback) noexcept {
  if (std::getenv(name) == nullptr) {
    return fallback;
  }
  return env_flag(name);
}

std::vector<int> env_int_list(const char* name,
                              const std::vector<int>& fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') {
    return fallback;
  }
  std::vector<int> out;
  std::stringstream ss{std::string(value)};
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (item.empty()) continue;
    try {
      out.push_back(std::stoi(item));
    } catch (...) {
      return fallback;
    }
  }
  return out.empty() ? fallback : out;
}

}  // namespace oocc
