// Helpers for reading benchmark/test configuration from the environment.
//
// Bench binaries honour OOCC_N (global array extent), OOCC_PROCS
// (comma-separated processor counts) and OOCC_FULL (run at full paper scale)
// so the same binaries serve quick CI runs and paper-scale reproduction.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace oocc {

/// Returns the environment variable value or `fallback` when unset/empty.
std::string env_string(const char* name, const std::string& fallback);

/// Returns the integer value of an environment variable, or `fallback` when
/// unset or unparsable. Throws nothing.
std::int64_t env_int(const char* name, std::int64_t fallback) noexcept;

/// Returns true when the variable is set to anything other than
/// "", "0", "false", "no", "off".
bool env_flag(const char* name) noexcept;

/// Tri-state flag: returns `fallback` when the variable is unset, otherwise
/// the same truthiness test as env_flag. Lets a knob default to on
/// (e.g. OOCC_ASYNC) while "0"/"off" still disables it.
bool env_flag_or(const char* name, bool fallback) noexcept;

/// Parses a comma-separated integer list ("4,16,32"); returns `fallback`
/// when unset or empty after parsing.
std::vector<int> env_int_list(const char* name,
                              const std::vector<int>& fallback);

}  // namespace oocc
