#include "oocc/util/error.hpp"

namespace oocc {

std::string_view error_code_name(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::kInvalidArgument:
      return "InvalidArgument";
    case ErrorCode::kOutOfRange:
      return "OutOfRange";
    case ErrorCode::kIoError:
      return "IoError";
    case ErrorCode::kTransientIoError:
      return "TransientIoError";
    case ErrorCode::kParseError:
      return "ParseError";
    case ErrorCode::kSemanticError:
      return "SemanticError";
    case ErrorCode::kCompileError:
      return "CompileError";
    case ErrorCode::kRuntimeError:
      return "RuntimeError";
    case ErrorCode::kResourceExhausted:
      return "ResourceExhausted";
    case ErrorCode::kVerifyError:
      return "VerifyError";
    case ErrorCode::kCrash:
      return "Crash";
  }
  return "Unknown";
}

Error::Error(ErrorCode code, const std::string& message)
    : std::runtime_error(std::string(error_code_name(code)) + ": " + message),
      code_(code) {}

namespace detail {

void throw_error(ErrorCode code, const std::string& message) {
  throw Error(code, message);
}

void assertion_failure(const char* expr, const char* file, int line,
                       const std::string& message) {
  std::ostringstream oss;
  oss << "internal assertion `" << expr << "` failed at " << file << ":"
      << line;
  if (!message.empty()) {
    oss << " — " << message;
  }
  throw Error(ErrorCode::kRuntimeError, oss.str());
}

}  // namespace detail
}  // namespace oocc
