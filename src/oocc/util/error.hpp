// Error handling for the oocc library.
//
// All library-detected failures are reported as oocc::Error (derived from
// std::runtime_error) carrying an error category and a formatted message.
// OOCC_CHECK / OOCC_REQUIRE are used for precondition validation on public
// APIs; internal invariants use OOCC_ASSERT which additionally prints the
// failing source location.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>

namespace oocc {

/// Broad categories of library failure, used by tests (failure injection)
/// and by callers that want to distinguish recoverable conditions.
enum class ErrorCode {
  kInvalidArgument,  ///< caller violated a documented precondition
  kOutOfRange,       ///< index/section outside array or file bounds
  kIoError,          ///< host file system operation failed (permanent)
  kTransientIoError, ///< I/O or message fault expected to succeed on retry
  kParseError,       ///< HPF front end rejected the source program
  kSemanticError,    ///< HPF semantic analysis rejected the program
  kCompileError,     ///< out-of-core lowering cannot handle the program
  kRuntimeError,     ///< execution-time failure (plan interpreter, runtime)
  kResourceExhausted, ///< memory budget cannot accommodate the request
  kVerifyError,      ///< static plan verification found a violation
  kCrash             ///< injected crash (fault plan); state recovery required
};

/// Human-readable name of an ErrorCode ("InvalidArgument", ...).
std::string_view error_code_name(ErrorCode code) noexcept;

/// Exception type thrown by every oocc component.
class Error : public std::runtime_error {
 public:
  Error(ErrorCode code, const std::string& message);

  ErrorCode code() const noexcept { return code_; }

 private:
  ErrorCode code_;
};

namespace detail {
[[noreturn]] void throw_error(ErrorCode code, const std::string& message);
[[noreturn]] void assertion_failure(const char* expr, const char* file,
                                    int line, const std::string& message);
}  // namespace detail

}  // namespace oocc

/// Throws oocc::Error with a stream-formatted message:
///   OOCC_THROW(ErrorCode::kIoError, "cannot open " << path);
#define OOCC_THROW(code, stream_expr)                  \
  do {                                                 \
    std::ostringstream oocc_throw_oss_;                \
    oocc_throw_oss_ << stream_expr;                    \
    ::oocc::detail::throw_error(code,                  \
                                oocc_throw_oss_.str());\
  } while (false)

/// Validates a caller-visible precondition; throws Error on failure.
#define OOCC_CHECK(cond, code, stream_expr) \
  do {                                      \
    if (!(cond)) {                          \
      OOCC_THROW(code, stream_expr);        \
    }                                       \
  } while (false)

/// Shorthand for argument validation.
#define OOCC_REQUIRE(cond, stream_expr) \
  OOCC_CHECK(cond, ::oocc::ErrorCode::kInvalidArgument, stream_expr)

/// Internal invariant; failure indicates a bug in oocc itself.
#define OOCC_ASSERT(cond, stream_expr)                                   \
  do {                                                                   \
    if (!(cond)) {                                                       \
      std::ostringstream oocc_assert_oss_;                               \
      oocc_assert_oss_ << stream_expr;                                   \
      ::oocc::detail::assertion_failure(#cond, __FILE__, __LINE__,       \
                                        oocc_assert_oss_.str());         \
    }                                                                    \
  } while (false)
