#include "oocc/util/faults.hpp"

#include <cmath>
#include <cstddef>
#include <sstream>

#include "oocc/util/env.hpp"
#include "oocc/util/log.hpp"

namespace oocc::faults {

namespace {

thread_local int t_rank = -1;

Site parse_site(const std::string& text) {
  if (text == "read") return Site::kRead;
  if (text == "write") return Site::kWrite;
  if (text == "collective") return Site::kCollective;
  if (text == "budget") return Site::kBudget;
  if (text == "crash") return Site::kCrash;
  OOCC_THROW(ErrorCode::kInvalidArgument,
             "fault plan: unknown site '" << text
                                          << "' (read|write|collective|"
                                             "budget|crash)");
}

std::string trim(const std::string& s) {
  const std::size_t b = s.find_first_not_of(" \t");
  if (b == std::string::npos) {
    return "";
  }
  const std::size_t e = s.find_last_not_of(" \t");
  return s.substr(b, e - b + 1);
}

/// ErrorCode a permanent fault at `site` escalates to.
ErrorCode permanent_code(Site site) noexcept {
  switch (site) {
    case Site::kRead:
    case Site::kWrite:
      return ErrorCode::kIoError;
    case Site::kCollective:
      return ErrorCode::kRuntimeError;
    case Site::kBudget:
      return ErrorCode::kResourceExhausted;
    case Site::kCrash:
      return ErrorCode::kCrash;
  }
  return ErrorCode::kRuntimeError;
}

}  // namespace

std::string_view site_name(Site site) noexcept {
  switch (site) {
    case Site::kRead:
      return "read";
    case Site::kWrite:
      return "write";
    case Site::kCollective:
      return "collective";
    case Site::kBudget:
      return "budget";
    case Site::kCrash:
      return "crash";
  }
  return "?";
}

std::uint64_t FaultSpec::effective_count() const noexcept {
  if (count > 0) {
    return count;
  }
  return nth > 0 ? 1 : UINT64_MAX;
}

std::string FaultSpec::to_string() const {
  std::ostringstream oss;
  oss << site_name(site) << ":";
  bool first = true;
  const auto kv = [&](const std::string& text) {
    oss << (first ? "" : ",") << text;
    first = false;
  };
  if (nth > 0) {
    kv("nth=" + std::to_string(nth));
  } else {
    std::ostringstream p_oss;
    p_oss << "p=" << p << ",seed=" << seed;
    kv(p_oss.str());
  }
  if (rank >= 0) {
    kv("rank=" + std::to_string(rank));
  }
  if (count > 0) {
    kv("count=" + std::to_string(count));
  }
  if (kind == Kind::kPermanent) {
    kv("kind=permanent");
  }
  if (!at.empty()) {
    kv("at=" + at);
  }
  return oss.str();
}

FaultPlan FaultPlan::parse(const std::string& text) {
  FaultPlan plan;
  std::stringstream specs(text);
  std::string spec_text;
  while (std::getline(specs, spec_text, ';')) {
    spec_text = trim(spec_text);
    if (spec_text.empty()) {
      continue;
    }
    const std::size_t colon = spec_text.find(':');
    FaultSpec spec;
    spec.site = parse_site(
        trim(colon == std::string::npos ? spec_text
                                        : spec_text.substr(0, colon)));
    if (colon != std::string::npos) {
      std::stringstream kvs(spec_text.substr(colon + 1));
      std::string kv;
      while (std::getline(kvs, kv, ',')) {
        kv = trim(kv);
        if (kv.empty()) {
          continue;
        }
        const std::size_t eq = kv.find('=');
        OOCC_CHECK(eq != std::string::npos, ErrorCode::kInvalidArgument,
                   "fault plan: expected key=value, got '" << kv << "'");
        const std::string key = trim(kv.substr(0, eq));
        const std::string value = trim(kv.substr(eq + 1));
        try {
          if (key == "p") {
            spec.p = std::stod(value);
            OOCC_CHECK(spec.p > 0.0 && spec.p <= 1.0,
                       ErrorCode::kInvalidArgument,
                       "fault plan: p must be in (0, 1], got " << value);
          } else if (key == "nth") {
            spec.nth = std::stoull(value);
            OOCC_CHECK(spec.nth >= 1, ErrorCode::kInvalidArgument,
                       "fault plan: nth must be >= 1");
          } else if (key == "rank") {
            spec.rank = std::stoi(value);
            OOCC_CHECK(spec.rank >= 0, ErrorCode::kInvalidArgument,
                       "fault plan: rank must be >= 0, got " << value);
          } else if (key == "seed") {
            spec.seed = std::stoull(value);
          } else if (key == "count") {
            spec.count = std::stoull(value);
          } else if (key == "kind") {
            if (value == "transient") {
              spec.kind = Kind::kTransient;
            } else if (value == "permanent") {
              spec.kind = Kind::kPermanent;
            } else {
              OOCC_THROW(ErrorCode::kInvalidArgument,
                         "fault plan: kind must be transient|permanent, got '"
                             << value << "'");
            }
          } else if (key == "at") {
            OOCC_CHECK(value == "shadow" || value == "apply",
                       ErrorCode::kInvalidArgument,
                       "fault plan: at must be shadow|apply, got '" << value
                                                                   << "'");
            spec.at = value;
          } else {
            OOCC_THROW(ErrorCode::kInvalidArgument,
                       "fault plan: unknown key '" << key << "'");
          }
        } catch (const std::invalid_argument&) {
          OOCC_THROW(ErrorCode::kInvalidArgument,
                     "fault plan: bad value for '" << key << "': '" << value
                                                   << "'");
        } catch (const std::out_of_range&) {
          OOCC_THROW(ErrorCode::kInvalidArgument,
                     "fault plan: value for '" << key << "' out of range: '"
                                               << value << "'");
        }
      }
    }
    OOCC_CHECK(!(spec.p > 0.0 && spec.nth > 0), ErrorCode::kInvalidArgument,
               "fault plan: p= and nth= are mutually exclusive in '"
                   << spec_text << "'");
    OOCC_CHECK(spec.at.empty() || spec.site == Site::kCrash,
               ErrorCode::kInvalidArgument,
               "fault plan: at= only applies to the crash site");
    if (spec.p == 0.0 && spec.nth == 0) {
      spec.nth = 1;  // bare "site:" means: fail the first matching op
    }
    plan.specs.push_back(std::move(spec));
  }
  return plan;
}

std::string FaultPlan::to_string() const {
  std::string out;
  for (const FaultSpec& spec : specs) {
    if (!out.empty()) {
      out += ";";
    }
    out += spec.to_string();
  }
  return out;
}

FaultInjector& FaultInjector::instance() {
  static FaultInjector injector;
  return injector;
}

void FaultInjector::install(FaultPlan plan) {
  std::lock_guard<std::mutex> lock(mu_);
  plan_ = std::move(plan);
  states_.clear();
  stats_ = FaultStats{};
  active_.store(!plan_.empty(), std::memory_order_relaxed);
  if (!plan_.empty()) {
    OOCC_INFO("faults", "fault plan installed: " << plan_.to_string());
  }
}

bool FaultInjector::install_from_env() {
  const std::string text = env_string("OOCC_FAULTS", "");
  if (text.empty()) {
    return false;
  }
  install(FaultPlan::parse(text));
  return true;
}

FaultPlan FaultInjector::plan() const {
  std::lock_guard<std::mutex> lock(mu_);
  return plan_;
}

FaultStats FaultInjector::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void FaultInjector::note_recovery() noexcept {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.recoveries;
}

void FaultInjector::check(Site site, std::string_view what) {
  if (!active()) {
    return;
  }
  do_check(site, /*point=*/"", what);
}

void FaultInjector::check_crash(std::string_view point,
                                std::string_view what) {
  if (!active()) {
    return;
  }
  do_check(Site::kCrash, point, what);
}

void FaultInjector::do_check(Site site, std::string_view point,
                             std::string_view what) {
  const int rank = t_rank;
  // The decision runs under the lock; the throw happens outside it.
  bool fired = false;
  Kind fired_kind = Kind::kTransient;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (std::size_t i = 0; i < plan_.specs.size(); ++i) {
      const FaultSpec& spec = plan_.specs[i];
      if (spec.site != site) {
        continue;
      }
      if (spec.rank >= 0 && spec.rank != rank) {
        continue;
      }
      if (site == Site::kCrash && !spec.at.empty() && spec.at != point) {
        continue;
      }
      SpecState& st = states_[{i, rank}];
      if (st.ops == 0 && spec.p > 0.0) {
        // Seed the stream from (seed, spec, rank) so every rank draws its
        // own deterministic sequence regardless of thread interleaving.
        st.rng.reseed(spec.seed * 0x9e3779b97f4a7c15ULL + i * 1000003ULL +
                      static_cast<std::uint64_t>(rank + 1));
      }
      ++st.ops;
      ++stats_.ops_checked;
      if (st.injected >= spec.effective_count()) {
        continue;
      }
      const bool fire = spec.nth > 0 ? st.ops == spec.nth
                                     : st.rng.next_double() < spec.p;
      if (!fire) {
        continue;
      }
      ++st.injected;
      if (site == Site::kCrash) {
        ++stats_.crashes_injected;
      } else if (spec.kind == Kind::kTransient) {
        ++stats_.transient_injected;
      } else {
        ++stats_.permanent_injected;
      }
      fired = true;
      fired_kind = spec.kind;
      break;
    }
  }
  if (!fired) {
    return;
  }
  if (site == Site::kCrash) {
    OOCC_THROW(ErrorCode::kCrash, "injected crash at point '"
                                      << point << "' (" << what << ", rank "
                                      << rank << ")");
  }
  if (fired_kind == Kind::kTransient) {
    OOCC_THROW(ErrorCode::kTransientIoError,
               "injected transient " << site_name(site) << " fault (" << what
                                     << ", rank " << rank << ")");
  }
  OOCC_THROW(permanent_code(site), "injected permanent "
                                       << site_name(site) << " fault ("
                                       << what << ", rank " << rank << ")");
}

int thread_rank() noexcept { return t_rank; }

void set_thread_rank(int rank) noexcept { t_rank = rank; }

double RetryPolicy::backoff_s(int attempt,
                              double fallback_base_s) const noexcept {
  const double base = backoff_base_s > 0.0 ? backoff_base_s : fallback_base_s;
  return base * std::pow(backoff_multiplier, attempt - 1);
}

RetryPolicy RetryPolicy::from_env() {
  RetryPolicy policy;
  policy.max_attempts = static_cast<int>(env_int("OOCC_RETRY_ATTEMPTS", 4));
  if (policy.max_attempts < 1) {
    policy.max_attempts = 1;
  }
  const std::int64_t backoff_ms = env_int("OOCC_RETRY_BACKOFF_MS", 0);
  if (backoff_ms > 0) {
    policy.backoff_base_s = static_cast<double>(backoff_ms) * 1e-3;
  }
  return policy;
}

}  // namespace oocc::faults
