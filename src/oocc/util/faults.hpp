// Deterministic fault injection for the fault-tolerance layer.
//
// A FaultPlan is a seeded schedule of failures parsed from the OOCC_FAULTS
// environment variable or the tool's --faults= flag. The runtime's fault
// *sites* — LAF/FileBackend reads and writes, message sends (and so every
// collective and halo exchange built on them), memory-budget reservation,
// and the crash points of the journaled write-back protocol — consult the
// process-global FaultInjector on every operation. A matching spec makes
// the operation throw:
//
//   Error(kTransientIoError)  kind=transient (default): expected to succeed
//                             on retry — masked by RetryPolicy at the
//                             retrying sites (LAF I/O, send_bytes)
//   Error(k<site-specific>)   kind=permanent: kIoError for read/write,
//                             kRuntimeError for collective,
//                             kResourceExhausted for budget
//   Error(kCrash)             site crash: fired at a named protocol point
//                             ("shadow"/"apply" of the write-back journal)
//
// Grammar (specs separated by ';'):
//
//   spec  := site ':' kv (',' kv)*
//   site  := read | write | collective | budget | crash
//   kv    := nth=<k>          fail the k-th matching operation (1-based,
//                             counted per rank; default when neither nth
//                             nor p is given: nth=1)
//          | p=<prob>         fail each matching operation with probability
//                             prob (deterministic per-(spec, rank) RNG)
//          | rank=<r>         only operations on simulated rank r (default:
//                             all ranks; host-side operations outside an
//                             SPMD region count as rank -1 and only match
//                             specs without a rank filter)
//          | seed=<s>         RNG stream seed for p-mode (default 42)
//          | count=<c>        stop after c injections per rank (default:
//                             1 for nth-mode, unlimited for p-mode)
//          | kind=transient|permanent
//          | at=shadow|apply  crash site only: which protocol point
//
// Examples: "read:rank=2,nth=7"  "write:p=0.01,seed=42"
//           "crash:nth=1,at=shadow;read:p=0.005"
//
// Determinism: nth-mode counts operations per (spec, rank); p-mode draws
// from an RNG stream seeded by (seed, spec index, rank). Neither depends on
// thread interleaving, so a plan replays identically run after run.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "oocc/util/error.hpp"
#include "oocc/util/rng.hpp"

namespace oocc::faults {

enum class Site { kRead, kWrite, kCollective, kBudget, kCrash };

std::string_view site_name(Site site) noexcept;

enum class Kind { kTransient, kPermanent };

/// One parsed fault spec (see the grammar above).
struct FaultSpec {
  Site site = Site::kRead;
  Kind kind = Kind::kTransient;
  double p = 0.0;            ///< probability per op; 0 = nth-mode
  std::uint64_t nth = 0;     ///< 1-based op index to fail; 0 = p-mode
  int rank = -1;             ///< -1 = any rank
  std::uint64_t seed = 42;   ///< RNG stream seed (p-mode)
  std::uint64_t count = 0;   ///< max injections per rank; 0 = mode default
  std::string at;            ///< crash point filter; empty = any point

  /// Effective per-rank injection cap.
  std::uint64_t effective_count() const noexcept;
  std::string to_string() const;
};

/// A ';'-separated list of fault specs.
struct FaultPlan {
  std::vector<FaultSpec> specs;

  bool empty() const noexcept { return specs.empty(); }
  /// Parses the grammar above; throws Error(kInvalidArgument) on a bad
  /// site, key, value, or combination (e.g. both p= and nth=).
  static FaultPlan parse(const std::string& text);
  std::string to_string() const;
};

/// Totals across all specs and ranks since the last install().
struct FaultStats {
  std::uint64_t ops_checked = 0;        ///< operations that consulted a spec
  std::uint64_t transient_injected = 0;
  std::uint64_t permanent_injected = 0;
  std::uint64_t crashes_injected = 0;
  std::uint64_t recoveries = 0;  ///< journal recoveries (LAF open scans)

  std::uint64_t injected() const noexcept {
    return transient_injected + permanent_injected + crashes_injected;
  }
};

/// Process-global injector every fault site consults. With no plan
/// installed, check() is a single relaxed atomic load — the default-off
/// fast path costs nothing measurable and changes no I/O accounting.
class FaultInjector {
 public:
  static FaultInjector& instance();

  /// Installs `plan`, resetting all per-spec counters, RNG streams and
  /// stats. An empty plan deactivates injection.
  void install(FaultPlan plan);
  /// Installs the OOCC_FAULTS environment plan, if set. Returns whether a
  /// plan was installed. Tools call this once at startup.
  bool install_from_env();
  void clear() { install(FaultPlan{}); }

  bool active() const noexcept {
    return active_.load(std::memory_order_relaxed);
  }
  FaultPlan plan() const;
  FaultStats stats() const;

  /// Consults the plan for `site` on the calling thread's rank; throws on
  /// an injected fault (see the file comment for the error codes).
  void check(Site site, std::string_view what);
  /// Crash points inside multi-step protocols (the write-back journal);
  /// matches crash specs whose `at` filter is empty or equals `point`.
  void check_crash(std::string_view point, std::string_view what);

  /// Journal-recovery tally (bumped by LocalArrayFile's open scan, which
  /// runs without an SpmdContext). Counted even when no plan is active.
  void note_recovery() noexcept;

 private:
  FaultInjector() = default;
  /// Per-(spec index, rank) op counter, injection tally and RNG stream.
  struct SpecState {
    std::uint64_t ops = 0;
    std::uint64_t injected = 0;
    Rng rng;
  };
  void do_check(Site site, std::string_view point, std::string_view what);

  std::atomic<bool> active_{false};
  mutable std::mutex mu_;
  FaultPlan plan_;
  FaultStats stats_;
  std::map<std::pair<std::size_t, int>, SpecState> states_;
};

/// RAII plan installation for tests: installs on construction, clears on
/// destruction.
class ScopedFaultPlan {
 public:
  explicit ScopedFaultPlan(const std::string& text) {
    FaultInjector::instance().install(FaultPlan::parse(text));
  }
  ~ScopedFaultPlan() { FaultInjector::instance().clear(); }
  ScopedFaultPlan(const ScopedFaultPlan&) = delete;
  ScopedFaultPlan& operator=(const ScopedFaultPlan&) = delete;
};

/// The calling thread's simulated rank for fault matching; -1 outside an
/// SPMD region. sim::Machine tags each processor thread via the guard.
int thread_rank() noexcept;
void set_thread_rank(int rank) noexcept;

class ThreadRankGuard {
 public:
  explicit ThreadRankGuard(int rank) : saved_(thread_rank()) {
    set_thread_rank(rank);
  }
  ~ThreadRankGuard() { set_thread_rank(saved_); }
  ThreadRankGuard(const ThreadRankGuard&) = delete;
  ThreadRankGuard& operator=(const ThreadRankGuard&) = delete;

 private:
  int saved_;
};

/// Bounded-retry policy with exponential backoff for transient faults. The
/// backoff is *simulated* time: callers charge it to their clock (LAF I/O
/// via charge_io_time against the DiskModel's request overhead, sends as
/// comm time), so the pricer can price retried runs.
struct RetryPolicy {
  int max_attempts = 4;           ///< total tries, including the first
  double backoff_base_s = 0.0;    ///< <= 0: use the caller's fallback base
  double backoff_multiplier = 2.0;

  /// Backoff to charge after failed attempt `attempt` (1-based).
  double backoff_s(int attempt, double fallback_base_s) const noexcept;

  /// Defaults overridden by OOCC_RETRY_ATTEMPTS / OOCC_RETRY_BACKOFF_MS.
  static RetryPolicy from_env();
};

}  // namespace oocc::faults
