#include "oocc/util/log.hpp"

#include <cstdio>
#include <cstdlib>

namespace oocc {
namespace {

std::string_view level_tag(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF  ";
  }
  return "?????";
}

}  // namespace

LogLevel parse_log_level(std::string_view text) noexcept {
  if (text == "debug") return LogLevel::kDebug;
  if (text == "info") return LogLevel::kInfo;
  if (text == "warn") return LogLevel::kWarn;
  if (text == "error") return LogLevel::kError;
  if (text == "off") return LogLevel::kOff;
  return LogLevel::kWarn;
}

Logger::Logger() : level_(LogLevel::kWarn) {
  if (const char* env = std::getenv("OOCC_LOG")) {
    level_ = parse_log_level(env);
  }
}

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::write(LogLevel level, std::string_view component,
                   std::string_view message) {
  std::lock_guard<std::mutex> lock(mu_);
  std::fprintf(stderr, "[%.*s] %.*s: %.*s\n",
               static_cast<int>(level_tag(level).size()),
               level_tag(level).data(), static_cast<int>(component.size()),
               component.data(), static_cast<int>(message.size()),
               message.data());
}

}  // namespace oocc
