// Minimal thread-safe leveled logger.
//
// The simulator runs one thread per simulated processor, so log lines are
// serialized under a mutex and tagged with the logical processor id when
// emitted from inside an SPMD region (see sim::SpmdContext::log()).
#pragma once

#include <mutex>
#include <sstream>
#include <string>
#include <string_view>

namespace oocc {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global logging configuration. Default level is kWarn; override with the
/// OOCC_LOG environment variable (debug|info|warn|error|off).
class Logger {
 public:
  static Logger& instance();

  LogLevel level() const noexcept { return level_; }
  void set_level(LogLevel level) noexcept { level_ = level; }

  /// Writes one line (the newline is appended) if `level >= level()`.
  void write(LogLevel level, std::string_view component,
             std::string_view message);

 private:
  Logger();

  std::mutex mu_;
  LogLevel level_;
};

/// Parses "debug"/"info"/"warn"/"error"/"off"; returns kWarn on anything else.
LogLevel parse_log_level(std::string_view text) noexcept;

}  // namespace oocc

#define OOCC_LOG(lvl, component, stream_expr)                              \
  do {                                                                     \
    if (static_cast<int>(lvl) >=                                           \
        static_cast<int>(::oocc::Logger::instance().level())) {            \
      std::ostringstream oocc_log_oss_;                                    \
      oocc_log_oss_ << stream_expr;                                        \
      ::oocc::Logger::instance().write(lvl, component,                     \
                                       oocc_log_oss_.str());               \
    }                                                                      \
  } while (false)

#define OOCC_DEBUG(component, s) OOCC_LOG(::oocc::LogLevel::kDebug, component, s)
#define OOCC_INFO(component, s) OOCC_LOG(::oocc::LogLevel::kInfo, component, s)
#define OOCC_WARN(component, s) OOCC_LOG(::oocc::LogLevel::kWarn, component, s)
#define OOCC_ERROR(component, s) OOCC_LOG(::oocc::LogLevel::kError, component, s)
