// Deterministic, seedable RNG (xoshiro256**) so tests and benches are
// reproducible across platforms — std::mt19937 distributions are not
// guaranteed identical across standard libraries.
#pragma once

#include <cstdint>

namespace oocc {

/// xoshiro256** 1.0 by Blackman & Vigna (public domain reference algorithm).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    // SplitMix64 expansion of the seed into the 256-bit state.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t next_u64() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, bound); bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) noexcept {
    // Lemire's multiply-shift rejection method.
    std::uint64_t x = next_u64();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto low = static_cast<std::uint64_t>(m);
    if (low < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (low < threshold) {
        x = next_u64();
        m = static_cast<__uint128_t>(x) * bound;
        low = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t next_int(std::int64_t lo, std::int64_t hi) noexcept {
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(next_below(span));
  }

  /// Uniform double in [0, 1).
  double next_double() noexcept {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double next_double(double lo, double hi) noexcept {
    return lo + (hi - lo) * next_double();
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace oocc
