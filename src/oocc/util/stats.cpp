#include "oocc/util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace oocc {

void RunningStats::add(double value) noexcept {
  ++count_;
  sum_ += value;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

double RunningStats::min() const noexcept { return count_ == 0 ? 0.0 : min_; }

double RunningStats::max() const noexcept { return count_ == 0 ? 0.0 : max_; }

double RunningStats::variance() const noexcept {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double total = static_cast<double>(count_ + other.count_);
  const double delta = other.mean_ - mean_;
  m2_ += other.m2_ + delta * delta * static_cast<double>(count_) *
                         static_cast<double>(other.count_) / total;
  mean_ = (mean_ * static_cast<double>(count_) +
           other.mean_ * static_cast<double>(other.count_)) /
          total;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

std::string RunningStats::summary(int precision) const {
  std::ostringstream oss;
  oss.precision(precision);
  oss << "n=" << count_ << " mean=" << mean() << " min=" << min()
      << " max=" << max() << " sd=" << stddev();
  return oss.str();
}

}  // namespace oocc
