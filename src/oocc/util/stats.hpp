// Small running-statistics accumulator used by benches and the simulator's
// per-processor counters.
#pragma once

#include <cstdint>
#include <limits>
#include <string>

namespace oocc {

/// Streaming min/max/mean/variance accumulator (Welford's algorithm).
class RunningStats {
 public:
  void add(double value) noexcept;

  std::uint64_t count() const noexcept { return count_; }
  double mean() const noexcept { return count_ == 0 ? 0.0 : mean_; }
  double min() const noexcept;
  double max() const noexcept;
  /// Population variance; 0 for fewer than 2 samples.
  double variance() const noexcept;
  double stddev() const noexcept;
  double sum() const noexcept { return sum_; }

  /// Merges another accumulator into this one (parallel reduction).
  void merge(const RunningStats& other) noexcept;

  /// "n=4 mean=1.25 min=1 max=2 sd=0.43"
  std::string summary(int precision = 3) const;

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace oocc
