#include "oocc/util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "oocc/util/error.hpp"

namespace oocc {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  OOCC_REQUIRE(!header_.empty(), "table must have at least one column");
}

void TextTable::add_row(std::vector<std::string> row) {
  OOCC_REQUIRE(row.size() == header_.size(),
               "row arity " << row.size() << " does not match header arity "
                            << header_.size());
  rows_.push_back(std::move(row));
}

void TextTable::add_numeric_row(const std::string& label,
                                const std::vector<double>& values,
                                int precision) {
  std::vector<std::string> row;
  row.reserve(values.size() + 1);
  row.push_back(label);
  for (double v : values) {
    row.push_back(format_fixed(v, precision));
  }
  add_row(std::move(row));
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream oss;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) oss << " | ";
      oss << std::left << std::setw(static_cast<int>(widths[c])) << row[c];
    }
    oss << "\n";
  };
  emit_row(header_);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    if (c != 0) oss << "-+-";
    oss << std::string(widths[c], '-');
  }
  oss << "\n";
  for (const auto& row : rows_) {
    emit_row(row);
  }
  return oss.str();
}

std::string TextTable::to_csv() const {
  std::ostringstream oss;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) oss << ",";
      std::string cell = row[c];
      std::replace(cell.begin(), cell.end(), ',', ';');
      oss << cell;
    }
    oss << "\n";
  };
  emit(header_);
  for (const auto& row : rows_) {
    emit(row);
  }
  return oss.str();
}

std::string format_fixed(double value, int precision) {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(precision) << value;
  return oss.str();
}

std::string format_ratio(int num, int den) {
  OOCC_REQUIRE(den != 0, "ratio denominator must be nonzero");
  if (den == 1) {
    return std::to_string(num);
  }
  return std::to_string(num) + "/" + std::to_string(den);
}

}  // namespace oocc
