// ASCII table / CSV rendering used by the benchmark harness to print rows in
// the same layout as the paper's tables (Table 1, Table 2) and figures.
#pragma once

#include <string>
#include <vector>

namespace oocc {

/// Column-aligned text table. Cells are strings; numeric helpers format with
/// a fixed precision so bench output lines up with the paper's tables.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Appends a row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Convenience: formats each double with `precision` decimal digits.
  void add_numeric_row(const std::string& label,
                       const std::vector<double>& values, int precision = 2);

  std::size_t row_count() const noexcept { return rows_.size(); }

  /// Renders with a header rule, e.g.
  ///   Slab Ratio | 4 Procs | 16 Procs
  ///   -----------+---------+---------
  ///   1/8        | 1045.84 | 897.59
  std::string to_string() const;

  /// Renders as RFC-4180-ish CSV (no quoting of embedded commas needed for
  /// our numeric content; commas in cells are replaced by ';').
  std::string to_csv() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision (no trailing spaces).
std::string format_fixed(double value, int precision);

/// Formats a ratio like 1/8 as "1/8" (denominator 1 prints "1").
std::string format_ratio(int num, int den);

}  // namespace oocc
