// Tests for the application kernels built on the out-of-core runtime:
// the 2-D Jacobi solver (correctness across processor counts and slab
// sizes, boundary invariants, convergence behaviour) and the left-looking
// out-of-core LU factorization.
#include <gtest/gtest.h>

#include <cmath>

#include "oocc/apps/jacobi.hpp"
#include "oocc/apps/lu.hpp"
#include "oocc/sim/collectives.hpp"

namespace oocc::apps {
namespace {

using io::DiskModel;
using io::StorageOrder;
using io::TempDir;
using sim::Machine;
using sim::MachineCostModel;
using sim::SpmdContext;

double hot_edge(std::int64_t r, std::int64_t c) {
  return c == 0 ? 100.0 : (r % 4 == 0 ? 2.0 : -1.0);
}

struct JacobiCase {
  int nprocs;
  std::int64_t n;
  int iterations;
  int slab_div;  // slab = local / slab_div
};

class JacobiTest : public ::testing::TestWithParam<JacobiCase> {};

INSTANTIATE_TEST_SUITE_P(
    Sweep, JacobiTest,
    ::testing::Values(JacobiCase{1, 16, 3, 1}, JacobiCase{2, 16, 5, 2},
                      JacobiCase{4, 16, 5, 4}, JacobiCase{4, 32, 8, 2},
                      JacobiCase{3, 18, 4, 3},  // non-power-of-two procs
                      JacobiCase{4, 32, 1, 8}),
    [](const ::testing::TestParamInfo<JacobiCase>& info) {
      return "p" + std::to_string(info.param.nprocs) + "_n" +
             std::to_string(info.param.n) + "_it" +
             std::to_string(info.param.iterations) + "_d" +
             std::to_string(info.param.slab_div);
    });

TEST_P(JacobiTest, MatchesSerialReference) {
  const JacobiCase tc = GetParam();
  TempDir dir;
  Machine machine(tc.nprocs, MachineCostModel::zero());
  machine.run([&](SpmdContext& ctx) {
    runtime::OutOfCoreArray a(ctx, dir.path(), "a",
                              hpf::column_block(tc.n, tc.n, tc.nprocs),
                              StorageOrder::kColumnMajor, DiskModel::zero());
    runtime::OutOfCoreArray b(ctx, dir.path(), "b",
                              hpf::column_block(tc.n, tc.n, tc.nprocs),
                              StorageOrder::kColumnMajor, DiskModel::zero());
    a.initialize(ctx, hot_edge, tc.n * tc.n);
    const std::int64_t slab = std::max<std::int64_t>(
        tc.n, a.local_elements() / tc.slab_div);
    runtime::OutOfCoreArray& final_state =
        ooc_jacobi(ctx, a, b, tc.iterations, slab);
    std::vector<double> got = final_state.gather_global(ctx, tc.n * tc.n);
    if (ctx.rank() == 0) {
      const std::vector<double> want =
          serial_jacobi(tc.n, tc.iterations, hot_edge);
      ASSERT_EQ(got.size(), want.size());
      for (std::size_t i = 0; i < got.size(); ++i) {
        ASSERT_NEAR(got[i], want[i], 1e-12) << "i=" << i;
      }
    }
  });
}

TEST(JacobiTest, BoundaryValuesAreInvariant) {
  const std::int64_t n = 16;
  TempDir dir;
  Machine machine(4, MachineCostModel::zero());
  machine.run([&](SpmdContext& ctx) {
    runtime::OutOfCoreArray a(ctx, dir.path(), "a",
                              hpf::column_block(n, n, 4),
                              StorageOrder::kColumnMajor, DiskModel::zero());
    runtime::OutOfCoreArray b(ctx, dir.path(), "b",
                              hpf::column_block(n, n, 4),
                              StorageOrder::kColumnMajor, DiskModel::zero());
    a.initialize(ctx, hot_edge, n * n);
    runtime::OutOfCoreArray& fin = ooc_jacobi(ctx, a, b, 7, n * 2);
    std::vector<double> got = fin.gather_global(ctx, n * n);
    if (ctx.rank() == 0) {
      for (std::int64_t r = 0; r < n; ++r) {
        EXPECT_DOUBLE_EQ(got[static_cast<std::size_t>(r)], hot_edge(r, 0));
        EXPECT_DOUBLE_EQ(got[static_cast<std::size_t>((n - 1) * n + r)],
                         hot_edge(r, n - 1));
      }
      for (std::int64_t c = 0; c < n; ++c) {
        EXPECT_DOUBLE_EQ(got[static_cast<std::size_t>(c * n)],
                         hot_edge(0, c));
        EXPECT_DOUBLE_EQ(got[static_cast<std::size_t>(c * n + n - 1)],
                         hot_edge(n - 1, c));
      }
    }
  });
}

TEST(JacobiTest, ConvergesTowardHarmonicInterior) {
  // With fixed boundaries, repeated sweeps approach the discrete harmonic
  // solution: the max interior update magnitude must shrink.
  const std::int64_t n = 16;
  TempDir dir;
  Machine machine(2, MachineCostModel::zero());
  machine.run([&](SpmdContext& ctx) {
    runtime::OutOfCoreArray a(ctx, dir.path(), "a",
                              hpf::column_block(n, n, 2),
                              StorageOrder::kColumnMajor, DiskModel::zero());
    runtime::OutOfCoreArray b(ctx, dir.path(), "b",
                              hpf::column_block(n, n, 2),
                              StorageOrder::kColumnMajor, DiskModel::zero());
    a.initialize(ctx, hot_edge, n * n);
    runtime::OutOfCoreArray& s10 = ooc_jacobi(ctx, a, b, 10, n * 2);
    std::vector<double> at10 = s10.gather_global(ctx, n * n);
    // 10 more iterations continuing from the current state.
    runtime::OutOfCoreArray& other = &s10 == &a ? b : a;
    runtime::OutOfCoreArray& s20 = ooc_jacobi(ctx, s10, other, 10, n * 2);
    std::vector<double> at20 = s20.gather_global(ctx, n * n);
    if (ctx.rank() == 0) {
      const std::vector<double> exact = serial_jacobi(n, 500, hot_edge);
      double err10 = 0.0;
      double err20 = 0.0;
      for (std::size_t i = 0; i < exact.size(); ++i) {
        err10 = std::max(err10, std::abs(at10[i] - exact[i]));
        err20 = std::max(err20, std::abs(at20[i] - exact[i]));
      }
      EXPECT_LT(err20, err10);
    }
  });
}

TEST(JacobiTest, MismatchedDistributionsRejected) {
  TempDir dir;
  Machine machine(2, MachineCostModel::zero());
  EXPECT_THROW(machine.run([&](SpmdContext& ctx) {
                 runtime::OutOfCoreArray a(
                     ctx, dir.path(), "a", hpf::column_block(8, 8, 2),
                     StorageOrder::kColumnMajor, DiskModel::zero());
                 runtime::OutOfCoreArray b(
                     ctx, dir.path(), "b", hpf::row_block(8, 8, 2),
                     StorageOrder::kColumnMajor, DiskModel::zero());
                 ooc_jacobi_iteration(ctx, a, b, 64);
               }),
               Error);
}

TEST(JacobiTest, SlabSizeDoesNotChangeResults) {
  const std::int64_t n = 16;
  std::vector<double> results[2];
  for (int which = 0; which < 2; ++which) {
    TempDir dir;
    Machine machine(4, MachineCostModel::zero());
    machine.run([&](SpmdContext& ctx) {
      runtime::OutOfCoreArray a(ctx, dir.path(), "a",
                                hpf::column_block(n, n, 4),
                                StorageOrder::kColumnMajor,
                                DiskModel::zero());
      runtime::OutOfCoreArray b(ctx, dir.path(), "b",
                                hpf::column_block(n, n, 4),
                                StorageOrder::kColumnMajor,
                                DiskModel::zero());
      a.initialize(ctx, hot_edge, n * n);
      const std::int64_t slab = which == 0 ? n : n * 4;  // 1 col vs whole
      runtime::OutOfCoreArray& fin = ooc_jacobi(ctx, a, b, 6, slab);
      std::vector<double> got = fin.gather_global(ctx, n * n);
      if (ctx.rank() == 0) {
        results[which] = std::move(got);
      }
    });
  }
  ASSERT_EQ(results[0].size(), results[1].size());
  for (std::size_t i = 0; i < results[0].size(); ++i) {
    EXPECT_DOUBLE_EQ(results[0][i], results[1][i]);
  }
}

// ---------------------------------------------------------------------
// Out-of-core LU factorization

double lu_matrix(std::int64_t r, std::int64_t c) {
  // Diagonally dominant: safe for LU without pivoting.
  const double off = std::sin(static_cast<double>(r * 7 + c * 3)) * 0.5;
  return r == c ? 64.0 + off : off;
}

struct LuCase {
  int nprocs;
  std::int64_t n;
  std::int64_t panel_cols;
};

class LuTest : public ::testing::TestWithParam<LuCase> {};

INSTANTIATE_TEST_SUITE_P(
    Sweep, LuTest,
    ::testing::Values(LuCase{1, 16, 4}, LuCase{1, 16, 16}, LuCase{2, 16, 4},
                      LuCase{4, 16, 2}, LuCase{4, 32, 4}, LuCase{2, 24, 5}),
    [](const ::testing::TestParamInfo<LuCase>& info) {
      return "p" + std::to_string(info.param.nprocs) + "_n" +
             std::to_string(info.param.n) + "_w" +
             std::to_string(info.param.panel_cols);
    });

TEST_P(LuTest, MatchesSerialFactorization) {
  const LuCase tc = GetParam();
  TempDir dir;
  Machine machine(tc.nprocs, MachineCostModel::zero());
  machine.run([&](SpmdContext& ctx) {
    runtime::OutOfCoreArray a(ctx, dir.path(), "a",
                              hpf::column_block(tc.n, tc.n, tc.nprocs),
                              StorageOrder::kColumnMajor, DiskModel::zero());
    a.initialize(ctx, lu_matrix, tc.n * tc.n);
    runtime::MemoryBudget budget(4 * tc.n * tc.panel_cols + 16);
    ooc_lu_factor(ctx, a, budget, tc.panel_cols);
    std::vector<double> got = a.gather_global(ctx, tc.n * tc.n);
    if (ctx.rank() == 0) {
      std::vector<double> want(static_cast<std::size_t>(tc.n * tc.n));
      for (std::int64_t c = 0; c < tc.n; ++c) {
        for (std::int64_t r = 0; r < tc.n; ++r) {
          want[static_cast<std::size_t>(c * tc.n + r)] = lu_matrix(r, c);
        }
      }
      serial_lu(want, tc.n);
      for (std::size_t i = 0; i < want.size(); ++i) {
        ASSERT_NEAR(got[i], want[i], 1e-9) << "i=" << i;
      }
    }
  });
}

TEST(LuTest, FactorsReconstructTheMatrix) {
  // L (unit lower) times U must reproduce the original matrix.
  const std::int64_t n = 24;
  TempDir dir;
  Machine machine(4, MachineCostModel::zero());
  machine.run([&](SpmdContext& ctx) {
    runtime::OutOfCoreArray a(ctx, dir.path(), "a",
                              hpf::column_block(n, n, 4),
                              StorageOrder::kColumnMajor, DiskModel::zero());
    a.initialize(ctx, lu_matrix, n * n);
    runtime::MemoryBudget budget(1 << 16);
    ooc_lu_factor(ctx, a, budget, 3);
    std::vector<double> lu = a.gather_global(ctx, n * n);
    if (ctx.rank() == 0) {
      auto at = [&](std::int64_t r, std::int64_t c) {
        return lu[static_cast<std::size_t>(c * n + r)];
      };
      for (std::int64_t c = 0; c < n; ++c) {
        for (std::int64_t r = 0; r < n; ++r) {
          double sum = 0.0;
          const std::int64_t kmax = std::min(r, c);
          for (std::int64_t k = 0; k < kmax; ++k) {
            sum += at(r, k) * at(k, c);  // L(r,k) * U(k,c)
          }
          // Diagonal of L is implicit 1.
          sum += r <= c ? at(r, c) : at(r, c) * at(c, c);
          ASSERT_NEAR(sum, lu_matrix(r, c), 1e-8)
              << "(" << r << "," << c << ")";
        }
      }
    }
  });
}

TEST(LuTest, ZeroPivotReported) {
  TempDir dir;
  Machine machine(2, MachineCostModel::zero());
  try {
    machine.run([&](SpmdContext& ctx) {
      runtime::OutOfCoreArray a(ctx, dir.path(), "a",
                                hpf::column_block(8, 8, 2),
                                StorageOrder::kColumnMajor,
                                DiskModel::zero());
      a.initialize(ctx, [](std::int64_t, std::int64_t) { return 0.0; }, 64);
      runtime::MemoryBudget budget(1 << 12);
      ooc_lu_factor(ctx, a, budget, 2);
    });
    FAIL();
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kRuntimeError);
    EXPECT_NE(std::string(e.what()).find("pivot"), std::string::npos);
  }
}

TEST(LuTest, RejectsNonColumnBlockLayouts) {
  TempDir dir;
  Machine machine(2, MachineCostModel::zero());
  EXPECT_THROW(machine.run([&](SpmdContext& ctx) {
                 runtime::OutOfCoreArray a(
                     ctx, dir.path(), "a", hpf::row_block(8, 8, 2),
                     StorageOrder::kColumnMajor, DiskModel::zero());
                 runtime::MemoryBudget budget(1 << 12);
                 ooc_lu_factor(ctx, a, budget, 2);
               }),
               Error);
}

TEST(LuTest, PanelWidthDoesNotChangeResult) {
  const std::int64_t n = 16;
  std::vector<double> results[2];
  for (int which = 0; which < 2; ++which) {
    TempDir dir;
    Machine machine(2, MachineCostModel::zero());
    machine.run([&](SpmdContext& ctx) {
      runtime::OutOfCoreArray a(ctx, dir.path(), "a",
                                hpf::column_block(n, n, 2),
                                StorageOrder::kColumnMajor,
                                DiskModel::zero());
      a.initialize(ctx, lu_matrix, n * n);
      runtime::MemoryBudget budget(1 << 16);
      ooc_lu_factor(ctx, a, budget, which == 0 ? 2 : 8);
      std::vector<double> got = a.gather_global(ctx, n * n);
      if (ctx.rank() == 0) {
        results[which] = std::move(got);
      }
    });
  }
  for (std::size_t i = 0; i < results[0].size(); ++i) {
    EXPECT_NEAR(results[0][i], results[1][i], 1e-10);
  }
}

}  // namespace
}  // namespace oocc::apps
