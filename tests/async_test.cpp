// Tests for the real asynchronous I/O engine (docs/async-io.md): engine
// ordering/error semantics, per-fd pread/pwrite concurrency, the LAF's
// charge-at-submit / settle-at-wait split, fault and crash-journal behaviour
// on worker threads, and bit-identity of the pool between async and
// synchronous modes.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <mutex>
#include <numeric>
#include <thread>
#include <vector>

#include "oocc/io/async_engine.hpp"
#include "oocc/io/laf.hpp"
#include "oocc/runtime/bufferpool.hpp"
#include "oocc/sim/machine.hpp"
#include "oocc/util/faults.hpp"

namespace oocc::io {
namespace {

using faults::ScopedFaultPlan;

/// Runs `body` on a 1-processor machine with unit-test cost models.
template <typename F>
sim::RunReport run1(F&& body) {
  sim::Machine machine(1, sim::MachineCostModel::unit_test());
  return machine.run(std::forward<F>(body));
}

// ------------------------------------------------------------- the engine

TEST(AsyncEngineTest, SubmitWaitCompletesAllJobsAndCounts) {
  AsyncEngine engine(3);
  EXPECT_EQ(engine.threads(), 3);
  std::atomic<int> ran{0};
  std::vector<AsyncEngine::Ticket> tickets;
  int key_a = 0;
  int key_b = 0;
  for (int i = 0; i < 32; ++i) {
    tickets.push_back(
        engine.submit(i % 2 == 0 ? &key_a : &key_b, [&] { ++ran; }));
  }
  for (AsyncEngine::Ticket& t : tickets) {
    t.wait();
  }
  EXPECT_EQ(ran.load(), 32);
  const AsyncEngine::Counters c = engine.counters();
  EXPECT_EQ(c.jobs_submitted, 32u);
  EXPECT_EQ(c.jobs_completed, 32u);
  EXPECT_GE(c.max_queue_depth, 1u);
}

TEST(AsyncEngineTest, PerStreamJobsRunInFifoOrder) {
  AsyncEngine engine(4);  // more workers than streams: order must still hold
  std::vector<int> order;
  std::mutex mu;
  int key = 0;
  std::vector<AsyncEngine::Ticket> tickets;
  for (int i = 0; i < 64; ++i) {
    tickets.push_back(engine.submit(&key, [&, i] {
      std::lock_guard<std::mutex> lock(mu);
      order.push_back(i);
    }));
  }
  for (AsyncEngine::Ticket& t : tickets) {
    t.wait();
  }
  std::vector<int> want(64);
  std::iota(want.begin(), want.end(), 0);
  EXPECT_EQ(order, want);
}

TEST(AsyncEngineTest, JobExceptionRethrowsAtWait) {
  AsyncEngine engine(1);
  int key = 0;
  AsyncEngine::Ticket t = engine.submit(
      &key, [] { OOCC_THROW(ErrorCode::kIoError, "worker boom"); });
  try {
    t.wait();
    FAIL();
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kIoError);
    EXPECT_NE(std::string(e.what()).find("worker boom"), std::string::npos);
  }
  // A failed job still counts as completed; the engine stays usable.
  EXPECT_EQ(engine.counters().jobs_completed, 1u);
  AsyncEngine::Ticket ok = engine.submit(&key, [] {});
  EXPECT_NO_THROW(ok.wait());
}

TEST(AsyncEngineTest, DestructorDrainsUnwaitedJobs) {
  std::atomic<int> ran{0};
  {
    AsyncEngine engine(2);
    int key_a = 0;
    int key_b = 0;
    for (int i = 0; i < 16; ++i) {
      engine.submit(i % 2 == 0 ? &key_a : &key_b, [&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        ++ran;
      });
    }
    // No wait: the destructor must finish every queued job, not drop them.
  }
  EXPECT_EQ(ran.load(), 16);
}

TEST(AsyncEngineTest, DefaultThreadsHonorsEnvAndProcessorCount) {
  unsetenv("OOCC_IO_THREADS");
  EXPECT_EQ(AsyncEngine::default_threads(1), 1);
  EXPECT_EQ(AsyncEngine::default_threads(4), 4);
  EXPECT_EQ(AsyncEngine::default_threads(16), 4);  // capped at 4 by default
  setenv("OOCC_IO_THREADS", "7", 1);
  EXPECT_EQ(AsyncEngine::default_threads(2), 7);
  unsetenv("OOCC_IO_THREADS");
}

// ------------------------------------------- FileBackend: raw concurrency

TEST(FileBackendAsyncTest, ConcurrentPerFdPreadPwriteAreSafe) {
  // Pins the contract the engine relies on: pread/pwrite carry their own
  // offsets, so disjoint-range transfers on one fd need no locking.
  TempDir dir;
  FileBackend f(dir.file("c.bin"));
  constexpr int kThreads = 4;
  constexpr std::size_t kPer = 4096;  // doubles per thread
  f.truncate(kThreads * kPer * sizeof(double));
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      std::vector<double> block(kPer);
      for (std::size_t i = 0; i < kPer; ++i) {
        block[i] = t * 10000.0 + static_cast<double>(i);
      }
      f.write_at(static_cast<std::uint64_t>(t) * kPer * sizeof(double),
                 block.data(), kPer * sizeof(double));
    });
  }
  for (std::thread& t : writers) {
    t.join();
  }
  std::atomic<int> bad{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < kThreads; ++t) {
    readers.emplace_back([&, t] {
      std::vector<double> block(kPer);
      f.read_at(static_cast<std::uint64_t>(t) * kPer * sizeof(double),
                block.data(), kPer * sizeof(double));
      for (std::size_t i = 0; i < kPer; ++i) {
        if (block[i] != t * 10000.0 + static_cast<double>(i)) {
          ++bad;
        }
      }
    });
  }
  for (std::thread& t : readers) {
    t.join();
  }
  EXPECT_EQ(bad.load(), 0);
}

TEST(FileBackendAsyncTest, AsyncRoundTripOnOneStream) {
  TempDir dir;
  FileBackend f(dir.file("rt.bin"));
  AsyncEngine engine(2);
  std::vector<double> out(64, 7.5);
  std::vector<double> in(64, 0.0);
  // Same backend = same stream: the read is FIFO-ordered after the write.
  AsyncEngine::Ticket w =
      f.write_at_async(engine, 0, out.data(), out.size() * sizeof(double));
  AsyncEngine::Ticket r =
      f.read_at_async(engine, 0, in.data(), in.size() * sizeof(double));
  w.wait();
  r.wait();
  EXPECT_EQ(in, out);
}

// ----------------------------------------------- LAF async vs sync parity

class LafAsyncOrderTest : public ::testing::TestWithParam<StorageOrder> {};

INSTANTIATE_TEST_SUITE_P(Orders, LafAsyncOrderTest,
                         ::testing::Values(StorageOrder::kColumnMajor,
                                           StorageOrder::kRowMajor));

TEST_P(LafAsyncOrderTest, ReadSectionAsyncMatchesSyncExactly) {
  TempDir dir;
  run1([&](sim::SpmdContext& ctx) {
    LocalArrayFile laf(dir.file("a.laf"), 8, 6, GetParam(),
                       DiskModel::unit_test());
    std::vector<double> all(48);
    for (std::size_t i = 0; i < all.size(); ++i) {
      all[i] = static_cast<double>(i) * 1.25;
    }
    laf.write_full(ctx, all);
    const Section s{1, 7, 1, 5};  // strided in either order
    AsyncEngine engine(2);

    std::vector<double> sync_buf(static_cast<std::size_t>(s.elements()));
    const double t0 = ctx.clock().now();
    const IoStats before_sync = laf.stats();
    laf.read_section(ctx, s, sync_buf);
    const double sync_time = ctx.clock().now() - t0;
    const std::uint64_t sync_reqs =
        laf.stats().read_requests - before_sync.read_requests;

    std::vector<double> async_buf(static_cast<std::size_t>(s.elements()));
    const double t1 = ctx.clock().now();
    const IoStats before_async = laf.stats();
    AsyncHandle h = laf.read_section_async(ctx, engine, s, async_buf);
    laf.settle(ctx, h);
    const double async_time = ctx.clock().now() - t1;

    EXPECT_EQ(async_buf, sync_buf);
    // Priced identically: same simulated time, same request count; only the
    // async_reads counter distinguishes the modes.
    EXPECT_DOUBLE_EQ(async_time, sync_time);
    EXPECT_EQ(laf.stats().read_requests - before_async.read_requests,
              sync_reqs);
    EXPECT_EQ(laf.stats().async_reads, 1u);
  });
}

TEST_P(LafAsyncOrderTest, WriteSectionAsyncMatchesSyncExactly) {
  TempDir dir;
  run1([&](sim::SpmdContext& ctx) {
    LocalArrayFile sync_laf(dir.file("s.laf"), 8, 6, GetParam(),
                            DiskModel::unit_test());
    LocalArrayFile async_laf(dir.file("a.laf"), 8, 6, GetParam(),
                             DiskModel::unit_test());
    sync_laf.fill(ctx, 0.0);
    async_laf.fill(ctx, 0.0);
    const Section s{2, 7, 0, 4};
    std::vector<double> data(static_cast<std::size_t>(s.elements()));
    for (std::size_t i = 0; i < data.size(); ++i) {
      data[i] = 100.0 - static_cast<double>(i);
    }
    AsyncEngine engine(2);

    const double t0 = ctx.clock().now();
    sync_laf.write_section(ctx, s, data);
    const double sync_time = ctx.clock().now() - t0;

    const double t1 = ctx.clock().now();
    AsyncHandle h = async_laf.write_section_async(ctx, engine, s, data);
    async_laf.settle(ctx, h);
    const double async_time = ctx.clock().now() - t1;

    std::vector<double> want(48);
    std::vector<double> got(48);
    sync_laf.read_full(ctx, want);
    async_laf.read_full(ctx, got);
    EXPECT_EQ(got, want);
    EXPECT_DOUBLE_EQ(async_time, sync_time);
    EXPECT_EQ(async_laf.stats().write_requests,
              sync_laf.stats().write_requests);
    EXPECT_EQ(async_laf.stats().bytes_written, sync_laf.stats().bytes_written);
    EXPECT_EQ(async_laf.stats().async_writes, 1u);
  });
}

// ------------------------------------------------ faults on worker threads

TEST(LafAsyncFaultTest, PermanentFaultSurfacesAtSettle) {
  TempDir dir;
  ScopedFaultPlan plan("read:nth=1,kind=permanent");
  run1([&](sim::SpmdContext& ctx) {
    LocalArrayFile laf(dir.file("p.laf"), 4, 4, StorageOrder::kColumnMajor,
                       DiskModel::unit_test());
    laf.fill(ctx, 3.0);
    AsyncEngine engine(2);
    std::vector<double> buf(16);
    AsyncHandle h = laf.read_section_async(ctx, engine, laf.full(), buf);
    try {
      laf.settle(ctx, h);
      FAIL();
    } catch (const Error& e) {
      EXPECT_EQ(e.code(), ErrorCode::kIoError);
    }
  });
}

TEST(LafAsyncFaultTest, RankFilteredFaultHitsSubmittingRankOnWorker) {
  // The worker runs under the submitting rank's identity, so a rank-
  // filtered spec fires for that rank's jobs even though the host thread
  // executing them is not a simulated processor.
  TempDir dir;
  ScopedFaultPlan plan("read:rank=1,nth=1,kind=permanent");
  sim::Machine machine(2, sim::MachineCostModel::unit_test());
  std::atomic<int> failures{0};
  machine.run([&](sim::SpmdContext& ctx) {
    LocalArrayFile laf(dir.file("rank" + std::to_string(ctx.rank()) + ".laf"),
                       4, 4, StorageOrder::kColumnMajor,
                       DiskModel::unit_test());
    laf.fill(ctx, 1.0);
    AsyncEngine engine(2);
    std::vector<double> buf(16);
    AsyncHandle h = laf.read_section_async(ctx, engine, laf.full(), buf);
    try {
      laf.settle(ctx, h);
    } catch (const Error&) {
      ++failures;
      EXPECT_EQ(ctx.rank(), 1);
    }
  });
  EXPECT_EQ(failures.load(), 1);
}

TEST(LafAsyncFaultTest, TransientFaultMaskedAndBackoffChargedAtSettle) {
  TempDir dir;
  ScopedFaultPlan plan("read:nth=1");  // transient by default
  run1([&](sim::SpmdContext& ctx) {
    LocalArrayFile laf(dir.file("t.laf"), 4, 4, StorageOrder::kColumnMajor,
                       DiskModel::unit_test());
    laf.fill(ctx, 9.0);
    AsyncEngine engine(2);
    std::vector<double> buf(16);
    const double io_before = ctx.stats().io_time_s;
    AsyncHandle h = laf.read_section_async(ctx, engine, laf.full(), buf);
    laf.settle(ctx, h);
    EXPECT_DOUBLE_EQ(buf[0], 9.0);
    EXPECT_EQ(laf.stats().retries, 1u);
    EXPECT_EQ(ctx.stats().retries, 1u);
    // Deferred backoff landed on the simulated clock at the wait point.
    EXPECT_GT(ctx.stats().io_time_s - io_before,
              laf.disk().request_time(16 * 8, 1) - 1e-12);
  });
}

// ----------------------------------- crash-journal protocol from a worker

TEST(LafAsyncJournalTest, CrashAtShadowFromWorkerDiscardsOnReopen) {
  TempDir dir;
  const std::filesystem::path path = dir.file("j.laf");
  ScopedFaultPlan plan("crash:at=shadow,nth=1");
  run1([&](sim::SpmdContext& ctx) {
    {
      LocalArrayFile laf(path, 4, 4, StorageOrder::kColumnMajor,
                         DiskModel::unit_test());
      laf.fill(ctx, 1.0);
      laf.set_journaling(true);
      AsyncEngine engine(2);
      AsyncHandle h = laf.write_section_async(ctx, engine, laf.full(),
                                              std::vector<double>(16, 2.0));
      try {
        laf.settle(ctx, h);
        FAIL();
      } catch (const Error& e) {
        EXPECT_EQ(e.code(), ErrorCode::kCrash);
      }
    }
    // Reopen: the uncommitted journal record is discarded; the array still
    // holds the pre-crash contents, not a torn mix.
    LocalArrayFile laf(path, 4, 4, StorageOrder::kColumnMajor,
                       DiskModel::unit_test());
    std::vector<double> buf(16);
    laf.read_full(ctx, buf);
    for (double v : buf) {
      EXPECT_DOUBLE_EQ(v, 1.0);
    }
    EXPECT_EQ(laf.stats().recoveries, 0u);
  });
}

TEST(LafAsyncJournalTest, CrashAtApplyFromWorkerReplaysOnReopen) {
  TempDir dir;
  const std::filesystem::path path = dir.file("k.laf");
  ScopedFaultPlan plan("crash:at=apply,nth=1");
  run1([&](sim::SpmdContext& ctx) {
    {
      LocalArrayFile laf(path, 4, 4, StorageOrder::kColumnMajor,
                         DiskModel::unit_test());
      laf.fill(ctx, 1.0);
      laf.set_journaling(true);
      AsyncEngine engine(2);
      AsyncHandle h = laf.write_section_async(ctx, engine, laf.full(),
                                              std::vector<double>(16, 2.0));
      EXPECT_THROW(laf.settle(ctx, h), Error);
      EXPECT_GE(laf.stats().journal_writes, 1u);
    }
    // Reopen: the committed record is replayed — the write is complete.
    LocalArrayFile laf(path, 4, 4, StorageOrder::kColumnMajor,
                       DiskModel::unit_test());
    std::vector<double> buf(16);
    laf.read_full(ctx, buf);
    for (double v : buf) {
      EXPECT_DOUBLE_EQ(v, 2.0);
    }
    EXPECT_EQ(laf.stats().recoveries, 1u);
  });
}

TEST(LafAsyncJournalTest, JournaledWritesInterleaveWithAsyncReads) {
  // Mixed traffic on one LAF: journaled async write-backs and async reads
  // share the file's FIFO stream, so a read submitted after a write of the
  // same range sees the new bytes.
  TempDir dir;
  run1([&](sim::SpmdContext& ctx) {
    LocalArrayFile laf(dir.file("m.laf"), 8, 8, StorageOrder::kColumnMajor,
                       DiskModel::unit_test());
    laf.fill(ctx, 0.0);
    laf.set_journaling(true);
    AsyncEngine engine(2);
    const Section left{0, 8, 0, 4};
    const Section right{0, 8, 4, 8};
    AsyncHandle w1 = laf.write_section_async(ctx, engine, left,
                                             std::vector<double>(32, 1.0));
    std::vector<double> r1(32);
    AsyncHandle h1 = laf.read_section_async(ctx, engine, left, r1);
    AsyncHandle w2 = laf.write_section_async(ctx, engine, right,
                                             std::vector<double>(32, 2.0));
    // A synchronous read of a disjoint range runs on the compute thread
    // while the workers are busy — per-fd concurrency in anger.
    std::vector<double> l0(32);
    laf.read_section(ctx, left, l0);
    laf.settle(ctx, w1);
    laf.settle(ctx, h1);
    laf.settle(ctx, w2);
    for (double v : r1) {
      EXPECT_DOUBLE_EQ(v, 1.0);
    }
    std::vector<double> r2(32);
    laf.read_section(ctx, right, r2);
    for (double v : r2) {
      EXPECT_DOUBLE_EQ(v, 2.0);
    }
    EXPECT_EQ(laf.stats().journal_writes, 2u);
    EXPECT_EQ(laf.stats().async_writes, 2u);
    EXPECT_EQ(laf.stats().async_reads, 1u);
  });
}

// -------------------------------------------- pool + machine bit-identity

/// Streams two arrays through a SlabBufferPool (read a, stage b = 2*a with
/// read-ahead), flushes, and returns b's final bytes; fills `sim_time` with
/// the rank-0 simulated clock. With `async` the pool uses the machine's
/// engine; without, everything is synchronous.
std::vector<double> run_pool_workload(const std::filesystem::path& dir,
                                      bool async, double* sim_time) {
  constexpr std::int64_t kRows = 16;
  constexpr std::int64_t kCols = 16;
  constexpr std::int64_t kSlab = 4;
  std::vector<double> result;
  sim::Machine machine(2, sim::MachineCostModel::unit_test());
  machine.run([&](sim::SpmdContext& ctx) {
    const std::string tag = std::to_string(ctx.rank());
    LocalArrayFile a(dir / ("a" + tag + (async ? "y" : "n") + ".laf"), kRows,
                     kCols, StorageOrder::kColumnMajor,
                     DiskModel::unit_test());
    LocalArrayFile b(dir / ("b" + tag + (async ? "y" : "n") + ".laf"), kRows,
                     kCols, StorageOrder::kColumnMajor,
                     DiskModel::unit_test());
    std::vector<double> init(kRows * kCols);
    for (std::size_t i = 0; i < init.size(); ++i) {
      init[i] = static_cast<double>(i % 97) + ctx.rank();
    }
    a.write_full(ctx, init);
    b.fill(ctx, 0.0);

    runtime::MemoryBudget budget(kRows * kCols);
    runtime::SlabBufferPool pool(budget, "async_test");
    if (async) {
      pool.set_async_engine(ctx.async_engine());
    }
    for (std::int64_t c = 0; c < kCols; c += kSlab) {
      const Section sec{0, kRows, c, c + kSlab};
      if (c + kSlab < kCols) {  // submit-ahead of the next input slab
        pool.read_ahead(ctx, a, "a", Section{0, kRows, c + kSlab,
                                             c + 2 * kSlab},
                        1.0);
      }
      const runtime::IclaBuffer& in = pool.acquire_read(ctx, a, "a", sec, 1.0);
      runtime::IclaBuffer& out = pool.acquire_write(ctx, b, "b", sec, 1.0);
      const std::span<const double> src = in.data();
      const std::span<double> dst = out.data();
      for (std::size_t i = 0; i < src.size(); ++i) {
        dst[i] = 2.0 * src[i];
      }
      pool.mark_dirty("b", sec, 1.0);
      pool.unpin("b", sec);
      pool.unpin("a", sec);
    }
    pool.flush(ctx);
    std::vector<double> out(kRows * kCols);
    b.read_full(ctx, out);
    if (ctx.rank() == 0) {
      result = std::move(out);
      if (sim_time != nullptr) {
        *sim_time = ctx.clock().now();
      }
    }
  });
  return result;
}

TEST(PoolAsyncTest, EngineModeIsBitIdenticalToSynchronous) {
  TempDir dir;
  double t_async = 0.0;
  double t_sync = 0.0;
  const std::vector<double> with_engine =
      run_pool_workload(dir.path(), true, &t_async);
  const std::vector<double> without =
      run_pool_workload(dir.path(), false, &t_sync);
  ASSERT_EQ(with_engine.size(), without.size());
  EXPECT_EQ(with_engine, without);   // same bytes,
  EXPECT_DOUBLE_EQ(t_async, t_sync);  // same price
  for (std::size_t i = 0; i < with_engine.size(); ++i) {
    EXPECT_DOUBLE_EQ(with_engine[i], 2.0 * (static_cast<double>(i % 97)));
  }
}

TEST(PoolAsyncTest, RunReportCountsEngineActivity) {
  TempDir dir;
  constexpr std::int64_t kRows = 8;
  sim::Machine machine(2, sim::MachineCostModel::unit_test());
  sim::RunReport report = machine.run([&](sim::SpmdContext& ctx) {
    ASSERT_NE(ctx.async_engine(), nullptr);
    LocalArrayFile a(dir.file("r" + std::to_string(ctx.rank()) + ".laf"),
                     kRows, kRows, StorageOrder::kColumnMajor,
                     DiskModel::unit_test());
    a.fill(ctx, 1.0);
    runtime::MemoryBudget budget(kRows * kRows);
    runtime::SlabBufferPool pool(budget, "report_test");
    pool.set_async_engine(ctx.async_engine());
    pool.acquire_read(ctx, a, "a", Section{0, kRows, 0, kRows}, 1.0);
    pool.unpin("a", Section{0, kRows, 0, kRows});
    pool.flush(ctx);
  });
  EXPECT_TRUE(report.async.enabled);
  EXPECT_GT(report.async.threads, 0);
  EXPECT_GE(report.async.jobs, 2u);  // one demand read per rank at least
  EXPECT_GE(report.async.busy_s, 0.0);
}

}  // namespace
}  // namespace oocc::io
