// SlabBufferPool / IoScheduler unit tests: hit/miss accounting, LRU-with-
// reuse-hint eviction under exact-fit budgets, pin-count discipline and
// leak detection, dirty write-back ordering (disk must see staged data
// before an entry disappears), multi-entry column-coverage assembly, the
// write-path invalidation of overlapping stale ranges, and the
// --prefetch=auto compiler decision built on the cached step pricer.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "oocc/compiler/lower.hpp"
#include "oocc/hpf/programs.hpp"
#include "oocc/io/file_backend.hpp"
#include "oocc/runtime/bufferpool.hpp"
#include "oocc/sim/collectives.hpp"

namespace oocc::runtime {
namespace {

using io::DiskModel;
using io::LocalArrayFile;
using io::Section;
using io::StorageOrder;
using io::TempDir;
using sim::Machine;
using sim::MachineCostModel;
using sim::SpmdContext;

/// Runs `body` on a single simulated processor.
void spmd(const std::function<void(SpmdContext&)>& body) {
  Machine machine(1, MachineCostModel::zero());
  machine.run(body);
}

/// 8x8 column-major LAF filled with r + 100*c.
void fill_laf(SpmdContext& ctx, LocalArrayFile& laf) {
  std::vector<double> all(
      static_cast<std::size_t>(laf.rows() * laf.cols()));
  for (std::int64_t c = 0; c < laf.cols(); ++c) {
    for (std::int64_t r = 0; r < laf.rows(); ++r) {
      all[static_cast<std::size_t>(c * laf.rows() + r)] =
          static_cast<double>(r + 100 * c);
    }
  }
  laf.write_full(ctx, std::span<const double>(all.data(), all.size()));
  laf.reset_stats();
}

Section cols(std::int64_t c0, std::int64_t c1, std::int64_t rows = 8) {
  return Section{0, rows, c0, c1};
}

TEST(SlabBufferPool, HitMissAndStats) {
  TempDir dir;
  spmd([&](SpmdContext& ctx) {
    LocalArrayFile laf(dir.file("a.laf"), 8, 8, StorageOrder::kColumnMajor,
                       DiskModel::zero());
    fill_laf(ctx, laf);
    MemoryBudget budget(1000);
    SlabBufferPool pool(budget, "t");

    IclaBuffer& b0 = pool.acquire_read(ctx, laf, "a", cols(0, 2), -1.0);
    EXPECT_DOUBLE_EQ(b0.at(3, 1), 3 + 100 * 1);
    pool.unpin("a", cols(0, 2));
    EXPECT_EQ(pool.stats().misses, 1u);
    EXPECT_EQ(pool.stats().hits, 0u);
    EXPECT_EQ(laf.stats().read_requests, 1u);

    // Same section again: a hit, no new LAF traffic.
    (void)pool.acquire_read(ctx, laf, "a", cols(0, 2), -1.0);
    pool.unpin("a", cols(0, 2));
    EXPECT_EQ(pool.stats().hits, 1u);
    EXPECT_EQ(pool.stats().elements_hit, 16u);
    EXPECT_EQ(laf.stats().read_requests, 1u);
    EXPECT_EQ(laf.stats().cache_hits, 1u);
    EXPECT_EQ(laf.stats().cache_misses, 1u);

    // A sub-range of a cached entry also hits (containment).
    IclaBuffer& sub = pool.acquire_read(ctx, laf, "a", cols(1, 2), -1.0);
    EXPECT_DOUBLE_EQ(sub.at(5, 0), 5 + 100 * 1);
    pool.unpin("a", cols(1, 2));
    EXPECT_EQ(pool.stats().hits, 2u);
    EXPECT_EQ(laf.stats().read_requests, 1u);
    EXPECT_EQ(pool.pinned_count(), 0);
  });
}

TEST(SlabBufferPool, MultiEntryColumnCoverageAssembles) {
  // Entries of width 3 serve a misaligned width-2 read spanning two of
  // them — the cross-geometry case two fused-then-unfused statements hit.
  TempDir dir;
  spmd([&](SpmdContext& ctx) {
    LocalArrayFile laf(dir.file("a.laf"), 8, 8, StorageOrder::kColumnMajor,
                       DiskModel::zero());
    fill_laf(ctx, laf);
    MemoryBudget budget(1000);
    SlabBufferPool pool(budget, "t");
    (void)pool.acquire_read(ctx, laf, "a", cols(0, 3), -1.0);
    (void)pool.acquire_read(ctx, laf, "a", cols(3, 6), -1.0);
    pool.unpin("a", cols(0, 3));
    pool.unpin("a", cols(3, 6));
    laf.reset_stats();

    IclaBuffer& buf = pool.acquire_read(ctx, laf, "a", cols(2, 4), -1.0);
    pool.unpin("a", cols(2, 4));
    EXPECT_EQ(laf.stats().read_requests, 0u);  // assembled, no disk I/O
    EXPECT_DOUBLE_EQ(buf.at(0, 0), 100 * 2);
    EXPECT_DOUBLE_EQ(buf.at(7, 1), 7 + 100 * 3);
    EXPECT_EQ(pool.stats().hits, 1u);
  });
}

TEST(SlabBufferPool, EvictionUnderExactFitBudgetUsesReuseHints) {
  // Budget holds exactly two 8-column-element entries; the third acquire
  // must evict the one whose next use is farthest away (hint 50), not the
  // least recently used (hint 5).
  TempDir dir;
  spmd([&](SpmdContext& ctx) {
    LocalArrayFile laf(dir.file("a.laf"), 8, 8, StorageOrder::kColumnMajor,
                       DiskModel::zero());
    fill_laf(ctx, laf);
    MemoryBudget budget(16);  // exactly two 8-element single-column entries
    SlabBufferPool pool(budget, "t");

    (void)pool.acquire_read(ctx, laf, "a", cols(0, 1), 5.0);   // keep
    pool.unpin("a", cols(0, 1));
    (void)pool.acquire_read(ctx, laf, "a", cols(1, 2), 50.0);  // victim
    pool.unpin("a", cols(1, 2));
    (void)pool.acquire_read(ctx, laf, "a", cols(2, 3), -1.0);
    pool.unpin("a", cols(2, 3));
    EXPECT_EQ(pool.stats().evictions, 1u);
    EXPECT_TRUE(pool.resident("a", cols(0, 1)));
    EXPECT_FALSE(pool.resident("a", cols(1, 2)));

    // Unknown reuse (-1) ranks even farther: the new entry goes first next.
    (void)pool.acquire_read(ctx, laf, "a", cols(3, 4), 2.0);
    pool.unpin("a", cols(3, 4));
    EXPECT_FALSE(pool.resident("a", cols(2, 3)));
    EXPECT_TRUE(pool.resident("a", cols(0, 1)));
  });
}

TEST(SlabBufferPool, PinnedEntriesAreNeverEvicted) {
  TempDir dir;
  spmd([&](SpmdContext& ctx) {
    LocalArrayFile laf(dir.file("a.laf"), 8, 8, StorageOrder::kColumnMajor,
                       DiskModel::zero());
    fill_laf(ctx, laf);
    MemoryBudget budget(16);
    SlabBufferPool pool(budget, "t");
    (void)pool.acquire_read(ctx, laf, "a", cols(0, 1), -1.0);  // pinned
    (void)pool.acquire_read(ctx, laf, "a", cols(1, 2), -1.0);  // pinned
    EXPECT_EQ(pool.pinned_count(), 2);
    // Nothing evictable: the third acquire must fail loudly, not corrupt a
    // pinned buffer.
    EXPECT_THROW((void)pool.acquire_read(ctx, laf, "a", cols(2, 3), -1.0),
                 Error);
    pool.unpin("a", cols(0, 1));
    (void)pool.acquire_read(ctx, laf, "a", cols(2, 3), -1.0);  // now fits
    pool.unpin("a", cols(1, 2));
    pool.unpin("a", cols(2, 3));
    EXPECT_EQ(pool.pinned_count(), 0);
  });
}

TEST(SlabBufferPool, PinLeakAndDoubleUnpinAreDetected) {
  TempDir dir;
  spmd([&](SpmdContext& ctx) {
    LocalArrayFile laf(dir.file("a.laf"), 8, 8, StorageOrder::kColumnMajor,
                       DiskModel::zero());
    fill_laf(ctx, laf);
    MemoryBudget budget(1000);
    SlabBufferPool pool(budget, "t");
    (void)pool.acquire_read(ctx, laf, "a", cols(0, 2), -1.0);
    (void)pool.acquire_read(ctx, laf, "a", cols(0, 2), -1.0);  // pins twice
    EXPECT_EQ(pool.pinned_count(), 1);
    pool.unpin("a", cols(0, 2));
    EXPECT_EQ(pool.pinned_count(), 1);  // still held once — a "leak"
    pool.unpin("a", cols(0, 2));
    EXPECT_EQ(pool.pinned_count(), 0);
    EXPECT_THROW(pool.unpin("a", cols(0, 2)), Error);
  });
}

TEST(SlabBufferPool, DirtyWriteBackOrderingAndDurability) {
  // A dirty slab evicted under budget pressure must land on disk *before*
  // the entry disappears, and a later (uncached) read must see the staged
  // values; flush() writes the remainder in deterministic section order.
  TempDir dir;
  spmd([&](SpmdContext& ctx) {
    LocalArrayFile laf(dir.file("a.laf"), 8, 8, StorageOrder::kColumnMajor,
                       DiskModel::zero());
    fill_laf(ctx, laf);
    MemoryBudget budget(16);
    SlabBufferPool pool(budget, "t");

    IclaBuffer& stage = pool.acquire_write(ctx, laf, "a", cols(0, 1), -1.0);
    for (std::int64_t r = 0; r < 8; ++r) {
      stage.at(r, 0) = 1000.0 + static_cast<double>(r);
    }
    pool.mark_dirty("a", cols(0, 1), -1.0);
    pool.unpin("a", cols(0, 1));
    EXPECT_EQ(laf.stats().write_requests, 0u);  // still deferred

    // Force eviction of the dirty slab.
    (void)pool.acquire_read(ctx, laf, "a", cols(1, 2), -1.0);
    (void)pool.acquire_read(ctx, laf, "a", cols(2, 3), -1.0);
    pool.unpin("a", cols(1, 2));
    pool.unpin("a", cols(2, 3));
    EXPECT_EQ(pool.stats().writebacks, 1u);
    EXPECT_EQ(laf.stats().write_requests, 1u);
    EXPECT_EQ(laf.stats().cache_writebacks, 1u);

    // Disk now holds the staged values.
    std::vector<double> col(8);
    laf.read_section(ctx, cols(0, 1), std::span<double>(col.data(), 8));
    EXPECT_DOUBLE_EQ(col[3], 1003.0);

    // Stage two more dirty slabs; flush writes both (ascending sections).
    IclaBuffer& s5 = pool.acquire_write(ctx, laf, "a", cols(5, 6), -1.0);
    s5.fill(5.5);
    pool.mark_dirty("a", cols(5, 6), -1.0);
    pool.unpin("a", cols(5, 6));
    const std::uint64_t writes_before = laf.stats().write_requests;
    pool.flush(ctx);
    EXPECT_EQ(laf.stats().write_requests, writes_before + 1);
    laf.read_section(ctx, cols(5, 6), std::span<double>(col.data(), 8));
    EXPECT_DOUBLE_EQ(col[0], 5.5);
  });
}

TEST(SlabBufferPool, MissReadSeesUnflushedDirtyData) {
  // A demand read whose coverage has a hole goes to disk — but a dirty
  // entry overlapping the request holds data the disk does not have yet.
  // The miss path must write it back first, or the read returns stale
  // bytes (the partially-evicted cross-geometry case).
  TempDir dir;
  spmd([&](SpmdContext& ctx) {
    LocalArrayFile laf(dir.file("a.laf"), 8, 8, StorageOrder::kColumnMajor,
                       DiskModel::zero());
    fill_laf(ctx, laf);
    MemoryBudget budget(1000);
    SlabBufferPool pool(budget, "t");

    IclaBuffer& stage = pool.acquire_write(ctx, laf, "a", cols(0, 1), -1.0);
    stage.fill(42.0);
    pool.mark_dirty("a", cols(0, 1), -1.0);
    pool.unpin("a", cols(0, 1));

    // Columns [0,2): column 1 is not cached, so this is a miss that reads
    // the disk — it must still observe the staged column 0.
    IclaBuffer& buf = pool.acquire_read(ctx, laf, "a", cols(0, 2), -1.0);
    EXPECT_DOUBLE_EQ(buf.at(3, 0), 42.0);
    EXPECT_DOUBLE_EQ(buf.at(3, 1), 3 + 100 * 1);
    pool.unpin("a", cols(0, 2));
    EXPECT_EQ(pool.stats().writebacks, 1u);
  });
}

TEST(SlabBufferPool, WriteInvalidatesOverlappingStaleRanges) {
  // A cached wide entry overlapping a newly staged narrow one would serve
  // stale data after the write; acquire_write must retire it (writing it
  // back first if dirty).
  TempDir dir;
  spmd([&](SpmdContext& ctx) {
    LocalArrayFile laf(dir.file("a.laf"), 8, 8, StorageOrder::kColumnMajor,
                       DiskModel::zero());
    fill_laf(ctx, laf);
    MemoryBudget budget(1000);
    SlabBufferPool pool(budget, "t");
    (void)pool.acquire_read(ctx, laf, "a", cols(0, 4), -1.0);
    pool.unpin("a", cols(0, 4));

    IclaBuffer& stage = pool.acquire_write(ctx, laf, "a", cols(1, 2), -1.0);
    stage.fill(-7.0);
    pool.mark_dirty("a", cols(1, 2), -1.0);
    pool.unpin("a", cols(1, 2));
    EXPECT_FALSE(pool.resident("a", cols(0, 4)));  // stale range dropped

    // A fresh read of column 1 must see the staged data (via the dirty
    // entry), and after flush the disk agrees.
    IclaBuffer& again = pool.acquire_read(ctx, laf, "a", cols(1, 2), -1.0);
    EXPECT_DOUBLE_EQ(again.at(2, 0), -7.0);
    pool.unpin("a", cols(1, 2));
    pool.flush(ctx);
    std::vector<double> col(8);
    laf.read_section(ctx, cols(1, 2), std::span<double>(col.data(), 8));
    EXPECT_DOUBLE_EQ(col[2], -7.0);
  });
}

TEST(IoSchedulerTest, PumpsReadAheadInScheduleOrder) {
  TempDir dir;
  spmd([&](SpmdContext& ctx) {
    LocalArrayFile laf(dir.file("a.laf"), 8, 8, StorageOrder::kColumnMajor,
                       DiskModel::zero());
    fill_laf(ctx, laf);
    MemoryBudget budget(32);  // room for four single-column entries
    SlabBufferPool pool(budget, "t");
    IoScheduler sched;
    for (std::int64_t c = 0; c < 8; ++c) {
      sched.enqueue(IoScheduler::Request{&laf, "a", cols(c, c + 1), -1.0});
    }
    // Demand-read column 0, then pump with lookahead 2: columns 1 and 2
    // are fetched ahead; the queue front advances past the resident one.
    (void)pool.acquire_read(ctx, laf, "a", cols(0, 1), -1.0);
    sched.pump(ctx, pool, 2);
    EXPECT_TRUE(pool.resident("a", cols(1, 2)));
    EXPECT_TRUE(pool.resident("a", cols(2, 3)));
    EXPECT_FALSE(pool.resident("a", cols(3, 4)));
    // The prefetched acquire is the double-buffer path, not a reuse hit.
    const std::uint64_t hits_before = pool.stats().hits;
    (void)pool.acquire_read(ctx, laf, "a", cols(1, 2), -1.0);
    EXPECT_EQ(pool.stats().hits, hits_before);
    pool.unpin("a", cols(0, 1));
    pool.unpin("a", cols(1, 2));
  });
}

// --------------------------------------------------------- prefetch=auto

TEST(AutoPrefetch, EnablesWhenComputeCanHideIo) {
  // Compute-heavy machine: the elementwise sweep's input reads overlap
  // with evaluation, so double-buffering pays and auto turns it on. The
  // budget forces a genuinely multi-slab sweep (one slab would leave
  // nothing to read ahead) but leaves the pool spare room to issue the
  // read-aheads: a read-ahead never evicts, so a budget the retained slabs
  // saturate would starve the queue and auto would (correctly) decline.
  compiler::CompileOptions options;
  options.memory_budget_elements = 1024;
  options.prefetch = compiler::PrefetchMode::kAuto;
  options.disk = DiskModel::unit_test();
  options.machine = MachineCostModel::unit_test();
  options.machine.compute.seconds_per_flop = 1e-3;  // pathologically slow
  const compiler::NodeProgram plan = compiler::compile_source(
      hpf::elementwise_source(64, 64, 4, 3), options);
  ASSERT_FALSE(plan.loops.empty());
  EXPECT_TRUE(plan.loops.front().prefetch);
  EXPECT_NE(plan.cost.prefetch_rationale.find("enabled"),
            std::string::npos)
      << plan.cost.prefetch_rationale;
}

TEST(AutoPrefetch, StaysOffWhenThereIsNothingToOverlap) {
  // Zero-cost compute: overlapping buys nothing, while halving the shares
  // doubles the request count — auto must decline.
  compiler::CompileOptions options;
  options.memory_budget_elements = 512;
  options.prefetch = compiler::PrefetchMode::kAuto;
  options.disk = DiskModel::unit_test();
  options.machine = MachineCostModel::zero();
  const compiler::NodeProgram plan = compiler::compile_source(
      hpf::elementwise_source(64, 64, 4, 3), options);
  ASSERT_FALSE(plan.loops.empty());
  EXPECT_FALSE(plan.loops.front().prefetch);
  EXPECT_NE(plan.cost.prefetch_rationale.find("disabled"),
            std::string::npos)
      << plan.cost.prefetch_rationale;
}

TEST(AutoPrefetch, ExplicitFlagsStillForceTheLayout) {
  for (const auto mode :
       {compiler::PrefetchMode::kOn, compiler::PrefetchMode::kOff}) {
    compiler::CompileOptions options;
    options.memory_budget_elements = 4096;
    options.prefetch = mode;
    const compiler::NodeProgram plan = compiler::compile_source(
        hpf::elementwise_source(64, 64, 4, 3), options);
    ASSERT_FALSE(plan.loops.empty());
    EXPECT_EQ(plan.loops.front().prefetch,
              mode == compiler::PrefetchMode::kOn);
    EXPECT_TRUE(plan.cost.prefetch_rationale.empty());
  }
}

TEST(SlabCachePricing, SequenceWithGaxpyBarrierPricesCleanly) {
  // An elementwise statement followed by a GAXPY nest: the persistent
  // priced cache carries statement 1's dirty y into the GAXPY plan (whose
  // arrays are {a,b,c}); write-back attribution must resolve y through
  // the sequence's array union instead of the current plan.
  const std::string src =
      "parameter (n=16, p=2)\n"
      "real x(n,n), y(n,n), a(n,n), b(n,n), c(n,n), temp(n,n)\n"
      "!hpf$ processors Pr(p)\n"
      "!hpf$ template d(n)\n"
      "!hpf$ distribute d(block) onto Pr\n"
      "!hpf$ align (*,:) with d :: x, y, a, c, temp\n"
      "!hpf$ align (:,*) with d :: b\n"
      "forall (k=1:n)\n"
      "  y(1:n,k) = x(1:n,k)*2\n"
      "end forall\n"
      "do j=1, n\n"
      "  forall (k=1:n)\n"
      "    temp(1:n,k) = b(k,j)*a(1:n,k)\n"
      "  end forall\n"
      "  c(1:n,j) = SUM(temp,2)\n"
      "end do\n"
      "end\n";
  compiler::CompileOptions options;
  options.memory_budget_elements = 2048;
  const std::vector<compiler::NodeProgram> plans =
      compiler::compile_sequence_source(src, options);
  ASSERT_EQ(plans.size(), 2u);
  compiler::PriceOptions popts;
  popts.model_cache = true;
  const std::vector<compiler::PlanPrice> priced = compiler::price_sequence(
      std::span<const compiler::NodeProgram>(plans.data(), plans.size()), 0,
      popts);
  ASSERT_EQ(priced.size(), 2u);
  // y's deferred write must be charged somewhere in the sequence.
  double y_written = 0.0;
  for (const compiler::PlanPrice& p : priced) {
    const auto it = p.arrays.find("y");
    if (it != p.arrays.end()) {
      y_written += it->second.elements_written;
    }
  }
  EXPECT_GT(y_written, 0.0);
}

TEST(AutoPrefetch, ReuseDistancesAnnotateTheChain) {
  // In the unfused chain, plan 1's read of x is re-read by plans 2 and 3:
  // its ReadSlab step must carry a finite forward distance, while the
  // final write of w (never read again) stays at -1.
  compiler::CompileOptions options;
  options.memory_budget_elements = 4096;
  options.enable_statement_fusion = false;
  const std::string src =
      "parameter (n=16, p=4)\n"
      "real x(n,n), y(n,n), w(n,n)\n"
      "!hpf$ processors Pr(p)\n"
      "!hpf$ template d(n)\n"
      "!hpf$ distribute d(block) onto Pr\n"
      "!hpf$ align (*,:) with d :: x, y, w\n"
      "forall (k=1:n)\n"
      "  y(1:n,k) = x(1:n,k)*2\n"
      "end forall\n"
      "forall (k=1:n)\n"
      "  w(1:n,k) = y(1:n,k) + x(1:n,k)\n"
      "end forall\n"
      "end\n";
  const std::vector<compiler::NodeProgram> plans =
      compiler::compile_sequence_source(src, options);
  ASSERT_EQ(plans.size(), 2u);
  const auto find_step = [](const compiler::NodeProgram& plan,
                            compiler::StepKind kind, const std::string& arr)
      -> const compiler::Step* {
    for (const compiler::Step& s : plan.steps.front().body) {
      if (s.kind == kind && s.array == arr) {
        return &s;
      }
    }
    return nullptr;
  };
  const compiler::Step* x_read =
      find_step(plans[0], compiler::StepKind::kReadSlab, "x");
  ASSERT_NE(x_read, nullptr);
  EXPECT_GE(x_read->reuse_distance, 0.0);  // read again by plan 2
  const compiler::Step* y_write =
      find_step(plans[0], compiler::StepKind::kWriteSlab, "y");
  ASSERT_NE(y_write, nullptr);
  EXPECT_GE(y_write->reuse_distance, 0.0);  // plan 2 reads y
  const compiler::Step* w_write =
      find_step(plans[1], compiler::StepKind::kWriteSlab, "w");
  ASSERT_NE(w_write, nullptr);
  EXPECT_LT(w_write->reuse_distance, 0.0);  // never read again
}

TEST(SlabBufferPoolDeathTest, PinLeakAtTeardownIsFatalUnderSanitize) {
  if (!SlabBufferPool::strict_teardown()) {
    GTEST_SKIP() << "pin-leak hard error is compiled in only under "
                    "OOCC_SANITIZE builds";
  }
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        TempDir dir;
        spmd([&](SpmdContext& ctx) {
          LocalArrayFile laf(dir.file("a.laf"), 8, 8,
                             StorageOrder::kColumnMajor, DiskModel::zero());
          fill_laf(ctx, laf);
          MemoryBudget budget(1000);
          SlabBufferPool pool(budget, "leaky");
          // Acquire pins the entry; "forgetting" the unpin leaks the pin
          // into the pool's destructor.
          (void)pool.acquire_read(ctx, laf, "a", cols(0, 2), -1.0);
        });
      },
      "pin leak");
}

}  // namespace
}  // namespace oocc::runtime
