// Tests for the tree-based collectives, including non-power-of-two
// processor counts and simulated-clock synchronization semantics.
#include <gtest/gtest.h>

#include <numeric>

#include "oocc/sim/collectives.hpp"

namespace oocc::sim {
namespace {

class CollectivesTest : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(ProcCounts, CollectivesTest,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 16));

TEST_P(CollectivesTest, BarrierCompletes) {
  Machine machine(GetParam(), MachineCostModel::unit_test());
  machine.run([](SpmdContext& ctx) {
    for (int i = 0; i < 3; ++i) {
      barrier(ctx);
    }
  });
}

TEST_P(CollectivesTest, BarrierSynchronizesClocks) {
  const int p = GetParam();
  Machine machine(p, MachineCostModel::unit_test());
  machine.run([&](SpmdContext& ctx) {
    // One rank is 1 simulated second ahead; after the barrier, everyone
    // must be at least that far.
    if (ctx.rank() == p / 2) {
      ctx.charge_flops(1e9);
    }
    barrier(ctx);
    EXPECT_GE(ctx.clock().now(), 1.0);
  });
}

TEST_P(CollectivesTest, BroadcastDeliversRootData) {
  const int p = GetParam();
  for (int root = 0; root < p; root += std::max(1, p - 1)) {
    Machine machine(p, MachineCostModel::unit_test());
    machine.run([&](SpmdContext& ctx) {
      std::vector<std::int64_t> data;
      if (ctx.rank() == root) {
        data = {10, 20, 30, 40};
      }
      broadcast(ctx, root, data);
      ASSERT_EQ(data.size(), 4u);
      EXPECT_EQ(data[2], 30);
    });
  }
}

TEST_P(CollectivesTest, ReduceSumToRoot) {
  const int p = GetParam();
  Machine machine(p, MachineCostModel::unit_test());
  machine.run([&](SpmdContext& ctx) {
    const std::vector<double> mine{static_cast<double>(ctx.rank()), 1.0};
    std::vector<double> out = reduce_sum<double>(
        ctx, 0, std::span<const double>(mine.data(), mine.size()));
    if (ctx.rank() == 0) {
      ASSERT_EQ(out.size(), 2u);
      EXPECT_DOUBLE_EQ(out[0], p * (p - 1) / 2.0);
      EXPECT_DOUBLE_EQ(out[1], static_cast<double>(p));
    } else {
      EXPECT_TRUE(out.empty());
    }
  });
}

TEST_P(CollectivesTest, ReduceSumToNonzeroRoot) {
  const int p = GetParam();
  const int root = p - 1;
  Machine machine(p, MachineCostModel::unit_test());
  machine.run([&](SpmdContext& ctx) {
    const std::vector<double> mine{1.0};
    std::vector<double> out = reduce_sum<double>(
        ctx, root, std::span<const double>(mine.data(), mine.size()));
    if (ctx.rank() == root) {
      ASSERT_EQ(out.size(), 1u);
      EXPECT_DOUBLE_EQ(out[0], static_cast<double>(p));
    }
  });
}

TEST_P(CollectivesTest, AllreduceGivesEveryoneTheSum) {
  const int p = GetParam();
  Machine machine(p, MachineCostModel::unit_test());
  machine.run([&](SpmdContext& ctx) {
    const std::vector<double> mine{static_cast<double>(1 + ctx.rank())};
    std::vector<double> out = allreduce_sum<double>(
        ctx, std::span<const double>(mine.data(), mine.size()));
    ASSERT_EQ(out.size(), 1u);
    EXPECT_DOUBLE_EQ(out[0], p * (p + 1) / 2.0);
  });
}

TEST_P(CollectivesTest, GatherConcatenatesInRankOrder) {
  const int p = GetParam();
  Machine machine(p, MachineCostModel::unit_test());
  machine.run([&](SpmdContext& ctx) {
    const std::vector<int> mine{ctx.rank() * 2, ctx.rank() * 2 + 1};
    std::vector<int> out =
        gather<int>(ctx, 0, std::span<const int>(mine.data(), mine.size()));
    if (ctx.rank() == 0) {
      ASSERT_EQ(out.size(), static_cast<std::size_t>(2 * p));
      for (int i = 0; i < 2 * p; ++i) {
        EXPECT_EQ(out[static_cast<std::size_t>(i)], i);
      }
    } else {
      EXPECT_TRUE(out.empty());
    }
  });
}

TEST_P(CollectivesTest, ScatterDealsChunks) {
  const int p = GetParam();
  Machine machine(p, MachineCostModel::unit_test());
  machine.run([&](SpmdContext& ctx) {
    std::vector<int> all;
    if (ctx.rank() == 0) {
      all.resize(static_cast<std::size_t>(3 * p));
      std::iota(all.begin(), all.end(), 0);
    }
    std::vector<int> mine =
        scatter<int>(ctx, 0, std::span<const int>(all.data(), all.size()), 3);
    ASSERT_EQ(mine.size(), 3u);
    EXPECT_EQ(mine[0], ctx.rank() * 3);
    EXPECT_EQ(mine[2], ctx.rank() * 3 + 2);
  });
}

TEST_P(CollectivesTest, AlltoallvRoutesPersonalizedData) {
  const int p = GetParam();
  Machine machine(p, MachineCostModel::unit_test());
  machine.run([&](SpmdContext& ctx) {
    // Rank r sends to rank d a vector of d+1 copies of (100*r + d).
    std::vector<std::vector<int>> out(static_cast<std::size_t>(p));
    for (int d = 0; d < p; ++d) {
      out[static_cast<std::size_t>(d)].assign(static_cast<std::size_t>(d + 1),
                                              100 * ctx.rank() + d);
    }
    std::vector<std::vector<int>> in = alltoallv(ctx, std::move(out));
    ASSERT_EQ(in.size(), static_cast<std::size_t>(p));
    for (int s = 0; s < p; ++s) {
      const auto& v = in[static_cast<std::size_t>(s)];
      ASSERT_EQ(v.size(), static_cast<std::size_t>(ctx.rank() + 1));
      for (int x : v) {
        EXPECT_EQ(x, 100 * s + ctx.rank());
      }
    }
  });
}

TEST_P(CollectivesTest, ZeroLengthPayloadsAreLegal) {
  const int p = GetParam();
  Machine machine(p, MachineCostModel::unit_test());
  machine.run([&](SpmdContext& ctx) {
    std::vector<double> empty;
    broadcast(ctx, 0, empty);
    EXPECT_TRUE(empty.empty());
    std::vector<double> summed = reduce_sum<double>(
        ctx, 0, std::span<const double>(empty.data(), empty.size()));
    if (ctx.rank() == 0) {
      EXPECT_TRUE(summed.empty());
    }
    std::vector<std::vector<int>> out(static_cast<std::size_t>(p));
    auto in = alltoallv(ctx, std::move(out));  // all-empty exchange
    for (const auto& v : in) {
      EXPECT_TRUE(v.empty());
    }
  });
}

TEST(CollectivesCostTest, ReduceChargesAdditionFlops) {
  Machine machine(4, MachineCostModel::unit_test());
  RunReport report = machine.run([](SpmdContext& ctx) {
    const std::vector<double> mine(100, 1.0);
    (void)reduce_sum<double>(ctx, 0,
                             std::span<const double>(mine.data(), mine.size()));
  });
  // Binomial tree on 4 ranks: rank 0 adds twice (from 1 and 2), rank 2
  // adds once (from 3); total 300 additions.
  double flops = 0.0;
  for (const auto& pstats : report.procs) {
    flops += pstats.flops;
  }
  EXPECT_DOUBLE_EQ(flops, 300.0);
}

TEST(CollectivesCostTest, BroadcastUsesLogarithmicRounds) {
  // With 8 ranks a binomial broadcast completes in 3 message generations;
  // the last receiver's clock must be >= 3 transfer times and the total
  // message count must be p-1.
  MachineCostModel cost = MachineCostModel::unit_test();
  Machine machine(8, cost);
  RunReport report = machine.run([&](SpmdContext& ctx) {
    std::vector<double> data;
    if (ctx.rank() == 0) {
      data.assign(10, 3.0);
    }
    broadcast(ctx, 0, data);
  });
  EXPECT_EQ(report.total_messages(), 7u);
  const double one_hop = cost.comm.latency_s + 80.0 / cost.comm.bandwidth_Bps;
  EXPECT_GE(report.max_sim_time_s(), 3 * one_hop);
  EXPECT_LT(report.max_sim_time_s(), 6 * one_hop);
}

}  // namespace
}  // namespace oocc::sim
